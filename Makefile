GO ?= go

BIN := bin/pvfslint

.PHONY: all build test race lint lint-json vet check bench-smoke fuzz clean

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/pvfslint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzers (sgelimit, regcheck, simblock,
# nopanic, mrlife, errflow, lockorder, okreason) through the go vet driver,
# covering test files too.
lint: $(BIN)
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

# lint-json runs the standalone driver and archives the findings as JSON
# (pvfslint.json); it fails when any unsuppressed finding remains.
lint-json: $(BIN)
	$(BIN) -json ./... > pvfslint.json

# check is the full CI gate: build, vet, pvfslint, race tests.
check: build vet lint race

# bench-smoke runs the short fault-plane and list-I/O experiments and
# archives the tables as BENCH_smoke.json; CI uploads it as an artifact so
# regressions in completion time or recovery counters are visible per run.
bench-smoke:
	$(GO) run ./cmd/pvfsbench -short -seed 1 -format json -run faults,fig4 > BENCH_smoke.json
	@echo "wrote BENCH_smoke.json"

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFlattenDatatype -fuzztime=30s ./internal/mpiio/
	$(GO) test -run=NONE -fuzz=FuzzGroupRegions -fuzztime=30s ./internal/ogr/

clean:
	rm -f $(BIN)
