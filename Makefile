GO ?= go

BIN := bin/pvfslint

.PHONY: all build test race lint lint-json lint-time vet check bench-smoke bench-go trace-smoke fuzz clean

# LINT_BUDGET caps the whole analyzer suite's wall time in lint-time; the
# interprocedural pass (callgraph + detcheck) must not silently blow up CI.
LINT_BUDGET ?= 30s

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/pvfslint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzers (sgelimit, regcheck, simblock,
# nopanic, mrlife, errflow, lockorder, okreason, engescape, tracecheck,
# detcheck) through the go vet driver, covering test files too.
lint: $(BIN)
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

# lint-json runs the standalone driver and archives the findings as JSON
# (pvfslint.json) and SARIF (pvfslint.sarif); it fails when any
# unsuppressed finding remains.
lint-json: $(BIN)
	$(BIN) -json -sarif pvfslint.sarif ./... > pvfslint.json

# lint-time reports per-analyzer wall time and fails if the whole suite
# exceeds LINT_BUDGET.
lint-time: $(BIN)
	$(BIN) -time -budget $(LINT_BUDGET) ./...

# check is the full CI gate: build, vet, pvfslint, race tests.
check: build vet lint race

# bench-smoke runs the short fault-plane and list-I/O experiments on the
# parallel cell scheduler and archives the tables as BENCH_smoke.json; the
# trailing -hostmeta record adds wall-clock and allocation counts, so CI
# runs expose both table regressions and host-side performance drift.
bench-smoke:
	$(GO) run ./cmd/pvfsbench -short -seed 1 -parallel 4 -format json -hostmeta -run faults,fig4 > BENCH_smoke.json
	@echo "wrote BENCH_smoke.json"

# trace-smoke runs the traced breakdown workload (ListIO+ADS, short) and
# archives the Perfetto trace (open in ui.perfetto.dev or chrome://tracing)
# plus the machine-readable stage-breakdown profile. Deterministic: the
# same source tree always writes byte-identical files.
trace-smoke:
	$(GO) run ./cmd/pvfsbench -short -trace TRACE_smoke.json
	@echo "wrote TRACE_smoke.json and TRACE_smoke.json.breakdown.json"

# bench-go runs the engine microbenchmarks (event turnover, mailbox
# ping-pong, contended resource, one full Figure 3 cell) with allocation
# reporting — the numbers the engine-hot-path work is graded on.
bench-go:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/
	$(GO) test -run NONE -bench BenchmarkFig3Cell -benchmem ./internal/bench/

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFlattenDatatype -fuzztime=30s ./internal/mpiio/
	$(GO) test -run=NONE -fuzz=FuzzGroupRegions -fuzztime=30s ./internal/ogr/

clean:
	rm -f $(BIN)
