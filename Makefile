GO ?= go

BIN := bin/pvfslint

.PHONY: all build test race lint lint-json lint-time lint-hotpath vet check bench-smoke bench-cache bench-scale bench-go trace-smoke metrics-smoke fuzz clean

# LINT_BUDGET caps the whole analyzer suite's wall time in lint-time; the
# interprocedural pass (callgraph + detcheck) must not silently blow up CI.
LINT_BUDGET ?= 30s

all: build

build:
	$(GO) build ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/pvfslint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the project's own analyzers (sgelimit, regcheck, simblock,
# nopanic, mrlife, errflow, lockorder, okreason, hotpath, tracecheck,
# detcheck) through the go vet driver, covering test files too.
lint: $(BIN)
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

# lint-hotpath runs the standalone driver (interprocedural: whole-module
# call graph, stale-entry detection) and archives the hotpath budget drift
# as hotpath.budget.drift.json — {"new": [], "stale": []} when clean. It
# fails on any drift; regeneration (pvfslint -write-budget) is a deliberate
# local act, never automatic in CI.
lint-hotpath: $(BIN)
	$(BIN) -budget-drift hotpath.budget.drift.json ./...

# lint-json runs the standalone driver and archives the findings as JSON
# (pvfslint.json) and SARIF (pvfslint.sarif); it fails when any
# unsuppressed finding remains.
lint-json: $(BIN)
	$(BIN) -json -sarif pvfslint.sarif ./... > pvfslint.json

# lint-time reports per-analyzer wall time and fails if the whole suite
# exceeds LINT_BUDGET.
lint-time: $(BIN)
	$(BIN) -time -budget $(LINT_BUDGET) ./...

# check is the full CI gate: build, vet, pvfslint (both drivers — the
# standalone pass adds the interprocedural hotpath ratchet), race tests.
check: build vet lint lint-hotpath race

# bench-smoke runs the short fault-plane and list-I/O experiments on the
# parallel cell scheduler — with each cell's engine partitioned into 4
# shards, so the sharded event loop is on the CI hot path — and archives
# the tables as BENCH_smoke.json; the trailing -hostmeta record adds
# wall-clock and allocation counts, so CI runs expose both table
# regressions and host-side performance drift. The tables are identical
# at any -shards value; the determinism tests enforce that.
bench-smoke:
	$(GO) run ./cmd/pvfsbench -short -seed 1 -parallel 4 -shards 4 -format json -hostmeta -run faults,fig4,cache > BENCH_smoke.json
	@echo "wrote BENCH_smoke.json"

# bench-scale runs the cell-scaling grid (iods x clients x stripe, with
# knee detection) on a 4-shard engine and archives the table as
# BENCH_scale.json. Deterministic: -shards changes wall clock, never
# output.
bench-scale:
	$(GO) run ./cmd/pvfsbench -seed 1 -parallel 4 -shards 4 -format json -run scale > BENCH_scale.json
	@echo "wrote BENCH_scale.json"

# bench-cache runs the full client-page-cache ablation (reuse x hole
# density x cache size, uncached / write-through / write-behind) and
# archives the table as BENCH_cache.json. Deterministic at a fixed seed.
bench-cache:
	$(GO) run ./cmd/pvfsbench -seed 1 -parallel 4 -format json -run cache > BENCH_cache.json
	@echo "wrote BENCH_cache.json"

# trace-smoke runs the traced breakdown workload (ListIO+ADS, short) and
# archives the Perfetto trace (open in ui.perfetto.dev or chrome://tracing)
# plus the machine-readable stage-breakdown profile. Deterministic: the
# same source tree always writes byte-identical files.
trace-smoke:
	$(GO) run ./cmd/pvfsbench -short -trace TRACE_smoke.json
	@echo "wrote TRACE_smoke.json and TRACE_smoke.json.breakdown.json"

# metrics-smoke runs the checkpoint-burst timeline (metrics plane: sampled
# utilization/queue series with saturation detection) on a 4-shard engine
# and archives the table as BENCH_timeline.json. Deterministic: the series
# are sampled on the virtual clock, so -shards changes wall clock, never a
# byte of output.
metrics-smoke:
	$(GO) run ./cmd/pvfsbench -seed 1 -parallel 4 -shards 4 -format json -run timeline > BENCH_timeline.json
	@echo "wrote BENCH_timeline.json"

# bench-go runs the engine microbenchmarks (event turnover, mailbox
# ping-pong, contended resource, one full Figure 3 cell) with allocation
# reporting — the numbers the engine-hot-path work is graded on — and the
# AllocFree tests, which assert 0 allocs/op in steady state for every
# declared //pvfslint:hotpath root.
bench-go:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/
	$(GO) test -run NONE -bench BenchmarkFig3Cell -benchmem ./internal/bench/
	$(GO) test -run AllocFree -count 1 -v ./internal/bench/
	$(GO) test -run TestShardedCellThroughput -count 1 -v ./internal/sim/

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFlattenDatatype -fuzztime=30s ./internal/mpiio/
	$(GO) test -run=NONE -fuzz=FuzzGroupRegions -fuzztime=30s ./internal/ogr/
	$(GO) test -run=NONE -fuzz=FuzzStrideDetect -fuzztime=30s ./internal/pcache/

clean:
	rm -f $(BIN)
