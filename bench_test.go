// Benchmarks regenerating every table and figure of the paper's evaluation
// section (plus the ablations) on the simulated cluster. Each benchmark
// runs one full experiment per iteration and prints the resulting table
// once; `go test -bench=. -benchmem` therefore reproduces the whole paper.
//
// The benchmarks honour -short (reduced sweeps). Virtual-time results are
// identical across runs — the simulation is deterministic — so b.N=1 tells
// the whole story; the reported ns/op is *host* time to simulate the
// experiment, not the experiment's virtual duration.
package pvfsib_test

import (
	"fmt"
	"sync"
	"testing"

	"pvfsib/internal/bench"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tbl := e.Run(bench.RunOpts{Short: testing.Short(), Seed: 1})
		if _, printed := printOnce.LoadOrStore(id, true); !printed {
			fmt.Println(tbl)
		}
	}
}

func BenchmarkTable2Network(b *testing.B)           { runExperiment(b, "table2") }
func BenchmarkTable3Filesystem(b *testing.B)        { runExperiment(b, "table3") }
func BenchmarkFig3TransferSchemes(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig4ListIOTransfer(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkTable4OGR(b *testing.B)               { runExperiment(b, "table4") }
func BenchmarkFig6BlockColumnWrite(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFig7BlockColumnRead(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8TiledNoDisk(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9TiledDisk(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTable5BTIO(b *testing.B)              { runExperiment(b, "table5") }
func BenchmarkTable6BTIOStats(b *testing.B)         { runExperiment(b, "table6") }
func BenchmarkAblationSGELimit(b *testing.B)        { runExperiment(b, "ablation-sge") }
func BenchmarkAblationHybridThreshold(b *testing.B) { runExperiment(b, "ablation-hybrid") }
func BenchmarkAblationADSModel(b *testing.B)        { runExperiment(b, "ablation-adsmodel") }
func BenchmarkAblationOGRGrouping(b *testing.B)     { runExperiment(b, "ablation-ogrgroup") }
func BenchmarkAblationNetwork(b *testing.B)         { runExperiment(b, "ablation-network") }
func BenchmarkAblationRegThrash(b *testing.B)       { runExperiment(b, "ablation-regthrash") }
func BenchmarkExtraNoncontig(b *testing.B)          { runExperiment(b, "extra-noncontig") }
func BenchmarkExtraDiskSpeed(b *testing.B)          { runExperiment(b, "extra-diskspeed") }
func BenchmarkExtraScaling(b *testing.B)            { runExperiment(b, "extra-scaling") }
func BenchmarkExtraAppAware(b *testing.B)           { runExperiment(b, "extra-appaware") }
func BenchmarkExtraQueryMethod(b *testing.B)        { runExperiment(b, "extra-querymethod") }
func BenchmarkFaults(b *testing.B)                  { runExperiment(b, "faults") }
