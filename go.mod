module pvfsib

go 1.22
