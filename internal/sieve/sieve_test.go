package sieve

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"pvfsib/internal/disk"
	"pvfsib/internal/localfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

func newFile(t *testing.T) (*sim.Engine, *localfs.FS, Params) {
	t.Helper()
	eng := sim.NewEngine()
	d := disk.New(eng, "d", disk.DefaultParams())
	fs := localfs.New(eng, d, localfs.DefaultParams())
	return eng, fs, ModelFromFS(fs, 1300*simnet.MB)
}

func runSim(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// pattern writes a recognizable byte pattern covering [0, size).
func pattern(size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i*31 + i/251)
	}
	return b
}

// strided builds n accesses of length l with the given stride from base.
func strided(base, n, l, stride int64) []Access {
	accs := make([]Access, n)
	for i := int64(0); i < n; i++ {
		accs[i] = Access{Off: base + i*stride, Len: l}
	}
	return accs
}

func TestModelPrefersSievingForDenseSmallAccesses(t *testing.T) {
	_, _, params := newFile(t)
	// 128 accesses of 512 bytes with stride 2 kB: span 256 kB, wanted 64 kB.
	w := planWindows(strided(0, 128, 512, 2048), params.MaxBuffer)[0]
	d := params.decide(w, false)
	if !d.UseSieve {
		t.Errorf("model should sieve dense small reads: Tds=%v Tindiv=%v", d.Tds, d.Tindiv)
	}
	dw := params.decide(w, true)
	if !dw.UseSieve {
		t.Errorf("model should sieve dense small writes: Tds=%v Tindiv=%v", dw.Tds, dw.Tindiv)
	}
}

func TestModelRejectsSievingForSparseAccesses(t *testing.T) {
	_, _, params := newFile(t)
	params.MaxBuffer = 1 << 40 // unbounded: one window
	// 4 accesses of 64 kB spread over 512 MB: huge span, tiny wanted.
	w := planWindows(strided(0, 4, 64<<10, 128<<20), params.MaxBuffer)[0]
	d := params.decide(w, false)
	if d.UseSieve {
		t.Errorf("model should not sieve sparse reads: Tds=%v Tindiv=%v", d.Tds, d.Tindiv)
	}
}

func TestModelRejectsSievingForFewLargeAccesses(t *testing.T) {
	_, _, params := newFile(t)
	// 2 accesses of 2 MB each, adjacent-ish: individual access is already
	// near peak bandwidth; sieve write would double the work.
	w := planWindows(strided(0, 2, 2<<20, 4<<20), 1<<40)[0]
	d := params.decide(w, true)
	if d.UseSieve {
		t.Errorf("write sieving of large accesses should lose: Tds=%v Tindiv=%v", d.Tds, d.Tindiv)
	}
}

func TestDecisionCostFormulas(t *testing.T) {
	params := Params{
		Bmem:    1000,
		Br:      func(int64) float64 { return 100 },
		Bw:      func(int64) float64 { return 50 },
		Or:      time.Duration(7) * time.Second,
		Ow:      time.Duration(11) * time.Second,
		Oseek:   time.Duration(13) * time.Second,
		Olock:   time.Duration(3) * time.Second,
		Ounlock: time.Duration(5) * time.Second,
	}
	accs := []Access{{Off: 0, Len: 100}, {Off: 200, Len: 100}}
	w := planWindows(accs, 0)[0]
	d := params.decide(w, false)
	// T_read = 2*(7+13) + 2*(100/100) = 42s
	if want := 42 * time.Second; d.Tindiv != want {
		t.Errorf("Tindiv = %v, want %v", d.Tindiv, want)
	}
	// T_dsr = 7+13 + 300/100 = 23s
	if want := 23 * time.Second; d.Tds != want {
		t.Errorf("Tds = %v, want %v", d.Tds, want)
	}
	dw := params.decide(w, true)
	// T_write = 2*(11+13) + 2*(100/50) = 52s
	if want := 52 * time.Second; dw.Tindiv != want {
		t.Errorf("write Tindiv = %v, want %v", dw.Tindiv, want)
	}
	// T_dsw = T_dsr + 200/1000 + 3 + 11 + 300/50 + 5 = 23 + 0.2 + 25 = 48.2s
	if want := 48200 * time.Millisecond; dw.Tds != want {
		t.Errorf("write Tds = %v, want %v", dw.Tds, want)
	}
}

func TestReadCorrectnessSieved(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		content := pattern(1 << 20)
		f.WriteAt(p, 0, content)
		accs := strided(1000, 64, 700, 3000)
		var stats Stats
		got, decs := Read(p, f, accs, params, Always, &stats)
		var want []byte
		for _, a := range accs {
			want = append(want, content[a.Off:a.End()]...)
		}
		if !bytes.Equal(got, want) {
			t.Error("sieved read data mismatch")
		}
		for _, d := range decs {
			if !d.UseSieve {
				t.Error("mode Always must sieve")
			}
		}
		if stats.SievedWins != stats.Windows {
			t.Errorf("stats: %+v", stats)
		}
	})
}

func TestReadCorrectnessIndividual(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		content := pattern(1 << 20)
		f.WriteAt(p, 0, content)
		accs := strided(1000, 64, 700, 3000)
		got, _ := Read(p, f, accs, params, Never, nil)
		var want []byte
		for _, a := range accs {
			want = append(want, content[a.Off:a.End()]...)
		}
		if !bytes.Equal(got, want) {
			t.Error("individual read data mismatch")
		}
	})
}

func TestWriteCorrectnessSievedPreservesSurroundingData(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		content := pattern(1 << 20)
		f.WriteAt(p, 0, content)
		accs := strided(5000, 32, 600, 4096)
		var data []byte
		for i, a := range accs {
			piece := bytes.Repeat([]byte{byte(i + 1)}, int(a.Len))
			data = append(data, piece...)
		}
		Write(p, f, accs, data, params, Always, nil)
		// The written pieces must be in place; the gaps must be intact
		// (the read-modify-write must not clobber them).
		want := append([]byte{}, content...)
		cursor := 0
		for _, a := range accs {
			copy(want[a.Off:a.End()], data[cursor:cursor+int(a.Len)])
			cursor += int(a.Len)
		}
		got := f.ReadAt(p, 0, 1<<20)
		if !bytes.Equal(got, want) {
			t.Error("sieved write corrupted the file")
		}
	})
}

func TestWriteCorrectnessIndividualMatchesSieved(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		fSieve := fs.Open(p, "s")
		fIndiv := fs.Open(p, "i")
		base := pattern(256 << 10)
		fSieve.WriteAt(p, 0, base)
		fIndiv.WriteAt(p, 0, base)
		accs := strided(333, 40, 555, 2222)
		var data []byte
		for i, a := range accs {
			data = append(data, bytes.Repeat([]byte{byte(200 - i)}, int(a.Len))...)
		}
		Write(p, fSieve, accs, data, params, Always, nil)
		Write(p, fIndiv, accs, data, params, Never, nil)
		a := fSieve.ReadAt(p, 0, 256<<10)
		b := fIndiv.ReadAt(p, 0, 256<<10)
		if !bytes.Equal(a, b) {
			t.Error("sieved and individual writes diverge")
		}
	})
}

func TestSievedReadUsesFewerFSCalls(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, pattern(1<<20))
		accs := strided(0, 128, 512, 4096)
		calls0 := fs.Counters.ReadCalls
		Read(p, f, accs, params, Always, nil)
		sievedCalls := fs.Counters.ReadCalls - calls0
		calls0 = fs.Counters.ReadCalls
		Read(p, f, accs, params, Never, nil)
		indivCalls := fs.Counters.ReadCalls - calls0
		if sievedCalls >= indivCalls/10 {
			t.Errorf("sieved used %d calls, individual %d", sievedCalls, indivCalls)
		}
	})
}

func TestAutoModeFollowsModel(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, pattern(2<<20))
		var stats Stats
		// Dense small: should sieve.
		_, decs := Read(p, f, strided(0, 128, 512, 2048), params, Auto, &stats)
		for _, d := range decs {
			if !d.UseSieve {
				t.Error("auto mode should sieve dense window")
			}
		}
		// Sparse large: should not.
		p2 := params
		p2.MaxBuffer = 1 << 40
		_, decs = Read(p, f, strided(0, 2, 4096, 1<<20), p2, Auto, nil)
		for _, d := range decs {
			if d.UseSieve {
				t.Error("auto mode should not sieve sparse window")
			}
		}
	})
}

func TestWindowSplitRespectsMaxBuffer(t *testing.T) {
	accs := strided(0, 100, 1024, 128<<10) // span ~12.8 MB
	wins := planWindows(accs, 4<<20)
	if len(wins) < 3 {
		t.Fatalf("got %d windows, want >=3", len(wins))
	}
	total := 0
	for _, w := range wins {
		total += len(w.accs)
		if w.span.Len > 4<<20 {
			t.Errorf("window span %d exceeds max buffer", w.span.Len)
		}
	}
	if total != 100 {
		t.Errorf("windows cover %d accesses, want 100", total)
	}
}

func TestUnsortedAccessesReturnInRequestOrder(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		content := pattern(64 << 10)
		f.WriteAt(p, 0, content)
		accs := []Access{
			{Off: 30000, Len: 100},
			{Off: 100, Len: 50},
			{Off: 10000, Len: 200},
		}
		got, _ := Read(p, f, accs, params, Always, nil)
		var want []byte
		for _, a := range accs {
			want = append(want, content[a.Off:a.End()]...)
		}
		if !bytes.Equal(got, want) {
			t.Error("out-of-order accesses misassembled")
		}
	})
}

func TestReadPastEOFZeroPadded(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, []byte("abcdef"))
		got, _ := Read(p, f, []Access{{Off: 4, Len: 8}}, params, Never, nil)
		want := []byte{'e', 'f', 0, 0, 0, 0, 0, 0}
		if !bytes.Equal(got, want) {
			t.Errorf("got %v, want %v", got, want)
		}
	})
}

func TestSieveIsFasterForSmallDenseAccesses(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, pattern(2<<20))
		fs.DropCaches(p)
		accs := strided(0, 256, 512, 4096)
		t0 := p.Now()
		Read(p, f, accs, params, Always, nil)
		sieved := p.Now().Sub(t0)
		fs.DropCaches(p)
		t0 = p.Now()
		Read(p, f, accs, params, Never, nil)
		indiv := p.Now().Sub(t0)
		// Uncached, both are disk-bound (read-ahead makes the individual
		// path nearly sequential) — the paper observes the same
		// convergence. Sieving must still not lose.
		if sieved >= indiv {
			t.Errorf("sieved %v should beat individual %v", sieved, indiv)
		}
	})
}

func TestSieveIsMuchFasterWhenCached(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, pattern(2<<20)) // stays in cache
		accs := strided(0, 256, 512, 4096)
		t0 := p.Now()
		Read(p, f, accs, params, Always, nil)
		sieved := p.Now().Sub(t0)
		t0 = p.Now()
		Read(p, f, accs, params, Never, nil)
		indiv := p.Now().Sub(t0)
		// Cache-resident: per-call overhead dominates, sieving wins big
		// (the regime of the paper's Figure 6/7 "no sync"/"cached").
		if sieved*3 >= indiv {
			t.Errorf("cached: sieved %v should beat individual %v by >3x", sieved, indiv)
		}
	})
}

func TestEmptyAccessList(t *testing.T) {
	eng, fs, params := newFile(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		data, decs := Read(p, f, nil, params, Auto, nil)
		if data != nil || decs != nil {
			t.Error("empty access list should be a no-op")
		}
		Write(p, f, nil, nil, params, Auto, nil)
	})
}

func TestPropertySieveEquivalentToIndividual(t *testing.T) {
	f := func(offs []uint16, lens []uint8, seed byte) bool {
		if len(offs) == 0 || len(offs) > 40 {
			return true
		}
		eng := sim.NewEngine()
		d := disk.New(eng, "d", disk.DefaultParams())
		fs := localfs.New(eng, d, localfs.DefaultParams())
		params := ModelFromFS(fs, 1300*simnet.MB)
		ok := true
		eng.Go("t", func(p *sim.Proc) {
			base := pattern(128 << 10)
			f1 := fs.Open(p, "sieve")
			f2 := fs.Open(p, "indiv")
			f1.WriteAt(p, 0, base)
			f2.WriteAt(p, 0, base)
			var accs []Access
			var data []byte
			for i, o := range offs {
				l := int64(1)
				if i < len(lens) {
					l = int64(lens[i])%400 + 1
				}
				a := Access{Off: int64(o) % 100000, Len: l}
				accs = append(accs, a)
				data = append(data, bytes.Repeat([]byte{byte(int(seed) + i)}, int(l))...)
			}
			Write(p, f1, accs, data, params, Always, nil)
			Write(p, f2, accs, data, params, Never, nil)
			r1 := f1.ReadAt(p, 0, 128<<10)
			r2 := f2.ReadAt(p, 0, 128<<10)
			if !bytes.Equal(r1, r2) {
				ok = false
			}
			g1, _ := Read(p, f1, accs, params, Always, nil)
			g2, _ := Read(p, f1, accs, params, Never, nil)
			if !bytes.Equal(g1, g2) {
				ok = false
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
