// Package sieve implements Active Data Sieving (Section 5 of the paper):
// server-side data sieving in which the I/O node inspects each batch of
// noncontiguous file accesses and uses an explicit cost model to decide
// whether to service them with one large contiguous access (plus a
// read-modify-write cycle for writes) or individually.
//
// The cost model is the paper's Table 1 / Section 5.1:
//
//	T_read = N·(O_r + O_seek) + Σ S_i/B_r(S_i)
//	T_write = N·(O_w + O_seek) + Σ S_i/B_w(S_i)
//	T_dsr  = O_r + O_seek + S_ds/B_r(S_ds)
//	T_dsw  = T_dsr + S_req/B_mem + O_lock + O_w + S_ds/B_w(S_ds) + O_unlock
//
// It is deliberately conservative: bandwidths are the *uncached* disk
// curves, so when sieving is chosen it is almost certainly beneficial once
// caching helps further.
package sieve

import (
	"sort"

	"pvfsib/internal/localfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Access is one contiguous file region of a noncontiguous request.
type Access struct {
	Off int64
	Len int64
}

// End returns the first offset past the access.
func (a Access) End() int64 { return a.Off + a.Len }

// Params is the cost model (the paper's Table 1 system parameters).
type Params struct {
	// Bmem is host memory bandwidth in bytes/s.
	Bmem float64
	// Br and Bw return uncached file read/write bandwidth (bytes/s) for
	// an access of the given size.
	Br func(size int64) float64
	Bw func(size int64) float64
	// Or and Ow are per-call read/write overheads; Oseek is the seek
	// overhead; Olock/Ounlock are file lock costs.
	Or, Ow, Oseek  sim.Duration
	Olock, Ounlock sim.Duration
	// MaxBuffer caps the sieve staging buffer; larger spans are split
	// into windows decided independently.
	MaxBuffer int64

	// Tracer, when set, records one span per window carrying the cost
	// model's verdict; Node labels those spans with the serving daemon.
	// Both are optional and cost nothing when unset.
	Tracer *trace.Tracer
	Node   string
}

// ModelFromFS derives the cost model from a local file system's measured
// parameters, as the I/O daemon does at startup.
func ModelFromFS(fs *localfs.FS, memBandwidth float64) Params {
	dp := fs.Disk().Params()
	fp := fs.Params()
	return Params{
		Bmem:      memBandwidth,
		Br:        dp.ReadBW,
		Bw:        dp.WriteBW,
		Or:        fp.CallOverhead + dp.PerOp,
		Ow:        fp.CallOverhead + dp.PerOp,
		Oseek:     dp.Seek,
		Olock:     fp.LockOverhead,
		Ounlock:   fp.LockOverhead,
		MaxBuffer: 4 << 20,
	}
}

// Mode selects how the decision is made.
type Mode int

const (
	// Auto applies the cost model per window (Active Data Sieving).
	Auto Mode = iota
	// Always sieves unconditionally (classic data sieving).
	Always
	// Never services each access individually (list I/O without ADS).
	Never
)

// Decision records the outcome of the cost model for one window.
type Decision struct {
	UseSieve bool
	N        int   // accesses in the window
	Span     int64 // S_ds
	Wanted   int64 // S_req
	Tds      sim.Duration
	Tindiv   sim.Duration
}

// Stats accumulates sieve activity on a server.
type Stats struct {
	Windows     int64
	SievedWins  int64 // windows the model chose to sieve
	IndivWins   int64
	SievedBytes int64 // bytes read/written through sieve buffers (S_ds)
	WantedBytes int64 // bytes the client actually asked for (S_req)
}

// window is a run of accesses whose span fits the staging buffer.
type window struct {
	accs []Access // sorted by offset
	span Access
}

// planWindows sorts accesses and greedily packs them into spans of at most
// maxBuffer bytes. Unbounded maxBuffer yields a single window.
func planWindows(accs []Access, maxBuffer int64) []window {
	sorted := make([]Access, len(accs))
	copy(sorted, accs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Off != sorted[j].Off {
			return sorted[i].Off < sorted[j].Off
		}
		return sorted[i].Len < sorted[j].Len
	})
	var wins []window
	cur := window{accs: sorted[:1], span: sorted[0]}
	for _, a := range sorted[1:] {
		end := a.End()
		if cur.span.End() > end {
			end = cur.span.End()
		}
		if maxBuffer > 0 && end-cur.span.Off > maxBuffer && len(cur.accs) > 0 {
			wins = append(wins, cur)
			cur = window{accs: []Access{a}, span: a}
			continue
		}
		cur.accs = append(cur.accs, a)
		cur.span.Len = end - cur.span.Off
	}
	wins = append(wins, cur)
	return wins
}

// decide evaluates the cost model for one window.
func (p Params) decide(w window, write bool) Decision {
	d := Decision{N: len(w.accs), Span: w.span.Len}
	var tIndiv, tSieve sim.Duration
	perOp := p.Or
	bwFor := p.Br
	if write {
		perOp = p.Ow
		bwFor = p.Bw
	}
	for _, a := range w.accs {
		d.Wanted += a.Len
		tIndiv += perOp + p.Oseek + xferTime(a.Len, bwFor(a.Len))
	}
	tdsr := p.Or + p.Oseek + xferTime(d.Span, p.Br(d.Span))
	if write {
		tSieve = tdsr + xferTime(d.Wanted, p.Bmem) + p.Olock + p.Ow +
			xferTime(d.Span, p.Bw(d.Span)) + p.Ounlock
	} else {
		tSieve = tdsr
	}
	d.Tds, d.Tindiv = tSieve, tIndiv
	d.UseSieve = tSieve < tIndiv
	return d
}

func xferTime(size int64, bw float64) sim.Duration {
	if size <= 0 || bw <= 0 {
		return 0
	}
	return sim.Duration(float64(size) / bw * 1e9)
}

// Read services the accesses against the file, returning the wanted bytes
// concatenated in the order the accesses were given (reads past end of file
// return zeros). The returned decisions describe each window.
func Read(p *sim.Proc, f *localfs.File, accs []Access, params Params, mode Mode, stats *Stats) ([]byte, []Decision) {
	if len(accs) == 0 {
		return nil, nil
	}
	var total int64
	for _, a := range accs {
		total += a.Len
	}
	out := make([]byte, total)
	// Offsets of each access's slice in out, in original order.
	pos := make(map[Access][]int64)
	cursor := int64(0)
	for _, a := range accs {
		pos[a] = append(pos[a], cursor)
		cursor += a.Len
	}

	var decisions []Decision
	for _, w := range planWindows(accs, params.MaxBuffer) {
		d := params.decide(w, false)
		applyMode(&d, mode)
		decisions = append(decisions, d)
		record(stats, d)
		sp := startWindowSpan(p, params, d)
		if d.UseSieve {
			buf := readPadded(p, f, w.span.Off, w.span.Len)
			for _, a := range w.accs {
				piece := buf[a.Off-w.span.Off : a.End()-w.span.Off]
				placePiece(out, pos, a, piece)
			}
		} else {
			for _, a := range w.accs {
				piece := readPadded(p, f, a.Off, a.Len)
				placePiece(out, pos, a, piece)
			}
		}
		sp.End(p.Now())
	}
	return out, decisions
}

// Write services the accesses with the given data (concatenated in access
// order). Sieved windows perform a locked read-modify-write; individual
// windows write each piece directly.
func Write(p *sim.Proc, f *localfs.File, accs []Access, data []byte, params Params, mode Mode, stats *Stats) []Decision {
	if len(accs) == 0 {
		return nil
	}
	// Slice data into per-access pieces in the original order.
	pieces := make([][]byte, len(accs))
	cursor := int64(0)
	for i, a := range accs {
		pieces[i] = data[cursor : cursor+a.Len]
		cursor += a.Len
	}
	// Sorting inside planWindows loses the original order, so key pieces
	// by access; duplicates consume pieces FIFO.
	queue := make(map[Access][][]byte)
	order := make([]Access, len(accs))
	copy(order, accs)
	for i, a := range order {
		queue[a] = append(queue[a], pieces[i])
	}
	take := func(a Access) []byte {
		q := queue[a]
		piece := q[0]
		queue[a] = q[1:]
		return piece
	}

	var decisions []Decision
	for _, w := range planWindows(accs, params.MaxBuffer) {
		d := params.decide(w, true)
		applyMode(&d, mode)
		decisions = append(decisions, d)
		record(stats, d)
		sp := startWindowSpan(p, params, d)
		if d.UseSieve {
			f.Lock(p, w.span.Off, w.span.Len)
			buf := readPadded(p, f, w.span.Off, w.span.Len)
			for _, a := range w.accs {
				copy(buf[a.Off-w.span.Off:a.End()-w.span.Off], take(a))
			}
			p.Sleep(xferTime(d.Wanted, params.Bmem)) // modify phase
			f.WriteAt(p, w.span.Off, buf)
			f.Unlock(p, w.span.Off, w.span.Len)
		} else {
			for _, a := range w.accs {
				f.WriteAt(p, a.Off, take(a))
			}
		}
		sp.End(p.Now())
	}
	return decisions
}

// startWindowSpan opens a span for one serviced window, annotated with
// the cost model's verdict. It returns the zero Span when no tracer is
// attached.
func startWindowSpan(p *sim.Proc, params Params, d Decision) trace.Span {
	sp := params.Tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), params.Node, "sieve.window", trace.StageSieve)
	sp.SetBytes(d.Wanted)
	if sp.Recording() {
		sp.Annotate("sieve=%t n=%d span=%d t_ds=%v t_indiv=%v", d.UseSieve, d.N, d.Span, d.Tds, d.Tindiv)
	}
	return sp
}

func applyMode(d *Decision, mode Mode) {
	switch mode {
	case Always:
		d.UseSieve = true
	case Never:
		d.UseSieve = false
	}
}

func record(stats *Stats, d Decision) {
	if stats == nil {
		return
	}
	stats.Windows++
	stats.WantedBytes += d.Wanted
	if d.UseSieve {
		stats.SievedWins++
		stats.SievedBytes += d.Span
	} else {
		stats.IndivWins++
		stats.SievedBytes += d.Wanted
	}
}

// readPadded reads [off, off+size), zero-padding past end of file so sieve
// extraction arithmetic stays simple.
func readPadded(p *sim.Proc, f *localfs.File, off, size int64) []byte {
	got := f.ReadAt(p, off, size)
	if int64(len(got)) == size {
		return got
	}
	out := make([]byte, size)
	copy(out, got)
	return out
}

// placePiece copies the piece into every output slot for the access;
// duplicate accesses receive identical bytes, so this is idempotent.
func placePiece(out []byte, pos map[Access][]int64, a Access, piece []byte) {
	for _, s := range pos[a] {
		copy(out[s:s+a.Len], piece)
	}
}
