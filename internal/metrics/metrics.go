// Package metrics is a deterministic, virtual-time metrics plane:
// counters, gauges, and busy-time series sampled on the engine clock into
// fixed per-interval ring buffers.
//
// Three properties shape the design:
//
//   - Zero cost when disabled. Instrument handles (Counter, Gauge, Busy)
//     are value types whose zero value is a no-op sink: every method
//     checks one pointer and returns. Layers keep handles unconditionally
//     and never branch on "is metrics on".
//
//   - Zero timeline perturbation when enabled. There is no sampler
//     process and no timer events: every observation is bucketed on write
//     (bucket = virtual time / interval), so attaching a registry never
//     schedules an event, never consumes a group sequence number, and
//     therefore never changes what the simulation does — only what it
//     records. Updates are allocation-free in steady state.
//
//   - Byte-identical at any shard count x GOMAXPROCS. Like the trace
//     plane (PR 9), storage is registered per node: a series belongs to
//     one node and must only be updated by that node's events, so a
//     sharded engine needs no locks and no cross-shard ordering. Export
//     merges nodes in registration order and series in name order —
//     canonical, partition-independent.
//
// Instrument creation (Registry.Counter/Gauge/Busy) is a setup-time act:
// call it while the engine is idle (attach time), keep the handles, and
// sample through them at runtime. Creating instruments from inside a
// running sharded simulation is a data race on the registry's maps.
package metrics

import (
	"time"

	"pvfsib/internal/sim"
)

// Config sizes a Registry.
type Config struct {
	// Interval is the bucket width of every series. Zero means 50us.
	Interval sim.Duration
	// Depth is the number of intervals each series retains. Zero means 2048.
	Depth int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Microsecond
	}
	if c.Depth <= 0 {
		c.Depth = 2048
	}
	return c
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindBusy
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "busy"
	}
}

// series is one (node, name) time series: a ring of per-interval values.
// vals[idx%depth] holds interval idx iff stamp[idx%depth] == idx+1; the
// ring covers intervals (last-depth, last]. Writers only ever move `last`
// forward (a node's clock never runs backwards).
type series struct {
	node     string
	name     string
	kind     kind
	interval int64 // ns per bucket
	depth    int64

	vals  []int64
	stamp []int64 // interval index + 1, 0 = untouched
	last  int64   // highest materialized interval index; -1 before first write

	// total is the cumulative sum for counters and busy series, and the
	// current value for gauges. It survives ring wrap.
	total int64
	hi    int64 // gauge high-water mark
	carry int64 // gauge: last value evicted from the ring (carry at window start)
	lost  int64 // samples older than the retained window, discarded
}

// advance materializes interval idx, evicting intervals that fall off the
// ring. Eviction walks in interval order so a gauge's carry ends up the
// latest evicted value.
func (s *series) advance(idx int64) {
	d := s.depth
	if idx-s.last >= d {
		if s.kind == kindGauge {
			for j := s.last - d + 1; j <= s.last; j++ {
				if j < 0 {
					continue
				}
				if p := j % d; s.stamp[p] == j+1 {
					s.carry = s.vals[p]
				}
			}
		}
		for i := range s.vals {
			s.vals[i] = 0
			s.stamp[i] = 0
		}
		s.last = idx
		return
	}
	for j := s.last + 1; j <= idx; j++ {
		p := j % d
		if old := j - d; old >= 0 && s.stamp[p] == old+1 {
			if s.kind == kindGauge {
				s.carry = s.vals[p]
			}
		}
		s.vals[p] = 0
		s.stamp[p] = 0
	}
	s.last = idx
}

// bucket returns the ring position for interval idx, advancing the ring if
// idx is new. It returns -1 for writes older than the retained window.
func (s *series) bucket(idx int64) int {
	if idx < 0 {
		idx = 0
	}
	if idx > s.last {
		s.advance(idx)
	}
	if idx <= s.last-s.depth {
		s.lost++
		return -1
	}
	p := idx % s.depth
	s.stamp[p] = idx + 1
	return int(p)
}

// Counter is a monotonically accumulating instrument: each Add lands in
// the interval containing t (per-interval deltas) and in the cumulative
// total. The zero Counter is a valid no-op sink.
type Counter struct{ s *series }

// Add records v at virtual time t. A zero-value Counter ignores the call.
//
//pvfslint:hotpath
func (c Counter) Add(t sim.Time, v int64) {
	s := c.s
	if s == nil {
		return
	}
	s.total += v
	if p := s.bucket(int64(t) / s.interval); p >= 0 {
		s.vals[p] += v
	}
}

// Total returns the cumulative sum (zero for a no-op sink).
func (c Counter) Total() int64 {
	if c.s == nil {
		return 0
	}
	return c.s.total
}

// Gauge is a last-value instrument: each interval remembers the value it
// ended with, and export carries values forward across silent intervals.
// The zero Gauge is a valid no-op sink.
type Gauge struct{ s *series }

// Set records the absolute value v at virtual time t.
//
//pvfslint:hotpath
func (g Gauge) Set(t sim.Time, v int64) {
	s := g.s
	if s == nil {
		return
	}
	s.total = v
	if v > s.hi {
		s.hi = v
	}
	if p := s.bucket(int64(t) / s.interval); p >= 0 {
		s.vals[p] = v
	}
}

// Add shifts the gauge by d at virtual time t (queue-depth style: +1 on
// enqueue, -1 on dequeue).
//
//pvfslint:hotpath
func (g Gauge) Add(t sim.Time, d int64) {
	s := g.s
	if s == nil {
		return
	}
	s.total += d
	if s.total > s.hi {
		s.hi = s.total
	}
	if p := s.bucket(int64(t) / s.interval); p >= 0 {
		s.vals[p] = s.total
	}
}

// Current returns the gauge's present value.
func (g Gauge) Current() int64 {
	if g.s == nil {
		return 0
	}
	return g.s.total
}

// High returns the gauge's high-water mark.
func (g Gauge) High() int64 {
	if g.s == nil {
		return 0
	}
	return g.s.hi
}

// Busy accumulates busy nanoseconds per interval: AddSpan splits [from,
// to) across the intervals it covers, so vals[i]/interval is the
// utilization of the resource in interval i. The zero Busy is a valid
// no-op sink.
type Busy struct{ s *series }

// AddSpan charges the busy span [from, to) at its completion time. Spans
// are charged by the owning node, typically right after the modeled
// Sleep, so `to` is the node's current time.
//
//pvfslint:hotpath
func (b Busy) AddSpan(from, to sim.Time) {
	s := b.s
	if s == nil || to <= from {
		return
	}
	t0, t1 := int64(from), int64(to)
	s.total += t1 - t0
	for t0 < t1 {
		idx := t0 / s.interval
		end := (idx + 1) * s.interval
		if end > t1 {
			end = t1
		}
		if p := s.bucket(idx); p >= 0 {
			s.vals[p] += end - t0
		}
		t0 = end
	}
}

// Total returns the cumulative busy nanoseconds.
func (b Busy) Total() int64 {
	if b.s == nil {
		return 0
	}
	return b.s.total
}

// node is one registered node's instrument set.
type node struct {
	name   string
	byName map[string]*series
	list   []*series // creation order
}

// Registry owns the per-node series. A nil *Registry is valid: every
// instrument it hands out is the zero-value no-op sink.
type Registry struct {
	cfg   Config
	nodes map[string]*node
	order []string // registration order, canonical for export
}

// NewRegistry creates an empty registry.
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg.withDefaults(), nodes: make(map[string]*node)}
}

// Interval returns the configured bucket width.
func (r *Registry) Interval() sim.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.Interval
}

// RegisterNodes declares node names. Instruments can only be created for
// registered nodes: on a sharded engine a series must be updated only by
// its node's own events, so every producer must be named up front.
// Registering a name twice is a no-op.
func (r *Registry) RegisterNodes(names ...string) {
	if r == nil {
		return
	}
	for _, name := range names {
		if _, ok := r.nodes[name]; ok {
			continue
		}
		r.nodes[name] = &node{name: name, byName: make(map[string]*series)}
		r.order = append(r.order, name)
	}
}

func (r *Registry) get(nodeName, name string, k kind) *series {
	if r == nil {
		return nil
	}
	n := r.nodes[nodeName]
	if n == nil {
		sim.Failf("metrics: instrument %q for unregistered node %q (register every node name up front)", name, nodeName)
	}
	if s, ok := n.byName[name]; ok {
		if s.kind != k {
			sim.Failf("metrics: %s/%s redeclared as %v (was %v)", nodeName, name, k, s.kind)
		}
		return s
	}
	s := &series{
		node: nodeName, name: name, kind: k,
		interval: int64(r.cfg.Interval), depth: int64(r.cfg.Depth),
		vals: make([]int64, r.cfg.Depth), stamp: make([]int64, r.cfg.Depth),
		last: -1,
	}
	n.byName[name] = s
	n.list = append(n.list, s)
	return s
}

// Counter returns node's counter series called name, creating it on first
// use. On a nil registry it returns the no-op sink.
func (r *Registry) Counter(node, name string) Counter {
	return Counter{s: r.get(node, name, kindCounter)}
}

// Gauge returns node's gauge series called name, creating it on first use.
func (r *Registry) Gauge(node, name string) Gauge {
	return Gauge{s: r.get(node, name, kindGauge)}
}

// Busy returns node's busy series called name, creating it on first use.
func (r *Registry) Busy(node, name string) Busy {
	return Busy{s: r.get(node, name, kindBusy)}
}
