package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pvfsib/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n * 1000) }

func newTestRegistry(depth int) *Registry {
	r := NewRegistry(Config{Interval: 10 * time.Microsecond, Depth: depth})
	r.RegisterNodes("a", "b")
	return r
}

func TestCounterBuckets(t *testing.T) {
	r := newTestRegistry(16)
	c := r.Counter("a", "reqs")
	c.Add(us(5), 1)  // interval 0
	c.Add(us(12), 2) // interval 1
	c.Add(us(14), 3) // interval 1
	c.Add(us(35), 4) // interval 3
	if got := c.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	ss := r.Snapshot(us(39))
	if len(ss) != 1 {
		t.Fatalf("series count = %d, want 1", len(ss))
	}
	s := ss[0]
	want := []int64{1, 5, 0, 4}
	if len(s.Vals) != len(want) {
		t.Fatalf("vals = %v, want %v", s.Vals, want)
	}
	for i := range want {
		if s.Vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", s.Vals, want)
		}
	}
	if s.Kind != "counter" || s.Node != "a" || s.Name != "reqs" || s.First != 0 {
		t.Fatalf("series header = %+v", s)
	}
}

func TestGaugeCarryForward(t *testing.T) {
	r := newTestRegistry(16)
	g := r.Gauge("a", "q")
	g.Add(us(5), 3)  // interval 0: 3
	g.Add(us(11), 2) // interval 1: 5
	// intervals 2..4 silent
	g.Set(us(52), 1) // interval 5: 1
	if g.Current() != 1 || g.High() != 5 {
		t.Fatalf("current=%d high=%d, want 1/5", g.Current(), g.High())
	}
	s := r.Snapshot(us(75))[0]
	want := []int64{3, 5, 5, 5, 5, 1, 1, 1} // carry across silence and past last write
	for i := range want {
		if s.Vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", s.Vals, want)
		}
	}
}

func TestBusySpanSplit(t *testing.T) {
	r := newTestRegistry(16)
	b := r.Busy("a", "disk")
	b.AddSpan(us(5), us(27)) // 5us in interval 0, 10 in 1, 7 in 2
	b.AddSpan(us(28), us(29))
	if b.Total() != 23000 {
		t.Fatalf("Total = %d, want 23000", b.Total())
	}
	s := r.Snapshot(us(29))[0]
	want := []int64{5000, 10000, 8000}
	for i := range want {
		if s.Vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", s.Vals, want)
		}
	}
}

func TestRingEvictionAndCarry(t *testing.T) {
	r := newTestRegistry(4)
	c := r.Counter("a", "n")
	g := r.Gauge("a", "q")
	for i := int64(0); i < 10; i++ {
		c.Add(us(i*10+1), 1)
		g.Set(us(i*10+1), i)
	}
	ss := r.Snapshot(us(99)) // window = intervals 6..9
	for _, s := range ss {
		if s.First != 6 || len(s.Vals) != 4 {
			t.Fatalf("window = first=%d len=%d, want 6/4", s.First, len(s.Vals))
		}
	}
	// g silent after 91us; snapshot at 130 pushes intervals 10..13; the
	// window starts past the last write and must carry the current value.
	s2 := r.Snapshot(us(135))
	for _, s := range s2 {
		if s.Name != "q" {
			continue
		}
		for i, v := range s.Vals {
			if v != 9 {
				t.Fatalf("gauge carry after silence: vals[%d] = %d, want 9 (%v)", i, v, s.Vals)
			}
		}
	}
	// A write far in the past (beyond the ring) is counted as lost but
	// still lands in the total.
	c.Add(us(200), 1) // advance ring to interval 20
	c.Add(us(10), 5)  // interval 1: long gone
	if c.Total() != 16 {
		t.Fatalf("Total = %d, want 16", c.Total())
	}
	for _, s := range r.Snapshot(us(209)) {
		if s.Name == "n" && s.Lost != 1 {
			t.Fatalf("Lost = %d, want 1", s.Lost)
		}
	}
}

func TestNilRegistryAndZeroHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "n")
	g := r.Gauge("x", "q")
	b := r.Busy("x", "u")
	c.Add(us(1), 5)
	g.Set(us(1), 5)
	g.Add(us(2), 1)
	b.AddSpan(us(1), us(2))
	if c.Total() != 0 || g.Current() != 0 || g.High() != 0 || b.Total() != 0 {
		t.Fatal("zero handles must report zero")
	}
	if r.Snapshot(us(10)) != nil || r.Current("n") != 0 || r.Intervals(us(10)) != 0 {
		t.Fatal("nil registry must report empty")
	}
	if err := r.WritePromText(&bytes.Buffer{}, us(10)); err != nil {
		t.Fatal(err)
	}
	var zc Counter
	var zg Gauge
	var zb Busy
	zc.Add(us(1), 1)
	zg.Add(us(1), 1)
	zb.AddSpan(us(0), us(1))
}

func TestCanonicalOrderAndCurrent(t *testing.T) {
	r := newTestRegistry(8)
	// Create in scrambled order; export must be node-registration then
	// name order.
	r.Counter("b", "zz").Add(us(1), 7)
	r.Counter("a", "mm").Add(us(1), 1)
	r.Counter("a", "aa").Add(us(1), 2)
	r.Counter("b", "aa").Add(us(1), 3)
	ss := r.Snapshot(us(9))
	var got []string
	for _, s := range ss {
		got = append(got, s.Node+"/"+s.Name)
	}
	want := "a/aa a/mm b/aa b/zz"
	if strings.Join(got, " ") != want {
		t.Fatalf("order = %v, want %s", got, want)
	}
	if v := r.Current("aa"); v != 5 {
		t.Fatalf("Current(aa) = %d, want 5", v)
	}
	if v := r.Current("nope"); v != 0 {
		t.Fatalf("Current(nope) = %d, want 0", v)
	}
}

func TestWriteJSONAndProm(t *testing.T) {
	r := newTestRegistry(8)
	r.Counter("a", "net.tx.bytes").Add(us(3), 100)
	r.Gauge("a", "q.depth").Set(us(3), 4)
	r.Busy("b", "disk.busy").AddSpan(us(0), us(5))
	var j bytes.Buffer
	if err := r.WriteJSON(&j, us(9)); err != nil {
		t.Fatal(err)
	}
	for _, wantSub := range []string{`"interval_ns": 10000`, `"net.tx.bytes"`, `"kind": "busy"`} {
		if !strings.Contains(j.String(), wantSub) {
			t.Fatalf("JSON missing %s:\n%s", wantSub, j.String())
		}
	}
	var p bytes.Buffer
	if err := r.WritePromText(&p, us(9)); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	for _, wantSub := range []string{
		"# TYPE pvfs_net_tx_bytes_total counter",
		`pvfs_net_tx_bytes_total{node="a"} 100`,
		"# TYPE pvfs_q_depth gauge",
		`pvfs_q_depth{node="a"} 4`,
		"# TYPE pvfs_disk_busy_busy_ns_total counter",
		`pvfs_disk_busy_busy_ns_total{node="b"} 5000`,
	} {
		if !strings.Contains(out, wantSub) {
			t.Fatalf("prom output missing %q:\n%s", wantSub, out)
		}
	}
	// Metric families must be contiguous and sorted.
	idxDisk := strings.Index(out, "pvfs_disk_busy")
	idxNet := strings.Index(out, "pvfs_net_tx_bytes")
	idxQ := strings.Index(out, "pvfs_q_depth")
	if !(idxDisk < idxNet && idxNet < idxQ) {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestUpdateAllocFree(t *testing.T) {
	r := newTestRegistry(64)
	c := r.Counter("a", "n")
	g := r.Gauge("a", "q")
	b := r.Busy("a", "u")
	var tick int64
	allocs := testing.AllocsPerRun(200, func() {
		tick += 3000
		c.Add(sim.Time(tick), 1)
		g.Add(sim.Time(tick), 1)
		b.AddSpan(sim.Time(tick-2000), sim.Time(tick))
	})
	if allocs != 0 {
		t.Fatalf("enabled-path update allocates: %v allocs/op", allocs)
	}
}
