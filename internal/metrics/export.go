package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pvfsib/internal/sim"
)

// Series is one exported time series: per-interval values for the window
// [First, First+len(Vals)) of intervals, plus the run total. Counters and
// busy series report per-interval deltas / busy-ns; gauges report the
// value each interval ended with, carried forward across silent
// intervals.
type Series struct {
	Node  string  `json:"node"`
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Total int64   `json:"total"`
	First int64   `json:"first"`
	Vals  []int64 `json:"vals"`
	Lost  int64   `json:"lost,omitempty"`
}

// Dump is the JSON envelope WriteJSON emits.
type Dump struct {
	IntervalNS int64    `json:"interval_ns"`
	UntilNS    int64    `json:"until_ns"`
	Series     []Series `json:"series"`
}

// lastIdx returns the index of the interval containing until (the final,
// possibly partial, interval of the run).
func (r *Registry) lastIdx(until sim.Time) int64 {
	if until < 0 {
		return 0
	}
	return int64(until) / int64(r.cfg.Interval)
}

// Snapshot materializes every series over the intervals [first, lastIdx]
// where lastIdx covers `until` (pass the engine clock) and first is
// bounded by the ring depth. The order is canonical — nodes in
// registration order, series in name order within a node — so the
// snapshot is byte-identical at any shard count.
func (r *Registry) Snapshot(until sim.Time) []Series {
	if r == nil {
		return nil
	}
	lastIdx := r.lastIdx(until)
	first := lastIdx + 1 - int64(r.cfg.Depth)
	if first < 0 {
		first = 0
	}
	n := int(lastIdx - first + 1)
	var out []Series
	for _, nodeName := range r.order {
		nd := r.nodes[nodeName]
		list := make([]*series, len(nd.list))
		copy(list, nd.list)
		sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
		for _, s := range list {
			vals := make([]int64, n)
			carry := s.carry
			for i := 0; i < n; i++ {
				idx := first + int64(i)
				switch {
				case idx > s.last:
					if s.kind == kindGauge {
						vals[i] = s.total
					}
				case s.stamp[idx%s.depth] == idx+1:
					vals[i] = s.vals[idx%s.depth]
					carry = vals[i]
				default:
					if s.kind == kindGauge {
						vals[i] = carry
					}
				}
			}
			out = append(out, Series{
				Node: s.node, Name: s.name, Kind: s.kind.String(),
				Total: s.total, First: first, Vals: vals, Lost: s.lost,
			})
		}
	}
	return out
}

// Current sums the instantaneous value of every series called name across
// all nodes: cumulative totals for counters and busy series, current
// values for gauges. Iteration follows registration order, so the result
// is deterministic. A nil registry reports zero.
func (r *Registry) Current(name string) int64 {
	if r == nil {
		return 0
	}
	var sum int64
	for _, nodeName := range r.order {
		if s, ok := r.nodes[nodeName].byName[name]; ok {
			sum += s.total
		}
	}
	return sum
}

// Intervals reports how many intervals the run spans up to `until`.
func (r *Registry) Intervals(until sim.Time) int64 {
	if r == nil {
		return 0
	}
	return r.lastIdx(until) + 1
}

// WriteJSON emits every series as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer, until sim.Time) error {
	d := Dump{
		IntervalNS: int64(r.Interval()),
		UntilNS:    int64(until),
		Series:     r.Snapshot(until),
	}
	buf, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// promName maps a series name to a Prometheus metric name:
// "net.tx.bytes" -> "pvfs_net_tx_bytes".
func promName(name string) string {
	mapped := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			return c
		default:
			return '_'
		}
	}, name)
	return "pvfs_" + mapped
}

// WritePromText emits the instantaneous state of every series in
// Prometheus text exposition format: counters and busy series as
// `<name>_total` counters (busy in nanoseconds), gauges as gauges.
// Samples of one metric are grouped (a format requirement), metric names
// are sorted, and nodes appear in registration order — fully
// deterministic.
func (r *Registry) WritePromText(w io.Writer, until sim.Time) error {
	if r == nil {
		return nil
	}
	type sample struct {
		node string
		val  int64
	}
	byName := make(map[string][]sample)
	kinds := make(map[string]kind)
	var names []string
	for _, nodeName := range r.order {
		nd := r.nodes[nodeName]
		for _, s := range nd.list {
			if _, ok := byName[s.name]; !ok {
				names = append(names, s.name)
				kinds[s.name] = s.kind
			}
			byName[s.name] = append(byName[s.name], sample{node: nodeName, val: s.total})
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		ptype := "counter"
		switch kinds[name] {
		case kindGauge:
			ptype = "gauge"
		case kindBusy:
			pn += "_busy_ns"
		}
		if ptype == "counter" {
			pn += "_total"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, ptype); err != nil {
			return err
		}
		for _, smp := range byName[name] {
			if _, err := fmt.Fprintf(w, "%s{node=%q} %d\n", pn, smp.node, smp.val); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "# EOF (virtual time %dns)\n", int64(until))
	return err
}
