package sim

import "fmt"

// Must and Failf are the sanctioned escape hatch for code running inside a
// simulation process with no error path to its caller (an adapter's dispatch
// engine, a benchmark driver's worker). The panic unwinds through Engine.Run
// like any process failure, but keeping the call here — rather than a bare
// panic at each site — keeps the pvfslint nopanic rule meaningful: library
// code either returns a wrapped error or deliberately routes through the
// scheduler's single audited failure point.

// Must panics if err is non-nil. Use it inside simulation processes for
// errors that indicate a broken model invariant rather than a failable
// operation.
func Must(err error) {
	if err != nil {
		panic(err)
	}
}

// Failf panics with a formatted message. Use it inside simulation processes
// for fatal conditions that have no error value to propagate.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
