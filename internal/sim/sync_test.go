package sim

import (
	"errors"
	"strings"
	"testing"
)

// The synchronization primitives keep panicking on contract violations: a
// negative count or an idle release is a corrupted simulation, not a
// recoverable condition. These tests pin that contract down (the nopanic
// analyzer exempts this package for exactly this reason).

func TestWaitGroupNegativeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative WaitGroup count")
		}
	}()
	e := NewEngine()
	wg := e.NewWaitGroup()
	wg.Add(1)
	wg.Done()
	wg.Done()
}

func TestWaitGroupAddNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when Add drives the count below zero")
		}
	}()
	e := NewEngine()
	e.NewWaitGroup().Add(-3)
}

func TestResourceBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on capacity < 1")
		}
	}()
	NewEngine().NewResource("bad", 0)
}

func TestReleaseIdleAfterBalancedUsePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 2)
	e.Go("t", func(p *Proc) {
		r.Acquire(p)
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic: every unit was already released")
		}
	}()
	r.Release()
}

func TestMustNilIsNoOp(t *testing.T) {
	Must(nil)
}

func TestMustPanicsWithOriginalError(t *testing.T) {
	want := errors.New("boom")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, want) {
			t.Errorf("recovered %v, want the original error", r)
		}
	}()
	Must(want)
}

func TestFailfFormatsMessage(t *testing.T) {
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "sim: lost proc 7") {
			t.Errorf("recovered %v, want formatted message", r)
		}
	}()
	Failf("sim: lost proc %d", 7)
}
