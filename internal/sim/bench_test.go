package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkEventHeap measures the engine's raw event turnover: a chain of
// timed callbacks, each scheduling its successor. Exercises the event free
// list and the heap push/pop path.
func BenchmarkEventHeap(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, step)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeapReady measures the zero-delay fast path: callbacks due
// at the current instant go through the ready FIFO, not the heap.
func BenchmarkEventHeapReady(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(0, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailbox measures a ping-pong between two processes over two
// mailboxes: each round trip is two sends, two receives, and two
// park/wake cycles.
func BenchmarkMailbox(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	req := e.NewMailbox("req")
	rsp := e.NewMailbox("rsp")
	e.Go("server", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			rsp.Send(req.Recv(p))
		}
	})
	b.ResetTimer()
	e.Go("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv(p)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResource measures contended acquire/release: two processes
// sharing a capacity-1 resource, so every acquisition after the first
// parks and is woken by the peer's release.
func BenchmarkResource(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	r := e.NewResource("lock", 1)
	worker := func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			r.Acquire(p)
			p.Yield()
			r.Release()
		}
	}
	b.ResetTimer()
	e.Go("a", worker)
	e.Go("b", worker)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// cellWorkload populates the engine with the shape of one storage cell:
// nIOD server groups and nClient client groups, each running one process
// that advances steps timed events with work iterations of local compute
// per event. Traffic is shard-local — the best case sharding is graded
// on. The xor-shift fold keeps the compiler from deleting the work.
func cellWorkload(e *Engine, nIOD, nClient, steps, work int, sink *uint64) {
	spawn := func(kind string, i int) {
		g := e.AddGroup(fmt.Sprintf("%s%d", kind, i))
		seed := uint64(i)*2654435761 + 1
		e.GoOn(g, fmt.Sprintf("%s-p%d", kind, i), func(p *Proc) {
			h := seed
			for s := 0; s < steps; s++ {
				for w := 0; w < work; w++ {
					h ^= h << 13
					h ^= h >> 7
					h ^= h << 17
				}
				p.Sleep(time.Microsecond)
			}
			atomic.AddUint64(sink, h)
		})
	}
	for i := 0; i < nIOD; i++ {
		spawn("iod", i)
	}
	for i := 0; i < nClient; i++ {
		spawn("cn", i)
	}
}

// benchmarkShardedCell measures event throughput on a 10-iod/100-client
// cell (the 100/1000 cell of the scaling study at a tenth scale, so
// per-op numbers stabilize quickly) at the given shard count.
func benchmarkShardedCell(b *testing.B, shards int) {
	b.ReportAllocs()
	e := NewEngine()
	if shards > 1 {
		e.SetShards(shards)
		e.SetLookahead(6 * time.Microsecond)
	}
	const nIOD, nClient = 10, 100
	steps := b.N/(nIOD+nClient) + 1
	var sink uint64
	cellWorkload(e, nIOD, nClient, steps, 150, &sink)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkShardedCell1(b *testing.B) { benchmarkShardedCell(b, 1) }
func BenchmarkShardedCell2(b *testing.B) { benchmarkShardedCell(b, 2) }
func BenchmarkShardedCell4(b *testing.B) { benchmarkShardedCell(b, 4) }

// TestShardedCellThroughput runs the full 100-iod/1000-client cell once
// single-sharded and once on 4 shards, reports the speedup, and — on
// hosts with at least 4 CPUs — asserts the parallel engine pays for
// itself. Wall-clock measurement is host diagnostics, never simulation
// output, so determinism is unaffected.
func TestShardedCellThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full cell twice")
	}
	run := func(shards int) time.Duration {
		e := NewEngine()
		if shards > 1 {
			e.SetShards(shards)
			e.SetLookahead(6 * time.Microsecond)
		}
		var sink uint64
		cellWorkload(e, 100, 1000, 50, 150, &sink)
		start := time.Now() //pvfslint:ok detcheck wall-clock speedup is host diagnostics, never part of results
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start) //pvfslint:ok detcheck wall-clock speedup is host diagnostics, never part of results
	}
	t1, t4 := run(1), run(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("cell 100x1000: 1 shard %v, 4 shards %v, speedup %.2fx (NumCPU=%d)",
		t1, t4, speedup, runtime.NumCPU())
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; the 4-shard speedup assertion needs at least 4", runtime.NumCPU())
	}
	if speedup < 2.5 {
		t.Errorf("4-shard speedup %.2fx, want >= 2.5x on a %d-CPU host", speedup, runtime.NumCPU())
	}
}
