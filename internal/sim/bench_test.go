package sim

import (
	"testing"
	"time"
)

// BenchmarkEventHeap measures the engine's raw event turnover: a chain of
// timed callbacks, each scheduling its successor. Exercises the event free
// list and the heap push/pop path.
func BenchmarkEventHeap(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, step)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventHeapReady measures the zero-delay fast path: callbacks due
// at the current instant go through the ready FIFO, not the heap.
func BenchmarkEventHeapReady(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(0, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailbox measures a ping-pong between two processes over two
// mailboxes: each round trip is two sends, two receives, and two
// park/wake cycles.
func BenchmarkMailbox(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	req := e.NewMailbox("req")
	rsp := e.NewMailbox("rsp")
	e.Go("server", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			rsp.Send(req.Recv(p))
		}
	})
	b.ResetTimer()
	e.Go("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			rsp.Recv(p)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResource measures contended acquire/release: two processes
// sharing a capacity-1 resource, so every acquisition after the first
// parks and is woken by the peer's release.
func BenchmarkResource(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	r := e.NewResource("lock", 1)
	worker := func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			r.Acquire(p)
			p.Yield()
			r.Release()
		}
	}
	b.ResetTimer()
	e.Go("a", worker)
	e.Go("b", worker)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
