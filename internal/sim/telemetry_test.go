package sim

import (
	"fmt"
	"testing"
	"time"
)

func nopAfn(any) {}

// telemetryWorkload runs a fixed grouped workload (8 groups, each
// sleeping and relaying cross-group events) and returns the engine's
// telemetry.
func telemetryWorkload(shards int) Telemetry {
	eng := NewEngine()
	eng.SetShards(shards)
	la := 5 * time.Microsecond
	eng.SetLookahead(la)
	groups := make([]*Group, 8)
	for i := range groups {
		groups[i] = eng.AddGroup(fmt.Sprintf("g%d", i))
	}
	for i, g := range groups {
		next := groups[(i+1)%len(groups)]
		eng.GoOn(g, fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Sleep(10 * time.Microsecond)
				p.AfterCallOn(next, la, nopAfn, nil)
			}
		})
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Telemetry()
}

func TestTelemetryTotalsShardInvariant(t *testing.T) {
	base := telemetryWorkload(1)
	if base.TotalEvents() == 0 {
		t.Fatal("no events executed")
	}
	if base.Windows != 0 {
		t.Fatalf("unsharded engine reports %d windows, want 0", base.Windows)
	}
	if base.Crossings() != 0 {
		t.Fatalf("unsharded engine reports %d crossings, want 0", base.Crossings())
	}
	if got := base.Imbalance(); got != 1 {
		t.Fatalf("single-shard imbalance = %v, want 1", got)
	}
	for _, n := range []int{2, 4} {
		tm := telemetryWorkload(n)
		// The per-shard split depends on placement, but the total is a
		// property of the timeline alone.
		if tm.TotalEvents() != base.TotalEvents() {
			t.Fatalf("shards=%d: total events %d != unsharded %d", n, tm.TotalEvents(), base.TotalEvents())
		}
		if tm.Windows == 0 {
			t.Fatalf("shards=%d: no synchronization windows recorded", n)
		}
		if tm.Crossings() == 0 {
			t.Fatalf("shards=%d: relay workload recorded no inbox crossings", n)
		}
		if len(tm.Shards) != n {
			t.Fatalf("shards=%d: %d shard entries", n, len(tm.Shards))
		}
		if tm.Imbalance() < 1 {
			t.Fatalf("shards=%d: imbalance %v < 1", n, tm.Imbalance())
		}
		var maxWin int64
		for _, s := range tm.Shards {
			if s.MaxWindowEvents > maxWin {
				maxWin = s.MaxWindowEvents
			}
		}
		if maxWin == 0 {
			t.Fatalf("shards=%d: max window events is zero", n)
		}
	}
}
