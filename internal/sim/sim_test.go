package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*time.Microsecond) {
		t.Errorf("woke at %v, want 5µs", at)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("time advanced to %v on zero/negative sleep", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(Time(30), func() { order = append(order, 3) })
	e.Schedule(Time(10), func() { order = append(order, 1) })
	e.Schedule(Time(20), func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimeEventsRunFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(100), func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestMailboxDeliversInOrder(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("mb")
	var got []int
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	e.Go("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Microsecond)
			mb.Send(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

func TestMailboxRecvBlocksUntilSend(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("mb")
	var recvAt Time
	e.Go("recv", func(p *Proc) {
		mb.Recv(p)
		recvAt = p.Now()
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		mb.Send("hi")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != Time(42*time.Microsecond) {
		t.Errorf("recv completed at %v, want 42µs", recvAt)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("mb")
	if _, ok := mb.TryRecv(); ok {
		t.Error("TryRecv on empty mailbox reported ok")
	}
	mb.Send(7)
	v, ok := mb.TryRecv()
	if !ok || v.(int) != 7 {
		t.Errorf("TryRecv = %v, %v; want 7, true", v, ok)
	}
	if mb.Len() != 0 {
		t.Errorf("Len = %d after drain, want 0", mb.Len())
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 10*time.Microsecond)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(30 * time.Microsecond)}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("user %d finished at %v, want %v", i, done[i], want[i])
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("cpu", 2)
	var last Time
	for i := 0; i < 4; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 10*time.Microsecond)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs of 10µs on 2 servers => makespan 20µs.
	if last != Time(20*time.Microsecond) {
		t.Errorf("makespan = %v, want 20µs", last)
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.GoAt(Time(i), "user", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v not FIFO", order)
		}
	}
}

func TestReleaseIdleResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on releasing idle resource")
		}
	}()
	e := NewEngine()
	r := e.NewResource("r", 1)
	r.Release()
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := e.NewWaitGroup()
	wg.Add(3)
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(30*time.Microsecond) {
		t.Errorf("waiter woke at %v, want 30µs", doneAt)
	}
}

func TestWaitGroupZeroDoesNotBlock(t *testing.T) {
	e := NewEngine()
	wg := e.NewWaitGroup()
	ran := false
	e.Go("w", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("Wait blocked with zero count")
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	e := NewEngine()
	c := e.NewCond()
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(time.Microsecond)
		c.Signal()
		p.Sleep(time.Microsecond)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("never")
	e.Go("stuck", func(p *Proc) {
		mb.Recv(p)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Errorf("Parked = %v, want [stuck]", de.Parked)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from crashed process")
		}
	}()
	e := NewEngine()
	e.Go("boom", func(p *Proc) {
		panic("kaboom")
	})
	_ = e.Run()
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(Time(10), func() { fired++ })
	e.Schedule(Time(1000), func() { fired++ })
	if err := e.RunUntil(Time(100)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(100) {
		t.Errorf("Now = %v, want 100", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestGoAtStartsLater(t *testing.T) {
	e := NewEngine()
	var started Time
	e.GoAt(Time(77), "late", func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != Time(77) {
		t.Errorf("started at %v, want 77", started)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	depth := 0
	var spawn func(p *Proc, n int)
	spawn = func(p *Proc, n int) {
		if n == 0 {
			return
		}
		p.Sleep(time.Microsecond)
		depth++
		e.Go("child", func(q *Proc) { spawn(q, n-1) })
	}
	e.Go("root", func(p *Proc) { spawn(p, 5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500)
	if tm.Add(500).Sub(tm) != 500 {
		t.Error("Add/Sub mismatch")
	}
	if Time(2e9).Seconds() != 2.0 {
		t.Errorf("Seconds = %v, want 2", Time(2e9).Seconds())
	}
	if Time(time.Second).String() != "1s" {
		t.Errorf("String = %q", Time(time.Second).String())
	}
}

func TestShutdownTerminatesParkedProcs(t *testing.T) {
	e := NewEngine()
	mb := e.NewMailbox("work")
	var cleanupRan bool
	e.Go("daemon", func(p *Proc) {
		defer func() { cleanupRan = true }()
		for {
			mb.Recv(p)
		}
	})
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(time.Hour) // will be cut short by Shutdown after RunUntil
	})
	if err := e.RunUntil(Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if !cleanupRan {
		t.Error("daemon's deferred cleanup did not run on Shutdown")
	}
	nParked, live := 0, 0
	for _, s := range e.shards {
		nParked += s.nParked
		live += s.live
	}
	if nParked != 0 {
		t.Errorf("%d processes still parked after Shutdown", nParked)
	}
	if live != 0 {
		t.Errorf("live = %d after Shutdown, want 0", live)
	}
}

func TestShutdownOnIdleEngine(t *testing.T) {
	e := NewEngine()
	e.Go("quick", func(p *Proc) { p.Sleep(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown() // nothing parked: must not hang or panic
}

// TestShardedEngineRerun: one engine, several Run phases with fresh
// processes spawned between them. The shard workers must come back up
// after every Run (a stop is a message on the work channel, not a close),
// and the post-run clock sync must keep every phase byte-identical to the
// single-shard engine.
func TestShardedEngineRerun(t *testing.T) {
	run := func(shards int) string {
		e := NewEngine()
		if shards > 1 {
			e.SetShards(shards)
			e.SetLookahead(6 * time.Microsecond)
		}
		gs := make([]*Group, 4)
		for i := range gs {
			gs[i] = e.AddGroup(fmt.Sprintf("g%d", i))
		}
		ends := make([]Time, len(gs))
		out := ""
		for phase := 0; phase < 3; phase++ {
			for i, g := range gs {
				i := i
				d := time.Duration(i+1+phase) * 10 * time.Microsecond
				e.GoOn(g, fmt.Sprintf("p%d-%d", phase, i), func(p *Proc) {
					p.Sleep(d)
					ends[i] = p.Now()
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("phase%d now=%d ends=%v\n", phase, int64(e.Now()), ends)
		}
		return out
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d diverges across reruns:\n--- got ---\n%s--- want ---\n%s", shards, got, want)
		}
	}
}
