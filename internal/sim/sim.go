// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock and goroutine-backed processes.
//
// The engine drives at most one process at a time, so simulation code needs
// no locking and is fully deterministic: the interleaving of processes is a
// function of the event timeline alone, never of the Go scheduler. Virtual
// time advances only when the event heap says so; data manipulation within a
// process is instantaneous in virtual time.
//
// A process is an ordinary function running on its own goroutine. It receives
// a *Proc handle and uses it to interact with virtual time:
//
//	eng := sim.NewEngine()
//	eng.Go("client", func(p *sim.Proc) {
//		p.Sleep(10 * time.Microsecond)
//		fmt.Println(p.Now())
//	})
//	eng.Run()
//
// Synchronization primitives (Mailbox, Resource, WaitGroup, Cond) are built
// on the park/wake mechanism and never consume virtual time by themselves.
//
// The inner loop is allocation-free in steady state: event structs are
// recycled through a free list, every process carries its own reusable wake
// event (a parked process has at most one pending resume), and events due at
// the current instant bypass the heap through a FIFO ready queue.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Exactly one of fn, afn, or proc is set: fn
// is a plain closure, afn+arg is the closure-free form (AfterCall), and proc
// marks a process wake event living inside its Proc (never recycled here).
type event struct {
	t    Time
	seq  uint64 // tie-break so equal-time events run FIFO
	fn   func()
	afn  func(any)
	arg  any
	proc *Proc
	next *event // free-list link
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h *eventHeap) pushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) popEv() *event   { return heap.Pop(h).(*event) }

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now    Time
	events eventHeap
	// ready holds events due at the current instant, in seq order. Any
	// event created for t == now necessarily carries a larger seq than
	// every pending event, so FIFO append preserves (t, seq) order while
	// skipping the heap's log-n push/pop — the common case for wakes,
	// zero-delay yields, and same-instant handoffs.
	ready     []*event
	readyHead int
	seq       uint64
	free      *event // recycled fn/afn events

	yield   chan struct{} // a running proc signals here when it parks or exits
	procs   []*Proc       // spawned and not yet finished
	nParked int
	live    int // processes spawned and not yet finished
	stopped bool
	killed  bool

	panicked any // propagated from a crashed process
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc returns a recycled event or a fresh one.
func (e *Engine) alloc() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// scheduleEv stamps the event's time and sequence and enqueues it.
func (e *Engine) scheduleEv(ev *event, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.t, ev.seq = t, e.seq
	if t == e.now {
		e.ready = append(e.ready, ev)
	} else {
		e.events.pushEv(ev)
	}
}

// Schedule runs fn at time t (not before the current time).
func (e *Engine) Schedule(t Time, fn func()) {
	ev := e.alloc()
	ev.fn = fn
	e.scheduleEv(ev, t)
}

// After runs fn d from now.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// AfterCall runs fn(arg) d from now. Passing a package-level function and an
// already-live argument keeps hot paths free of per-call closure allocations;
// it is otherwise identical to After.
func (e *Engine) AfterCall(d Duration, fn func(any), arg any) {
	ev := e.alloc()
	ev.afn, ev.arg = fn, arg
	e.scheduleEv(ev, e.now.Add(d))
}

// Proc is the handle a simulation process uses to interact with virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	// wakeEv is the process's reusable wake slot: a blocked process has at
	// most one pending resume, so its transfer event never needs the
	// engine's free list, let alone a fresh allocation.
	wakeEv   event
	parked   bool
	sleeping bool // parked with the wake slot already queued (Sleep)
	idx      int  // position in eng.procs, for O(1) removal
	// traceCtx is the packed trace context (request + span IDs) the
	// process is currently working under. The engine never interprets it
	// — it is an opaque word the trace layer threads through spawns and
	// wire messages so child work lands under the right request.
	traceCtx uint64
}

// TraceCtx returns the process's packed trace context (zero = untraced).
func (p *Proc) TraceCtx() uint64 { return p.traceCtx }

// SetTraceCtx installs the packed trace context for subsequent work on
// this process.
func (p *Proc) SetTraceCtx(ctx uint64) { p.traceCtx = ctx }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the label given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a new process that begins executing at the current virtual time.
// The name is used in deadlock reports.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt spawns a new process that begins executing at time t.
func (e *Engine) GoAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	p.wakeEv.proc = p
	p.idx = len(e.procs)
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.resume // wait for the engine to hand us the run token
		defer func() {
			if r := recover(); r != nil {
				e.panicked = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			e.live--
			e.unregister(p)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.scheduleEv(&p.wakeEv, t)
	return p
}

// unregister removes a finished process from the live list. It runs on the
// process's goroutine while the engine is blocked on the yield handshake, so
// the mutation is ordered before the engine resumes.
func (e *Engine) unregister(p *Proc) {
	last := len(e.procs) - 1
	e.procs[p.idx] = e.procs[last]
	e.procs[p.idx].idx = p.idx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// transferTo hands the run token to p and waits for it to park or finish.
func (e *Engine) transferTo(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// park suspends the calling process until something wakes it. It must only
// be called from within the process's own goroutine.
func (p *Proc) park() {
	e := p.eng
	p.parked = true
	e.nParked++
	e.yield <- struct{}{}
	<-p.resume
	if e.killed {
		runtime.Goexit() // deferred wrapper signals the engine
	}
}

// wake schedules p to resume at the current virtual time. It is an error to
// wake a process that is not parked.
func (e *Engine) wake(p *Proc) {
	if !p.parked {
		panic(fmt.Sprintf("sim: wake of non-parked process %q", p.name))
	}
	if p.sleeping {
		// The wake slot is already queued for the sleep expiry; enqueueing
		// it twice would corrupt the timeline.
		panic(fmt.Sprintf("sim: wake of sleeping process %q", p.name))
	}
	p.parked = false
	e.nParked--
	e.scheduleEv(&p.wakeEv, e.now)
}

// Sleep advances the process's virtual time by d. Negative durations are
// treated as zero (the process yields but no time passes).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	p.parked = true
	p.sleeping = true
	e.nParked++
	e.scheduleEv(&p.wakeEv, e.now.Add(d))
	e.yield <- struct{}{}
	<-p.resume
	if e.killed {
		runtime.Goexit()
	}
}

// Yield lets any other event scheduled for the current instant run before the
// process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError reports a simulation where parked processes remain but no
// events are pending to wake them.
type DeadlockError struct {
	Time   Time
	Parked []string // names of parked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) parked forever: %v",
		e.Time, len(e.Parked), e.Parked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if processes remain parked with no pending events, and re-panics if any
// process panicked.
func (e *Engine) Run() error {
	return e.RunUntil(Time(1<<62 - 1))
}

// next pops the earliest pending event across the ready queue and the heap.
// The caller has checked that at least one event is pending.
func (e *Engine) next() *event {
	if e.readyHead < len(e.ready) {
		r := e.ready[e.readyHead]
		if len(e.events) > 0 {
			if h := e.events[0]; h.t < r.t || (h.t == r.t && h.seq < r.seq) {
				return e.events.popEv()
			}
		}
		e.ready[e.readyHead] = nil
		e.readyHead++
		if e.readyHead == len(e.ready) {
			e.ready = e.ready[:0]
			e.readyHead = 0
		}
		return r
	}
	return e.events.popEv()
}

// exec runs one event. fn/afn events are recycled before their callback runs
// so the callback's own scheduling can reuse the struct.
func (e *Engine) exec(ev *event) {
	if p := ev.proc; p != nil {
		if p.parked { // a Sleep expiring (wake() already cleared the flag)
			p.parked = false
			p.sleeping = false
			e.nParked--
		}
		e.transferTo(p)
		return
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.next = e.free
	e.free = ev
	if afn != nil {
		afn(arg)
		return
	}
	fn()
}

// RunUntil executes events with timestamps <= limit. It stops early on
// deadlock or an empty queue.
//
// This is the simulator's innermost loop: every virtual nanosecond of every
// experiment flows through it, so it is a declared hot path — any effect
// reachable from here must be audited in lint/hotpath.budget.json.
//
//pvfslint:hotpath
func (e *Engine) RunUntil(limit Time) error {
	for e.Pending() > 0 && !e.stopped {
		// Ready events are always due at the current instant; only the
		// heap can hold events beyond the limit.
		if e.readyHead == len(e.ready) && e.events[0].t > limit {
			e.now = limit
			return nil
		}
		ev := e.next()
		e.now = ev.t
		e.exec(ev)
		if e.panicked != nil {
			panic(e.panicked)
		}
	}
	if e.nParked > 0 {
		names := make([]string, 0, e.nParked)
		for _, p := range e.procs {
			if p.parked {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{Time: e.now, Parked: names}
	}
	return nil
}

// Stop makes Run return after the current event completes. Parked processes
// are abandoned (their goroutines stay blocked until the test ends); Stop is
// intended for benchmarks that only need the clock reading.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown terminates every parked process so that the engine — and
// everything its processes reference — becomes garbage-collectable.
// Without it, service processes that wait forever (device engines, daemon
// loops) pin their whole simulated world in memory for the life of the Go
// process. Call it when a simulation will not be used again; the engine
// must not be used afterwards.
func (e *Engine) Shutdown() {
	e.killed = true
	procs := make([]*Proc, 0, e.nParked)
	for _, p := range e.procs {
		if p.parked {
			procs = append(procs, p)
		}
	}
	for _, p := range procs {
		p.parked = false
		p.sleeping = false
		e.nParked--
		p.resume <- struct{}{} // park() sees killed and exits the goroutine
		<-e.yield              // its deferred wrapper signals completion
	}
	e.events = nil
	e.ready = nil
	e.readyHead = 0
	e.free = nil
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) + len(e.ready) - e.readyHead }
