// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock and goroutine-backed processes.
//
// The engine drives at most one process per shard at a time, so simulation
// code needs no locking and is fully deterministic: the interleaving of
// processes is a function of the event timeline alone, never of the Go
// scheduler. Virtual time advances only when the event heap says so; data
// manipulation within a process is instantaneous in virtual time.
//
// A process is an ordinary function running on its own goroutine. It receives
// a *Proc handle and uses it to interact with virtual time:
//
//	eng := sim.NewEngine()
//	eng.Go("client", func(p *sim.Proc) {
//		p.Sleep(10 * time.Microsecond)
//		fmt.Println(p.Now())
//	})
//	eng.Run()
//
// Synchronization primitives (Mailbox, Resource, WaitGroup, Cond) are built
// on the park/wake mechanism and never consume virtual time by themselves.
//
// # Groups and shards
//
// Work can be partitioned into Groups — one per simulated node is the
// intended granularity — and groups spread round-robin over shards
// (SetShards). Each shard owns its own event heap, free list, and process
// set and runs on its own OS thread; shards synchronize conservatively on
// the engine's lookahead (SetLookahead): a window [T, T+lookahead) is safe
// to execute in parallel because no cross-shard event scheduled inside the
// window can land before its end. Cross-shard scheduling is only legal with
// a delay of at least the lookahead (Proc.AfterCallOn); same-instant
// interaction between groups on different shards is a model error.
//
// Event ordering is canonical and partition-independent: every event is
// keyed (time, origin group, origin sequence), where the origin sequence is
// a per-group counter stamped when the event is scheduled. The key does not
// depend on how groups are spread over shards, so a grouped workload
// produces byte-identical results at every shard count — including one —
// and at every GOMAXPROCS. An engine with no declared groups runs
// everything in the default group on one shard, which reduces to the
// classic (time, sequence) FIFO order.
//
// The inner loop is allocation-free in steady state: event structs are
// recycled through a per-shard free list and every process carries its own
// reusable wake event (a parked process has at most one pending resume).
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Exactly one of fn, afn, or proc is set: fn
// is a plain closure, afn+arg is the closure-free form (AfterCall), and proc
// marks a process wake event living inside its Proc (never recycled here).
// Events are ordered by the canonical key (t, gid, gseq): origin group and
// per-group sequence, which is independent of the group-to-shard binding.
type event struct {
	t    Time
	gid  int32  // origin group id (canonical key)
	gseq uint64 // origin group sequence (canonical key)
	eg   *Group // exec group: the group whose shard runs the event
	fn   func()
	afn  func(any)
	arg  any
	proc *Proc
	next *event // free-list link
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].gid != h[j].gid {
		return h[i].gid < h[j].gid
	}
	return h[i].gseq < h[j].gseq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h *eventHeap) pushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) popEv() *event   { return heap.Pop(h).(*event) }

// Group is one logical partition of the simulation — one simulated node's
// worth of processes, timers, and synchronization state. Groups are the unit
// of shard placement: all events of a group execute on the group's shard, so
// state touched only by one group's events needs no locking at any shard
// count. Every engine has a default group (id 0) that ungrouped work runs in.
type Group struct {
	eng  *Engine
	sh   *shard
	id   int32
	seq  uint64 // per-group schedule counter, stamps canonical keys
	name string
}

// Name returns the label given at AddGroup time.
func (g *Group) Name() string { return g.name }

// ShardIndex reports which shard the group's events execute on, in
// [0, NumShards()). Layers that keep per-shard free lists (one pool per
// worker thread, so pooling needs no locks) index them with this.
func (g *Group) ShardIndex() int { return g.sh.idx }

// Engine owns the virtual clock, the groups, and the shards.
type Engine struct {
	shards    []*shard
	groups    []*Group // groups[0] is the default group
	lookahead Duration
	windowEnd Time // current window bound; read-only while shards run
	now       Time // engine clock: authoritative when idle
	running   bool
	sharded   bool // len(shards) > 1
	killed    bool
	stopped   atomic.Bool
	windows   int64 // barrier rounds executed by runSharded
}

// ShardLoad is one shard's execution telemetry, accumulated across Run
// calls.
type ShardLoad struct {
	// Events is the number of events this shard executed.
	Events int64 `json:"events"`
	// Ingested is the number of cross-shard hand-offs this shard received
	// through its inbox.
	Ingested int64 `json:"ingested"`
	// MaxWindowEvents is the largest number of events this shard executed
	// inside one synchronization window.
	MaxWindowEvents int64 `json:"max_window_events"`
}

// Telemetry is the engine's execution-shape report: how much parallel
// work each window carried and how evenly it spread over shards. It
// describes the execution, not the simulation — totals are
// partition-invariant but the per-shard split (and Windows) depends on
// the shard count, so telemetry must never feed a determinism-checked
// artifact.
type Telemetry struct {
	// Windows is the number of conservative synchronization rounds run by
	// the sharded loop (zero on an unsharded engine).
	Windows int64 `json:"windows"`
	// Shards holds one entry per shard.
	Shards []ShardLoad `json:"shards"`
}

// TotalEvents sums events executed across shards. Unlike the per-shard
// split, the total is a property of the timeline alone and is identical
// at every shard count.
func (t Telemetry) TotalEvents() int64 {
	var n int64
	for _, s := range t.Shards {
		n += s.Events
	}
	return n
}

// Crossings sums cross-shard inbox hand-offs (zero on one shard).
func (t Telemetry) Crossings() int64 {
	var n int64
	for _, s := range t.Shards {
		n += s.Ingested
	}
	return n
}

// Imbalance reports max-over-mean of per-shard executed events: 1.0 is a
// perfect spread, k means the busiest shard carried k times its fair
// share. Zero events reports 1.0.
func (t Telemetry) Imbalance() float64 {
	if len(t.Shards) == 0 {
		return 1
	}
	total := t.TotalEvents()
	if total == 0 {
		return 1
	}
	var max int64
	for _, s := range t.Shards {
		if s.Events > max {
			max = s.Events
		}
	}
	mean := float64(total) / float64(len(t.Shards))
	return float64(max) / mean
}

// Telemetry snapshots the engine's execution counters. Call it while the
// engine is idle.
func (e *Engine) Telemetry() Telemetry {
	t := Telemetry{Windows: e.windows, Shards: make([]ShardLoad, len(e.shards))}
	for i, s := range e.shards {
		t.Shards[i] = ShardLoad{Events: s.nExec, Ingested: s.nIngest, MaxWindowEvents: s.maxWindow}
	}
	return t
}

// NewEngine returns an engine with the clock at zero, one shard, and the
// default group.
func NewEngine() *Engine {
	e := &Engine{}
	e.shards = []*shard{newShard(e, 0)}
	g0 := &Group{eng: e, sh: e.shards[0], id: 0, name: "default"}
	e.groups = []*Group{g0}
	return e
}

// SetShards grows the engine to n shards. It must be called before any
// non-default group is added: groups are bound to shards round-robin at
// AddGroup time. n below 1 is treated as 1; calling SetShards on a plain
// ungrouped engine is harmless.
func (e *Engine) SetShards(n int) {
	if e.running {
		Failf("sim: SetShards while running")
	}
	if len(e.groups) > 1 {
		Failf("sim: SetShards must precede AddGroup")
	}
	if n < 1 {
		n = 1
	}
	for len(e.shards) < n {
		e.shards = append(e.shards, newShard(e, len(e.shards)))
	}
	e.sharded = len(e.shards) > 1
}

// NumShards reports the number of shards.
func (e *Engine) NumShards() int { return len(e.shards) }

// SetLookahead declares an upper bound on the engine's conservative
// synchronization window: no cross-shard interaction may take effect sooner
// than d after it is scheduled. Layers that own a cross-group delay (the
// fabric's link latency) declare theirs; the engine keeps the minimum.
// Non-positive values are ignored.
func (e *Engine) SetLookahead(d Duration) {
	if d <= 0 {
		return
	}
	if e.lookahead == 0 || d < e.lookahead {
		e.lookahead = d
	}
}

// Lookahead returns the declared synchronization window (zero if none).
func (e *Engine) Lookahead() Duration { return e.lookahead }

// AddGroup declares a new group, bound round-robin to one of the engine's
// shards. Call SetShards first; adding groups while the engine runs is an
// error.
func (e *Engine) AddGroup(name string) *Group {
	if e.running {
		Failf("sim: AddGroup while running")
	}
	g := &Group{eng: e, id: int32(len(e.groups)), name: name}
	g.sh = e.shards[(len(e.groups)-1)%len(e.shards)]
	e.groups = append(e.groups, g)
	return g
}

// DefaultGroup returns the engine's group 0, home of ungrouped work.
func (e *Engine) DefaultGroup() *Group { return e.groups[0] }

// Now returns the current virtual time. While a sharded engine is running,
// each shard has its own clock — use Proc.Now from simulation code; Engine.Now
// is for idle engines (between Run calls, or after Run returns).
func (e *Engine) Now() Time { return e.now }

// scheduleEv stamps ev with origin's canonical key and routes it to exec's
// shard. The caller must be executing on origin's shard (or the engine must
// be idle). Cross-shard destinations get a conservative hand-off: the event
// must land at or beyond the current window's end, which the lookahead
// guarantees for any correctly modeled cross-group delay.
func (e *Engine) scheduleEv(ev *event, t Time, origin, exec *Group) {
	origin.seq++
	ev.gid, ev.gseq, ev.eg = origin.id, origin.seq, exec
	s := exec.sh
	if e.running && s != origin.sh {
		if t < e.windowEnd {
			Failf("sim: cross-shard event for group %q at %v inside window ending %v (interaction faster than the declared lookahead)",
				exec.name, t, e.windowEnd)
		}
		ev.t = t
		s.inMu.Lock()
		s.inbox = append(s.inbox, ev)
		s.inMu.Unlock()
		return
	}
	if t < s.now {
		t = s.now
	}
	ev.t = t
	s.events.pushEv(ev)
}

// groupless guards the engine-level scheduling APIs that carry no group
// information: they run in the default group, which is only sound while the
// engine is idle (setup, teardown) or running unsharded.
func (e *Engine) groupless(what string) *Group {
	if e.running && e.sharded {
		Failf("sim: %s without a group on a sharded engine; use the Proc- or Group-targeted form", what)
	}
	return e.groups[0]
}

// Schedule runs fn at time t (not before the current time) in the default
// group. On a sharded engine use ScheduleOn or Proc.After.
func (e *Engine) Schedule(t Time, fn func()) {
	g := e.groupless("Schedule")
	ev := g.sh.alloc()
	ev.fn = fn
	e.scheduleEv(ev, t, g, g)
}

// ScheduleOn runs fn at time t on g's shard. It is legal only while the
// engine is idle (fault-plane setup, test orchestration): the scheduling
// side carries no shard affinity to hand off from.
func (e *Engine) ScheduleOn(g *Group, t Time, fn func()) {
	if e.running {
		Failf("sim: ScheduleOn while running; use Proc.After or Proc.AfterCallOn")
	}
	ev := g.sh.alloc()
	ev.fn = fn
	e.scheduleEv(ev, t, g, g)
}

// After runs fn d from now in the default group.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// AfterCall runs fn(arg) d from now in the default group. Passing a
// package-level function and an already-live argument keeps hot paths free
// of per-call closure allocations; it is otherwise identical to After.
func (e *Engine) AfterCall(d Duration, fn func(any), arg any) {
	g := e.groupless("AfterCall")
	ev := g.sh.alloc()
	ev.afn, ev.arg = fn, arg
	e.scheduleEv(ev, e.now.Add(d), g, g)
}

// Proc is the handle a simulation process uses to interact with virtual time.
type Proc struct {
	eng    *Engine
	g      *Group
	name   string
	resume chan struct{}
	// wakeEv is the process's reusable wake slot: a blocked process has at
	// most one pending resume, so its transfer event never needs the
	// engine's free list, let alone a fresh allocation.
	wakeEv   event
	parked   bool
	sleeping bool // parked with the wake slot already queued (Sleep)
	idx      int  // position in its shard's proc list, for O(1) removal
	// traceCtx is the packed trace context (request + span IDs) the
	// process is currently working under. The engine never interprets it
	// — it is an opaque word the trace layer threads through spawns and
	// wire messages so child work lands under the right request.
	traceCtx uint64
}

// TraceCtx returns the process's packed trace context (zero = untraced).
func (p *Proc) TraceCtx() uint64 { return p.traceCtx }

// SetTraceCtx installs the packed trace context for subsequent work on
// this process.
func (p *Proc) SetTraceCtx(ctx uint64) { p.traceCtx = ctx }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Group returns the group this process belongs to.
func (p *Proc) Group() *Group { return p.g }

// Name returns the label given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time on this process's shard.
func (p *Proc) Now() Time { return p.g.sh.now }

// Go spawns a new process in the default group that begins executing at the
// current virtual time. The name is used in deadlock reports. On a sharded
// engine, runtime spawns must use Proc.Go (same group) or happen while the
// engine is idle (GoOn).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	g := e.groupless("Go")
	return e.goAt(g, g, g.sh.now, name, fn)
}

// GoAt spawns a new process in the default group that begins executing at
// time t.
func (e *Engine) GoAt(t Time, name string, fn func(p *Proc)) *Proc {
	g := e.groupless("GoAt")
	return e.goAt(g, g, t, name, fn)
}

// GoOn spawns a new process in group g. It is legal only while the engine is
// idle: shard-local process lists cannot be mutated from another shard.
// Processes spawn their own same-group children at runtime with Proc.Go.
func (e *Engine) GoOn(g *Group, name string, fn func(p *Proc)) *Proc {
	return e.GoAtOn(g, g.sh.now, name, fn)
}

// GoAtOn is GoOn starting at time t.
func (e *Engine) GoAtOn(g *Group, t Time, name string, fn func(p *Proc)) *Proc {
	if e.running {
		Failf("sim: GoOn/GoAtOn while running; spawn same-group children with Proc.Go")
	}
	return e.goAt(g, g, t, name, fn)
}

// Go spawns a child process in the calling process's group, beginning at the
// current virtual time.
func (p *Proc) Go(name string, fn func(q *Proc)) *Proc {
	return p.eng.goAt(p.g, p.g, p.g.sh.now, name, fn)
}

func (e *Engine) goAt(origin, g *Group, t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, g: g, name: name, resume: make(chan struct{})}
	p.wakeEv.proc = p
	s := g.sh
	p.idx = len(s.procs)
	s.procs = append(s.procs, p)
	s.live++
	go func() {
		<-p.resume // wait for the shard to hand us the run token
		defer func() {
			if r := recover(); r != nil {
				s.panicked = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			s.live--
			s.unregister(p)
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.scheduleEv(&p.wakeEv, t, origin, g)
	return p
}

// After runs fn d from now on the calling process's group — the timer lands
// on the caller's shard, so it may consult and mutate the caller's state.
func (p *Proc) After(d Duration, fn func()) {
	s := p.g.sh
	ev := s.alloc()
	ev.fn = fn
	p.eng.scheduleEv(ev, s.now.Add(d), p.g, p.g)
}

// AfterCallOn runs fn(arg) d from now on g's shard, with the event's
// canonical key stamped by the calling process's group. This is the
// cross-shard hand-off primitive: when g lives on another shard, d must be
// at least the engine's lookahead (the fabric's link latency guarantees
// this for message delivery) and the event is passed through the target
// shard's inbox at the next window barrier.
func (p *Proc) AfterCallOn(g *Group, d Duration, fn func(any), arg any) {
	s := p.g.sh
	ev := s.alloc()
	ev.afn, ev.arg = fn, arg
	p.eng.scheduleEv(ev, s.now.Add(d), p.g, g)
}

// park suspends the calling process until something wakes it. It must only
// be called from within the process's own goroutine.
func (p *Proc) park() {
	s := p.g.sh
	p.parked = true
	s.nParked++
	s.yield <- struct{}{}
	<-p.resume
	if p.eng.killed {
		runtime.Goexit() // deferred wrapper signals the shard
	}
}

// wake schedules p to resume at the current virtual time on its own shard.
// It is an error to wake a process that is not parked, and a model error to
// wake a process whose group lives on another shard — same-instant
// cross-shard interaction violates the lookahead contract.
func (e *Engine) wake(p *Proc) {
	if !p.parked {
		panic(fmt.Sprintf("sim: wake of non-parked process %q", p.name))
	}
	if p.sleeping {
		// The wake slot is already queued for the sleep expiry; enqueueing
		// it twice would corrupt the timeline.
		panic(fmt.Sprintf("sim: wake of sleeping process %q", p.name))
	}
	p.parked = false
	s := p.g.sh
	s.nParked--
	e.scheduleEv(&p.wakeEv, s.now, p.g, p.g)
}

// Sleep advances the process's virtual time by d. Negative durations are
// treated as zero (the process yields but no time passes).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.g.sh
	p.parked = true
	p.sleeping = true
	s.nParked++
	p.eng.scheduleEv(&p.wakeEv, s.now.Add(d), p.g, p.g)
	s.yield <- struct{}{}
	<-p.resume
	if p.eng.killed {
		runtime.Goexit()
	}
}

// Yield lets any other event scheduled for the current instant in this
// process's group run before the process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError reports a simulation where parked processes remain but no
// events are pending to wake them.
type DeadlockError struct {
	Time   Time
	Parked []string // names of parked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) parked forever: %v",
		e.Time, len(e.Parked), e.Parked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if processes remain parked with no pending events, and re-panics if any
// process panicked.
func (e *Engine) Run() error {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= limit. It stops early on
// deadlock or an empty queue.
//
// This is the simulator's innermost loop: every virtual nanosecond of every
// experiment flows through it, so it is a declared hot path — any effect
// reachable from here must be audited in lint/hotpath.budget.json.
//
//pvfslint:hotpath
func (e *Engine) RunUntil(limit Time) error {
	e.running = true
	defer func() { e.running = false }()
	if !e.sharded {
		return e.runSingle(limit)
	}
	return e.runSharded(limit)
}

// runSingle is the unsharded inner loop: pop the globally least event key,
// execute, repeat. Its observable behavior is identical to the windowed
// sharded loop because the canonical event key is partition-independent.
func (e *Engine) runSingle(limit Time) error {
	s := e.shards[0]
	for len(s.events) > 0 && !e.stopped.Load() {
		if s.events[0].t > limit {
			s.now = limit
			e.now = limit
			return nil
		}
		ev := s.events.popEv()
		s.now = ev.t
		e.now = ev.t
		s.nExec++
		s.exec(ev)
		if s.panicked != nil {
			panic(s.panicked)
		}
	}
	e.now = s.now
	return e.checkDeadlock()
}

// runSharded is the conservative parallel loop: each iteration picks the
// global minimum pending event time T, opens the window [T, T+lookahead),
// and lets every shard drain its own sub-window events concurrently. Any
// event a shard schedules onto another shard lands at or beyond the window
// end (enforced in scheduleEv), so no shard can observe an effect it should
// have seen earlier; hand-offs sit in per-shard inboxes until the barrier.
func (e *Engine) runSharded(limit Time) error {
	if e.lookahead <= 0 {
		Failf("sim: sharded engine with no lookahead declared (SetLookahead)")
	}
	for _, s := range e.shards {
		go s.workerLoop()
	}
	defer func() {
		for _, s := range e.shards {
			s.work <- stopWorker
		}
	}()
	for {
		pending := 0
		tmin := Time(1<<63 - 1)
		for _, s := range e.shards {
			s.ingest()
			pending += len(s.events)
			if len(s.events) > 0 && s.events[0].t < tmin {
				tmin = s.events[0].t
			}
		}
		if pending == 0 || e.stopped.Load() {
			break
		}
		if tmin > limit {
			for _, s := range e.shards {
				if s.now < limit {
					s.now = limit
				}
			}
			e.now = limit
			return nil
		}
		we := tmin.Add(e.lookahead)
		if we > limit+1 {
			we = limit + 1 // events at exactly limit still run
		}
		e.windows++
		e.windowEnd = we
		for _, s := range e.shards {
			s.work <- we
		}
		for _, s := range e.shards {
			<-s.done
		}
		for _, s := range e.shards {
			if s.panicked != nil {
				panic(s.panicked)
			}
		}
	}
	// Synchronize every shard's clock to the global maximum so follow-up
	// phases (new processes spawned between Run calls) start at the same
	// instant regardless of the shard count.
	e.now = 0
	for _, s := range e.shards {
		if s.now > e.now {
			e.now = s.now
		}
	}
	for _, s := range e.shards {
		s.now = e.now
	}
	return e.checkDeadlock()
}

func (e *Engine) checkDeadlock() error {
	nParked := 0
	for _, s := range e.shards {
		nParked += s.nParked
	}
	if nParked == 0 {
		return nil
	}
	names := make([]string, 0, nParked)
	for _, s := range e.shards {
		for _, p := range s.procs {
			if p.parked {
				names = append(names, p.name)
			}
		}
	}
	sort.Strings(names)
	return &DeadlockError{Time: e.now, Parked: names}
}

// Stop makes Run return soon: after the current event on an unsharded
// engine, at the current window barrier on a sharded one. Parked processes
// are abandoned (their goroutines stay blocked until the test ends); Stop is
// intended for benchmarks that only need the clock reading.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Shutdown terminates every parked process so that the engine — and
// everything its processes reference — becomes garbage-collectable.
// Without it, service processes that wait forever (device engines, daemon
// loops) pin their whole simulated world in memory for the life of the Go
// process. Call it when a simulation will not be used again; the engine
// must not be used afterwards.
func (e *Engine) Shutdown() {
	e.killed = true
	for _, s := range e.shards {
		procs := make([]*Proc, 0, s.nParked)
		for _, p := range s.procs {
			if p.parked {
				procs = append(procs, p)
			}
		}
		for _, p := range procs {
			p.parked = false
			p.sleeping = false
			s.nParked--
			p.resume <- struct{}{} // park() sees killed and exits the goroutine
			<-s.yield              // its deferred wrapper signals completion
		}
		s.events = nil
		s.free = nil
		s.inbox = nil
	}
}

// Pending reports the number of queued events across all shards, including
// undelivered cross-shard hand-offs.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.events)
		s.inMu.Lock()
		n += len(s.inbox)
		s.inMu.Unlock()
	}
	return n
}

// shard owns one partition's event heap, free list, and processes. Exactly
// one event of a shard executes at a time; different shards execute
// concurrently inside a window.
type shard struct {
	eng      *Engine
	idx      int
	now      Time
	events   eventHeap
	free     *event        // recycled fn/afn events
	yield    chan struct{} // a running proc signals here when it parks or exits
	procs    []*Proc       // spawned and not yet finished
	nParked  int
	live     int // processes spawned and not yet finished
	panicked any

	// Execution telemetry, surfaced by Engine.Telemetry.
	nExec     int64 // events executed
	nIngest   int64 // cross-shard hand-offs received
	maxWindow int64 // most events executed in one window

	// inbox receives cross-shard hand-off events; drained at barriers.
	inMu  sync.Mutex
	inbox []*event

	work chan Time // window end, sent by the engine's barrier loop
	done chan struct{}
}

func newShard(e *Engine, idx int) *shard {
	return &shard{
		eng:   e,
		idx:   idx,
		yield: make(chan struct{}),
		work:  make(chan Time),
		done:  make(chan struct{}),
	}
}

// alloc returns a recycled event or a fresh one.
func (s *shard) alloc() *event {
	if ev := s.free; ev != nil {
		s.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// unregister removes a finished process from the live list. It runs on the
// process's goroutine while the shard is blocked on the yield handshake, so
// the mutation is ordered before the shard resumes.
func (s *shard) unregister(p *Proc) {
	last := len(s.procs) - 1
	s.procs[p.idx] = s.procs[last]
	s.procs[p.idx].idx = p.idx
	s.procs[last] = nil
	s.procs = s.procs[:last]
}

// exec runs one event. fn/afn events are recycled before their callback runs
// so the callback's own scheduling can reuse the struct.
func (s *shard) exec(ev *event) {
	if p := ev.proc; p != nil {
		if p.parked { // a Sleep expiring (wake() already cleared the flag)
			p.parked = false
			p.sleeping = false
			s.nParked--
		}
		p.resume <- struct{}{}
		<-s.yield
		return
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	ev.fn, ev.afn, ev.arg, ev.eg = nil, nil, nil, nil
	ev.next = s.free
	s.free = ev
	if afn != nil {
		afn(arg)
		return
	}
	fn()
}

// ingest moves handed-off events from the inbox into the heap. Called at
// barriers while every shard is idle; the heap orders by the canonical key,
// so inbox arrival order — the only scheduler-dependent order in the whole
// engine — cannot influence execution order.
func (s *shard) ingest() {
	s.inMu.Lock()
	evs := s.inbox
	s.inbox = s.inbox[:0]
	s.inMu.Unlock()
	s.nIngest += int64(len(evs))
	for _, ev := range evs {
		s.events.pushEv(ev)
	}
	for i := range evs {
		evs[i] = nil
	}
}

// stopWorker on the work channel ends a shard worker's run. A stop is a
// message, not a close, so the channel survives the run and the next
// RunUntil on the same engine can respawn workers over it.
const stopWorker = Time(-1)

// workerLoop runs on the shard's own goroutine for the duration of one
// sharded Run: each window it drains local events below the window end.
func (s *shard) workerLoop() {
	for we := range s.work {
		if we == stopWorker {
			return
		}
		s.drain(we)
		s.done <- struct{}{}
	}
}

// drain executes this shard's events with t < we, including events those
// events schedule locally inside the window.
//
// This is the sharded twin of the engine's inner loop and a declared hot
// path: effects reachable from here are audited in lint/hotpath.budget.json.
//
//pvfslint:hotpath
func (s *shard) drain(we Time) {
	defer func() {
		if r := recover(); r != nil && s.panicked == nil {
			s.panicked = r
		}
	}()
	n := int64(0)
	for len(s.events) > 0 && s.events[0].t < we {
		ev := s.events.popEv()
		s.now = ev.t
		n++
		s.exec(ev)
		if s.panicked != nil {
			break
		}
	}
	s.nExec += n
	if n > s.maxWindow {
		s.maxWindow = n
	}
}
