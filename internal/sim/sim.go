// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock and goroutine-backed processes.
//
// The engine drives at most one process at a time, so simulation code needs
// no locking and is fully deterministic: the interleaving of processes is a
// function of the event timeline alone, never of the Go scheduler. Virtual
// time advances only when the event heap says so; data manipulation within a
// process is instantaneous in virtual time.
//
// A process is an ordinary function running on its own goroutine. It receives
// a *Proc handle and uses it to interact with virtual time:
//
//	eng := sim.NewEngine()
//	eng.Go("client", func(p *sim.Proc) {
//		p.Sleep(10 * time.Microsecond)
//		fmt.Println(p.Now())
//	})
//	eng.Run()
//
// Synchronization primitives (Mailbox, Resource, WaitGroup, Cond) are built
// on the park/wake mechanism and never consume virtual time by themselves.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the virtual time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback.
type event struct {
	t   Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *event     { return h[0] }
func (h *eventHeap) pushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) popEv() *event   { return heap.Pop(h).(*event) }

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	yield   chan struct{} // a running proc signals here when it parks or exits
	parked  map[*Proc]struct{}
	live    int // processes spawned and not yet finished
	stopped bool
	killed  bool

	panicked any // propagated from a crashed process
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at time t (not before the current time).
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.pushEv(&event{t: t, seq: e.seq, fn: fn})
}

// After runs fn d from now.
func (e *Engine) After(d Duration, fn func()) { e.Schedule(e.now.Add(d), fn) }

// Proc is the handle a simulation process uses to interact with virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the label given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a new process that begins executing at the current virtual time.
// The name is used in deadlock reports.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt spawns a new process that begins executing at time t.
func (e *Engine) GoAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the engine to hand us the run token
		defer func() {
			if r := recover(); r != nil {
				e.panicked = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			e.live--
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(t, func() { e.transferTo(p) })
	return p
}

// transferTo hands the run token to p and waits for it to park or finish.
func (e *Engine) transferTo(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// park suspends the calling process until something wakes it. It must only
// be called from within the process's own goroutine.
func (p *Proc) park() {
	p.eng.parked[p] = struct{}{}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.eng.killed {
		runtime.Goexit() // deferred wrapper signals the engine
	}
}

// wake schedules p to resume at the current virtual time. It is an error to
// wake a process that is not parked.
func (e *Engine) wake(p *Proc) {
	if _, ok := e.parked[p]; !ok {
		panic(fmt.Sprintf("sim: wake of non-parked process %q", p.name))
	}
	delete(e.parked, p)
	e.Schedule(e.now, func() { e.transferTo(p) })
}

// Sleep advances the process's virtual time by d. Negative durations are
// treated as zero (the process yields but no time passes).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.parked[p] = struct{}{}
	e.Schedule(e.now.Add(d), func() {
		delete(e.parked, p)
		e.transferTo(p)
	})
	e.yield <- struct{}{}
	<-p.resume
	if e.killed {
		runtime.Goexit()
	}
}

// Yield lets any other event scheduled for the current instant run before the
// process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError reports a simulation where parked processes remain but no
// events are pending to wake them.
type DeadlockError struct {
	Time   Time
	Parked []string // names of parked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) parked forever: %v",
		e.Time, len(e.Parked), e.Parked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if processes remain parked with no pending events, and re-panics if any
// process panicked.
func (e *Engine) Run() error {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= limit. It stops early on
// deadlock or an empty queue.
func (e *Engine) RunUntil(limit Time) error {
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().t > limit {
			e.now = limit
			return nil
		}
		ev := e.events.popEv()
		e.now = ev.t
		ev.fn()
		if e.panicked != nil {
			panic(e.panicked)
		}
	}
	if len(e.parked) > 0 {
		names := make([]string, 0, len(e.parked))
		for p := range e.parked {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return &DeadlockError{Time: e.now, Parked: names}
	}
	return nil
}

// Stop makes Run return after the current event completes. Parked processes
// are abandoned (their goroutines stay blocked until the test ends); Stop is
// intended for benchmarks that only need the clock reading.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown terminates every parked process so that the engine — and
// everything its processes reference — becomes garbage-collectable.
// Without it, service processes that wait forever (device engines, daemon
// loops) pin their whole simulated world in memory for the life of the Go
// process. Call it when a simulation will not be used again; the engine
// must not be used afterwards.
func (e *Engine) Shutdown() {
	e.killed = true
	procs := make([]*Proc, 0, len(e.parked))
	for p := range e.parked {
		procs = append(procs, p)
	}
	e.parked = make(map[*Proc]struct{})
	for _, p := range procs {
		p.resume <- struct{}{} // park() sees killed and exits the goroutine
		<-e.yield              // its deferred wrapper signals completion
	}
	e.events = nil
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
