package sim

// Mailbox is an unbounded FIFO message queue between simulation processes.
// Send never blocks; Recv blocks (in virtual time) until a message arrives.
type Mailbox struct {
	eng     *Engine
	name    string
	queue   []any
	waiters []*Proc // processes parked in Recv, FIFO
}

// NewMailbox creates an empty mailbox. The name is used in diagnostics.
func (e *Engine) NewMailbox(name string) *Mailbox {
	return &Mailbox{eng: e, name: name}
}

// Send enqueues v and wakes the oldest waiting receiver, if any. It may be
// called from a process or from a scheduled event callback.
func (m *Mailbox) Send(v any) {
	m.queue = append(m.queue, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.eng.wake(w)
	}
}

// Recv returns the oldest queued message, blocking the calling process until
// one is available. Messages are delivered in send order; when several
// receivers wait, they are served FIFO.
func (m *Mailbox) Recv(p *Proc) any {
	for len(m.queue) == 0 {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

// RecvTimeout is Recv with a deadline: it returns the oldest queued message,
// or ok=false if none arrives within d of each park. The timer is armed only
// while the mailbox is empty, so a message already queued returns immediately
// and costs nothing. Timeouts are the foundation of the fault-recovery layer;
// code on the no-fault path should use Recv, which schedules no timer events.
func (m *Mailbox) RecvTimeout(p *Proc, d Duration) (v any, ok bool) {
	for len(m.queue) == 0 {
		// armed distinguishes this wait from any later wait by the same
		// process on the same mailbox; timedOut records that the timer, not
		// a Send, woke us. The timer only fires for a process still in the
		// waiter list: a process already woken by Send (or removed by an
		// earlier timer) is left alone.
		armed := true
		timedOut := false
		waiter := p
		m.eng.After(d, func() {
			if !armed {
				return
			}
			for i, w := range m.waiters {
				if w == waiter {
					m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
					timedOut = true
					m.eng.wake(waiter)
					return
				}
			}
		})
		m.waiters = append(m.waiters, p)
		p.park()
		armed = false
		if timedOut {
			return nil, false
		}
	}
	v = m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// TryRecv returns the oldest queued message without blocking. ok is false if
// the mailbox is empty.
func (m *Mailbox) TryRecv() (v any, ok bool) {
	if len(m.queue) == 0 {
		return nil, false
	}
	v = m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Resource is a counted resource (a semaphore) served FIFO. A Resource with
// capacity 1 models a serially-reusable device such as a disk arm or a NIC
// transmit engine.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource creates a resource with the given capacity (must be >= 1).
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire obtains one unit, blocking in FIFO order while the resource is
// fully in use.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// The releaser incremented inUse on our behalf before waking us.
}

// Release returns one unit and hands it directly to the oldest waiter, if
// any, preserving FIFO fairness.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.wake(w) // unit passes straight to w; inUse unchanged
		return
	}
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it. This is the
// common pattern for charging serialized device time.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// WaitGroup counts outstanding work items, like sync.WaitGroup but in
// virtual time.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a wait group with count zero.
func (e *Engine) NewWaitGroup() *WaitGroup { return &WaitGroup{eng: e} }

// Add adds delta to the count. When the count reaches zero, all waiters wake.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.eng.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks the calling process until the count is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters = append(w.waiters, p)
		p.park()
	}
}

// Cond is a condition variable: processes wait until another process calls
// Signal or Broadcast. There is no associated lock — the engine's one-process-
// at-a-time execution already makes state changes atomic.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond creates a condition variable.
func (e *Engine) NewCond() *Cond { return &Cond{eng: e} }

// Wait parks the calling process until signaled. As with sync.Cond, callers
// should re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.wake(w)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.eng.wake(w)
	}
	c.waiters = nil
}
