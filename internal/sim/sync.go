package sim

// procQueue is a FIFO of parked processes. Pops advance a head index instead
// of reslicing so the backing array is reused: the ubiquitous
// park-wake-park cycle of device engines and mailboxes costs no allocations
// in steady state.
type procQueue struct {
	items []*Proc
	head  int
}

func (q *procQueue) len() int     { return len(q.items) - q.head }
func (q *procQueue) push(p *Proc) { q.items = append(q.items, p) }
func (q *procQueue) compactIfDry() {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
}

func (q *procQueue) pop() *Proc {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.compactIfDry()
	return p
}

// remove deletes the first occurrence of p, preserving order. It reports
// whether p was queued.
func (q *procQueue) remove(p *Proc) bool {
	for i := q.head; i < len(q.items); i++ {
		if q.items[i] == p {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			q.compactIfDry()
			return true
		}
	}
	return false
}

// anyQueue is the same ring discipline for message payloads.
type anyQueue struct {
	items []any
	head  int
}

func (q *anyQueue) len() int   { return len(q.items) - q.head }
func (q *anyQueue) push(v any) { q.items = append(q.items, v) }
func (q *anyQueue) pop() any {
	v := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Mailbox is an unbounded FIFO message queue between simulation processes.
// Send never blocks; Recv blocks (in virtual time) until a message arrives.
type Mailbox struct {
	eng     *Engine
	name    string
	queue   anyQueue
	waiters procQueue // processes parked in Recv, FIFO
}

// NewMailbox creates an empty mailbox. The name is used in diagnostics.
func (e *Engine) NewMailbox(name string) *Mailbox {
	return &Mailbox{eng: e, name: name}
}

// Send enqueues v and wakes the oldest waiting receiver, if any. It may be
// called from a process or from a scheduled event callback.
func (m *Mailbox) Send(v any) {
	m.queue.push(v)
	if m.waiters.len() > 0 {
		m.eng.wake(m.waiters.pop())
	}
}

// Recv returns the oldest queued message, blocking the calling process until
// one is available. Messages are delivered in send order; when several
// receivers wait, they are served FIFO.
func (m *Mailbox) Recv(p *Proc) any {
	for m.queue.len() == 0 {
		m.waiters.push(p)
		p.park()
	}
	return m.queue.pop()
}

// RecvTimeout is Recv with a deadline: it returns the oldest queued message,
// or ok=false if none arrives within d of each park. The timer is armed only
// while the mailbox is empty, so a message already queued returns immediately
// and costs nothing. Timeouts are the foundation of the fault-recovery layer;
// code on the no-fault path should use Recv, which schedules no timer events.
func (m *Mailbox) RecvTimeout(p *Proc, d Duration) (v any, ok bool) {
	for m.queue.len() == 0 {
		// armed distinguishes this wait from any later wait by the same
		// process on the same mailbox; timedOut records that the timer, not
		// a Send, woke us. The timer only fires for a process still in the
		// waiter list: a process already woken by Send (or removed by an
		// earlier timer) is left alone.
		armed := true
		timedOut := false
		waiter := p
		p.After(d, func() {
			if !armed {
				return
			}
			if m.waiters.remove(waiter) {
				timedOut = true
				m.eng.wake(waiter)
			}
		})
		m.waiters.push(p)
		p.park()
		armed = false
		if timedOut {
			return nil, false
		}
	}
	return m.queue.pop(), true
}

// TryRecv returns the oldest queued message without blocking. ok is false if
// the mailbox is empty.
func (m *Mailbox) TryRecv() (v any, ok bool) {
	if m.queue.len() == 0 {
		return nil, false
	}
	return m.queue.pop(), true
}

// Len reports the number of queued messages.
func (m *Mailbox) Len() int { return m.queue.len() }

// Resource is a counted resource (a semaphore) served FIFO. A Resource with
// capacity 1 models a serially-reusable device such as a disk arm or a NIC
// transmit engine.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  procQueue
}

// NewResource creates a resource with the given capacity (must be >= 1).
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Acquire obtains one unit, blocking in FIFO order while the resource is
// fully in use.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && r.waiters.len() == 0 {
		r.inUse++
		return
	}
	r.waiters.push(p)
	p.park()
	// The releaser incremented inUse on our behalf before waking us.
}

// Release returns one unit and hands it directly to the oldest waiter, if
// any, preserving FIFO fairness.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if r.waiters.len() > 0 {
		r.eng.wake(r.waiters.pop()) // unit passes straight to waiter; inUse unchanged
		return
	}
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it. This is the
// common pattern for charging serialized device time.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// WaitGroup counts outstanding work items, like sync.WaitGroup but in
// virtual time.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters procQueue
}

// NewWaitGroup creates a wait group with count zero.
func (e *Engine) NewWaitGroup() *WaitGroup { return &WaitGroup{eng: e} }

// Add adds delta to the count. When the count reaches zero, all waiters wake.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 {
		for w.waiters.len() > 0 {
			w.eng.wake(w.waiters.pop())
		}
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks the calling process until the count is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters.push(p)
		p.park()
	}
}

// Cond is a condition variable: processes wait until another process calls
// Signal or Broadcast. There is no associated lock — the engine's one-process-
// at-a-time execution already makes state changes atomic.
type Cond struct {
	eng     *Engine
	waiters procQueue
}

// NewCond creates a condition variable.
func (e *Engine) NewCond() *Cond { return &Cond{eng: e} }

// Wait parks the calling process until signaled. As with sync.Cond, callers
// should re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters.push(p)
	p.park()
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if c.waiters.len() == 0 {
		return
	}
	c.eng.wake(c.waiters.pop())
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	for c.waiters.len() > 0 {
		c.eng.wake(c.waiters.pop())
	}
}
