package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// world builds an n-rank MPI world on n fresh compute nodes.
func world(t *testing.T, n int, acct func(rank int, bytes int64)) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	var hcas []*ib.HCA
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cn%d", i)
		hcas = append(hcas, ib.NewHCA(net.AddNode(name), mem.NewAddrSpace(name), ib.DefaultParams()))
	}
	return eng, NewWorld(eng, hcas, acct)
}

// spawn runs fn on every rank and drives the simulation.
func spawn(t *testing.T, eng *sim.Engine, w *World, fn func(p *sim.Proc, r *Rank)) {
	t.Helper()
	for i := 0; i < w.Size(); i++ {
		r := w.Rank(i)
		eng.Go(fmt.Sprintf("rank%d", i), func(p *sim.Proc) { fn(p, r) })
	}
	if err := eng.Run(); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			t.Fatal(err)
		}
	}
}

func TestSendRecv(t *testing.T) {
	eng, w := world(t, 2, nil)
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, []byte("hello"))
		} else {
			if got := r.Recv(p, 0); string(got) != "hello" {
				t.Errorf("got %q", got)
			}
		}
	})
}

func TestSmallMessageLatencyMatchesMVAPICH(t *testing.T) {
	eng, w := world(t, 2, nil)
	var arrive sim.Time
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, []byte{1, 2, 3, 4})
		} else {
			r.Recv(p, 0)
			arrive = p.Now()
		}
	})
	// Table 2: MVAPICH 4-byte latency 6.8 µs.
	if arrive < sim.Time(6500*time.Nanosecond) || arrive > sim.Time(8500*time.Nanosecond) {
		t.Errorf("MPI 4-byte latency %v, want ≈6.8-7.6µs", arrive)
	}
}

func TestLargeMessageBandwidthMatchesMVAPICH(t *testing.T) {
	eng, w := world(t, 2, nil)
	const size = 32 * simnet.MB
	var elapsed sim.Duration
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, make([]byte, size))
		} else {
			r.Recv(p, 0)
			elapsed = sim.Duration(p.Now())
		}
	})
	bw := float64(size) / elapsed.Seconds() / simnet.MB
	if bw < 790 || bw > 830 {
		t.Errorf("MPI bandwidth %.0f MB/s, want ≈822 (Table 2)", bw)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, w := world(t, 4, nil)
	var after []sim.Time
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		// Ranks arrive at very different times.
		p.Sleep(time.Duration(r.ID()) * time.Millisecond)
		r.Barrier(p)
		after = append(after, p.Now())
	})
	min, max := after[0], after[0]
	for _, a := range after {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if min < sim.Time(3*time.Millisecond) {
		t.Errorf("a rank left the barrier at %v, before the last arrival", min)
	}
	if max-min > sim.Time(100*time.Microsecond) {
		t.Errorf("barrier exit spread %v too large", max-min)
	}
}

func TestBcast(t *testing.T) {
	eng, w := world(t, 4, nil)
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		var data []byte
		if r.ID() == 2 {
			data = []byte("payload")
		}
		got := r.Bcast(p, 2, data)
		if string(got) != "payload" {
			t.Errorf("rank %d got %q", r.ID(), got)
		}
	})
}

func TestGatherAndAllgather(t *testing.T) {
	eng, w := world(t, 4, nil)
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		mine := []byte{byte(r.ID() + 10)}
		parts := r.Gather(p, 0, mine)
		if r.ID() == 0 {
			for i, part := range parts {
				if len(part) != 1 || part[0] != byte(i+10) {
					t.Errorf("gather[%d] = %v", i, part)
				}
			}
		} else if parts != nil {
			t.Error("non-root got gather results")
		}
		all := r.Allgather(p, mine)
		for i, part := range all {
			if len(part) != 1 || part[0] != byte(i+10) {
				t.Errorf("rank %d allgather[%d] = %v", r.ID(), i, part)
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		eng, w := world(t, n, nil)
		spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
			parts := make([][]byte, n)
			for j := range parts {
				parts[j] = bytes.Repeat([]byte{byte(10*r.ID() + j)}, j+1)
			}
			got := r.Alltoallv(p, parts)
			for src, g := range got {
				want := bytes.Repeat([]byte{byte(10*src + r.ID())}, r.ID()+1)
				if !bytes.Equal(g, want) {
					t.Errorf("n=%d rank %d from %d: got %v want %v", n, r.ID(), src, g, want)
				}
			}
		})
	}
}

func TestAcctCountsClientClientBytes(t *testing.T) {
	var total int64
	eng, w := world(t, 2, func(_ int, n int64) { total += n })
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, make([]byte, 1000))
		} else {
			r.Recv(p, 0)
		}
	})
	if total != 1000 {
		t.Errorf("accounted %d bytes, want 1000", total)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	eng, w := world(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 0, nil)
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	eng, w := world(t, 4, nil)
	spawn(t, eng, w, func(p *sim.Proc, r *Rank) {
		v := int64(r.ID() + 1) // 1..4
		sum := r.Reduce(p, 2, v, OpSum)
		if r.ID() == 2 && sum != 10 {
			t.Errorf("Reduce sum = %d, want 10", sum)
		}
		if r.ID() != 2 && sum != 0 {
			t.Errorf("non-root Reduce = %d, want 0", sum)
		}
		if got := r.Allreduce(p, v, OpMax); got != 4 {
			t.Errorf("Allreduce max = %d, want 4", got)
		}
		if got := r.Allreduce(p, v, OpMin); got != 1 {
			t.Errorf("Allreduce min = %d, want 1", got)
		}
		if got := r.Allreduce(p, -v, OpSum); got != -10 {
			t.Errorf("Allreduce sum = %d, want -10 (negatives round-trip)", got)
		}
	})
}
