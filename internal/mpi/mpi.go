// Package mpi is a minimal message-passing layer over the simulated
// InfiniBand fabric, sufficient to express the paper's MPI-IO methods: each
// rank is a simulation process on a compute node; point-to-point messages
// travel over queue pairs between the compute nodes (so inter-compute-node
// traffic — the "communication between the compute nodes for I/O" row of
// Table 6 — is really on the wire); and the collectives used by two-phase
// I/O (barrier, broadcast, gather, allgather, all-to-all-v) are built from
// the point-to-point layer.
//
// The per-message software overhead is calibrated so the MVAPICH row of
// Table 2 holds: ≈6.8 µs small-message latency over the 6.0 µs verbs write.
package mpi

import (
	"time"

	"pvfsib/internal/ib"
	"pvfsib/internal/sim"
)

// SoftwareOverhead is the per-message MPI library cost on top of verbs.
const SoftwareOverhead = 800 * time.Nanosecond

// World is one MPI job: a fully connected set of ranks.
type World struct {
	eng   *sim.Engine
	ranks []*Rank
	// acct, when set, receives the payload byte count of every
	// point-to-point message (client-to-client accounting).
	acct func(rank int, bytes int64)
}

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	qps   []*ib.QP // index = peer rank; nil for self
}

// NewWorld builds a world with one rank per HCA (rank i on hcas[i]) and
// fully connects them. acct may be nil.
func NewWorld(eng *sim.Engine, hcas []*ib.HCA, acct func(rank int, bytes int64)) *World {
	w := &World{eng: eng, acct: acct}
	n := len(hcas)
	for i := 0; i < n; i++ {
		w.ranks = append(w.ranks, &Rank{world: w, id: i, qps: make([]*ib.QP, n)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			qi, qj := ib.Connect(hcas[i], hcas[j])
			// MPI traffic is a control path for the fault plane: the
			// recovery story lives in the file system client, not here.
			qi.MarkControl()
			qj.MarkControl()
			w.ranks[i].qps[j] = qi
			w.ranks[j].qps[i] = qj
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's handle.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.world.ranks) }

// Send delivers data to rank dst (blocking until the send side completes,
// like a buffered MPI_Send).
func (r *Rank) Send(p *sim.Proc, dst int, data []byte) {
	if dst == r.id {
		sim.Failf("mpi: send to self")
	}
	p.Sleep(SoftwareOverhead)
	if r.world.acct != nil {
		r.world.acct(r.id, int64(len(data)))
	}
	// Control QPs never see injected completion errors; a failure here
	// would mean a partition cut client-to-client links, which mini-MPI
	// (like MPI itself) does not survive.
	sim.Must(r.qps[dst].Send(p, len(data), append([]byte(nil), data...)))
}

// Recv blocks until a message from rank src arrives and returns its payload.
func (r *Rank) Recv(p *sim.Proc, src int) []byte {
	if src == r.id {
		sim.Failf("mpi: recv from self")
	}
	_, payload := r.qps[src].Recv(p)
	p.Sleep(SoftwareOverhead)
	return payload.([]byte)
}

// Barrier blocks until every rank has entered it. The implementation is
// centralized (gather-to-0 then release), costing two message latencies.
func (r *Rank) Barrier(p *sim.Proc) {
	n := r.Size()
	if n == 1 {
		return
	}
	if r.id == 0 {
		for i := 1; i < n; i++ {
			r.Recv(p, i)
		}
		for i := 1; i < n; i++ {
			r.Send(p, i, nil)
		}
		return
	}
	r.Send(p, 0, nil)
	r.Recv(p, 0)
}

// Bcast sends root's data to every rank and returns it (all ranks call it).
func (r *Rank) Bcast(p *sim.Proc, root int, data []byte) []byte {
	if r.id == root {
		for i := 0; i < r.Size(); i++ {
			if i != root {
				r.Send(p, i, data)
			}
		}
		return data
	}
	return r.Recv(p, root)
}

// Gather collects each rank's data at root; root receives the slices in
// rank order (its own contribution included), others receive nil.
func (r *Rank) Gather(p *sim.Proc, root int, data []byte) [][]byte {
	if r.id != root {
		r.Send(p, root, data)
		return nil
	}
	out := make([][]byte, r.Size())
	out[root] = data
	for i := 0; i < r.Size(); i++ {
		if i != root {
			out[i] = r.Recv(p, i)
		}
	}
	return out
}

// Allgather gives every rank every rank's contribution, in rank order.
func (r *Rank) Allgather(p *sim.Proc, data []byte) [][]byte {
	parts := r.Gather(p, 0, data)
	if r.id == 0 {
		for i := 1; i < r.Size(); i++ {
			for _, part := range parts {
				r.Send(p, i, part)
			}
		}
		return parts
	}
	out := make([][]byte, r.Size())
	for j := range out {
		out[j] = r.Recv(p, 0)
	}
	return out
}

// Alltoallv sends parts[j] to rank j and returns the parts received from
// every rank, indexed by source (parts[self] is passed through locally).
// Sends are buffered (they complete without waiting for the receiver), so
// posting all sends before draining receives cannot deadlock; rounds are
// shifted so senders do not all hit the same receiver at once.
func (r *Rank) Alltoallv(p *sim.Proc, parts [][]byte) [][]byte {
	n := r.Size()
	if len(parts) != n {
		sim.Failf("mpi: Alltoallv needs %d parts, got %d", n, len(parts))
	}
	out := make([][]byte, n)
	out[r.id] = parts[r.id]
	for k := 1; k < n; k++ {
		r.Send(p, (r.id+k)%n, parts[(r.id+k)%n])
	}
	for k := 1; k < n; k++ {
		src := (r.id - k + n) % n
		out[src] = r.Recv(p, src)
	}
	return out
}

// Op is a reduction operator over int64 (the solvers in this repository
// reduce residual norms and counters).
type Op func(a, b int64) int64

// Reduction operators.
var (
	OpSum = func(a, b int64) int64 { return a + b }
	OpMax = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines every rank's value at root with op; non-roots receive 0.
func (r *Rank) Reduce(p *sim.Proc, root int, value int64, op Op) int64 {
	enc := make([]byte, 8)
	putI64(enc, value)
	parts := r.Gather(p, root, enc)
	if r.id != root {
		return 0
	}
	acc := getI64(parts[0])
	for _, part := range parts[1:] {
		acc = op(acc, getI64(part))
	}
	return acc
}

// Allreduce combines every rank's value with op and returns the result on
// every rank (reduce-to-0 then broadcast).
func (r *Rank) Allreduce(p *sim.Proc, value int64, op Op) int64 {
	acc := r.Reduce(p, 0, value, op)
	enc := make([]byte, 8)
	if r.id == 0 {
		putI64(enc, acc)
	}
	return getI64(r.Bcast(p, 0, enc))
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
