// Package workload generates the access patterns of the paper's evaluation
// section: 2-D block-distributed subarrays (Figure 3, Table 4), the
// one-dimensional block-column file view (Figures 5-7), mpi-tile-io tiled
// display access (Figures 8-9), and the NAS BTIO class A pattern
// (Tables 5-6). Patterns are pure data — pairs of flattened memory and file
// region lists describing the same bytes — so benchmarks and examples can
// materialize them in any client's address space.
package workload

import (
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// Pattern pairs a memory layout (offsets relative to a buffer base) with
// absolute file regions; both streams carry the same bytes in the same
// order.
type Pattern struct {
	Mem  mpiio.Flat
	File mpiio.Flat
}

// Bytes returns the pattern's transfer size.
func (p Pattern) Bytes() int64 { return p.File.Total() }

// MemSpan returns the buffer size needed to hold the memory layout.
func (p Pattern) MemSpan() int64 { return p.Mem.Span() }

func (p Pattern) check() Pattern {
	if p.Mem.Total() != p.File.Total() {
		sim.Failf("workload: memory bytes %d != file bytes %d", p.Mem.Total(), p.File.Total())
	}
	return p
}

// SubarrayWrite is the Figure 3 / Table 4 scenario: an n x n array of
// elem-byte elements block-distributed over px x py processes; process
// (ix, iy) holds the subarray rows in its copy of the full array and writes
// them contiguously to its own non-overlapping file location.
//
// Memory is noncontiguous (subarray rows inside the full array); the file
// is contiguous.
func SubarrayWrite(n int64, px, py, ix, iy int, elem int64) Pattern {
	subRows, subCols := n/int64(py), n/int64(px)
	// The block decomposition keeps every subarray inside the array, so the
	// constructor cannot fail for any (px, py, ix, iy) grid position.
	mem, err := mpiio.Subarray2D(n, n, subRows, subCols, int64(iy)*subRows, int64(ix)*subCols, elem)
	sim.Must(err)
	rank := int64(iy*px + ix)
	bytes := subRows * subCols * elem
	return Pattern{
		Mem:  mem,
		File: mpiio.Contig(bytes).Shift(rank * bytes),
	}.check()
}

// BlockColumn is the Figures 5-7 scenario: an n x n array of elem-byte
// elements stored row-major in the file, distributed in block columns over
// nprocs processes; each process accesses one block column (1 unit out of
// every nprocs in each row). Memory is contiguous; the file is strided.
func BlockColumn(n int64, nprocs, rank int, elem int64) Pattern {
	colw := n / int64(nprocs) * elem
	rowBytes := n * elem
	file := mpiio.Vector(n, colw, rowBytes).Shift(int64(rank) * colw)
	return Pattern{
		Mem:  mpiio.Contig(n * colw),
		File: file,
	}.check()
}

// TileSpec describes an mpi-tile-io dataset: a display of tileX x tileY
// tiles, each sized pixelX x pixelY with elem bytes per pixel. Overlap, if
// nonzero, extends each tile's *read* region by that many pixels into its
// neighbours on every side (mpi-tile-io's overlap_x/overlap_y options),
// modelling compositing filters that need boundary pixels.
type TileSpec struct {
	TilesX, TilesY   int
	PixelsX, PixelsY int64
	Elem             int64
	Overlap          int64
}

// PaperTileSpec is the paper's Section 6.6 configuration: a 2x2 display of
// 1024x768 tiles with 24-bit pixels — a 9 MB file.
func PaperTileSpec() TileSpec {
	return TileSpec{TilesX: 2, TilesY: 2, PixelsX: 1024, PixelsY: 768, Elem: 3}
}

// FileBytes returns the dataset size.
func (s TileSpec) FileBytes() int64 {
	return int64(s.TilesX) * int64(s.TilesY) * s.PixelsX * s.PixelsY * s.Elem
}

// Tile returns the access pattern of the rank rendering one tile: the file
// is noncontiguous (one row-run per display scan line crossing the tile),
// memory is contiguous — exactly the mpi-tile-io shape. The tile excludes
// the overlap (write pattern).
func (s TileSpec) Tile(rank int) Pattern {
	return s.tile(rank, 0)
}

// TileWithOverlap returns the rank's read pattern including the Overlap
// border clamped to the display edges.
func (s TileSpec) TileWithOverlap(rank int) Pattern {
	return s.tile(rank, s.Overlap)
}

func (s TileSpec) tile(rank int, overlap int64) Pattern {
	tx, ty := rank%s.TilesX, rank/s.TilesX
	if ty >= s.TilesY {
		sim.Failf("workload: tile rank out of range")
	}
	frameCols := int64(s.TilesX) * s.PixelsX
	frameRows := int64(s.TilesY) * s.PixelsY
	clamp := func(v, lo, hi int64) int64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	colLo := clamp(int64(tx)*s.PixelsX-overlap, 0, frameCols)
	colHi := clamp(int64(tx+1)*s.PixelsX+overlap, 0, frameCols)
	rowLo := clamp(int64(ty)*s.PixelsY-overlap, 0, frameRows)
	rowHi := clamp(int64(ty+1)*s.PixelsY+overlap, 0, frameRows)
	// Overlap borders are clamped to the display edges above, so the
	// subarray always lies inside the frame.
	file, err := mpiio.Subarray2D(frameRows, frameCols,
		rowHi-rowLo, colHi-colLo, rowLo, colLo, s.Elem)
	sim.Must(err)
	return Pattern{
		Mem:  mpiio.Contig((colHi - colLo) * (rowHi - rowLo) * s.Elem),
		File: file,
	}.check()
}

// BTIOSpec describes a NAS BTIO run: a grid³ cube of cells, each holding 5
// doubles (40 bytes), distributed over nprocs processes as square blocks in
// the (j,k) plane with full i-lines, dumped every few steps.
type BTIOSpec struct {
	Grid   int64 // 64 for class A
	NProcs int   // must be a perfect square
	Dumps  int   // solution dumps over the run
	Steps  int   // total time steps
	// StepCompute is the per-step computation time in seconds, calibrated
	// so the no-I/O class A run matches the paper's 165.6 s.
	StepCompute float64
}

// PaperBTIOSpec reproduces the paper's class A configuration: the counters
// in Table 6 (81920 = 1024 runs x 20 dumps x 4 processes) imply 20 solution
// dumps and a 200 MB solution history.
func PaperBTIOSpec() BTIOSpec {
	return BTIOSpec{Grid: 64, NProcs: 4, Dumps: 20, Steps: 200, StepCompute: 165.6 / 200}
}

// CellBytes is the solution-vector size per grid cell (5 doubles).
const CellBytes = 40

// DumpBytes returns the bytes one dump appends to the file.
func (s BTIOSpec) DumpBytes() int64 { return s.Grid * s.Grid * s.Grid * CellBytes }

// FileBytes returns the total solution-history size.
func (s BTIOSpec) FileBytes() int64 { return int64(s.Dumps) * s.DumpBytes() }

// Dump returns rank's pattern for the d-th solution dump: full i-line runs
// of Grid x CellBytes contiguous bytes, one per (j,k) cell the rank owns.
// The distribution is cyclic in j and blocked in k, which reproduces the
// fragmentation signature of BT's diagonal multipartition as measured in
// the paper's Table 6: with 4 processes on the class A grid, every rank
// holds 1024 noncontiguous runs of 2560 bytes per dump (adjacent j lines
// belong to different ranks, so runs never merge).
func (s BTIOSpec) Dump(rank, d int) Pattern {
	side := isqrt(s.NProcs)
	if side*side != s.NProcs {
		sim.Failf("workload: BTIO needs a square process count")
	}
	pj, pk := int64(rank%side), int64(rank/side)
	bk := s.Grid / int64(side)
	klo := pk * bk
	base := int64(d) * s.DumpBytes()
	var file mpiio.Flat
	runLen := s.Grid * CellBytes
	for k := klo; k < klo+bk; k++ {
		for j := pj; j < s.Grid; j += int64(side) {
			off := base + ((k*s.Grid)+j)*s.Grid*CellBytes
			file = append(file, pvfs.OffLen{Off: off, Len: runLen})
		}
	}
	file = file.Normalize()
	return Pattern{
		Mem:  mpiio.Contig(file.Total()),
		File: file,
	}.check()
}

func isqrt(n int) int {
	for i := 0; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	sim.Failf("workload: not a perfect square")
	return 0
}
