package workload

import (
	"testing"

	"pvfsib/internal/pvfs"
)

func TestSubarrayWrite(t *testing.T) {
	// 8x8 ints over 2x2 procs: each proc holds 4x4.
	for rank := 0; rank < 4; rank++ {
		ix, iy := rank%2, rank/2
		p := SubarrayWrite(8, 2, 2, ix, iy, 4)
		if p.Bytes() != 4*4*4 {
			t.Errorf("rank %d: bytes = %d, want 64", rank, p.Bytes())
		}
		if len(p.Mem) != 4 {
			t.Errorf("rank %d: %d memory rows, want 4", rank, len(p.Mem))
		}
		if len(p.File) != 1 {
			t.Errorf("rank %d: file must be contiguous, got %v", rank, p.File)
		}
		if p.File[0].Off != int64(rank)*64 {
			t.Errorf("rank %d writes at %d, want %d", rank, p.File[0].Off, rank*64)
		}
	}
	// All ranks' memory rows together tile the full array.
	covered := make(map[int64]bool)
	for rank := 0; rank < 4; rank++ {
		p := SubarrayWrite(8, 2, 2, rank%2, rank/2, 4)
		for _, r := range p.Mem {
			for b := r.Off; b < r.End(); b++ {
				if covered[b] {
					t.Fatalf("byte %d covered twice", b)
				}
				covered[b] = true
			}
		}
	}
	if len(covered) != 8*8*4 {
		t.Errorf("covered %d bytes, want %d", len(covered), 8*8*4)
	}
}

func TestBlockColumnTilesFile(t *testing.T) {
	const n, procs = 16, 4
	covered := make(map[int64]int)
	for rank := 0; rank < procs; rank++ {
		p := BlockColumn(n, procs, rank, 4)
		if len(p.File) != n {
			t.Errorf("rank %d: %d file pieces, want %d", rank, len(p.File), n)
		}
		if p.Bytes() != n*n*4/procs {
			t.Errorf("rank %d bytes = %d", rank, p.Bytes())
		}
		for _, r := range p.File {
			for b := r.Off; b < r.End(); b++ {
				covered[b]++
			}
		}
	}
	if int64(len(covered)) != n*n*4 {
		t.Errorf("file coverage %d, want %d", len(covered), n*n*4)
	}
	for b, c := range covered {
		if c != 1 {
			t.Fatalf("byte %d covered %d times", b, c)
		}
	}
}

func TestPaperTileSpec(t *testing.T) {
	s := PaperTileSpec()
	if s.FileBytes() != 2*2*1024*768*3 {
		t.Errorf("FileBytes = %d", s.FileBytes())
	}
	// 9 MB, as the paper states.
	if got := float64(s.FileBytes()) / (1 << 20); got != 9 {
		t.Errorf("file = %.2f MB, want 9", got)
	}
	covered := make(map[int64]bool)
	for rank := 0; rank < 4; rank++ {
		p := s.Tile(rank)
		if len(p.File) != 768 {
			t.Errorf("rank %d: %d runs, want 768 (one per scan line)", rank, len(p.File))
		}
		if p.File[0].Len != 1024*3 {
			t.Errorf("run length = %d, want 3072", p.File[0].Len)
		}
		for _, r := range p.File {
			for b := r.Off; b < r.End(); b += 3 {
				covered[b] = true
			}
		}
	}
	if int64(len(covered)) != s.FileBytes()/3 {
		t.Errorf("tiles do not tile the frame: %d", len(covered))
	}
}

func TestBTIOSpecMatchesTable6Arithmetic(t *testing.T) {
	s := PaperBTIOSpec()
	// 20 dumps x 10 MB = 200 MB solution history.
	if got := float64(s.FileBytes()) / (1 << 20); got != 200 {
		t.Errorf("file = %.1f MB, want 200", got)
	}
	// Per dump per rank: 1024 runs of 2560 bytes.
	p := s.Dump(0, 0)
	if len(p.File) != 1024 {
		t.Errorf("runs = %d, want 1024", len(p.File))
	}
	if p.File[0].Len != 2560 {
		t.Errorf("run length = %d, want 2560", p.File[0].Len)
	}
	// Total write calls in Multiple I/O = runs x dumps x procs = 81920,
	// matching Table 6.
	total := len(p.File) * s.Dumps * s.NProcs
	if total != 81920 {
		t.Errorf("total accesses = %d, want 81920", total)
	}
}

func TestBTIODumpsTileEachDumpRegion(t *testing.T) {
	s := BTIOSpec{Grid: 8, NProcs: 4, Dumps: 2, Steps: 10, StepCompute: 0.1}
	for d := 0; d < 2; d++ {
		covered := make(map[int64]bool)
		for rank := 0; rank < 4; rank++ {
			p := s.Dump(rank, d)
			for _, r := range p.File {
				lo := int64(d) * s.DumpBytes()
				if r.Off < lo || r.End() > lo+s.DumpBytes() {
					t.Fatalf("dump %d rank %d writes outside its region: %v", d, rank, r)
				}
				for b := r.Off; b < r.End(); b += CellBytes {
					if covered[b] {
						t.Fatalf("cell %d covered twice", b)
					}
					covered[b] = true
				}
			}
		}
		if int64(len(covered)) != s.DumpBytes()/CellBytes {
			t.Errorf("dump %d: %d cells covered, want %d", d, len(covered), s.DumpBytes()/CellBytes)
		}
	}
}

func TestPatternsAligned(t *testing.T) {
	pats := []Pattern{
		SubarrayWrite(64, 2, 2, 1, 1, 4),
		BlockColumn(64, 4, 2, 4),
		PaperTileSpec().Tile(3),
		PaperBTIOSpec().Dump(2, 5),
	}
	for i, p := range pats {
		if p.Mem.Total() != p.File.Total() {
			t.Errorf("pattern %d misaligned", i)
		}
		if p.MemSpan() < p.Mem.Total() {
			t.Errorf("pattern %d: span %d < total %d", i, p.MemSpan(), p.Mem.Total())
		}
		// File regions must be disjoint.
		var prev pvfs.OffLen
		for j, r := range p.File {
			if j > 0 && r.Off < prev.End() {
				t.Errorf("pattern %d: overlapping file regions", i)
			}
			prev = r
		}
	}
}

func TestTileOverlap(t *testing.T) {
	s := TileSpec{TilesX: 2, TilesY: 2, PixelsX: 100, PixelsY: 80, Elem: 1, Overlap: 10}
	// Corner tile 0: overlap clamps at display edges, extends right/down.
	p0 := s.TileWithOverlap(0)
	if want := int64((100 + 10) * (80 + 10)); p0.Bytes() != want {
		t.Errorf("tile 0 overlap bytes = %d, want %d", p0.Bytes(), want)
	}
	// Plain tile unaffected.
	if s.Tile(0).Bytes() != 100*80 {
		t.Errorf("plain tile bytes = %d", s.Tile(0).Bytes())
	}
	// Overlapped regions of adjacent tiles intersect.
	p1 := s.TileWithOverlap(1)
	seen := map[int64]bool{}
	for _, r := range p0.File {
		for b := r.Off; b < r.End(); b++ {
			seen[b] = true
		}
	}
	shared := 0
	for _, r := range p1.File {
		for b := r.Off; b < r.End(); b++ {
			if seen[b] {
				shared++
			}
		}
	}
	if shared != 20*90 { // 2*overlap wide, (80+overlap) tall
		t.Errorf("shared bytes = %d, want %d", shared, 20*90)
	}
}

func TestTileOverlapZeroMatchesTile(t *testing.T) {
	s := PaperTileSpec()
	for r := 0; r < 4; r++ {
		a, b := s.Tile(r), s.TileWithOverlap(r)
		if a.Bytes() != b.Bytes() || len(a.File) != len(b.File) {
			t.Errorf("rank %d: zero overlap must equal plain tile", r)
		}
	}
}
