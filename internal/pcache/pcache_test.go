package pcache

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// testCfg keeps cache geometry small so eviction and high-water paths are
// exercised by modest workloads.
func testCfg() Config {
	return Config{PageSize: 8 << 10, Pages: 16, DirtyHighWater: 8, ReadAhead: 4}
}

func newCluster(t *testing.T, nServers, nClients int) *pvfs.Cluster {
	t.Helper()
	return pvfs.NewCluster(sim.NewEngine(), pvfs.DefaultConfig(), nServers, nClients)
}

// app runs fn as an application process and drives the simulation.
func app(t *testing.T, c *pvfs.Cluster, fn func(p *sim.Proc)) {
	t.Helper()
	c.Eng.Go("app", fn)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// fill allocates a client buffer holding a deterministic pattern.
func fill(cl *pvfs.Client, n int64, seed byte) (mem.Addr, []byte) {
	addr := cl.Space().Malloc(n)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(int(seed) + i*7 + i/253)
	}
	if err := cl.Space().Write(addr, data); err != nil {
		panic(err)
	}
	return addr, data
}

// readBack reads [off, off+n) through the cache and returns the bytes.
func readBack(t *testing.T, p *sim.Proc, f *File, n, off int64) []byte {
	t.Helper()
	cl := f.Handle().Client()
	addr := cl.Space().Malloc(n)
	if err := f.Read(p, addr, n, off); err != nil {
		t.Fatalf("cached read: %v", err)
	}
	got, err := cl.Space().Read(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRoundTripAndDurability writes a strided pattern through the cache,
// reads it back cached (hits), syncs, and verifies the bytes landed on the
// servers by reading uncached from a second client.
func TestRoundTripAndDurability(t *testing.T) {
	c := newCluster(t, 4, 2)
	const segLen, nSegs, stride = 1024, 32, 4096
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "rt")
		f := New(fh, testCfg())
		addr, want := fill(cl, segLen*nSegs, 3)
		for i := int64(0); i < nSegs; i++ {
			if err := f.Write(p, addr+mem.Addr(i*segLen), segLen, i*stride); err != nil {
				t.Fatalf("cached write: %v", err)
			}
		}
		// Cached read-back sees write-behind data before any flush.
		for i := int64(0); i < nSegs; i++ {
			got := readBack(t, p, f, segLen, i*stride)
			if !bytes.Equal(got, want[i*segLen:(i+1)*segLen]) {
				t.Fatalf("cached read seg %d mismatch", i)
			}
		}
		if err := f.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Uncached read from another client must see the synced bytes.
		cl2 := c.Clients[1]
		fh2 := cl2.Open(p, "rt")
		raddr := cl2.Space().Malloc(segLen)
		for i := int64(0); i < nSegs; i++ {
			if err := fh2.Read(p, raddr, segLen, i*stride, pvfs.OpOptions{}); err != nil {
				t.Fatal(err)
			}
			got, err := cl2.Space().Read(raddr, segLen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[i*segLen:(i+1)*segLen]) {
				t.Fatalf("uncached read seg %d mismatch after sync", i)
			}
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	a := c.Acct()
	if a.CacheHits == 0 {
		t.Errorf("no cache hits recorded")
	}
	if a.WriteBehindBytes == 0 {
		t.Errorf("no write-behind bytes recorded")
	}
	if a.LeaseGrants == 0 {
		t.Errorf("no lease grants recorded")
	}
}

// TestWriteBehindCoalesces checks the heart of the tentpole: many small
// strided writes produce far fewer server write requests than uncached
// one-request-per-segment traffic, via coalesced flushes.
func TestWriteBehindCoalesces(t *testing.T) {
	c := newCluster(t, 4, 2)
	const segLen, nSegs, stride = 512, 64, 2048
	var cachedWrites, uncachedWrites int64
	app(t, c, func(p *sim.Proc) {
		// Uncached baseline: one WriteList per segment.
		cl := c.Clients[1]
		fh := cl.Open(p, "base")
		addr, _ := fill(cl, segLen*nSegs, 9)
		before := c.Acct().WriteReqs
		for i := int64(0); i < nSegs; i++ {
			if err := fh.Write(p, addr+mem.Addr(i*segLen), segLen, i*stride, pvfs.OpOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		uncachedWrites = c.Acct().WriteReqs - before

		// Cached: same pattern through write-behind.
		cl0 := c.Clients[0]
		fh0 := cl0.Open(p, "wb")
		f := New(fh0, testCfg())
		addr0, _ := fill(cl0, segLen*nSegs, 9)
		before = c.Acct().WriteReqs
		for i := int64(0); i < nSegs; i++ {
			if err := f.Write(p, addr0+mem.Addr(i*segLen), segLen, i*stride); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Flush(p); err != nil {
			t.Fatal(err)
		}
		cachedWrites = c.Acct().WriteReqs - before
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	if cachedWrites*4 > uncachedWrites {
		t.Errorf("write-behind sent %d write requests, uncached sent %d; want at least 4x reduction",
			cachedWrites, uncachedWrites)
	}
	if c.Acct().CoalescedFlushes == 0 {
		t.Errorf("no coalesced flushes recorded")
	}
}

// TestReadAhead streams a strided read pattern and expects the detector to
// prefetch: later segments hit without their own fill.
func TestReadAhead(t *testing.T) {
	c := newCluster(t, 4, 1)
	cfg := testCfg()
	const nPages = 12
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "ra")
		// Materialize 2 pages of stride: pages 0,2,4,... up to nPages*2.
		total := int64(nPages*2+1) * cfg.PageSize
		addr, _ := fill(cl, total, 5)
		if err := fh.Write(p, addr, total, 0, pvfs.OpOptions{}); err != nil {
			t.Fatal(err)
		}
		f := New(fh, cfg)
		buf := cl.Space().Malloc(cfg.PageSize)
		for i := int64(0); i < nPages; i++ {
			if err := f.Read(p, buf, cfg.PageSize, i*2*cfg.PageSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	if c.Acct().CacheReadAheads == 0 {
		t.Errorf("stride pattern triggered no read-ahead")
	}
	// Prefetched pages must convert later accesses into hits: misses plus
	// prefetches should not exceed the touched page count, and hits prove
	// prefetched pages were consumed.
	if c.Acct().CacheMisses+c.Acct().CacheReadAheads > int64(nPages+testCfg().ReadAhead) {
		t.Errorf("misses=%d ra=%d exceed touched pages", c.Acct().CacheMisses, c.Acct().CacheReadAheads)
	}
	if c.Acct().CacheHits == 0 {
		t.Errorf("no hits from prefetched pages")
	}
}

// TestEvictionCorrectness pushes a working set larger than the cache
// through it and verifies every byte survives eviction and re-fill.
func TestEvictionCorrectness(t *testing.T) {
	c := newCluster(t, 2, 1)
	cfg := Config{PageSize: 4 << 10, Pages: 4, DirtyHighWater: 2, ReadAhead: 2}
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "evict")
		f := New(fh, cfg)
		const nPages = 12 // 3x the cache
		total := int64(nPages) * cfg.PageSize
		addr, want := fill(cl, total, 11)
		for i := int64(0); i < nPages; i++ {
			if err := f.Write(p, addr+mem.Addr(i*cfg.PageSize), cfg.PageSize, i*cfg.PageSize); err != nil {
				t.Fatal(err)
			}
		}
		got := readBack(t, p, f, total, 0)
		if !bytes.Equal(got, want) {
			t.Fatal("read-back mismatch across evictions")
		}
		if pages, _ := f.Resident(); pages > cfg.Pages {
			t.Fatalf("resident pages %d exceed capacity %d", pages, cfg.Pages)
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPartialPageWriteFills checks the every-resident-page-is-valid
// invariant: a small write into an absent page fills the page first, so a
// later full-page read returns the fill plus the overlay.
func TestPartialPageWriteFills(t *testing.T) {
	c := newCluster(t, 2, 1)
	cfg := testCfg()
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "partial")
		// Seed one full page uncached.
		base, want := fill(cl, cfg.PageSize, 21)
		if err := fh.Write(p, base, cfg.PageSize, 0, pvfs.OpOptions{}); err != nil {
			t.Fatal(err)
		}
		f := New(fh, cfg)
		// Overlay 100 bytes at offset 1000 through the cache.
		oaddr, overlay := fill(cl, 100, 77)
		if err := f.Write(p, oaddr, 100, 1000); err != nil {
			t.Fatal(err)
		}
		copy(want[1000:1100], overlay)
		got := readBack(t, p, f, cfg.PageSize, 0)
		if !bytes.Equal(got, want) {
			t.Fatal("partial write did not preserve surrounding page bytes")
		}
		// After flush the servers hold the merged page too.
		if err := f.Sync(p); err != nil {
			t.Fatal(err)
		}
		raddr := cl.Space().Malloc(cfg.PageSize)
		if err := fh.Read(p, raddr, cfg.PageSize, 0, pvfs.OpOptions{}); err != nil {
			t.Fatal(err)
		}
		sgot, err := cl.Space().Read(raddr, cfg.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sgot, want) {
			t.Fatal("flushed page differs from cached view")
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStatMatchesUncached verifies flush-before-stat: the cached Stat
// reports the same logical EOF the uncached path would.
func TestStatMatchesUncached(t *testing.T) {
	c := newCluster(t, 4, 1)
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "stat")
		f := New(fh, testCfg())
		addr, _ := fill(cl, 100, 1)
		const off = 123456
		if err := f.Write(p, addr, 100, off); err != nil {
			t.Fatal(err)
		}
		size, err := f.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := fh.Stat(p); size != want || size < off+100 {
			t.Fatalf("cached Stat=%d uncached=%d want >= %d", size, want, off+100)
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBigOpBypass routes an operation larger than half the arena around
// the cache and keeps resident pages coherent with it.
func TestBigOpBypass(t *testing.T) {
	c := newCluster(t, 2, 1)
	cfg := Config{PageSize: 4 << 10, Pages: 8, DirtyHighWater: 4}
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "big")
		f := New(fh, cfg)
		// Prime page 0 through the cache.
		a0, _ := fill(cl, cfg.PageSize, 1)
		if err := f.Write(p, a0, cfg.PageSize, 0); err != nil {
			t.Fatal(err)
		}
		// Bypass write covering pages 0..15 (64 KiB > arena/2 = 16 KiB).
		total := 16 * cfg.PageSize
		addr, want := fill(cl, total, 42)
		if err := f.Write(p, addr, total, 0); err != nil {
			t.Fatal(err)
		}
		// The cached view must reflect the bypass write, not the stale page.
		got := readBack(t, p, f, cfg.PageSize, 0)
		if !bytes.Equal(got, want[:cfg.PageSize]) {
			t.Fatal("stale resident page survived a bypassing write")
		}
		// And a bypass read sees dirty data flushed first.
		b0, fresh := fill(cl, 64, 9)
		if err := f.Write(p, b0, 64, 0); err != nil {
			t.Fatal(err)
		}
		raddr := cl.Space().Malloc(total)
		if err := f.Read(p, raddr, total, 0); err != nil {
			t.Fatal(err)
		}
		head, err := cl.Space().Read(raddr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(head, fresh) {
			t.Fatal("bypass read missed unflushed dirty bytes")
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWriteThroughAblation: write-through mode must send one server write
// per operation while write-behind batches them.
func TestWriteThroughAblation(t *testing.T) {
	c := newCluster(t, 2, 2)
	const segLen, nSegs = 512, 32
	var wt, wb int64
	app(t, c, func(p *sim.Proc) {
		run := func(cl *pvfs.Client, name string, through bool) int64 {
			cfg := testCfg()
			cfg.WriteThrough = through
			fh := cl.Open(p, name)
			f := New(fh, cfg)
			addr, _ := fill(cl, segLen*nSegs, 2)
			before := c.Acct().WriteReqs
			for i := int64(0); i < nSegs; i++ {
				if err := f.Write(p, addr+mem.Addr(i*segLen), segLen, i*2048); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Flush(p); err != nil {
				t.Fatal(err)
			}
			n := c.Acct().WriteReqs - before
			if err := f.Close(p); err != nil {
				t.Fatal(err)
			}
			return n
		}
		wt = run(c.Clients[0], "wt", true)
		wb = run(c.Clients[1], "wb", false)
	})
	if wb >= wt {
		t.Errorf("write-behind wrote %d requests, write-through %d; want fewer", wb, wt)
	}
}

// TestLeaseCoherence is the two-client conflict: A writes through its cache
// (dirty, unflushed), then B reads through its own cache. B's lease
// acquisition must recall A — flushing A's dirty pages — so B reads fresh
// bytes, never stale ones.
func TestLeaseCoherence(t *testing.T) {
	c := newCluster(t, 4, 2)
	const n = 32 << 10
	app(t, c, func(p *sim.Proc) {
		clA, clB := c.Clients[0], c.Clients[1]
		fhA := clA.Open(p, "shared")
		fA := New(fhA, testCfg())
		addr, want := fill(clA, n, 55)
		if err := fA.Write(p, addr, n, 0); err != nil {
			t.Fatal(err)
		}
		if _, dirty := fA.Resident(); dirty == 0 {
			t.Fatal("setup: expected unflushed dirty pages on A")
		}
		fhB := clB.Open(p, "shared")
		fB := New(fhB, testCfg())
		got := readBack(t, p, fB, n, 0)
		if !bytes.Equal(got, want) {
			t.Fatal("B read stale bytes: recall did not flush A")
		}
		// A's cache must have been invalidated by the recall.
		if pages, dirty := fA.Resident(); pages != 0 || dirty != 0 {
			t.Fatalf("A still holds %d pages (%d dirty) after recall", pages, dirty)
		}
		// Now A writes again: its write lease recalls B's read lease.
		addr2, want2 := fill(clA, n, 99)
		if err := fA.Write(p, addr2, n, 0); err != nil {
			t.Fatal(err)
		}
		if pages, _ := fB.Resident(); pages != 0 {
			t.Fatalf("B still holds %d pages after write-lease recall", pages)
		}
		if err := fA.Sync(p); err != nil {
			t.Fatal(err)
		}
		got2 := readBack(t, p, fB, n, 0)
		if !bytes.Equal(got2, want2) {
			t.Fatal("B read stale bytes after A's second write")
		}
		if err := fA.Close(p); err != nil {
			t.Fatal(err)
		}
		if err := fB.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	if c.Acct().LeaseRecalls < 2 {
		t.Errorf("LeaseRecalls = %d, want >= 2", c.Acct().LeaseRecalls)
	}
	readers, writer := c.Manager.LeaseHolders(0)
	if len(readers) != 0 || writer != -1 {
		t.Errorf("leases leaked after Close: readers=%v writer=%d", readers, writer)
	}
}

// coherenceStorm runs the conflicting-lease workload under an iod
// crash/restart plan and returns the final (snapshot, virtual time) pair
// for determinism comparison.
func coherenceStorm(t *testing.T, seed int64) (string, sim.Time) {
	t.Helper()
	cfg := pvfs.DefaultConfig()
	cfg.Faults = &fault.Plan{
		Seed:        seed,
		WRErrorRate: 0.02,
		Crashes: []fault.Crash{
			{Server: 1, At: 50 * time.Microsecond, Down: 400 * time.Microsecond},
		},
	}
	c := pvfs.NewCluster(sim.NewEngine(), cfg, 4, 2)
	const n = 48 << 10
	app(t, c, func(p *sim.Proc) {
		clA, clB := c.Clients[0], c.Clients[1]
		fA := New(clA.Open(p, "storm"), testCfg())
		fB := New(clB.Open(p, "storm"), testCfg())
		for round := 0; round < 3; round++ {
			addr, want := fill(clA, n, byte(60+round))
			if err := fA.Write(p, addr, n, 0); err != nil {
				t.Fatal(err)
			}
			got := readBack(t, p, fB, n, 0)
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: stale read under faults", round)
			}
		}
		if err := fA.Close(p); err != nil {
			t.Fatal(err)
		}
		if err := fB.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	if c.Acct().Crashes == 0 || c.Acct().Restarts == 0 {
		t.Fatalf("fault plan did not execute: crashes=%d restarts=%d", c.Acct().Crashes, c.Acct().Restarts)
	}
	if c.Acct().LeaseRecalls == 0 {
		t.Fatal("no lease recalls under the storm")
	}
	return fmt.Sprintf("%+v", c.Snapshot()), c.Eng.Now()
}

// TestCoherenceSurvivesIodCrash: conflicting leases under an iod
// crash/restart produce no stale reads, and the whole run replays
// byte-identically at a fixed seed.
func TestCoherenceSurvivesIodCrash(t *testing.T) {
	snap1, t1 := coherenceStorm(t, 1234)
	snap2, t2 := coherenceStorm(t, 1234)
	if snap1 != snap2 || t1 != t2 {
		t.Fatalf("replay diverged:\n run1 t=%v %s\n run2 t=%v %s", t1, snap1, t2, snap2)
	}
}

// TestStrideDetector pins the detector's contract directly.
func TestStrideDetector(t *testing.T) {
	var d Detector
	if _, ok := d.Stride(); ok {
		t.Fatal("empty detector claims a stride")
	}
	for _, pno := range []int64{10, 13, 16, 19} {
		d.Observe(pno)
	}
	if s, ok := d.Stride(); !ok || s != 3 {
		t.Fatalf("Stride() = (%d, %v), want (3, true)", s, ok)
	}
	// Repeats do not break the streak.
	d.Observe(19)
	if s, ok := d.Stride(); !ok || s != 3 {
		t.Fatalf("after repeat: Stride() = (%d, %v), want (3, true)", s, ok)
	}
	// A break resets confidence.
	d.Observe(100)
	if _, ok := d.Stride(); ok {
		t.Fatal("one irregular delta should drop confidence")
	}
	// Negative strides (backward scans) are detected too.
	d.Reset()
	for _, pno := range []int64{50, 45, 40} {
		d.Observe(pno)
	}
	if s, ok := d.Stride(); !ok || s != -5 {
		t.Fatalf("backward: Stride() = (%d, %v), want (-5, true)", s, ok)
	}
}

// TestPieceWalker checks fragment iteration against a hand-built case.
func TestPieceWalker(t *testing.T) {
	segs := []ib.SGE{{Addr: 0x1000, Len: 300}, {Addr: 0x9000, Len: 100}}
	accs := []pvfs.OffLen{{Off: 1000, Len: 150}, {Off: 4000, Len: 250}}
	w := pieceWalker{segs: segs, accs: accs, pageSize: 4096}
	type frag struct {
		off  int64
		addr mem.Addr
		n    int64
	}
	var got []frag
	for {
		off, addr, n, ok := w.next()
		if !ok {
			break
		}
		got = append(got, frag{off, addr, n})
	}
	want := []frag{
		{1000, 0x1000, 150},
		{4000, 0x1000 + 150, 96}, // split at page boundary 4096
		{4096, 0x1000 + 246, 54}, // rest of seg 0
		{4150, 0x9000, 100},      // seg 1
	}
	if len(got) != len(want) {
		t.Fatalf("got %d fragments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frag %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
