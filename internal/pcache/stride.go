package pcache

// Detector recognizes constant-stride access in the stream of cache-miss
// page numbers and drives read-ahead. Subarray2D/3D-style workloads touch
// pages at a fixed stride (row length × element size); after two
// consecutive equal nonzero deltas the detector is confident enough to
// prefetch along the stride. A sequential scan is the stride-1 special
// case. Repeated accesses to the same page (delta 0) are ignored rather
// than breaking the streak: a re-miss of a just-evicted page says nothing
// about the access pattern.
type Detector struct {
	last   int64
	stride int64
	streak int
	primed bool
}

const (
	// confirmStreak is how many consecutive equal nonzero deltas make the
	// stride trustworthy: two deltas = three observations on a line.
	confirmStreak = 2
	// maxStreak caps the counter so adversarial input cannot overflow it.
	maxStreak = 1 << 20
)

// Observe feeds one missed page number, in access order.
func (d *Detector) Observe(pno int64) {
	if !d.primed {
		d.primed = true
		d.last = pno
		return
	}
	delta := pno - d.last
	d.last = pno
	if delta == 0 {
		return
	}
	if delta == d.stride {
		if d.streak < maxStreak {
			d.streak++
		}
		return
	}
	d.stride = delta
	d.streak = 1
}

// Stride returns the current stride and whether it is confirmed (at least
// confirmStreak consecutive equal nonzero deltas). A confirmed stride is
// never zero.
func (d *Detector) Stride() (int64, bool) {
	return d.stride, d.streak >= confirmStreak && d.stride != 0
}

// Last returns the most recently observed page number (zero before the
// first observation).
func (d *Detector) Last() int64 { return d.last }

// Reset forgets all history; called when the cache is invalidated.
func (d *Detector) Reset() { *d = Detector{} }
