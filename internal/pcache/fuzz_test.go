package pcache

import (
	"encoding/binary"
	"testing"
)

// FuzzStrideDetect feeds arbitrary page-number streams to the stride
// detector and checks its invariants:
//
//   - a confirmed stride is never zero;
//   - after any three observations forming two equal nonzero deltas, the
//     detector is confirmed with exactly that stride;
//   - any delta different from the current stride drops confirmation;
//   - Last always tracks the newest observation;
//   - no input panics or overflows the streak counter.
func FuzzStrideDetect(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{255, 254, 253})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode the raw bytes into a page-number stream: one byte per
		// observation keeps deltas small enough that equal-delta runs (the
		// interesting regime) actually occur under fuzzing; every 9th byte
		// splices in a full int64 to also probe extreme values.
		var pnos []int64
		for i := 0; i < len(raw); i++ {
			if i%9 == 8 && i+8 <= len(raw) {
				pnos = append(pnos, int64(binary.LittleEndian.Uint64(raw[i:i+8])))
				i += 7
				continue
			}
			pnos = append(pnos, int64(raw[i]))
		}

		var d Detector
		// mirror is the reference implementation: track the last delta run
		// directly.
		var last, stride int64
		streak, primed := 0, false
		for _, pno := range pnos {
			d.Observe(pno)
			if !primed {
				primed = true
				last = pno
			} else if delta := pno - last; delta != 0 {
				if delta == stride {
					if streak < maxStreak {
						streak++
					}
				} else {
					stride = delta
					streak = 1
				}
				last = pno
			} else {
				last = pno
			}
			if got := d.Last(); got != last {
				t.Fatalf("Last() = %d, want %d", got, last)
			}
			s, ok := d.Stride()
			wantOK := streak >= confirmStreak && stride != 0
			if ok != wantOK {
				t.Fatalf("confirmed = %v, want %v (stride=%d streak=%d)", ok, wantOK, stride, streak)
			}
			if ok && s == 0 {
				t.Fatal("confirmed stride is zero")
			}
			if ok && s != stride {
				t.Fatalf("Stride() = %d, want %d", s, stride)
			}
		}
		d.Reset()
		if _, ok := d.Stride(); ok {
			t.Fatal("detector confirmed after Reset")
		}
		if d.Last() != 0 {
			t.Fatal("Last() nonzero after Reset")
		}
	})
}
