// Package pcache is a client-side page cache layered between the MPI-IO /
// facade layers and the PVFS client library. It is the buffer-cache tier
// the paper's authors built next (the OrangeFS CREDITS records "buffer
// cache development" as Jiesheng Wu's follow-on project): noncontiguous
// workloads are dominated by many small regions, and a client cache turns
// them into a few large list-I/O exchanges.
//
// Three mechanisms carry the design:
//
//   - Write-behind. Writes land in fixed-size cache pages carved from one
//     pooled arena allocation; each page tracks a dirty byte hull. A flush
//     — triggered by a dirty high-water mark, Sync, Close, or a lease
//     recall — sorts the dirty pages and drains them as a single
//     offset-length list write, so hundreds of small strided writes
//     coalesce into one wire exchange. The arena is registered through the
//     pin-down cache as one declared allocation (RegDeclared), so cached
//     registrations have real MR lifetimes.
//
//   - Strided read-ahead. A stride detector watches the sequence of missed
//     page numbers; after two consecutive equal deltas it prefetches along
//     the stride into otherwise-idle frames (prefetch never evicts).
//     Misses within one operation are batched: all absent pages are
//     fetched with a single list read.
//
//   - Lease coherence. Before caching, a client takes a per-file lease
//     from the metadata manager (read leases shared, write lease
//     exclusive). A conflicting open recalls the lease: the holder flushes
//     dirty pages, invalidates, and acks before the new lease is granted,
//     so no client ever reads stale bytes through the cache. Leases
//     survive iod crash/restart — flushes ride the client library's
//     idempotent chunk recovery — and the whole protocol is deterministic
//     under the fault plane.
//
// Every resident page is fully valid: a write miss that only partially
// covers a page first fills the page from the servers, then overlays. That
// invariant keeps the flush planner trivial (the dirty hull is always
// backed by valid bytes around it) and makes reads after partial writes
// correct without per-byte validity maps.
package pcache

import (
	"fmt"
	"sort"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Config sizes one cached file. The zero value of any field is replaced by
// the default.
type Config struct {
	// PageSize is the cache page size in bytes (default 64 KiB, the
	// cluster's stripe size — one page maps to one stripe fragment).
	PageSize int64
	// Pages is the frame count; the arena is Pages×PageSize bytes
	// (default 64 frames = 4 MiB).
	Pages int
	// DirtyHighWater triggers a write-behind flush when this many frames
	// are dirty (default Pages/2).
	DirtyHighWater int
	// ReadAhead caps the pages prefetched per confirmed stride (default
	// 4; 0 disables read-ahead).
	ReadAhead int
	// NoReadAhead disables prefetching entirely (ablation switch).
	NoReadAhead bool
	// WriteThrough disables write-behind: writes update resident pages
	// (keeping the read cache fresh) but go to the servers synchronously,
	// unbatched. The ablation baseline for the cache experiment.
	WriteThrough bool
}

// DefaultConfig returns the production configuration.
func DefaultConfig() Config {
	return Config{PageSize: 64 << 10, Pages: 64, DirtyHighWater: 32, ReadAhead: 4}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PageSize <= 0 {
		c.PageSize = d.PageSize
	}
	if c.Pages <= 0 {
		c.Pages = d.Pages
	}
	if c.DirtyHighWater <= 0 {
		c.DirtyHighWater = c.Pages / 2
		if c.DirtyHighWater < 1 {
			c.DirtyHighWater = 1
		}
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = d.ReadAhead
	}
	if c.NoReadAhead {
		c.ReadAhead = 0
	}
	return c
}

// leaseMode is the client's view of its lease on the file.
type leaseMode int8

const (
	leaseNone leaseMode = iota
	leaseRead
	leaseWrite
)

// frame is one cache page slot in the arena.
type frame struct {
	pno    int64 // file page number, valid when used
	used   bool
	refbit bool // clock second-chance bit
	dirty  bool
	// Dirty byte hull [dLo, dHi) within the page; the flush planner
	// writes only the hull, so file sizes match uncached semantics.
	dLo, dHi int64
}

// File is one cached open file on one client. All methods must be called
// from simulation processes; a single mutex serializes cache state across
// the application processes and the lease-recall daemon.
type File struct {
	fh   *pvfs.FileHandle
	cl   *pvfs.Client
	clu  *pvfs.Cluster
	acct *pvfs.Acct // the owning client's counter set (shard-local)
	cfg  Config

	// mx points at the owning client's page-cache instrument handles
	// (zero-value sinks with metrics off). The client's gauges aggregate
	// across all its caches, so each File contributes occupancy deltas
	// from its last sample (mxRes/mxDirty) rather than absolute values.
	mx      *pvfs.CacheMetrics
	mxRes   int64
	mxDirty int64

	mu        *sim.Resource
	arena     mem.Extent
	frames    []frame
	table     map[int64]int32 // page number -> frame index
	clockHand int
	nDirty    int
	det       Detector
	mode      leaseMode
	node      string
	ibp       ib.Params
	closed    bool

	unregister func()

	// Scratch reused across slow-path operations.
	pnos  []int64
	fsegs []ib.SGE
	faccs []pvfs.OffLen
}

// New attaches a page cache to an open file. The arena is allocated
// immediately; leases are acquired lazily on first access. Multiple caches
// on one client for the same file are legal (each registers its own recall
// callback) but pointless; one cache per (client, file) is the intended
// shape.
func New(fh *pvfs.FileHandle, cfg Config) *File {
	cfg = cfg.withDefaults()
	cl := fh.Client()
	clu := cl.Cluster()
	size := int64(cfg.Pages) * cfg.PageSize
	f := &File{
		fh:     fh,
		cl:     cl,
		clu:    clu,
		acct:   cl.Acct(),
		mx:     cl.CacheMetrics(),
		cfg:    cfg,
		arena:  mem.Extent{Addr: cl.Space().Malloc(size), Len: size},
		frames: make([]frame, cfg.Pages),
		table:  make(map[int64]int32, cfg.Pages),
		node:   cl.Node().Name,
		ibp:    clu.Cfg.IB,
		mu:     clu.Eng.NewResource(fmt.Sprintf("pcache[%s@%s]", fh.Name(), cl.Node().Name), 1),
	}
	f.unregister = fh.OnLeaseRecall(f.onRecall)
	return f
}

// Handle returns the underlying uncached file handle.
func (f *File) Handle() *pvfs.FileHandle { return f.fh }

// sampleMX re-samples the occupancy gauges from the table and dirty
// count, emitting only the delta since the last sample. Call with the
// mutex held, after any state change, before releasing it.
//
//pvfslint:hotpath alloc,syscall
func (f *File) sampleMX(p *sim.Proc) {
	if res := int64(len(f.table)); res != f.mxRes {
		f.mx.Resident.Add(p.Now(), res-f.mxRes)
		f.mxRes = res
	}
	if d := int64(f.nDirty); d != f.mxDirty {
		f.mx.Dirty.Add(p.Now(), d-f.mxDirty)
		f.mxDirty = d
	}
}

// frameAddr returns the arena address of frame i.
func (f *File) frameAddr(i int32) mem.Addr {
	return f.arena.Addr + mem.Addr(int64(i)*f.cfg.PageSize)
}

// covered reports whether the currently held lease mode permits the access.
func (f *File) covered(write bool) bool {
	return f.mode == leaseWrite || (!write && f.mode == leaseRead)
}

// pieceWalker yields maximal fragments that are contiguous in the file, in
// memory, and within one cache page, walking memSegs against fileAccs in
// order. It holds no heap state, keeping the cache-hit path allocation
// free.
type pieceWalker struct {
	segs     []ib.SGE
	accs     []pvfs.OffLen
	ai, si   int
	aoff     int64
	soff     int64
	pageSize int64
}

func (w *pieceWalker) next() (off int64, addr mem.Addr, n int64, ok bool) {
	for w.ai < len(w.accs) && w.aoff >= w.accs[w.ai].Len {
		w.ai++
		w.aoff = 0
	}
	for w.si < len(w.segs) && w.soff >= w.segs[w.si].Len {
		w.si++
		w.soff = 0
	}
	if w.ai >= len(w.accs) || w.si >= len(w.segs) {
		return 0, 0, 0, false
	}
	acc := w.accs[w.ai]
	seg := w.segs[w.si]
	off = acc.Off + w.aoff
	addr = seg.Addr + mem.Addr(w.soff)
	n = acc.Len - w.aoff
	if r := seg.Len - w.soff; r < n {
		n = r
	}
	if r := w.pageSize - off%w.pageSize; r < n {
		n = r
	}
	w.aoff += n
	w.soff += n
	return off, addr, n, true
}

// validate rejects malformed piece lists before any cache state changes.
func validate(segs []ib.SGE, accs []pvfs.OffLen) error {
	var ms, fs int64
	for _, s := range segs {
		if s.Len < 0 {
			return fmt.Errorf("pcache: negative segment length %d", s.Len)
		}
		ms += s.Len
	}
	for _, a := range accs {
		if a.Len < 0 || a.Off < 0 {
			return fmt.Errorf("pcache: bad file access {%d,%d}", a.Off, a.Len)
		}
		fs += a.Len
	}
	if ms != fs {
		return fmt.Errorf("pcache: memory total %d != file total %d", ms, fs)
	}
	return nil
}

// WriteList writes through the cache: pvfs_write_list semantics, any number
// of memory segments and file regions, one logical operation.
func (f *File) WriteList(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	return f.listOp(p, memSegs, fileAccs, true)
}

// ReadList reads through the cache; regions beyond end-of-file read as
// zeros, as in the uncached path.
func (f *File) ReadList(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	return f.listOp(p, memSegs, fileAccs, false)
}

// Write is the contiguous special case of WriteList.
func (f *File) Write(p *sim.Proc, addr mem.Addr, n, off int64) error {
	return f.WriteList(p, []ib.SGE{{Addr: addr, Len: n}}, []pvfs.OffLen{{Off: off, Len: n}})
}

// Read is the contiguous special case of ReadList.
func (f *File) Read(p *sim.Proc, addr mem.Addr, n, off int64) error {
	return f.ReadList(p, []ib.SGE{{Addr: addr, Len: n}}, []pvfs.OffLen{{Off: off, Len: n}})
}

func (f *File) listOp(p *sim.Proc, segs []ib.SGE, accs []pvfs.OffLen, write bool) error {
	if f.closed {
		return fmt.Errorf("pcache: %s: operation on closed cache", f.fh.Name())
	}
	if err := validate(segs, accs); err != nil {
		return err
	}
	total := ib.TotalLen(segs)
	if total == 0 {
		return nil
	}
	if done, err := f.tryFast(p, segs, accs, write, total); done || err != nil {
		return err
	}
	if err := f.lockWithLease(p, write); err != nil {
		return err
	}
	kind := "cache.read"
	if write {
		kind = "cache.write"
	}
	prevCtx := p.TraceCtx()
	sp := f.startSpan(p, kind, trace.StageOther, total)
	if sp.Recording() {
		sp.Annotate("segs=%d accs=%d", len(segs), len(accs))
		p.SetTraceCtx(uint64(sp.Ctx()))
	}
	err := f.runLocked(p, segs, accs, write, total)
	f.sampleMX(p)
	p.SetTraceCtx(prevCtx)
	sp.EndErr(p.Now(), err)
	f.mu.Release()
	return err
}

// startSpan opens a span on the current request, or mints a fresh request
// when the caller has none (direct facade use without an MPI-IO wrapper).
func (f *File) startSpan(p *sim.Proc, kind string, stage trace.Stage, bytes int64) trace.Span {
	tr := f.clu.Spans
	if tr == nil {
		return trace.Span{}
	}
	var sp trace.Span
	if ctx := trace.Ctx(p.TraceCtx()); ctx != 0 {
		sp = tr.Start(p.Now(), ctx, f.node, kind, stage)
	} else {
		sp = tr.NewRequest(p.Now(), f.node, kind)
	}
	sp.SetBytes(bytes)
	return sp
}

// lockWithLease acquires the cache mutex with a covering lease held,
// re-validating after every blocking gap: a recall can strip the lease
// while the process waits on the mutex or the manager round trip.
func (f *File) lockWithLease(p *sim.Proc, write bool) error {
	for {
		f.mu.Acquire(p)
		if f.covered(write) {
			return nil
		}
		f.mu.Release()
		if err := f.fh.AcquireLease(p, write); err != nil {
			return err
		}
		// No blocking between the grant returning and these assignments,
		// so the mode cannot be stale here; the loop re-checks under the
		// mutex anyway.
		if write {
			f.mode = leaseWrite
		} else if f.mode != leaseWrite {
			f.mode = leaseRead
		}
	}
}

// tryFast serves an operation whose pages are all resident without leaving
// the client: a map lookup and one memcpy charge per fragment. Returns
// done=false to route to the slow path (any miss, lease not held, dirty
// high water would trip, or write-through mode).
//
// This is the cache's steady-state hit path: zero allocations per
// operation. Blocking is its job — the mutex acquire and the memcpy-time
// sleep park the process by design.
//
//pvfslint:hotpath alloc,syscall
func (f *File) tryFast(p *sim.Proc, segs []ib.SGE, accs []pvfs.OffLen, write bool, total int64) (bool, error) {
	f.mu.Acquire(p)
	if !f.covered(write) || (write && f.cfg.WriteThrough) {
		f.mu.Release()
		return false, nil
	}
	// Pass 1: residency, user-buffer validity, and dirty-growth check.
	// newDirty may overcount a page touched by several fragments; the only
	// cost is an occasional early trip to the slow path's flusher.
	newDirty := 0
	w := pieceWalker{segs: segs, accs: accs, pageSize: f.cfg.PageSize}
	for {
		off, addr, n, ok := w.next()
		if !ok {
			break
		}
		fi, resident := f.table[off/f.cfg.PageSize]
		if !resident {
			f.mu.Release()
			return false, nil
		}
		if !f.cl.Space().Allocated(mem.Extent{Addr: addr, Len: n}) {
			f.mu.Release()
			return false, fmt.Errorf("pcache: user buffer %v unallocated", mem.Extent{Addr: addr, Len: n})
		}
		if write && !f.frames[fi].dirty {
			newDirty++
		}
	}
	if write && f.nDirty+newDirty >= f.cfg.DirtyHighWater {
		f.mu.Release()
		return false, nil
	}
	// Pass 2: copy fragments between user memory and frames.
	sp := f.clu.Spans.Start(p.Now(), trace.Ctx(p.TraceCtx()), f.node, "cache.hit", trace.StagePack)
	sp.SetBytes(total)
	space := f.cl.Space()
	w = pieceWalker{segs: segs, accs: accs, pageSize: f.cfg.PageSize}
	for {
		off, addr, n, ok := w.next()
		if !ok {
			break
		}
		po := off % f.cfg.PageSize
		fi := f.table[off/f.cfg.PageSize]
		fr := &f.frames[fi]
		fr.refbit = true
		pa := f.frameAddr(fi) + mem.Addr(po)
		var err error
		if write {
			err = space.Copy(pa, addr, n)
		} else {
			err = space.Copy(addr, pa, n)
		}
		if err != nil {
			// Pass 1 validated both ranges; reaching here is a model bug.
			sim.Failf("pcache: hit copy: %v", err)
		}
		if write {
			if !fr.dirty {
				fr.dirty = true
				fr.dLo, fr.dHi = po, po+n
				f.nDirty++
			} else {
				if po < fr.dLo {
					fr.dLo = po
				}
				if po+n > fr.dHi {
					fr.dHi = po + n
				}
			}
		}
	}
	f.acct.CacheHits++
	f.mx.Hits.Add(p.Now(), 1)
	f.sampleMX(p)
	p.Sleep(f.ibp.MemcpyTime(total))
	sp.End(p.Now())
	f.mu.Release()
	return true, nil
}

// runLocked is the slow path: fills, prefetch, eviction, write-through,
// and oversized-operation bypass. Called with the mutex held and a
// covering lease.
func (f *File) runLocked(p *sim.Proc, segs []ib.SGE, accs []pvfs.OffLen, write bool, total int64) error {
	ps := f.cfg.PageSize
	// Operations larger than half the arena bypass the cache: caching them
	// would evict everything for no reuse. Flush first so the servers hold
	// every dirty byte, and for writes drop newly-stale resident pages.
	if total > f.arena.Len/2 {
		if err := f.flushLocked(p); err != nil {
			return err
		}
		if write {
			f.dropOverlapping(accs)
			return f.fh.WriteList(p, segs, accs, pvfs.OpOptions{})
		}
		return f.fh.ReadList(p, segs, accs, pvfs.OpOptions{})
	}
	if write && f.cfg.WriteThrough {
		return f.writeThroughLocked(p, segs, accs, total)
	}
	// Collect the operation's absent pages, deduplicated and sorted.
	f.pnos = f.pnos[:0]
	w := pieceWalker{segs: segs, accs: accs, pageSize: ps}
	for {
		off, _, _, ok := w.next()
		if !ok {
			break
		}
		if _, resident := f.table[off/ps]; !resident {
			f.pnos = append(f.pnos, off/ps)
		}
	}
	sort.SliceStable(f.pnos, func(i, j int) bool { return f.pnos[i] < f.pnos[j] })
	f.pnos = dedupSorted(f.pnos)
	misses := len(f.pnos)
	// Read-ahead: feed the detector in access order, then extend the fetch
	// list along a confirmed stride — but only into frames that are free
	// right now; prefetch never evicts.
	ra := 0
	if !write && misses > 0 {
		for _, pno := range f.pnos {
			f.det.Observe(pno)
		}
		if stride, ok := f.det.Stride(); ok {
			free := len(f.frames) - len(f.table) - misses
			next := f.det.Last() + stride
			for i := 0; i < f.cfg.ReadAhead && free > 0; i++ {
				if next < 0 {
					break
				}
				if _, resident := f.table[next]; !resident && !containsPno(f.pnos, next) {
					f.pnos = append(f.pnos, next)
					ra++
					free--
				}
				next += stride
			}
		}
	}
	if len(f.pnos) > 0 {
		if err := f.fetchLocked(p, misses, ra); err != nil {
			return err
		}
	}
	// All pages resident: copy fragments, dirtying hulls on writes.
	space := f.cl.Space()
	w = pieceWalker{segs: segs, accs: accs, pageSize: ps}
	for {
		off, addr, n, ok := w.next()
		if !ok {
			break
		}
		po := off % ps
		fi, resident := f.table[off/ps]
		if !resident {
			sim.Failf("pcache: page %d absent after fetch", off/ps)
		}
		fr := &f.frames[fi]
		fr.refbit = true
		pa := f.frameAddr(fi) + mem.Addr(po)
		var err error
		if write {
			err = space.Copy(pa, addr, n)
		} else {
			err = space.Copy(addr, pa, n)
		}
		if err != nil {
			return fmt.Errorf("pcache: copy: %w", err)
		}
		if write {
			if !fr.dirty {
				fr.dirty = true
				fr.dLo, fr.dHi = po, po+n
				f.nDirty++
			} else {
				if po < fr.dLo {
					fr.dLo = po
				}
				if po+n > fr.dHi {
					fr.dHi = po + n
				}
			}
		}
	}
	p.Sleep(f.ibp.MemcpyTime(total))
	if write && f.nDirty >= f.cfg.DirtyHighWater {
		return f.flushLocked(p)
	}
	return nil
}

// writeThroughLocked is the ablation path: refresh resident overlap so the
// read cache stays coherent, then push the whole operation synchronously.
func (f *File) writeThroughLocked(p *sim.Proc, segs []ib.SGE, accs []pvfs.OffLen, total int64) error {
	ps := f.cfg.PageSize
	space := f.cl.Space()
	var overlap int64
	w := pieceWalker{segs: segs, accs: accs, pageSize: ps}
	for {
		off, addr, n, ok := w.next()
		if !ok {
			break
		}
		fi, resident := f.table[off/ps]
		if !resident {
			continue
		}
		fr := &f.frames[fi]
		fr.refbit = true
		pa := f.frameAddr(fi) + mem.Addr(off%ps)
		if err := space.Copy(pa, addr, n); err != nil {
			return fmt.Errorf("pcache: write-through refresh: %w", err)
		}
		overlap += n
	}
	if overlap > 0 {
		p.Sleep(f.ibp.MemcpyTime(overlap))
	}
	return f.fh.WriteList(p, segs, accs, pvfs.OpOptions{})
}

// fetchLocked brings the pages in f.pnos (sorted; first `misses` are
// demand misses, last `ra` are prefetch) into frames with one list read.
func (f *File) fetchLocked(p *sim.Proc, misses, ra int) error {
	ps := f.cfg.PageSize
	sort.SliceStable(f.pnos, func(i, j int) bool { return f.pnos[i] < f.pnos[j] })
	// Work from a local copy: takeFrameLocked may flush, and flushLocked
	// reuses the shared scratch slices (f.pnos, f.fsegs, f.faccs).
	pnos := append([]int64(nil), f.pnos...)
	frames := make([]int32, len(pnos))
	for i := range pnos {
		fi, err := f.takeFrameLocked(p)
		if err != nil {
			return err
		}
		frames[i] = fi
	}
	f.fsegs = f.fsegs[:0]
	f.faccs = f.faccs[:0]
	for i, pno := range pnos {
		f.fsegs = append(f.fsegs, ib.SGE{Addr: f.frameAddr(frames[i]), Len: ps})
		f.faccs = append(f.faccs, pvfs.OffLen{Off: pno * ps, Len: ps})
	}
	prevCtx := p.TraceCtx()
	sp := f.startSpan(p, "cache.fill", trace.StageOther, int64(len(pnos))*ps)
	if sp.Recording() {
		sp.Annotate("miss=%d ra=%d", misses, ra)
		p.SetTraceCtx(uint64(sp.Ctx()))
	}
	err := f.fh.ReadList(p, f.fsegs, f.faccs, f.arenaOpts())
	p.SetTraceCtx(prevCtx)
	sp.EndErr(p.Now(), err)
	if err != nil {
		return fmt.Errorf("pcache: fill: %w", err)
	}
	for i, pno := range pnos {
		fr := &f.frames[frames[i]]
		fr.pno = pno
		fr.used = true
		fr.refbit = true
		fr.dirty = false
		f.table[pno] = frames[i]
	}
	f.acct.CacheMisses += int64(misses)
	f.acct.CacheReadAheads += int64(ra)
	f.mx.Misses.Add(p.Now(), int64(misses))
	f.mx.ReadAheads.Add(p.Now(), int64(ra))
	return nil
}

// arenaOpts registers the whole arena as one declared allocation through
// the pin-down cache: one MR covers every frame, with a real lifetime.
func (f *File) arenaOpts() pvfs.OpOptions {
	return pvfs.OpOptions{Reg: pvfs.RegDeclared, Allocation: f.arena}
}

// takeFrameLocked returns a free frame index, evicting (clock,
// second-chance) a clean page or — when every frame is dirty — flushing
// first. Never returns a frame that is still in the page table.
func (f *File) takeFrameLocked(p *sim.Proc) (int32, error) {
	for pass := 0; pass < 2; pass++ {
		// Sweep at most two full turns: the first turn clears refbits, the
		// second must find a victim among clean frames.
		for sweep := 0; sweep < 2*len(f.frames); sweep++ {
			i := f.clockHand
			f.clockHand = (f.clockHand + 1) % len(f.frames)
			fr := &f.frames[i]
			if !fr.used {
				return int32(i), nil
			}
			if fr.dirty {
				continue
			}
			if fr.refbit {
				fr.refbit = false
				continue
			}
			delete(f.table, fr.pno)
			fr.used = false
			return int32(i), nil
		}
		// Every frame dirty (or pinned by refbits that never cleared —
		// impossible, the first turn clears them): flush and retry.
		if err := f.flushLocked(p); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("pcache: no evictable frame after flush")
}

// flushLocked drains every dirty page as one coalesced list write, sorted
// by page number. On error the pages stay dirty for a later retry (the
// client library has already retried transient faults internally).
func (f *File) flushLocked(p *sim.Proc) error {
	if f.nDirty == 0 {
		return nil
	}
	ps := f.cfg.PageSize
	f.pnos = f.pnos[:0] // frame indices, sorted by page number below
	for i := range f.frames {
		if f.frames[i].used && f.frames[i].dirty {
			f.pnos = append(f.pnos, int64(i))
		}
	}
	sort.SliceStable(f.pnos, func(i, j int) bool {
		return f.frames[f.pnos[i]].pno < f.frames[f.pnos[j]].pno
	})
	f.fsegs = f.fsegs[:0]
	f.faccs = f.faccs[:0]
	var nbytes int64
	for _, i := range f.pnos {
		fr := &f.frames[i]
		n := fr.dHi - fr.dLo
		f.fsegs = append(f.fsegs, ib.SGE{Addr: f.frameAddr(int32(i)) + mem.Addr(fr.dLo), Len: n})
		f.faccs = append(f.faccs, pvfs.OffLen{Off: fr.pno*ps + fr.dLo, Len: n})
		nbytes += n
	}
	prevCtx := p.TraceCtx()
	sp := f.startSpan(p, "cache.flush", trace.StageOther, nbytes)
	if sp.Recording() {
		sp.Annotate("pages=%d", len(f.pnos))
		p.SetTraceCtx(uint64(sp.Ctx()))
	}
	err := f.fh.WriteList(p, f.fsegs, f.faccs, f.arenaOpts())
	p.SetTraceCtx(prevCtx)
	sp.EndErr(p.Now(), err)
	if err != nil {
		return fmt.Errorf("pcache: flush: %w", err)
	}
	if len(f.pnos) > 1 {
		f.acct.CoalescedFlushes++
	}
	f.acct.WriteBehindBytes += nbytes
	f.mx.WBBytes.Add(p.Now(), nbytes)
	for _, i := range f.pnos {
		f.frames[i].dirty = false
	}
	f.nDirty = 0
	f.sampleMX(p)
	return nil
}

// dropOverlapping invalidates resident pages that a bypassing direct write
// is about to make stale. Dirty overlap must already have been flushed.
func (f *File) dropOverlapping(accs []pvfs.OffLen) {
	ps := f.cfg.PageSize
	for _, a := range accs {
		if a.Len <= 0 {
			continue
		}
		for pno := a.Off / ps; pno <= (a.Off+a.Len-1)/ps; pno++ {
			if fi, resident := f.table[pno]; resident {
				f.frames[fi].used = false
				delete(f.table, pno)
			}
		}
	}
}

// invalidateLocked discards every resident page. Dirty pages must have
// been flushed first.
func (f *File) invalidateLocked() {
	for i := range f.frames {
		if f.frames[i].used {
			delete(f.table, f.frames[i].pno)
			f.frames[i] = frame{}
		}
	}
	f.nDirty = 0
	f.det.Reset()
}

// onRecall is the lease-recall callback, run on the client's recall
// daemon: flush, invalidate, drop the lease, and let the daemon ack. A
// duplicate delivery (resent recall after a lost ack) finds nothing dirty
// and nothing resident — a no-op.
func (f *File) onRecall(p *sim.Proc) {
	f.mu.Acquire(p)
	sp := f.startSpan(p, "cache.recall", trace.StageOther, 0)
	f.mx.Recalls.Add(p.Now(), 1)
	err := f.flushLocked(p)
	sp.EndErr(p.Now(), err)
	if err != nil {
		// The flush already rode the full fault-recovery ladder; an error
		// here means dirty bytes cannot reach the servers at all, and
		// acking the recall would hand another client a lease over lost
		// data. There is no correct way to continue.
		sim.Failf("pcache: %s: recall flush failed: %v", f.fh.Name(), err)
	}
	f.invalidateLocked()
	f.sampleMX(p)
	f.mode = leaseNone
	f.mu.Release()
}

// Flush drains all dirty pages without invalidating them.
func (f *File) Flush(p *sim.Proc) error {
	f.mu.Acquire(p)
	err := f.flushLocked(p)
	f.mu.Release()
	return err
}

// Sync flushes dirty pages and then fsyncs the file on every server.
func (f *File) Sync(p *sim.Proc) error {
	if err := f.Flush(p); err != nil {
		return err
	}
	f.fh.Sync(p)
	return nil
}

// Stat flushes write-behind state and returns the file's logical size, so
// cached and uncached Stat agree.
func (f *File) Stat(p *sim.Proc) (int64, error) {
	if err := f.Flush(p); err != nil {
		return 0, err
	}
	return f.fh.Stat(p), nil
}

// Invalidate flushes and then discards every cached page (the lease is
// kept). Mainly for tests and the pvfsctl `cache flush` command.
func (f *File) Invalidate(p *sim.Proc) error {
	f.mu.Acquire(p)
	err := f.flushLocked(p)
	if err == nil {
		f.invalidateLocked()
	}
	f.sampleMX(p)
	f.mu.Release()
	return err
}

// Close flushes, invalidates, releases the lease, and detaches the recall
// callback. The arena stays allocated: its registration may live on in the
// pin-down cache, and simulated process memory is reclaimed with the
// address space.
func (f *File) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.mu.Acquire(p)
	err := f.flushLocked(p)
	if err == nil {
		f.invalidateLocked()
		f.closed = true
	}
	f.sampleMX(p)
	f.mu.Release()
	if err != nil {
		return err
	}
	f.unregister()
	if f.mode != leaseNone {
		f.mode = leaseNone
		if err := f.fh.ReleaseLease(p); err != nil {
			return err
		}
	}
	return nil
}

// Resident reports the number of cached pages and how many are dirty.
func (f *File) Resident() (pages, dirty int) { return len(f.table), f.nDirty }

// dedupSorted compacts equal neighbors in place.
func dedupSorted(s []int64) []int64 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func containsPno(s []int64, v int64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
