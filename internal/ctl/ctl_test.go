package ctl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a script and returns the output.
func run(t *testing.T, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := New(&out).Run(strings.NewReader(script)); err != nil {
		t.Fatalf("script failed: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

// runErr executes a script expecting failure.
func runErr(t *testing.T, script string) error {
	t.Helper()
	var out bytes.Buffer
	err := New(&out).Run(strings.NewReader(script))
	if err == nil {
		t.Fatalf("script succeeded, expected error:\n%s", out.String())
	}
	return err
}

func TestScriptWriteReadVerify(t *testing.T) {
	out := run(t, `
# basic round trip with verification
cluster servers=4 clients=2
open data
writelist data count=64 size=512 fstride=2048 seed=7
readlist data count=64 size=512 fstride=2048 verify=7 client=1
stat data
stats
time
`)
	for _, want := range []string{
		"cluster: 4 servers, 2 clients",
		"writelist data: 64 x 512B",
		"readlist data: 64 x 512B",
		"data: ", // stat output
		"req#=",
		"t=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptVerifyFailure(t *testing.T) {
	err := runErr(t, `
cluster servers=2 clients=1
write data len=1024 seed=3
read data len=1024 verify=4
`)
	if !strings.Contains(err.Error(), "verification failed") {
		t.Errorf("err = %v, want verification failure", err)
	}
}

func TestScriptContigAndRemove(t *testing.T) {
	out := run(t, `
cluster servers=2 clients=1 stripe=16384
open f stripe=4096
write f len=65536 off=0 seed=1
sync f
stat f
remove f
open f
stat f
`)
	if !strings.Contains(out, "opened f (stripe 4096)") {
		t.Errorf("per-file stripe missing:\n%s", out)
	}
	if !strings.Contains(out, "f: 65536 bytes") {
		t.Errorf("stat before remove wrong:\n%s", out)
	}
	if !strings.Contains(out, "f: 0 bytes") {
		t.Errorf("stat after remove should be 0:\n%s", out)
	}
}

func TestScriptTrace(t *testing.T) {
	out := run(t, `
cluster servers=2 clients=1
trace on cap=128
writelist data count=32 size=256 fstride=1024
trace dump last=3
`)
	if !strings.Contains(out, "write-req") && !strings.Contains(out, "sieve-write") {
		t.Errorf("trace dump missing events:\n%s", out)
	}
}

func TestScriptStreamWire(t *testing.T) {
	out := run(t, `
cluster servers=2 clients=1 wire=stream
write data len=262144 seed=9
read data len=262144 verify=9
`)
	if !strings.Contains(out, "wire stream") {
		t.Errorf("stream wire not reported:\n%s", out)
	}
}

func TestScriptMethodsAndSieve(t *testing.T) {
	run(t, `
cluster servers=2 clients=1
writelist data count=16 size=4096 fstride=8192 method=gather sieve=never seed=2
readlist data count=16 size=4096 fstride=8192 method=pack sieve=always verify=2
`)
}

func TestScriptErrors(t *testing.T) {
	cases := []string{
		"open f",                                     // no cluster
		"cluster servers=2\ncluster",                 // duplicate cluster
		"cluster servers=2\nbogus",                   // unknown command
		"cluster servers=2\nstat",                    // missing file name
		"cluster servers=2\nwrite f len=abc",         // bad number
		"cluster servers=2\nwrite f client=9",        // client range
		"cluster servers=2\ntrace dump",              // trace before on
		"cluster servers=2\nwritelist f method=warp", // bad method
	}
	for _, script := range cases {
		if err := runErr(t, script); err == nil {
			t.Errorf("script %q should fail", script)
		}
	}
}

func TestScriptEchoAndComments(t *testing.T) {
	out := run(t, `
# comment
echo hello world

cluster servers=1 clients=1
`)
	if !strings.Contains(out, "hello world") {
		t.Errorf("echo missing:\n%s", out)
	}
}

func TestScriptFaultPlane(t *testing.T) {
	out := run(t, `
cluster servers=4 clients=2
fault list
fault inject wr=0.05 cut=4:1:200:400 crash=2:300:600 seed=7
fault list
open data
writelist data count=64 size=4096 fstride=8192 seed=9
sync data
readlist data count=64 size=4096 fstride=8192 verify=9
fault list
stats
fault clear
fault list
`)
	for _, want := range []string{
		"no faults attached",
		"faults attached: wr=0.05, cut 4<->1",
		"crash io2",
		"seed=7",
		"injected: wr-err=",
		"faults cleared",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptFaultErrors(t *testing.T) {
	// The manager lives on server 0: crashing it must be rejected, and an
	// inject line that sets nothing is a script bug worth failing loudly.
	for _, script := range []string{
		"cluster servers=2 clients=1\nfault inject crash=0:10:10",
		"cluster servers=2 clients=1\nfault inject",
		"cluster servers=2 clients=1\nfault inject wr=1.5",
		"fault list",
	} {
		if err := runErr(t, script); err == nil {
			t.Errorf("script %q should have failed", script)
		}
	}
}

func TestScriptCachePlane(t *testing.T) {
	out := run(t, `
cluster servers=4 clients=2
cache on pages=16 pagesize=8192 highwater=8 readahead=4
writelist data count=64 size=512 fstride=2048 seed=7
readlist data count=64 size=512 fstride=2048 verify=7
cache stats
cache flush
sync data
readlist data count=64 size=512 fstride=2048 verify=7 client=1
stat data
cache off
readlist data count=64 size=512 fstride=2048 verify=7
`)
	for _, want := range []string{
		"caching on: 16 x 8192B pages, highwater 8, readahead 4, writethrough false",
		"cache: hit#=",
		"lease: req#=",
		"data@cn0:",
		"caches flushed",
		"caching off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptCacheWriteThrough(t *testing.T) {
	out := run(t, `
cluster servers=2 clients=1
cache on pages=8 pagesize=4096 wt=1
write data len=4096 seed=3
read data len=4096 verify=3
cache off
read data len=4096 verify=3
`)
	if !strings.Contains(out, "writethrough true") {
		t.Errorf("output missing write-through banner:\n%s", out)
	}
}

func TestScriptMetricsPlane(t *testing.T) {
	out := run(t, `
cluster servers=2 clients=1
metrics on interval=100 depth=1024
writelist data count=64 size=4096 fstride=8192 seed=5
sync data
metrics rate last=4
metrics rate name=net.tx.bytes
metrics dump format=prom
metrics top
metrics off
metrics off
`)
	for _, want := range []string{
		"metrics on: interval 100us, depth 1024",
		"net.tx.bytes",
		"disk.busy",
		"pvfs_net_tx_bytes_total",
		"pvfs_disk_queue{node=", // gauge exposition with node labels
		"engine: shards=1",
		"shard 0: events=",
		"metrics off",
		"metrics already off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptMetricsDumpFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mx.json")
	out := run(t, `
cluster servers=2 clients=1
metrics on
writelist data count=16 size=512 fstride=2048
metrics dump file=`+path+`
`)
	if !strings.Contains(out, "dumped ") || !strings.Contains(out, path) {
		t.Errorf("dump-to-file banner missing:\n%s", out)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"interval_ns"`, `"series"`, `"net.tx.bytes"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("dump file missing %q:\n%s", want, b)
		}
	}
}

func TestScriptMetricsErrors(t *testing.T) {
	for _, tc := range []struct{ script, want string }{
		{"metrics on", "no cluster"},
		{"cluster servers=2 clients=1\nmetrics dump", "not enabled"},
		{"cluster servers=2 clients=1\nmetrics rate", "not enabled"},
		{"cluster servers=2 clients=1\nmetrics on\nmetrics dump format=xml", "unknown format"},
		{"cluster servers=2 clients=1\nmetrics on interval=0", "must be positive"},
		{"cluster servers=2 clients=1\nmetrics on\nmetrics rate name=nope", "no series named"},
		{"cluster servers=2 clients=1\nmetrics purge", "metrics wants"},
	} {
		err := runErr(t, tc.script)
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("script %q: err = %v, want %q", tc.script, err, tc.want)
		}
	}
}

func TestScriptCacheErrors(t *testing.T) {
	for _, tc := range []struct{ script, want string }{
		{"cache stats", "no cluster"},
		{"cluster servers=2 clients=1\ncache purge", "cache wants"},
		{"cluster servers=2 clients=1\ncache on pages=x", "bad pages"},
	} {
		err := runErr(t, tc.script)
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("script %q: err = %v, want %q", tc.script, err, tc.want)
		}
	}
}
