// Package ctl interprets a small line-oriented command language against a
// simulated PVFS cluster, for interactive exploration and scripted
// experiments without writing Go:
//
//	cluster servers=4 clients=2
//	open data stripe=16384
//	writelist data count=64 size=512 fstride=2048 seed=7
//	readlist data count=64 size=512 fstride=2048 verify=7
//	stat data
//	stats
//	time
//
// The fault plane is scripted the same way (rates are probabilities, times
// are microseconds of virtual time relative to the inject command; fabric
// node ids are servers 0..S-1 then clients S..S+C-1):
//
//	fault inject wr=0.02 reg=0.1 seed=7
//	fault inject cut=4:0:200:400 crash=2:300:600 spike=4:1:0:50:30
//	fault list
//	fault clear
//
// The span plane records request-scoped traces on the virtual clock:
//
//	trace spans                    enable span tracing (before the workload)
//	trace profile                  print the per-stage breakdown so far
//	trace export file=out.json     write a Perfetto (Chrome trace-event) file
//	trace off                      detach the span tracer
//
// The metrics plane samples every layer on the virtual clock into
// per-interval series (see internal/metrics):
//
//	metrics on interval=100 depth=1024   attach a registry (interval in us)
//	metrics rate name=net.tx.bytes       print trailing per-interval values
//	metrics dump format=prom             export (json|prom), file=PATH optional
//	metrics top                          engine execution telemetry (shard-dependent)
//	metrics off                          detach, restoring the no-op sinks
//
// The client-side page cache (write-behind, strided read-ahead, lease
// coherence) wraps subsequent file commands once enabled:
//
//	cache on pages=64 pagesize=65536 highwater=32 readahead=4 wt=0
//	cache stats                    print cache/lease counters and residency
//	cache flush                    drain write-behind state everywhere
//	cache off                      flush, release leases, detach
//
// Commands run sequentially, each as one application process in virtual
// time. Lines starting with '#' and blank lines are ignored.
package ctl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/metrics"
	"pvfsib/internal/pcache"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Interp is one interpreter session.
type Interp struct {
	out     io.Writer
	cluster *pvfs.Cluster
	rec     *trace.Recorder
	mx      *metrics.Registry // attached metrics plane (nil = off)
	files   map[string]map[int]*pvfs.FileHandle // name -> client -> handle
	bufs    map[string]mem.Addr                 // named buffers (reserved)
	plan    *fault.Plan                         // active fault plan (nil = none)
	line    int

	cacheCfg *pcache.Config                  // nil = caching off
	caches   map[string]map[int]*pcache.File // name -> client -> cache
}

// New creates an interpreter writing results to out.
func New(out io.Writer) *Interp {
	return &Interp{
		out:    out,
		files:  make(map[string]map[int]*pvfs.FileHandle),
		bufs:   map[string]mem.Addr{},
		caches: make(map[string]map[int]*pcache.File),
	}
}

// Run executes every command from src, stopping at the first error.
func (in *Interp) Run(src io.Reader) error {
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		in.line++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := in.exec(line); err != nil {
			return fmt.Errorf("line %d (%q): %w", in.line, line, err)
		}
	}
	return sc.Err()
}

// args holds a command's positional name and key=value options.
type args struct {
	name string
	kv   map[string]string
}

func parseArgs(fields []string) args {
	a := args{kv: map[string]string{}}
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			a.kv[k] = v
		} else if a.name == "" {
			a.name = f
		}
	}
	return a
}

func (a args) str(key, def string) string {
	if v, ok := a.kv[key]; ok {
		return v
	}
	return def
}

func (a args) num(key string, def int64) (int64, error) {
	v, ok := a.kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", key, v)
	}
	return n, nil
}

func (a args) float(key string, def float64) (float64, error) {
	v, ok := a.kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", key, v)
	}
	return f, nil
}

func (in *Interp) exec(line string) error {
	fields := strings.Fields(line)
	cmd, rest := fields[0], parseArgs(fields[1:])
	switch cmd {
	case "cluster":
		return in.cmdCluster(rest)
	case "open":
		return in.cmdOpen(rest)
	case "write", "read":
		return in.cmdContig(cmd, rest)
	case "writelist", "readlist":
		return in.cmdList(cmd, rest)
	case "sync":
		return in.withFile(rest, func(p *sim.Proc, fh *pvfs.FileHandle) error {
			if cf := in.cached(fh); cf != nil {
				return cf.Sync(p)
			}
			fh.Sync(p)
			return nil
		})
	case "stat":
		return in.withFile(rest, func(p *sim.Proc, fh *pvfs.FileHandle) error {
			if cf := in.cached(fh); cf != nil {
				size, err := cf.Stat(p)
				if err != nil {
					return err
				}
				fmt.Fprintf(in.out, "%s: %d bytes\n", fh.Name(), size)
				return nil
			}
			fmt.Fprintf(in.out, "%s: %d bytes\n", fh.Name(), fh.Stat(p))
			return nil
		})
	case "remove":
		return in.withClient(rest, func(p *sim.Proc, cl *pvfs.Client) error {
			cl.Remove(p, rest.name)
			delete(in.files, rest.name)
			return nil
		})
	case "drop":
		return in.withClient(rest, func(p *sim.Proc, cl *pvfs.Client) error {
			for _, s := range in.cluster.Servers {
				s.FS().DropCaches(p)
			}
			return nil
		})
	case "stats":
		if in.cluster == nil {
			return fmt.Errorf("no cluster")
		}
		fmt.Fprintf(in.out, "%v\n", in.cluster.Snapshot())
		return nil
	case "time":
		if in.cluster == nil {
			return fmt.Errorf("no cluster")
		}
		fmt.Fprintf(in.out, "t=%v\n", in.cluster.Eng.Now())
		return nil
	case "fault":
		return in.cmdFault(rest)
	case "trace":
		return in.cmdTrace(rest)
	case "cache":
		return in.cmdCache(rest)
	case "metrics":
		return in.cmdMetrics(rest)
	case "echo":
		fmt.Fprintln(in.out, strings.TrimSpace(strings.TrimPrefix(line, "echo")))
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func (in *Interp) cmdCluster(a args) error {
	if in.cluster != nil {
		return fmt.Errorf("cluster already created")
	}
	servers, err := a.num("servers", 4)
	if err != nil {
		return err
	}
	clients, err := a.num("clients", 1)
	if err != nil {
		return err
	}
	stripe, err := a.num("stripe", 0)
	if err != nil {
		return err
	}
	cfg := pvfs.DefaultConfig()
	if a.str("wire", "") == "stream" {
		cfg = pvfs.ConventionalConfig()
	}
	if stripe > 0 {
		cfg.StripeSize = stripe
	}
	in.cluster = pvfs.NewCluster(sim.NewEngine(), cfg, int(servers), int(clients))
	fmt.Fprintf(in.out, "cluster: %d servers, %d clients, stripe %d, wire %v\n",
		servers, clients, cfg.StripeSize, cfg.Wire)
	return nil
}

// app runs fn as one application process and drives the cluster.
func (in *Interp) app(fn func(p *sim.Proc) error) error {
	if in.cluster == nil {
		return fmt.Errorf("no cluster (run 'cluster' first)")
	}
	var ferr error
	in.cluster.Eng.Go("ctl", func(p *sim.Proc) { ferr = fn(p) })
	if err := in.cluster.Run(); err != nil {
		return err
	}
	return ferr
}

func (in *Interp) client(a args) (*pvfs.Client, error) {
	idx, err := a.num("client", 0)
	if err != nil {
		return nil, err
	}
	if in.cluster == nil {
		return nil, fmt.Errorf("no cluster")
	}
	if idx < 0 || int(idx) >= len(in.cluster.Clients) {
		return nil, fmt.Errorf("client %d out of range", idx)
	}
	return in.cluster.Clients[idx], nil
}

func (in *Interp) withClient(a args, fn func(p *sim.Proc, cl *pvfs.Client) error) error {
	cl, err := in.client(a)
	if err != nil {
		return err
	}
	return in.app(func(p *sim.Proc) error { return fn(p, cl) })
}

func (in *Interp) withFile(a args, fn func(p *sim.Proc, fh *pvfs.FileHandle) error) error {
	if a.name == "" {
		return fmt.Errorf("missing file name")
	}
	cl, err := in.client(a)
	if err != nil {
		return err
	}
	return in.app(func(p *sim.Proc) error {
		fh, err := in.handle(p, cl, a)
		if err != nil {
			return err
		}
		return fn(p, fh)
	})
}

// handle opens (and caches) the named file for the client.
func (in *Interp) handle(p *sim.Proc, cl *pvfs.Client, a args) (*pvfs.FileHandle, error) {
	idx := 0
	for i, c := range in.cluster.Clients {
		if c == cl {
			idx = i
		}
	}
	byClient, ok := in.files[a.name]
	if !ok {
		byClient = map[int]*pvfs.FileHandle{}
		in.files[a.name] = byClient
	}
	if fh, ok := byClient[idx]; ok {
		return fh, nil
	}
	stripe, err := a.num("stripe", 0)
	if err != nil {
		return nil, err
	}
	fh := cl.OpenStriped(p, a.name, stripe)
	byClient[idx] = fh
	return fh, nil
}

// cached returns (creating on first use) the page cache wrapping fh when
// caching is on, nil otherwise. Caches are per (file, client), like real
// client-side buffer caches.
func (in *Interp) cached(fh *pvfs.FileHandle) *pcache.File {
	if in.cacheCfg == nil {
		return nil
	}
	idx := 0
	for i, c := range in.cluster.Clients {
		if c == fh.Client() {
			idx = i
		}
	}
	byClient, ok := in.caches[fh.Name()]
	if !ok {
		byClient = map[int]*pcache.File{}
		in.caches[fh.Name()] = byClient
	}
	if f, ok := byClient[idx]; ok {
		return f
	}
	f := pcache.New(fh, *in.cacheCfg)
	byClient[idx] = f
	return f
}

// forEachCache visits every live cache in deterministic (name, client)
// order.
func (in *Interp) forEachCache(fn func(name string, idx int, f *pcache.File) error) error {
	names := make([]string, 0, len(in.caches))
	for name := range in.caches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		byClient := in.caches[name]
		idxs := make([]int, 0, len(byClient))
		for idx := range byClient {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if err := fn(name, idx, byClient[idx]); err != nil {
				return err
			}
		}
	}
	return nil
}

// cmdCache controls the client-side page cache plane: 'on' arms a
// configuration that wraps every subsequent file command, 'stats' prints
// the cache and lease counters plus per-cache residency, 'flush' drains
// write-behind state, 'off' flushes, releases leases, and detaches.
func (in *Interp) cmdCache(a args) error {
	if in.cluster == nil {
		return fmt.Errorf("no cluster")
	}
	switch a.name {
	case "on":
		cfg := pcache.DefaultConfig()
		var err error
		if cfg.PageSize, err = a.num("pagesize", cfg.PageSize); err != nil {
			return err
		}
		pages, err := a.num("pages", int64(cfg.Pages))
		if err != nil {
			return err
		}
		cfg.Pages = int(pages)
		hw, err := a.num("highwater", int64(cfg.DirtyHighWater))
		if err != nil {
			return err
		}
		cfg.DirtyHighWater = int(hw)
		ra, err := a.num("readahead", int64(cfg.ReadAhead))
		if err != nil {
			return err
		}
		if ra <= 0 {
			cfg.NoReadAhead = true
		} else {
			cfg.ReadAhead = int(ra)
		}
		wt, err := a.num("wt", 0)
		if err != nil {
			return err
		}
		cfg.WriteThrough = wt != 0
		in.cacheCfg = &cfg
		fmt.Fprintf(in.out, "caching on: %d x %dB pages, highwater %d, readahead %d, writethrough %v\n",
			cfg.Pages, cfg.PageSize, cfg.DirtyHighWater, cfg.ReadAhead, cfg.WriteThrough)
		return nil
	case "stats":
		s := in.cluster.Snapshot()
		fmt.Fprintf(in.out, "cache: hit#=%d miss#=%d ra#=%d wb=%dB coalesce#=%d\n",
			s.CacheHits, s.CacheMisses, s.CacheReadAheads, s.WriteBehindBytes, s.CoalescedFlushes)
		fmt.Fprintf(in.out, "lease: req#=%d grant#=%d recall#=%d\n",
			s.LeaseReqs, s.LeaseGrants, s.LeaseRecalls)
		return in.forEachCache(func(name string, idx int, f *pcache.File) error {
			pages, dirty := f.Resident()
			fmt.Fprintf(in.out, "%s@cn%d: %d pages resident, %d dirty\n", name, idx, pages, dirty)
			return nil
		})
	case "flush":
		err := in.app(func(p *sim.Proc) error {
			return in.forEachCache(func(_ string, _ int, f *pcache.File) error {
				return f.Flush(p)
			})
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(in.out, "caches flushed")
		return nil
	case "off":
		if in.cacheCfg == nil && len(in.caches) == 0 {
			fmt.Fprintln(in.out, "caching already off")
			return nil
		}
		var err error
		if len(in.caches) > 0 {
			err = in.app(func(p *sim.Proc) error {
				return in.forEachCache(func(_ string, _ int, f *pcache.File) error {
					return f.Close(p)
				})
			})
		}
		in.caches = make(map[string]map[int]*pcache.File)
		in.cacheCfg = nil
		if err != nil {
			return err
		}
		fmt.Fprintln(in.out, "caching off")
		return nil
	default:
		return fmt.Errorf("cache wants 'on', 'stats', 'flush', or 'off'")
	}
}

func (in *Interp) cmdOpen(a args) error {
	return in.withFile(a, func(p *sim.Proc, fh *pvfs.FileHandle) error {
		fmt.Fprintf(in.out, "opened %s (stripe %d)\n", fh.Name(), fh.StripeSize())
		return nil
	})
}

// opOptions parses method/sieve options.
func opOptions(a args) (pvfs.OpOptions, error) {
	var opts pvfs.OpOptions
	switch m := a.str("method", "hybrid"); m {
	case "hybrid":
	case "pack":
		opts.Transfer = pvfs.ForcePack
	case "gather":
		opts.Transfer = pvfs.ForceGather
	default:
		return opts, fmt.Errorf("unknown method %q", m)
	}
	switch s := a.str("sieve", "auto"); s {
	case "auto":
		opts.Sieve = sieve.Auto
	case "always":
		opts.Sieve = sieve.Always
	case "never":
		opts.Sieve = sieve.Never
	default:
		return opts, fmt.Errorf("unknown sieve mode %q", s)
	}
	return opts, nil
}

// pattern fills n bytes derived from seed.
func pattern(n int64, seed int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed + int64(i)*7)
	}
	return b
}

func (in *Interp) cmdContig(cmd string, a args) error {
	length, err := a.num("len", 4096)
	if err != nil {
		return err
	}
	off, err := a.num("off", 0)
	if err != nil {
		return err
	}
	seed, err := a.num("seed", 0)
	if err != nil {
		return err
	}
	opts, err := opOptions(a)
	if err != nil {
		return err
	}
	verify, hasVerify := a.kv["verify"]
	return in.withFile(a, func(p *sim.Proc, fh *pvfs.FileHandle) error {
		cl, err := in.client(a)
		if err != nil {
			return err
		}
		addr := cl.Space().Malloc(length)
		t0 := p.Now()
		cf := in.cached(fh)
		if cmd == "write" {
			if err := cl.Space().Write(addr, pattern(length, seed)); err != nil {
				return err
			}
			if cf != nil {
				err = cf.Write(p, addr, length, off)
			} else {
				err = fh.Write(p, addr, length, off, opts)
			}
			if err != nil {
				return err
			}
		} else {
			if cf != nil {
				err = cf.Read(p, addr, length, off)
			} else {
				err = fh.Read(p, addr, length, off, opts)
			}
			if err != nil {
				return err
			}
			if hasVerify {
				vseed, err := strconv.ParseInt(verify, 10, 64)
				if err != nil {
					return fmt.Errorf("bad verify=%q", verify)
				}
				got, err := cl.Space().Read(addr, length)
				if err != nil {
					return err
				}
				if !bytesEqual(got, pattern(length, vseed)) {
					return fmt.Errorf("verification failed")
				}
			}
		}
		fmt.Fprintf(in.out, "%s %s: %d bytes in %v (%.1f MB/s)\n",
			cmd, fh.Name(), length, p.Now().Sub(t0), mbps(length, p.Now().Sub(t0)))
		return nil
	})
}

func (in *Interp) cmdList(cmd string, a args) error {
	count, err := a.num("count", 16)
	if err != nil {
		return err
	}
	size, err := a.num("size", 512)
	if err != nil {
		return err
	}
	fstride, err := a.num("fstride", size*2)
	if err != nil {
		return err
	}
	foff, err := a.num("foff", 0)
	if err != nil {
		return err
	}
	mstride, err := a.num("mstride", size)
	if err != nil {
		return err
	}
	if mstride < size {
		mstride = size
	}
	seed, err := a.num("seed", 0)
	if err != nil {
		return err
	}
	opts, err := opOptions(a)
	if err != nil {
		return err
	}
	verify, hasVerify := a.kv["verify"]
	return in.withFile(a, func(p *sim.Proc, fh *pvfs.FileHandle) error {
		cl, err := in.client(a)
		if err != nil {
			return err
		}
		base := cl.Space().Malloc(count * mstride)
		var segs []ib.SGE
		var accs []pvfs.OffLen
		for i := int64(0); i < count; i++ {
			segs = append(segs, ib.SGE{Addr: base + mem.Addr(i*mstride), Len: size})
			accs = append(accs, pvfs.OffLen{Off: foff + i*fstride, Len: size})
		}
		total := count * size
		t0 := p.Now()
		cf := in.cached(fh)
		if cmd == "writelist" {
			data := pattern(total, seed)
			for i, s := range segs {
				if err := cl.Space().Write(s.Addr, data[int64(i)*size:int64(i+1)*size]); err != nil {
					return err
				}
			}
			if cf != nil {
				err = cf.WriteList(p, segs, accs)
			} else {
				err = fh.WriteList(p, segs, accs, opts)
			}
			if err != nil {
				return err
			}
		} else {
			if cf != nil {
				err = cf.ReadList(p, segs, accs)
			} else {
				err = fh.ReadList(p, segs, accs, opts)
			}
			if err != nil {
				return err
			}
			if hasVerify {
				vseed, err := strconv.ParseInt(verify, 10, 64)
				if err != nil {
					return fmt.Errorf("bad verify=%q", verify)
				}
				want := pattern(total, vseed)
				for i, s := range segs {
					got, err := cl.Space().Read(s.Addr, size)
					if err != nil {
						return err
					}
					if !bytesEqual(got, want[int64(i)*size:int64(i+1)*size]) {
						return fmt.Errorf("verification failed at piece %d", i)
					}
				}
			}
		}
		fmt.Fprintf(in.out, "%s %s: %d x %dB in %v (%.1f MB/s)\n",
			cmd, fh.Name(), count, size, p.Now().Sub(t0), mbps(total, p.Now().Sub(t0)))
		return nil
	})
}

// cmdFault scripts the fault plane. 'inject' parses a complete plan from
// one line and attaches it (replacing any previous plan — the injector's
// random stream and counters start fresh); 'clear' detaches everything;
// 'list' shows the active plan and what the injector has done so far.
// Daemon crashes already planted on the timeline by an earlier inject
// still fire after clear, like a real scheduled outage would.
func (in *Interp) cmdFault(a args) error {
	if in.cluster == nil {
		return fmt.Errorf("no cluster")
	}
	switch a.name {
	case "inject":
		plan, err := in.parsePlan(a)
		if err != nil {
			return err
		}
		if plan.Empty() {
			return fmt.Errorf("empty plan: set wr=, reg=, diskerr=, diskslow=, cut=, spike=, or crash=")
		}
		in.cluster.AttachFaults(plan)
		in.plan = plan
		fmt.Fprintf(in.out, "faults attached: %s\n", describePlan(plan))
		return nil
	case "clear":
		in.cluster.AttachFaults(nil)
		in.plan = nil
		fmt.Fprintln(in.out, "faults cleared")
		return nil
	case "list":
		if in.cluster.Faults == nil {
			fmt.Fprintln(in.out, "no faults attached")
			return nil
		}
		fmt.Fprintf(in.out, "plan: %s\n", describePlan(in.plan))
		fmt.Fprintf(in.out, "injected: %v\n", in.cluster.Faults.Totals())
		return nil
	default:
		return fmt.Errorf("fault wants 'inject', 'clear', or 'list'")
	}
}

// parsePlan builds a fault plan from one inject line. Rates are
// probabilities in [0,1]; cut=A:B:AT:DUR, spike=FROM:TO:AT:DUR:EXTRA, and
// crash=SERVER:AT:DOWN take microseconds and accept comma-separated lists.
func (in *Interp) parsePlan(a args) (*fault.Plan, error) {
	plan := &fault.Plan{}
	var err error
	if plan.Seed, err = a.num("seed", 1); err != nil {
		return nil, err
	}
	for _, r := range []struct {
		key string
		dst *float64
	}{
		{"wr", &plan.WRErrorRate},
		{"reg", &plan.RegFailRate},
		{"diskerr", &plan.DiskErrorRate},
		{"diskslow", &plan.DiskSlowRate},
	} {
		if *r.dst, err = a.float(r.key, 0); err != nil {
			return nil, err
		}
		if *r.dst < 0 || *r.dst > 1 {
			return nil, fmt.Errorf("%s=%g out of [0,1]", r.key, *r.dst)
		}
	}
	us := func(n int64) sim.Duration { return sim.Duration(n) * 1000 }
	for _, spec := range splitSpecs(a.str("cut", "")) {
		v, err := splitInts("cut", spec, 4)
		if err != nil {
			return nil, err
		}
		plan.Cuts = append(plan.Cuts, fault.Cut{
			A: int(v[0]), B: int(v[1]), At: us(v[2]), Dur: us(v[3])})
	}
	for _, spec := range splitSpecs(a.str("spike", "")) {
		v, err := splitInts("spike", spec, 5)
		if err != nil {
			return nil, err
		}
		plan.Spikes = append(plan.Spikes, fault.Spike{
			From: int(v[0]), To: int(v[1]), At: us(v[2]), Dur: us(v[3]), Extra: us(v[4])})
	}
	for _, spec := range splitSpecs(a.str("crash", "")) {
		v, err := splitInts("crash", spec, 3)
		if err != nil {
			return nil, err
		}
		srv := int(v[0])
		if srv <= 0 || srv >= len(in.cluster.Servers) {
			return nil, fmt.Errorf("crash server %d out of range (1..%d; server 0 hosts the manager)",
				srv, len(in.cluster.Servers)-1)
		}
		plan.Crashes = append(plan.Crashes, fault.Crash{Server: srv, At: us(v[1]), Down: us(v[2])})
	}
	return plan, nil
}

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func splitInts(what, spec string, want int) ([]int64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != want {
		return nil, fmt.Errorf("bad %s=%q: want %d colon-separated ints", what, spec, want)
	}
	out := make([]int64, want)
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s=%q: %q is not an int", what, spec, p)
		}
		out[i] = n
	}
	return out, nil
}

func describePlan(pl *fault.Plan) string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if pl.WRErrorRate > 0 {
		add("wr=%g", pl.WRErrorRate)
	}
	if pl.RegFailRate > 0 {
		add("reg=%g", pl.RegFailRate)
	}
	if pl.DiskErrorRate > 0 {
		add("diskerr=%g", pl.DiskErrorRate)
	}
	if pl.DiskSlowRate > 0 {
		add("diskslow=%g", pl.DiskSlowRate)
	}
	for _, c := range pl.Cuts {
		add("cut %d<->%d @%v+%v", c.A, c.B, c.At, c.Dur)
	}
	for _, s := range pl.Spikes {
		add("spike %d->%d @%v+%v extra=%v", s.From, s.To, s.At, s.Dur, s.Extra)
	}
	for _, c := range pl.Crashes {
		add("crash io%d @%v down=%v", c.Server, c.At, c.Down)
	}
	add("seed=%d", pl.Seed)
	return strings.Join(parts, ", ")
}

// cmdTrace controls both observability planes: the flat event recorder
// ('on'/'dump', unchanged) and the request-scoped span plane ('spans'
// enables it, 'profile' prints the critical-path breakdown, 'export'
// writes a Perfetto trace, 'off' detaches the tracer).
func (in *Interp) cmdTrace(a args) error {
	if in.cluster == nil {
		return fmt.Errorf("no cluster")
	}
	switch a.name {
	case "spans":
		in.cluster.EnableSpans()
		fmt.Fprintln(in.out, "span tracing on")
		return nil
	case "off":
		in.cluster.DisableSpans()
		fmt.Fprintln(in.out, "span tracing off")
		return nil
	case "profile":
		if in.cluster.Spans == nil {
			return fmt.Errorf("span tracing not enabled (run 'trace spans')")
		}
		return in.cluster.Spans.Profile().WriteBreakdown(in.out)
	case "export":
		if in.cluster.Spans == nil {
			return fmt.Errorf("span tracing not enabled (run 'trace spans')")
		}
		path := a.str("file", "")
		if path == "" {
			return fmt.Errorf("export wants file=PATH")
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := in.cluster.Spans.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(in.out, "exported %d spans to %s\n", in.cluster.Spans.Len(), path)
		return nil
	case "on":
		n, err := a.num("cap", 1024)
		if err != nil {
			return err
		}
		in.rec = in.cluster.EnableTracing(int(n))
		return nil
	case "dump":
		if in.rec == nil {
			return fmt.Errorf("tracing not enabled")
		}
		n, err := a.num("last", 10)
		if err != nil {
			return err
		}
		evs := in.rec.Events()
		if int64(len(evs)) > n {
			evs = evs[int64(len(evs))-n:]
		}
		for _, ev := range evs {
			fmt.Fprintf(in.out, "%12.1fus %-6s %-14s %8dB %s\n",
				float64(ev.T)/1000, ev.Node, ev.Kind, ev.Bytes, ev.Detail)
		}
		return nil
	default:
		return fmt.Errorf("trace wants 'on', 'dump', 'spans', 'profile', 'export', or 'off'")
	}
}

// cmdMetrics controls the virtual-time metrics plane: 'on' attaches a
// registry sampling every layer on the engine clock, 'dump' exports the
// sampled series (indented JSON or Prometheus text, to the session
// output or a file), 'rate' prints the trailing per-interval values of
// each series aggregated across nodes, 'top' prints the engine's
// execution telemetry, and 'off' detaches the registry, restoring the
// zero-cost no-op sinks. Everything except 'top' is deterministic;
// 'top' describes the execution (per-shard event counts), which depends
// on the shard count and must never feed a determinism-checked artifact.
func (in *Interp) cmdMetrics(a args) error {
	if in.cluster == nil {
		return fmt.Errorf("no cluster")
	}
	switch a.name {
	case "on":
		us, err := a.num("interval", 50)
		if err != nil {
			return err
		}
		depth, err := a.num("depth", 2048)
		if err != nil {
			return err
		}
		if us <= 0 || depth <= 0 {
			return fmt.Errorf("interval and depth must be positive")
		}
		in.mx = in.cluster.EnableMetrics(metrics.Config{
			Interval: sim.Duration(us) * 1000,
			Depth:    int(depth),
		})
		fmt.Fprintf(in.out, "metrics on: interval %dus, depth %d\n", us, depth)
		return nil
	case "dump":
		if in.mx == nil {
			return fmt.Errorf("metrics not enabled (run 'metrics on')")
		}
		now := in.cluster.Eng.Now()
		write := func(w io.Writer) error {
			switch f := a.str("format", "json"); f {
			case "json":
				return in.mx.WriteJSON(w, now)
			case "prom":
				return in.mx.WritePromText(w, now)
			default:
				return fmt.Errorf("unknown format %q (want json or prom)", f)
			}
		}
		path := a.str("file", "")
		if path == "" {
			return write(in.out)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(in.out, "dumped %d series to %s\n", len(in.mx.Snapshot(now)), path)
		return nil
	case "rate":
		if in.mx == nil {
			return fmt.Errorf("metrics not enabled (run 'metrics on')")
		}
		last, err := a.num("last", 5)
		if err != nil {
			return err
		}
		filter := a.str("name", "")
		// Aggregate each series name across nodes; the snapshot's windows
		// all share the same First, so indexes align.
		type agg struct {
			kind  string
			total int64
			vals  []int64
		}
		byName := map[string]*agg{}
		var names []string
		for _, s := range in.mx.Snapshot(in.cluster.Eng.Now()) {
			if filter != "" && s.Name != filter {
				continue
			}
			g, ok := byName[s.Name]
			if !ok {
				g = &agg{kind: s.Kind}
				byName[s.Name] = g
				names = append(names, s.Name)
			}
			g.total += s.Total
			for len(g.vals) < len(s.Vals) {
				g.vals = append(g.vals, 0)
			}
			for i, v := range s.Vals {
				g.vals[i] += v
			}
		}
		if filter != "" && len(names) == 0 {
			return fmt.Errorf("no series named %q", filter)
		}
		sort.Strings(names)
		ivUS := int64(in.mx.Interval()) / 1000
		for _, name := range names {
			g := byName[name]
			vals := g.vals
			if int64(len(vals)) > last {
				vals = vals[int64(len(vals))-last:]
			}
			fmt.Fprintf(in.out, "%-22s %-7s total=%-12d last %dx%dus: %v\n",
				name, g.kind, g.total, len(vals), ivUS, vals)
		}
		return nil
	case "top":
		tel := in.cluster.Eng.Telemetry()
		fmt.Fprintf(in.out, "engine: shards=%d windows=%d events=%d crossings=%d imbalance=%.2f\n",
			len(tel.Shards), tel.Windows, tel.TotalEvents(), tel.Crossings(), tel.Imbalance())
		for i, s := range tel.Shards {
			fmt.Fprintf(in.out, "shard %d: events=%d ingested=%d maxwindow=%d\n",
				i, s.Events, s.Ingested, s.MaxWindowEvents)
		}
		return nil
	case "off":
		if in.mx == nil {
			fmt.Fprintln(in.out, "metrics already off")
			return nil
		}
		in.cluster.DisableMetrics()
		in.mx = nil
		fmt.Fprintln(in.out, "metrics off")
		return nil
	default:
		return fmt.Errorf("metrics wants 'on', 'dump', 'rate', 'top', or 'off'")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mbps(n int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / (1 << 20)
}
