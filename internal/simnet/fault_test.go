package simnet

import (
	"errors"
	"testing"
	"time"

	"pvfsib/internal/fault"
	"pvfsib/internal/sim"
)

// TestPartitionDropsAndHeals cuts the a<->b link for a window and checks
// that sends inside it fail with ErrDropped (both directions), sends before
// and after succeed, and the dropped message still cost the sender its
// serialization time.
func TestPartitionDropsAndHeals(t *testing.T) {
	eng, net, a, b := testNet(t)
	inj := fault.NewInjector(fault.Plan{
		Cuts: []fault.Cut{{A: 0, B: 1, At: 100 * time.Microsecond, Dur: 200 * time.Microsecond}},
	})
	net.SetFaults(inj)
	const size = 4096
	ser := sim.Time(net.Params().SerializationTime(size))
	eng.Go("sender", func(p *sim.Proc) {
		if err := a.Send(p, b.ID, size, "before"); err != nil {
			t.Errorf("send before cut: %v", err)
		}
		p.Sleep(sim.Duration(150*time.Microsecond) - sim.Duration(p.Now()))
		start := p.Now()
		if err := a.Send(p, b.ID, size, "during"); !errors.Is(err, ErrDropped) {
			t.Errorf("send during cut: got %v, want ErrDropped", err)
		}
		if got := p.Now() - start; got != ser {
			t.Errorf("dropped send charged %v, want serialization %v", got, ser)
		}
		if err := b.Send(p, a.ID, size, "reverse"); !errors.Is(err, ErrDropped) {
			t.Errorf("cut must be bidirectional: got %v", err)
		}
		p.Sleep(sim.Duration(400*time.Microsecond) - sim.Duration(p.Now()))
		if err := a.Send(p, b.ID, size, "after"); err != nil {
			t.Errorf("send after heal: %v", err)
		}
	})
	var got []string
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, b.Inbox.Recv(p).(*Message).Payload.(string))
		}
	})
	run(t, eng)
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Errorf("delivered %v, want [before after]", got)
	}
	if inj.Counters.Drops != 2 {
		t.Errorf("drops = %d, want 2", inj.Counters.Drops)
	}
}

// TestSpikeStallsWithoutReordering delays one sender with a latency spike
// while another message from the same sender follows immediately: per-link
// FIFO order must hold even though the spike stalls the first message
// before the transmit engine.
func TestSpikeStallsWithoutReordering(t *testing.T) {
	eng, net, a, b := testNet(t)
	inj := fault.NewInjector(fault.Plan{
		Spikes: []fault.Spike{{From: 0, To: 1, At: 0, Dur: 50 * time.Microsecond, Extra: 30 * time.Microsecond}},
	})
	net.SetFaults(inj)
	eng.Go("sender", func(p *sim.Proc) {
		// First send eats the spike stall; second leaves after the window.
		sim.Must(a.Send(p, b.ID, 64, "first"))
		p.Sleep(sim.Duration(60*time.Microsecond) - sim.Duration(p.Now()))
		sim.Must(a.Send(p, b.ID, 64, "second"))
	})
	var order []string
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, b.Inbox.Recv(p).(*Message).Payload.(string))
		}
	})
	run(t, eng)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("delivery order %v, want [first second]", order)
	}
	if inj.Counters.Spiked != 1 {
		t.Errorf("spiked = %d, want 1", inj.Counters.Spiked)
	}
}

// TestConcurrentSendersSerializeUnderFaults drives many concurrent senders
// at one receiver through a fault policy and checks the per-link invariant
// the fabric promises: each sender's own messages arrive in send order, and
// the receive engine never overlaps two messages (arrivals are spaced by at
// least the receive serialization time).
func TestConcurrentSendersSerializeUnderFaults(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	dst := net.AddNode("dst")
	const nSenders, perSender, size = 4, 8, 8192
	inj := fault.NewInjector(fault.Plan{
		Seed: 3,
		Spikes: []fault.Spike{
			{From: fault.Wildcard, To: 0, At: 0, Dur: 20 * time.Microsecond, Extra: 5 * time.Microsecond},
		},
	})
	net.SetFaults(inj)
	srcs := make([]*Node, nSenders)
	for i := range srcs {
		srcs[i] = net.AddNode("src")
	}
	for i, src := range srcs {
		i, src := i, src
		eng.Go("sender", func(p *sim.Proc) {
			for k := 0; k < perSender; k++ {
				sim.Must(src.Send(p, dst.ID, size, [2]int{i, k}))
			}
		})
	}
	lastSeq := make([]int, nSenders)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	var lastArrival sim.Time
	ser := sim.Time(net.Params().SerializationTime(size))
	eng.Go("recv", func(p *sim.Proc) {
		for n := 0; n < nSenders*perSender; n++ {
			m := dst.Inbox.Recv(p).(*Message)
			id := m.Payload.([2]int)
			if id[1] != lastSeq[id[0]]+1 {
				t.Errorf("sender %d: got seq %d after %d", id[0], id[1], lastSeq[id[0]])
			}
			lastSeq[id[0]] = id[1]
			if n > 0 && m.ArriveAt-lastArrival < ser {
				t.Errorf("arrivals %v apart, want >= %v (rx engine overlap)", m.ArriveAt-lastArrival, ser)
			}
			lastArrival = m.ArriveAt
		}
	})
	run(t, eng)
	for i, last := range lastSeq {
		if last != perSender-1 {
			t.Errorf("sender %d: delivered through seq %d, want %d", i, last, perSender-1)
		}
	}
}
