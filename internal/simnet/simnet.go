// Package simnet models a switched cluster interconnect in virtual time.
//
// Every node connects to a full crossbar through a full-duplex link. A
// message from A to B occupies A's transmit engine and B's receive engine
// for its serialization time (size/bandwidth) and arrives one path latency
// after transmission begins (cut-through, not store-and-forward):
//
//	arrival = txStart + latency + size/bandwidth
//
// assuming both engines are idle; otherwise the message queues FIFO. This
// reproduces the two first-order properties the paper's experiments depend
// on: a fixed per-message startup cost and a shared per-port bandwidth.
//
// The default parameters are calibrated to the paper's InfiniBand testbed
// (Table 2): 6.0 µs one-way latency and 827 MB/s point-to-point bandwidth.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// MB is 2^20 bytes, the paper's definition of a megabyte.
const MB = 1 << 20

// Params describes the fabric.
type Params struct {
	// Bandwidth is the per-port link bandwidth in bytes per virtual second.
	Bandwidth float64
	// Latency is the one-way path latency (wire + switch + DMA setup).
	Latency sim.Duration
}

// DefaultParams matches the paper's Mellanox InfiniHost testbed.
func DefaultParams() Params {
	return Params{
		Bandwidth: 827 * MB,
		Latency:   6 * time.Microsecond,
	}
}

// SerializationTime returns the time the link is occupied by size bytes.
func (p Params) SerializationTime(size int) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.Duration(float64(size) / p.Bandwidth * 1e9)
}

// NodeID identifies a node on the fabric.
type NodeID int

// Message is one fabric transfer. Payload is opaque to the network.
// Messages are pooled: the Inbox consumer hands a finished message back via
// Network.Recycle instead of leaving it to the garbage collector.
type Message struct {
	From, To NodeID
	Size     int
	Payload  any
	SentAt   sim.Time // when transmission began
	ArriveAt sim.Time // when the last byte reached the receiver
	// Ctx carries the sender's packed trace context across the wire so
	// receive-side work lands under the same request.
	Ctx uint64

	dst  *Node    // delivery target, set while in flight
	next *Message // free-list link
}

// Node is one port on the fabric.
type Node struct {
	ID    NodeID
	Name  string
	net   *Network
	tx    *sim.Resource
	rx    *sim.Resource
	stage *sim.Mailbox // in-flight messages, ordered by wire arrival
	Inbox *sim.Mailbox // fully received messages, consumed by the host
}

// FaultPolicy is consulted once per message before transmission. It is the
// fabric's hook into the fault plane (internal/fault implements it): drop
// makes Send fail with ErrDropped — the sender-visible shape of a reliable
// connection exhausting its retries during a partition — and extra is
// added sender-side stall time (charged before the transmit engine is
// acquired, so per-link message ordering is preserved). Node ids are plain
// ints so implementations need not import this package.
type FaultPolicy interface {
	SendVerdict(now sim.Time, from, to int, size int) (drop bool, extra sim.Duration)
}

// ErrDropped is returned by Send when the fault policy partitions the link.
var ErrDropped = errors.New("simnet: message dropped (link partitioned)")

// Network is the crossbar plus all attached nodes.
type Network struct {
	eng      *sim.Engine
	params   Params
	nodes    []*Node
	faults   FaultPolicy
	tracer   *trace.Tracer
	freeMsgs *Message

	// Scratch recycles staging buffers for the hosts on this fabric (the ib
	// layer's RDMA gather and read-response copies). One pool per network
	// keeps every buffer inside its cell, serialized by the cell's engine.
	Scratch mem.ScratchPool

	// BytesSent accumulates all payload bytes accepted for transmission,
	// indexed by sender.
	BytesSent []int64
}

// allocMsg returns a recycled message or a fresh one.
func (n *Network) allocMsg() *Message {
	if m := n.freeMsgs; m != nil {
		n.freeMsgs = m.next
		m.next = nil
		return m
	}
	return &Message{}
}

// Recycle returns a delivered message to the fabric's free list. The Inbox
// consumer calls it once the payload has been handed off; the message must
// not be touched afterwards.
func (n *Network) Recycle(m *Message) {
	m.Payload = nil
	m.dst = nil
	m.Ctx = 0
	m.next = n.freeMsgs
	n.freeMsgs = m
}

// SetFaults attaches (or, with nil, detaches) the fault policy. With no
// policy Send consults nothing and schedules nothing extra — the zero-
// overhead guarantee for fault-free runs.
func (n *Network) SetFaults(f FaultPolicy) { n.faults = f }

// SetTracer attaches (or, with nil, detaches) the span tracer. With no
// tracer Send and the receive engines record nothing and allocate
// nothing — the same zero-overhead contract the fault hook keeps.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// New creates a fabric on the engine with the given parameters.
func New(eng *sim.Engine, params Params) *Network {
	if params.Bandwidth <= 0 {
		sim.Failf("simnet: bandwidth must be positive")
	}
	return &Network{eng: eng, params: params}
}

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.params }

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddNode attaches a new node and starts its receive engine.
func (n *Network) AddNode(name string) *Node {
	id := NodeID(len(n.nodes))
	node := &Node{
		ID:    id,
		Name:  name,
		net:   n,
		tx:    n.eng.NewResource(fmt.Sprintf("%s.tx", name), 1),
		rx:    n.eng.NewResource(fmt.Sprintf("%s.rx", name), 1),
		stage: n.eng.NewMailbox(fmt.Sprintf("%s.stage", name)),
		Inbox: n.eng.NewMailbox(fmt.Sprintf("%s.inbox", name)),
	}
	n.nodes = append(n.nodes, node)
	n.BytesSent = append(n.BytesSent, 0)
	n.eng.Go(fmt.Sprintf("%s.rxengine", name), node.rxEngine)
	return node
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Engine returns the simulation engine the node's fabric runs on.
func (node *Node) Engine() *sim.Engine { return node.net.eng }

// Network returns the fabric this node is attached to.
func (node *Node) Network() *Network { return node.net }

// NumNodes reports how many nodes are attached.
func (n *Network) NumNodes() int { return len(n.nodes) }

// rxEngine drains staged messages, charging receive-side serialization.
// Parking (Recv, Acquire, Sleep) is this engine's job, so only allocation
// and wall-clock effects are budgeted.
//
//pvfslint:hotpath alloc,syscall
func (node *Node) rxEngine(p *sim.Proc) {
	for {
		m := node.stage.Recv(p).(*Message)
		sp := node.net.tracer.Start(p.Now(), trace.Ctx(m.Ctx), node.Name, "net.rx", trace.StageWire)
		sp.SetBytes(int64(m.Size))
		node.rx.Acquire(p)
		p.Sleep(node.net.params.SerializationTime(m.Size))
		node.rx.Release()
		m.ArriveAt = p.Now()
		sp.End(p.Now())
		node.Inbox.Send(m)
	}
}

// Send transmits size bytes with the given payload from this node to dst.
// The calling process blocks for the transmit-side serialization time; the
// message lands in dst's Inbox after the path latency plus receive-side
// serialization. Messages between the same pair of nodes are delivered in
// send order. When a fault policy is attached it may stall the sender
// (latency spike) or drop the message, in which case Send returns
// ErrDropped after charging the serialization time the failed retries
// consumed; without a policy Send never fails.
//
// Send blocks by design (transmit engine, serialization time), so only
// allocation and wall-clock effects are budgeted.
//
//pvfslint:hotpath alloc,syscall
func (node *Node) Send(p *sim.Proc, dst NodeID, size int, payload any) error {
	if dst < 0 || int(dst) >= len(node.net.nodes) {
		sim.Failf("simnet: send to unknown node %d", dst)
	}
	sp := node.net.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), node.Name, "net.tx", trace.StageWire)
	sp.SetBytes(int64(size))
	if fp := node.net.faults; fp != nil {
		drop, extra := fp.SendVerdict(p.Now(), int(node.ID), int(dst), size)
		if extra > 0 {
			p.Sleep(extra)
		}
		if drop {
			// The reliable connection burned its retries: the wire time was
			// consumed but the message never arrived.
			node.tx.Acquire(p)
			p.Sleep(node.net.params.SerializationTime(size))
			node.tx.Release()
			sp.EndErr(p.Now(), ErrDropped)
			return ErrDropped
		}
	}
	n := node.net
	m := n.allocMsg()
	m.From, m.To, m.Size, m.Payload = node.ID, dst, size, payload
	m.ArriveAt = 0
	m.Ctx = uint64(sp.Ctx())
	if m.Ctx == 0 {
		m.Ctx = p.TraceCtx()
	}
	node.tx.Acquire(p)
	m.SentAt = p.Now()
	n.BytesSent[node.ID] += int64(size)
	m.dst = n.nodes[dst]
	// The head of the message reaches the receiver one latency after
	// transmission starts; receive-side serialization happens there.
	// deliverStage is package-level so the hot path allocates no closure.
	n.eng.AfterCall(n.params.Latency, deliverStage, m)
	p.Sleep(n.params.SerializationTime(size))
	node.tx.Release()
	sp.End(p.Now())
	return nil
}

// deliverStage is the closure-free arrival callback: the message joins the
// receiver's staging queue one path latency after transmission started.
//
//pvfslint:hotpath
func deliverStage(v any) {
	m := v.(*Message)
	m.dst.stage.Send(m)
}
