// Package simnet models a switched cluster interconnect in virtual time.
//
// Every node connects to a full crossbar through a full-duplex link. A
// message from A to B occupies A's transmit engine and B's receive engine
// for its serialization time (size/bandwidth) and arrives one path latency
// after transmission begins (cut-through, not store-and-forward):
//
//	arrival = txStart + latency + size/bandwidth
//
// assuming both engines are idle; otherwise the message queues FIFO. This
// reproduces the two first-order properties the paper's experiments depend
// on: a fixed per-message startup cost and a shared per-port bandwidth.
//
// The default parameters are calibrated to the paper's InfiniBand testbed
// (Table 2): 6.0 µs one-way latency and 827 MB/s point-to-point bandwidth.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"pvfsib/internal/metrics"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// MB is 2^20 bytes, the paper's definition of a megabyte.
const MB = 1 << 20

// Params describes the fabric.
type Params struct {
	// Bandwidth is the per-port link bandwidth in bytes per virtual second.
	Bandwidth float64
	// Latency is the one-way path latency (wire + switch + DMA setup).
	Latency sim.Duration
}

// DefaultParams matches the paper's Mellanox InfiniHost testbed.
func DefaultParams() Params {
	return Params{
		Bandwidth: 827 * MB,
		Latency:   6 * time.Microsecond,
	}
}

// SerializationTime returns the time the link is occupied by size bytes.
func (p Params) SerializationTime(size int) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.Duration(float64(size) / p.Bandwidth * 1e9)
}

// NodeID identifies a node on the fabric.
type NodeID int

// Message is one fabric transfer. Payload is opaque to the network.
// Messages are pooled per shard: Send allocates from the sender's shard
// pool and the Inbox consumer hands a finished message back via
// Network.Recycle, which returns it to the receiver's shard pool. Each
// pool is touched only by code running on its shard's worker thread, so
// pooling needs no locks; at one shard there is a single pool and any
// traffic pattern — including one-directional streams — recirculates the
// same structs allocation-free, exactly as the pre-shard global pool did.
type Message struct {
	From, To NodeID
	Size     int
	Payload  any
	SentAt   sim.Time // when transmission began
	ArriveAt sim.Time // when the last byte reached the receiver
	// Ctx carries the sender's packed trace context across the wire so
	// receive-side work lands under the same request.
	Ctx uint64

	dst  *Node    // delivery target, set while in flight
	next *Message // free-list link
}

// Node is one port on the fabric.
type Node struct {
	ID    NodeID
	Name  string
	net   *Network
	group *sim.Group
	tx    *sim.Resource
	rx    *sim.Resource
	stage *sim.Mailbox // in-flight messages, ordered by wire arrival
	Inbox *sim.Mailbox // fully received messages, consumed by the host

	shardIdx int // the group's shard; indexes the network's per-shard pools

	mx nodeMetrics // zero-value sinks unless SetMetrics attached a registry
}

// nodeMetrics is one port's instrument set. Every handle is a value whose
// zero state is a no-op sink, so the fabric's hot paths sample
// unconditionally. All series belong to the node's own name and are only
// touched by the node's events: tx-side samples run on the sender's
// shard, and the staged-message gauge is split so the increment
// (deliverStage) and decrement (rxEngine) both execute on the receiver.
type nodeMetrics struct {
	txBytes metrics.Counter // payload bytes accepted for transmission
	txBusy  metrics.Busy    // transmit engine occupancy
	rxBusy  metrics.Busy    // receive engine occupancy
	txQueue metrics.Gauge   // senders queued on (or holding) the transmit engine
	staged  metrics.Gauge   // messages staged toward this receiver, not yet received
}

func (node *Node) attachMetrics(mx *metrics.Registry) {
	if mx == nil {
		node.mx = nodeMetrics{}
		return
	}
	node.mx = nodeMetrics{
		txBytes: mx.Counter(node.Name, "net.tx.bytes"),
		txBusy:  mx.Busy(node.Name, "net.tx.busy"),
		rxBusy:  mx.Busy(node.Name, "net.rx.busy"),
		txQueue: mx.Gauge(node.Name, "net.tx.queue"),
		staged:  mx.Gauge(node.Name, "net.inflight"),
	}
}

// FaultPolicy is consulted once per message before transmission. It is the
// fabric's hook into the fault plane (internal/fault implements it): drop
// makes Send fail with ErrDropped — the sender-visible shape of a reliable
// connection exhausting its retries during a partition — and extra is
// added sender-side stall time (charged before the transmit engine is
// acquired, so per-link message ordering is preserved). Node ids are plain
// ints so implementations need not import this package.
type FaultPolicy interface {
	SendVerdict(now sim.Time, from, to int, size int) (drop bool, extra sim.Duration)
}

// ErrDropped is returned by Send when the fault policy partitions the link.
var ErrDropped = errors.New("simnet: message dropped (link partitioned)")

// shardPool is one shard's share of the fabric's pooled state. The aux slot
// is opaque per-shard storage for higher layers (the ib adapter keeps its
// wire-struct and scratch-buffer pools there) so every pool in the cell
// follows the same discipline: owned by one worker thread, lock-free.
type shardPool struct {
	freeMsgs *Message
	aux      any
}

// Network is the crossbar plus all attached nodes.
type Network struct {
	eng    *sim.Engine
	params Params
	nodes  []*Node
	faults FaultPolicy
	tracer *trace.Tracer
	mx     *metrics.Registry
	pools  []shardPool // indexed by shard; fixed at New

	// BytesSent accumulates all payload bytes accepted for transmission,
	// indexed by sender (each slot is written only by its sender's group).
	BytesSent []int64
}

// ShardAux returns the opaque per-shard storage slot for higher layers.
// Callers must only touch the slot from code running on shard i.
func (n *Network) ShardAux(i int) *any { return &n.pools[i].aux }

// allocMsg returns a recycled message from the sending node's shard pool or
// a fresh one. Send runs on the sender's shard, so the access is unlocked.
func (node *Node) allocMsg() *Message {
	pool := &node.net.pools[node.shardIdx]
	if m := pool.freeMsgs; m != nil {
		pool.freeMsgs = m.next
		m.next = nil
		return m
	}
	return &Message{}
}

// Recycle returns a delivered message to the receiving shard's free list.
// The Inbox consumer calls it once the payload has been handed off; the
// message must not be touched afterwards. The consumer runs on the
// receiver's shard, so the pool access is unlocked; request/reply flows
// recirculate the structs between the two shard pools.
func (n *Network) Recycle(m *Message) {
	pool := &n.pools[m.dst.shardIdx]
	m.Payload = nil
	m.dst = nil
	m.Ctx = 0
	m.next = pool.freeMsgs
	pool.freeMsgs = m
}

// SetFaults attaches (or, with nil, detaches) the fault policy. With no
// policy Send consults nothing and schedules nothing extra — the zero-
// overhead guarantee for fault-free runs.
func (n *Network) SetFaults(f FaultPolicy) { n.faults = f }

// SetTracer attaches (or, with nil, detaches) the span tracer. With no
// tracer Send and the receive engines record nothing and allocate
// nothing — the same zero-overhead contract the fault hook keeps.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// SetMetrics attaches (or, with nil, detaches) the metrics registry:
// every node gets per-port byte counters, tx/rx busy series, and
// queue-depth gauges. Each node's name must already be registered. With
// no registry the handles are zero-value sinks — sampling costs one nil
// check. Call while the engine is idle.
func (n *Network) SetMetrics(mx *metrics.Registry) {
	n.mx = mx
	for _, node := range n.nodes {
		node.attachMetrics(mx)
	}
}

// New creates a fabric on the engine with the given parameters. The path
// latency is the minimum delay of any cross-node (and therefore any possible
// cross-shard) interaction, so it is declared to the engine as conservative
// lookahead for sharded execution.
func New(eng *sim.Engine, params Params) *Network {
	if params.Bandwidth <= 0 {
		sim.Failf("simnet: bandwidth must be positive")
	}
	eng.SetLookahead(params.Latency)
	return &Network{eng: eng, params: params, pools: make([]shardPool, eng.NumShards())}
}

// Lookahead returns the fabric's contribution to the engine's conservative
// synchronization window: the one-way path latency, the soonest any message
// can take effect on another node.
func (n *Network) Lookahead() sim.Duration { return n.params.Latency }

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.params }

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddNode attaches a new node in the engine's default group and starts its
// receive engine.
func (n *Network) AddNode(name string) *Node {
	return n.AddNodeIn(n.eng.DefaultGroup(), name)
}

// AddNodeIn attaches a new node whose receive engine — and, by the layering
// contract, every process and timer of the host that owns the node — runs
// in group g. Group-per-node placement is what lets a sharded engine run
// nodes in parallel.
func (n *Network) AddNodeIn(g *sim.Group, name string) *Node {
	if g.ShardIndex() >= len(n.pools) {
		sim.Failf("simnet: node %q on shard %d but the fabric was built for %d shards (call Engine.SetShards before simnet.New)",
			name, g.ShardIndex(), len(n.pools))
	}
	node := &Node{
		ID:       NodeID(len(n.nodes)),
		Name:     name,
		net:      n,
		group:    g,
		shardIdx: g.ShardIndex(),
		tx:       n.eng.NewResource(fmt.Sprintf("%s.tx", name), 1),
		rx:       n.eng.NewResource(fmt.Sprintf("%s.rx", name), 1),
		stage:    n.eng.NewMailbox(fmt.Sprintf("%s.stage", name)),
		Inbox:    n.eng.NewMailbox(fmt.Sprintf("%s.inbox", name)),
	}
	n.nodes = append(n.nodes, node)
	n.BytesSent = append(n.BytesSent, 0)
	if n.mx != nil {
		node.attachMetrics(n.mx)
	}
	n.eng.GoOn(g, fmt.Sprintf("%s.rxengine", name), node.rxEngine)
	return node
}

// Group returns the group the node's host runs in.
func (node *Node) Group() *sim.Group { return node.group }

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Engine returns the simulation engine the node's fabric runs on.
func (node *Node) Engine() *sim.Engine { return node.net.eng }

// Network returns the fabric this node is attached to.
func (node *Node) Network() *Network { return node.net }

// NumNodes reports how many nodes are attached.
func (n *Network) NumNodes() int { return len(n.nodes) }

// rxEngine drains staged messages, charging receive-side serialization.
// Parking (Recv, Acquire, Sleep) is this engine's job, so only allocation
// and wall-clock effects are budgeted.
//
//pvfslint:hotpath alloc,syscall
func (node *Node) rxEngine(p *sim.Proc) {
	for {
		m := node.stage.Recv(p).(*Message)
		node.mx.staged.Add(p.Now(), -1)
		sp := node.net.tracer.Start(p.Now(), trace.Ctx(m.Ctx), node.Name, "net.rx", trace.StageWire)
		sp.SetBytes(int64(m.Size))
		node.rx.Acquire(p)
		rx0 := p.Now()
		p.Sleep(node.net.params.SerializationTime(m.Size))
		node.rx.Release()
		m.ArriveAt = p.Now()
		node.mx.rxBusy.AddSpan(rx0, m.ArriveAt)
		sp.End(p.Now())
		node.Inbox.Send(m)
	}
}

// Send transmits size bytes with the given payload from this node to dst.
// The calling process blocks for the transmit-side serialization time; the
// message lands in dst's Inbox after the path latency plus receive-side
// serialization. Messages between the same pair of nodes are delivered in
// send order. When a fault policy is attached it may stall the sender
// (latency spike) or drop the message, in which case Send returns
// ErrDropped after charging the serialization time the failed retries
// consumed; without a policy Send never fails.
//
// Send blocks by design (transmit engine, serialization time), so only
// allocation and wall-clock effects are budgeted.
//
//pvfslint:hotpath alloc,syscall
func (node *Node) Send(p *sim.Proc, dst NodeID, size int, payload any) error {
	if dst < 0 || int(dst) >= len(node.net.nodes) {
		sim.Failf("simnet: send to unknown node %d", dst)
	}
	sp := node.net.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), node.Name, "net.tx", trace.StageWire)
	sp.SetBytes(int64(size))
	if fp := node.net.faults; fp != nil {
		drop, extra := fp.SendVerdict(p.Now(), int(node.ID), int(dst), size)
		if extra > 0 {
			p.Sleep(extra)
		}
		if drop {
			// The reliable connection burned its retries: the wire time was
			// consumed but the message never arrived.
			node.mx.txQueue.Add(p.Now(), 1)
			node.tx.Acquire(p)
			tx0 := p.Now()
			p.Sleep(node.net.params.SerializationTime(size))
			node.tx.Release()
			node.mx.txQueue.Add(p.Now(), -1)
			node.mx.txBusy.AddSpan(tx0, p.Now())
			sp.EndErr(p.Now(), ErrDropped)
			return ErrDropped
		}
	}
	n := node.net
	m := node.allocMsg()
	m.From, m.To, m.Size, m.Payload = node.ID, dst, size, payload
	m.ArriveAt = 0
	m.Ctx = uint64(sp.Ctx())
	if m.Ctx == 0 {
		m.Ctx = p.TraceCtx()
	}
	node.mx.txQueue.Add(p.Now(), 1)
	node.tx.Acquire(p)
	m.SentAt = p.Now()
	n.BytesSent[node.ID] += int64(size)
	node.mx.txBytes.Add(m.SentAt, int64(size))
	m.dst = n.nodes[dst]
	// The head of the message reaches the receiver one latency after
	// transmission starts; receive-side serialization happens there.
	// deliverStage is package-level so the hot path allocates no closure.
	// The callback executes on the destination node's group — this is the
	// engine's cross-shard hand-off point, and the latency charged here is
	// exactly the lookahead that makes the hand-off conservative.
	p.AfterCallOn(m.dst.group, n.params.Latency, deliverStage, m)
	p.Sleep(n.params.SerializationTime(size))
	node.tx.Release()
	node.mx.txQueue.Add(p.Now(), -1)
	node.mx.txBusy.AddSpan(m.SentAt, p.Now())
	sp.End(p.Now())
	return nil
}

// deliverStage is the closure-free arrival callback: the message joins the
// receiver's staging queue one path latency after transmission started.
//
//pvfslint:hotpath
func deliverStage(v any) {
	m := v.(*Message)
	// This callback executes on the receiver's shard at SentAt + latency
	// (the event's own timestamp), so the receiver-owned staged gauge may
	// be sampled here; the matching decrement is in rxEngine.
	m.dst.mx.staged.Add(m.SentAt.Add(m.dst.net.params.Latency), 1)
	m.dst.stage.Send(m)
}
