package simnet

import (
	"testing"
	"time"

	"pvfsib/internal/sim"
)

func testNet(t *testing.T) (*sim.Engine, *Network, *Node, *Node) {
	t.Helper()
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	a := net.AddNode("a")
	b := net.AddNode("b")
	return eng, net, a, b
}

// run executes the engine, tolerating the perpetually-parked rx engines.
func run(t *testing.T, eng *sim.Engine) {
	t.Helper()
	err := eng.Run()
	if err == nil {
		return
	}
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		t.Fatal(err)
	}
	// Only rx engines may remain parked (they wait for messages forever).
	for _, name := range de.Parked {
		if len(name) < 9 || name[len(name)-9:] != ".rxengine" {
			t.Fatalf("unexpected parked process %q", name)
		}
	}
}

func TestSmallMessageLatency(t *testing.T) {
	eng, _, a, b := testNet(t)
	var arrived sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		m := b.Inbox.Recv(p).(*Message)
		arrived = m.ArriveAt
		if m.Payload.(string) != "ping" {
			t.Errorf("payload = %v", m.Payload)
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		a.Send(p, b.ID, 4, "ping")
	})
	run(t, eng)
	// 4 bytes: serialization is negligible; arrival ≈ latency.
	lo, hi := sim.Time(6*time.Microsecond), sim.Time(6*time.Microsecond+100)
	if arrived < lo || arrived > hi {
		t.Errorf("4-byte message arrived at %v, want ≈6µs", arrived)
	}
}

func TestLargeMessageBandwidth(t *testing.T) {
	eng, net, a, b := testNet(t)
	const size = 64 * MB
	var arrived sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		m := b.Inbox.Recv(p).(*Message)
		arrived = m.ArriveAt
	})
	eng.Go("send", func(p *sim.Proc) {
		a.Send(p, b.ID, size, nil)
	})
	run(t, eng)
	gotBW := float64(size) / arrived.Seconds() / MB
	if gotBW < 800 || gotBW > 830 {
		t.Errorf("bandwidth = %.1f MB/s, want ≈827", gotBW)
	}
	if net.BytesSent[a.ID] != size {
		t.Errorf("BytesSent = %d, want %d", net.BytesSent[a.ID], size)
	}
}

func TestSenderBlocksForSerialization(t *testing.T) {
	eng, net, a, b := testNet(t)
	const size = 8 * MB
	var sendDone sim.Time
	eng.Go("send", func(p *sim.Proc) {
		a.Send(p, b.ID, size, nil)
		sendDone = p.Now()
	})
	run(t, eng)
	ser := net.Params().SerializationTime(size)
	if sendDone != sim.Time(ser) {
		t.Errorf("send returned at %v, want %v", sendDone, ser)
	}
}

func TestMessagesFromOneSenderStayOrdered(t *testing.T) {
	eng, _, a, b := testNet(t)
	var got []int
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			m := b.Inbox.Recv(p).(*Message)
			got = append(got, m.Payload.(int))
		}
	})
	eng.Go("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, b.ID, 1<<uint(20-i), i) // decreasing sizes
		}
	})
	run(t, eng)
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v, want [0 1 2 3 4]", got)
		}
	}
}

func TestIncastSharesReceiverBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	dst := net.AddNode("dst")
	const nsenders = 4
	const size = 16 * MB
	for i := 0; i < nsenders; i++ {
		src := net.AddNode("src")
		eng.Go("send", func(p *sim.Proc) {
			src.Send(p, dst.ID, size, nil)
		})
	}
	var last sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		for i := 0; i < nsenders; i++ {
			m := dst.Inbox.Recv(p).(*Message)
			last = m.ArriveAt
		}
	})
	run(t, eng)
	// All four must serialize through dst's single receive engine.
	minTime := net.Params().SerializationTime(nsenders * size)
	if last < sim.Time(minTime) {
		t.Errorf("incast finished at %v, faster than receive line rate %v", last, minTime)
	}
}

func TestDisjointPairsRunInParallel(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	const size = 32 * MB
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		src := net.AddNode("src")
		dst := net.AddNode("dst")
		eng.Go("send", func(p *sim.Proc) { src.Send(p, dst.ID, size, nil) })
		eng.Go("recv", func(p *sim.Proc) {
			m := dst.Inbox.Recv(p).(*Message)
			finish = append(finish, m.ArriveAt)
		})
	}
	run(t, eng)
	oneFlow := sim.Time(net.Params().SerializationTime(size)) + sim.Time(net.Params().Latency)
	for _, f := range finish {
		if f != oneFlow {
			t.Errorf("flow finished at %v, want %v (no cross-pair interference)", f, oneFlow)
		}
	}
}

func TestSendToUnknownNodePanics(t *testing.T) {
	eng, _, a, _ := testNet(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	eng.Go("bad", func(p *sim.Proc) {
		a.Send(p, NodeID(99), 1, nil)
	})
	_ = eng.Run()
}

func TestSerializationTimeZeroAndNegative(t *testing.T) {
	p := DefaultParams()
	if p.SerializationTime(0) != 0 || p.SerializationTime(-5) != 0 {
		t.Error("nonpositive sizes must serialize in zero time")
	}
}
