package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fillAll returns a Snapshot with every int64 field set to v.
func fillAll(v int64) Snapshot {
	var s Snapshot
	rv := reflect.ValueOf(&s).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetInt(v)
	}
	return s
}

// TestSnapshotFieldsAreInt64 pins the shape the reflection tests below
// rely on: Snapshot is a flat struct of int64 counters and gauges.
func TestSnapshotFieldsAreInt64(t *testing.T) {
	rt := reflect.TypeOf(Snapshot{})
	for i := 0; i < rt.NumField(); i++ {
		if f := rt.Field(i); f.Type.Kind() != reflect.Int64 {
			t.Errorf("field %s has kind %v, want int64", f.Name, f.Type.Kind())
		}
	}
}

// TestSnapshotSubCoversEveryField catches the classic drift bug: a new
// counter added to Snapshot but forgotten in Sub, silently reporting zero
// deltas forever. Every field of Sub(7s, 3s) must be nonzero — counters
// subtract to 4, high-water marks and gauges keep the later reading, 7;
// a dropped field stays 0.
func TestSnapshotSubCoversEveryField(t *testing.T) {
	d := fillAll(7).Sub(fillAll(3))
	rv := reflect.ValueOf(d)
	for i := 0; i < rv.NumField(); i++ {
		if rv.Field(i).Int() == 0 {
			t.Errorf("field %s does not participate in Sub (delta is 0)", rv.Type().Field(i).Name)
		}
	}
}

// TestSnapshotStringCoversEveryField catches the other drift direction: a
// field that no longer shows up anywhere in the human-readable rendering.
// Setting any single field must change String's output relative to the
// zero snapshot — whether the field prints directly or feeds a derived
// figure (IOReqs, the MB totals, a section trigger).
func TestSnapshotStringCoversEveryField(t *testing.T) {
	zero := Snapshot{}.String()
	rt := reflect.TypeOf(Snapshot{})
	for i := 0; i < rt.NumField(); i++ {
		var s Snapshot
		// Large enough that byte counts round to a visible 0.1 MB.
		reflect.ValueOf(&s).Elem().Field(i).SetInt(1 << 20)
		if s.String() == zero {
			t.Errorf("field %s does not affect String output", rt.Field(i).Name)
		}
	}
}

// TestSnapshotJSONCoversEveryField asserts the machine-readable form
// carries every field under its own name (no json:"-" hiding, no
// unexported drift).
func TestSnapshotJSONCoversEveryField(t *testing.T) {
	b, err := json.Marshal(fillAll(5))
	if err != nil {
		t.Fatal(err)
	}
	rt := reflect.TypeOf(Snapshot{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if tag := rt.Field(i).Tag.Get("json"); tag != "" {
			name = strings.Split(tag, ",")[0]
		}
		if !strings.Contains(string(b), `"`+name+`"`) {
			t.Errorf("field %s missing from JSON output %s", rt.Field(i).Name, b)
		}
	}
}
