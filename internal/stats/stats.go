// Package stats defines cluster-wide operation counters, the quantities the
// paper reports in Table 4 (registration counts and overheads) and Table 6
// (request, registration, cache-hit, and disk-call counts, plus bytes moved
// between node classes).
package stats

import "fmt"

// Snapshot is a point-in-time view of all cluster counters.
type Snapshot struct {
	// Client request messages by kind (requests, not replies).
	OpenReqs  int64
	ReadReqs  int64
	WriteReqs int64
	SyncReqs  int64

	// Client-side memory registration activity.
	Registrations   int64
	Deregistrations int64
	RegLookups      int64 // registration attempts incl. cache hits
	RegCacheHits    int64

	// Server-side file system calls (the (lseek,read) / (lseek,write)
	// pairs of Table 6).
	FSReadCalls  int64
	FSWriteCalls int64

	// Server-side device operations.
	DeviceReads  int64
	DeviceWrites int64

	// Data payload bytes between node classes.
	BytesClientServer int64
	BytesClientClient int64

	// Sieve decisions across all servers.
	SieveWindows int64
	SieveWins    int64

	// Fault-plane and recovery activity (all zero on fault-free runs).
	Retries          int64 // client re-issues after failures or timeouts
	Timeouts         int64 // client waits that expired
	Fallbacks        int64 // gather operations degraded to pack
	ServerAborts     int64 // requests the I/O daemons abandoned mid-protocol
	Crashes          int64 // daemon crashes executed
	Restarts         int64 // daemon restarts completed
	QPResets         int64 // queue pairs recovered from error state
	FaultWRErrors    int64 // injected work-request completion errors
	FaultDrops       int64 // messages dropped by partitions
	FaultDiskErrors  int64 // injected disk errors and slowdowns
	FaultRegFailures int64 // injected registration rejections

	// Client-side page-cache and lease-coherence activity (all zero unless
	// a pcache is attached).
	CacheHits        int64 // list operations served entirely from resident pages
	CacheMisses      int64 // pages fetched from the servers on demand
	CacheReadAheads  int64 // pages prefetched by the stride detector
	WriteBehindBytes int64 // dirty bytes drained by write-behind flushes
	CoalescedFlushes int64 // flushes merging 2+ dirty pages into one list write
	LeaseReqs        int64 // lease acquisitions clients sent
	LeaseGrants      int64 // leases the manager granted
	LeaseRecalls     int64 // conflicting leases the manager recalled

	// Span-derived gauges (all zero unless span tracing was enabled): the
	// per-stage self-time decomposition of the trace plane, and the peak
	// number of requests simultaneously in dispatch on the busiest server.
	MaxInflight  int64
	StageRegNs   int64 // registration / deregistration
	StagePackNs  int64 // pack/unpack staging copies
	StageWireNs  int64 // fabric serialization, flight, RDMA engines
	StageQueueNs int64 // contended-resource waits (I/O mutex, disk arm)
	StageSieveNs int64 // sieve planning and RMW overhead
	StageDiskNs  int64 // device transfers

	// Metrics-plane readings (all zero unless a metrics registry was
	// attached): the number of completed sampling intervals, and the
	// last-sampled values of the cluster-wide occupancy gauges.
	MetricIntervals int64 // completed sampling intervals on the virtual clock
	NetInflight     int64 // messages in flight across the fabric
	DispatchQueue   int64 // requests inside dispatch across all daemons
	IOQueue         int64 // requests queued on (or holding) the daemons' file phase
	CachePages      int64 // resident pages across all client caches
	CacheDirtyPages int64 // dirty pages across all client caches
}

// IOReqs returns the total read+write+sync request count.
func (s Snapshot) IOReqs() int64 { return s.ReadReqs + s.WriteReqs + s.SyncReqs }

// Sub returns the counter deltas s - t; use it to isolate one experiment's
// activity.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		OpenReqs:          s.OpenReqs - t.OpenReqs,
		ReadReqs:          s.ReadReqs - t.ReadReqs,
		WriteReqs:         s.WriteReqs - t.WriteReqs,
		SyncReqs:          s.SyncReqs - t.SyncReqs,
		Registrations:     s.Registrations - t.Registrations,
		Deregistrations:   s.Deregistrations - t.Deregistrations,
		RegLookups:        s.RegLookups - t.RegLookups,
		RegCacheHits:      s.RegCacheHits - t.RegCacheHits,
		FSReadCalls:       s.FSReadCalls - t.FSReadCalls,
		FSWriteCalls:      s.FSWriteCalls - t.FSWriteCalls,
		DeviceReads:       s.DeviceReads - t.DeviceReads,
		DeviceWrites:      s.DeviceWrites - t.DeviceWrites,
		BytesClientServer: s.BytesClientServer - t.BytesClientServer,
		BytesClientClient: s.BytesClientClient - t.BytesClientClient,
		SieveWindows:      s.SieveWindows - t.SieveWindows,
		SieveWins:         s.SieveWins - t.SieveWins,
		Retries:           s.Retries - t.Retries,
		Timeouts:          s.Timeouts - t.Timeouts,
		Fallbacks:         s.Fallbacks - t.Fallbacks,
		ServerAborts:      s.ServerAborts - t.ServerAborts,
		Crashes:           s.Crashes - t.Crashes,
		Restarts:          s.Restarts - t.Restarts,
		QPResets:          s.QPResets - t.QPResets,
		FaultWRErrors:     s.FaultWRErrors - t.FaultWRErrors,
		FaultDrops:        s.FaultDrops - t.FaultDrops,
		FaultDiskErrors:   s.FaultDiskErrors - t.FaultDiskErrors,
		FaultRegFailures:  s.FaultRegFailures - t.FaultRegFailures,
		CacheHits:         s.CacheHits - t.CacheHits,
		CacheMisses:       s.CacheMisses - t.CacheMisses,
		CacheReadAheads:   s.CacheReadAheads - t.CacheReadAheads,
		WriteBehindBytes:  s.WriteBehindBytes - t.WriteBehindBytes,
		CoalescedFlushes:  s.CoalescedFlushes - t.CoalescedFlushes,
		LeaseReqs:         s.LeaseReqs - t.LeaseReqs,
		LeaseGrants:       s.LeaseGrants - t.LeaseGrants,
		LeaseRecalls:      s.LeaseRecalls - t.LeaseRecalls,
		// MaxInflight is a high-water mark, not a counter: the delta of a
		// peak is meaningless, so keep the later snapshot's reading.
		MaxInflight:  s.MaxInflight,
		StageRegNs:   s.StageRegNs - t.StageRegNs,
		StagePackNs:  s.StagePackNs - t.StagePackNs,
		StageWireNs:  s.StageWireNs - t.StageWireNs,
		StageQueueNs: s.StageQueueNs - t.StageQueueNs,
		StageSieveNs: s.StageSieveNs - t.StageSieveNs,
		StageDiskNs:  s.StageDiskNs - t.StageDiskNs,
		// Interval count is cumulative; the occupancy gauges are
		// instantaneous readings, so — like MaxInflight — deltas are
		// meaningless and the later snapshot's values are kept.
		MetricIntervals: s.MetricIntervals - t.MetricIntervals,
		NetInflight:     s.NetInflight,
		DispatchQueue:   s.DispatchQueue,
		IOQueue:         s.IOQueue,
		CachePages:      s.CachePages,
		CacheDirtyPages: s.CacheDirtyPages,
	}
}

// String formats the snapshot as the rows of Table 6, with a recovery
// suffix when the fault plane saw any action and a span suffix when the
// trace plane recorded stage time.
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"req#=%d open#=%d reg#=%d hit=%d pin#=%d/%d read#=%d write#=%d dev#=%dr/%dw c/s=%.1fMB c/c=%.1fMB",
		s.IOReqs(), s.OpenReqs, s.RegLookups, s.RegCacheHits,
		s.Registrations, s.Deregistrations,
		s.FSReadCalls, s.FSWriteCalls, s.DeviceReads, s.DeviceWrites,
		float64(s.BytesClientServer)/(1<<20), float64(s.BytesClientClient)/(1<<20))
	if s.SieveWindows+s.SieveWins > 0 {
		out += fmt.Sprintf(" sieve=%d/%d", s.SieveWins, s.SieveWindows)
	}
	if s.Retries+s.Timeouts+s.Fallbacks+s.ServerAborts+s.Crashes+s.Restarts+s.QPResets+
		s.FaultWRErrors+s.FaultDrops+s.FaultDiskErrors+s.FaultRegFailures > 0 {
		out += fmt.Sprintf(" retry#=%d timeout#=%d fallback#=%d abort#=%d crash#=%d restart#=%d qpreset#=%d",
			s.Retries, s.Timeouts, s.Fallbacks, s.ServerAborts, s.Crashes, s.Restarts, s.QPResets)
		out += fmt.Sprintf(" inj(wr#=%d drop#=%d disk#=%d reg#=%d)",
			s.FaultWRErrors, s.FaultDrops, s.FaultDiskErrors, s.FaultRegFailures)
	}
	if s.CacheHits+s.CacheMisses+s.CacheReadAheads+s.WriteBehindBytes+
		s.CoalescedFlushes+s.LeaseReqs+s.LeaseGrants+s.LeaseRecalls > 0 {
		out += fmt.Sprintf(" cache(hit#=%d miss#=%d ra#=%d wb=%.1fMB coalesce#=%d) lease(req#=%d grant#=%d recall#=%d)",
			s.CacheHits, s.CacheMisses, s.CacheReadAheads,
			float64(s.WriteBehindBytes)/(1<<20), s.CoalescedFlushes,
			s.LeaseReqs, s.LeaseGrants, s.LeaseRecalls)
	}
	if stage := s.StageRegNs + s.StagePackNs + s.StageWireNs + s.StageQueueNs + s.StageSieveNs + s.StageDiskNs; stage+s.MaxInflight > 0 {
		out += fmt.Sprintf(" inflight=%d stage(reg=%.2fms pack=%.2fms wire=%.2fms queue=%.2fms sieve=%.2fms disk=%.2fms)",
			s.MaxInflight,
			float64(s.StageRegNs)/1e6, float64(s.StagePackNs)/1e6, float64(s.StageWireNs)/1e6,
			float64(s.StageQueueNs)/1e6, float64(s.StageSieveNs)/1e6, float64(s.StageDiskNs)/1e6)
	}
	if s.MetricIntervals+s.NetInflight+s.DispatchQueue+s.IOQueue+s.CachePages+s.CacheDirtyPages > 0 {
		out += fmt.Sprintf(" mx(intervals=%d inflight=%d dispq=%d ioq=%d pages=%d dirty=%d)",
			s.MetricIntervals, s.NetInflight, s.DispatchQueue, s.IOQueue,
			s.CachePages, s.CacheDirtyPages)
	}
	return out
}
