package stats

import (
	"strings"
	"testing"
)

func TestSub(t *testing.T) {
	a := Snapshot{ReadReqs: 10, WriteReqs: 20, FSReadCalls: 100, BytesClientServer: 1 << 20}
	b := Snapshot{ReadReqs: 4, WriteReqs: 5, FSReadCalls: 40, BytesClientServer: 1 << 19}
	d := a.Sub(b)
	if d.ReadReqs != 6 || d.WriteReqs != 15 || d.FSReadCalls != 60 || d.BytesClientServer != 1<<19 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestIOReqs(t *testing.T) {
	s := Snapshot{ReadReqs: 1, WriteReqs: 2, SyncReqs: 3, OpenReqs: 99}
	if s.IOReqs() != 6 {
		t.Errorf("IOReqs = %d, want 6 (opens excluded)", s.IOReqs())
	}
}

func TestString(t *testing.T) {
	s := Snapshot{WriteReqs: 7, RegLookups: 3, BytesClientServer: 2 << 20}
	str := s.String()
	for _, want := range []string{"req#=7", "reg#=3", "c/s=2.0MB"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
