package pvfs

import (
	"fmt"
	"strings"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/metrics"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/stats"
	"pvfsib/internal/trace"
)

// Acct accumulates protocol-level counters maintained by the client library
// (request counts and payload byte totals by traffic class). Higher layers
// (MPI) add client-to-client bytes.
type Acct struct {
	OpenReqs  int64
	ReadReqs  int64
	WriteReqs int64
	SyncReqs  int64

	BytesClientServer int64
	BytesClientClient int64

	// Recovery-layer activity (all zero without a fault plane attached).
	Retries          int64 // chunk/RPC re-issues after a failure or timeout
	Timeouts         int64 // client waits that expired
	Fallbacks        int64 // Gather/Scatter operations degraded to Pack/Unpack
	ServerAborts     int64 // requests the daemons abandoned mid-protocol
	Crashes          int64 // scheduled daemon crashes executed
	Restarts         int64 // daemon restarts completed
	IodRegistrations int64 // manager re-registrations after restart

	// Client-side page-cache and lease activity (all zero without a
	// pcache attached; see internal/pcache).
	CacheHits        int64 // list operations served entirely from resident pages
	CacheMisses      int64 // pages fetched from the servers on demand
	CacheReadAheads  int64 // pages prefetched by the stride detector
	WriteBehindBytes int64 // dirty bytes drained by write-behind flushes
	CoalescedFlushes int64 // flushes merging 2+ dirty pages into one list write
	LeaseReqs        int64 // lease acquisitions clients sent
	LeaseGrants      int64 // leases the manager granted
	LeaseRecalls     int64 // conflicting leases the manager recalled
}

// add accumulates o into a.
func (a *Acct) add(o Acct) {
	a.OpenReqs += o.OpenReqs
	a.ReadReqs += o.ReadReqs
	a.WriteReqs += o.WriteReqs
	a.SyncReqs += o.SyncReqs
	a.BytesClientServer += o.BytesClientServer
	a.BytesClientClient += o.BytesClientClient
	a.Retries += o.Retries
	a.Timeouts += o.Timeouts
	a.Fallbacks += o.Fallbacks
	a.ServerAborts += o.ServerAborts
	a.Crashes += o.Crashes
	a.Restarts += o.Restarts
	a.IodRegistrations += o.IodRegistrations
	a.CacheHits += o.CacheHits
	a.CacheMisses += o.CacheMisses
	a.CacheReadAheads += o.CacheReadAheads
	a.WriteBehindBytes += o.WriteBehindBytes
	a.CoalescedFlushes += o.CoalescedFlushes
	a.LeaseReqs += o.LeaseReqs
	a.LeaseGrants += o.LeaseGrants
	a.LeaseRecalls += o.LeaseRecalls
}

// Cluster is one simulated PVFS deployment: I/O servers (one doubling as
// metadata manager), compute nodes running the client library, and the
// InfiniBand fabric connecting them.
type Cluster struct {
	Eng     *sim.Engine
	Net     *simnet.Network
	Cfg     Config
	Servers []*Server
	Clients []*Client
	Manager *Manager

	// Trace, when non-nil, records request lifecycles and sieve decisions
	// (attach with EnableTracing).
	Trace *trace.Recorder

	// Spans, when non-nil, is the request-scoped span tracer wired into
	// every layer (attach with EnableSpans). Nil keeps every hot path
	// allocation-free.
	Spans *trace.Tracer

	// Faults is the attached fault injector, nil for fault-free runs
	// (attach with Cfg.Faults or AttachFaults).
	Faults *fault.Injector

	// Metrics, when non-nil, is the virtual-time metrics registry wired
	// into every layer (attach with EnableMetrics). Nil keeps every
	// sampling site a single-branch no-op.
	Metrics *metrics.Registry
}

// Acct sums the protocol counters across every entity — the manager, then
// the servers, then the clients, in index order. Each entity tallies its
// own counters (its group's shard touches only its own set), so the
// cluster-wide view is a deterministic fold regardless of shard count.
func (c *Cluster) Acct() Acct {
	var a Acct
	a.add(c.Manager.acct)
	for _, s := range c.Servers {
		a.add(s.acct)
	}
	for _, cl := range c.Clients {
		a.add(cl.acct)
	}
	return a
}

// EnableTracing attaches an event recorder and returns it. The recorder
// keeps one ring of the most recent capacity events per node, registered
// up front so recording stays shard-local under a sharded engine and the
// merged event order is byte-identical at any shard count.
func (c *Cluster) EnableTracing(capacity int) *trace.Recorder {
	c.Trace = trace.NewRecorder(capacity)
	c.Trace.RegisterNodes(c.traceNames()...)
	return c.Trace
}

// traceNames lists every name the layers stamp on events and spans: the
// fabric nodes and the disks, in deterministic cluster order.
func (c *Cluster) traceNames() []string {
	var names []string
	for _, s := range c.Servers {
		names = append(names, s.node.Name, s.dsk.Name())
	}
	for _, cl := range c.Clients {
		names = append(names, cl.node.Name)
	}
	return append(names, c.Manager.node.Name)
}

// EnableSpans attaches a span tracer to every layer of the cluster — the
// fabric, every adapter, every disk, and every daemon's sieve — so each
// request's journey is recorded as one span tree on the virtual clock.
// Call it before running workloads; attaching replaces any previous
// tracer. The same pattern as AttachFaults: one structural hook per
// substrate, detachable with DisableSpans.
func (c *Cluster) EnableSpans() *trace.Tracer {
	tr := trace.NewTracer()
	tr.RegisterNodes(c.traceNames()...)
	c.attachTracer(tr)
	return tr
}

// DisableSpans detaches the span tracer from every layer, restoring the
// allocation-free untraced paths. The old tracer (and its recorded
// spans) stays readable.
func (c *Cluster) DisableSpans() { c.attachTracer(nil) }

func (c *Cluster) attachTracer(tr *trace.Tracer) {
	c.Spans = tr
	c.Net.SetTracer(tr)
	for _, s := range c.Servers {
		s.hca.SetTracer(tr)
		s.dsk.SetTracer(tr)
		s.sieveParams.Tracer = tr
		s.sieveParams.Node = s.node.Name
	}
	for _, cl := range c.Clients {
		cl.hca.SetTracer(tr)
	}
}

// NewCluster builds a cluster with the given server and client counts. All
// connections and pre-registered buffers are set up statically; setup costs
// do not appear in virtual time.
//
// Every server and client gets its own engine group (the manager shares
// server 0's), so with Cfg.Shards > 1 the engine spreads the nodes over
// that many parallel shards — with byte-identical results at any count.
func NewCluster(eng *sim.Engine, cfg Config, nServers, nClients int) *Cluster {
	if nServers < 1 || nClients < 1 {
		sim.Failf("pvfs: need at least one server and one client")
	}
	if cfg.Shards > 0 {
		eng.SetShards(cfg.Shards)
	}
	c := &Cluster{
		Eng: eng,
		Net: simnet.New(eng, cfg.Net),
		Cfg: cfg,
	}
	for i := 0; i < nServers; i++ {
		c.Servers = append(c.Servers, newServer(c, i))
	}
	c.Manager = newManager(c)
	for _, s := range c.Servers {
		// Control connection daemon -> manager, used by a restarted daemon
		// to re-register. Exempt from WR-error injection; for server 0 it
		// is a (working) self-connection through its own adapter.
		sq, mq := ib.Connect(s.hca, c.Manager.hca)
		sq.MarkControl()
		mq.MarkControl()
		s.mgrQP = sq
		s.mgrMu = eng.NewResource(fmt.Sprintf("mgrconn[io%d]", s.idx), 1)
		c.Eng.GoOn(c.Manager.node.Group(), fmt.Sprintf("mgr[<-io%d]", s.idx),
			func(p *sim.Proc) { c.Manager.serve(p, mq) })
		// Daemons register at boot; boot happens statically here.
		c.Manager.iods[s.idx] = 0
	}
	for i := 0; i < nClients; i++ {
		cl := newClient(c, i)
		c.Clients = append(c.Clients, cl)
		cl.connect()
	}
	if cfg.Faults != nil {
		c.AttachFaults(cfg.Faults)
	}
	return c
}

// Snapshot gathers the cluster-wide counters (Table 4 / Table 6 material).
func (c *Cluster) Snapshot() stats.Snapshot {
	a := c.Acct()
	s := stats.Snapshot{
		OpenReqs:          a.OpenReqs,
		ReadReqs:          a.ReadReqs,
		WriteReqs:         a.WriteReqs,
		SyncReqs:          a.SyncReqs,
		BytesClientServer: a.BytesClientServer,
		BytesClientClient: a.BytesClientClient,
		Retries:           a.Retries,
		Timeouts:          a.Timeouts,
		Fallbacks:         a.Fallbacks,
		ServerAborts:      a.ServerAborts,
		Crashes:           a.Crashes,
		Restarts:          a.Restarts,
		CacheHits:         a.CacheHits,
		CacheMisses:       a.CacheMisses,
		CacheReadAheads:   a.CacheReadAheads,
		WriteBehindBytes:  a.WriteBehindBytes,
		CoalescedFlushes:  a.CoalescedFlushes,
		LeaseReqs:         a.LeaseReqs,
		LeaseGrants:       a.LeaseGrants,
		LeaseRecalls:      a.LeaseRecalls,
	}
	if c.Faults != nil {
		fc := c.Faults.Totals()
		s.FaultWRErrors = fc.WRErrors
		s.FaultDrops = fc.Drops
		s.FaultDiskErrors = fc.DiskErrors + fc.DiskSlow
		s.FaultRegFailures = fc.RegFailures
	}
	for _, cl := range c.Clients {
		hc := cl.hca.Counters
		s.Registrations += hc.Registrations
		s.Deregistrations += hc.Deregistrations
		s.RegCacheHits += hc.RegCacheHits
		s.QPResets += hc.QPResets
		// A lookup is either a cache hit, a cache miss (which registers),
		// or a direct registration (no cache involved). Cache misses are
		// counted inside Registrations too, so lookups are hits plus all
		// registrations plus failed attempts.
		s.RegLookups += hc.RegCacheHits + hc.Registrations + hc.RegFailures
	}
	for _, srv := range c.Servers {
		s.QPResets += srv.hca.Counters.QPResets
		fc := srv.fs.Counters
		s.FSReadCalls += fc.ReadCalls
		s.FSWriteCalls += fc.WriteCalls
		dc := srv.dsk.Counters
		s.DeviceReads += dc.ReadOps
		s.DeviceWrites += dc.WriteOps
		s.SieveWindows += srv.SieveStats.Windows
		s.SieveWins += srv.SieveStats.SievedWins
	}
	if c.Spans != nil {
		p := c.Spans.Profile()
		s.MaxInflight = int64(p.MaxInflight())
		s.StageRegNs = p.Stage[trace.StageReg].Ns
		s.StagePackNs = p.Stage[trace.StagePack].Ns
		s.StageWireNs = p.Stage[trace.StageWire].Ns
		s.StageQueueNs = p.Stage[trace.StageQueue].Ns
		s.StageSieveNs = p.Stage[trace.StageSieve].Ns
		s.StageDiskNs = p.Stage[trace.StageDisk].Ns
	}
	if c.Metrics != nil {
		now := c.Eng.Now()
		s.MetricIntervals = c.Metrics.Intervals(now)
		s.NetInflight = c.Metrics.Current("net.inflight")
		s.DispatchQueue = c.Metrics.Current("srv.dispatch.queue")
		s.IOQueue = c.Metrics.Current("srv.io.queue")
		s.CachePages = c.Metrics.Current("pcache.resident")
		s.CacheDirtyPages = c.Metrics.Current("pcache.dirty")
	}
	return s
}

// infraPrefixes name the service processes that legitimately park forever
// waiting for work.
var infraPrefixes = []string{"hca[", "iod[", "mgr[", "cb["}

func isInfra(name string) bool {
	for _, p := range infraPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return strings.HasSuffix(name, ".rxengine")
}

// Run drives the simulation until all application processes finish. The
// infrastructure processes (HCA engines, I/O daemons, the manager) park
// forever waiting for more work; a parked *application* process is a real
// deadlock and is reported.
func (c *Cluster) Run() error {
	err := c.Eng.Run()
	if err == nil {
		return nil
	}
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		return err
	}
	var stuck []string
	for _, name := range de.Parked {
		if !isInfra(name) {
			stuck = append(stuck, name)
		}
	}
	if len(stuck) > 0 {
		return &sim.DeadlockError{Time: de.Time, Parked: stuck}
	}
	return nil
}
