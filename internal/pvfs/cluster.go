package pvfs

import (
	"strings"

	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/stats"
	"pvfsib/internal/trace"
)

// Acct accumulates protocol-level counters maintained by the client library
// (request counts and payload byte totals by traffic class). Higher layers
// (MPI) add client-to-client bytes.
type Acct struct {
	OpenReqs  int64
	ReadReqs  int64
	WriteReqs int64
	SyncReqs  int64

	BytesClientServer int64
	BytesClientClient int64
}

// Cluster is one simulated PVFS deployment: I/O servers (one doubling as
// metadata manager), compute nodes running the client library, and the
// InfiniBand fabric connecting them.
type Cluster struct {
	Eng     *sim.Engine
	Net     *simnet.Network
	Cfg     Config
	Servers []*Server
	Clients []*Client
	Manager *Manager

	// Acct holds the protocol counters.
	Acct Acct

	// Trace, when non-nil, records request lifecycles and sieve decisions
	// (attach with EnableTracing).
	Trace *trace.Recorder
}

// EnableTracing attaches an event recorder keeping the most recent
// capacity events and returns it.
func (c *Cluster) EnableTracing(capacity int) *trace.Recorder {
	c.Trace = trace.NewRecorder(capacity)
	return c.Trace
}

// NewCluster builds a cluster with the given server and client counts. All
// connections and pre-registered buffers are set up statically; setup costs
// do not appear in virtual time.
func NewCluster(eng *sim.Engine, cfg Config, nServers, nClients int) *Cluster {
	if nServers < 1 || nClients < 1 {
		sim.Failf("pvfs: need at least one server and one client")
	}
	c := &Cluster{
		Eng: eng,
		Net: simnet.New(eng, cfg.Net),
		Cfg: cfg,
	}
	for i := 0; i < nServers; i++ {
		c.Servers = append(c.Servers, newServer(c, i))
	}
	c.Manager = newManager(c)
	for i := 0; i < nClients; i++ {
		cl := newClient(c, i)
		c.Clients = append(c.Clients, cl)
		cl.connect()
	}
	return c
}

// Snapshot gathers the cluster-wide counters (Table 4 / Table 6 material).
func (c *Cluster) Snapshot() stats.Snapshot {
	s := stats.Snapshot{
		OpenReqs:          c.Acct.OpenReqs,
		ReadReqs:          c.Acct.ReadReqs,
		WriteReqs:         c.Acct.WriteReqs,
		SyncReqs:          c.Acct.SyncReqs,
		BytesClientServer: c.Acct.BytesClientServer,
		BytesClientClient: c.Acct.BytesClientClient,
	}
	for _, cl := range c.Clients {
		hc := cl.hca.Counters
		s.Registrations += hc.Registrations
		s.Deregistrations += hc.Deregistrations
		s.RegCacheHits += hc.RegCacheHits
		// A lookup is either a cache hit, a cache miss (which registers),
		// or a direct registration (no cache involved). Cache misses are
		// counted inside Registrations too, so lookups are hits plus all
		// registrations plus failed attempts.
		s.RegLookups += hc.RegCacheHits + hc.Registrations + hc.RegFailures
	}
	for _, srv := range c.Servers {
		fc := srv.fs.Counters
		s.FSReadCalls += fc.ReadCalls
		s.FSWriteCalls += fc.WriteCalls
		dc := srv.dsk.Counters
		s.DeviceReads += dc.ReadOps
		s.DeviceWrites += dc.WriteOps
		s.SieveWindows += srv.SieveStats.Windows
		s.SieveWins += srv.SieveStats.SievedWins
	}
	return s
}

// infraPrefixes name the service processes that legitimately park forever
// waiting for work.
var infraPrefixes = []string{"hca[", "iod[", "mgr["}

func isInfra(name string) bool {
	for _, p := range infraPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return strings.HasSuffix(name, ".rxengine")
}

// Run drives the simulation until all application processes finish. The
// infrastructure processes (HCA engines, I/O daemons, the manager) park
// forever waiting for more work; a parked *application* process is a real
// deadlock and is reported.
func (c *Cluster) Run() error {
	err := c.Eng.Run()
	if err == nil {
		return nil
	}
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		return err
	}
	var stuck []string
	for _, name := range de.Parked {
		if !isInfra(name) {
			stuck = append(stuck, name)
		}
	}
	if len(stuck) > 0 {
		return &sim.DeadlockError{Time: de.Time, Parked: stuck}
	}
	return nil
}
