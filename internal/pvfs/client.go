package pvfs

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/ogr"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/trace"
)

// Client is the PVFS library on one compute node.
type Client struct {
	cluster *Cluster
	idx     int
	node    *simnet.Node
	space   *mem.AddrSpace
	hca     *ib.HCA
	cache   *ib.RegCache
	conns   []*clientConn // one per server
	mgr     *clientConn   // connection to the metadata manager
	// cpu serializes host-memory copies (pack/unpack): the per-server
	// transfer legs of one operation run concurrently on the wire, but
	// their staging copies share one processor.
	cpu *sim.Resource
	// nextSeq numbers this client's requests; a retry gets a fresh number
	// so stale replies to abandoned attempts are recognizable.
	nextSeq int64
	// recallFns holds per-file lease recall callbacks (lease.go), run in
	// registration order by the client's recall daemon.
	recallFns map[int64][]*recallFn

	// acct tallies this client's protocol counters. Only the client's own
	// group touches it; Cluster.Acct folds the per-entity sets together.
	acct Acct

	// mx samples recovery pressure (retries, timeouts, backoff time);
	// cacheMX holds the page cache's instrument handles (metrics.go).
	mx      clientMetrics
	cacheMX CacheMetrics
}

// Acct exposes the client's own protocol counters; higher layers that act
// on a client's behalf (the page cache, MPI) tally here.
func (c *Client) Acct() *Acct { return &c.acct }

// seq returns the next request sequence number.
func (c *Client) seq() int64 {
	c.nextSeq++
	return c.nextSeq
}

// clientConn is the client side of one connection.
type clientConn struct {
	srv int
	qp  *ib.QP
	mu  *sim.Resource // one outstanding operation per connection
	// fastBuf is this connection's Fast-RDMA buffer: pack-scheme writes
	// are packed into it, pack-scheme reads are delivered into it.
	fastBuf *ib.Buffer
	// srvAddr/srvKey is the server-side receive buffer for pack writes.
	srvAddr mem.Addr
	srvKey  ib.Key
}

// Space returns the client's simulated address space; applications allocate
// their I/O buffers from it.
func (c *Client) Space() *mem.AddrSpace { return c.space }

// HCA returns the client's adapter.
func (c *Client) HCA() *ib.HCA { return c.hca }

// Node returns the client's fabric node.
func (c *Client) Node() *simnet.Node { return c.node }

// RegCache returns the client's pin-down cache.
func (c *Client) RegCache() *ib.RegCache { return c.cache }

// Cluster returns the cluster this client belongs to.
func (c *Client) Cluster() *Cluster { return c.cluster }

func newClient(cl *Cluster, idx int) *Client {
	name := fmt.Sprintf("cn%d", idx)
	node := cl.Net.AddNodeIn(cl.Eng.AddGroup(name), name)
	space := mem.NewAddrSpace(node.Name)
	c := &Client{
		cluster: cl,
		idx:     idx,
		node:    node,
		space:   space,
		hca:     ib.NewHCA(node, space, cl.Cfg.IB),
	}
	c.cache = ib.NewRegCache(c.hca, cl.Cfg.RegCacheBytes, cl.Cfg.RegCacheEntries)
	c.cpu = cl.Eng.NewResource(fmt.Sprintf("cn%d.cpu", idx), 1)
	return c
}

// connect wires the client to every server and to the manager.
func (c *Client) connect() {
	cl := c.cluster
	for _, s := range cl.Servers {
		cq, sq := ib.Connect(c.hca, s.hca)
		// Client-side Fast-RDMA buffer. Registration of freshly malloc'd
		// setup buffers cannot fail unless the model itself is broken.
		fastAddr := c.space.Malloc(cl.Cfg.FastBufSize)
		fastMR, err := c.hca.RegisterStatic(mem.Extent{Addr: fastAddr, Len: cl.Cfg.FastBufSize})
		sim.Must(err)
		// Server-side receive buffer for pack writes.
		recvAddr := s.space.Malloc(cl.Cfg.FastBufSize)
		recvMR, err := s.hca.RegisterStatic(mem.Extent{Addr: recvAddr, Len: cl.Cfg.FastBufSize})
		sim.Must(err)

		conn := &clientConn{
			srv:     s.idx,
			qp:      cq,
			mu:      cl.Eng.NewResource(fmt.Sprintf("conn[cn%d-io%d]", c.idx, s.idx), 1),
			fastBuf: &ib.Buffer{Addr: fastAddr, Size: cl.Cfg.FastBufSize, MR: fastMR},
			srvAddr: recvAddr,
			srvKey:  recvMR.Key,
		}
		c.conns = append(c.conns, conn)

		sconn := &serverConn{
			srv:     s,
			qp:      sq,
			recvBuf: &ib.Buffer{Addr: recvAddr, Size: cl.Cfg.FastBufSize, MR: recvMR},
			cliAddr: fastAddr,
			cliKey:  fastMR.Key,
		}
		cl.Eng.GoOn(s.node.Group(), fmt.Sprintf("iod[io%d<-cn%d]", s.idx, c.idx), sconn.serve)
	}
	cq, mq := ib.Connect(c.hca, cl.Manager.hca)
	// Metadata is a control path: the fault plane injects no completion
	// errors on it (partitions can still drop its messages).
	cq.MarkControl()
	mq.MarkControl()
	c.mgr = &clientConn{qp: cq, mu: cl.Eng.NewResource(fmt.Sprintf("mgrconn[cn%d]", c.idx), 1)}
	cl.Eng.GoOn(cl.Manager.node.Group(), fmt.Sprintf("mgr[<-cn%d]", c.idx),
		func(p *sim.Proc) { cl.Manager.serve(p, mq) })
	// Lease callback channel, manager → client: the manager pushes recalls,
	// the client's daemon acks them. Control path like the metadata QP.
	cbCli, cbMgr := ib.Connect(c.hca, cl.Manager.hca)
	cbCli.MarkControl()
	cbMgr.MarkControl()
	cl.Manager.cbs[c.idx] = cbMgr
	cl.Eng.GoOn(c.node.Group(), fmt.Sprintf("cb[cn%d]", c.idx),
		func(p *sim.Proc) { c.serveRecalls(p, cbCli) })
}

// FileHandle is an open PVFS file.
type FileHandle struct {
	client     *Client
	id         int64
	name       string
	stripeSize int64
}

// Name returns the file's cluster-wide name.
func (fh *FileHandle) Name() string { return fh.name }

// Client returns the client library instance the handle belongs to.
func (fh *FileHandle) Client() *Client { return fh.client }

// StripeSize returns the file's striping unit.
func (fh *FileHandle) StripeSize() int64 { return fh.stripeSize }

// Open contacts the metadata manager and returns a handle, creating the
// file (with the cluster's default striping) on first open. The manager
// does not participate in data transfers.
func (c *Client) Open(p *sim.Proc, name string) *FileHandle {
	return c.OpenStriped(p, name, 0)
}

// OpenStriped is Open with an explicit striping unit for newly created
// files; stripeSize <= 0 means the cluster default. Striping is immutable
// after creation — opening an existing file returns its original striping.
func (c *Client) OpenStriped(p *sim.Proc, name string, stripeSize int64) *FileHandle {
	c.mgr.mu.Acquire(p)
	defer c.mgr.mu.Release()
	c.acct.OpenReqs++
	resp, err := c.rpc(p, c.mgr, reqSize(0), func(seq int64) any {
		return &reqOpen{Seq: seq, Name: name, StripeSize: stripeSize}
	})
	sim.Must(err)
	r := resp.(*respOpen)
	return &FileHandle{client: c, id: r.FileID, name: name, stripeSize: r.StripeSize}
}

// OpOptions tunes one list-I/O operation. The zero value is the production
// configuration: hybrid transfer, cached OGR registration, server-side
// cost-model sieving.
type OpOptions struct {
	Transfer Transfer
	Reg      RegPolicy
	Sieve    sieve.Mode
	// Allocation is the enclosing application allocation, required by
	// RegDeclared and ignored otherwise.
	Allocation mem.Extent
}

// RegisterRegion pins an application region for use with RegExplicit
// operations (the paper's Section 4.2.1 first scheme). The caller owns the
// region and must ReleaseRegion it.
func (c *Client) RegisterRegion(p *sim.Proc, e mem.Extent) (*ib.MR, error) {
	return c.hca.Register(p, e)
}

// ReleaseRegion unpins a region obtained from RegisterRegion.
func (c *Client) ReleaseRegion(p *sim.Proc, mr *ib.MR) error {
	return c.hca.Deregister(p, mr)
}

// WriteList writes the bytes described by memSegs (client memory, in order)
// to the file regions fileAccs (in order); total lengths must match. This is
// pvfs_write_list: any number of regions, one logical operation.
func (fh *FileHandle) WriteList(p *sim.Proc, memSegs []ib.SGE, fileAccs []OffLen, opts OpOptions) error {
	return fh.listOp(p, memSegs, fileAccs, opts, true)
}

// ReadList reads the file regions fileAccs into the memory segments memSegs.
// Regions beyond end-of-file read as zeros.
func (fh *FileHandle) ReadList(p *sim.Proc, memSegs []ib.SGE, fileAccs []OffLen, opts OpOptions) error {
	return fh.listOp(p, memSegs, fileAccs, opts, false)
}

// Write is the contiguous special case of WriteList.
func (fh *FileHandle) Write(p *sim.Proc, addr mem.Addr, n int64, off int64, opts OpOptions) error {
	return fh.WriteList(p, []ib.SGE{{Addr: addr, Len: n}}, []OffLen{{Off: off, Len: n}}, opts)
}

// Read is the contiguous special case of ReadList.
func (fh *FileHandle) Read(p *sim.Proc, addr mem.Addr, n int64, off int64, opts OpOptions) error {
	return fh.ReadList(p, []ib.SGE{{Addr: addr, Len: n}}, []OffLen{{Off: off, Len: n}}, opts)
}

// Stat returns the file's logical size: the end of the farthest-out byte
// across all stripes. Like PVFS, the metadata manager stores no sizes; the
// client queries every I/O server's local stripe file and maps the local
// ends back to logical offsets.
func (fh *FileHandle) Stat(p *sim.Proc) int64 {
	c := fh.client
	n := len(c.conns)
	sizes := make([]int64, n)
	parentCtx := p.TraceCtx()
	wg := c.cluster.Eng.NewWaitGroup()
	for i := range c.conns {
		i := i
		conn := c.conns[i]
		wg.Add(1)
		p.Go(fmt.Sprintf("stat[cn%d-io%d]", c.idx, i), func(q *sim.Proc) {
			defer wg.Done()
			q.SetTraceCtx(parentCtx)
			conn.mu.Acquire(q)
			defer conn.mu.Release()
			resp, err := c.rpc(q, conn, reqSize(0), func(seq int64) any {
				return &reqStat{Seq: seq, FileID: fh.id}
			})
			sim.Must(err)
			sizes[i] = resp.(*respStat).LocalSize
		})
	}
	wg.Wait(p)
	var eof int64
	for srv, local := range sizes {
		if local == 0 {
			continue
		}
		// The last local byte is at local-1: map it back to its logical
		// offset (inverse of locate).
		stripeWithin := (local - 1) / fh.stripeSize
		globalStripe := stripeWithin*int64(n) + int64(srv)
		end := globalStripe*fh.stripeSize + (local-1)%fh.stripeSize + 1
		if end > eof {
			eof = end
		}
	}
	return eof
}

// Remove unlinks the file from the manager's name space and deletes every
// server's stripe file. Removing a nonexistent name is a no-op.
func (c *Client) Remove(p *sim.Proc, name string) {
	c.mgr.mu.Acquire(p)
	resp, err := c.rpc(p, c.mgr, reqSize(0), func(seq int64) any {
		return &reqUnlink{Seq: seq, Name: name}
	})
	c.mgr.mu.Release()
	sim.Must(err)
	un := resp.(*respUnlink)
	if !un.Found {
		return
	}
	wg := c.cluster.Eng.NewWaitGroup()
	for i := range c.conns {
		conn := c.conns[i]
		wg.Add(1)
		p.Go(fmt.Sprintf("rm[cn%d-io%d]", c.idx, i), func(q *sim.Proc) {
			defer wg.Done()
			conn.mu.Acquire(q)
			defer conn.mu.Release()
			_, err := c.rpc(q, conn, reqSize(0), func(seq int64) any {
				return &reqRemove{Seq: seq, FileID: un.FileID}
			})
			sim.Must(err)
		})
	}
	wg.Wait(p)
}

// Sync flushes the file on every I/O server, like fsync.
func (fh *FileHandle) Sync(p *sim.Proc) {
	c := fh.client
	parentCtx := p.TraceCtx()
	wg := c.cluster.Eng.NewWaitGroup()
	for i := range c.conns {
		conn := c.conns[i]
		wg.Add(1)
		p.Go(fmt.Sprintf("sync[cn%d-io%d]", c.idx, i), func(q *sim.Proc) {
			defer wg.Done()
			q.SetTraceCtx(parentCtx)
			conn.mu.Acquire(q)
			defer conn.mu.Release()
			c.acct.SyncReqs++
			_, err := c.rpc(q, conn, reqSize(0), func(seq int64) any {
				return &reqSync{Seq: seq, FileID: fh.id, Ctx: q.TraceCtx()}
			})
			sim.Must(err)
		})
	}
	wg.Wait(p)
}

// listOp is the traced entry point for one list operation: it opens the
// operation's span (minting a fresh request ID when no MPI-IO layer
// already did) and points the calling process's trace context at it, so
// registration, per-server attempts, and everything they trigger nest
// underneath. With tracing off this is one nil check.
func (fh *FileHandle) listOp(p *sim.Proc, memSegs []ib.SGE, fileAccs []OffLen, opts OpOptions, write bool) error {
	c := fh.client
	tr := c.cluster.Spans
	if tr == nil {
		return fh.doListOp(p, memSegs, fileAccs, opts, write)
	}
	kind := "pvfs.readlist"
	if write {
		kind = "pvfs.writelist"
	}
	var sp trace.Span
	if ctx := trace.Ctx(p.TraceCtx()); ctx != 0 {
		sp = tr.Start(p.Now(), ctx, c.node.Name, kind, trace.StageOther)
	} else {
		sp = tr.NewRequest(p.Now(), c.node.Name, kind)
	}
	sp.SetBytes(ib.TotalLen(memSegs))
	sp.Annotate("segs=%d accs=%d", len(memSegs), len(fileAccs))
	prev := p.TraceCtx()
	p.SetTraceCtx(uint64(sp.Ctx()))
	err := fh.doListOp(p, memSegs, fileAccs, opts, write)
	p.SetTraceCtx(prev)
	sp.EndErr(p.Now(), err)
	return err
}

// doListOp fans a list operation out across the servers, running the
// per-server chunks in parallel.
//
// The transfer scheme is chosen once per operation (Section 4.3's hybrid
// rule: Pack/Unpack when the total size is at most the stripe size, RDMA
// Gather/Scatter above), and for gather operations all the list-I/O buffers
// are registered once, up front, via the configured registration policy —
// matching the paper's design, where e.g. Table 4's OGR case performs a
// single registration for a whole subarray write.
func (fh *FileHandle) doListOp(p *sim.Proc, memSegs []ib.SGE, fileAccs []OffLen, opts OpOptions, write bool) error {
	c := fh.client
	cfg := c.cluster.Cfg
	parts, err := splitOp(memSegs, fileAccs, fh.stripeSize, len(c.conns))
	if err != nil {
		return err
	}
	total := ib.TotalLen(memSegs)
	pack := false
	switch opts.Transfer {
	case Hybrid:
		pack = total <= cfg.FastBufSize
	case ForcePack:
		pack = true
	}
	var reg ogr.Registrar
	var regRes *ogr.Result
	var declMR *ib.MR
	if cfg.Wire == WireStream {
		// Stream sockets: no RDMA, no registration; the chunk functions
		// take the stream path regardless of the pack decision.
		pack = true
	} else if !pack {
		switch opts.Reg {
		case RegExplicit:
			// Application pre-registered everything; nothing to do (the
			// HCA faults on any uncovered segment).
		case RegDeclared:
			// Register the declared enclosing allocation, once, through
			// the cache.
			if opts.Allocation.Len <= 0 {
				return fmt.Errorf("pvfs: RegDeclared requires OpOptions.Allocation")
			}
			mr, err := c.cache.Get(p, opts.Allocation)
			if err != nil {
				return fmt.Errorf("pvfs: declared allocation registration: %w", err)
			}
			declMR = mr
		default:
			var ogrCfg ogr.Config
			reg, ogrCfg = c.registrar(opts.Reg)
			regRes, err = ogr.RegisterBuffers(p, reg, c.space, segExtents(memSegs), ogrCfg)
			if err != nil {
				if c.cluster.recovery() == nil || !recoverable(err) {
					return fmt.Errorf("pvfs: list buffer registration: %w", err)
				}
				// Graceful degradation: pinning pressure keeps the user
				// buffers out of RDMA reach, but the pre-registered
				// Fast-RDMA buffers always work — fall back to Pack/Unpack.
				c.acct.Fallbacks++
				c.cluster.Trace.Recordf(p.Now(), c.node.Name, "fallback-pack", total,
					"registration failed: %v", err)
				pack = true
				regRes = nil
			}
		}
	}
	var firstErr error
	opCtx := p.TraceCtx()
	wg := c.cluster.Eng.NewWaitGroup()
	for _, part := range parts {
		part := part
		wg.Add(1)
		p.Go(fmt.Sprintf("op[cn%d-io%d]", c.idx, part.srv), func(q *sim.Proc) {
			defer wg.Done()
			q.SetTraceCtx(opCtx)
			if err := c.runPart(q, fh.id, part, pack, opts, write); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	wg.Wait(p)
	if regRes != nil {
		if err := ogr.Release(p, reg, regRes); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pvfs: list buffer release: %w", err)
		}
	}
	if declMR != nil {
		if err := c.cache.Put(p, declMR); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pvfs: declared allocation release: %w", err)
		}
	}
	return firstErr
}

// runPart executes one server's share of a list operation, chunk by chunk.
// Under the fault plane each chunk is retried with capped exponential
// backoff — chunks are idempotent (absolute file offsets, no append state) so
// re-issue after a timeout is safe even when the first attempt actually
// completed server-side. A gather chunk that keeps failing degrades the whole
// part to Pack/Unpack through the pre-registered Fast-RDMA buffers and
// restarts it from the beginning (also idempotent).
func (c *Client) runPart(p *sim.Proc, fileID int64, part *serverPart, pack bool, opts OpOptions, write bool) error {
	cfg := c.cluster.Cfg
	rec := c.cluster.recovery()
restart:
	maxBytes := cfg.MaxRequestBytes
	if pack && cfg.Wire == WireVerbs {
		// Pack chunks must fit the Fast-RDMA buffers; streams have no
		// such bound.
		maxBytes = cfg.FastBufSize
	}
	conn := c.conns[part.srv]
	for _, ch := range chunkPart(part, cfg.MaxListCount, maxBytes) {
		gatherFails := 0
		for attempt := 0; ; attempt++ {
			// Every attempt — including re-issues after a timeout or a
			// completion error — is its own span, a sibling of the other
			// attempts under the operation, so retries are visible as
			// repeated bars on the same request row.
			prevCtx := p.TraceCtx()
			sp := c.cluster.Spans.Start(p.Now(), trace.Ctx(prevCtx), c.node.Name, "pvfs.attempt", trace.StageOther)
			if sp.Recording() {
				sp.SetBytes(ch.total)
				sp.Annotate("io%d attempt=%d pack=%t", part.srv, attempt+1, pack)
				p.SetTraceCtx(uint64(sp.Ctx()))
			}
			conn.mu.Acquire(p)
			var err error
			if write {
				err = c.writeChunk(p, conn, fileID, ch, pack, opts)
			} else {
				err = c.readChunk(p, conn, fileID, ch, pack, opts)
			}
			conn.mu.Release()
			p.SetTraceCtx(prevCtx)
			sp.EndErr(p.Now(), err)
			if err == nil {
				break
			}
			if rec == nil || !recoverable(err) {
				return err
			}
			c.acct.Retries++
			c.mx.retries.Add(p.Now(), 1)
			c.resetConn(p, conn)
			c.cluster.Trace.Recordf(p.Now(), c.node.Name, "retry", ch.total,
				"io%d attempt=%d: %v", part.srv, attempt+1, err)
			if !pack {
				gatherFails++
				if gatherFails >= rec.FallbackAfter {
					c.acct.Fallbacks++
					c.cluster.Trace.Recordf(p.Now(), c.node.Name, "fallback-pack", ch.total,
						"io%d gather failed %d times", part.srv, gatherFails)
					pack = true
					goto restart
				}
			}
			if attempt+1 >= rec.MaxRetries {
				return fmt.Errorf("pvfs: cn%d io%d: chunk failed after %d attempts: %w",
					c.idx, part.srv, attempt+1, err)
			}
			t0 := p.Now()
			p.Sleep(retryBackoff(rec, attempt))
			c.mx.backoff.AddSpan(t0, p.Now())
		}
	}
	return nil
}

// cpuCopy charges one staging copy (pack or unpack) on the client's copy
// processor, recorded as a StagePack span on the current request. Note
// the span brackets the Use call, so CPU contention between concurrent
// operations shows up inside the pack span — that wait is part of the
// copy's cost, not separate queueing.
func (c *Client) cpuCopy(p *sim.Proc, kind string, n int64, cost sim.Duration) {
	sp := c.cluster.Spans.Start(p.Now(), trace.Ctx(p.TraceCtx()), c.node.Name, kind, trace.StagePack)
	sp.SetBytes(n)
	c.cpu.Use(p, cost)
	sp.End(p.Now())
}

// registrar returns the registration strategy and OGR config for the policy.
func (c *Client) registrar(policy RegPolicy) (ogr.Registrar, ogr.Config) {
	cfg := c.cluster.Cfg.OGR
	cfg.Params = c.cluster.Cfg.IB
	switch policy {
	case RegCached:
		return ogr.Cached{Cache: c.cache}, cfg
	case RegIndividual:
		cfg.DisableGrouping = true
		return ogr.Direct{HCA: c.hca}, cfg
	default:
		return ogr.Direct{HCA: c.hca}, cfg
	}
}

func (c *Client) writeChunk(p *sim.Proc, conn *clientConn, fileID int64, ch chunk, pack bool, opts OpOptions) error {
	cl := c.cluster
	c.acct.WriteReqs++
	c.acct.BytesClientServer += ch.total
	cl.Trace.Recordf(p.Now(), c.node.Name, "write-req", ch.total,
		"io%d pairs=%d pack=%v", conn.srv, len(ch.accs), pack)
	seq := c.seq()
	req := &reqWrite{Seq: seq, FileID: fileID, Accs: ch.accs, Total: ch.total, SchemePack: pack, Sieve: opts.Sieve, Ctx: p.TraceCtx()}
	if cl.Cfg.Wire == WireStream {
		// Stream sockets: the payload rides in the request. The gather
		// into the socket is one user-to-kernel copy.
		data := make([]byte, 0, ch.total)
		for _, s := range ch.segs {
			b, err := c.space.Read(s.Addr, s.Len)
			if err != nil {
				return fmt.Errorf("pvfs: stream gather: %w", err)
			}
			data = append(data, b...)
		}
		c.cpuCopy(p, "pvfs.pack", ch.total, cl.Cfg.IB.MemcpyTime(ch.total)+cl.Cfg.StreamOverhead)
		req.Stream = true
		req.Data = data
		if err := conn.qp.Send(p, reqSize(len(ch.accs))+int(ch.total), req); err != nil {
			return err
		}
		if _, err := c.recvResp(p, conn, seq); err != nil { // respWrite
			return err
		}
		p.Sleep(cl.Cfg.StreamOverhead)
		return nil
	}
	if pack {
		// Pack the user segments into the Fast-RDMA buffer (one copy),
		// push it, then send the request.
		packed := make([]byte, 0, ch.total)
		for _, s := range ch.segs {
			b, err := c.space.Read(s.Addr, s.Len)
			if err != nil {
				return fmt.Errorf("pvfs: pack gather: %w", err)
			}
			packed = append(packed, b...)
		}
		c.cpuCopy(p, "pvfs.pack", ch.total, cl.Cfg.IB.MemcpyTime(ch.total))
		if err := c.space.Write(conn.fastBuf.Addr, packed); err != nil {
			return err
		}
		if err := conn.qp.RDMAWrite(p, []ib.SGE{{Addr: conn.fastBuf.Addr, Len: ch.total}}, conn.srvAddr, conn.srvKey); err != nil {
			return fmt.Errorf("pvfs: pack push: %w", err)
		}
		if err := conn.qp.Send(p, reqSize(len(ch.accs)), req); err != nil {
			return err
		}
		if _, err := c.recvResp(p, conn, seq); err != nil { // respWrite
			return err
		}
		return nil
	}
	// Gather: buffers were registered at operation start; rendezvous,
	// then RDMA-gather-write straight from user memory.
	if err := conn.qp.Send(p, reqSize(len(ch.accs)), req); err != nil {
		return err
	}
	ready, err := c.recvResp(p, conn, seq)
	if err != nil {
		return err
	}
	r, ok := ready.(*respWriteReady)
	if !ok {
		return fmt.Errorf("pvfs: expected WriteReady, got %T", ready)
	}
	if err := conn.qp.RDMAWrite(p, ch.segs, r.Addr, r.Key); err != nil {
		return fmt.Errorf("pvfs: gather write: %w", err)
	}
	if err := conn.qp.Send(p, reqSize(0), &reqWriteDone{Seq: seq}); err != nil {
		return err
	}
	if _, err := c.recvResp(p, conn, seq); err != nil { // respWrite
		return err
	}
	return nil
}

func (c *Client) readChunk(p *sim.Proc, conn *clientConn, fileID int64, ch chunk, pack bool, opts OpOptions) error {
	cl := c.cluster
	c.acct.ReadReqs++
	c.acct.BytesClientServer += ch.total
	cl.Trace.Recordf(p.Now(), c.node.Name, "read-req", ch.total,
		"io%d pairs=%d pack=%v", conn.srv, len(ch.accs), pack)
	seq := c.seq()
	req := &reqRead{Seq: seq, FileID: fileID, Accs: ch.accs, Total: ch.total, SchemePack: pack, Sieve: opts.Sieve, Ctx: p.TraceCtx()}
	if cl.Cfg.Wire == WireStream {
		req.Stream = true
		p.Sleep(cl.Cfg.StreamOverhead)
		if err := conn.qp.Send(p, reqSize(len(ch.accs)), req); err != nil {
			return err
		}
		resp, err := c.recvResp(p, conn, seq)
		if err != nil {
			return err
		}
		r, ok := resp.(*respRead)
		if !ok {
			return fmt.Errorf("pvfs: expected stream ReadResp, got %T", resp)
		}
		// Kernel-to-user copy plus the scatter into the segments.
		c.cpuCopy(p, "pvfs.unpack", ch.total, cl.Cfg.IB.MemcpyTime(ch.total)+cl.Cfg.StreamOverhead)
		data := r.Data
		for _, s := range ch.segs {
			if err := c.space.Write(s.Addr, data[:s.Len]); err != nil {
				return fmt.Errorf("pvfs: stream scatter: %w", err)
			}
			data = data[s.Len:]
		}
		return nil
	}
	if pack {
		if err := conn.qp.Send(p, reqSize(len(ch.accs)), req); err != nil {
			return err
		}
		if _, err := c.recvResp(p, conn, seq); err != nil { // respRead: data already in fastBuf
			return err
		}
		// Unpack into the user segments (one copy).
		data, err := c.space.Read(conn.fastBuf.Addr, ch.total)
		if err != nil {
			return err
		}
		c.cpuCopy(p, "pvfs.unpack", ch.total, cl.Cfg.IB.MemcpyTime(ch.total))
		for _, s := range ch.segs {
			if err := c.space.Write(s.Addr, data[:s.Len]); err != nil {
				return fmt.Errorf("pvfs: unpack scatter: %w", err)
			}
			data = data[s.Len:]
		}
		return nil
	}
	// Gather/scatter: buffers were registered at operation start;
	// RDMA-read the staged bytes directly into user memory.
	if err := conn.qp.Send(p, reqSize(len(ch.accs)), req); err != nil {
		return err
	}
	ready, err := c.recvResp(p, conn, seq)
	if err != nil {
		return err
	}
	r, ok := ready.(*respRead)
	if !ok {
		return fmt.Errorf("pvfs: expected ReadResp, got %T", ready)
	}
	if err := conn.qp.RDMARead(p, ch.segs, r.Addr, r.Key); err != nil {
		return fmt.Errorf("pvfs: scatter read: %w", err)
	}
	if err := conn.qp.Send(p, reqSize(0), &reqReadDone{Seq: seq}); err != nil {
		return err
	}
	return nil
}

func segExtents(segs []ib.SGE) []mem.Extent {
	out := make([]mem.Extent, len(segs))
	for i, s := range segs {
		out[i] = s.Extent()
	}
	return out
}
