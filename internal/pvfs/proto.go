package pvfs

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sieve"
)

// Wire protocol between clients, I/O daemons, and the metadata manager.
// Request messages are small; bulk data always moves by RDMA.

const (
	reqHeaderBytes  = 64 // fixed request header
	bytesPerPair    = 16 // one file offset-length pair
	smallReplyBytes = 32
)

// reqOpen asks the metadata manager for a file handle, creating the file if
// necessary. StripeSize, when nonzero, sets the new file's striping unit
// (ignored for existing files — striping is immutable after create, as in
// PVFS).
type reqOpen struct {
	Name       string
	StripeSize int64
}

type respOpen struct {
	FileID     int64
	StripeSize int64
}

// reqWrite announces a list write of Total bytes covering Accs (server-local
// regions). With SchemePack the data has already been RDMA-written into the
// connection's receive buffer; with gather the server replies with a staging
// buffer for the client to RDMA-write into.
type reqWrite struct {
	FileID     int64
	Accs       []OffLen
	Total      int64
	SchemePack bool
	Sieve      sieve.Mode
	// Stream carries the payload inline (stream-socket transport).
	Stream bool
	Data   []byte
}

// respWriteReady carries the staging buffer for a gather write.
type respWriteReady struct {
	Addr mem.Addr
	Key  ib.Key
}

// reqWriteDone tells the server the gather RDMA write has completed.
type reqWriteDone struct{}

// respWrite completes a write request.
type respWrite struct{}

// reqRead requests a list read. With SchemePack the server RDMA-writes the
// packed bytes into the connection's client-side buffer before replying;
// with gather the server stages the bytes and the client RDMA-reads them.
type reqRead struct {
	FileID     int64
	Accs       []OffLen
	Total      int64
	SchemePack bool
	Sieve      sieve.Mode
	// Stream asks for the payload inline in the reply.
	Stream bool
}

// respRead completes a pack read (data already delivered) or, for gather,
// announces the staging buffer to RDMA-read from.
type respRead struct {
	Addr mem.Addr
	Key  ib.Key
	// Data carries the payload for stream-transport reads.
	Data []byte
}

// reqReadDone releases the server's staging buffer after a gather read.
type reqReadDone struct{}

// reqSync asks the server to flush the file's dirty data to disk.
type reqSync struct {
	FileID int64
}

type respSync struct{}

// reqStat asks a server for its stripe file's local size, from which the
// client computes the logical end of file.
type reqStat struct {
	FileID int64
}

type respStat struct {
	LocalSize int64
}

// reqRemove asks a server to delete its stripe file.
type reqRemove struct {
	FileID int64
}

type respRemove struct{}

// reqUnlink asks the manager to drop a name from the name space.
type reqUnlink struct {
	Name string
}

type respUnlink struct {
	FileID int64
	Found  bool
}

func reqSize(npairs int) int { return reqHeaderBytes + npairs*bytesPerPair }
