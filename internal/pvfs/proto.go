package pvfs

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sieve"
)

// Wire protocol between clients, I/O daemons, and the metadata manager.
// Request messages are small; bulk data always moves by RDMA.

const (
	reqHeaderBytes  = 64 // fixed request header
	bytesPerPair    = 16 // one file offset-length pair
	smallReplyBytes = 32
)

// reqOpen asks the metadata manager for a file handle, creating the file if
// necessary. StripeSize, when nonzero, sets the new file's striping unit
// (ignored for existing files — striping is immutable after create, as in
// PVFS).
type reqOpen struct {
	Seq        int64
	Name       string
	StripeSize int64
}

type respOpen struct {
	Seq        int64
	FileID     int64
	StripeSize int64
}

// reqWrite announces a list write of Total bytes covering Accs (server-local
// regions). With SchemePack the data has already been RDMA-written into the
// connection's receive buffer; with gather the server replies with a staging
// buffer for the client to RDMA-write into.
type reqWrite struct {
	Seq        int64
	FileID     int64
	Accs       []OffLen
	Total      int64
	SchemePack bool
	Sieve      sieve.Mode
	// Ctx is the sender's packed trace context; server-side spans for
	// this request become children of it. Zero when tracing is off.
	Ctx uint64
	// Stream carries the payload inline (stream-socket transport).
	Stream bool
	Data   []byte
}

// respWriteReady carries the staging buffer for a gather write.
type respWriteReady struct {
	Seq  int64
	Addr mem.Addr
	Key  ib.Key
}

// reqWriteDone tells the server the gather RDMA write has completed.
type reqWriteDone struct{ Seq int64 }

// respWrite completes a write request.
type respWrite struct{ Seq int64 }

// reqRead requests a list read. With SchemePack the server RDMA-writes the
// packed bytes into the connection's client-side buffer before replying;
// with gather the server stages the bytes and the client RDMA-reads them.
type reqRead struct {
	Seq        int64
	FileID     int64
	Accs       []OffLen
	Total      int64
	SchemePack bool
	Sieve      sieve.Mode
	// Ctx is the sender's packed trace context (see reqWrite.Ctx).
	Ctx uint64
	// Stream asks for the payload inline in the reply.
	Stream bool
}

// respRead completes a pack read (data already delivered) or, for gather,
// announces the staging buffer to RDMA-read from.
type respRead struct {
	Seq  int64
	Addr mem.Addr
	Key  ib.Key
	// Data carries the payload for stream-transport reads.
	Data []byte
}

// reqReadDone releases the server's staging buffer after a gather read.
type reqReadDone struct{ Seq int64 }

// reqSync asks the server to flush the file's dirty data to disk.
type reqSync struct {
	Seq    int64
	FileID int64
	// Ctx is the sender's packed trace context (see reqWrite.Ctx).
	Ctx uint64
}

type respSync struct{ Seq int64 }

// reqStat asks a server for its stripe file's local size, from which the
// client computes the logical end of file.
type reqStat struct {
	Seq    int64
	FileID int64
}

type respStat struct {
	Seq       int64
	LocalSize int64
}

// reqRemove asks a server to delete its stripe file.
type reqRemove struct {
	Seq    int64
	FileID int64
}

type respRemove struct{ Seq int64 }

// reqUnlink asks the manager to drop a name from the name space.
type reqUnlink struct {
	Seq  int64
	Name string
}

type respUnlink struct {
	Seq    int64
	FileID int64
	Found  bool
}

// reqIodRegister announces a (re)started I/O daemon to the metadata
// manager. In real PVFS every iod registers at boot; here setup is static,
// so the message only appears when the fault plane restarts a daemon.
type reqIodRegister struct {
	Server int
}

type respIodRegister struct{}

// reqLease asks the manager for a per-file cache lease. A read lease lets
// the client serve reads from cached pages; a write lease additionally
// covers dirty write-behind pages. Any number of clients may hold read
// leases; a write lease is exclusive. Conflicting holders are recalled
// (reqLeaseRecall) before the grant reply is sent, so a granted lease is
// immediately safe to act on.
type reqLease struct {
	Seq    int64
	FileID int64
	Client int // requesting client's index, the lease holder identity
	Write  bool
}

type respLease struct{ Seq int64 }

// reqLeaseRelease returns a lease voluntarily (cache close). Releasing a
// lease the manager does not record — e.g. one already revoked by a recall —
// is a no-op.
type reqLeaseRelease struct {
	Seq    int64
	FileID int64
	Client int
}

type respLeaseRelease struct{ Seq int64 }

// reqLeaseRecall is the manager-to-client callback revoking a lease: the
// client must flush dirty pages, invalidate the file's cached pages, and
// ack. Recalls are idempotent — a resend after a lost ack re-runs a no-op
// flush — and carry their own sequence numbers (manager-minted, so a
// distinct space from client request numbers).
type reqLeaseRecall struct {
	Seq    int64
	FileID int64
}

type respLeaseRecallAck struct{ Seq int64 }

// seqer is implemented by every response that echoes its request's
// sequence number. The recovery layer filters stale responses — replies to
// an attempt the client already timed out and re-issued — by comparing
// sequence numbers; a request retry gets a fresh number.
type seqer interface{ seqNum() int64 }

func (r *respOpen) seqNum() int64       { return r.Seq }
func (r *respUnlink) seqNum() int64     { return r.Seq }
func (r *respWriteReady) seqNum() int64 { return r.Seq }
func (r *respWrite) seqNum() int64      { return r.Seq }
func (r *respRead) seqNum() int64       { return r.Seq }
func (r *respSync) seqNum() int64       { return r.Seq }
func (r *respStat) seqNum() int64       { return r.Seq }
func (r *respRemove) seqNum() int64     { return r.Seq }
func (r *respLease) seqNum() int64      { return r.Seq }

func (r *respLeaseRelease) seqNum() int64 { return r.Seq }

func reqSize(npairs int) int { return reqHeaderBytes + npairs*bytesPerPair }
