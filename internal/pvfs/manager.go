package pvfs

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// fileMeta is the manager's per-file metadata.
type fileMeta struct {
	id         int64
	stripeSize int64
}

// Manager is the PVFS metadata manager. It provides the cluster-wide name
// space and per-file striping metadata; it never participates in data
// transfers. Like the paper's testbed it shares a node with the first I/O
// server when the cluster has one, otherwise it gets its own node.
type Manager struct {
	node  *simnet.Node
	space *mem.AddrSpace
	hca   *ib.HCA

	cfg    *Config
	nextID int64
	byName map[string]*fileMeta
}

func newManager(c *Cluster) *Manager {
	m := &Manager{cfg: &c.Cfg, byName: make(map[string]*fileMeta)}
	if len(c.Servers) > 0 {
		// Co-located with the first I/O server.
		m.node = c.Servers[0].node
		m.space = c.Servers[0].space
		m.hca = c.Servers[0].hca
	} else {
		m.node = c.Net.AddNode("mgr")
		m.space = mem.NewAddrSpace("mgr")
		m.hca = ib.NewHCA(m.node, m.space, c.Cfg.IB)
	}
	return m
}

// serve handles one client's metadata connection.
func (m *Manager) serve(p *sim.Proc, qp *ib.QP) {
	for {
		_, payload := qp.Recv(p)
		switch req := payload.(type) {
		case *reqOpen:
			meta, ok := m.byName[req.Name]
			if !ok {
				stripe := req.StripeSize
				if stripe <= 0 {
					stripe = m.cfg.StripeSize
				}
				meta = &fileMeta{id: m.nextID, stripeSize: stripe}
				m.nextID++
				m.byName[req.Name] = meta
			}
			qp.Send(p, smallReplyBytes, &respOpen{FileID: meta.id, StripeSize: meta.stripeSize})
		case *reqUnlink:
			meta, ok := m.byName[req.Name]
			var id int64
			if ok {
				id = meta.id
				delete(m.byName, req.Name)
			}
			qp.Send(p, smallReplyBytes, &respUnlink{FileID: id, Found: ok})
		default:
			sim.Failf("pvfs: manager: unexpected message %T", payload)
		}
	}
}
