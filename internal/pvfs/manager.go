package pvfs

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// fileMeta is the manager's per-file metadata.
type fileMeta struct {
	id         int64
	stripeSize int64
}

// Manager is the PVFS metadata manager. It provides the cluster-wide name
// space and per-file striping metadata; it never participates in data
// transfers. Like the paper's testbed it shares a node with the first I/O
// server when the cluster has one, otherwise it gets its own node.
type Manager struct {
	node  *simnet.Node
	space *mem.AddrSpace
	hca   *ib.HCA

	cluster *Cluster
	cfg     *Config
	nextID  int64
	byName  map[string]*fileMeta
	// iods records each I/O daemon's last registration time. Daemons
	// register at boot (statically, time zero) and re-register after a
	// fault-plane restart.
	iods map[int]sim.Time

	// Lease coherence state (lease.go). leaseMu is held across a whole
	// recall-then-grant sequence; cbs holds the manager side of each
	// client's callback QP; recallSeq numbers manager-initiated recalls.
	leases    map[int64]*leaseState
	leaseMu   *sim.Resource
	cbs       map[int]*ib.QP
	recallSeq int64

	// acct tallies the manager's counters (lease grants and recalls).
	acct Acct

	// mx samples lease-coherence activity per interval (metrics.go).
	mx managerMetrics
}

func newManager(c *Cluster) *Manager {
	m := &Manager{
		cluster: c,
		cfg:     &c.Cfg,
		byName:  make(map[string]*fileMeta),
		iods:    make(map[int]sim.Time),
		leases:  make(map[int64]*leaseState),
		leaseMu: c.Eng.NewResource("mgr.leases", 1),
		cbs:     make(map[int]*ib.QP),
	}
	if len(c.Servers) > 0 {
		// Co-located with the first I/O server.
		m.node = c.Servers[0].node
		m.space = c.Servers[0].space
		m.hca = c.Servers[0].hca
	} else {
		m.node = c.Net.AddNodeIn(c.Eng.AddGroup("mgr"), "mgr")
		m.space = mem.NewAddrSpace("mgr")
		m.hca = ib.NewHCA(m.node, m.space, c.Cfg.IB)
	}
	return m
}

// serve handles one client's metadata connection.
func (m *Manager) serve(p *sim.Proc, qp *ib.QP) {
	for {
		_, payload := qp.Recv(p)
		switch req := payload.(type) {
		case *reqOpen:
			meta, ok := m.byName[req.Name]
			if !ok {
				stripe := req.StripeSize
				if stripe <= 0 {
					stripe = m.cfg.StripeSize
				}
				meta = &fileMeta{id: m.nextID, stripeSize: stripe}
				m.nextID++
				m.byName[req.Name] = meta
			}
			m.send(p, qp, &respOpen{Seq: req.Seq, FileID: meta.id, StripeSize: meta.stripeSize})
		case *reqUnlink:
			meta, ok := m.byName[req.Name]
			var id int64
			if ok {
				id = meta.id
				delete(m.byName, req.Name)
			}
			m.send(p, qp, &respUnlink{Seq: req.Seq, FileID: id, Found: ok})
		case *reqIodRegister:
			m.iods[req.Server] = p.Now()
			m.send(p, qp, &respIodRegister{})
		case *reqLease:
			m.handleLease(p, qp, req)
		case *reqLeaseRelease:
			m.handleLeaseRelease(p, qp, req)
		default:
			sim.Failf("pvfs: manager: unexpected message %T", payload)
		}
	}
}

// send replies on a metadata connection. Control QPs never see injected
// completion errors, but a partition that happens to cover the manager's
// node can still eat a reply; the client-side timeout covers that, so the
// manager just drops the error and serves on.
func (m *Manager) send(p *sim.Proc, qp *ib.QP, resp any) {
	if err := qp.Send(p, smallReplyBytes, resp); err != nil {
		qp.Reset(p)
	}
}

// IodRegistrations exposes the registration table for tests.
func (m *Manager) IodRegistrations() map[int]sim.Time { return m.iods }
