package pvfs

import (
	"pvfsib/internal/metrics"
)

// serverMetrics is one daemon's instrument set (zero-value sinks when
// metrics are off). All series are stamped with the server's node name
// and only touched by the server group's events.
type serverMetrics struct {
	dispQ  metrics.Gauge // requests inside dispatch (decode to reply)
	ioQ    metrics.Gauge // requests queued on (or holding) the iod's file phase
	ioBusy metrics.Busy  // time the single-threaded file phase was occupied
}

// clientMetrics is one client's recovery-pressure instrument set.
type clientMetrics struct {
	retries  metrics.Counter // chunk/RPC re-issues
	timeouts metrics.Counter // reply waits that expired
	backoff  metrics.Busy    // time spent sleeping in retry backoff
}

// managerMetrics is the metadata manager's lease instrument set.
type managerMetrics struct {
	leaseGrants  metrics.Counter
	leaseRecalls metrics.Counter
}

// CacheMetrics is the instrument set the client page cache
// (internal/pcache) samples through, exposed as a struct of handles so
// the cache — which opens files while the simulation is running — never
// touches the registry itself: all creation happens here at attach time,
// on an idle engine. Zero-value handles are no-op sinks.
type CacheMetrics struct {
	Resident   metrics.Gauge   // pages holding data
	Dirty      metrics.Gauge   // pages with unflushed bytes
	Hits       metrics.Counter // list ops served from resident pages
	Misses     metrics.Counter // pages fetched on demand
	ReadAheads metrics.Counter // pages prefetched by the stride detector
	WBBytes    metrics.Counter // dirty bytes drained by write-behind
	Recalls    metrics.Counter // lease recalls served (flush + invalidate)
}

// CacheMetrics returns the client's page-cache instrument handles. The
// pointer is stable for the client's lifetime; the handles it holds are
// replaced on EnableMetrics/DisableMetrics.
func (c *Client) CacheMetrics() *CacheMetrics { return &c.cacheMX }

func (s *Server) setMetrics(mx *metrics.Registry) {
	if mx == nil {
		s.mx = serverMetrics{}
		return
	}
	name := s.node.Name
	s.mx = serverMetrics{
		dispQ:  mx.Gauge(name, "srv.dispatch.queue"),
		ioQ:    mx.Gauge(name, "srv.io.queue"),
		ioBusy: mx.Busy(name, "srv.io.busy"),
	}
}

func (c *Client) setMetrics(mx *metrics.Registry) {
	if mx == nil {
		c.mx = clientMetrics{}
		c.cacheMX = CacheMetrics{}
		return
	}
	name := c.node.Name
	c.mx = clientMetrics{
		retries:  mx.Counter(name, "rpc.retry"),
		timeouts: mx.Counter(name, "rpc.timeout"),
		backoff:  mx.Busy(name, "rpc.backoff"),
	}
	c.cacheMX = CacheMetrics{
		Resident:   mx.Gauge(name, "pcache.resident"),
		Dirty:      mx.Gauge(name, "pcache.dirty"),
		Hits:       mx.Counter(name, "pcache.hit"),
		Misses:     mx.Counter(name, "pcache.miss"),
		ReadAheads: mx.Counter(name, "pcache.readahead"),
		WBBytes:    mx.Counter(name, "pcache.wb.bytes"),
		Recalls:    mx.Counter(name, "pcache.recall"),
	}
}

func (m *Manager) setMetrics(mx *metrics.Registry) {
	if mx == nil {
		m.mx = managerMetrics{}
		return
	}
	name := m.node.Name
	m.mx = managerMetrics{
		leaseGrants:  mx.Counter(name, "lease.grant"),
		leaseRecalls: mx.Counter(name, "lease.recall"),
	}
}

// EnableMetrics attaches a metrics registry to every layer of the
// cluster — the fabric's ports, every adapter, every disk, every daemon,
// every client, and the manager — and returns it. Sampling is bucketed on
// the virtual clock (no sampler events), storage is per node, and export
// order is canonical, so an enabled registry never changes the timeline
// and its output is byte-identical at any shard count x GOMAXPROCS.
// Attaching replaces any previous registry; detach with DisableMetrics.
// Call while the engine is idle.
func (c *Cluster) EnableMetrics(cfg metrics.Config) *metrics.Registry {
	mx := metrics.NewRegistry(cfg)
	mx.RegisterNodes(c.traceNames()...)
	c.attachMetrics(mx)
	return mx
}

// DisableMetrics detaches the registry from every layer, restoring the
// zero-cost no-op sinks. The old registry (and its recorded series)
// stays readable.
func (c *Cluster) DisableMetrics() { c.attachMetrics(nil) }

func (c *Cluster) attachMetrics(mx *metrics.Registry) {
	c.Metrics = mx
	c.Net.SetMetrics(mx)
	for _, s := range c.Servers {
		s.hca.SetMetrics(mx)
		s.dsk.SetMetrics(mx)
		s.setMetrics(mx)
	}
	for _, cl := range c.Clients {
		cl.hca.SetMetrics(mx)
		cl.setMetrics(mx)
	}
	c.Manager.hca.SetMetrics(mx)
	c.Manager.setMetrics(mx)
}
