package pvfs

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/sim"
)

// Lease-based cache coherence. The metadata manager grants per-file leases
// to clients: any number of concurrent read leases, or one exclusive write
// lease. A conflicting request triggers a callback (recall) to every
// conflicting holder over a dedicated control QP; the holder flushes and
// invalidates its cached pages, acks, and only then does the manager grant
// the new lease. The grant reply therefore certifies that no other client
// holds stale or dirty pages for the file.
//
// Leases survive iod crash/restart untouched: the manager (which never
// crashes — it shares server 0, excluded from crash plans) owns the lease
// table, and iod recovery is invisible to it. Dirty pages covered by a
// write lease simply retry their flushes through the client's idempotent
// chunk recovery. Recalls ride the control plane — exempt from injected
// completion errors but not from partitions — so the manager resends an
// unacked recall with the usual backoff; clients never crash in this
// model, so every recall is eventually acked.

// leaseState is the manager's record for one file: reader holders in grant
// order (a deterministic slice, never a map, so recall order is stable
// across runs) plus at most one writer.
type leaseState struct {
	readers []int
	writer  int // client index, -1 when none
}

// handleLease serves one reqLease on the manager. The lease mutex is held
// across the entire recall-then-grant sequence so two concurrent
// conflicting requests serialize: the second requester's recalls see the
// first one's finished grant state.
func (m *Manager) handleLease(p *sim.Proc, qp *ib.QP, req *reqLease) {
	m.leaseMu.Acquire(p)
	ls := m.leases[req.FileID]
	if ls == nil {
		ls = &leaseState{writer: -1}
		m.leases[req.FileID] = ls
	}
	if req.Write {
		// Exclusive: recall every other holder.
		for len(ls.readers) > 0 {
			r := ls.readers[0]
			if r == req.Client {
				if len(ls.readers) == 1 {
					break
				}
				// Move self to the end so the loop can drain the rest.
				ls.readers = append(ls.readers[1:], r)
				continue
			}
			m.recall(p, r, req.FileID)
			ls.readers = ls.readers[1:]
		}
		if ls.writer >= 0 && ls.writer != req.Client {
			m.recall(p, ls.writer, req.FileID)
		}
		ls.readers = ls.readers[:0]
		ls.writer = req.Client
	} else {
		if ls.writer >= 0 && ls.writer != req.Client {
			m.recall(p, ls.writer, req.FileID)
			ls.writer = -1
		}
		if ls.writer != req.Client && !containsInt(ls.readers, req.Client) {
			ls.readers = append(ls.readers, req.Client)
		}
	}
	m.acct.LeaseGrants++
	m.mx.leaseGrants.Add(p.Now(), 1)
	m.leaseMu.Release()
	m.send(p, qp, &respLease{Seq: req.Seq})
}

// handleLeaseRelease drops a voluntary release into the table.
func (m *Manager) handleLeaseRelease(p *sim.Proc, qp *ib.QP, req *reqLeaseRelease) {
	m.leaseMu.Acquire(p)
	if ls := m.leases[req.FileID]; ls != nil {
		if ls.writer == req.Client {
			ls.writer = -1
		}
		ls.readers = removeInt(ls.readers, req.Client)
	}
	m.leaseMu.Release()
	m.send(p, qp, &respLeaseRelease{Seq: req.Seq})
}

// recall revokes one client's lease on one file and waits for the ack.
// Called with the lease mutex held; the caller removes the holder from the
// table afterwards. Runs on the requesting client's manager serve process,
// so the recalled client's own serve process stays responsive throughout.
func (m *Manager) recall(p *sim.Proc, client int, fileID int64) {
	m.acct.LeaseRecalls++
	m.mx.leaseRecalls.Add(p.Now(), 1)
	rec := m.cluster.recovery()
	qp := m.cbs[client]
	for attempt := 0; ; attempt++ {
		m.recallSeq++
		seq := m.recallSeq
		if err := qp.Send(p, reqSize(0), &reqLeaseRecall{Seq: seq, FileID: fileID}); err != nil {
			// Control QPs see no injected completion errors; only a
			// partition can eat the send, and partitions imply a fault
			// plane with a recovery policy.
			if rec == nil {
				sim.Failf("pvfs: manager: recall send failed without fault plane: %v", err)
			}
			qp.Reset(p)
			p.Sleep(retryBackoff(rec, attempt))
			continue
		}
		if rec == nil {
			for {
				_, payload := qp.Recv(p)
				if ack, ok := payload.(*respLeaseRecallAck); ok && ack.Seq == seq {
					return
				}
			}
		}
		for {
			_, payload, ok := qp.RecvTimeout(p, rec.Timeout)
			if !ok {
				break
			}
			if ack, ok := payload.(*respLeaseRecallAck); ok && ack.Seq == seq {
				return
			}
			// A stale ack from a resent earlier recall: discard and keep
			// waiting out the same timeout window.
		}
		p.Sleep(retryBackoff(rec, attempt))
	}
}

// AcquireLease obtains (or refreshes) this client's lease on the file. A
// write lease covers reads too. The call returns only after every
// conflicting holder has flushed and invalidated, so the caller may cache
// from that point on. Re-acquiring a mode already held is cheap but still
// a manager round trip; callers are expected to track their own mode.
func (fh *FileHandle) AcquireLease(p *sim.Proc, write bool) error {
	c := fh.client
	c.mgr.mu.Acquire(p)
	defer c.mgr.mu.Release()
	c.acct.LeaseReqs++
	_, err := c.rpc(p, c.mgr, reqSize(0), func(seq int64) any {
		return &reqLease{Seq: seq, FileID: fh.id, Client: c.idx, Write: write}
	})
	return err
}

// ReleaseLease returns this client's lease on the file, if any.
func (fh *FileHandle) ReleaseLease(p *sim.Proc) error {
	c := fh.client
	c.mgr.mu.Acquire(p)
	defer c.mgr.mu.Release()
	_, err := c.rpc(p, c.mgr, reqSize(0), func(seq int64) any {
		return &reqLeaseRelease{Seq: seq, FileID: fh.id, Client: c.idx}
	})
	return err
}

// OnLeaseRecall registers a callback run (on the client's recall daemon
// process) whenever the manager recalls this client's lease on the file.
// The callback must leave no stale cached state behind when it returns —
// the daemon acks the recall right after, and the manager then re-grants
// the file to someone else. Returns an unregister function.
func (fh *FileHandle) OnLeaseRecall(fn func(p *sim.Proc)) func() {
	c := fh.client
	if c.recallFns == nil {
		c.recallFns = make(map[int64][]*recallFn)
	}
	entry := &recallFn{fn: fn}
	c.recallFns[fh.id] = append(c.recallFns[fh.id], entry)
	return func() {
		fns := c.recallFns[fh.id]
		for i, e := range fns {
			if e == entry {
				c.recallFns[fh.id] = append(fns[:i:i], fns[i+1:]...)
				return
			}
		}
	}
}

// recallFn wraps a recall callback so unregistration can match by identity.
type recallFn struct{ fn func(p *sim.Proc) }

// serveRecalls is the client's recall daemon: one park-forever process per
// client draining the manager's callback QP. Handlers registered for the
// recalled file run in registration order; duplicate deliveries (a resend
// after a lost ack) re-run them, which the cache makes a no-op.
func (c *Client) serveRecalls(p *sim.Proc, qp *ib.QP) {
	for {
		_, payload := qp.Recv(p)
		req, ok := payload.(*reqLeaseRecall)
		if !ok {
			sim.Failf("pvfs: cn%d recall daemon: unexpected message %T", c.idx, payload)
		}
		fns := c.recallFns[req.FileID]
		for i := 0; i < len(fns); i++ {
			fns[i].fn(p)
		}
		if err := qp.Send(p, smallReplyBytes, &respLeaseRecallAck{Seq: req.Seq}); err != nil {
			// Partition ate the ack; the manager resends the recall and
			// the handlers re-run idempotently.
			qp.Reset(p)
		}
	}
}

// LeaseHolders reports the manager's current holders for a file, for tests:
// reader client indices in grant order and the writer (-1 when none).
func (m *Manager) LeaseHolders(fileID int64) (readers []int, writer int) {
	ls := m.leases[fileID]
	if ls == nil {
		return nil, -1
	}
	return append([]int(nil), ls.readers...), ls.writer
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}
