package pvfs

import (
	"fmt"

	"pvfsib/internal/disk"
	"pvfsib/internal/ib"
	"pvfsib/internal/localfs"
	"pvfsib/internal/mem"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// Server is one PVFS I/O daemon: an HCA, a local file system on a private
// disk, a pool of pre-registered staging buffers, and one handler process
// per client connection.
type Server struct {
	cluster *Cluster
	idx     int
	node    *simnet.Node
	space   *mem.AddrSpace
	hca     *ib.HCA
	dsk     *disk.Disk
	fs      *localfs.FS
	staging *ib.BufPool

	sieveParams sieve.Params
	// SieveStats accumulates the daemon's data sieving decisions.
	SieveStats sieve.Stats

	// ioMu serializes the file-access phase of request processing: the
	// PVFS I/O daemon is single-threaded, so local file operations from
	// different client connections never overlap (network phases do).
	ioMu *sim.Resource

	files map[int64]*localfs.File
}

// HCA returns the server's adapter (for tests and benchmarks).
func (s *Server) HCA() *ib.HCA { return s.hca }

// FS returns the server's local file system.
func (s *Server) FS() *localfs.FS { return s.fs }

// Disk returns the server's disk.
func (s *Server) Disk() *disk.Disk { return s.dsk }

// SieveParams returns the daemon's cost model.
func (s *Server) SieveParams() sieve.Params { return s.sieveParams }

func newServer(c *Cluster, idx int) *Server {
	node := c.Net.AddNode(fmt.Sprintf("io%d", idx))
	space := mem.NewAddrSpace(node.Name)
	s := &Server{
		cluster: c,
		idx:     idx,
		node:    node,
		space:   space,
		hca:     ib.NewHCA(node, space, c.Cfg.IB),
		dsk:     disk.New(c.Eng, node.Name+".disk", c.Cfg.Disk),
		ioMu:    c.Eng.NewResource(fmt.Sprintf("io%d.iod", idx), 1),
		files:   make(map[int64]*localfs.File),
	}
	s.fs = localfs.New(c.Eng, s.dsk, c.Cfg.FS)
	staging, err := ib.NewBufPool(s.hca, c.Cfg.StagingBuffers, c.Cfg.MaxRequestBytes)
	sim.Must(err)
	s.staging = staging
	s.sieveParams = sieve.ModelFromFS(s.fs, c.Cfg.IB.MemcpyBandwidth)
	return s
}

// serverConn is the daemon side of one client connection.
type serverConn struct {
	srv *Server
	qp  *ib.QP
	// recvBuf receives pack-scheme write data from the client.
	recvBuf *ib.Buffer
	// cliAddr/cliKey is the client-side buffer pack-scheme reads are
	// RDMA-written into.
	cliAddr mem.Addr
	cliKey  ib.Key
}

// file returns the local stripe file for a handle, opening it on first use.
func (s *Server) file(p *sim.Proc, id int64) *localfs.File {
	if f, ok := s.files[id]; ok {
		return f
	}
	f := s.fs.Open(p, fmt.Sprintf("f%06d", id))
	s.files[id] = f
	return f
}

// serve is the per-connection handler loop.
func (sc *serverConn) serve(p *sim.Proc) {
	s := sc.srv
	for {
		_, payload := sc.qp.Recv(p)
		switch req := payload.(type) {
		case *reqWrite:
			sc.handleWrite(p, req)
		case *reqRead:
			sc.handleRead(p, req)
		case *reqSync:
			s.ioMu.Acquire(p)
			s.file(p, req.FileID).Sync(p)
			s.ioMu.Release()
			sc.qp.Send(p, smallReplyBytes, &respSync{})
		case *reqStat:
			var size int64
			if f, ok := s.files[req.FileID]; ok {
				size = f.Size()
			}
			sc.qp.Send(p, smallReplyBytes, &respStat{LocalSize: size})
		case *reqRemove:
			s.ioMu.Acquire(p)
			if _, ok := s.files[req.FileID]; ok {
				delete(s.files, req.FileID)
				s.fs.Remove(p, fmt.Sprintf("f%06d", req.FileID))
			}
			s.ioMu.Release()
			sc.qp.Send(p, smallReplyBytes, &respRemove{})
		default:
			sim.Failf("pvfs: server %d: unexpected message %T", s.idx, payload)
		}
	}
}

func (sc *serverConn) handleWrite(p *sim.Proc, req *reqWrite) {
	s := sc.srv
	f := s.file(p, req.FileID)
	var data []byte
	if req.Stream {
		// Stream sockets: kernel-to-user copy of the inline payload.
		p.Sleep(s.cluster.Cfg.IB.MemcpyTime(req.Total) + s.cluster.Cfg.StreamOverhead)
		data = req.Data
	} else if req.SchemePack {
		// Data already landed in the connection receive buffer.
		b, err := s.space.Read(sc.recvBuf.Addr, req.Total)
		if err != nil {
			sim.Failf("pvfs: server %d: pack buffer read: %v", s.idx, err)
		}
		data = b
	} else {
		// Rendezvous: hand the client a staging buffer, wait for the
		// completion notice, then pull the bytes out of it.
		buf := s.staging.Get(p)
		sc.qp.Send(p, smallReplyBytes, &respWriteReady{Addr: buf.Addr, Key: buf.MR.Key})
		_, done := sc.qp.Recv(p)
		if _, ok := done.(*reqWriteDone); !ok {
			sim.Failf("pvfs: server %d: expected WriteDone, got %T", s.idx, done)
		}
		b, err := s.space.Read(buf.Addr, req.Total)
		if err != nil {
			sim.Failf("pvfs: server %d: staging read: %v", s.idx, err)
		}
		data = b
		buf.Put()
	}
	s.ioMu.Acquire(p)
	decs := sieve.Write(p, f, toSieveAccs(req.Accs), data, s.sieveParams, req.Sieve, &s.SieveStats)
	s.ioMu.Release()
	s.traceDecisions(p, "write", decs)
	sc.qp.Send(p, smallReplyBytes, &respWrite{})
}

func (sc *serverConn) handleRead(p *sim.Proc, req *reqRead) {
	s := sc.srv
	f := s.file(p, req.FileID)
	s.ioMu.Acquire(p)
	data, decs := sieve.Read(p, f, toSieveAccs(req.Accs), s.sieveParams, req.Sieve, &s.SieveStats)
	s.ioMu.Release()
	s.traceDecisions(p, "read", decs)
	if req.Stream {
		// Stream sockets: payload rides in the reply (user-to-kernel copy).
		p.Sleep(s.cluster.Cfg.IB.MemcpyTime(req.Total) + s.cluster.Cfg.StreamOverhead)
		sc.qp.Send(p, smallReplyBytes+int(req.Total), &respRead{Data: data})
		return
	}
	buf := s.staging.Get(p)
	if err := s.space.Write(buf.Addr, data); err != nil {
		sim.Failf("pvfs: server %d: staging write: %v", s.idx, err)
	}
	if req.SchemePack {
		// Push the packed bytes straight into the client's buffer. The
		// target is the connection's statically registered fast buffer, so
		// a failure here is a broken connection invariant, not a request
		// error the client could handle.
		sim.Must(sc.qp.RDMAWrite(p, []ib.SGE{{Addr: buf.Addr, Len: req.Total}}, sc.cliAddr, sc.cliKey))
		buf.Put()
		sc.qp.Send(p, smallReplyBytes, &respRead{})
		return
	}
	// Gather: the client scatters out of the staging buffer itself.
	sc.qp.Send(p, smallReplyBytes, &respRead{Addr: buf.Addr, Key: buf.MR.Key})
	_, done := sc.qp.Recv(p)
	if _, ok := done.(*reqReadDone); !ok {
		sim.Failf("pvfs: server %d: expected ReadDone, got %T", s.idx, done)
	}
	buf.Put()
}

// traceDecisions records the daemon's sieve choices for one request.
func (s *Server) traceDecisions(p *sim.Proc, op string, decs []sieve.Decision) {
	if s.cluster.Trace == nil {
		return
	}
	for _, d := range decs {
		s.cluster.Trace.Recordf(p.Now(), s.node.Name, "sieve-"+op, d.Wanted,
			"sieved=%v n=%d span=%d", d.UseSieve, d.N, d.Span)
	}
}

func toSieveAccs(accs []OffLen) []sieve.Access {
	out := make([]sieve.Access, len(accs))
	for i, a := range accs {
		out[i] = sieve.Access{Off: a.Off, Len: a.Len}
	}
	return out
}
