package pvfs

import (
	"fmt"

	"pvfsib/internal/disk"
	"pvfsib/internal/ib"
	"pvfsib/internal/localfs"
	"pvfsib/internal/mem"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/trace"
)

// Server is one PVFS I/O daemon: an HCA, a local file system on a private
// disk, a pool of pre-registered staging buffers, and one handler process
// per client connection.
type Server struct {
	cluster *Cluster
	idx     int
	node    *simnet.Node
	space   *mem.AddrSpace
	hca     *ib.HCA
	dsk     *disk.Disk
	fs      *localfs.FS
	staging *ib.BufPool

	sieveParams sieve.Params
	// SieveStats accumulates the daemon's data sieving decisions.
	SieveStats sieve.Stats

	// ioMu serializes the file-access phase of request processing: the
	// PVFS I/O daemon is single-threaded, so local file operations from
	// different client connections never overlap (network phases do).
	ioMu *sim.Resource

	files map[int64]*localfs.File

	// down marks the daemon crashed (fault plane): handlers abort and all
	// traffic is discarded until restart.
	down bool
	// mgrQP/mgrMu is the daemon's control connection to the metadata
	// manager, used to (re)register after a restart.
	mgrQP *ib.QP
	mgrMu *sim.Resource

	// mx samples dispatch and file-phase pressure (metrics.go); ioHeld
	// stamps when the current holder acquired ioMu, so releaseIO can
	// credit the held span as busy time. Safe as a single field because
	// ioMu is held across it.
	mx     serverMetrics
	ioHeld sim.Time

	// acct tallies this daemon's protocol counters. Only the server's own
	// group touches it; Cluster.Acct folds the per-entity sets together.
	acct Acct
}

// Down reports whether the daemon is crashed (for tests).
func (s *Server) Down() bool { return s.down }

// HCA returns the server's adapter (for tests and benchmarks).
func (s *Server) HCA() *ib.HCA { return s.hca }

// FS returns the server's local file system.
func (s *Server) FS() *localfs.FS { return s.fs }

// Disk returns the server's disk.
func (s *Server) Disk() *disk.Disk { return s.dsk }

// SieveParams returns the daemon's cost model.
func (s *Server) SieveParams() sieve.Params { return s.sieveParams }

func newServer(c *Cluster, idx int) *Server {
	name := fmt.Sprintf("io%d", idx)
	node := c.Net.AddNodeIn(c.Eng.AddGroup(name), name)
	space := mem.NewAddrSpace(node.Name)
	s := &Server{
		cluster: c,
		idx:     idx,
		node:    node,
		space:   space,
		hca:     ib.NewHCA(node, space, c.Cfg.IB),
		dsk:     disk.New(c.Eng, node.Name+".disk", c.Cfg.Disk),
		ioMu:    c.Eng.NewResource(fmt.Sprintf("io%d.iod", idx), 1),
		files:   make(map[int64]*localfs.File),
	}
	s.fs = localfs.New(c.Eng, s.dsk, c.Cfg.FS)
	staging, err := ib.NewBufPool(s.hca, c.Cfg.StagingBuffers, c.Cfg.MaxRequestBytes)
	sim.Must(err)
	s.staging = staging
	s.sieveParams = sieve.ModelFromFS(s.fs, c.Cfg.IB.MemcpyBandwidth)
	return s
}

// serverConn is the daemon side of one client connection.
type serverConn struct {
	srv *Server
	qp  *ib.QP
	// recvBuf receives pack-scheme write data from the client.
	recvBuf *ib.Buffer
	// cliAddr/cliKey is the client-side buffer pack-scheme reads are
	// RDMA-written into.
	cliAddr mem.Addr
	cliKey  ib.Key
}

// file returns the local stripe file for a handle, opening it on first use.
func (s *Server) file(p *sim.Proc, id int64) *localfs.File {
	if f, ok := s.files[id]; ok {
		return f
	}
	f := s.fs.Open(p, fmt.Sprintf("f%06d", id))
	s.files[id] = f
	return f
}

// serve is the per-connection handler loop. A handler can return a pushed-back
// request: under faults, a client that timed out mid-protocol re-issues its
// request while the daemon is still inside the previous attempt's rendezvous
// wait; the handler aborts and hands the new request here for reprocessing.
func (sc *serverConn) serve(p *sim.Proc) {
	s := sc.srv
	var pending any
	for {
		var payload any
		if pending != nil {
			payload, pending = pending, nil
		} else {
			_, payload = sc.qp.Recv(p)
		}
		if s.down {
			// Crashed daemon: drop anything already delivered before the
			// adapter went down.
			continue
		}
		switch req := payload.(type) {
		case *reqWrite:
			sp := s.startDispatch(p, req.Ctx, req.Total)
			pending = sc.handleWrite(p, req)
			s.endDispatch(p, sp)
		case *reqRead:
			sp := s.startDispatch(p, req.Ctx, req.Total)
			pending = sc.handleRead(p, req)
			s.endDispatch(p, sp)
		case *reqSync:
			p.SetTraceCtx(req.Ctx)
			s.acquireIO(p)
			s.file(p, req.FileID).Sync(p)
			s.releaseIO(p)
			sc.send(p, smallReplyBytes, &respSync{Seq: req.Seq})
		case *reqStat:
			var size int64
			if f, ok := s.files[req.FileID]; ok {
				size = f.Size()
			}
			sc.send(p, smallReplyBytes, &respStat{Seq: req.Seq, LocalSize: size})
		case *reqRemove:
			s.acquireIO(p)
			if _, ok := s.files[req.FileID]; ok {
				delete(s.files, req.FileID)
				s.fs.Remove(p, fmt.Sprintf("f%06d", req.FileID))
			}
			s.releaseIO(p)
			sc.send(p, smallReplyBytes, &respRemove{Seq: req.Seq})
		default:
			sim.Failf("pvfs: server %d: unexpected message %T", s.idx, payload)
		}
		p.SetTraceCtx(0)
	}
}

// startDispatch opens the per-request dispatch span under the client's
// wire context and points the handler process's trace context at it, so
// queue, sieve, and disk spans nest underneath. With tracing off both
// the span and the context are zero.
func (s *Server) startDispatch(p *sim.Proc, ctx uint64, bytes int64) trace.Span {
	sp := s.cluster.Spans.Start(p.Now(), trace.Ctx(ctx), s.node.Name, "srv.dispatch", trace.StageOther)
	sp.SetBytes(bytes)
	p.SetTraceCtx(uint64(sp.Ctx()))
	s.mx.dispQ.Add(p.Now(), 1)
	return sp
}

// endDispatch closes the dispatch span opened by startDispatch.
func (s *Server) endDispatch(p *sim.Proc, sp trace.Span) {
	s.mx.dispQ.Add(p.Now(), -1)
	sp.End(p.Now())
}

// acquireIO takes the daemon's I/O mutex, accounting the wait as queue
// time on the current request.
func (s *Server) acquireIO(p *sim.Proc) {
	sp := s.cluster.Spans.Start(p.Now(), trace.Ctx(p.TraceCtx()), s.node.Name, "srv.queue", trace.StageQueue)
	s.mx.ioQ.Add(p.Now(), 1)
	s.ioMu.Acquire(p)
	s.ioHeld = p.Now()
	sp.End(p.Now())
}

// releaseIO drops the daemon's I/O mutex, crediting the held time as
// file-phase busy time.
func (s *Server) releaseIO(p *sim.Proc) {
	held := s.ioHeld
	s.ioMu.Release()
	s.mx.ioQ.Add(p.Now(), -1)
	s.mx.ioBusy.AddSpan(held, p.Now())
}

// send replies to the client. A send can only fail under the fault plane
// (injected completion error, partition drop, crashed adapter); the daemon
// resets its QP so the connection can keep serving and reports failure — the
// client's timeout covers the lost reply, and every request is idempotent.
func (sc *serverConn) send(p *sim.Proc, size int, resp any) bool {
	if err := sc.qp.Send(p, size, resp); err != nil {
		if sc.qp.State() == ib.QPError {
			sc.qp.Reset(p)
		}
		return false
	}
	return true
}

// abort records an aborted request (reply lost, rendezvous expired, or the
// client moved on); the client re-issues it.
func (sc *serverConn) abort(p *sim.Proc, op string, seq int64, why string) {
	s := sc.srv
	s.acct.ServerAborts++
	s.cluster.Trace.Recordf(p.Now(), s.node.Name, "iod-abort", 0, "%s seq=%d: %s", op, seq, why)
}

// waitDone waits for the rendezvous completion notice matching seq. Without a
// fault plane it blocks and anything unexpected is a protocol violation (the
// original strict protocol). Under faults it waits at most ServerTimeout,
// ignores stale notices from attempts the client already abandoned, and pushes
// back any other request for serve to reprocess.
func (sc *serverConn) waitDone(p *sim.Proc, seq int64, write bool) (ok bool, pending any) {
	s := sc.srv
	rec := s.cluster.recovery()
	for {
		var payload any
		if rec == nil {
			_, payload = sc.qp.Recv(p)
		} else {
			var got bool
			_, payload, got = sc.qp.RecvTimeout(p, rec.ServerTimeout)
			if !got {
				return false, nil
			}
		}
		switch d := payload.(type) {
		case *reqWriteDone:
			if write && d.Seq == seq {
				return true, nil
			}
		case *reqReadDone:
			if !write && d.Seq == seq {
				return true, nil
			}
		default:
			if rec != nil {
				return false, payload
			}
		}
		if rec == nil {
			sim.Failf("pvfs: server %d: expected completion for seq %d, got %#v", s.idx, seq, payload)
		}
	}
}

func (sc *serverConn) handleWrite(p *sim.Proc, req *reqWrite) (next any) {
	s := sc.srv
	f := s.file(p, req.FileID)
	var data []byte
	if req.Stream {
		// Stream sockets: kernel-to-user copy of the inline payload.
		sp := s.cluster.Spans.Start(p.Now(), trace.Ctx(p.TraceCtx()), s.node.Name, "srv.unpack", trace.StagePack)
		p.Sleep(s.cluster.Cfg.IB.MemcpyTime(req.Total) + s.cluster.Cfg.StreamOverhead)
		sp.End(p.Now())
		data = req.Data
	} else if req.SchemePack {
		// Data already landed in the connection receive buffer.
		b, err := s.space.Read(sc.recvBuf.Addr, req.Total)
		if err != nil {
			sim.Failf("pvfs: server %d: pack buffer read: %v", s.idx, err)
		}
		data = b
	} else {
		// Rendezvous: hand the client a staging buffer, wait for the
		// completion notice, then pull the bytes out of it.
		buf := s.staging.Get(p)
		if !sc.send(p, smallReplyBytes, &respWriteReady{Seq: req.Seq, Addr: buf.Addr, Key: buf.MR.Key}) {
			buf.Put()
			sc.abort(p, "write", req.Seq, "write-ready reply lost")
			return nil
		}
		ok, pending := sc.waitDone(p, req.Seq, true)
		if !ok {
			buf.Put()
			sc.abort(p, "write", req.Seq, "rendezvous expired")
			return pending
		}
		b, err := s.space.Read(buf.Addr, req.Total)
		if err != nil {
			sim.Failf("pvfs: server %d: staging read: %v", s.idx, err)
		}
		data = b
		buf.Put()
	}
	s.acquireIO(p)
	decs := sieve.Write(p, f, toSieveAccs(req.Accs), data, s.sieveParams, req.Sieve, &s.SieveStats)
	s.releaseIO(p)
	s.traceDecisions(p, "write", decs)
	if !sc.send(p, smallReplyBytes, &respWrite{Seq: req.Seq}) {
		sc.abort(p, "write", req.Seq, "write reply lost")
	}
	return nil
}

func (sc *serverConn) handleRead(p *sim.Proc, req *reqRead) (next any) {
	s := sc.srv
	f := s.file(p, req.FileID)
	s.acquireIO(p)
	data, decs := sieve.Read(p, f, toSieveAccs(req.Accs), s.sieveParams, req.Sieve, &s.SieveStats)
	s.releaseIO(p)
	s.traceDecisions(p, "read", decs)
	if req.Stream {
		// Stream sockets: payload rides in the reply (user-to-kernel copy).
		sp := s.cluster.Spans.Start(p.Now(), trace.Ctx(p.TraceCtx()), s.node.Name, "srv.pack", trace.StagePack)
		p.Sleep(s.cluster.Cfg.IB.MemcpyTime(req.Total) + s.cluster.Cfg.StreamOverhead)
		sp.End(p.Now())
		if !sc.send(p, smallReplyBytes+int(req.Total), &respRead{Seq: req.Seq, Data: data}) {
			sc.abort(p, "read", req.Seq, "stream reply lost")
		}
		return nil
	}
	buf := s.staging.Get(p)
	if err := s.space.Write(buf.Addr, data); err != nil {
		sim.Failf("pvfs: server %d: staging write: %v", s.idx, err)
	}
	if req.SchemePack {
		// Push the packed bytes straight into the client's buffer. The
		// target is the connection's statically registered fast buffer, so
		// fault-free a failure here is a broken connection invariant; under
		// faults it is an injected completion error and the request aborts.
		if err := sc.qp.RDMAWrite(p, []ib.SGE{{Addr: buf.Addr, Len: req.Total}}, sc.cliAddr, sc.cliKey); err != nil {
			if s.cluster.recovery() == nil {
				sim.Must(err)
			}
			buf.Put()
			if sc.qp.State() == ib.QPError {
				sc.qp.Reset(p)
			}
			sc.abort(p, "read", req.Seq, "pack RDMA write failed")
			return nil
		}
		buf.Put()
		if !sc.send(p, smallReplyBytes, &respRead{Seq: req.Seq}) {
			sc.abort(p, "read", req.Seq, "pack reply lost")
		}
		return nil
	}
	// Gather: the client scatters out of the staging buffer itself.
	if !sc.send(p, smallReplyBytes, &respRead{Seq: req.Seq, Addr: buf.Addr, Key: buf.MR.Key}) {
		buf.Put()
		sc.abort(p, "read", req.Seq, "read-ready reply lost")
		return nil
	}
	ok, pending := sc.waitDone(p, req.Seq, false)
	buf.Put()
	if !ok {
		sc.abort(p, "read", req.Seq, "rendezvous expired")
		return pending
	}
	return nil
}

// traceDecisions records the daemon's sieve choices for one request.
func (s *Server) traceDecisions(p *sim.Proc, op string, decs []sieve.Decision) {
	if s.cluster.Trace == nil {
		return
	}
	for _, d := range decs {
		s.cluster.Trace.Recordf(p.Now(), s.node.Name, "sieve-"+op, d.Wanted,
			"sieved=%v n=%d span=%d", d.UseSieve, d.N, d.Span)
	}
}

func toSieveAccs(accs []OffLen) []sieve.Access {
	out := make([]sieve.Access, len(accs))
	for i, a := range accs {
		out[i] = sieve.Access{Off: a.Off, Len: a.Len}
	}
	return out
}
