// Package pvfs implements a PVFS-style parallel file system over the
// simulated InfiniBand verbs layer: a metadata manager, I/O daemons that
// store file stripes in their local file systems, and a client library with
// contiguous and list-I/O (noncontiguous) reads and writes.
//
// The design follows the paper:
//
//   - Files are striped round-robin across the I/O servers (64 kB default).
//   - pvfs_read_list / pvfs_write_list carry up to MaxListCount file
//     offset-length pairs per request message (128 default).
//   - Noncontiguous data moves by one of two schemes, chosen per request by
//     the hybrid policy of Section 4.3: Pack/Unpack through pre-registered
//     Fast-RDMA buffers for transfers at or below the stripe size, RDMA
//     Gather/Scatter with Optimistic Group Registration above it.
//   - I/O daemons apply Active Data Sieving (internal/sieve) per request,
//     deciding via the cost model whether to sieve or access each piece
//     individually.
package pvfs

import (
	"time"

	"pvfsib/internal/disk"
	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/localfs"
	"pvfsib/internal/ogr"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// Transfer selects the noncontiguous data transmission scheme.
type Transfer int

const (
	// Hybrid packs transfers at or below FastBufSize and gathers above
	// (the paper's final design).
	Hybrid Transfer = iota
	// ForcePack always copies through the Fast-RDMA buffers.
	ForcePack
	// ForceGather always uses RDMA Gather/Scatter on the user buffers.
	ForceGather
)

func (t Transfer) String() string {
	switch t {
	case Hybrid:
		return "hybrid"
	case ForcePack:
		return "pack"
	case ForceGather:
		return "gather"
	}
	return "unknown"
}

// Wire selects the transport the PVFS protocol runs over.
type Wire int

const (
	// WireVerbs is the paper's design: RDMA data movement with the
	// hybrid pack/gather policy and memory registration.
	WireVerbs Wire = iota
	// WireStream models the original PVFS transport, stream sockets over
	// TCP/IP: no RDMA, no registration; data rides in the messages with a
	// kernel copy on each side and per-message stack overhead. This is
	// the baseline the paper's Section 3.1 describes.
	WireStream
)

func (w Wire) String() string {
	if w == WireStream {
		return "stream"
	}
	return "verbs"
}

// RegPolicy selects how gather/scatter registers client buffers.
type RegPolicy int

const (
	// RegCached uses Optimistic Group Registration through the pin-down
	// cache (the production configuration).
	RegCached RegPolicy = iota
	// RegOGR uses Optimistic Group Registration with immediate
	// deregistration (Table 4's "OGR" case).
	RegOGR
	// RegIndividual registers every buffer separately and deregisters
	// after the transfer (Table 4's "Indiv." case).
	RegIndividual
	// RegDeclared implements the paper's Section 4.2.1 second scheme: the
	// application declares the actual allocation its buffers came from
	// (OpOptions.Allocation) and the library registers exactly that
	// region, once, through the pin-down cache. Requires an application
	// change, which is why the paper's final design rejects it.
	RegDeclared
	// RegExplicit implements Section 4.2.1's first scheme: the
	// application pre-registered its regions with Client.RegisterRegion
	// and the operation performs no registration work at all; segments
	// must already be covered or the transfer faults.
	RegExplicit
)

// Config assembles the cluster's tunables.
type Config struct {
	// StripeSize is the striping unit (the paper's PVFS default, 64 kB).
	StripeSize int64
	// MaxListCount bounds offset-length pairs per request message.
	MaxListCount int
	// MaxRequestBytes bounds the data carried by one request; it equals
	// the server staging buffer size.
	MaxRequestBytes int64
	// FastBufSize is the Fast-RDMA buffer size and the hybrid pack/gather
	// threshold.
	FastBufSize int64
	// StagingBuffers is the number of staging buffers per server.
	StagingBuffers int
	// Wire selects RDMA verbs or stream sockets as the transport.
	Wire Wire
	// StreamOverhead is the per-message TCP/IP stack cost charged on each
	// side when Wire is WireStream.
	StreamOverhead sim.Duration
	// Transfer is the default transmission scheme (verbs wire only).
	Transfer Transfer
	// Reg is the default registration policy for gather transfers.
	Reg RegPolicy
	// RegCacheBytes and RegCacheEntries size each client's pin-down cache.
	RegCacheBytes   int64
	RegCacheEntries int
	// Sieve is the servers' default sieving mode.
	Sieve sieve.Mode
	// OGR configures group registration.
	OGR ogr.Config

	// Shards, when > 1, partitions the engine into that many parallel
	// shards before the cluster's node groups are created; results are
	// byte-identical at any shard count. Zero leaves the engine's current
	// shard layout (normally 1) untouched.
	Shards int

	// Faults, when non-nil, is compiled into an injector and attached to
	// every substrate layer at cluster construction (see
	// Cluster.AttachFaults). A nil plan costs nothing anywhere.
	Faults *fault.Plan
	// Recovery tunes the client/server timeout-retry machinery. It is
	// consulted only while a fault plane is attached; fault-free runs take
	// the original blocking paths untouched.
	Recovery Recovery

	// Net, IB, Disk, FS are the substrate models.
	Net  simnet.Params
	IB   ib.Params
	Disk disk.Params
	FS   localfs.Params
}

// Recovery parameterizes the fault-recovery layer: per-request client
// timeouts with capped exponential backoff, idempotent re-issue of list-I/O
// chunks, and graceful degradation from RDMA Gather/Scatter to Pack/Unpack
// through the Fast-RDMA buffers.
type Recovery struct {
	// Timeout bounds each client wait for a server response.
	Timeout sim.Duration
	// ServerTimeout bounds the daemon's interior protocol waits (the
	// rendezvous completion notices); on expiry the daemon aborts the
	// request and releases its staging buffer.
	ServerTimeout sim.Duration
	// Backoff is the delay before the first retry; it doubles per attempt
	// up to MaxBackoff.
	Backoff    sim.Duration
	MaxBackoff sim.Duration
	// MaxRetries bounds re-issues of one chunk before the operation fails.
	MaxRetries int
	// FallbackAfter is the number of consecutive failed attempts on a
	// gather/scatter chunk after which the transfer falls back to
	// Pack/Unpack through the pre-registered Fast-RDMA buffers.
	FallbackAfter int
}

// DefaultRecovery returns timeouts sized for the simulated testbed. The
// client timeout must clear the worst case for a *healthy* request — the
// 2003-era disks move ~21 MB/s with 500 µs seeks and the daemon serializes
// its file phase across every client, so a legitimate reply can lag by
// hundreds of milliseconds; a premature timeout re-issues work that is
// still queued and spirals. The interior server timeout only covers the
// network-bound rendezvous window and can be much tighter.
func DefaultRecovery() Recovery {
	return Recovery{
		Timeout:       time.Second,
		ServerTimeout: 50 * time.Millisecond,
		Backoff:       2 * time.Millisecond,
		MaxBackoff:    100 * time.Millisecond,
		MaxRetries:    24,
		FallbackAfter: 3,
	}
}

// DefaultConfig matches the paper's testbed and PVFS defaults.
func DefaultConfig() Config {
	return Config{
		StripeSize:      64 << 10,
		MaxListCount:    128,
		MaxRequestBytes: 4 << 20,
		FastBufSize:     64 << 10,
		StagingBuffers:  8,
		Wire:            WireVerbs,
		StreamOverhead:  30 * time.Microsecond,
		Transfer:        Hybrid,
		Reg:             RegCached,
		RegCacheBytes:   256 << 20,
		RegCacheEntries: 1024,
		Sieve:           sieve.Auto,
		OGR:             ogr.DefaultConfig(),
		Recovery:        DefaultRecovery(),
		Net:             simnet.DefaultParams(),
		IB:              ib.DefaultParams(),
		Disk:            disk.DefaultParams(),
		FS:              localfs.DefaultParams(),
	}
}

// ConventionalConfig models PVFS on a conventional (pre-InfiniBand)
// cluster network: ~80 MB/s of TCP bandwidth with ~60 µs latency, the
// stream-socket transport, and no RDMA. Comparing it against
// DefaultConfig reproduces the paper's Section 1 observation that
// noncontiguous transmission schemes only start to matter once the
// network is fast.
func ConventionalConfig() Config {
	cfg := DefaultConfig()
	cfg.Wire = WireStream
	cfg.Net.Bandwidth = 80 * (1 << 20)
	cfg.Net.Latency = 60 * time.Microsecond
	return cfg
}

// OffLen is one contiguous file region.
type OffLen struct {
	Off int64
	Len int64
}

// End returns the first offset past the region.
func (o OffLen) End() int64 { return o.Off + o.Len }

// TotalOffLen sums the lengths of a region list.
func TotalOffLen(accs []OffLen) int64 {
	var n int64
	for _, a := range accs {
		n += a.Len
	}
	return n
}
