package pvfs

import (
	"fmt"

	"pvfsib/internal/fault"
	"pvfsib/internal/localfs"
	"pvfsib/internal/sim"
)

// AttachFaults compiles the plan and wires the injector into every
// substrate layer: the fabric consults it per message, every adapter per
// work request and registration, every disk per transfer. Scheduled daemon
// crashes are planted on the event timeline (times are relative to the
// current virtual time). Attaching replaces any previous plan; attaching a
// nil plan detaches everything and restores the zero-overhead fault-free
// paths.
//
// The manager is co-located with server 0 (as in the paper's testbed), so
// a plan must not crash server 0 — metadata has no retry story by design.
func (c *Cluster) AttachFaults(plan *fault.Plan) *fault.Injector {
	if plan == nil {
		c.Faults = nil
		c.Net.SetFaults(nil)
		for _, s := range c.Servers {
			s.hca.SetFaults(nil)
			s.dsk.SetFaults(nil)
		}
		for _, cl := range c.Clients {
			cl.hca.SetFaults(nil)
		}
		return nil
	}
	for _, cr := range plan.Crashes {
		if cr.Server <= 0 || cr.Server >= len(c.Servers) {
			sim.Failf("pvfs: fault plan crashes server %d (valid: 1..%d; server 0 hosts the manager)",
				cr.Server, len(c.Servers)-1)
		}
	}
	inj := fault.NewInjector(*plan)
	// Every node (and every disk) draws from its own seeded stream and
	// tallies into its own counter set, so the fault schedule and counts
	// are independent of cross-node event interleaving — byte-identical at
	// any engine shard count — and every injector access is shard-local.
	for _, s := range c.Servers {
		inj.Register(s.node.Name)
		inj.Register(s.dsk.Name())
	}
	for _, cl := range c.Clients {
		inj.Register(cl.node.Name)
	}
	inj.Register(c.Manager.node.Name)
	inj.RegisterLinks(c.Net.NumNodes())
	c.Faults = inj
	c.Net.SetFaults(inj)
	for _, s := range c.Servers {
		s.hca.SetFaults(inj)
		s.dsk.SetFaults(inj)
	}
	for _, cl := range c.Clients {
		cl.hca.SetFaults(inj)
	}
	now := c.Eng.Now()
	for _, cr := range plan.Crashes {
		cr := cr
		srv := c.Servers[cr.Server]
		// Crash and restart land on the crashing daemon's own group: the
		// handlers touch only that server's state, so a sharded engine can
		// replay them without cross-shard traffic. The crash callback gets
		// its scheduled time explicitly — an event callback must not read
		// the engine-wide clock, which other shards may have run past.
		at := now.Add(cr.At)
		c.Eng.ScheduleOn(srv.node.Group(), at, func() { srv.crash(at) })
		c.Eng.GoAtOn(srv.node.Group(), now.Add(cr.At+cr.Down),
			fmt.Sprintf("iod[restart-io%d]", cr.Server),
			func(p *sim.Proc) { srv.restart(p) })
	}
	return inj
}

// recovery returns the retry parameters, or nil when no fault plane is
// attached — the signal for every call site to take the original blocking
// path with no timers and no sequence filtering.
func (c *Cluster) recovery() *Recovery {
	if c.Faults == nil {
		return nil
	}
	return &c.Cfg.Recovery
}

// crash kills the I/O daemon: the adapter discards all traffic, in-flight
// request handling aborts at its next step, and the daemon's open file
// table is lost. The local file system (kernel page cache included)
// survives — this is a daemon restart, not a node power loss, so
// acknowledged data is never lost.
func (s *Server) crash(at sim.Time) {
	s.down = true
	s.hca.SetDown(true)
	s.files = make(map[int64]*localfs.File)
	s.acct.Crashes++
	s.cluster.Trace.Recordf(at, s.node.Name, "iod-crash", 0,
		"daemon down, open files dropped")
}

// restart brings the daemon back: the adapter accepts traffic again and
// the daemon re-registers with the metadata manager, as a freshly booted
// iod would. Stripe files reopen lazily on first access.
func (s *Server) restart(p *sim.Proc) {
	s.down = false
	s.hca.SetDown(false)
	s.acct.Restarts++
	s.registerWithManager(p)
	s.cluster.Trace.Recordf(p.Now(), s.node.Name, "iod-restart", 0, "daemon up, re-registered")
}

// registerWithManager performs the iod registration RPC over the daemon's
// control connection.
func (s *Server) registerWithManager(p *sim.Proc) {
	s.mgrMu.Acquire(p)
	defer s.mgrMu.Release()
	if err := s.mgrQP.Send(p, reqSize(0), &reqIodRegister{Server: s.idx}); err != nil {
		// Control path; only a partition can fail it. The daemon still
		// serves — registration is advisory bookkeeping in this model.
		s.cluster.Trace.Recordf(p.Now(), s.node.Name, "iod-register-fail", 0, "%v", err)
		return
	}
	_, resp := s.mgrQP.Recv(p)
	if _, ok := resp.(*respIodRegister); !ok {
		sim.Failf("pvfs: server %d: expected IodRegister reply, got %T", s.idx, resp)
	}
	s.acct.IodRegistrations++
}
