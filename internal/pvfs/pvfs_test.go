package pvfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

func newCluster(t *testing.T, nServers, nClients int) *Cluster {
	t.Helper()
	return NewCluster(sim.NewEngine(), DefaultConfig(), nServers, nClients)
}

// app runs fn as an application process on the cluster and drives the
// simulation to completion.
func app(t *testing.T, c *Cluster, fn func(p *sim.Proc)) {
	t.Helper()
	c.Eng.Go("app", fn)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// fill allocates a client buffer and fills it with a deterministic pattern.
func fill(cl *Client, n int64, seed byte) (mem.Addr, []byte) {
	addr := cl.Space().Malloc(n)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(int(seed) + i*7 + i/253)
	}
	if err := cl.Space().Write(addr, data); err != nil {
		panic(err)
	}
	return addr, data
}

func TestLocate(t *testing.T) {
	// 64k stripes over 4 servers: offset 0 -> srv0, 64k -> srv1,
	// 256k -> srv0 at local 64k.
	cases := []struct {
		off   int64
		srv   int
		local int64
	}{
		{0, 0, 0},
		{65536, 1, 0},
		{65536*4 + 100, 0, 65536 + 100},
		{65536 * 7, 3, 65536},
		{100, 0, 100},
	}
	for _, c := range cases {
		srv, local := locate(c.off, 65536, 4)
		if srv != c.srv || local != c.local {
			t.Errorf("locate(%d) = (%d, %d), want (%d, %d)", c.off, srv, local, c.srv, c.local)
		}
	}
}

func TestSplitOpPreservesBytesAndOrder(t *testing.T) {
	segs := []ib.SGE{{Addr: 0x1000, Len: 100}, {Addr: 0x9000, Len: 200}}
	accs := []OffLen{{Off: 50, Len: 120}, {Off: 70000, Len: 180}}
	parts, err := splitOp(segs, accs, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range parts {
		if TotalOffLen(p.accs) != ib.TotalLen(p.segs) {
			t.Errorf("server %d: file bytes %d != mem bytes %d", p.srv, TotalOffLen(p.accs), ib.TotalLen(p.segs))
		}
		total += TotalOffLen(p.accs)
	}
	if total != 300 {
		t.Errorf("split total = %d, want 300", total)
	}
}

func TestSplitOpRejectsMismatchedTotals(t *testing.T) {
	_, err := splitOp([]ib.SGE{{Addr: 1, Len: 10}}, []OffLen{{Off: 0, Len: 20}}, 65536, 2)
	if err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestChunkPartLimits(t *testing.T) {
	part := &serverPart{srv: 0}
	for i := 0; i < 300; i++ {
		part.accs = append(part.accs, OffLen{Off: int64(i) * 1000, Len: 100})
		part.segs = append(part.segs, ib.SGE{Addr: mem.Addr(0x10000 + i*200), Len: 100})
	}
	chunks := chunkPart(part, 128, 1<<30)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3 (300 pairs / 128)", len(chunks))
	}
	var pairs int
	for _, ch := range chunks {
		if len(ch.accs) > 128 {
			t.Errorf("chunk has %d pairs", len(ch.accs))
		}
		if ib.TotalLen(ch.segs) != ch.total || TotalOffLen(ch.accs) != ch.total {
			t.Error("chunk streams misaligned")
		}
		pairs += len(ch.accs)
	}
	if pairs != 300 {
		t.Errorf("chunks cover %d pairs", pairs)
	}
}

func TestChunkPartSplitsBigRegionsByBytes(t *testing.T) {
	part := &serverPart{
		srv:  0,
		accs: []OffLen{{Off: 0, Len: 10 << 20}},
		segs: []ib.SGE{{Addr: 0x100000, Len: 10 << 20}},
	}
	chunks := chunkPart(part, 128, 4<<20)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3 (10MB / 4MB)", len(chunks))
	}
	if chunks[0].total != 4<<20 || chunks[2].total != 2<<20 {
		t.Errorf("chunk sizes: %d, %d, %d", chunks[0].total, chunks[1].total, chunks[2].total)
	}
}

func TestContiguousRoundTrip(t *testing.T) {
	c := newCluster(t, 4, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		const n = 1 << 20 // spans many stripes on 4 servers
		src, want := fill(cl, n, 1)
		if err := fh.Write(p, src, n, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		dst := cl.Space().Malloc(n)
		if err := fh.Read(p, dst, n, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, n)
		if !bytes.Equal(got, want) {
			t.Error("contiguous round trip mismatch")
		}
	})
}

func TestDataIsStripedAcrossServers(t *testing.T) {
	c := newCluster(t, 4, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		const n = 512 << 10 // 8 stripes of 64k over 4 servers
		src, _ := fill(cl, n, 9)
		if err := fh.Write(p, src, n, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		for i, s := range c.Servers {
			f := s.file(p, fh.id)
			if f.Size() != 128<<10 {
				t.Errorf("server %d stores %d bytes, want 128k", i, f.Size())
			}
		}
	})
}

func TestListIORoundTripNoncontigBoth(t *testing.T) {
	c := newCluster(t, 4, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		// Noncontiguous memory: rows of a subarray. Noncontiguous file:
		// strided columns. Strides cross stripe boundaries.
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		var want []byte
		cursor := int64(0)
		for i := 0; i < 100; i++ {
			seg := ib.SGE{Addr: base + mem.Addr(i*8192), Len: 1000}
			piece := bytes.Repeat([]byte{byte(i + 1)}, 1000)
			if err := cl.Space().Write(seg.Addr, piece); err != nil {
				t.Fatal(err)
			}
			segs = append(segs, seg)
			accs = append(accs, OffLen{Off: cursor, Len: 1000})
			want = append(want, piece...)
			cursor += 33000 // strides across 64k stripes
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		// Read back into different, also noncontiguous, buffers.
		rbase := cl.Space().Malloc(1 << 20)
		var rsegs []ib.SGE
		for i := 0; i < 100; i++ {
			rsegs = append(rsegs, ib.SGE{Addr: rbase + mem.Addr(i*4096), Len: 1000})
		}
		if err := fh.ReadList(p, rsegs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, s := range rsegs {
			b, _ := cl.Space().Read(s.Addr, s.Len)
			got = append(got, b...)
		}
		if !bytes.Equal(got, want) {
			t.Error("list I/O round trip mismatch")
		}
	})
}

func TestHybridChoosesPackForSmallGatherForLarge(t *testing.T) {
	c := newCluster(t, 1, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		// Small op: must pack (no registrations).
		src, _ := fill(cl, 4096, 3)
		if err := fh.Write(p, src, 4096, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations; n != 0 {
			t.Errorf("small write registered %d times, want 0 (pack path)", n)
		}
		// Large op: must gather (registrations happen).
		big, _ := fill(cl, 1<<20, 4)
		if err := fh.Write(p, big, 1<<20, 1<<20, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations; n == 0 {
			t.Error("large write did not register (gather path)")
		}
	})
}

func TestForcePackAndForceGather(t *testing.T) {
	c := newCluster(t, 1, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		big, want := fill(cl, 256<<10, 5)
		// ForcePack splits into FastBufSize chunks, no registration.
		if err := fh.Write(p, big, 256<<10, 0, OpOptions{Transfer: ForcePack}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations; n != 0 {
			t.Errorf("ForcePack registered %d times", n)
		}
		if got := c.Acct().WriteReqs; got != 4 {
			t.Errorf("ForcePack of 256k sent %d requests, want 4 (64k chunks)", got)
		}
		// ForceGather registers even for tiny ops.
		small, _ := fill(cl, 512, 6)
		if err := fh.Write(p, small, 512, 1<<20, OpOptions{Transfer: ForceGather}); err != nil {
			t.Fatal(err)
		}
		if cl.HCA().Counters.Registrations+cl.HCA().Counters.RegCacheHits == 0 {
			t.Error("ForceGather did not touch registration")
		}
		dst := cl.Space().Malloc(256 << 10)
		if err := fh.Read(p, dst, 256<<10, 0, OpOptions{Transfer: ForceGather}); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, 256<<10)
		if !bytes.Equal(got, want) {
			t.Error("ForcePack-write/ForceGather-read mismatch")
		}
	})
}

func TestChunkingCountsRequests(t *testing.T) {
	c := newCluster(t, 1, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		// 300 tiny pieces -> 3 requests (128-pair limit), single server.
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		for i := 0; i < 300; i++ {
			segs = append(segs, ib.SGE{Addr: base + mem.Addr(i*128), Len: 64})
			accs = append(accs, OffLen{Off: int64(i * 200), Len: 64})
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if c.Acct().WriteReqs != 3 {
			t.Errorf("WriteReqs = %d, want 3", c.Acct().WriteReqs)
		}
	})
}

func TestSyncFlushesToDisk(t *testing.T) {
	c := newCluster(t, 2, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		src, _ := fill(cl, 256<<10, 7)
		if err := fh.Write(p, src, 256<<10, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		var before int64
		for _, s := range c.Servers {
			before += s.Disk().Counters.WriteOps
		}
		if before != 0 {
			t.Errorf("device writes before sync = %d", before)
		}
		fh.Sync(p)
		var after int64
		for _, s := range c.Servers {
			after += s.Disk().Counters.WriteOps
		}
		if after == 0 {
			t.Error("sync reached no disk")
		}
		if c.Acct().SyncReqs != 2 {
			t.Errorf("SyncReqs = %d, want 2 (one per server)", c.Acct().SyncReqs)
		}
	})
}

func TestRegPolicies(t *testing.T) {
	c := newCluster(t, 1, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "file")
		// One allocation carved into 64 rows.
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		for i := 0; i < 64; i++ {
			segs = append(segs, ib.SGE{Addr: base + mem.Addr(i*16384), Len: 8192})
			accs = append(accs, OffLen{Off: int64(i * 8192), Len: 8192})
		}
		for _, s := range segs {
			cl.Space().Write(s.Addr, bytes.Repeat([]byte{1}, int(s.Len)))
		}
		// Individual: one registration per buffer.
		r0 := cl.HCA().Counters.Registrations
		if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegIndividual}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 64 {
			t.Errorf("RegIndividual registered %d, want 64", n)
		}
		// OGR: one registration for the whole span.
		r0 = cl.HCA().Counters.Registrations
		if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegOGR}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 1 {
			t.Errorf("RegOGR registered %d, want 1", n)
		}
		// Cached: first op registers, second hits.
		r0 = cl.HCA().Counters.Registrations
		h0 := cl.HCA().Counters.RegCacheHits
		if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegCached}); err != nil {
			t.Fatal(err)
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegCached}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 1 {
			t.Errorf("RegCached registered %d, want 1", n)
		}
		if h := cl.HCA().Counters.RegCacheHits - h0; h != 1 {
			t.Errorf("RegCached hits = %d, want 1", h)
		}
	})
}

func TestConcurrentClientsDisjointRegions(t *testing.T) {
	c := newCluster(t, 4, 4)
	const per = 256 << 10
	for i, cl := range c.Clients {
		i, cl := i, cl
		c.Eng.Go("rank", func(p *sim.Proc) {
			fh := cl.Open(p, "shared")
			src, _ := fill(cl, per, byte(i+1))
			if err := fh.Write(p, src, per, int64(i)*per, OpOptions{}); err != nil {
				t.Error(err)
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Verify with a fresh read from client 0.
	c2 := c
	c2.Eng.Go("verify", func(p *sim.Proc) {
		cl := c2.Clients[0]
		fh := cl.Open(p, "shared")
		for i := 0; i < 4; i++ {
			dst := cl.Space().Malloc(per)
			if err := fh.Read(p, dst, per, int64(i)*per, OpOptions{}); err != nil {
				t.Error(err)
				return
			}
			got, _ := cl.Space().Read(dst, per)
			_, want := fill(cl, per, byte(i+1))
			if !bytes.Equal(got, want) {
				t.Errorf("client %d's region corrupted", i)
			}
		}
	})
	if err := c2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	c := newCluster(t, 2, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "empty")
		dst := cl.Space().Malloc(4096)
		cl.Space().Write(dst, bytes.Repeat([]byte{0xFF}, 4096))
		if err := fh.Read(p, dst, 4096, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, 4096)
		if !bytes.Equal(got, make([]byte, 4096)) {
			t.Error("unwritten region did not read as zeros")
		}
	})
}

func TestOpenSameNameSharesFile(t *testing.T) {
	c := newCluster(t, 2, 2)
	app(t, c, func(p *sim.Proc) {
		fh0 := c.Clients[0].Open(p, "x")
		fh1 := c.Clients[1].Open(p, "x")
		if fh0.id != fh1.id {
			t.Error("same name, different handles")
		}
		fh2 := c.Clients[0].Open(p, "y")
		if fh2.id == fh0.id {
			t.Error("different names share a handle")
		}
		if c.Acct().OpenReqs != 3 {
			t.Errorf("OpenReqs = %d", c.Acct().OpenReqs)
		}
	})
}

func TestSieveModeHintReachesServer(t *testing.T) {
	c := newCluster(t, 1, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		for i := 0; i < 64; i++ {
			segs = append(segs, ib.SGE{Addr: base + mem.Addr(i*2048), Len: 512})
			accs = append(accs, OffLen{Off: int64(i * 2048), Len: 512})
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		srv := c.Servers[0]
		wins0 := srv.SieveStats.SievedWins
		// Force sieving off via hint: next op must not sieve.
		if err := fh.ReadList(p, segs, accs, OpOptions{Sieve: sieve.Never}); err != nil {
			t.Fatal(err)
		}
		if srv.SieveStats.SievedWins != wins0 {
			t.Error("sieve.Never hint ignored by server")
		}
	})
}

func TestPropertyListIOEquivalentToFlatFile(t *testing.T) {
	type wr struct {
		Off  uint32
		Len  uint16
		Seed byte
	}
	f := func(ops []wr) bool {
		if len(ops) == 0 || len(ops) > 12 {
			return true
		}
		c := NewCluster(sim.NewEngine(), DefaultConfig(), 3, 1)
		cl := c.Clients[0]
		ok := true
		c.Eng.Go("app", func(p *sim.Proc) {
			fh := cl.Open(p, "f")
			model := make([]byte, 1<<20)
			var maxEnd int64
			for _, o := range ops {
				off := int64(o.Off) % (1 << 19)
				n := int64(o.Len)%5000 + 1
				src := cl.Space().Malloc(n)
				data := bytes.Repeat([]byte{o.Seed | 1}, int(n))
				cl.Space().Write(src, data)
				if err := fh.Write(p, src, n, off, OpOptions{}); err != nil {
					ok = false
					return
				}
				copy(model[off:off+n], data)
				if off+n > maxEnd {
					maxEnd = off + n
				}
			}
			dst := cl.Space().Malloc(maxEnd)
			if err := fh.Read(p, dst, maxEnd, 0, OpOptions{}); err != nil {
				ok = false
				return
			}
			got, _ := cl.Space().Read(dst, maxEnd)
			if !bytes.Equal(got, model[:maxEnd]) {
				ok = false
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatComputesLogicalEOF(t *testing.T) {
	c := newCluster(t, 4, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		if fh.Stat(p) != 0 {
			t.Error("empty file should stat 0")
		}
		// Write 100 bytes at a large offset: EOF = off+100.
		src, _ := fill(cl, 100, 1)
		const off = 5*65536 + 1234 // stripe 5 -> server 1
		if err := fh.Write(p, src, 100, off, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := fh.Stat(p); got != off+100 {
			t.Errorf("Stat = %d, want %d", got, off+100)
		}
		// A later write at a smaller offset must not shrink EOF.
		if err := fh.Write(p, src, 100, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := fh.Stat(p); got != off+100 {
			t.Errorf("Stat after small write = %d, want %d", got, off+100)
		}
		// Contiguous multi-stripe write extending the file.
		big, _ := fill(cl, 512<<10, 2)
		if err := fh.Write(p, big, 512<<10, off+100, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := fh.Stat(p); got != off+100+512<<10 {
			t.Errorf("Stat = %d, want %d", got, off+100+512<<10)
		}
	})
}

func TestStatPropertyMatchesMaxWriteEnd(t *testing.T) {
	c := newCluster(t, 3, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		offs := []int64{0, 70000, 1 << 20, 64<<10 - 1, 3 << 20, 123456}
		var maxEnd int64
		for i, off := range offs {
			n := int64(1000 + i*7777)
			src, _ := fill(cl, n, byte(i))
			if err := fh.Write(p, src, n, off, OpOptions{}); err != nil {
				t.Fatal(err)
			}
			if off+n > maxEnd {
				maxEnd = off + n
			}
			if got := fh.Stat(p); got != maxEnd {
				t.Fatalf("after write %d: Stat = %d, want %d", i, got, maxEnd)
			}
		}
	})
}

func TestRemoveDeletesEverywhere(t *testing.T) {
	c := newCluster(t, 4, 2)
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		fh := cl.Open(p, "doomed")
		src, _ := fill(cl, 256<<10, 5)
		if err := fh.Write(p, src, 256<<10, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		cl.Remove(p, "doomed")
		// Re-opening the name creates a fresh, empty file.
		fh2 := c.Clients[1].Open(p, "doomed")
		if fh2.id == fh.id {
			t.Error("recreated file reused the old handle")
		}
		if got := fh2.Stat(p); got != 0 {
			t.Errorf("recreated file Stat = %d, want 0", got)
		}
		dst := c.Clients[1].Space().Malloc(1024)
		c.Clients[1].Space().Write(dst, bytes.Repeat([]byte{0xFF}, 1024))
		if err := fh2.Read(p, dst, 1024, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		got, _ := c.Clients[1].Space().Read(dst, 1024)
		if !bytes.Equal(got, make([]byte, 1024)) {
			t.Error("recreated file still has old data")
		}
		// Removing a nonexistent name is a no-op.
		cl.Remove(p, "never-existed")
	})
}

func TestStreamWireRoundTrip(t *testing.T) {
	cfg := ConventionalConfig()
	c := NewCluster(sim.NewEngine(), cfg, 4, 1)
	cl := c.Clients[0]
	c.Eng.Go("app", func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		// Noncontiguous list write over the stream transport.
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		var want []byte
		for i := 0; i < 50; i++ {
			seg := ib.SGE{Addr: base + mem.Addr(i*8192), Len: 1500}
			piece := bytes.Repeat([]byte{byte(i + 1)}, 1500)
			cl.Space().Write(seg.Addr, piece)
			segs = append(segs, seg)
			accs = append(accs, OffLen{Off: int64(i) * 40000, Len: 1500})
			want = append(want, piece...)
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations; n != 0 {
			t.Errorf("stream transport registered %d times, want 0", n)
		}
		if n := cl.HCA().Counters.RDMAWrites + cl.HCA().Counters.RDMAReads; n != 0 {
			t.Errorf("stream transport used %d RDMA ops", n)
		}
		rbase := cl.Space().Malloc(1 << 20)
		var rsegs []ib.SGE
		for i := 0; i < 50; i++ {
			rsegs = append(rsegs, ib.SGE{Addr: rbase + mem.Addr(i*2048), Len: 1500})
		}
		if err := fh.ReadList(p, rsegs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, s := range rsegs {
			b, _ := cl.Space().Read(s.Addr, s.Len)
			got = append(got, b...)
		}
		if !bytes.Equal(got, want) {
			t.Error("stream round trip mismatch")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWireIsSlowerOnConventionalNet(t *testing.T) {
	// The same 1 MB contiguous write on the IB config and the
	// conventional config: the conventional network must be much slower.
	run := func(cfg Config) sim.Duration {
		c := NewCluster(sim.NewEngine(), cfg, 2, 1)
		cl := c.Clients[0]
		var elapsed sim.Duration
		c.Eng.Go("app", func(p *sim.Proc) {
			fh := cl.Open(p, "f")
			src, _ := fill(cl, 1<<20, 1)
			t0 := p.Now()
			if err := fh.Write(p, src, 1<<20, 0, OpOptions{}); err != nil {
				t.Error(err)
			}
			elapsed = p.Now().Sub(t0)
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	ib := run(DefaultConfig())
	tcp := run(ConventionalConfig())
	if tcp < 4*ib {
		t.Errorf("conventional network (%v) should be much slower than IB (%v)", tcp, ib)
	}
}

func TestPerFileStriping(t *testing.T) {
	c := newCluster(t, 4, 2)
	app(t, c, func(p *sim.Proc) {
		cl := c.Clients[0]
		// A 4 kB-striped file spreads small writes across servers.
		fine := cl.OpenStriped(p, "fine", 4096)
		if fine.StripeSize() != 4096 {
			t.Fatalf("StripeSize = %d", fine.StripeSize())
		}
		src, want := fill(cl, 64<<10, 3)
		if err := fine.Write(p, src, 64<<10, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		// 64 kB over 4 kB stripes on 4 servers: each server holds 16 kB.
		for i, s := range c.Servers {
			if got := s.file(p, fine.id).Size(); got != 16<<10 {
				t.Errorf("server %d holds %d bytes, want 16k", i, got)
			}
		}
		// A second client opening the same name sees the same striping.
		other := c.Clients[1].Open(p, "fine")
		if other.StripeSize() != 4096 {
			t.Errorf("existing file striping = %d, want 4096", other.StripeSize())
		}
		// Round trip across the unusual striping.
		dst := c.Clients[1].Space().Malloc(64 << 10)
		if err := other.Read(p, dst, 64<<10, 0, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		got, _ := c.Clients[1].Space().Read(dst, 64<<10)
		if !bytes.Equal(got, want) {
			t.Error("fine-striped round trip mismatch")
		}
		// Stat works with the per-file striping.
		if got := other.Stat(p); got != 64<<10 {
			t.Errorf("Stat = %d, want 64k", got)
		}
		// The default-striped file is unaffected.
		coarse := cl.Open(p, "coarse")
		if coarse.StripeSize() != c.Cfg.StripeSize {
			t.Errorf("default striping = %d", coarse.StripeSize())
		}
	})
}

// TestDeterminism runs an identical mixed workload twice on fresh clusters
// and requires bit-identical outcomes: same final virtual time and same
// counter snapshot. The whole evaluation methodology rests on this.
func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, string) {
		c := newCluster(t, 3, 2)
		for i, cl := range c.Clients {
			i, cl := i, cl
			c.Eng.Go("app", func(p *sim.Proc) {
				fh := cl.Open(p, "det")
				segs := make([]ib.SGE, 0, 40)
				accs := make([]OffLen, 0, 40)
				base := cl.Space().Malloc(1 << 20)
				for j := 0; j < 40; j++ {
					seg := ib.SGE{Addr: base + mem.Addr(j*9000), Len: 1500}
					cl.Space().Write(seg.Addr, bytes.Repeat([]byte{byte(i + j)}, 1500))
					segs = append(segs, seg)
					accs = append(accs, OffLen{Off: int64(j*7000 + i*300), Len: 1500})
				}
				if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
					t.Error(err)
				}
				fh.Sync(p)
				if err := fh.ReadList(p, segs, accs, OpOptions{}); err != nil {
					t.Error(err)
				}
			})
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Eng.Now(), c.Snapshot().String()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Errorf("virtual end times differ: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("snapshots differ:\n%s\n%s", s1, s2)
	}
}

// TestPropertySplitOpStreamEquality checks, for random operations, that the
// per-server parts carry exactly the same bytes in the same order as a
// byte-by-byte reference striping.
func TestPropertySplitOpStreamEquality(t *testing.T) {
	f := func(segLens, accLens []uint16, stripeShift uint8) bool {
		if len(segLens) == 0 || len(accLens) == 0 {
			return true
		}
		if len(segLens) > 12 {
			segLens = segLens[:12]
		}
		if len(accLens) > 12 {
			accLens = accLens[:12]
		}
		stripe := int64(1) << (6 + stripeShift%8) // 64B..8kB
		const nsrv = 3
		// Build memory segments (synthetic addresses) and file regions
		// with equal totals.
		var segs []ib.SGE
		var total int64
		addr := mem.Addr(0x100000)
		for _, l := range segLens {
			n := int64(l)%2000 + 1
			segs = append(segs, ib.SGE{Addr: addr, Len: n})
			addr += mem.Addr(n + 512)
			total += n
		}
		var accs []OffLen
		remaining := total
		off := int64(0)
		for i, l := range accLens {
			n := int64(l)%3000 + 1
			if i == len(accLens)-1 || n > remaining {
				n = remaining
			}
			if n == 0 {
				break
			}
			accs = append(accs, OffLen{Off: off, Len: n})
			off += n + int64(l)%777
			remaining -= n
		}
		if TotalOffLen(accs) != total {
			return true // couldn't build equal totals; skip
		}

		parts, err := splitOp(segs, accs, stripe, nsrv)
		if err != nil {
			return false
		}
		// Reference: walk both streams byte by byte, assigning each byte
		// its (server, local offset) and memory address.
		type byteRef struct {
			addr  mem.Addr
			local int64
		}
		want := make(map[int][]byteRef)
		si, so := 0, int64(0)
		for _, a := range accs {
			for k := int64(0); k < a.Len; k++ {
				srv, local := locate(a.Off+k, stripe, nsrv)
				want[srv] = append(want[srv], byteRef{segs[si].Addr + mem.Addr(so), local})
				so++
				if so == segs[si].Len {
					si, so = si+1, 0
				}
			}
		}
		for _, part := range parts {
			var got []byteRef
			msi, mso := 0, int64(0)
			for _, a := range part.accs {
				for k := int64(0); k < a.Len; k++ {
					got = append(got, byteRef{part.segs[msi].Addr + mem.Addr(mso), a.Off + k})
					mso++
					if mso == part.segs[msi].Len {
						msi, mso = msi+1, 0
					}
				}
			}
			w := want[part.srv]
			if len(got) != len(w) {
				return false
			}
			for i := range w {
				if got[i] != w[i] {
					return false
				}
			}
			delete(want, part.srv)
		}
		return len(want) == 0 // every server with bytes appeared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChunkPartPreservesStreams checks chunking against the same
// byte-stream invariant for random parts and limits.
func TestPropertyChunkPartPreservesStreams(t *testing.T) {
	f := func(lens []uint16, maxPairs uint8, maxKB uint8) bool {
		if len(lens) == 0 {
			return true
		}
		if len(lens) > 20 {
			lens = lens[:20]
		}
		part := &serverPart{}
		addr := mem.Addr(0x40000)
		off := int64(0)
		for _, l := range lens {
			n := int64(l)%5000 + 1
			part.accs = append(part.accs, OffLen{Off: off, Len: n})
			part.segs = append(part.segs, ib.SGE{Addr: addr, Len: n})
			off += n + 100
			addr += mem.Addr(n + 64)
		}
		pairs := int(maxPairs)%7 + 1
		maxBytes := int64(maxKB)%8*1024 + 512
		chunks := chunkPart(part, pairs, maxBytes)
		// Invariants: per-chunk limits, aligned totals, and the
		// concatenated (file offset, mem addr) byte streams equal the
		// original.
		var gotFile []OffLen
		var gotMem []ib.SGE
		for _, ch := range chunks {
			if len(ch.accs) > pairs {
				return false
			}
			if ch.total > maxBytes && len(ch.accs) > 1 {
				return false
			}
			if TotalOffLen(ch.accs) != ch.total || ib.TotalLen(ch.segs) != ch.total {
				return false
			}
			gotFile = append(gotFile, ch.accs...)
			gotMem = append(gotMem, ch.segs...)
		}
		return streamsEqual(part.accs, gotFile) && segStreamsEqual(part.segs, gotMem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// streamsEqual compares two region lists as byte streams (fragmentation may
// differ).
func streamsEqual(a, b []OffLen) bool {
	if TotalOffLen(a) != TotalOffLen(b) {
		return false
	}
	ai, ao := 0, int64(0)
	for _, r := range b {
		for k := int64(0); k < r.Len; k++ {
			if a[ai].Off+ao != r.Off+k {
				return false
			}
			ao++
			if ao == a[ai].Len {
				ai, ao = ai+1, 0
			}
		}
	}
	return true
}

func segStreamsEqual(a, b []ib.SGE) bool {
	if ib.TotalLen(a) != ib.TotalLen(b) {
		return false
	}
	ai, ao := 0, int64(0)
	for _, s := range b {
		for k := int64(0); k < s.Len; k++ {
			if a[ai].Addr+mem.Addr(ao) != s.Addr+mem.Addr(k) {
				return false
			}
			ao++
			if ao == a[ai].Len {
				ai, ao = ai+1, 0
			}
		}
	}
	return true
}

func TestTracingRecordsRequestsAndSieveDecisions(t *testing.T) {
	c := newCluster(t, 2, 1)
	rec := c.EnableTracing(256)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		base := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		for i := 0; i < 64; i++ {
			segs = append(segs, ib.SGE{Addr: base + mem.Addr(i*2048), Len: 512})
			accs = append(accs, OffLen{Off: int64(i * 2048), Len: 512})
			cl.Space().Write(segs[i].Addr, bytes.Repeat([]byte{1}, 512))
		}
		if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := fh.ReadList(p, segs, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	kinds := map[string]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"write-req", "read-req", "sieve-write", "sieve-read"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events recorded (kinds: %v)", want, kinds)
		}
	}
	// Timestamps are nondecreasing.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("trace timestamps regress at %d", i)
		}
	}
}

func TestRegDeclaredAndExplicit(t *testing.T) {
	c := newCluster(t, 2, 1)
	cl := c.Clients[0]
	app(t, c, func(p *sim.Proc) {
		fh := cl.Open(p, "f")
		// Buffers carved from one allocation.
		alloc := cl.Space().Malloc(1 << 20)
		var segs []ib.SGE
		var accs []OffLen
		for i := 0; i < 64; i++ {
			segs = append(segs, ib.SGE{Addr: alloc + mem.Addr(i*16384), Len: 8192})
			accs = append(accs, OffLen{Off: int64(i * 8192), Len: 8192})
			cl.Space().Write(segs[i].Addr, bytes.Repeat([]byte{byte(i)}, 8192))
		}
		// Declared: exactly one registration of the allocation.
		r0 := cl.HCA().Counters.Registrations
		opts := OpOptions{Transfer: ForceGather, Reg: RegDeclared,
			Allocation: mem.Extent{Addr: alloc, Len: 1 << 20}}
		if err := fh.WriteList(p, segs, accs, opts); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 1 {
			t.Errorf("RegDeclared registered %d, want 1", n)
		}
		// Declared again: cache hit, zero registrations.
		r0 = cl.HCA().Counters.Registrations
		if err := fh.WriteList(p, segs, accs, opts); err != nil {
			t.Fatal(err)
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 0 {
			t.Errorf("second RegDeclared registered %d, want 0 (cache)", n)
		}
		// Declared without an allocation errors.
		if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegDeclared}); err == nil {
			t.Error("RegDeclared without Allocation should fail")
		}
		// Explicit: the application pins once, many ops pay nothing.
		mr, err := cl.RegisterRegion(p, mem.Extent{Addr: alloc, Len: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		r0 = cl.HCA().Counters.Registrations
		for i := 0; i < 3; i++ {
			if err := fh.WriteList(p, segs, accs, OpOptions{Transfer: ForceGather, Reg: RegExplicit}); err != nil {
				t.Fatal(err)
			}
		}
		if n := cl.HCA().Counters.Registrations - r0; n != 0 {
			t.Errorf("RegExplicit registered %d, want 0", n)
		}
		cl.ReleaseRegion(p, mr)
		// Round trip to prove data integrity through the new paths.
		dst := cl.Space().Malloc(64 * 8192)
		if err := fh.ReadList(p, []ib.SGE{{Addr: dst, Len: 64 * 8192}}, accs, OpOptions{}); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, 64*8192)
		for i := 0; i < 64; i++ {
			if got[i*8192] != byte(i) {
				t.Fatalf("piece %d corrupted", i)
			}
		}
	})
}

// TestTortureMixedWorkload drives a long, seeded-random mix of operations
// (contiguous and list writes/reads, syncs, stats, cache drops, removes)
// from two clients against a flat reference model, verifying every read
// and every stat. Deterministic: the RNG is fixed-seed and the engine's
// interleaving is a function of the op sequence alone.
func TestTortureMixedWorkload(t *testing.T) {
	const fileSpan = 1 << 20
	rng := rand.New(rand.NewSource(12345))
	c := newCluster(t, 3, 2)
	model := make([]byte, fileSpan)
	var modelSize int64

	app(t, c, func(p *sim.Proc) {
		handles := []*FileHandle{
			c.Clients[0].Open(p, "torture"),
			c.Clients[1].Open(p, "torture"),
		}
		for op := 0; op < 300; op++ {
			ci := rng.Intn(2)
			cl := c.Clients[ci]
			fh := handles[ci]
			switch rng.Intn(10) {
			case 0, 1, 2: // contiguous write
				n := int64(rng.Intn(32<<10) + 1)
				off := int64(rng.Intn(fileSpan - int(n)))
				data := make([]byte, n)
				rng.Read(data)
				addr := cl.Space().Malloc(n)
				cl.Space().Write(addr, data)
				if err := fh.Write(p, addr, n, off, OpOptions{}); err != nil {
					t.Fatalf("op %d write: %v", op, err)
				}
				copy(model[off:off+n], data)
				if off+n > modelSize {
					modelSize = off + n
				}
			case 3, 4: // list write
				count := rng.Intn(20) + 1
				size := int64(rng.Intn(2000) + 1)
				stride := size + int64(rng.Intn(4000))
				foff := int64(rng.Intn(fileSpan / 2))
				if foff+int64(count)*stride >= fileSpan {
					continue
				}
				base := cl.Space().Malloc(int64(count) * size)
				data := make([]byte, int64(count)*size)
				rng.Read(data)
				cl.Space().Write(base, data)
				var segs []ib.SGE
				var accs []OffLen
				for i := 0; i < count; i++ {
					segs = append(segs, ib.SGE{Addr: base + mem.Addr(int64(i)*size), Len: size})
					off := foff + int64(i)*stride
					accs = append(accs, OffLen{Off: off, Len: size})
					copy(model[off:off+size], data[int64(i)*size:int64(i+1)*size])
					if off+size > modelSize {
						modelSize = off + size
					}
				}
				if err := fh.WriteList(p, segs, accs, OpOptions{}); err != nil {
					t.Fatalf("op %d writelist: %v", op, err)
				}
			case 5, 6, 7: // read + verify
				if modelSize == 0 {
					continue
				}
				n := int64(rng.Intn(32<<10) + 1)
				off := int64(rng.Intn(int(modelSize)))
				if off+n > modelSize {
					n = modelSize - off
				}
				addr := cl.Space().Malloc(n)
				if err := fh.Read(p, addr, n, off, OpOptions{}); err != nil {
					t.Fatalf("op %d read: %v", op, err)
				}
				got, _ := cl.Space().Read(addr, n)
				if !bytes.Equal(got, model[off:off+n]) {
					t.Fatalf("op %d: read mismatch at %d+%d", op, off, n)
				}
			case 8: // sync or drop caches
				if rng.Intn(2) == 0 {
					fh.Sync(p)
				} else {
					for _, s := range c.Servers {
						s.FS().DropCaches(p)
					}
				}
			case 9: // stat
				if got := fh.Stat(p); got != modelSize {
					t.Fatalf("op %d: Stat = %d, want %d", op, got, modelSize)
				}
			}
		}
	})
}
