package pvfs

import (
	"bytes"
	"testing"
	"time"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/stats"
)

// stormPlan is the end-to-end stress plan: probabilistic WR completion
// errors and registration rejections, disk faults, one partition that heals,
// and one daemon crash/restart. Server 0 hosts the manager and never
// crashes.
func stormPlan(seed int64) *fault.Plan {
	return &fault.Plan{
		Seed:          seed,
		WRErrorRate:   0.02,
		RegFailRate:   0.3,
		DiskErrorRate: 0.01,
		DiskSlowRate:  0.05,
		Spikes: []fault.Spike{
			{From: fault.Wildcard, To: 1, At: 100 * time.Microsecond, Dur: 300 * time.Microsecond, Extra: 40 * time.Microsecond},
		},
		Cuts: []fault.Cut{
			// 4 servers + 4 clients: node 4 is cn0, node 1 is io1.
			{A: 4, B: 1, At: 200 * time.Microsecond, Dur: 400 * time.Microsecond},
		},
		Crashes: []fault.Crash{
			{Server: 2, At: 300 * time.Microsecond, Down: 600 * time.Microsecond},
		},
	}
}

// stormWorkload writes a strided pattern from every client, syncs, reads it
// back, and verifies the bytes. Returns the verified read-back images.
func stormWorkload(t *testing.T, c *Cluster) [][]byte {
	t.Helper()
	const (
		segLen = 4 << 10
		nSegs  = 48
		stride = 16 << 10
	)
	images := make([][]byte, len(c.Clients))
	app(t, c, func(p *sim.Proc) {
		wg := c.Eng.NewWaitGroup()
		for ci, cl := range c.Clients {
			ci, cl := ci, cl
			wg.Add(1)
			c.Eng.Go("worker", func(q *sim.Proc) {
				defer wg.Done()
				fh := cl.Open(q, "storm")
				total := int64(segLen * nSegs)
				addr, want := fill(cl, total, byte(ci))
				var segs []ib.SGE
				var accs []OffLen
				for i := 0; i < nSegs; i++ {
					segs = append(segs, ib.SGE{Addr: addr + mem.Addr(i*segLen), Len: segLen})
					// Interleave clients in the file so every server sees
					// every client.
					accs = append(accs, OffLen{Off: int64(ci)*segLen + int64(i)*stride*int64(len(c.Clients)), Len: segLen})
				}
				// Gather-sized op (above FastBufSize) so faults exercise
				// the rendezvous path and the pack fallback.
				if err := fh.WriteList(q, segs, accs, OpOptions{}); err != nil {
					t.Errorf("cn%d: WriteList: %v", ci, err)
					return
				}
				fh.Sync(q)
				rdAddr := cl.Space().Malloc(total)
				var rdSegs []ib.SGE
				for i := 0; i < nSegs; i++ {
					rdSegs = append(rdSegs, ib.SGE{Addr: rdAddr + mem.Addr(i*segLen), Len: segLen})
				}
				if err := fh.ReadList(q, rdSegs, accs, OpOptions{}); err != nil {
					t.Errorf("cn%d: ReadList: %v", ci, err)
					return
				}
				got, err := cl.Space().Read(rdAddr, total)
				if err != nil {
					t.Errorf("cn%d: read-back: %v", ci, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("cn%d: read-back differs from written data", ci)
					return
				}
				images[ci] = got
			})
		}
		wg.Wait(p)
	})
	return images
}

// TestRecoveryUnderFaultStorm is the headline end-to-end test: a 4+4
// cluster runs a strided list-I/O workload through injected WR errors, a
// partition that heals, registration pressure, disk faults, and one daemon
// crash/restart — and loses no data.
func TestRecoveryUnderFaultStorm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = stormPlan(7)
	c := NewCluster(sim.NewEngine(), cfg, 4, 4)
	stormWorkload(t, c)

	s := c.Snapshot()
	if s.FaultWRErrors == 0 {
		t.Error("no WR errors injected — plan not exercised")
	}
	if s.Retries == 0 || s.Timeouts == 0 {
		t.Errorf("recovery not exercised: retries=%d timeouts=%d", s.Retries, s.Timeouts)
	}
	if s.Fallbacks == 0 {
		t.Errorf("gather->pack fallback not exercised (regFailures=%d)", s.FaultRegFailures)
	}
	if s.Crashes != 1 || s.Restarts != 1 {
		t.Errorf("crash/restart = %d/%d, want 1/1", s.Crashes, s.Restarts)
	}
	if got := c.Manager.IodRegistrations()[2]; got == 0 {
		t.Error("restarted daemon io2 never re-registered with the manager")
	}
	if c.Servers[2].Down() {
		t.Error("io2 still down at end of run")
	}
}

// TestFaultDeterminism runs the same (workload, plan, seed) triple twice and
// demands byte-identical read-back, identical final virtual times, and
// identical fault/recovery counters.
func TestFaultDeterminism(t *testing.T) {
	run := func() ([][]byte, sim.Time, stats.Snapshot, fault.Counters) {
		cfg := DefaultConfig()
		cfg.Faults = stormPlan(42)
		c := NewCluster(sim.NewEngine(), cfg, 4, 4)
		images := stormWorkload(t, c)
		return images, c.Eng.Now(), c.Snapshot(), c.Faults.Counters
	}
	img1, t1, s1, f1 := run()
	img2, t2, s2, f2 := run()
	if t1 != t2 {
		t.Errorf("final virtual times differ: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("counter snapshots differ:\n%+v\n%+v", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("injector counters differ: %+v vs %+v", f1, f2)
	}
	for i := range img1 {
		if !bytes.Equal(img1[i], img2[i]) {
			t.Errorf("cn%d: read-back images differ between runs", i)
		}
	}
}

// TestEmptyPlanZeroOverhead checks that attaching no fault plan leaves
// virtual time exactly where the fault-unaware code put it: the recovery
// machinery must be pay-for-use.
func TestEmptyPlanZeroOverhead(t *testing.T) {
	run := func(cfg Config) sim.Time {
		c := NewCluster(sim.NewEngine(), cfg, 4, 4)
		stormWorkload(t, c)
		return c.Eng.Now()
	}
	base := run(DefaultConfig())
	// An explicitly attached-then-detached plane must also cost nothing.
	cfg := DefaultConfig()
	c := NewCluster(sim.NewEngine(), cfg, 4, 4)
	c.AttachFaults(&fault.Plan{Seed: 1})
	c.AttachFaults(nil)
	stormWorkload(t, c)
	if got := c.Eng.Now(); got != base {
		t.Errorf("detached fault plane changed timing: %v vs %v", got, base)
	}
	if s := c.Snapshot(); s.Retries+s.Timeouts+s.Fallbacks != 0 {
		t.Errorf("recovery counters moved on a fault-free run: %+v", s)
	}
}

// TestCrashValidation rejects plans that crash the manager's host.
func TestCrashValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("crashing server 0 should panic (hosts the manager)")
		}
	}()
	cfg := DefaultConfig()
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Server: 0, At: time.Millisecond, Down: time.Millisecond}}}
	NewCluster(sim.NewEngine(), cfg, 4, 4)
}
