package pvfs

import (
	"errors"
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// errTimeout marks a client wait that outlived Recovery.Timeout.
var errTimeout = errors.New("pvfs: request timed out")

// recoverable reports whether an error is transient under the fault plane —
// a timeout, an injected completion error, a QP stuck in error state, or a
// crashed adapter — and therefore worth a retry. Anything else (bad
// arguments, registration bugs, model invariant violations) propagates.
func recoverable(err error) bool {
	var wc *ib.WCError
	return errors.Is(err, errTimeout) ||
		errors.As(err, &wc) ||
		errors.Is(err, ib.ErrQPState) ||
		errors.Is(err, ib.ErrHCADown) ||
		errors.Is(err, ib.ErrRegPressure) ||
		errors.Is(err, simnet.ErrDropped)
}

// recvResp waits for the reply to request seq. Without a fault plane it
// blocks exactly like the original protocol. Under faults it waits at most
// Recovery.Timeout and discards stale replies — responses to an earlier
// attempt this client already timed out and re-issued.
func (c *Client) recvResp(p *sim.Proc, conn *clientConn, seq int64) (any, error) {
	rec := c.cluster.recovery()
	if rec == nil {
		_, payload := conn.qp.Recv(p)
		return payload, nil
	}
	for {
		_, payload, ok := conn.qp.RecvTimeout(p, rec.Timeout)
		if !ok {
			c.acct.Timeouts++
			c.mx.timeouts.Add(p.Now(), 1)
			return nil, errTimeout
		}
		if s, ok := payload.(seqer); ok && s.seqNum() != seq {
			continue
		}
		return payload, nil
	}
}

// resetConn clears a connection QP out of error state so the next attempt
// can post again; the reset also drains stale inbox traffic.
func (c *Client) resetConn(p *sim.Proc, conn *clientConn) {
	if conn.qp.State() == ib.QPError {
		conn.qp.Reset(p)
	}
}

// retryBackoff returns the delay before retry number attempt (0-based):
// exponential from Recovery.Backoff, capped at Recovery.MaxBackoff.
func retryBackoff(rec *Recovery, attempt int) sim.Duration {
	if attempt >= 30 {
		return rec.MaxBackoff
	}
	d := rec.Backoff << uint(attempt)
	if d <= 0 || d > rec.MaxBackoff {
		d = rec.MaxBackoff
	}
	return d
}

// rpc issues one small idempotent request and waits for its reply, retrying
// with backoff under the fault plane. build is called per attempt with a
// fresh sequence number.
func (c *Client) rpc(p *sim.Proc, conn *clientConn, size int, build func(seq int64) any) (any, error) {
	rec := c.cluster.recovery()
	for attempt := 0; ; attempt++ {
		seq := c.seq()
		err := conn.qp.Send(p, size, build(seq))
		if err == nil {
			var payload any
			payload, err = c.recvResp(p, conn, seq)
			if err == nil {
				return payload, nil
			}
		}
		if rec == nil || !recoverable(err) {
			return nil, err
		}
		c.acct.Retries++
		c.mx.retries.Add(p.Now(), 1)
		c.resetConn(p, conn)
		if attempt+1 >= rec.MaxRetries {
			return nil, fmt.Errorf("pvfs: cn%d: rpc failed after %d attempts: %w", c.idx, attempt+1, err)
		}
		t0 := p.Now()
		p.Sleep(retryBackoff(rec, attempt))
		c.mx.backoff.AddSpan(t0, p.Now())
	}
}
