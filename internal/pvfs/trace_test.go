package pvfs

import (
	"testing"

	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// TestRetrySpansAreSiblings runs the fault storm with tracing on and
// checks the retry shape in the span tree: when a chunk RPC is re-issued
// after a WR error or timeout, each attempt records its own
// "pvfs.attempt" span, and the attempts sit side by side under the same
// parent list-operation span of the same request.
func TestRetrySpansAreSiblings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = stormPlan(7)
	c := NewCluster(sim.NewEngine(), cfg, 4, 4)
	tr := c.EnableSpans()
	stormWorkload(t, c)

	if s := c.Snapshot(); s.Retries == 0 {
		t.Fatal("storm produced no retries; sibling shape not exercised")
	}

	// Group attempt spans by (request, parent).
	type key struct {
		req    trace.ReqID
		parent trace.SpanID
	}
	groups := make(map[key]int)
	for _, s := range tr.Spans() {
		if s.Kind != "pvfs.attempt" {
			continue
		}
		if !s.Ended {
			t.Errorf("attempt span %d never ended", s.ID)
		}
		if s.Parent == 0 || s.Req == 0 {
			t.Errorf("attempt span %d detached: parent=%d req=%d", s.ID, s.Parent, s.Req)
			continue
		}
		groups[key{s.Req, s.Parent}]++
	}
	if len(groups) == 0 {
		t.Fatal("no pvfs.attempt spans recorded")
	}
	retried := 0
	for _, n := range groups {
		if n > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("retries happened but no request shows sibling attempt spans")
	}

	// The failed attempts must carry the error that killed them.
	var failed int
	for _, s := range tr.Spans() {
		if s.Kind == "pvfs.attempt" && s.Err != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no attempt span recorded an error despite injected faults")
	}
}

// TestSpansDisabledByDefault: a cluster without EnableSpans records
// nothing and reports no span-derived gauges.
func TestSpansDisabledByDefault(t *testing.T) {
	c := NewCluster(sim.NewEngine(), DefaultConfig(), 2, 2)
	if c.Spans != nil {
		t.Fatal("tracer attached without EnableSpans")
	}
	app(t, c, func(p *sim.Proc) {
		fh := c.Clients[0].Open(p, "quiet")
		addr, _ := fill(c.Clients[0], 4096, 1)
		sim.Must(fh.Write(p, addr, 4096, 0, OpOptions{}))
	})
	if s := c.Snapshot(); s.MaxInflight != 0 {
		t.Errorf("span gauges moved with tracing off: %+v", s)
	}
}
