package pvfs

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
)

// Striping: file offset off lives in stripe off/StripeSize; stripe k is
// stored on server k % N at local offset (k/N)*StripeSize + off%StripeSize.

// locate maps a file offset to its server and server-local offset.
func locate(off, stripeSize int64, nServers int) (srv int, local int64) {
	stripe := off / stripeSize
	srv = int(stripe % int64(nServers))
	local = (stripe/int64(nServers))*stripeSize + off%stripeSize
	return
}

// serverPart is the portion of a list-I/O operation destined for one server:
// server-local file regions plus the matching client memory segments, both
// in the same byte order.
type serverPart struct {
	srv  int
	accs []OffLen
	segs []ib.SGE
}

// splitOp fans a list-I/O operation out by server. The flattened memory
// stream and the flattened file stream describe the same bytes in the same
// order; both are cut at every stripe boundary and every segment/region
// boundary, and each fragment is appended to its server's part, preserving
// byte order within each server.
func splitOp(memSegs []ib.SGE, fileAccs []OffLen, stripeSize int64, nServers int) ([]*serverPart, error) {
	memTotal := ib.TotalLen(memSegs)
	fileTotal := TotalOffLen(fileAccs)
	if memTotal != fileTotal {
		return nil, fmt.Errorf("pvfs: memory bytes (%d) != file bytes (%d)", memTotal, fileTotal)
	}
	for _, s := range memSegs {
		if s.Len <= 0 {
			return nil, fmt.Errorf("pvfs: empty memory segment %v", s)
		}
	}
	for _, a := range fileAccs {
		if a.Len <= 0 || a.Off < 0 {
			return nil, fmt.Errorf("pvfs: bad file region %+v", a)
		}
	}

	parts := make(map[int]*serverPart)
	ordered := make([]*serverPart, 0, nServers)
	part := func(srv int) *serverPart {
		if p, ok := parts[srv]; ok {
			return p
		}
		p := &serverPart{srv: srv}
		parts[srv] = p
		ordered = append(ordered, p)
		return p
	}

	mi, fi := 0, 0   // current segment / region index
	var mo, fo int64 // bytes consumed within each
	remaining := fileTotal
	for remaining > 0 {
		seg, acc := memSegs[mi], fileAccs[fi]
		fileOff := acc.Off + fo
		// Bytes until the next cut: end of segment, end of region, or
		// stripe boundary.
		n := seg.Len - mo
		if r := acc.Len - fo; r < n {
			n = r
		}
		if b := stripeSize - fileOff%stripeSize; b < n {
			n = b
		}
		srv, local := locate(fileOff, stripeSize, nServers)
		p := part(srv)
		// The two streams only need to carry the same bytes in the same
		// order — they are not paired element-wise — so merge adjacent
		// fragments on each side independently. File-side merging is what
		// collapses a contiguous write from noncontiguous memory into one
		// server access (and is also PVFS's behaviour: "merge happens
		// only when the actual file accesses ... are contiguous").
		if k := len(p.accs) - 1; k >= 0 && p.accs[k].End() == local {
			p.accs[k].Len += n
		} else {
			p.accs = append(p.accs, OffLen{Off: local, Len: n})
		}
		if k := len(p.segs) - 1; k >= 0 &&
			p.segs[k].Addr+mem.Addr(p.segs[k].Len) == seg.Addr+mem.Addr(mo) {
			p.segs[k].Len += n
		} else {
			p.segs = append(p.segs, ib.SGE{Addr: seg.Addr + mem.Addr(mo), Len: n})
		}
		mo += n
		fo += n
		remaining -= n
		if mo == seg.Len {
			mi, mo = mi+1, 0
		}
		if fo == acc.Len {
			fi, fo = fi+1, 0
		}
	}
	return ordered, nil
}

// chunk is one request's worth of a server part.
type chunk struct {
	accs  []OffLen
	segs  []ib.SGE
	total int64
}

// chunkPart cuts a server part into request-sized chunks: at most maxPairs
// file regions and at most maxBytes data per chunk. Memory segments are
// split at chunk boundaries so each chunk's streams stay aligned.
func chunkPart(p *serverPart, maxPairs int, maxBytes int64) []chunk {
	var chunks []chunk
	var cur chunk
	flush := func() {
		if len(cur.accs) > 0 {
			chunks = append(chunks, cur)
			cur = chunk{}
		}
	}
	si := 0
	var so int64 // bytes consumed of segs[si]
	takeSegs := func(n int64) {
		for n > 0 {
			seg := p.segs[si]
			take := seg.Len - so
			if take > n {
				take = n
			}
			// Merge into the last chunk segment when contiguous.
			if k := len(cur.segs) - 1; k >= 0 &&
				cur.segs[k].Addr+mem.Addr(cur.segs[k].Len) == seg.Addr+mem.Addr(so) {
				cur.segs[k].Len += take
			} else {
				cur.segs = append(cur.segs, ib.SGE{Addr: seg.Addr + mem.Addr(so), Len: take})
			}
			so += take
			if so == seg.Len {
				si, so = si+1, 0
			}
			n -= take
		}
	}
	for _, a := range p.accs {
		for a.Len > 0 {
			if len(cur.accs) >= maxPairs || cur.total >= maxBytes {
				flush()
			}
			n := a.Len
			if room := maxBytes - cur.total; n > room {
				n = room
			}
			cur.accs = append(cur.accs, OffLen{Off: a.Off, Len: n})
			cur.total += n
			takeSegs(n)
			a.Off += n
			a.Len -= n
		}
	}
	flush()
	return chunks
}
