package ib

import (
	"container/list"
	"errors"
	"fmt"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
)

// RegCache is a pin-down cache (Tezuka et al.): deregistration is deferred
// so that a later transfer reusing the same buffer finds it already pinned.
// Lookups succeed when a cached region fully covers the requested extent.
//
// Entries carry a reference count; unreferenced entries stay cached until
// capacity pressure evicts them (LRU), at which point they are actually
// deregistered and the deregistration cost is charged to the process that
// caused the eviction.
type RegCache struct {
	hca        *HCA
	maxBytes   int64
	maxEntries int

	entries map[Key]*cacheEntry
	lru     *list.List // front = most recent; only refs==0 entries are evictable
	// all holds every entry in registration order. Lookups scan it instead
	// of the entries map so that which covering region a hit returns — and
	// with it the hit/miss counters and eviction pattern — is identical on
	// every run.
	all   *list.List
	bytes int64
}

type cacheEntry struct {
	mr    *MR
	refs  int
	elem  *list.Element // non-nil while on the LRU (refs == 0)
	aelem *list.Element // position on the registration-order list
}

// NewRegCache creates a pin-down cache over the HCA's registrations.
// maxBytes bounds the total pinned bytes held by the cache; maxEntries
// bounds the number of cached regions.
func NewRegCache(h *HCA, maxBytes int64, maxEntries int) *RegCache {
	return &RegCache{
		hca:        h,
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		entries:    make(map[Key]*cacheEntry),
		lru:        list.New(),
		all:        list.New(),
	}
}

// Get returns a registered region covering e, registering it if no cached
// region covers it. The returned MR is referenced and must be released with
// Put. A cache hit costs no virtual time.
func (c *RegCache) Get(p *sim.Proc, e mem.Extent) (*MR, error) {
	for el := c.all.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.mr.Covers(e) {
			c.hca.Counters.RegCacheHits++
			c.hca.mx.regHits.Add(p.Now(), 1)
			c.ref(ent)
			return ent.mr, nil
		}
	}
	c.hca.Counters.RegCacheMisses++
	c.hca.mx.regMiss.Add(p.Now(), 1)
	// Evict until the new region fits.
	need := e.Pages() * mem.PageSize
	for c.bytes+need > c.maxBytes || len(c.entries) >= c.maxEntries {
		evicted, err := c.evictOne(p)
		if err != nil {
			return nil, err
		}
		if !evicted {
			break // nothing evictable; let Register enforce HCA limits
		}
	}
	mr, err := c.hca.Register(p, e)
	if err != nil {
		return nil, err
	}
	ent := &cacheEntry{mr: mr, refs: 1}
	ent.aelem = c.all.PushBack(ent)
	c.entries[mr.Key] = ent
	c.bytes += need
	return mr, nil
}

// Put releases a reference obtained from Get. The region remains registered
// and cached for future hits — unless the cache is over capacity (Get never
// evicts referenced entries, so a burst of simultaneously-pinned buffers can
// overshoot), in which case the least-recently-used unreferenced entries are
// deregistered now, their cost charged to p. This is what produces
// registration thrashing when the pinnable budget is smaller than an
// operation's working set (Section 4.2).
func (c *RegCache) Put(p *sim.Proc, mr *MR) error {
	ent, ok := c.entries[mr.Key]
	if !ok {
		return fmt.Errorf("ib: RegCache.Put of unknown MR (key %d): %w", mr.Key, ErrInvalidMR)
	}
	if ent.refs <= 0 {
		return errors.New("ib: RegCache.Put without matching Get")
	}
	ent.refs--
	if ent.refs == 0 {
		ent.elem = c.lru.PushFront(ent)
	}
	for c.bytes > c.maxBytes || len(c.entries) > c.maxEntries {
		evicted, err := c.evictOne(p)
		if err != nil {
			return err
		}
		if !evicted {
			break
		}
	}
	return nil
}

func (c *RegCache) ref(ent *cacheEntry) {
	if ent.refs == 0 && ent.elem != nil {
		c.lru.Remove(ent.elem)
		ent.elem = nil
	}
	ent.refs++
}

// evictOne deregisters the least-recently-used unreferenced entry.
func (c *RegCache) evictOne(p *sim.Proc) (bool, error) {
	back := c.lru.Back()
	if back == nil {
		return false, nil
	}
	ent := back.Value.(*cacheEntry)
	c.lru.Remove(back)
	ent.elem = nil
	c.all.Remove(ent.aelem)
	ent.aelem = nil
	delete(c.entries, ent.mr.Key)
	c.bytes -= ent.mr.Extent.Pages() * mem.PageSize
	if err := c.hca.Deregister(p, ent.mr); err != nil {
		return false, fmt.Errorf("ib: RegCache eviction: %w", err)
	}
	return true, nil
}

// Flush deregisters every unreferenced cached entry.
func (c *RegCache) Flush(p *sim.Proc) error {
	for {
		evicted, err := c.evictOne(p)
		if err != nil {
			return err
		}
		if !evicted {
			return nil
		}
	}
}

// Len reports the number of cached regions (referenced or not).
func (c *RegCache) Len() int { return len(c.entries) }

// Bytes reports the total pinned bytes held by the cache.
func (c *RegCache) Bytes() int64 { return c.bytes }
