package ib

import (
	"errors"
	"fmt"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Key names a registered memory region. A single key stands in for the
// lkey/rkey pair of real verbs.
type Key uint64

// MR is a registered memory region on one HCA.
type MR struct {
	Key    Key
	Extent mem.Extent
	hca    *HCA
	valid  bool
}

// Covers reports whether the extent lies wholly inside the region.
func (mr *MR) Covers(e mem.Extent) bool {
	return e.Addr >= mr.Extent.Addr && e.End() <= mr.Extent.End()
}

// Valid reports whether the region is still registered.
func (mr *MR) Valid() bool { return mr != nil && mr.valid }

// Registration failure causes.
var (
	// ErrNotAllocated is returned when the region touches pages the
	// application never allocated — the failure OGR's optimistic step
	// probes for.
	ErrNotAllocated = errors.New("ib: region touches unallocated memory")
	// ErrPinLimit is returned when the HCA's pinned-memory or MR-count
	// limit would be exceeded.
	ErrPinLimit = errors.New("ib: registration limit exceeded")
	// ErrRegPressure is returned when the fault plane rejects a
	// registration, modeling transient pinning pressure (the first-class
	// runtime failure NP-RDMA-style stacks handle). Unlike ErrNotAllocated
	// it is not a property of the region: retrying, or falling back to
	// pre-registered staging buffers, is the expected response.
	ErrRegPressure = errors.New("ib: registration rejected (pinning pressure)")
)

// Register pins the extent and returns a memory region handle. The calling
// process is charged the paper's cost model, T = a·pages + b. Registration
// fails with ErrNotAllocated if any touched page is unallocated; per the
// kernel's behaviour the cost of the failed attempt is still (mostly) paid,
// since the page-table walk happens before the failure is detected.
func (h *HCA) Register(p *sim.Proc, e mem.Extent) (*MR, error) {
	if e.Len <= 0 {
		return nil, fmt.Errorf("ib: register empty extent %v", e)
	}
	sp := h.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), h.node.Name, "ib.reg", trace.StageReg)
	sp.SetBytes(e.Len)
	pages := e.Pages()
	cost := h.params.RegCost(pages)
	if h.faults != nil && h.faults.RegFail(p.Now(), h.node.Name) {
		// The kernel walked the pages before giving up: charge the full
		// attempt cost, as for any failed registration.
		p.Sleep(cost)
		h.Counters.RegFailures++
		sp.EndErr(p.Now(), ErrRegPressure)
		return nil, ErrRegPressure
	}
	if !h.space.Allocated(e) {
		// The walk stops at the first bad page; charge the full per-op
		// overhead but only half the average per-page cost.
		fail := h.params.RegPerOp + (cost-h.params.RegPerOp)/2
		p.Sleep(fail)
		h.Counters.RegFailures++
		sp.EndErr(p.Now(), ErrNotAllocated)
		return nil, ErrNotAllocated
	}
	if h.pinnedBytes+pages*mem.PageSize > h.params.MaxPinnedBytes ||
		len(h.mrs) >= h.params.MaxMRs {
		h.Counters.RegFailures++
		sp.EndErr(p.Now(), ErrPinLimit)
		return nil, ErrPinLimit
	}
	p.Sleep(cost)
	h.Counters.Registrations++
	h.Counters.RegTime += cost
	h.nextKey++
	mr := &MR{Key: h.nextKey, Extent: e, hca: h, valid: true}
	h.mrs[mr.Key] = mr
	h.pinnedBytes += pages * mem.PageSize
	h.mx.pinned.Set(p.Now(), h.pinnedBytes)
	if sp.Recording() {
		sp.Annotate("pages=%d", pages)
	}
	sp.End(p.Now())
	return mr, nil
}

// RegisterStatic pins the extent without charging virtual time, for
// buffers registered once at system setup (staging pools, connection
// buffers). Setup-time costs are irrelevant to the experiments; per-
// operation costs are what the paper measures. The registration still
// counts against pin limits but not in the Registrations counter.
func (h *HCA) RegisterStatic(e mem.Extent) (*MR, error) {
	if e.Len <= 0 || !h.space.Allocated(e) {
		return nil, fmt.Errorf("ib: RegisterStatic of invalid extent %v: %w", e, ErrNotAllocated)
	}
	h.nextKey++
	mr := &MR{Key: h.nextKey, Extent: e, hca: h, valid: true}
	h.mrs[mr.Key] = mr
	h.pinnedBytes += e.Pages() * mem.PageSize
	return mr, nil
}

// ErrInvalidMR is returned by Deregister for a region that was never
// registered on this HCA or was already deregistered.
var ErrInvalidMR = errors.New("ib: deregister of invalid MR")

// Deregister unpins the region, charging the deregistration cost.
func (h *HCA) Deregister(p *sim.Proc, mr *MR) error {
	if !mr.Valid() {
		return ErrInvalidMR
	}
	sp := h.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), h.node.Name, "ib.dereg", trace.StageReg)
	sp.SetBytes(mr.Extent.Len)
	cost := h.params.DeregCost(mr.Extent.Pages())
	p.Sleep(cost)
	sp.End(p.Now())
	mr.valid = false
	delete(h.mrs, mr.Key)
	h.pinnedBytes -= mr.Extent.Pages() * mem.PageSize
	h.mx.pinned.Set(p.Now(), h.pinnedBytes)
	h.Counters.Deregistrations++
	h.Counters.DeregTime += cost
	return nil
}

// lookup returns the MR for key, or nil.
func (h *HCA) lookup(key Key) *MR { return h.mrs[key] }

// coveredLocally reports whether the extent lies inside some registered MR.
func (h *HCA) coveredLocally(e mem.Extent) bool {
	for _, mr := range h.mrs {
		if mr.Covers(e) {
			return true
		}
	}
	return false
}

// PinnedBytes reports the total currently pinned memory.
func (h *HCA) PinnedBytes() int64 { return h.pinnedBytes }

// NumMRs reports the number of live registrations.
func (h *HCA) NumMRs() int { return len(h.mrs) }
