package ib

import (
	"pvfsib/internal/metrics"
)

// hcaMetrics is one adapter's instrument set. Zero-value handles are
// no-op sinks, so the verbs hot paths sample unconditionally. Every
// series is owned by the HCA's node and only updated by that node's
// events: work requests sample on the initiator's shard, and the
// outstanding-read gauge's decrement (dispatch handling the response)
// also runs on the initiator.
type hcaMetrics struct {
	regHits  metrics.Counter // pin-down cache lookups served without registering
	regMiss  metrics.Counter // lookups that had to register
	pinned   metrics.Gauge   // bytes pinned on the adapter
	sendQ    metrics.Gauge   // verbs work requests in progress (send queue depth)
	outReads metrics.Gauge   // RDMA reads awaiting their response
}

// SetMetrics attaches (or, with nil, detaches) the metrics registry. The
// node's name must already be registered. Call while the engine is idle.
func (h *HCA) SetMetrics(mx *metrics.Registry) {
	if mx == nil {
		h.mx = hcaMetrics{}
		return
	}
	name := h.node.Name
	h.mx = hcaMetrics{
		regHits:  mx.Counter(name, "ib.regcache.hit"),
		regMiss:  mx.Counter(name, "ib.regcache.miss"),
		pinned:   mx.Gauge(name, "ib.pinned.bytes"),
		sendQ:    mx.Gauge(name, "ib.sendq"),
		outReads: mx.Gauge(name, "ib.reads.outstanding"),
	}
	h.mx.pinned.Set(h.engine().Now(), h.pinnedBytes)
}
