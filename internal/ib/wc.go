package ib

import (
	"errors"
	"fmt"

	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// WCStatus is a work-completion status code, the CQ-entry field real verbs
// consumers branch on. The simulated HCA reports it through WCError rather
// than an explicit completion queue.
type WCStatus int

const (
	// WCSuccess is never carried by a WCError; it exists so status codes
	// can be stored and compared meaningfully.
	WCSuccess WCStatus = iota
	// WCRetryExceeded: the reliable connection exhausted its transport
	// retries (link partitioned or peer dead).
	WCRetryExceeded
	// WCWorkRequestError: the work request itself completed in error
	// (injected NIC-level completion error).
	WCWorkRequestError
	// WCResponseTimeout: an RDMA read posted but its response never
	// arrived within the adapter's timeout.
	WCResponseTimeout
)

func (s WCStatus) String() string {
	switch s {
	case WCSuccess:
		return "success"
	case WCRetryExceeded:
		return "retry-exceeded"
	case WCWorkRequestError:
		return "wr-error"
	case WCResponseTimeout:
		return "response-timeout"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// WCError is a failed work completion. After one, the queue pair is in the
// error state and rejects further work until Reset.
type WCError struct {
	Status WCStatus
	Op     string // "send", "rdma-write", "rdma-read"
}

func (e *WCError) Error() string {
	return fmt.Sprintf("ib: %s completed with status %s", e.Op, e.Status)
}

// ErrQPState is returned for work posted to a queue pair in the error
// state; the caller must Reset the QP first.
var ErrQPState = errors.New("ib: queue pair in error state")

// ErrHCADown is returned for work posted through a downed adapter (its
// host daemon has crashed).
var ErrHCADown = errors.New("ib: adapter down")

// FaultInjector is the adapter's hook into the fault plane
// (internal/fault implements it). WRError is drawn once per posted work
// request on non-control QPs; RegFail once per dynamic registration.
type FaultInjector interface {
	WRError(now sim.Time, node string) bool
	RegFail(now sim.Time, node string) bool
}

// SetFaults attaches (or, with nil, detaches) the fault injector. Without
// one, no fault checks run anywhere in the adapter.
func (h *HCA) SetFaults(f FaultInjector) { h.faults = f }

// SetTracer attaches (or, with nil, detaches) the span tracer. Without
// one the adapter's hot paths record nothing and allocate nothing.
func (h *HCA) SetTracer(tr *trace.Tracer) { h.tracer = tr }

// SetDown marks the adapter dead or alive. A down adapter discards all
// inbound traffic (in-flight requests to its host die silently, exactly
// what a daemon crash looks like from the far end) and fails all posted
// work with ErrHCADown.
func (h *HCA) SetDown(down bool) { h.down = down }

// Down reports whether the adapter is marked dead.
func (h *HCA) Down() bool { return h.down }

// QPState is the queue pair state machine, collapsed to the two states the
// recovery layer distinguishes.
type QPState int

const (
	// QPReady accepts work (RTS in real verbs).
	QPReady QPState = iota
	// QPError rejects work until Reset (a failed WR moved the QP here).
	QPError
)

// State returns the queue pair's current state.
func (q *QP) State() QPState { return q.state }

// MarkControl exempts this endpoint from probabilistic WR-error injection
// (mark both ends of a connection). Metadata and MPI connections are
// control paths: the fault plane targets file data traffic, and a
// completion error on the manager connection would take down paths that
// have no retry story by design (Open has no error return, matching PVFS).
func (q *QP) MarkControl() { q.control = true }

// Reset drains the endpoint's receive queue (stale messages from the
// failed epoch are discarded), returns it to the ready state, and charges
// the reconnect latency — the collapsed cost of the real
// ERR→RESET→INIT→RTR→RTS transition plus connection re-establishment.
func (q *QP) Reset(p *sim.Proc) {
	sp := q.hca.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), q.hca.node.Name, "ib.qp-reset", trace.StageOther)
	p.Sleep(q.hca.params.QPResetLatency)
	for {
		v, ok := q.inbox.TryRecv()
		if !ok {
			break
		}
		if w, ok := v.(*wireSend); ok {
			q.hca.putWireSend(w)
		}
	}
	q.state = QPReady
	q.hca.Counters.QPResets++
	sp.End(p.Now())
}

// wrFault consults the fault plane for one posted work request; on
// injection the QP enters the error state. It also rejects work posted
// while down or in the error state.
func (q *QP) wrFault(p *sim.Proc, op string) error {
	h := q.hca
	if h.down {
		return ErrHCADown
	}
	if q.state == QPError {
		return ErrQPState
	}
	if h.faults != nil && !q.control && h.faults.WRError(p.Now(), h.node.Name) {
		q.state = QPError
		h.Counters.WRErrors++
		return &WCError{Status: WCWorkRequestError, Op: op}
	}
	return nil
}

// wireFault converts a fabric send failure (partition) into the completion
// error the initiator would see, moving the QP to the error state.
func (q *QP) wireFault(op string, err error) error {
	if err == nil {
		return nil
	}
	q.state = QPError
	q.hca.Counters.WRErrors++
	return &WCError{Status: WCRetryExceeded, Op: op}
}
