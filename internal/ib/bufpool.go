package ib

import (
	"fmt"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
)

// Buffer is one pre-registered staging buffer from a BufPool.
type Buffer struct {
	Addr mem.Addr
	Size int64
	MR   *MR
	pool *BufPool
}

// SGE returns a gather entry for the first n bytes of the buffer.
func (b *Buffer) SGE(n int64) (SGE, error) {
	if n > b.Size {
		return SGE{}, fmt.Errorf("ib: SGE of %d bytes exceeds %d-byte buffer", n, b.Size)
	}
	return SGE{Addr: b.Addr, Len: n}, nil
}

// BufPool is a set of equally-sized, permanently registered buffers, such as
// the Fast RDMA buffers of the paper's PVFS-over-InfiniBand transport and
// the I/O servers' staging buffers. Registration happens once at setup, so
// per-operation transfers through the pool pay no registration cost — the
// defining property of the Pack/Unpack ("pack, no reg") scheme.
type BufPool struct {
	hca  *HCA
	size int64
	free []*Buffer
	cond *sim.Cond
}

// NewBufPool allocates and statically registers count buffers of size bytes
// each in the HCA's host memory. Pools are built once at system setup, so
// registration is free in virtual time.
func NewBufPool(h *HCA, count int, size int64) (*BufPool, error) {
	pool := &BufPool{hca: h, size: size, cond: h.engine().NewCond()}
	for i := 0; i < count; i++ {
		addr := h.space.Malloc(size)
		mr, err := h.RegisterStatic(mem.Extent{Addr: addr, Len: size})
		if err != nil {
			return nil, fmt.Errorf("ib: buffer pool registration: %w", err)
		}
		pool.free = append(pool.free, &Buffer{Addr: addr, Size: size, MR: mr, pool: pool})
	}
	return pool, nil
}

// BufSize returns the size of each buffer.
func (pool *BufPool) BufSize() int64 { return pool.size }

// Get returns a free buffer, blocking until one is available.
func (pool *BufPool) Get(p *sim.Proc) *Buffer {
	for len(pool.free) == 0 {
		pool.cond.Wait(p)
	}
	b := pool.free[len(pool.free)-1]
	pool.free = pool.free[:len(pool.free)-1]
	return b
}

// Put returns a buffer to the pool and wakes one waiter.
func (b *Buffer) Put() {
	b.pool.free = append(b.pool.free, b)
	b.pool.cond.Signal()
}
