package ib

import (
	"bytes"
	"testing"
	"time"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// pair builds two HCA-equipped nodes on one fabric.
func pair(t *testing.T) (*sim.Engine, *HCA, *HCA) {
	t.Helper()
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	a := NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), DefaultParams())
	b := NewHCA(net.AddNode("b"), mem.NewAddrSpace("b"), DefaultParams())
	return eng, a, b
}

// run tolerates the forever-parked infrastructure processes.
func run(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if err := eng.Run(); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			t.Fatal(err)
		}
	}
}

func TestRegisterChargesCostModel(t *testing.T) {
	eng, a, _ := pair(t)
	addr := a.Space().Malloc(10 * mem.PageSize)
	var regTime, deregTime sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		mr, err := a.Register(p, mem.Extent{Addr: addr, Len: 10 * mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		regTime = p.Now().Sub(t0)
		t0 = p.Now()
		a.Deregister(p, mr)
		deregTime = p.Now().Sub(t0)
	})
	run(t, eng)
	// T = 0.77µs * 10 + 7.42µs = 15.12µs
	if want := 15120 * time.Nanosecond; regTime != want {
		t.Errorf("registration of 10 pages took %v, want %v", regTime, want)
	}
	// T = 0.23µs * 10 + 1.1µs = 3.4µs
	if want := 3400 * time.Nanosecond; deregTime != want {
		t.Errorf("deregistration of 10 pages took %v, want %v", deregTime, want)
	}
	if a.Counters.Registrations != 1 || a.Counters.Deregistrations != 1 {
		t.Errorf("counters = %+v", a.Counters)
	}
}

func TestRegisterUnallocatedFails(t *testing.T) {
	eng, a, _ := pair(t)
	addr := a.Space().Malloc(mem.PageSize)
	a.Space().Reserve(2)
	a.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		_, err := a.Register(p, mem.Extent{Addr: addr, Len: 4 * mem.PageSize})
		if err != ErrNotAllocated {
			t.Errorf("err = %v, want ErrNotAllocated", err)
		}
		if p.Now() == 0 {
			t.Error("failed registration must still cost time")
		}
	})
	run(t, eng)
	if a.Counters.RegFailures != 1 {
		t.Errorf("RegFailures = %d, want 1", a.Counters.RegFailures)
	}
}

func TestRegisterPinLimit(t *testing.T) {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	params := DefaultParams()
	params.MaxPinnedBytes = 4 * mem.PageSize
	a := NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), params)
	addr := a.Space().Malloc(8 * mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		mr, err := a.Register(p, mem.Extent{Addr: addr, Len: 3 * mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Register(p, mem.Extent{Addr: addr + 4*mem.PageSize, Len: 2 * mem.PageSize}); err != ErrPinLimit {
			t.Errorf("err = %v, want ErrPinLimit", err)
		}
		a.Deregister(p, mr)
		if _, err := a.Register(p, mem.Extent{Addr: addr + 4*mem.PageSize, Len: 2 * mem.PageSize}); err != nil {
			t.Errorf("after dereg, err = %v", err)
		}
	})
	run(t, eng)
}

func TestSendRecv(t *testing.T) {
	eng, a, b := pair(t)
	qa, qb := Connect(a, b)
	var got string
	eng.Go("recv", func(p *sim.Proc) {
		size, payload := qb.Recv(p)
		if size != 100 {
			t.Errorf("size = %d", size)
		}
		got = payload.(string)
	})
	eng.Go("send", func(p *sim.Proc) {
		qa.Send(p, 100, "request")
	})
	run(t, eng)
	if got != "request" {
		t.Errorf("payload = %q", got)
	}
}

func TestRDMAWriteGatherDataIntegrity(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)

	// Three discontiguous client segments gathered into one server buffer.
	src := a.Space().Malloc(8 * mem.PageSize)
	segs := []SGE{
		{Addr: src + 100, Len: 300},
		{Addr: src + 5000, Len: 123},
		{Addr: src + 20000, Len: 777},
	}
	var want []byte
	for i, s := range segs {
		data := bytes.Repeat([]byte{byte('A' + i)}, int(s.Len))
		if err := a.Space().Write(s.Addr, data); err != nil {
			t.Fatal(err)
		}
		want = append(want, data...)
	}
	dst := b.Space().Malloc(mem.PageSize)

	eng.Go("xfer", func(p *sim.Proc) {
		mrA, err := a.Register(p, mem.Extent{Addr: src, Len: 8 * mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		mrB, err := b.Register(p, mem.Extent{Addr: dst, Len: mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		qa.RDMAWrite(p, segs, dst, mrB.Key)
		p.Sleep(time.Millisecond) // let the wire drain
		got, err := b.Space().Read(dst, TotalLen(segs))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("gathered data mismatch at server")
		}
		a.Deregister(p, mrA)
	})
	run(t, eng)
	if a.Counters.RDMAWrites != 1 {
		t.Errorf("RDMAWrites = %d, want 1 (3 SGEs fit one WR)", a.Counters.RDMAWrites)
	}
}

func TestRDMAReadScatterDataIntegrity(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)

	src := b.Space().Malloc(mem.PageSize)
	want := make([]byte, 1200)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if err := b.Space().Write(src, want); err != nil {
		t.Fatal(err)
	}
	dst := a.Space().Malloc(4 * mem.PageSize)
	segs := []SGE{
		{Addr: dst + 64, Len: 400},
		{Addr: dst + 4096, Len: 800},
	}
	eng.Go("xfer", func(p *sim.Proc) {
		mrA, err := a.Register(p, mem.Extent{Addr: dst, Len: 4 * mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		mrB, err := b.Register(p, mem.Extent{Addr: src, Len: mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		qa.RDMARead(p, segs, src, mrB.Key)
		var got []byte
		for _, s := range segs {
			b, err := a.Space().Read(s.Addr, s.Len)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b...)
		}
		if !bytes.Equal(got, want) {
			t.Error("scattered data mismatch at client")
		}
		_ = mrA
	})
	run(t, eng)
}

func TestRDMAWriteLatencyMatchesTable2(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	src := a.Space().Malloc(mem.PageSize)
	dst := b.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: mem.PageSize})
		a.Register(p, mem.Extent{Addr: src, Len: mem.PageSize})
		start := p.Now()
		qa.RDMAWrite(p, []SGE{{Addr: src, Len: 4}}, dst, mrB.Key)
		// Local completion includes the WR overhead; one-way data
		// latency is the wire latency (~6µs, Table 2).
		elapsed := p.Now().Sub(start)
		if elapsed > 10*time.Microsecond {
			t.Errorf("4-byte RDMA write completion %v, want a few µs", elapsed)
		}
	})
	run(t, eng)
}

func TestRDMAReadLatencyMatchesTable2(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	src := b.Space().Malloc(mem.PageSize)
	dst := a.Space().Malloc(mem.PageSize)
	var elapsed sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: src, Len: mem.PageSize})
		a.Register(p, mem.Extent{Addr: dst, Len: mem.PageSize})
		start := p.Now()
		qa.RDMARead(p, []SGE{{Addr: dst, Len: 4}}, src, mrB.Key)
		elapsed = p.Now().Sub(start)
	})
	run(t, eng)
	// Paper: 12.4µs. Two wire latencies plus turnaround ≈ 12.3-13µs.
	if elapsed < 11*time.Microsecond || elapsed > 15*time.Microsecond {
		t.Errorf("4-byte RDMA read latency %v, want ≈12.4µs", elapsed)
	}
}

func TestRDMAWriteSplitsAtMaxSGE(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	const nseg = 200 // > 3 * 64
	src := a.Space().Malloc(int64(nseg) * 256)
	dst := b.Space().Malloc(int64(nseg) * 64)
	var segs []SGE
	for i := 0; i < nseg; i++ {
		segs = append(segs, SGE{Addr: src + mem.Addr(i*256), Len: 64})
	}
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: int64(nseg) * 64})
		a.Register(p, mem.Extent{Addr: src, Len: int64(nseg) * 256})
		qa.RDMAWrite(p, segs, dst, mrB.Key)
	})
	run(t, eng)
	// ceil(200/64) = 4 work requests.
	if a.Counters.RDMAWrites != 4 {
		t.Errorf("RDMAWrites = %d, want 4", a.Counters.RDMAWrites)
	}
}

func TestRDMAWriteUnregisteredLocalFails(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	src := a.Space().Malloc(mem.PageSize)
	dst := b.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: mem.PageSize})
		writes := a.Counters.RDMAWrites
		if err := qa.RDMAWrite(p, []SGE{{Addr: src, Len: 16}}, dst, mrB.Key); err == nil {
			t.Error("expected error for unregistered local segment")
		}
		if a.Counters.RDMAWrites != writes {
			t.Error("failed work request must not be posted")
		}
		if err := qa.RDMARead(p, []SGE{{Addr: src, Len: 16}}, dst, mrB.Key); err == nil {
			t.Error("expected error for unregistered local read segment")
		}
	})
	run(t, eng)
}

func TestRDMAWriteOutsideRemoteRegionPanics(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	src := a.Space().Malloc(mem.PageSize)
	dst := b.Space().Malloc(mem.PageSize)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-region remote write")
		}
	}()
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: 64})
		a.Register(p, mem.Extent{Addr: src, Len: mem.PageSize})
		qa.RDMAWrite(p, []SGE{{Addr: src, Len: 128}}, dst, mrB.Key)
		p.Sleep(time.Millisecond)
	})
	run(t, eng)
}

func TestLargeTransferBandwidth(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	const size = 16 * simnet.MB
	src := a.Space().Malloc(size)
	dst := b.Space().Malloc(size)
	var elapsed sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: size})
		a.Register(p, mem.Extent{Addr: src, Len: size})
		start := p.Now()
		qa.RDMAWrite(p, []SGE{{Addr: src, Len: size}}, dst, mrB.Key)
		elapsed = p.Now().Sub(start)
	})
	run(t, eng)
	bw := float64(size) / elapsed.Seconds() / simnet.MB
	if bw < 800 || bw > 830 {
		t.Errorf("large-write bandwidth = %.0f MB/s, want ≈827", bw)
	}
}

func TestRegCacheHitIsFreeAndCounted(t *testing.T) {
	eng, a, _ := pair(t)
	cache := NewRegCache(a, 64*mem.PageSize, 16)
	addr := a.Space().Malloc(8 * mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		mr1, err := cache.Get(p, mem.Extent{Addr: addr, Len: 8 * mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		cache.Put(p, mr1)
		t0 := p.Now()
		// Covered sub-extent: must hit.
		mr2, err := cache.Get(p, mem.Extent{Addr: addr + 100, Len: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if p.Now() != t0 {
			t.Error("cache hit consumed virtual time")
		}
		if mr2 != mr1 {
			t.Error("hit returned a different MR")
		}
		cache.Put(p, mr2)
	})
	run(t, eng)
	if a.Counters.RegCacheHits != 1 || a.Counters.RegCacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", a.Counters.RegCacheHits, a.Counters.RegCacheMisses)
	}
}

func TestRegCacheEvictsLRU(t *testing.T) {
	eng, a, _ := pair(t)
	cache := NewRegCache(a, 2*mem.PageSize, 100)
	addr1 := a.Space().Malloc(mem.PageSize)
	addr2 := a.Space().Malloc(mem.PageSize)
	addr3 := a.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		m1, _ := cache.Get(p, mem.Extent{Addr: addr1, Len: mem.PageSize})
		cache.Put(p, m1)
		m2, _ := cache.Get(p, mem.Extent{Addr: addr2, Len: mem.PageSize})
		cache.Put(p, m2)
		// Third region exceeds 2-page capacity: addr1 (LRU) must go.
		m3, _ := cache.Get(p, mem.Extent{Addr: addr3, Len: mem.PageSize})
		cache.Put(p, m3)
		if cache.Len() != 2 {
			t.Errorf("cache len = %d, want 2", cache.Len())
		}
		// addr1 must now miss (re-register), addr2 must still hit.
		hits0 := a.Counters.RegCacheHits
		m2b, _ := cache.Get(p, mem.Extent{Addr: addr2, Len: mem.PageSize})
		cache.Put(p, m2b)
		if a.Counters.RegCacheHits != hits0+1 {
			t.Error("addr2 should still be cached")
		}
	})
	run(t, eng)
	if a.Counters.Deregistrations == 0 {
		t.Error("eviction should deregister")
	}
}

func TestRegCacheReferencedEntriesNotEvicted(t *testing.T) {
	eng, a, _ := pair(t)
	cache := NewRegCache(a, mem.PageSize, 100)
	addr1 := a.Space().Malloc(mem.PageSize)
	addr2 := a.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		m1, _ := cache.Get(p, mem.Extent{Addr: addr1, Len: mem.PageSize})
		// m1 still referenced: the next Get cannot evict it, but can
		// still register (HCA limit permits).
		m2, err := cache.Get(p, mem.Extent{Addr: addr2, Len: mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		if !m1.Valid() {
			t.Error("referenced MR was evicted")
		}
		cache.Put(p, m1)
		cache.Put(p, m2)
	})
	run(t, eng)
}

func TestBufPoolBlocksWhenEmpty(t *testing.T) {
	eng, a, _ := pair(t)
	var pool *BufPool
	var gotAt sim.Time
	eng.Go("setup", func(p *sim.Proc) {
		var err error
		pool, err = NewBufPool(a, 1, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		b1 := pool.Get(p)
		eng.Go("waiter", func(q *sim.Proc) {
			b2 := pool.Get(q)
			gotAt = q.Now()
			b2.Put()
		})
		p.Sleep(50 * time.Microsecond)
		b1.Put()
	})
	run(t, eng)
	if gotAt < sim.Time(50*time.Microsecond) {
		t.Errorf("second Get returned at %v, want after the Put at 50µs", gotAt)
	}
}

func TestBufPoolPreRegistered(t *testing.T) {
	eng, a, _ := pair(t)
	eng.Go("t", func(p *sim.Proc) {
		pool, err := NewBufPool(a, 4, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		regs := a.Counters.Registrations
		b := pool.Get(p)
		b.Put()
		if a.Counters.Registrations != regs {
			t.Error("Get/Put must not register")
		}
		if !b.MR.Valid() {
			t.Error("pool buffer must stay registered")
		}
		if sge, err := b.SGE(100); err != nil || sge.Len != 100 {
			t.Errorf("SGE helper: sge=%v err=%v", sge, err)
		}
	})
	run(t, eng)
}

func TestUnalignedSegmentsCostMore(t *testing.T) {
	eng, a, b := pair(t)
	qa, _ := Connect(a, b)
	src := a.Space().Malloc(4 * mem.PageSize)
	dst := b.Space().Malloc(mem.PageSize)
	var tAligned, tUnaligned sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		mrB, _ := b.Register(p, mem.Extent{Addr: dst, Len: mem.PageSize})
		a.Register(p, mem.Extent{Addr: src, Len: 4 * mem.PageSize})
		t0 := p.Now()
		qa.RDMAWrite(p, []SGE{{Addr: src, Len: 128}}, dst, mrB.Key)
		tAligned = p.Now().Sub(t0)
		t0 = p.Now()
		qa.RDMAWrite(p, []SGE{{Addr: src + 7, Len: 128}}, dst, mrB.Key)
		tUnaligned = p.Now().Sub(t0)
	})
	run(t, eng)
	if tUnaligned <= tAligned {
		t.Errorf("unaligned (%v) should cost more than aligned (%v)", tUnaligned, tAligned)
	}
}

func TestCountersAdd(t *testing.T) {
	var c, d Counters
	c.Registrations, c.BytesOut = 2, 100
	d.Registrations, d.BytesOut = 3, 50
	c.Add(d)
	if c.Registrations != 5 || c.BytesOut != 150 {
		t.Errorf("Add: %+v", c)
	}
}
