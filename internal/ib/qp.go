package ib

import (
	"fmt"

	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/trace"
)

// SGE is one scatter/gather entry: a contiguous segment of local memory.
type SGE struct {
	Addr mem.Addr
	Len  int64
}

// Extent returns the segment as a memory extent.
func (s SGE) Extent() mem.Extent { return mem.Extent{Addr: s.Addr, Len: s.Len} }

// TotalLen sums the lengths of a scatter/gather list.
func TotalLen(sges []SGE) int64 {
	var n int64
	for _, s := range sges {
		n += s.Len
	}
	return n
}

// HCA is one node's host channel adapter.
type HCA struct {
	node   *simnet.Node
	space  *mem.AddrSpace
	params Params

	mrs         map[Key]*MR
	nextKey     Key
	pinnedBytes int64

	qps        map[uint32]*QP
	nextQPNum  uint32
	nextReadID uint64
	reads      map[uint64]*sim.Mailbox
	readMBFree []*sim.Mailbox // drained reply mailboxes, reused across reads

	faults FaultInjector
	tracer *trace.Tracer
	mx     hcaMetrics
	down   bool

	// wp is this HCA's shard's pool bundle (wire structs + scratch
	// buffers), shared by every HCA whose node runs on the same shard.
	wp *wirePool

	// Counters accumulates operation counts for this HCA.
	Counters Counters

	// OnRDMAWriteApplied, if set, is called (in virtual time, at the
	// instant the payload lands in host memory) for every inbound RDMA
	// write — a measurement hook for latency experiments.
	OnRDMAWriteApplied func(raddr mem.Addr, n int64)
}

// NewHCA attaches an HCA to a fabric node and its host address space, and
// starts the adapter's inbound processing engine.
func NewHCA(node *simnet.Node, space *mem.AddrSpace, params Params) *HCA {
	h := &HCA{
		node:   node,
		space:  space,
		params: params,
		mrs:    make(map[Key]*MR),
		qps:    make(map[uint32]*QP),
		reads:  make(map[uint64]*sim.Mailbox),
	}
	aux := node.Network().ShardAux(node.Group().ShardIndex())
	if *aux == nil {
		*aux = new(wirePool)
	}
	h.wp = (*aux).(*wirePool)
	h.engine().GoOn(node.Group(), fmt.Sprintf("hca[%s]", node.Name), h.dispatch)
	return h
}

func (h *HCA) engine() *sim.Engine { return h.node.Engine() }

// Node returns the fabric node.
func (h *HCA) Node() *simnet.Node { return h.node }

// NodeID returns the fabric node id.
func (h *HCA) NodeID() simnet.NodeID { return h.node.ID }

// Space returns the host address space.
func (h *HCA) Space() *mem.AddrSpace { return h.space }

// Params returns the timing model.
func (h *HCA) Params() Params { return h.params }

// QP is one endpoint of a connected (reliable) queue pair.
type QP struct {
	hca       *HCA
	num       uint32
	remote    simnet.NodeID
	remoteNum uint32
	inbox     *sim.Mailbox // received channel-semantics messages
	state     QPState
	control   bool // exempt from probabilistic WR-error injection
}

// Connect creates a queue pair between two HCAs and returns both endpoints.
func Connect(a, b *HCA) (*QP, *QP) {
	qa := a.newQP()
	qb := b.newQP()
	qa.remote, qa.remoteNum = b.node.ID, qb.num
	qb.remote, qb.remoteNum = a.node.ID, qa.num
	return qa, qb
}

func (h *HCA) newQP() *QP {
	h.nextQPNum++
	q := &QP{
		hca:   h,
		num:   h.nextQPNum,
		inbox: h.engine().NewMailbox(fmt.Sprintf("qp[%s.%d]", h.node.Name, h.nextQPNum)),
	}
	h.qps[q.num] = q
	return q
}

// HCA returns the adapter owning this endpoint.
func (q *QP) HCA() *HCA { return q.hca }

// Wire message formats. Sizes on the wire are payload plus a small header.
const wireHeader = 32

type wireSend struct {
	dstQP   uint32
	size    int
	payload any

	next *wireSend
}

type wireRDMAWrite struct {
	raddr mem.Addr
	rkey  Key
	data  []byte

	next *wireRDMAWrite
}

type wireRDMAReadReq struct {
	id        uint64
	initiator simnet.NodeID
	raddr     mem.Addr
	rkey      Key
	size      int64

	next *wireRDMAReadReq
}

type wireRDMAReadResp struct {
	id   uint64
	data []byte

	next *wireRDMAReadResp
}

// wirePool is one shard's bundle of wire-struct free lists plus the scratch
// pool for RDMA gather and read-response staging copies. It lives in the
// fabric's per-shard aux slot, shared by every HCA on the shard: a wire
// struct or buffer is allocated on the sender's shard and released on the
// consumer's, and each list is only ever touched from its own shard's
// worker thread, so no locking is needed. At one shard there is a single
// bundle and every flow — including one-directional RDMA streams —
// recirculates structs allocation-free, like the pre-shard owner pools. At
// higher shard counts a strictly one-way flow migrates structs to the
// consuming shard and the sender's allocations are the (accounted) price
// of parallelism.
type wirePool struct {
	scratch       mem.ScratchPool
	freeSends     *wireSend
	freeWrites    *wireRDMAWrite
	freeReadReqs  *wireRDMAReadReq
	freeReadResps *wireRDMAReadResp
}

// allocWireSend returns a recycled wire struct from h's shard pool, or a
// fresh one.
func (h *HCA) allocWireSend() *wireSend {
	if w := h.wp.freeSends; w != nil {
		h.wp.freeSends = w.next
		w.next = nil
		return w
	}
	return &wireSend{}
}

// putWireSend releases a consumed wire struct into h's shard pool. h must
// be the HCA on whose shard the caller is executing.
func (h *HCA) putWireSend(w *wireSend) {
	w.payload = nil
	w.next = h.wp.freeSends
	h.wp.freeSends = w
}

func (h *HCA) allocWireWrite() *wireRDMAWrite {
	if w := h.wp.freeWrites; w != nil {
		h.wp.freeWrites = w.next
		w.next = nil
		return w
	}
	return &wireRDMAWrite{}
}

func (h *HCA) putWireWrite(w *wireRDMAWrite) {
	w.data = nil
	w.next = h.wp.freeWrites
	h.wp.freeWrites = w
}

func (h *HCA) allocWireReadReq() *wireRDMAReadReq {
	if w := h.wp.freeReadReqs; w != nil {
		h.wp.freeReadReqs = w.next
		w.next = nil
		return w
	}
	return &wireRDMAReadReq{}
}

func (h *HCA) putWireReadReq(w *wireRDMAReadReq) {
	w.next = h.wp.freeReadReqs
	h.wp.freeReadReqs = w
}

func (h *HCA) allocWireReadResp() *wireRDMAReadResp {
	if w := h.wp.freeReadResps; w != nil {
		h.wp.freeReadResps = w.next
		w.next = nil
		return w
	}
	return &wireRDMAReadResp{}
}

func (h *HCA) putWireReadResp(w *wireRDMAReadResp) {
	w.data = nil
	w.next = h.wp.freeReadResps
	h.wp.freeReadResps = w
}

// dispatch is the adapter's inbound engine: it demultiplexes wire messages
// to queue pairs, applies RDMA writes to host memory, and serves RDMA reads.
//
// With a fault plane attached, anomalies that are hard protocol-invariant
// violations in a fault-free run — an RDMA against a deregistered region, a
// read response nobody is waiting for — become expected leftovers of a
// failed epoch (the peer timed out, reset, and released its buffers) and
// are discarded instead of failing the simulation. A down adapter discards
// everything: in-flight requests to a crashed daemon die silently.
//
// The dispatch engine blocks by design (Recv, read turnaround, the response
// send), so only allocation and wall-clock effects are budgeted.
//
//pvfslint:hotpath alloc,syscall
func (h *HCA) dispatch(p *sim.Proc) {
	net := h.node.Network()
	for {
		m := h.node.Inbox.Recv(p).(*simnet.Message)
		if h.down {
			h.discard(m)
		} else {
			h.handleWire(p, m)
		}
		net.Recycle(m)
	}
}

// scratch is the staging-buffer pool of this HCA's shard, shared by every
// HCA on the shard (single-threaded under the shard's worker).
func (h *HCA) scratch() *mem.ScratchPool { return &h.wp.scratch }

// discard frees the pooled staging and wire struct of a message a down
// adapter throws away.
func (h *HCA) discard(m *simnet.Message) {
	switch w := m.Payload.(type) {
	case *wireSend:
		h.putWireSend(w)
	case *wireRDMAWrite:
		h.scratch().Put(w.data)
		h.putWireWrite(w)
	case *wireRDMAReadReq:
		h.putWireReadReq(w)
	case *wireRDMAReadResp:
		h.scratch().Put(w.data)
		h.putWireReadResp(w)
	}
}

// handleWire processes one inbound wire message on a live adapter.
func (h *HCA) handleWire(p *sim.Proc, m *simnet.Message) {
	switch w := m.Payload.(type) {
	case *wireSend:
		q, ok := h.qps[w.dstQP]
		if !ok {
			sim.Failf("ib: %s: send to unknown QP %d", h.node.Name, w.dstQP)
		}
		q.inbox.Send(w)
	case *wireRDMAWrite:
		mr := h.lookup(w.rkey)
		if !mr.Valid() || !mr.Covers(mem.Extent{Addr: w.raddr, Len: int64(len(w.data))}) {
			if h.faults != nil {
				h.scratch().Put(w.data)
				h.putWireWrite(w)
				return // stale write from a failed epoch; NAK and drop
			}
			sim.Failf("ib: %s: RDMA write outside registered region (rkey %d)", h.node.Name, w.rkey)
		}
		if err := h.space.Write(w.raddr, w.data); err != nil {
			sim.Failf("ib: %s: RDMA write fault: %v", h.node.Name, err)
		}
		if h.OnRDMAWriteApplied != nil {
			h.OnRDMAWriteApplied(w.raddr, int64(len(w.data)))
		}
		h.scratch().Put(w.data)
		h.putWireWrite(w)
	case *wireRDMAReadReq:
		mr := h.lookup(w.rkey)
		if !mr.Valid() || !mr.Covers(mem.Extent{Addr: w.raddr, Len: w.size}) {
			if h.faults != nil {
				h.putWireReadReq(w)
				return // stale read from a failed epoch; initiator times out
			}
			sim.Failf("ib: %s: RDMA read outside registered region (rkey %d)", h.node.Name, w.rkey)
		}
		data := h.scratch().Get(int(w.size))
		if err := h.space.ReadInto(w.raddr, data); err != nil {
			sim.Failf("ib: %s: RDMA read fault: %v", h.node.Name, err)
		}
		p.Sleep(h.params.ReadTurnaround)
		resp := h.allocWireReadResp()
		resp.id, resp.data = w.id, data
		initiator := w.initiator
		h.putWireReadReq(w)
		if err := h.node.Send(p, initiator, len(data)+wireHeader, resp); err != nil {
			h.scratch().Put(data)
			h.putWireReadResp(resp)
			return // partitioned mid-read; the initiator times out
		}
	case *wireRDMAReadResp:
		mb, ok := h.reads[w.id]
		if !ok {
			if h.faults != nil {
				h.scratch().Put(w.data)
				h.putWireReadResp(w)
				return // response for a read that already timed out
			}
			sim.Failf("ib: %s: RDMA read response for unknown id %d", h.node.Name, w.id)
		}
		delete(h.reads, w.id)
		// Dispatch runs on the initiator's own shard, so the gauge decrement
		// stays node-local.
		h.mx.outReads.Add(p.Now(), -1)
		// The wire struct itself travels the last hop: a pointer crosses
		// the mailbox without boxing, where the bare []byte would allocate
		// an interface header per read. The initiator unwraps and recycles.
		mb.Send(w)
	default:
		sim.Failf("ib: %s: unknown wire message %T", h.node.Name, m.Payload)
	}
}

// Send transmits a channel-semantics message of the given payload size to the
// remote endpoint, where it is delivered to a matching Recv. The caller
// blocks for wire serialization plus the work-request overhead. A fault-
// injected completion error or a partitioned link fails the send with a
// *WCError and moves the QP to the error state; without a fault plane
// attached Send never fails.
//
//pvfslint:hotpath alloc,syscall
func (q *QP) Send(p *sim.Proc, size int, payload any) error {
	h := q.hca
	if err := q.wrFault(p, "send"); err != nil {
		return err
	}
	sp := h.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), h.node.Name, "ib.send", trace.StageWire)
	sp.SetBytes(int64(size))
	h.Counters.SendMsgs++
	h.Counters.BytesOut += int64(size)
	h.mx.sendQ.Add(p.Now(), 1)
	w := h.allocWireSend()
	w.dstQP, w.size, w.payload = q.remoteNum, size, payload
	err := h.node.Send(p, q.remote, size+wireHeader, w)
	if err != nil {
		h.putWireSend(w) // dropped on the wire; never reached the peer
		h.mx.sendQ.Add(p.Now(), -1)
		err = q.wireFault("send", err)
		sp.EndErr(p.Now(), err)
		return err
	}
	p.Sleep(h.params.WROverhead)
	h.mx.sendQ.Add(p.Now(), -1)
	sp.End(p.Now())
	return nil
}

// Recv blocks until a message arrives on this endpoint and returns its
// payload and the sender-declared size.
func (q *QP) Recv(p *sim.Proc) (int, any) {
	w := q.inbox.Recv(p).(*wireSend)
	size, payload := w.size, w.payload
	q.hca.putWireSend(w)
	return size, payload
}

// RecvTimeout is Recv with a deadline; ok is false if nothing arrives
// within d. The recovery layer uses it to bound waits on a peer that may
// have crashed or been partitioned away.
func (q *QP) RecvTimeout(p *sim.Proc, d sim.Duration) (int, any, bool) {
	v, ok := q.inbox.RecvTimeout(p, d)
	if !ok {
		return 0, nil, false
	}
	w := v.(*wireSend)
	size, payload := w.size, w.payload
	q.hca.putWireSend(w)
	return size, payload, true
}

// getReadMB returns a drained reply mailbox from the free list, or a fresh
// one. Each outstanding RDMA read holds one until its response (or timeout).
func (h *HCA) getReadMB() *sim.Mailbox {
	if n := len(h.readMBFree); n > 0 {
		mb := h.readMBFree[n-1]
		h.readMBFree[n-1] = nil
		h.readMBFree = h.readMBFree[:n-1]
		return mb
	}
	return h.engine().NewMailbox(fmt.Sprintf("read[%s]", h.node.Name))
}

// putReadMB recycles a reply mailbox. The caller must guarantee it is empty
// and unreferenced by h.reads, so no late sender can reach it.
func (h *HCA) putReadMB(mb *sim.Mailbox) { h.readMBFree = append(h.readMBFree, mb) }

// sgeCost returns the initiator-side DMA setup time for a gather list.
func (h *HCA) sgeCost(sges []SGE) sim.Duration {
	var d sim.Duration
	for _, s := range sges {
		d += h.params.PerSGE
		if uint64(s.Addr)%64 != 0 {
			d += h.params.UnalignedPenalty
		}
	}
	return d
}

// checkLocal fails unless every SGE is covered by a registered local MR —
// the precondition real verbs enforce with a local protection fault.
func (h *HCA) checkLocal(op string, sges []SGE) error {
	for _, s := range sges {
		if s.Len <= 0 {
			return fmt.Errorf("ib: %s: empty SGE %v", op, s)
		}
		if !h.coveredLocally(s.Extent()) {
			return fmt.Errorf("ib: %s: %s: local segment %v not registered", h.node.Name, op, s.Extent())
		}
	}
	return nil
}

// RDMAWrite gathers the local segments and writes them contiguously into the
// remote region at raddr. Lists longer than MaxSGE are split into multiple
// work requests, each paying its own overhead. The caller blocks until the
// last work request's local completion; remote memory is updated when the
// data arrives on the wire (before any message the caller sends afterwards).
// An unregistered or unreadable local segment fails the whole work request
// before anything is sent.
//
//pvfslint:hotpath alloc,syscall
func (q *QP) RDMAWrite(p *sim.Proc, sges []SGE, raddr mem.Addr, rkey Key) error {
	h := q.hca
	if err := h.checkLocal("RDMA write", sges); err != nil {
		return err
	}
	sp := h.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), h.node.Name, "ib.rdma-write", trace.StageWire)
	if sp.Recording() {
		sp.SetBytes(TotalLen(sges))
		sp.Annotate("sges=%d", len(sges))
	}
	offset := int64(0)
	for len(sges) > 0 {
		n := len(sges)
		if n > h.params.MaxSGE {
			n = h.params.MaxSGE
		}
		wr := sges[:n]
		sges = sges[n:]
		size := TotalLen(wr)
		// Gather into one pooled staging buffer; the receiving dispatch
		// recycles it after scattering into host memory.
		data := h.scratch().Get(int(size))
		off := 0
		for _, s := range wr {
			if err := h.space.ReadInto(s.Addr, data[off:off+int(s.Len)]); err != nil {
				h.scratch().Put(data)
				err = fmt.Errorf("ib: %s: RDMA write gather fault: %w", h.node.Name, err)
				sp.EndErr(p.Now(), err)
				return err
			}
			off += int(s.Len)
		}
		if err := q.wrFault(p, "rdma-write"); err != nil {
			h.scratch().Put(data)
			sp.EndErr(p.Now(), err)
			return err
		}
		p.Sleep(h.sgeCost(wr))
		h.Counters.RDMAWrites++
		h.Counters.BytesOut += size
		h.mx.sendQ.Add(p.Now(), 1)
		w := h.allocWireWrite()
		w.raddr, w.rkey, w.data = raddr+mem.Addr(offset), rkey, data
		err := h.node.Send(p, q.remote, int(size)+wireHeader, w)
		if err != nil {
			h.scratch().Put(data) // dropped on the wire; never reached the peer
			h.putWireWrite(w)
			h.mx.sendQ.Add(p.Now(), -1)
			err = q.wireFault("rdma-write", err)
			sp.EndErr(p.Now(), err)
			return err
		}
		p.Sleep(h.params.WROverhead)
		h.mx.sendQ.Add(p.Now(), -1)
		offset += size
	}
	sp.End(p.Now())
	return nil
}

// RDMARead reads a contiguous remote region and scatters it into the local
// segments (the verbs shape: remote side contiguous, local side scattered).
// Lists longer than MaxSGE split into multiple work requests. The caller
// blocks until all data has arrived and been scattered. An unregistered or
// unwritable local segment fails the work request.
//
//pvfslint:hotpath alloc,syscall
func (q *QP) RDMARead(p *sim.Proc, sges []SGE, raddr mem.Addr, rkey Key) error {
	h := q.hca
	if err := h.checkLocal("RDMA read", sges); err != nil {
		return err
	}
	sp := h.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), h.node.Name, "ib.rdma-read", trace.StageWire)
	if sp.Recording() {
		sp.SetBytes(TotalLen(sges))
		sp.Annotate("sges=%d", len(sges))
	}
	offset := int64(0)
	for len(sges) > 0 {
		n := len(sges)
		if n > h.params.MaxSGE {
			n = h.params.MaxSGE
		}
		wr := sges[:n]
		sges = sges[n:]
		size := TotalLen(wr)
		if err := q.wrFault(p, "rdma-read"); err != nil {
			sp.EndErr(p.Now(), err)
			return err
		}
		h.nextReadID++
		id := h.nextReadID
		mb := h.getReadMB()
		h.reads[id] = mb
		h.mx.outReads.Add(p.Now(), 1)
		p.Sleep(h.sgeCost(wr))
		h.Counters.RDMAReads++
		req := h.allocWireReadReq()
		req.id, req.initiator = id, h.node.ID
		req.raddr, req.rkey, req.size = raddr+mem.Addr(offset), rkey, size
		err := h.node.Send(p, q.remote, wireHeader, req)
		if err != nil {
			delete(h.reads, id)
			h.mx.outReads.Add(p.Now(), -1)
			h.putWireReadReq(req)
			err = q.wireFault("rdma-read", err)
			sp.EndErr(p.Now(), err)
			return err
		}
		var data []byte
		if h.faults != nil {
			// Under faults the response may never come (responder crashed
			// or the return path partitioned): bound the wait.
			v, ok := mb.RecvTimeout(p, h.params.WRTimeout)
			if !ok {
				// The reads entry is gone, so a late response is discarded
				// in dispatch and never lands in the recycled mailbox.
				delete(h.reads, id)
				h.mx.outReads.Add(p.Now(), -1)
				h.putReadMB(mb)
				q.state = QPError
				h.Counters.WRErrors++
				wcErr := &WCError{Status: WCResponseTimeout, Op: "rdma-read"}
				sp.EndErr(p.Now(), wcErr)
				return wcErr
			}
			resp := v.(*wireRDMAReadResp)
			data = resp.data
			h.putWireReadResp(resp)
		} else {
			resp := mb.Recv(p).(*wireRDMAReadResp)
			data = resp.data
			h.putWireReadResp(resp)
		}
		h.putReadMB(mb)
		buf := data
		for _, s := range wr {
			if err := h.space.Write(s.Addr, data[:s.Len]); err != nil {
				h.scratch().Put(buf)
				err = fmt.Errorf("ib: %s: RDMA read scatter fault: %w", h.node.Name, err)
				sp.EndErr(p.Now(), err)
				return err
			}
			data = data[s.Len:]
		}
		h.scratch().Put(buf)
		offset += size
	}
	sp.End(p.Now())
	return nil
}
