// Package ib simulates an InfiniBand HCA at the verbs level: protection
// domains are implicit, memory regions must be registered before any data
// movement, queue pairs provide channel semantics (send/receive) and memory
// semantics (RDMA read/write), and RDMA work requests carry scatter/gather
// lists of up to MaxSGE entries.
//
// Every cost constant is taken from the paper's testbed measurements:
//
//   - registration: 0.77 µs per page + 7.42 µs per operation,
//   - deregistration: 0.23 µs per page + 1.10 µs per operation,
//   - RDMA write latency 6.0 µs, RDMA read latency 12.4 µs (Table 2),
//   - link bandwidth 827 MB/s (Table 2),
//   - host memory copy bandwidth 1300 MB/s (Section 3.2).
//
// Real payload bytes move between the simulated address spaces of the two
// nodes, so data integrity through gather/scatter paths is testable.
package ib

import (
	"time"

	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// HardMaxSGE is the InfiniBand hardware cap on scatter/gather entries per
// work request (Section 4.1). Params.MaxSGE configures the simulated HCA but
// may not exceed this; the sgelimit analyzer enforces both directions.
const HardMaxSGE = 64

// Params holds the HCA timing and capacity model.
type Params struct {
	// RegPerPage and RegPerOp model registration cost T = a*pages + b.
	RegPerPage sim.Duration
	RegPerOp   sim.Duration
	// DeregPerPage and DeregPerOp model deregistration the same way.
	DeregPerPage sim.Duration
	DeregPerOp   sim.Duration

	// MaxSGE is the scatter/gather limit per work request (64 in
	// InfiniBand, per Section 4.1).
	MaxSGE int

	// WROverhead is the per-work-request initiator cost (doorbell ring
	// plus completion processing), charged after wire serialization.
	WROverhead sim.Duration
	// PerSGE is the per-segment DMA setup cost within a work request.
	PerSGE sim.Duration
	// UnalignedPenalty is added per SGE whose address is not 64-byte
	// aligned (Section 4.1, "Buffer alignment").
	UnalignedPenalty sim.Duration
	// ReadTurnaround is the responder-side cost of an RDMA read.
	ReadTurnaround sim.Duration

	// MemcpyBandwidth is host memory copy bandwidth in bytes/second,
	// used for pack/unpack staging copies.
	MemcpyBandwidth float64

	// QPResetLatency is the cost of recovering a queue pair from the
	// error state (ERR→RESET→RTS plus connection re-establishment).
	QPResetLatency sim.Duration
	// WRTimeout bounds the wait for an RDMA read response when a fault
	// plane is attached; without one the wait is unbounded (and safe).
	WRTimeout sim.Duration

	// MaxPinnedBytes and MaxMRs bound total registered memory; exceeding
	// either makes Register fail, modeling registration thrashing limits.
	MaxPinnedBytes int64
	MaxMRs         int
}

// DefaultParams returns the paper's testbed constants.
func DefaultParams() Params {
	return Params{
		RegPerPage:       770 * time.Nanosecond,
		RegPerOp:         7420 * time.Nanosecond,
		DeregPerPage:     230 * time.Nanosecond,
		DeregPerOp:       1100 * time.Nanosecond,
		MaxSGE:           HardMaxSGE,
		WROverhead:       2 * time.Microsecond,
		PerSGE:           100 * time.Nanosecond,
		UnalignedPenalty: 200 * time.Nanosecond,
		ReadTurnaround:   300 * time.Nanosecond,
		MemcpyBandwidth:  1300 * simnet.MB,
		QPResetLatency:   25 * time.Microsecond,
		WRTimeout:        500 * time.Microsecond,
		MaxPinnedBytes:   1 << 30, // 1 GiB of pinnable memory
		MaxMRs:           64 << 10,
	}
}

// RegCost returns the time to register pages pages.
func (p Params) RegCost(pages int64) sim.Duration {
	return time.Duration(pages)*p.RegPerPage + p.RegPerOp
}

// DeregCost returns the time to deregister pages pages.
func (p Params) DeregCost(pages int64) sim.Duration {
	return time.Duration(pages)*p.DeregPerPage + p.DeregPerOp
}

// MemcpyTime returns the host copy time for size bytes.
func (p Params) MemcpyTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.Duration(float64(size) / p.MemcpyBandwidth * 1e9)
}

// Counters accumulates per-HCA operation counts. Table 4 and Table 6 of the
// paper report these directly.
type Counters struct {
	Registrations   int64 // successful MR registrations
	RegFailures     int64 // registrations rejected (holes or limits)
	Deregistrations int64
	RegCacheHits    int64 // lookups satisfied by the pin-down cache
	RegCacheMisses  int64
	SendMsgs        int64 // channel-semantics messages sent
	RDMAWrites      int64 // RDMA write work requests
	RDMAReads       int64 // RDMA read work requests
	BytesOut        int64 // payload bytes transmitted (all semantics)
	WRErrors        int64 // work requests completed in error (fault plane)
	QPResets        int64 // queue-pair error-state recoveries
	RegTime         sim.Duration
	DeregTime       sim.Duration
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Registrations += other.Registrations
	c.RegFailures += other.RegFailures
	c.Deregistrations += other.Deregistrations
	c.RegCacheHits += other.RegCacheHits
	c.RegCacheMisses += other.RegCacheMisses
	c.SendMsgs += other.SendMsgs
	c.RDMAWrites += other.RDMAWrites
	c.RDMAReads += other.RDMAReads
	c.BytesOut += other.BytesOut
	c.WRErrors += other.WRErrors
	c.QPResets += other.QPResets
	c.RegTime += other.RegTime
	c.DeregTime += other.DeregTime
}
