package bench

import (
	"strings"
	"testing"
)

// The tests below assert the *shape* claims of the paper's evaluation on
// the short-mode sweeps: who wins, by roughly what factor, and where the
// regimes flip. Absolute values are checked loosely (the substrate is a
// simulator, not the authors' testbed).

func TestTable2MatchesPaper(t *testing.T) {
	tbl := Table2(RunOpts{Short: true})
	// RDMA write ≈ 6.0µs / 827 MB/s.
	if lat := tbl.CellF(0, "latency_us"); lat < 5.5 || lat > 7 {
		t.Errorf("RDMA write latency = %v µs, want ≈6.0", lat)
	}
	if bwv := tbl.CellF(0, "bandwidth_MB_s"); bwv < 800 || bwv > 840 {
		t.Errorf("RDMA write bandwidth = %v, want ≈827", bwv)
	}
	// RDMA read ≈ 12.4µs.
	if lat := tbl.CellF(1, "latency_us"); lat < 11 || lat > 14 {
		t.Errorf("RDMA read latency = %v µs, want ≈12.4", lat)
	}
	// MPI latency above verbs latency.
	if tbl.CellF(2, "latency_us") <= tbl.CellF(0, "latency_us") {
		t.Error("MPI latency should exceed raw verbs latency")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tbl := Table3(RunOpts{Short: true})
	cold, warm := tbl.FindRow("without cache"), tbl.FindRow("with cache")
	if w := tbl.CellF(cold, "write_MB_s"); w < 20 || w > 30 {
		t.Errorf("uncached write = %v, want ≈25", w)
	}
	if r := tbl.CellF(cold, "read_MB_s"); r < 15 || r > 25 {
		t.Errorf("uncached read = %v, want ≈20", r)
	}
	if w := tbl.CellF(warm, "write_MB_s"); w < 270 || w > 320 {
		t.Errorf("cached write = %v, want ≈303", w)
	}
	if r := tbl.CellF(warm, "read_MB_s"); r < 1200 || r > 1450 {
		t.Errorf("cached read = %v, want ≈1391", r)
	}
}

func TestFig3Shape(t *testing.T) {
	tbl := Fig3(RunOpts{Short: true})
	last := len(tbl.Rows) - 1 // largest array
	contig := tbl.CellF(last, "contig_noreg")
	multi := tbl.CellF(last, "multiple_noreg")
	packNoReg := tbl.CellF(last, "pack_noreg")
	packReg := tbl.CellF(last, "pack_reg")
	gMult := tbl.CellF(last, "gather_multreg")
	gOne := tbl.CellF(last, "gather_onereg")

	if contig < gOne || contig < multi || contig < packNoReg {
		t.Error("contiguous must be the upper bound")
	}
	if gOne <= gMult {
		t.Errorf("OGR gather (%v) must beat per-row registration (%v)", gOne, gMult)
	}
	if packNoReg <= packReg {
		t.Errorf("pack without registration (%v) must beat pack with (%v)", packNoReg, packReg)
	}
	// pack is copy-bound ≈ 1/(1/1300+1/827) ≈ 505 MB/s.
	if packNoReg < 450 || packNoReg > 560 {
		t.Errorf("pack bandwidth = %v, want ≈505 (copy-bound)", packNoReg)
	}
	// At large sizes gather/OGR must beat pack (the reason for the hybrid).
	if gOne <= packNoReg {
		t.Errorf("at large sizes gather one-reg (%v) must beat pack (%v)", gOne, packNoReg)
	}
	// At the smallest size pack must beat gather one-reg (registration
	// cost dominates).
	if p, g := tbl.CellF(0, "pack_noreg"), tbl.CellF(0, "gather_onereg"); p <= g {
		t.Errorf("at small sizes pack (%v) must beat gather (%v)", p, g)
	}
}

func TestFig4HybridTracksWinner(t *testing.T) {
	tbl := Fig4(RunOpts{Short: true})
	for i := 0; i < len(tbl.Rows); i++ {
		pack := tbl.CellF(i, "pack")
		gather := tbl.CellF(i, "gather")
		hybrid := tbl.CellF(i, "hybrid")
		best := pack
		if gather > best {
			best = gather
		}
		if hybrid < 0.8*best {
			t.Errorf("row %v: hybrid %v far below best %v", tbl.Rows[i][0], hybrid, best)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tbl := Table4(RunOpts{Short: true})
	ideal := tbl.FindRow("Ideal")
	indiv := tbl.FindRow("Indiv.")
	ogr := tbl.FindRow("OGR")
	ogrq := tbl.FindRow("OGR+Q")
	// Bandwidth ordering (no sync): Ideal >= OGR > OGR+Q > Indiv.
	bi, bo, bq, bn := tbl.CellF(ideal, "nosync_MB_s"), tbl.CellF(ogr, "nosync_MB_s"),
		tbl.CellF(ogrq, "nosync_MB_s"), tbl.CellF(indiv, "nosync_MB_s")
	if !(bi >= bo && bo > bq && bq > bn) {
		t.Errorf("nosync ordering Ideal(%v) >= OGR(%v) > OGR+Q(%v) > Indiv(%v) violated", bi, bo, bq, bn)
	}
	// Registration counts: 0 / 1 / 11 / one-per-row.
	if tbl.Cell(ideal, "regs") != "0" {
		t.Errorf("Ideal regs = %s, want 0", tbl.Cell(ideal, "regs"))
	}
	if tbl.Cell(ogr, "regs") != "1" {
		t.Errorf("OGR regs = %s, want 1", tbl.Cell(ogr, "regs"))
	}
	if tbl.Cell(ogrq, "regs") != "11" {
		t.Errorf("OGR+Q regs = %s, want 11", tbl.Cell(ogrq, "regs"))
	}
	if tbl.CellF(indiv, "regs") < 100 {
		t.Errorf("Indiv regs = %s, want one per row", tbl.Cell(indiv, "regs"))
	}
	// With sync, disk dominates and the cases converge (within ~25%).
	si, sn := tbl.CellF(ideal, "sync_MB_s"), tbl.CellF(indiv, "sync_MB_s")
	if sn < 0.7*si {
		t.Errorf("sync bandwidths should converge: Ideal %v vs Indiv %v", si, sn)
	}
}

func TestFig6ListIOBeatsMultiple(t *testing.T) {
	tbl := Fig6(RunOpts{Short: true})
	for i := range tbl.Rows {
		multi := tbl.CellF(i, "multiple")
		ds := tbl.CellF(i, "datasieving")
		list := tbl.CellF(i, "listio")
		ads := tbl.CellF(i, "listio+ads")
		// DS writes degenerate to multiple I/O.
		if ds < 0.95*multi || ds > 1.05*multi {
			t.Errorf("row %d: DS write (%v) should equal Multiple (%v)", i, ds, multi)
		}
		// List I/O wins by a large factor (paper: 3.5-12x, nosync rows).
		if strings.Contains(tbl.Rows[i][1], "nosync") && list < 2*multi {
			t.Errorf("row %d: list (%v) should dwarf multiple (%v)", i, list, multi)
		}
		// ADS at small arrays should help or at least not hurt much.
		if ads < 0.9*list {
			t.Errorf("row %d: ADS (%v) markedly below plain list (%v)", i, ads, list)
		}
	}
}

func TestFig7ReadShape(t *testing.T) {
	tbl := Fig7(RunOpts{Short: true})
	for i := range tbl.Rows {
		multi := tbl.CellF(i, "multiple")
		list := tbl.CellF(i, "listio")
		ads := tbl.CellF(i, "listio+ads")
		if list <= multi {
			t.Errorf("row %d: list (%v) should beat multiple (%v)", i, list, multi)
		}
		if strings.Contains(tbl.Rows[i][1], "cached") && !strings.Contains(tbl.Rows[i][1], "un") {
			if ads <= list {
				t.Errorf("row %d: cached ADS (%v) should beat plain list (%v)", i, ads, list)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tbl := Fig8(RunOpts{Short: true})
	w, r := tbl.FindRow("write"), tbl.FindRow("read")
	// ADS beats Multiple by a large factor both ways.
	if tbl.CellF(w, "listio+ads") < 1.5*tbl.CellF(w, "multiple") {
		t.Errorf("write: ADS (%v) vs multiple (%v)", tbl.CellF(w, "listio+ads"), tbl.CellF(w, "multiple"))
	}
	if tbl.CellF(r, "listio+ads") < 3*tbl.CellF(r, "multiple") {
		t.Errorf("read: ADS (%v) vs multiple (%v)", tbl.CellF(r, "listio+ads"), tbl.CellF(r, "multiple"))
	}
	// ADS >= plain list I/O for both.
	if tbl.CellF(w, "listio+ads") < 0.95*tbl.CellF(w, "listio") {
		t.Error("write: ADS should not lose to plain list I/O")
	}
	if tbl.CellF(r, "listio+ads") <= tbl.CellF(r, "listio") {
		t.Error("read: ADS should beat plain list I/O")
	}
}

func TestFig9DiskBoundShape(t *testing.T) {
	tbl := Fig9(RunOpts{Short: true})
	w, r := tbl.FindRow("write"), tbl.FindRow("read")
	// Writes: ADS still ahead of multiple.
	if tbl.CellF(w, "listio+ads") <= tbl.CellF(w, "multiple") {
		t.Error("disk-bound write: ADS should still beat multiple")
	}
	// Reads: DS becomes competitive with ADS (within 2x either way).
	ds, ads := tbl.CellF(r, "datasieving"), tbl.CellF(r, "listio+ads")
	if ds < ads/2 || ds > ads*2 {
		t.Errorf("disk-bound read: DS (%v) and ADS (%v) should be comparable", ds, ads)
	}
}

func TestTable5Shape(t *testing.T) {
	tbl := Table5(RunOpts{Short: true})
	get := func(label string) float64 { return tbl.CellF(tbl.FindRow(label), "time_s") }
	noio := get("no I/O")
	multiple := get("Multiple I/O")
	list := get("List I/O")
	ads := get("List I/O with ADS")
	ds := get("Data Sieving")
	if multiple < noio || list < noio || ads < noio {
		t.Error("I/O must not make the run faster than no I/O")
	}
	if multiple < list {
		t.Errorf("Multiple (%v) should cost at least as much as List (%v)", multiple, list)
	}
	if ads > list*1.05 {
		t.Errorf("ADS (%v) should not exceed plain List (%v)", ads, list)
	}
	if ds < list {
		t.Errorf("DS writes degenerate to multiple, total (%v) should exceed List (%v)", ds, list)
	}
}

func TestTable6Shape(t *testing.T) {
	tbl := Table6(RunOpts{Short: true})
	req := tbl.FindRow("req #")
	fsr := tbl.FindRow("read #")
	fsw := tbl.FindRow("write #")
	cellF := func(row int, col string) float64 { return tbl.CellF(row, col) }
	// List I/O slashes request counts versus Multiple I/O.
	if cellF(req, "List") >= cellF(req, "Mult.")/4 {
		t.Errorf("List req# (%v) should be far below Multiple (%v)", cellF(req, "List"), cellF(req, "Mult."))
	}
	// ADS slashes file accesses versus plain list I/O.
	if cellF(fsr, "ADS") >= cellF(fsr, "List")/2 {
		t.Errorf("ADS read# (%v) should be far below List (%v)", cellF(fsr, "ADS"), cellF(fsr, "List"))
	}
	if cellF(fsw, "ADS") >= cellF(fsw, "List")/2 {
		t.Errorf("ADS write# (%v) should be far below List (%v)", cellF(fsw, "ADS"), cellF(fsw, "List"))
	}
	// Client data sieving moves more data than any list method.
	csRow := tbl.FindRow("c/s comm (MB)")
	if cellF(csRow, "DS") <= cellF(csRow, "List") {
		t.Error("DS should move extra (unwanted) data over the network")
	}
	// Only collective I/O talks client-to-client.
	ccRow := tbl.FindRow("c/c comm (MB)")
	if cellF(ccRow, "Coll.") <= 0 {
		t.Error("collective I/O must exchange data between compute nodes")
	}
	if cellF(ccRow, "List") != 0 {
		t.Error("list I/O must not talk client-to-client")
	}
}

func TestAblationSGEShape(t *testing.T) {
	tbl := AblationSGELimit(RunOpts{Short: true})
	// Bandwidth must not decrease as the SGE limit grows.
	prev := 0.0
	for i := range tbl.Rows {
		cur := tbl.CellF(i, "gather_onereg_MB_s")
		if cur < prev*0.99 {
			t.Errorf("bandwidth decreased when SGE limit grew: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestAblationOGRGroupingShape(t *testing.T) {
	tbl := AblationOGRGrouping(RunOpts{Short: true})
	for i := range tbl.Rows {
		indiv := tbl.CellF(i, "individual")
		span := tbl.CellF(i, "whole_span")
		model := tbl.CellF(i, "cost_model")
		if model > indiv {
			t.Errorf("row %d: cost model (%v µs) worse than individual (%v µs)", i, model, indiv)
		}
		if model > span*1.01 {
			t.Errorf("row %d: cost model (%v µs) worse than whole-span (%v µs)", i, model, span)
		}
		if i == 1 && span <= model {
			t.Errorf("with big gaps, whole-span (%v) should cost more than the cost model (%v)", span, model)
		}
	}
}

func TestAblationADSModelTracksWinner(t *testing.T) {
	tbl := AblationADSModel(RunOpts{Short: true})
	for i := range tbl.Rows {
		never := tbl.CellF(i, "never")
		always := tbl.CellF(i, "always")
		auto := tbl.CellF(i, "model(auto)")
		best := never
		if always > best {
			best = always
		}
		if auto < 0.85*best {
			t.Errorf("row %d: auto (%v) far below best of never (%v)/always (%v)", i, auto, never, always)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, err := Lookup("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("expected error for unknown id")
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Plan == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tbl.Add("v", 1.25)
	tbl.Note("hello %d", 7)
	s := tbl.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "1.2", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
	if tbl.Cell(0, "bb") != "1.2" || tbl.CellF(0, "bb") != 1.2 {
		t.Error("Cell/CellF lookup failed")
	}
	if tbl.Cell(5, "a") != "" || tbl.Cell(0, "zz") != "" {
		t.Error("out-of-range Cell should be empty")
	}
	if tbl.FindRow("v") != 0 || tbl.FindRow("w") != -1 {
		t.Error("FindRow")
	}
}

func TestAblationNetworkShape(t *testing.T) {
	tbl := AblationNetwork(RunOpts{Short: true})
	ibSpread := tbl.CellF(0, "best/worst")
	tcpSpread := tbl.CellF(1, "best/worst")
	if ibSpread <= tcpSpread {
		t.Errorf("scheme spread on IB (%v) should exceed conventional (%v)", ibSpread, tcpSpread)
	}
	if tcpSpread > 1.3 {
		t.Errorf("conventional-network spread %v should be near 1", tcpSpread)
	}
	// The full verbs stack must beat the stream stack.
	verbs := tbl.CellF(tbl.FindRow("PVFS verbs+hybrid"), "gather_onereg")
	stream := tbl.CellF(tbl.FindRow("PVFS stream sockets"), "gather_onereg")
	if verbs <= 2*stream {
		t.Errorf("verbs stack (%v) should far outrun stream sockets (%v)", verbs, stream)
	}
}

func TestAblationRegThrashShape(t *testing.T) {
	tbl := AblationRegThrash(RunOpts{Short: true})
	// Small cache: individual thrashes (0 hits, lower bandwidth), OGR fine.
	small, large := 0, len(tbl.Rows)-1
	if tbl.CellF(small, "indiv_hits") != 0 {
		t.Errorf("small cache should give individual registration no hits, got %v",
			tbl.Cell(small, "indiv_hits"))
	}
	if tbl.CellF(small, "ogr_hits") == 0 {
		t.Error("OGR's single region should still hit in a small cache")
	}
	if tbl.CellF(small, "individual+cache") >= tbl.CellF(small, "ogr+cache") {
		t.Error("thrashing individual registration should lose to OGR")
	}
	// Large cache: individual recovers.
	if tbl.CellF(large, "indiv_hits") == 0 {
		t.Error("large cache should let individual registration hit")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Header: []string{"a", "b,c"}}
	tbl.Add("v\"q", 1.5)
	csv := tbl.CSV()
	want := "a,\"b,c\"\n\"v\"\"q\",1.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestExtraNoncontigShape(t *testing.T) {
	tbl := ExtraNoncontig(RunOpts{Short: true})
	for i := range tbl.Rows {
		multi := tbl.CellF(i, "multiple")
		list := tbl.CellF(i, "listio")
		ads := tbl.CellF(i, "listio+ads")
		if list <= multi {
			t.Errorf("row %d: list (%v) should beat multiple (%v)", i, list, multi)
		}
		if ads < list {
			t.Errorf("row %d: ADS (%v) should not lose to plain list (%v)", i, ads, list)
		}
	}
}

func TestExtraDiskSpeedShape(t *testing.T) {
	tbl := ExtraDiskSpeed(RunOpts{Short: true})
	for i := range tbl.Rows {
		never := tbl.CellF(i, "never")
		always := tbl.CellF(i, "always")
		auto := tbl.CellF(i, "model(auto)")
		best := never
		if always > best {
			best = always
		}
		// The conservative model may give up some of the best near the
		// crossover, but must stay within 25%.
		if auto < 0.75*best {
			t.Errorf("row %s: auto (%v) far below best of never (%v)/always (%v)",
				tbl.Rows[i][0], auto, never, always)
		}
	}
}

func TestExtraScalingShape(t *testing.T) {
	tbl := ExtraScaling(RunOpts{Short: true})
	first, last := 0, len(tbl.Rows)-1
	for _, col := range []string{"contig_write", "contig_read", "list_write", "list_read"} {
		if tbl.CellF(last, col) <= tbl.CellF(first, col) {
			t.Errorf("%s does not scale with servers: %v -> %v",
				col, tbl.CellF(first, col), tbl.CellF(last, col))
		}
	}
}

func TestExtraAppAwareShape(t *testing.T) {
	tbl := ExtraAppAware(RunOpts{Short: true})
	explicit := tbl.CellF(tbl.FindRow("explicit (4.2.1-1)"), "agg_MB_s")
	declared := tbl.CellF(tbl.FindRow("declared (4.2.1-2)"), "agg_MB_s")
	ogrBW := tbl.CellF(tbl.FindRow("OGR (chosen)"), "agg_MB_s")
	cached := tbl.CellF(tbl.FindRow("OGR + cache"), "agg_MB_s")
	// OGR must come within 15% of the app-aware schemes without app
	// changes; with the cache it matches them.
	best := explicit
	if declared > best {
		best = declared
	}
	if ogrBW < 0.85*best {
		t.Errorf("OGR (%v) too far below app-aware best (%v)", ogrBW, best)
	}
	if cached < 0.95*best {
		t.Errorf("OGR+cache (%v) should match app-aware best (%v)", cached, best)
	}
	// Explicit performs zero registrations in steady state.
	if tbl.CellF(tbl.FindRow("explicit (4.2.1-1)"), "regs") != 0 {
		t.Error("explicit scheme should not register during the run")
	}
}

func TestExtraQueryMethodShape(t *testing.T) {
	tbl := ExtraQueryMethod(RunOpts{Short: true})
	syscall := tbl.CellF(tbl.FindRow("custom syscall"), "reg_time_us")
	proc := tbl.CellF(tbl.FindRow("/proc/pid/maps"), "reg_time_us")
	if proc <= syscall {
		t.Errorf("/proc query (%v µs) should cost more than the syscall (%v µs)", proc, syscall)
	}
	// All methods find the same 11 allocated runs.
	for i := range tbl.Rows {
		if tbl.CellF(i, "regs") != 11 {
			t.Errorf("row %d registered %v regions, want 11", i, tbl.CellF(i, "regs"))
		}
	}
}

func TestFaultsShape(t *testing.T) {
	tbl := Faults(RunOpts{Short: true, Seed: 7})
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (two rates + storm)", len(tbl.Rows))
	}
	clean := tbl.CellF(0, "time_ms")
	faulty := tbl.CellF(1, "time_ms")
	if clean <= 0 || faulty <= clean {
		t.Errorf("faults must cost time: clean=%vms faulty=%vms", clean, faulty)
	}
	if tbl.CellF(0, "retries") != 0 {
		t.Error("fault-free row must show zero retries")
	}
	if tbl.CellF(1, "retries") == 0 {
		t.Error("faulty row shows no retries — injection not exercised")
	}
	storm := tbl.FindRow("storm")
	if storm < 0 || tbl.CellF(storm, "retries") == 0 {
		t.Error("storm row missing or shows no recovery work")
	}
}

// TestFaultsDeterministic re-runs the sweep with one seed and demands the
// identical table, cell for cell.
func TestFaultsDeterministic(t *testing.T) {
	a := Faults(RunOpts{Short: true, Seed: 42})
	b := Faults(RunOpts{Short: true, Seed: 42})
	if a.JSON() != b.JSON() {
		t.Errorf("same seed produced different tables:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
}
