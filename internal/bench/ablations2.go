package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// AblationNetwork reproduces the paper's Section 1 motivation: the choice
// of noncontiguous transmission scheme matters on a fast (InfiniBand)
// network but barely registers on a conventional one, where the wire
// itself is the bottleneck. It reruns the Figure 3 subarray transfer (one
// 1024x1024-int subarray, i.e. 512 rows) on both fabrics and reports the
// spread between the best and worst scheme, and additionally compares the
// full PVFS stacks (verbs + hybrid vs. stream sockets).
func AblationNetwork(o RunOpts) *Table { return AblationNetworkPlan(o).Table(o.Parallel) }

// AblationNetworkPlan is one cell per fabric plus one per full-stack
// configuration.
func AblationNetworkPlan(o RunOpts) *Plan {
	n := int64(1024)
	if o.Short {
		n = 512
	}
	fabrics := []struct {
		name string
		net  simnet.Params
	}{
		{"InfiniBand (827MB/s)", simnet.DefaultParams()},
		{"conventional (80MB/s)", pvfs.ConventionalConfig().Net},
	}
	pl := &Plan{}
	for _, fab := range fabrics {
		netP := fab.net
		pl.Cells = append(pl.Cells, cell(fab.name, func() map[string]float64 {
			return fig3RowOn(n, ib.DefaultParams(), netP)
		}))
	}
	pl.Cells = append(pl.Cells,
		cell("pvfs-verbs", func() float64 { return networkCell(pvfs.DefaultConfig(), 8192) }),
		cell("pvfs-sockets", func() float64 { return networkCell(pvfs.ConventionalConfig(), 8192) }),
	)
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-network",
			Title:  "Transmission schemes vs. network generation (MB/s)",
			Header: []string{"network", "multiple", "pack", "gather_onereg", "best/worst"},
		}
		for i, fab := range fabrics {
			r := results[i].(map[string]float64)
			lo, hi := r["multiple"], r["multiple"]
			for _, k := range []string{"packnoreg", "gatherone"} {
				if r[k] < lo {
					lo = r[k]
				}
				if r[k] > hi {
					hi = r[k]
				}
			}
			t.Add(fab.name, r["multiple"], r["packnoreg"], r["gatherone"],
				fmt.Sprintf("%.2f", hi/lo))
		}
		// Full-stack comparison: the paper's design vs. the TCP-era PVFS.
		ibBW := results[len(fabrics)].(float64)
		tcpBW := results[len(fabrics)+1].(float64)
		t.Add("PVFS verbs+hybrid", "", "", fmt.Sprintf("%.1f", ibBW), "")
		t.Add("PVFS stream sockets", "", "", fmt.Sprintf("%.1f", tcpBW), "")
		t.Note("scheme spread is large on InfiniBand and shrinks toward 1 on the conventional wire")
		return t
	}
	return pl
}

// networkCell measures the full PVFS list-I/O stack: 4 ranks each writing
// 128 x segSize noncontiguous segments, steady state.
func networkCell(cfg pvfs.Config, segSize int64) float64 {
	const nseg = 128
	const ranks = 4
	f := newFixture(cfg, 4, ranks)
	defer f.close()
	total := int64(ranks) * nseg * segSize
	opts := pvfs.OpOptions{Reg: pvfs.RegCached, Sieve: sieve.Never}
	const iters = 3

	segsOf := make([][]ib.SGE, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	accsOf := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	// Warm-up pass, then measured iterations.
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "net")
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], accsOf(rank.ID()), opts))
	})
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "net")
		accs := accsOf(rank.ID())
		rank.Barrier(p)
		for i := 0; i < iters; i++ {
			sim.Must(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
		}
	})
	return bw(total*iters, elapsed)
}

// AblationRegThrash demonstrates registration thrashing (Section 4.2: "the
// total number of buffers registered is limited ... some registered buffers
// must be deregistered, [which] may lead to registration thrashing"): with
// a small pinned-memory budget, per-buffer registration through the cache
// thrashes while OGR's single grouped region still fits.
func AblationRegThrash(o RunOpts) *Table { return AblationRegThrashPlan(o).Table(o.Parallel) }

// thrashResult carries one thrashCell measurement.
type thrashResult struct {
	bw   float64
	hits int64
}

// AblationRegThrashPlan is one cell per (cache size, grouping mode).
func AblationRegThrashPlan(o RunOpts) *Plan {
	entries := []int{8, 64, 2048}
	if o.Short {
		entries = []int{8, 2048}
	}
	pl := &Plan{}
	for _, e := range entries {
		pl.Cells = append(pl.Cells,
			cell(fmt.Sprintf("%d/indiv", e), func() thrashResult {
				b, h := thrashCell(e, true)
				return thrashResult{b, h}
			}),
			cell(fmt.Sprintf("%d/ogr", e), func() thrashResult {
				b, h := thrashCell(e, false)
				return thrashResult{b, h}
			}),
		)
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-regthrash",
			Title:  "Registration thrashing under a pinned-memory limit (write bandwidth, MB/s)",
			Header: []string{"cache_entries", "individual+cache", "ogr+cache", "ogr_hits", "indiv_hits"},
		}
		for i, e := range entries {
			indiv := results[2*i].(thrashResult)
			ogr := results[2*i+1].(thrashResult)
			t.Add(e, indiv.bw, ogr.bw, ogr.hits, indiv.hits)
		}
		t.Note("1024 buffers per op: per-buffer caching needs 1024 entries to ever hit; OGR needs one")
		return t
	}
	return pl
}

// thrashCell writes a 1024-row subarray twice through a bounded pin-down
// cache and reports the second pass's bandwidth and total cache hits.
func thrashCell(cacheEntries int, individual bool) (float64, int64) {
	cfg := pvfs.DefaultConfig()
	cfg.RegCacheEntries = cacheEntries
	f := newFixture(cfg, 4, 1)
	defer f.close()
	cl := f.c.Clients[0]

	const rows = 1024
	const rowLen = 4096
	segs := stridedSegs(cl, rows, rowLen, 7)
	exts := make([]ib.SGE, len(segs))
	copy(exts, segs)

	opts := pvfs.OpOptions{Transfer: pvfs.ForceGather, Reg: pvfs.RegCached, Sieve: sieve.Never}
	ogrCfg := cfg.OGR
	ogrCfg.DisableGrouping = individual
	f.c.Cfg.OGR = ogrCfg

	total := int64(rows * rowLen)
	accs := []pvfs.OffLen{{Off: 0, Len: total}}
	// Warm pass, then the measured pass: a thrashing cache re-registers
	// everything; a fitting one hits.
	f.runOne(func(p *sim.Proc, cl *pvfs.Client) {
		fh := cl.Open(p, "thrash")
		sim.Must(fh.WriteList(p, segs, accs, opts))
	})
	elapsed := f.runOne(func(p *sim.Proc, cl *pvfs.Client) {
		fh := cl.Open(p, "thrash")
		sim.Must(fh.WriteList(p, segs, accs, opts))
	})
	return bw(total, elapsed), cl.HCA().Counters.RegCacheHits
}
