package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/ogr"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/workload"
)

// AblationSGELimit studies the sensitivity of the RDMA Gather/Scatter
// scheme to the per-work-request scatter/gather limit (InfiniBand's is 64).
// It reruns the Figure 3 gather,one-reg measurement with different limits.
func AblationSGELimit(o RunOpts) *Table { return AblationSGELimitPlan(o).Table(o.Parallel) }

// AblationSGELimitPlan decomposes the sweep into one cell per SGE limit.
func AblationSGELimitPlan(o RunOpts) *Plan {
	n := int64(2048)
	if o.Short {
		n = 1024
	}
	limits := []int{4, 16, 64, 256}
	pl := &Plan{}
	for _, lim := range limits {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("sge-%d", lim), func() float64 {
			params := ib.DefaultParams()
			params.MaxSGE = lim
			return fig3Row(n, params)["gatherone"]
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-sge",
			Title:  "Gather/scatter bandwidth vs. SGE limit (2048x2048 array)",
			Header: []string{"max_sge", "gather_onereg_MB_s"},
		}
		for i, lim := range limits {
			t.Add(lim, results[i].(float64))
		}
		t.Note("smaller limits split the transfer into more work requests, each paying its own overhead")
		return t
	}
	return pl
}

// AblationHybridThreshold sweeps the pack/gather crossover threshold of the
// hybrid transfer policy for small and large list operations.
func AblationHybridThreshold(o RunOpts) *Table {
	return AblationHybridThresholdPlan(o).Table(o.Parallel)
}

// AblationHybridThresholdPlan is one cell per (threshold, segment size).
func AblationHybridThresholdPlan(o RunOpts) *Plan {
	thresholds := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	if o.Short {
		thresholds = []int64{16 << 10, 64 << 10, 256 << 10}
	}
	segSizes := []int64{512, 8192}
	pl := &Plan{}
	for _, th := range thresholds {
		for _, s := range segSizes {
			pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%dkB/%dB", th>>10, s),
				func() float64 { return hybridThresholdCell(s, th) }))
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-hybrid",
			Title:  "Hybrid crossover threshold sweep, 128-segment write bandwidth (MB/s)",
			Header: []string{"threshold_kB", "segs_512B", "segs_8kB"},
		}
		for i, th := range thresholds {
			t.Add(th>>10, results[2*i].(float64), results[2*i+1].(float64))
		}
		t.Note("the paper picks the 64 kB stripe size; small ops prefer pack, large ops gather")
		return t
	}
	return pl
}

func hybridThresholdCell(segSize, threshold int64) float64 {
	const nseg = 128
	const ranks = 4
	cfg := pvfs.DefaultConfig()
	cfg.FastBufSize = threshold
	f := newFixture(cfg, 4, ranks)
	defer f.close()
	total := int64(ranks) * nseg * segSize
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "hyb")
		segs := stridedSegs(cl, nseg, segSize, byte(rank.ID()))
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank.ID())) * segSize, Len: segSize})
		}
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, segs, accs, pvfs.OpOptions{Reg: pvfs.RegOGR}))
	})
	return bw(total, elapsed)
}

// AblationADSModel compares the ADS cost-model decision against sieving
// forced always-on and always-off, for a dense small-access pattern (where
// sieving wins) and a sparse large-access pattern (where it loses).
func AblationADSModel(o RunOpts) *Table { return AblationADSModelPlan(o).Table(o.Parallel) }

// AblationADSModelPlan is three cells (never/always/auto) per array size.
func AblationADSModelPlan(o RunOpts) *Plan {
	sizes := []int64{512, 4096}
	if o.Short {
		sizes = []int64{512}
	}
	pl := &Plan{}
	for _, n := range sizes {
		pl.Cells = append(pl.Cells,
			cell(fmt.Sprintf("%d/never", n), func() float64 { return blockColumnWrite(n, mpiio.ListIO, true) }),
			cell(fmt.Sprintf("%d/always", n), func() float64 { return blockColumnWriteForced(n, sieve.Always) }),
			cell(fmt.Sprintf("%d/auto", n), func() float64 { return blockColumnWrite(n, mpiio.ListIOADS, true) }),
		)
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-adsmodel",
			Title:  "ADS decision quality: block-column write bandwidth (MB/s)",
			Header: []string{"array", "never", "always", "model(auto)"},
		}
		for i, n := range sizes {
			t.Add(fmt.Sprintf("%d", n),
				results[3*i].(float64), results[3*i+1].(float64), results[3*i+2].(float64))
		}
		t.Note("the model should track the better of always/never in each regime")
		return t
	}
	return pl
}

// blockColumnWriteForced runs the block-column write with a forced sieve
// mode.
func blockColumnWriteForced(n int64, mode sieve.Mode) float64 {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	total := n * n * 4
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		opts := pvfs.OpOptions{Sieve: mode}
		sim.Must(fh.WriteList(p, buf.Segs, buf.Accs, opts))
		fh.Sync(p)
	})
	return bw(total, elapsed)
}

// AblationOGRGrouping compares the registration strategies on the raw
// registration path: per-buffer, whole-span, and the cost-model grouping,
// over a single-array layout and a multi-array layout with allocated gaps.
func AblationOGRGrouping(o RunOpts) *Table { return AblationOGRGroupingPlan(o).Table(o.Parallel) }

// AblationOGRGroupingPlan is one cell per (layout, strategy).
func AblationOGRGroupingPlan(o RunOpts) *Plan {
	nseg := 1024
	if o.Short {
		nseg = 256
	}
	layouts := []struct {
		name string
		gap  int64 // allocated pages between buffer groups
	}{
		{"one array", 0},
		{"8 arrays, big gaps", 64},
	}
	strats := []string{"indiv", "span", "model"}
	pl := &Plan{}
	for _, layout := range layouts {
		for _, strat := range strats {
			gap := layout.gap
			pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%s/%s", layout.name, strat),
				func() float64 { return ogrStrategyTime(nseg, gap, strat) }))
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "ablation-ogrgroup",
			Title:  "OGR grouping strategies: registration time (µs) for 1024 x 4kB buffers",
			Header: []string{"layout", "individual", "whole_span", "cost_model"},
		}
		for i, layout := range layouts {
			cells := []any{layout.name}
			for j := range strats {
				cells = append(cells, results[i*len(strats)+j].(float64))
			}
			t.Add(cells...)
		}
		t.Note("whole-span registers gap pages too; the cost model splits only when the gap outweighs an extra operation")
		return t
	}
	return pl
}

func ogrStrategyTime(nseg int, gapPages int64, strat string) float64 {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	h := ib.NewHCA(net.AddNode("n"), mem.NewAddrSpace("n"), ib.DefaultParams())
	var exts []mem.Extent
	perArray := nseg / 8
	for i := 0; i < nseg; i++ {
		if gapPages > 0 && i > 0 && i%perArray == 0 {
			h.Space().Malloc(gapPages * mem.PageSize) // allocated spacer
		}
		addr := h.Space().Malloc(4096)
		exts = append(exts, mem.Extent{Addr: addr, Len: 4096})
	}
	cfg := ogr.DefaultConfig()
	switch strat {
	case "indiv":
		cfg.DisableGrouping = true
	case "span":
		cfg.WholeSpan = true
	}
	var elapsed sim.Duration
	eng.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		res, err := ogr.RegisterBuffers(p, ogr.Direct{HCA: h}, h.Space(), exts, cfg)
		sim.Must(err)
		sim.Must(ogr.Release(p, ogr.Direct{HCA: h}, res))
		elapsed = p.Now().Sub(t0)
	})
	runTolerant(eng)
	return float64(elapsed.Nanoseconds()) / 1000
}
