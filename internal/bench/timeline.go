package bench

import (
	"fmt"
	"io"
	"time"

	"pvfsib/internal/ib"
	"pvfsib/internal/metrics"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pcache"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// Timeline runs a checkpoint-burst workload with the metrics plane
// attached and reports the sampled series interval by interval: every
// rank periodically dumps its strided state through the page cache and
// syncs, then computes (idles) until the next burst. The table is the
// cluster's utilization/queue timeline — the view the aggregate counters
// of Snapshot cannot give — plus a saturation verdict per resource: the
// first interval where utilization pinned while the queue kept growing
// (the time-series knee; see saturationPoint).
func Timeline(o RunOpts) *Table { return TimelinePlan(o).Table(o.Parallel) }

// timelineInterval is the sampling interval; timelineDepth rings hold the
// whole run (the cell asserts nothing was evicted), so the series are
// complete and the committed artifact is reproducible bit for bit.
const (
	timelineInterval = 500 * time.Microsecond
	timelineDepth    = 4096
)

type timelineResult struct {
	intervalNS int64
	servers    int
	// Per-interval series, index 0 = virtual time zero.
	txBytes  []float64 // fabric payload+header bytes sent
	netUtil  []float64 // mean tx-port utilization across all nodes
	inflight []float64 // messages in flight (staged or on the wire)
	diskUtil []float64 // mean device occupancy across the servers
	diskQ    []float64 // requests queued on (or holding) the devices
	dispQ    []float64 // requests inside dispatch across the daemons
	ioQ      []float64 // requests waiting on the daemons' file phase
	dirty    []float64 // dirty pages across the client caches
	wbBytes  []float64 // write-behind bytes drained per interval
}

// TimelinePlan is a single cell: one cluster, one workload, one pass over
// the sampled series. The cell honors o.Shards; the series are identical
// for every shard count.
func TimelinePlan(o RunOpts) *Plan {
	pl := &Plan{}
	pl.Cells = append(pl.Cells, cell("timeline", func() timelineResult {
		return timelineCell(o.Short, o.Shards)
	}))
	pl.Merge = func(results []any) *Table {
		return timelineTable(results[0].(timelineResult))
	}
	return pl
}

// timelineCell drives the checkpoint bursts and samples the registry.
func timelineCell(short bool, shards int) timelineResult {
	return timelineRun(short, shards, nil)
}

// timelineRun is timelineCell plus an optional raw-export sink: when dump
// is non-nil the registry's full JSON and Prometheus exports are written
// to it after the run (the determinism test compares those bytes across
// shard counts).
func timelineRun(short bool, shards int, dump io.Writer) timelineResult {
	nserv, nranks, nseg := 4, 8, 16
	bursts := 3
	if short {
		nserv, nranks, nseg = 2, 4, 8
	}
	const (
		segSize = 64 << 10
		gap     = 20 * time.Millisecond // compute phase between bursts
	)
	cfg := pvfs.DefaultConfig()
	cfg.Shards = shards
	f := newFixture(cfg, nserv, nranks)
	defer f.close()
	mx := f.c.EnableMetrics(metrics.Config{Interval: timelineInterval, Depth: timelineDepth})

	segsOf := make([][]ib.SGE, nranks)
	for i := range segsOf {
		segsOf[i] = stridedSegs(f.c.Clients[i], int64(nseg), segSize, byte(i))
	}
	// Each burst checkpoints into its own strided region of the rank's
	// file: segment j of burst b lands at (b*nseg + j) * 3*segSize,
	// leaving two holes after every segment (noncontiguous list I/O).
	// The odd stride matters: segSize equals the default stripe, so a
	// stride of 3 stripes walks the segments across every server instead
	// of aliasing them all onto one.
	accsOf := func(burst int) []pvfs.OffLen {
		accs := make([]pvfs.OffLen, 0, nseg)
		for j := 0; j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{
				Off: int64(burst*nseg+j) * 3 * segSize,
				Len: segSize,
			})
		}
		return accs
	}

	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, fmt.Sprintf("ckpt-rank%d", rank.ID()))
		cf := pcache.New(fh, pcache.Config{})
		for b := 0; b < bursts; b++ {
			rank.Barrier(p)
			sim.Must(cf.WriteList(p, segsOf[rank.ID()], accsOf(b)))
			sim.Must(cf.Sync(p))
			if b < bursts-1 {
				p.Sleep(gap)
			}
		}
		sim.Must(cf.Close(p))
	})

	now := f.c.Eng.Now()
	if dump != nil {
		sim.Must(mx.WriteJSON(dump, now))
		sim.Must(mx.WritePromText(dump, now))
	}
	snap := mx.Snapshot(now)
	for _, s := range snap {
		if s.Lost != 0 || s.First != 0 {
			sim.Failf("bench: timeline: series %s/%s evicted samples (lost=%d first=%d); raise timelineDepth",
				s.Node, s.Name, s.Lost, s.First)
		}
	}
	iv := float64(timelineInterval)
	ports := timelineNodes(snap, "net.tx.busy")
	return timelineResult{
		intervalNS: int64(timelineInterval),
		servers:    nserv,
		txBytes:    seriesSum(snap, "net.tx.bytes"),
		netUtil:    scaleSeries(seriesSum(snap, "net.tx.busy"), 1/(iv*float64(ports))),
		inflight:   seriesSum(snap, "net.inflight"),
		diskUtil:   scaleSeries(seriesSum(snap, "disk.busy"), 1/(iv*float64(nserv))),
		diskQ:      seriesSum(snap, "disk.queue"),
		dispQ:      seriesSum(snap, "srv.dispatch.queue"),
		ioQ:        seriesSum(snap, "srv.io.queue"),
		dirty:      seriesSum(snap, "pcache.dirty"),
		wbBytes:    seriesSum(snap, "pcache.wb.bytes"),
	}
}

// seriesSum sums every node's series of the given name element-wise. The
// snapshot's windows all start at interval 0 (the cell asserts First==0),
// so indexes align.
func seriesSum(snap []metrics.Series, name string) []float64 {
	var out []float64
	for _, s := range snap {
		if s.Name != name {
			continue
		}
		for len(out) < len(s.Vals) {
			out = append(out, 0)
		}
		for i, v := range s.Vals {
			out[i] += float64(v)
		}
	}
	return out
}

// timelineNodes counts the nodes exporting a series of the given name.
func timelineNodes(snap []metrics.Series, name string) int {
	n := 0
	for _, s := range snap {
		if s.Name == name {
			n++
		}
	}
	return n
}

func scaleSeries(vals []float64, k float64) []float64 {
	for i := range vals {
		vals[i] *= k
	}
	return vals
}

// timelineTable renders one row per interval plus the saturation
// verdicts. Utilizations are fractions of capacity (1.000 = pinned).
func timelineTable(r timelineResult) *Table {
	t := &Table{
		ID:    "timeline",
		Title: "Checkpoint-burst timeline: per-interval utilization and queue depths (metrics plane)",
		Header: []string{"t_us", "tx_MBs", "net_util", "inflight",
			"disk_util", "disk_q", "disp_q", "io_q", "dirty_pages", "wb_MBs"},
	}
	ivSec := float64(r.intervalNS) / 1e9
	for i := range r.txBytes {
		t.Add(
			int64(i)*r.intervalNS/1000,
			at(r.txBytes, i)/ivSec/MB,
			fmt.Sprintf("%.3f", at(r.netUtil, i)),
			int64(at(r.inflight, i)),
			fmt.Sprintf("%.3f", at(r.diskUtil, i)),
			int64(at(r.diskQ, i)),
			int64(at(r.dispQ, i)),
			int64(at(r.ioQ, i)),
			int64(at(r.dirty, i)),
			at(r.wbBytes, i)/ivSec/MB,
		)
	}
	t.Note("interval=%dus servers=%d; utilizations are fractions of capacity", r.intervalNS/1000, r.servers)
	describe := func(name string, util, queue []float64) {
		if k := saturationPoint(util, queue, 0.95); k >= 0 {
			t.Note("saturation %s: utilization pinned with a standing backlog from t=%dus (interval %d)",
				name, int64(k)*r.intervalNS/1000, k)
		} else {
			t.Note("saturation %s: never pinned", name)
		}
	}
	describe("disk", r.diskUtil, r.diskQ)
	describe("net", r.netUtil, r.inflight)
	return t
}

// at reads vals[i], tolerating the ragged tails of series that saw no
// write in the final intervals.
func at(vals []float64, i int) float64 {
	if i >= len(vals) {
		return 0
	}
	return vals[i]
}
