package bench

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Breakdown runs the same noncontiguous workload under each of the four
// access methods with span tracing enabled and reports where the time
// goes: the per-stage self-time decomposition (registration, staging
// copies, wire, queueing, sieve, disk) the span plane computes, plus
// request latency and peak server concurrency. It is the cost-model
// counterpart of Figures 6/7 — not how fast each method is, but why.
func Breakdown(o RunOpts) *Table { return BreakdownPlan(o).Table(o.Parallel) }

// breakdownResult is one method's cell output.
type breakdownResult struct {
	elapsed sim.Duration
	prof    *trace.Profile
}

// BreakdownPlan decomposes the experiment into one cell per access method.
func BreakdownPlan(o RunOpts) *Plan {
	nseg := int64(64)
	if o.Short {
		nseg = 16
	}
	pl := &Plan{}
	for _, m := range methodList {
		m := m
		pl.Cells = append(pl.Cells, cell(m.String(), func() breakdownResult {
			tr, elapsed := breakdownCell(m, nseg)
			return breakdownResult{elapsed: elapsed, prof: tr.Profile()}
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:    "breakdown",
			Title: "Per-stage time decomposition by access method (span-plane self time)",
			Header: []string{"method", "ms", "req#", "p99_ms", "inflight",
				"reg%", "pack%", "wire%", "queue%", "sieve%", "disk%", "other%"},
		}
		for i, m := range methodList {
			r := results[i].(breakdownResult)
			p := r.prof
			total := p.TotalNs()
			pct := func(st trace.Stage) float64 {
				if total <= 0 {
					return 0
				}
				return float64(p.Stage[st].Ns) / float64(total) * 100
			}
			t.Add(m.String(),
				float64(r.elapsed)/1e6,
				p.Latency.Count,
				float64(p.Latency.Quantile(0.99))/1e6,
				p.MaxInflight(),
				pct(trace.StageReg), pct(trace.StagePack), pct(trace.StageWire),
				pct(trace.StageQueue), pct(trace.StageSieve), pct(trace.StageDisk),
				pct(trace.StageOther))
		}
		t.Note("shares are per-stage self time summed over all spans; p99 is the root-span latency quantile upper bound")
		t.Note("expected shape: multiple pays per-piece round trips (other/wire), datasieving reads extra disk bytes, listio+ads shifts time from disk to sieve")
		return t
	}
	return pl
}

// breakdownCell runs one method's write+read pass with tracing on and
// returns the tracer and the elapsed virtual time. Four ranks write and
// read back interleaved 16 kB segments so every server sees
// noncontiguous pieces from every client.
func breakdownCell(m mpiio.Method, nseg int64) (*trace.Tracer, sim.Duration) {
	const segSize = int64(16 << 10)
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	tr := f.c.EnableSpans()

	segsOf := make([][]ib.SGE, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	buildAccs := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "breakdown")
		accs := buildAccs(rank.ID())
		sim.Must(file.Write(p, m, segsOf[rank.ID()], accs))
		rank.Barrier(p)
		// Flush the page caches so the read pass pays for real device
		// transfers and the disk stage is visible in the decomposition.
		if rank.ID() == 0 {
			dropAllCaches(p, f.c)
		}
		rank.Barrier(p)
		sim.Must(file.Read(p, m, segsOf[rank.ID()], accs))
	})
	return tr, elapsed
}

// TraceRun executes one traced ListIO+ADS pass of the breakdown workload
// and returns its span tracer; pvfsbench -trace exports it as a Perfetto
// trace plus a breakdown profile. Deterministic: the same short flag
// always yields a byte-identical span table.
func TraceRun(short bool) *trace.Tracer {
	nseg := int64(64)
	if short {
		nseg = 16
	}
	tr, _ := breakdownCell(mpiio.ListIOADS, nseg)
	return tr
}
