package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of an experiment: a fully self-contained
// simulation (its own Engine, fabric, and cluster) producing one opaque
// result. Cells share nothing mutable — that is what makes the worker pool
// below correct: any execution interleaving computes the same values.
type Cell struct {
	// Key canonically identifies the cell within its experiment, for panic
	// reports and debugging.
	Key string
	// Run executes the cell's simulation and returns its result.
	Run func() any
}

// cell wraps a typed cell function as a Cell.
func cell[T any](key string, fn func() T) Cell {
	return Cell{Key: key, Run: func() any { return fn() }}
}

// Plan is one experiment decomposed into independent cells plus a merge
// step. Merge receives results indexed exactly like Cells — canonical
// order — so the assembled table is identical for every worker count.
type Plan struct {
	Cells []Cell
	Merge func(results []any) *Table
}

// Table executes the plan's cells on up to parallel workers (0 or negative
// means GOMAXPROCS) and merges the results in canonical cell order. The
// output is byte-identical for every parallel value; TestParallelIdentical
// enforces that as an invariant, not an accident.
func (pl *Plan) Table(parallel int) *Table {
	return pl.Merge(runCells(pl.Cells, parallel))
}

// runCells executes cells on a bounded worker pool and returns results in
// cell order. A panic in any cell is re-raised on the caller's goroutine
// once the pool has drained, so no worker leaks.
func runCells(cells []Cell, parallel int) []any {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	results := make([]any, len(cells))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	if parallel <= 1 {
		for i := range cells {
			runOneCell(cells[i], results, i, &panicMu, &panicked)
			if panicked != nil {
				//pvfslint:ok nopanic re-raising a cell's panic with its key attached
				panic(panicked)
			}
		}
		return results
	}
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				runOneCell(cells[i], results, i, &panicMu, &panicked)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		//pvfslint:ok nopanic re-raising a cell's panic on the caller's goroutine, as the serial path would
		panic(panicked)
	}
	return results
}

// runOneCell executes a single cell, converting a panic into a recorded
// first-failure so sibling workers can drain before the caller re-panics.
func runOneCell(c Cell, results []any, i int, mu *sync.Mutex, panicked *any) {
	defer func() {
		if r := recover(); r != nil {
			mu.Lock()
			if *panicked == nil {
				*panicked = fmt.Sprintf("bench: cell %q: %v", c.Key, r)
			}
			mu.Unlock()
		}
	}()
	results[i] = c.Run()
}
