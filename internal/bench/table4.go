package bench

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/workload"
)

// Table4 reproduces the paper's Table 4: the impact of Optimistic Group
// Registration on PVFS list I/O. A 2048x2048 integer array is block-
// distributed over 4 processes; each writes its 4 MB subarray (1024
// noncontiguous 4 kB rows in memory) contiguously to its own file region.
//
// Cases:
//
//	Ideal  — all registrations already in the pin-down cache
//	Indiv. — one registration/deregistration per row
//	OGR    — Optimistic Group Registration (one registration)
//	OGR+Q  — buffers from 11 separate arrays with 10 unallocated holes,
//	         forcing the optimistic attempt to fail and query the OS
func Table4(o RunOpts) *Table { return Table4Plan(o).Table(o.Parallel) }

// table4Result carries one registration case's measurements.
type table4Result struct {
	nosync, syncBW float64
	regs           int64
	overheadUS     float64
}

// Table4Plan decomposes Table 4 into one cell per registration case.
func Table4Plan(o RunOpts) *Plan {
	n := int64(2048)
	if o.Short {
		n = 1024
	}
	cases := []string{"Ideal", "Indiv.", "OGR", "OGR+Q"}
	pl := &Plan{}
	for _, c := range cases {
		pl.Cells = append(pl.Cells, cell(c, func() table4Result {
			nosync, syncBW, regs, overhead := table4Case(c, n)
			return table4Result{nosync, syncBW, regs, overhead}
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "table4",
			Title:  "Optimistic Group Registration impact (paper: Ideal 1010/82, Indiv 424/73, OGR 950/~82, OGR+Q 879/~82 MB/s; regs 0/1024/1/11)",
			Header: []string{"case", "nosync_MB_s", "sync_MB_s", "regs", "overhead_us"},
		}
		for i, c := range cases {
			r := results[i].(table4Result)
			t.Add(c, r.nosync, r.syncBW, r.regs, r.overheadUS)
		}
		t.Note("regs counts actual pin operations per run; overhead is registration+deregistration virtual time per run")
		return t
	}
	return pl
}

func table4Case(kind string, n int64) (nosync, syncBW float64, regs int64, overheadUS float64) {
	const ranks = 4
	elem := int64(4)
	perRank := (n / 2) * (n / 2) * elem
	total := int64(ranks) * perRank

	run := func(withSync bool) (float64, int64, float64, error) {
		f := newFixture(pvfs.DefaultConfig(), 4, ranks)
		defer f.close()
		opts := pvfs.OpOptions{Transfer: pvfs.ForceGather, Sieve: sieve.Never}
		switch kind {
		case "Ideal":
			opts.Reg = pvfs.RegCached
		case "Indiv.":
			opts.Reg = pvfs.RegIndividual
		default:
			opts.Reg = pvfs.RegOGR
		}

		// Build each rank's buffers up front.
		segsOf := make([][]ib.SGE, ranks)
		for i := 0; i < ranks; i++ {
			cl := f.c.Clients[i]
			if kind == "OGR+Q" {
				// Same buffer geometry as the subarray rows, but
				// spread over 11 arrays with 10 unallocated holes.
				rowLen := (n / 2) * elem
				segsOf[i] = holeySegs(cl, int(perRank/rowLen), rowLen, 11)
			} else {
				pat := workload.SubarrayWrite(n, 2, 2, i%2, i/2, elem)
				segsOf[i] = materialize(cl, pat, byte(i)).Segs
			}
		}

		// The engine is cooperative and single-threaded, so capturing the
		// first rank failure in a shared variable is race-free.
		var firstErr error
		rankErr := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}

		if kind == "Ideal" {
			// Warm the pin-down caches with an unmeasured pass.
			f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
				fh := cl.Open(p, "warm")
				accs := []pvfs.OffLen{{Off: int64(rank.ID()) * perRank, Len: perRank}}
				rankErr(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
			})
			if firstErr != nil {
				return 0, 0, 0, firstErr
			}
		}

		var regs0, regT0 int64
		for _, cl := range f.c.Clients {
			regs0 += cl.HCA().Counters.Registrations
			regT0 += int64(cl.HCA().Counters.RegTime + cl.HCA().Counters.DeregTime)
		}
		elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
			fh := cl.Open(p, "t4")
			accs := []pvfs.OffLen{{Off: int64(rank.ID()) * perRank, Len: perRank}}
			rank.Barrier(p)
			if err := fh.WriteList(p, segsOf[rank.ID()], accs, opts); err != nil {
				rankErr(err)
				return
			}
			if withSync {
				fh.Sync(p)
			}
		})
		if firstErr != nil {
			return 0, 0, 0, firstErr
		}
		var regsN, regTN int64
		for _, cl := range f.c.Clients {
			regsN += cl.HCA().Counters.Registrations
			regTN += int64(cl.HCA().Counters.RegTime + cl.HCA().Counters.DeregTime)
		}
		// Report per-process registration counts and overhead, like the
		// paper.
		return bw(total, elapsed), (regsN - regs0) / ranks, float64(regTN-regT0) / 1000 / ranks, nil
	}

	var err error
	nosync, regs, overheadUS, err = run(false)
	sim.Must(err)
	syncBW, _, _, err = run(true)
	sim.Must(err)
	return
}

// holeySegs builds nseg buffers of segSize bytes spread over nArrays
// separate allocations with unallocated holes between them (the OGR+Q
// scenario). Within each array, buffers sit at a 2x stride — the same
// row-in-a-larger-array geometry as the subarray cases.
func holeySegs(cl *pvfs.Client, nseg int, segSize int64, nArrays int) []ib.SGE {
	per := (nseg + nArrays - 1) / nArrays
	stride := 2 * segSize
	var segs []ib.SGE
	for a := 0; a < nArrays && len(segs) < nseg; a++ {
		if a > 0 {
			cl.Space().Reserve(4) // unallocated hole
		}
		count := per
		if remaining := nseg - len(segs); count > remaining {
			count = remaining
		}
		base := cl.Space().Malloc(int64(count) * stride)
		for i := 0; i < count; i++ {
			seg := ib.SGE{Addr: base + mem.Addr(int64(i)*stride), Len: segSize}
			segs = append(segs, seg)
			data := make([]byte, segSize)
			for j := range data {
				data[j] = byte(a + i + j)
			}
			sim.Must(cl.Space().Write(seg.Addr, data))
		}
	}
	return segs
}
