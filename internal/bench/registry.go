package bench

import (
	"fmt"
	"sort"
)

// RunOpts parameterizes one experiment run.
type RunOpts struct {
	// Short selects the reduced sweeps.
	Short bool
	// Seed feeds the experiments that draw randomness (today only the
	// fault plane); deterministic sweeps ignore it. The same seed always
	// reproduces the same tables.
	Seed int64
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o RunOpts) *Table
}

// Registry lists every experiment in paper order, then the ablations.
var Registry = []Experiment{
	{"table2", "Network performance (Table 2)", Table2},
	{"table3", "Local file system performance (Table 3)", Table3},
	{"fig3", "Noncontiguous transfer schemes (Figure 3)", Fig3},
	{"fig4", "List I/O transfer schemes (Figure 4)", Fig4},
	{"table4", "Optimistic Group Registration impact (Table 4)", Table4},
	{"fig6", "Block-column writes (Figure 6)", Fig6},
	{"fig7", "Block-column reads (Figure 7)", Fig7},
	{"fig8", "Tiled I/O without disk effects (Figure 8)", Fig8},
	{"fig9", "Tiled I/O with disk effects (Figure 9)", Fig9},
	{"table5", "NAS BTIO class A (Table 5)", Table5},
	{"table6", "BTIO characteristics (Table 6)", Table6},
	{"ablation-sge", "SGE limit sensitivity", AblationSGELimit},
	{"ablation-hybrid", "Hybrid threshold sweep", AblationHybridThreshold},
	{"ablation-adsmodel", "ADS cost-model decision quality", AblationADSModel},
	{"ablation-ogrgroup", "OGR grouping strategies", AblationOGRGrouping},
	{"ablation-network", "Transmission schemes vs. network generation", AblationNetwork},
	{"ablation-regthrash", "Registration thrashing under pin limits", AblationRegThrash},
	{"extra-noncontig", "ROMIO noncontig benchmark (paper ref [15])", ExtraNoncontig},
	{"extra-diskspeed", "ADS decisions adapt to disk speed", ExtraDiskSpeed},
	{"extra-scaling", "Bandwidth scaling with server count", ExtraScaling},
	{"extra-appaware", "App-aware registration alternatives (Section 4.2.1)", ExtraAppAware},
	{"extra-querymethod", "OS hole-query mechanisms (Section 4.3)", ExtraQueryMethod},
	{"faults", "Recovery under injected faults (fault-plane sweep)", Faults},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
