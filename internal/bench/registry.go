package bench

import (
	"fmt"
	"sort"
)

// RunOpts parameterizes one experiment run.
type RunOpts struct {
	// Short selects the reduced sweeps.
	Short bool
	// Seed feeds the experiments that draw randomness (today only the
	// fault plane); deterministic sweeps ignore it. The same seed always
	// reproduces the same tables.
	Seed int64
	// Parallel bounds the cell worker pool; 0 or less means GOMAXPROCS.
	// Every experiment's output is byte-identical for every value.
	Parallel int
	// Shards partitions each cell's simulation engine into that many
	// parallel shards (see sim.Engine.SetShards). Cell output is
	// byte-identical for every value; only host wall-clock changes.
	// Zero or one keeps the single-threaded engine. Experiments that
	// build sharded clusters (faults, cache, scale) honor it.
	Shards int
}

// Experiment is one reproducible table or figure, decomposed into
// independent cells by its Plan.
type Experiment struct {
	ID    string
	Title string
	Plan  func(o RunOpts) *Plan
}

// Run builds the experiment's plan and executes it on o.Parallel workers.
func (e Experiment) Run(o RunOpts) *Table { return e.Plan(o).Table(o.Parallel) }

// Registry lists every experiment in paper order, then the ablations.
var Registry = []Experiment{
	{"table2", "Network performance (Table 2)", Table2Plan},
	{"table3", "Local file system performance (Table 3)", Table3Plan},
	{"fig3", "Noncontiguous transfer schemes (Figure 3)", Fig3Plan},
	{"fig4", "List I/O transfer schemes (Figure 4)", Fig4Plan},
	{"table4", "Optimistic Group Registration impact (Table 4)", Table4Plan},
	{"fig6", "Block-column writes (Figure 6)", Fig6Plan},
	{"fig7", "Block-column reads (Figure 7)", Fig7Plan},
	{"fig8", "Tiled I/O without disk effects (Figure 8)", Fig8Plan},
	{"fig9", "Tiled I/O with disk effects (Figure 9)", Fig9Plan},
	{"table5", "NAS BTIO class A (Table 5)", Table5Plan},
	{"table6", "BTIO characteristics (Table 6)", Table6Plan},
	{"ablation-sge", "SGE limit sensitivity", AblationSGELimitPlan},
	{"ablation-hybrid", "Hybrid threshold sweep", AblationHybridThresholdPlan},
	{"ablation-adsmodel", "ADS cost-model decision quality", AblationADSModelPlan},
	{"ablation-ogrgroup", "OGR grouping strategies", AblationOGRGroupingPlan},
	{"ablation-network", "Transmission schemes vs. network generation", AblationNetworkPlan},
	{"ablation-regthrash", "Registration thrashing under pin limits", AblationRegThrashPlan},
	{"extra-noncontig", "ROMIO noncontig benchmark (paper ref [15])", ExtraNoncontigPlan},
	{"extra-diskspeed", "ADS decisions adapt to disk speed", ExtraDiskSpeedPlan},
	{"extra-scaling", "Bandwidth scaling with server count", ExtraScalingPlan},
	{"extra-appaware", "App-aware registration alternatives (Section 4.2.1)", ExtraAppAwarePlan},
	{"extra-querymethod", "OS hole-query mechanisms (Section 4.3)", ExtraQueryMethodPlan},
	{"faults", "Recovery under injected faults (fault-plane sweep)", FaultsPlan},
	{"scale", "Cell scaling: iods x clients x stripe with knee detection", ScalePlan},
	{"breakdown", "Per-stage time decomposition by access method (span tracing)", BreakdownPlan},
	{"cache", "Client page cache: write-behind and read-ahead ablation", CachePlan},
	{"timeline", "Checkpoint-burst timeline: sampled utilization/queue series with saturation detection", TimelinePlan},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
