package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/workload"
)

// MB is the paper's megabyte, 2^20 bytes.
const MB = simnet.MB

// fixture is a cluster plus an MPI world with rank i on client i.
type fixture struct {
	c *pvfs.Cluster
	w *mpi.World
}

// close terminates the fixture's service processes so the whole simulated
// cluster becomes garbage-collectable; sweeps build many clusters and would
// otherwise exhaust host memory.
func (f *fixture) close() { f.c.Eng.Shutdown() }

func newFixture(cfg pvfs.Config, nServers, nRanks int) *fixture {
	c := pvfs.NewCluster(sim.NewEngine(), cfg, nServers, nRanks)
	var hcas []*ib.HCA
	for _, cl := range c.Clients {
		hcas = append(hcas, cl.HCA())
	}
	w := mpi.NewWorld(c.Eng, hcas, func(rank int, n int64) { c.Clients[rank].Acct().BytesClientClient += n })
	return &fixture{c: c, w: w}
}

// runRanks runs fn on every rank and drives the simulation; it returns the
// wall-clock (virtual) time from the earliest start to the latest finish.
// Each rank's process is spawned on its own client's node group, so a
// sharded engine runs the ranks genuinely in parallel; finish times are
// collected per rank (own cache line, own shard) and folded after the run.
func (f *fixture) runRanks(fn func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client)) sim.Duration {
	start := f.c.Eng.Now()
	ends := make([]sim.Time, f.w.Size())
	for i := 0; i < f.w.Size(); i++ {
		i, r, cl := i, f.w.Rank(i), f.c.Clients[i]
		f.c.Eng.GoOn(cl.Node().Group(), fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			fn(p, r, cl)
			ends[i] = p.Now()
		})
	}
	if err := f.c.Run(); err != nil {
		sim.Failf("bench: simulation failed: %v", err)
	}
	var end sim.Time
	for _, e := range ends {
		if e > end {
			end = e
		}
	}
	return end.Sub(start)
}

// runOne runs fn as a single application process (on client 0's node
// group) and returns its elapsed virtual time.
func (f *fixture) runOne(fn func(p *sim.Proc, cl *pvfs.Client)) sim.Duration {
	start := f.c.Eng.Now()
	var end sim.Time
	f.c.Eng.GoOn(f.c.Clients[0].Node().Group(), "app", func(p *sim.Proc) {
		fn(p, f.c.Clients[0])
		end = p.Now()
	})
	if err := f.c.Run(); err != nil {
		sim.Failf("bench: simulation failed: %v", err)
	}
	return end.Sub(start)
}

// buffer is a materialized workload pattern in a client's address space.
type buffer struct {
	Base mem.Addr
	Segs []ib.SGE
	Accs []pvfs.OffLen
}

// materialize allocates pattern memory in the client's space, fills it with
// a seed-derived byte pattern, and returns the SGE/region lists.
func materialize(cl *pvfs.Client, pat workload.Pattern, seed byte) buffer {
	base := cl.Space().Malloc(maxI64(pat.MemSpan(), 1))
	var segs []ib.SGE
	for _, r := range pat.Mem {
		segs = append(segs, ib.SGE{Addr: base + mem.Addr(r.Off), Len: r.Len})
	}
	for i, s := range segs {
		data := make([]byte, s.Len)
		for j := range data {
			data[j] = byte(int(seed) + i*31 + j)
		}
		sim.Must(cl.Space().Write(s.Addr, data))
	}
	return buffer{Base: base, Segs: segs, Accs: []pvfs.OffLen(pat.File)}
}

// bw returns bandwidth in the paper's MB/s for bytes moved in d.
func bw(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / MB
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// dropAllCaches flushes and empties every server's page cache.
func dropAllCaches(p *sim.Proc, c *pvfs.Cluster) {
	for _, s := range c.Servers {
		s.FS().DropCaches(p)
	}
}

// methodList is the paper's four noncontiguous access methods in figure
// order.
var methodList = []mpiio.Method{mpiio.MultipleIO, mpiio.DataSieving, mpiio.ListIO, mpiio.ListIOADS}

// stridedSegs allocates nseg noncontiguous segments of segSize bytes (one
// allocation, segments two sizes apart, at least 512 bytes of stride) in
// the client's space, filled with a seed-derived pattern.
func stridedSegs(cl *pvfs.Client, nseg, segSize int64, seed byte) []ib.SGE {
	stride := segSize * 2
	if stride < 512 {
		stride = 512
	}
	base := cl.Space().Malloc(nseg * stride)
	segs := make([]ib.SGE, nseg)
	for i := int64(0); i < nseg; i++ {
		segs[i] = ib.SGE{Addr: base + mem.Addr(i*stride), Len: segSize}
		data := make([]byte, segSize)
		for j := range data {
			data[j] = byte(int64(seed) + i + int64(j)*3)
		}
		sim.Must(cl.Space().Write(segs[i].Addr, data))
	}
	return segs
}
