// Package bench reproduces every table and figure of the paper's
// evaluation (Section 6) plus a set of ablations, on the simulated
// cluster. Each experiment builds its own cluster, drives the workload in
// virtual time, and reports the same rows or series the paper does.
// Results are formatted as plain-text tables; cmd/pvfsbench prints them and
// bench_test.go wraps them as Go benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"pvfsib/internal/sim"
)

// Table is one experiment's result: a title, column headers, and rows of
// formatted cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (calibration caveats, paper
	// reference values).
	Notes []string
}

// Add appends a row, formatting each cell: floats as %.1f, others via %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Cell looks a formatted cell up by header name for the given row index;
// it returns "" when absent. Tests use it to check result shapes.
func (t *Table) Cell(row int, header string) string {
	for i, h := range t.Header {
		if h == header && row < len(t.Rows) && i < len(t.Rows[row]) {
			return t.Rows[row][i]
		}
	}
	return ""
}

// CellF parses Cell as a float64 (0 when absent or unparsable).
func (t *Table) CellF(row int, header string) float64 {
	var f float64
	fmt.Sscanf(t.Cell(row, header), "%g", &f)
	return f
}

// FindRow returns the index of the first row whose first cell equals label,
// or -1.
func (t *Table) FindRow(label string) int {
	for i, r := range t.Rows {
		if len(r) > 0 && r[0] == label {
			return i
		}
	}
	return -1
}

// JSON renders the table as an indented JSON object with id, title,
// header, rows, and notes — the machine-readable artifact bench-smoke
// archives in CI.
func (t *Table) JSON() string {
	b, err := json.MarshalIndent(t, "", "  ")
	sim.Must(err) // Table holds only strings; marshaling cannot fail
	return string(b)
}

// CSV renders the table as comma-separated values (header row first), for
// plotting the figure series outside the tool.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
