package bench

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

// Fig4 reproduces the paper's Figure 4: PVFS list I/O bandwidth with the
// Pack/Unpack scheme, the RDMA Gather/Scatter scheme, and the hybrid used
// in the final design. Four clients and four servers; each operation moves
// 128 noncontiguous segments whose size sweeps 128 B .. 8 kB. Cache effects
// are left in (the paper's first experiment set stresses the network).
func Fig4(o RunOpts) *Table {
	short := o.Short
	t := &Table{
		ID:    "fig4",
		Title: "List I/O transfer schemes, 128 segments, aggregate bandwidth (MB/s)",
		Header: []string{"seg_bytes", "op",
			"pack", "gather", "hybrid"},
	}
	sizes := []int64{128, 256, 512, 1024, 2048, 4096, 8192}
	if short {
		sizes = []int64{128, 2048, 8192}
	}
	for _, s := range sizes {
		w := map[pvfs.Transfer]float64{}
		r := map[pvfs.Transfer]float64{}
		for _, tr := range []pvfs.Transfer{pvfs.ForcePack, pvfs.ForceGather, pvfs.Hybrid} {
			w[tr], r[tr] = fig4Cell(s, tr)
		}
		t.Add(s, "write", w[pvfs.ForcePack], w[pvfs.ForceGather], w[pvfs.Hybrid])
		t.Add(s, "read", r[pvfs.ForcePack], r[pvfs.ForceGather], r[pvfs.Hybrid])
	}
	t.Note("paper shape: pack wins small totals, gather wins large, hybrid tracks the winner (crossover at the 64kB stripe size)")
	return t
}

// fig4Cell measures one (segment size, scheme) cell and returns write and
// read aggregate bandwidth.
func fig4Cell(segSize int64, tr pvfs.Transfer) (wBW, rBW float64) {
	const nseg = 128
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	perRank := nseg * segSize
	total := int64(ranks) * perRank

	// Each rank's segments interleave in the file so every server sees
	// noncontiguous pieces from every client.
	buildAccs := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	// Steady state, as a looped benchmark measures it: registration goes
	// through the pin-down cache, one unmeasured warm-up iteration, then
	// several measured iterations.
	opts := pvfs.OpOptions{Transfer: tr, Reg: pvfs.RegCached, Sieve: sieve.Never}
	const iters = 3

	segsOf := make([][]ib.SGE, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], buildAccs(rank.ID()), opts))
	})
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		accs := buildAccs(rank.ID())
		rank.Barrier(p)
		for i := 0; i < iters; i++ {
			sim.Must(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
		}
	})
	wBW = bw(total*iters, elapsed)

	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		accs := buildAccs(rank.ID())
		rank.Barrier(p)
		for i := 0; i < iters; i++ {
			sim.Must(fh.ReadList(p, segsOf[rank.ID()], accs, opts))
		}
	})
	rBW = bw(total*iters, elapsed)
	return
}
