package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

// Fig4 reproduces the paper's Figure 4: PVFS list I/O bandwidth with the
// Pack/Unpack scheme, the RDMA Gather/Scatter scheme, and the hybrid used
// in the final design. Four clients and four servers; each operation moves
// 128 noncontiguous segments whose size sweeps 128 B .. 8 kB. Cache effects
// are left in (the paper's first experiment set stresses the network).
func Fig4(o RunOpts) *Table { return Fig4Plan(o).Table(o.Parallel) }

// wrPair is a cell result carrying one write and one read bandwidth.
type wrPair struct{ w, r float64 }

// Fig4Plan decomposes Figure 4 into one cell per (segment size, scheme).
func Fig4Plan(o RunOpts) *Plan {
	sizes := []int64{128, 256, 512, 1024, 2048, 4096, 8192}
	if o.Short {
		sizes = []int64{128, 2048, 8192}
	}
	transfers := []pvfs.Transfer{pvfs.ForcePack, pvfs.ForceGather, pvfs.Hybrid}
	pl := &Plan{}
	for _, s := range sizes {
		for _, tr := range transfers {
			pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%dB/%d", s, tr), func() wrPair {
				w, r := fig4Cell(s, tr)
				return wrPair{w, r}
			}))
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:    "fig4",
			Title: "List I/O transfer schemes, 128 segments, aggregate bandwidth (MB/s)",
			Header: []string{"seg_bytes", "op",
				"pack", "gather", "hybrid"},
		}
		i := 0
		for _, s := range sizes {
			var w, r [3]float64
			for j := range transfers {
				pr := results[i].(wrPair)
				i++
				w[j], r[j] = pr.w, pr.r
			}
			t.Add(s, "write", w[0], w[1], w[2])
			t.Add(s, "read", r[0], r[1], r[2])
		}
		t.Note("paper shape: pack wins small totals, gather wins large, hybrid tracks the winner (crossover at the 64kB stripe size)")
		return t
	}
	return pl
}

// fig4Cell measures one (segment size, scheme) cell and returns write and
// read aggregate bandwidth.
func fig4Cell(segSize int64, tr pvfs.Transfer) (wBW, rBW float64) {
	const nseg = 128
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	perRank := nseg * segSize
	total := int64(ranks) * perRank

	// Each rank's segments interleave in the file so every server sees
	// noncontiguous pieces from every client.
	buildAccs := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	// Steady state, as a looped benchmark measures it: registration goes
	// through the pin-down cache, one unmeasured warm-up iteration, then
	// several measured iterations.
	opts := pvfs.OpOptions{Transfer: tr, Reg: pvfs.RegCached, Sieve: sieve.Never}
	const iters = 3

	segsOf := make([][]ib.SGE, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], buildAccs(rank.ID()), opts))
	})
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		accs := buildAccs(rank.ID())
		rank.Barrier(p)
		for i := 0; i < iters; i++ {
			sim.Must(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
		}
	})
	wBW = bw(total*iters, elapsed)

	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "fig4")
		accs := buildAccs(rank.ID())
		rank.Barrier(p)
		for i := 0; i < iters; i++ {
			sim.Must(fh.ReadList(p, segsOf[rank.ID()], accs, opts))
		}
	})
	rBW = bw(total*iters, elapsed)
	return
}
