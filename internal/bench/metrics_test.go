package bench

import (
	"bytes"
	"runtime"
	"testing"

	"pvfsib/internal/metrics"
	"pvfsib/internal/sim"
)

// timelineArtifacts runs the short timeline workload on a cluster
// partitioned into the given shard count and returns every observable
// metrics artifact serialized to bytes: the registry's full JSON dump,
// its Prometheus text exposition, and the rendered experiment table.
func timelineArtifacts(shards int) []byte {
	var buf bytes.Buffer
	r := timelineRun(true, shards, &buf)
	buf.WriteString(timelineTable(r).JSON())
	return buf.Bytes()
}

// TestTimelineByteIdentical is the metrics plane's determinism tentpole:
// the sampled series — per-node ring contents, canonical merge order,
// derived utilization rows, saturation verdicts — must reproduce the
// single-shard run byte for byte at any shard count under one OS thread
// or several. Metrics are sampled on the virtual clock with no sampler
// events, so enabling them can never perturb the timeline they measure.
func TestTimelineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timeline workload five times")
	}
	want := timelineArtifacts(1)
	if len(want) == 0 {
		t.Fatal("empty artifacts")
	}
	for _, shards := range []int{2, 4} {
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got := timelineArtifacts(shards)
			runtime.GOMAXPROCS(prev)
			if !bytes.Equal(want, got) {
				i := 0
				for i < len(want) && i < len(got) && want[i] == got[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				window := func(b []byte) []byte {
					hi := i + 80
					if hi > len(b) {
						hi = len(b)
					}
					if lo >= hi {
						return nil
					}
					return b[lo:hi]
				}
				t.Fatalf("shards=%d GOMAXPROCS=%d diverges from single-shard run at byte %d:\n--- want ---\n%s\n--- got ---\n%s",
					shards, procs, i, window(want), window(got))
			}
		}
	}
}

// TestTimelineDetectsSaturation pins the committed artifact's headline:
// the checkpoint-burst workload must drive the disks to a detected
// saturation point in both geometries, or BENCH_timeline.json stops
// demonstrating the detector.
func TestTimelineDetectsSaturation(t *testing.T) {
	for _, short := range []bool{true, false} {
		r := timelineCell(short, 0)
		if k := saturationPoint(r.diskUtil, r.diskQ, 0.95); k < 0 {
			t.Errorf("short=%v: no disk saturation point detected", short)
		}
	}
}

// TestMetricsNilSinkAllocFree is the runtime check behind the
// metrics-off budget entries: zero-value instrument handles — what every
// layer holds when no registry is attached — must cost nothing on the
// allocator, because the sampling sites run unconditionally on the
// simulator's hot paths.
func TestMetricsNilSinkAllocFree(t *testing.T) {
	var c metrics.Counter
	var g metrics.Gauge
	var b metrics.Busy
	measure(t, "nil metrics sinks", func() {
		for i := 0; i < 64; i++ {
			c.Add(sim.Time(i), 1)
			g.Set(sim.Time(i), int64(i))
			g.Add(sim.Time(i), -1)
			b.AddSpan(sim.Time(i), sim.Time(i+1))
		}
	})
}
