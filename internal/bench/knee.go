package bench

// kneeIndex returns the index of the first element whose value grew less
// than the factor gain over its predecessor (starting from a positive
// predecessor) — the point where further scaling stopped paying — or -1
// when the series keeps growing throughout. The scale experiment uses it
// with gain 1.15: under 15% aggregate gain from doubling the servers.
func kneeIndex(vals []float64, gain float64) int {
	for i := 1; i < len(vals); i++ {
		if vals[i-1] > 0 && vals[i] < vals[i-1]*gain {
			return i
		}
	}
	return -1
}

// saturationPoint is the time-series analogue of kneeIndex: the first
// interval where a resource's utilization pins at or above pin while a
// backlog stands in its queue (the queue grew or held — it is not
// draining). Past that point offered load no longer buys throughput
// (utilization cannot rise) and accumulates as queue depth instead — the
// same growth-stopped-paying shape kneeIndex finds across a parameter
// sweep, read along virtual time. Returns -1 when the resource never
// saturates.
func saturationPoint(util, queue []float64, pin float64) int {
	n := len(util)
	if len(queue) < n {
		n = len(queue)
	}
	for i := 1; i < n; i++ {
		if util[i] >= pin && queue[i] > 0 && queue[i] >= queue[i-1] {
			return i
		}
	}
	return -1
}
