package bench

import (
	"bytes"
	"fmt"

	"pvfsib/internal/pcache"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// Cache sweeps the client-side page cache (internal/pcache) over reuse ×
// hole density × cache size, with a write-behind on/off ablation. The
// workload is the buffer cache's reason to exist: one client issuing many
// small strided operations one at a time (Unix-style call stream), repeated
// over the same region `reuse` times. Uncached, every tiny operation is one
// wire RPC; write-through caching absorbs re-reads but still pays one RPC
// per write; write-behind coalesces the writes into a few large list
// flushes as well. Every cell verifies its read-back bytes.
func Cache(o RunOpts) *Table { return CachePlan(o).Table(o.Parallel) }

// cacheCase is one workload geometry: reuse rounds over a strided region
// whose file stride is density × the segment size (density 2 = 50% holes,
// 4 = 75% holes), against a cache of `pages` 8 KiB frames.
type cacheCase struct {
	reuse   int
	density int64
	pages   int
}

func (cs cacheCase) label() string {
	return fmt.Sprintf("r%d-d%d-p%d", cs.reuse, cs.density, cs.pages)
}

// CachePlan is one cell per (case, mode); modes share nothing, so the
// ablation columns come from independent simulations.
func CachePlan(o RunOpts) *Plan {
	var cases []cacheCase
	if o.Short {
		cases = []cacheCase{
			{reuse: 1, density: 2, pages: 64},
			{reuse: 4, density: 2, pages: 64},
		}
	} else {
		for _, reuse := range []int{1, 4} {
			for _, density := range []int64{2, 4} {
				for _, pages := range []int{16, 64} {
					cases = append(cases, cacheCase{reuse: reuse, density: density, pages: pages})
				}
			}
		}
	}
	modes := []string{"uncached", "writethrough", "writebehind"}
	pl := &Plan{}
	for _, cs := range cases {
		for _, mode := range modes {
			cs, mode := cs, mode
			pl.Cells = append(pl.Cells, cell(cs.label()+"-"+mode, func() cacheResult {
				return cacheCell(cs, mode, o.Shards)
			}))
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:    "cache",
			Title: "Client page cache: reuse x hole density x cache size, write-behind ablation (64 x 2kB ops/round, 1 client, 4 servers)",
			Header: []string{"case", "reuse", "density", "pages",
				"uncached_mbs", "wt_mbs", "wb_mbs", "uncached_rpc", "wb_rpc", "wb_hit_pct", "wb_coalesce"},
		}
		for i, cs := range cases {
			un := results[i*len(modes)].(cacheResult)
			wt := results[i*len(modes)+1].(cacheResult)
			wb := results[i*len(modes)+2].(cacheResult)
			t.Add(cs.label(), cs.reuse, cs.density, cs.pages,
				un.mbs, wt.mbs, wb.mbs, un.rpcs, wb.rpcs, wb.hitPct, wb.coalesce)
		}
		t.Note("all cells verified byte-identical read-back; write-behind turns per-segment RPCs into coalesced list flushes")
		return t
	}
	return pl
}

type cacheResult struct {
	mbs      float64
	rpcs     int64
	hitPct   float64
	coalesce int64
}

// cacheCell runs one (geometry, mode) workload on a fresh cluster and
// returns throughput, wire RPC count, and cache effectiveness.
func cacheCell(cs cacheCase, mode string, shards int) cacheResult {
	const (
		segSize  = 2 << 10
		nSegs    = 64
		pageSize = 8 << 10
	)
	cfg := pvfs.DefaultConfig()
	cfg.Shards = shards
	f := newFixture(cfg, 4, 1)
	defer f.close()
	stride := segSize * cs.density
	pat := func(round int, i int64) []byte {
		b := make([]byte, segSize)
		for j := range b {
			b[j] = byte(round*31 + int(i)*7 + j)
		}
		return b
	}
	elapsed := f.runOne(func(p *sim.Proc, cl *pvfs.Client) {
		fh := cl.Open(p, "cache")
		var cf *pcache.File
		switch mode {
		case "writethrough":
			cf = pcache.New(fh, pcache.Config{PageSize: pageSize, Pages: cs.pages, WriteThrough: true})
		case "writebehind":
			cf = pcache.New(fh, pcache.Config{PageSize: pageSize, Pages: cs.pages})
		}
		wbuf := cl.Space().Malloc(segSize)
		rbuf := cl.Space().Malloc(segSize)
		for round := 0; round < cs.reuse; round++ {
			for i := int64(0); i < nSegs; i++ {
				sim.Must(cl.Space().Write(wbuf, pat(round, i)))
				if cf != nil {
					sim.Must(cf.Write(p, wbuf, segSize, i*stride))
				} else {
					sim.Must(fh.Write(p, wbuf, segSize, i*stride, pvfs.OpOptions{}))
				}
			}
			for i := int64(0); i < nSegs; i++ {
				if cf != nil {
					sim.Must(cf.Read(p, rbuf, segSize, i*stride))
				} else {
					sim.Must(fh.Read(p, rbuf, segSize, i*stride, pvfs.OpOptions{}))
				}
				got, err := cl.Space().Read(rbuf, segSize)
				sim.Must(err)
				if !bytes.Equal(got, pat(round, i)) {
					sim.Failf("bench: cache: %s/%s: round %d seg %d read back corrupted data",
						cs.label(), mode, round, i)
				}
			}
		}
		if cf != nil {
			sim.Must(cf.Sync(p))
			sim.Must(cf.Close(p))
		} else {
			fh.Sync(p)
		}
	})
	s := f.c.Snapshot()
	total := int64(cs.reuse) * 2 * nSegs * segSize
	ops := int64(cs.reuse) * 2 * nSegs
	return cacheResult{
		mbs:      bw(total, elapsed),
		rpcs:     s.ReadReqs + s.WriteReqs,
		hitPct:   float64(s.CacheHits) / float64(ops) * 100,
		coalesce: s.CoalescedFlushes,
	}
}
