package bench

import (
	"bytes"
	"testing"

	"pvfsib/internal/mpiio"
	"pvfsib/internal/trace"
)

// TestTraceRunDeterministic: the same (workload, seed) pair must export a
// byte-identical Perfetto trace — span IDs, ordering, timestamps, and
// attributes all reproduce.
func TestTraceRunDeterministic(t *testing.T) {
	export := func() []byte {
		tr := TraceRun(true)
		var buf bytes.Buffer
		if err := tr.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestBreakdownCellSpans sanity-checks the traced workload behind the
// breakdown experiment: every rank's write and read mints a request, every
// span closes, parents resolve, and the wire and disk stages both show up
// in the decomposition.
func TestBreakdownCellSpans(t *testing.T) {
	tr, elapsed := breakdownCell(mpiio.ListIOADS, 16)
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byID := make(map[trace.SpanID]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	for i := range spans {
		s := &spans[i]
		if !s.Ended {
			t.Errorf("span %d (%s on %s) never ended", s.ID, s.Kind, s.Node)
		}
		if s.End < s.Start {
			t.Errorf("span %d ends before it starts: [%v,%v]", s.ID, s.Start, s.End)
		}
		if s.Parent != 0 {
			pi, ok := byID[s.Parent]
			if !ok {
				t.Errorf("span %d parent %d unknown", s.ID, s.Parent)
			} else if spans[pi].Req != s.Req {
				t.Errorf("span %d crosses requests: req %d under parent req %d",
					s.ID, s.Req, spans[pi].Req)
			}
		}
	}
	// 4 ranks, one write pass and one read pass each.
	prof := tr.Profile()
	if prof.Latency.Count != 8 {
		t.Errorf("request count = %d, want 8", prof.Latency.Count)
	}
	if prof.Stage[trace.StageWire].Ns == 0 {
		t.Error("wire stage absent from decomposition")
	}
	if prof.Stage[trace.StageDisk].Ns == 0 {
		t.Error("disk stage absent from decomposition (cache drop not effective?)")
	}
	if prof.MaxInflight() < 2 {
		t.Errorf("max inflight = %d, want >= 2 with 4 concurrent ranks", prof.MaxInflight())
	}
}
