package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// Scale sweeps the cell geometry — I/O server count x client count x
// stripe size — on a strided list-I/O workload and reports aggregate
// bandwidth, with knee detection per (stripe, clients) series: the first
// server count whose doubling stopped paying (under 15% aggregate gain).
// The knee is the capacity-planning number the paper's scaling figures
// imply but never tabulate: how many iods a cell of a given client
// population can actually use.
func Scale(o RunOpts) *Table { return ScalePlan(o).Table(o.Parallel) }

// scaleCase is one grid point.
type scaleCase struct {
	iods    int
	clients int
	stripe  int64
}

type scaleResult struct {
	wMBs, rMBs float64
}

// agg is the series value the knee detector watches.
func (r scaleResult) agg() float64 { return r.wMBs + r.rMBs }

// ScalePlan is one cell per grid point; each cell builds its own cluster,
// so grid points share nothing and the plan parallelizes freely.
func ScalePlan(o RunOpts) *Plan {
	iods := []int{1, 2, 4, 8}
	clients := []int{2, 4, 8}
	stripes := []int64{16 << 10, 64 << 10, 256 << 10}
	if o.Short {
		iods = []int{1, 2, 4}
		clients = []int{4}
		stripes = []int64{64 << 10}
	}
	pl := &Plan{}
	for _, st := range stripes {
		for _, nc := range clients {
			for _, ns := range iods {
				cs := scaleCase{iods: ns, clients: nc, stripe: st}
				pl.Cells = append(pl.Cells, cell(fmt.Sprintf("io%d-c%d-s%dk", cs.iods, cs.clients, cs.stripe>>10),
					func() scaleResult { return scaleCell(cs, o.Shards) }))
			}
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "scale",
			Title:  "Cell scaling: aggregate list-I/O bandwidth by iods x clients x stripe (MB/s)",
			Header: []string{"stripe_kb", "clients", "iods", "write_MBs", "read_MBs"},
		}
		idx := 0
		for _, st := range stripes {
			for _, nc := range clients {
				aggs := make([]float64, 0, len(iods))
				for _, ns := range iods {
					r := results[idx].(scaleResult)
					idx++
					t.Add(st>>10, nc, ns, r.wMBs, r.rMBs)
					aggs = append(aggs, r.agg())
				}
				if k := kneeIndex(aggs, 1.15); k >= 0 {
					t.Note("knee s=%dk c=%d: under 15%% aggregate gain at %d iods", st>>10, nc, iods[k])
				} else {
					t.Note("knee s=%dk c=%d: none up to %d iods", st>>10, nc, iods[len(iods)-1])
				}
			}
		}
		return t
	}
	return pl
}

// scaleCell runs the strided list workload on one grid point: every rank
// writes then reads back 64 interleaved 8 KiB segments through list I/O.
// shards partitions the cell's engine; output is byte-identical for every
// value.
func scaleCell(cs scaleCase, shards int) scaleResult {
	const (
		nseg    = 64
		segSize = 8 << 10
	)
	cfg := pvfs.DefaultConfig()
	cfg.StripeSize = cs.stripe
	cfg.Shards = shards
	f := newFixture(cfg, cs.iods, cs.clients)
	defer f.close()

	segsOf := make([][]ib.SGE, cs.clients)
	for i := range segsOf {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	accsOf := func(rank int) []pvfs.OffLen {
		accs := make([]pvfs.OffLen, 0, nseg)
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*int64(cs.clients) + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	total := int64(cs.clients) * nseg * segSize

	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale-grid")
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], accsOf(rank.ID()), pvfs.OpOptions{}))
		fh.Sync(p)
	})
	w := bw(total, elapsed)

	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale-grid")
		rd := cl.Space().Malloc(nseg * segSize)
		segs := make([]ib.SGE, nseg)
		for i := int64(0); i < nseg; i++ {
			segs[i] = ib.SGE{Addr: rd + mem.Addr(i*segSize), Len: segSize}
		}
		rank.Barrier(p)
		sim.Must(fh.ReadList(p, segs, accsOf(rank.ID()), pvfs.OpOptions{}))
	})
	return scaleResult{wMBs: w, rMBs: bw(total, elapsed)}
}
