package bench

import (
	"fmt"

	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/workload"
)

// Fig8 reproduces the paper's Figure 8: mpi-tile-io (2x2 display of
// 1024x768 24-bit tiles, a 9 MB file) without disk effects — writes are not
// synced and reads come from the servers' file caches.
func Fig8(o RunOpts) *Table { return Fig8Plan(o).Table(o.Parallel) }

// Fig8Plan decomposes Figure 8 into one cell per (op, method).
func Fig8Plan(o RunOpts) *Plan {
	return tilePlan("fig8", "Tiled I/O without disk effects, bandwidth (MB/s)", false,
		"paper shape: List+ADS ~5.7x Multiple for write, ~8.8x for read; 8.4%/45% over plain List I/O")
}

// Fig9 reproduces Figure 9: the same accesses with disk effects — writes
// synced to disk, reads from dropped caches.
func Fig9(o RunOpts) *Table { return Fig9Plan(o).Table(o.Parallel) }

// Fig9Plan decomposes Figure 9 into one cell per (op, method).
func Fig9Plan(o RunOpts) *Plan {
	return tilePlan("fig9", "Tiled I/O with disk effects, bandwidth (MB/s)", true,
		"paper shape: ADS still wins writes; for reads ROMIO DS overtakes when the disk dominates")
}

// tilePlan builds the shared write-row/read-row decomposition: one cell per
// method for writes, then one per method for reads.
func tilePlan(id, title string, diskEffects bool, note string) *Plan {
	pl := &Plan{}
	for _, m := range methodList {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("write/%d", m),
			func() float64 { return tileWrite(m, diskEffects) }))
	}
	for _, m := range methodList {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("read/%d", m),
			func() float64 { return tileRead(m, !diskEffects) }))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     id,
			Title:  title,
			Header: []string{"op", "multiple", "datasieving", "listio", "listio+ads"},
		}
		wRow := []any{"write"}
		rRow := []any{"read"}
		for i := range methodList {
			wRow = append(wRow, results[i].(float64))
			rRow = append(rRow, results[len(methodList)+i].(float64))
		}
		t.Add(wRow...)
		t.Add(rRow...)
		t.Note("%s", note)
		return t
	}
	return pl
}

func tileWrite(m mpiio.Method, withSync bool) float64 {
	spec := workload.PaperTileSpec()
	f := newFixture(pvfs.DefaultConfig(), 4, 4)
	defer f.close()
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(file.Write(p, m, buf.Segs, buf.Accs))
		if withSync {
			file.Sync(p)
		}
	})
	return bw(spec.FileBytes(), elapsed)
}

func tileRead(m mpiio.Method, cached bool) float64 {
	spec := workload.PaperTileSpec()
	f := newFixture(pvfs.DefaultConfig(), 4, 4)
	defer f.close()
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()))
		sim.Must(file.Write(p, mpiio.ListIO, buf.Segs, buf.Accs))
		if !cached {
			file.Sync(p)
		}
	})
	if !cached {
		f.c.Eng.Go("drop", func(p *sim.Proc) { dropAllCaches(p, f.c) })
		sim.Must(f.c.Run())
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()+9))
		rank.Barrier(p)
		sim.Must(file.Read(p, m, buf.Segs, buf.Accs))
	})
	return bw(spec.FileBytes(), elapsed)
}
