package bench

import (
	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/workload"
)

// Fig8 reproduces the paper's Figure 8: mpi-tile-io (2x2 display of
// 1024x768 24-bit tiles, a 9 MB file) without disk effects — writes are not
// synced and reads come from the servers' file caches.
func Fig8(o RunOpts) *Table {
	t := tileTable("fig8", "Tiled I/O without disk effects, bandwidth (MB/s)")
	tileRows(t, false)
	t.Note("paper shape: List+ADS ~5.7x Multiple for write, ~8.8x for read; 8.4%%/45%% over plain List I/O")
	return t
}

// Fig9 reproduces Figure 9: the same accesses with disk effects — writes
// synced to disk, reads from dropped caches.
func Fig9(o RunOpts) *Table {
	t := tileTable("fig9", "Tiled I/O with disk effects, bandwidth (MB/s)")
	tileRows(t, true)
	t.Note("paper shape: ADS still wins writes; for reads ROMIO DS overtakes when the disk dominates")
	return t
}

func tileTable(id, title string) *Table {
	return &Table{
		ID:     id,
		Title:  title,
		Header: []string{"op", "multiple", "datasieving", "listio", "listio+ads"},
	}
}

func tileRows(t *Table, diskEffects bool) {
	wRow := []any{"write"}
	rRow := []any{"read"}
	for _, m := range methodList {
		wRow = append(wRow, tileWrite(m, diskEffects))
	}
	for _, m := range methodList {
		rRow = append(rRow, tileRead(m, !diskEffects))
	}
	t.Rows = nil
	t.Add(wRow...)
	t.Add(rRow...)
}

func tileWrite(m mpiio.Method, withSync bool) float64 {
	spec := workload.PaperTileSpec()
	f := newFixture(pvfs.DefaultConfig(), 4, 4)
	defer f.close()
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(file.Write(p, m, buf.Segs, buf.Accs))
		if withSync {
			file.Sync(p)
		}
	})
	return bw(spec.FileBytes(), elapsed)
}

func tileRead(m mpiio.Method, cached bool) float64 {
	spec := workload.PaperTileSpec()
	f := newFixture(pvfs.DefaultConfig(), 4, 4)
	defer f.close()
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()))
		sim.Must(file.Write(p, mpiio.ListIO, buf.Segs, buf.Accs))
		if !cached {
			file.Sync(p)
		}
	})
	if !cached {
		f.c.Eng.Go("drop", func(p *sim.Proc) { dropAllCaches(p, f.c) })
		sim.Must(f.c.Run())
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "tiles")
		buf := materialize(cl, spec.Tile(rank.ID()), byte(rank.ID()+9))
		rank.Barrier(p)
		sim.Must(file.Read(p, m, buf.Segs, buf.Accs))
	})
	return bw(spec.FileBytes(), elapsed)
}
