package bench

import (
	"runtime"
	"testing"
)

// TestBreakdownDeterministicAcrossGOMAXPROCS is the regression test for the
// invariant detcheck protects statically: experiment output must be
// byte-identical however the Go scheduler slices the run. The breakdown
// experiment (span tracing, the most stage-accounting-sensitive table) runs
// on an 8-worker cell pool twice — once on a single P, where goroutines
// serialize, and once on every available P, where cells genuinely race —
// and the JSON must not differ by a byte.
func TestBreakdownDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the breakdown experiment twice")
	}
	exp, err := Lookup("breakdown")
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Short: true, Seed: 1, Parallel: 8}

	prev := runtime.GOMAXPROCS(1)
	serial := exp.Run(opts).JSON()
	runtime.GOMAXPROCS(prev)
	parallel := exp.Run(opts).JSON()

	if serial != parallel {
		t.Fatalf("breakdown JSON differs between GOMAXPROCS=1 and GOMAXPROCS=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			prev, serial, parallel)
	}
}
