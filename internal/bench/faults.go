package bench

import (
	"bytes"
	"fmt"
	"time"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

// Faults sweeps the fault plane: four clients write and read back a strided
// list-I/O workload while the injector corrupts work requests, and a final
// "storm" row adds registration pressure, a partition that heals, and an
// I/O daemon crash/restart. Every cell verifies the read-back bytes — a
// row only appears if no data was lost. The table reports completion time
// and the recovery layer's counters instead of bandwidth: the interesting
// quantity is the price of each fault class, not the fabric's peak.
func Faults(o RunOpts) *Table { return FaultsPlan(o).Table(o.Parallel) }

// FaultsPlan is one cell per error rate plus the storm cell; each cell
// builds its own fault plan so nothing is shared across engines.
func FaultsPlan(o RunOpts) *Plan {
	rates := []float64{0, 0.005, 0.02, 0.05}
	if o.Short {
		rates = []float64{0, 0.02}
	}
	seed := o.Seed
	pl := &Plan{}
	for _, rate := range rates {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("wr-%.3f", rate), func() faultsResult {
			var plan *fault.Plan
			if rate != 0 {
				plan = &fault.Plan{Seed: seed, WRErrorRate: rate}
			}
			return faultsCell(plan, o.Shards)
		}))
	}
	pl.Cells = append(pl.Cells, cell("storm", func() faultsResult {
		return faultsCell(&fault.Plan{
			Seed:        seed,
			WRErrorRate: 0.02,
			RegFailRate: 0.2,
			Cuts: []fault.Cut{
				{A: 4, B: 1, At: 200 * time.Microsecond, Dur: 400 * time.Microsecond},
			},
			Crashes: []fault.Crash{
				{Server: 2, At: 300 * time.Microsecond, Down: 600 * time.Microsecond},
			},
		}, o.Shards)
	}))
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:    "faults",
			Title: "Recovery under injected faults: completion time and recovery work (4+4, 64x4kB per rank)",
			Header: []string{"scenario", "wr_rate",
				"time_ms", "retries", "timeouts", "fallbacks", "aborts", "qp_resets"},
		}
		for i, rate := range rates {
			r := results[i].(faultsResult)
			t.Add("wr-errors", fmt.Sprintf("%.3f", rate), r.ms, r.s.Retries, r.s.Timeouts, r.s.Fallbacks, r.s.ServerAborts, r.s.QPResets)
		}
		r := results[len(rates)].(faultsResult)
		t.Add("storm", "0.020", r.ms, r.s.Retries, r.s.Timeouts, r.s.Fallbacks, r.s.ServerAborts, r.s.QPResets)
		t.Note("all cells verified byte-identical read-back; time grows with fault rate while the data stays intact")
		return t
	}
	return pl
}

type faultsResult struct {
	ms float64
	s  struct {
		Retries, Timeouts, Fallbacks, ServerAborts, QPResets int64
	}
}

// faultsCell runs the workload under one plan (nil = fault-free) and
// returns completion time plus recovery counters. shards partitions the
// cell's engine; the result is byte-identical for every value.
func faultsCell(plan *fault.Plan, shards int) faultsResult {
	const (
		nseg    = 64
		segSize = 4 << 10
		ranks   = 4
	)
	cfg := pvfs.DefaultConfig()
	cfg.Faults = plan
	cfg.Shards = shards
	f := newFixture(cfg, 4, ranks)
	defer f.close()

	opts := pvfs.OpOptions{Sieve: sieve.Never}
	segsOf := make([][]ib.SGE, ranks)
	wantOf := make([][]byte, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
		var want []byte
		for _, s := range segsOf[i] {
			b, err := f.c.Clients[i].Space().Read(s.Addr, s.Len)
			sim.Must(err)
			want = append(want, b...)
		}
		wantOf[i] = want
	}
	buildAccs := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "faults")
		accs := buildAccs(rank.ID())
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
		fh.Sync(p)
		rd := cl.Space().Malloc(nseg * segSize)
		rdSegs := make([]ib.SGE, nseg)
		for i := int64(0); i < nseg; i++ {
			rdSegs[i] = ib.SGE{Addr: rd + mem.Addr(i*segSize), Len: segSize}
		}
		sim.Must(fh.ReadList(p, rdSegs, accs, opts))
		got, err := cl.Space().Read(rd, nseg*segSize)
		sim.Must(err)
		if !bytes.Equal(got, wantOf[rank.ID()]) {
			sim.Failf("bench: faults: rank %d read back corrupted data", rank.ID())
		}
	})
	s := f.c.Snapshot()
	var r faultsResult
	r.ms = elapsed.Seconds() * 1e3
	r.s.Retries = s.Retries
	r.s.Timeouts = s.Timeouts
	r.s.Fallbacks = s.Fallbacks
	r.s.ServerAborts = s.ServerAborts
	r.s.QPResets = s.QPResets
	return r
}
