package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/ogr"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/workload"
)

// ExtraNoncontig reproduces the ROMIO "noncontig" benchmark (Latham & Ross,
// the paper's reference [15]): every process reads and writes a vector
// pattern — veclen elements of elemsize bytes out of every nprocs*veclen —
// through each access method. The pattern is the pathological case the
// paper's introduction cites for PVFS-over-TCP performance problems.
func ExtraNoncontig(o RunOpts) *Table { return ExtraNoncontigPlan(o).Table(o.Parallel) }

// ExtraNoncontigPlan is one cell per (veclen, method); each cell carries
// both the write and read bandwidth.
func ExtraNoncontigPlan(o RunOpts) *Plan {
	veclens := []int64{8, 64, 512}
	if o.Short {
		veclens = []int64{64}
	}
	const elem = 8 // doubles, as in the original benchmark
	const count = 2048
	pl := &Plan{}
	for _, veclen := range veclens {
		for _, m := range methodList {
			pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%d/%d", veclen, m), func() wrPair {
				w, r := noncontigCell(veclen, elem, count, m)
				return wrPair{w, r}
			}))
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "extra-noncontig",
			Title:  "ROMIO noncontig benchmark, aggregate bandwidth (MB/s)",
			Header: []string{"veclen", "op", "multiple", "datasieving", "listio", "listio+ads"},
		}
		i := 0
		for _, veclen := range veclens {
			wRow := []any{veclen, "write"}
			rRow := []any{veclen, "read"}
			for range methodList {
				pair := results[i].(wrPair)
				i++
				wRow = append(wRow, pair.w)
				rRow = append(rRow, pair.r)
			}
			t.Add(wRow...)
			t.Add(rRow...)
		}
		t.Note("vector of count blocks, each veclen*8 bytes, strided by nprocs; smaller veclen = finer fragmentation")
		return t
	}
	return pl
}

// noncontigCell runs the noncontig pattern with 4 ranks and one method.
func noncontigCell(veclen, elem, count int64, m mpiio.Method) (wBW, rBW float64) {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	blockBytes := veclen * elem
	stride := blockBytes * ranks
	total := int64(ranks) * count * blockBytes

	patFor := func(rank int) workload.Pattern {
		return workload.Pattern{
			Mem:  mpiio.Contig(count * blockBytes),
			File: mpiio.Vector(count, blockBytes, stride).Shift(int64(rank) * blockBytes),
		}
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "noncontig")
		buf := materialize(cl, patFor(rank.ID()), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(file.Write(p, m, buf.Segs, buf.Accs))
	})
	wBW = bw(total, elapsed)

	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "noncontig")
		buf := materialize(cl, patFor(rank.ID()), byte(rank.ID()+77))
		rank.Barrier(p)
		sim.Must(file.Read(p, m, buf.Segs, buf.Accs))
	})
	rBW = bw(total, elapsed)
	return
}

// ExtraDiskSpeed shows the "active and intelligent" property of ADS: the
// cost model is built from the server's measured disk parameters, so the
// sieve/individual decision adapts to the storage generation without
// retuning — seek-bound disks favour sieving, near-seekless devices favour
// individual access. Sync writes of the block-column pattern.
func ExtraDiskSpeed(o RunOpts) *Table { return ExtraDiskSpeedPlan(o).Table(o.Parallel) }

// autoResult carries the auto cell's bandwidth and sieve-decision count.
type autoResult struct {
	bw   float64
	wins int64
}

// ExtraDiskSpeedPlan is three cells (never/always/auto) per storage
// profile.
func ExtraDiskSpeedPlan(o RunOpts) *Plan {
	n := int64(2048)
	if o.Short {
		n = 1024
	}
	type profile struct {
		name string
		cfg  pvfs.Config
	}
	profiles := []profile{
		{"0.25x ATA", diskSpeedConfig(0.25, false)},
		{"1x ATA (paper)", diskSpeedConfig(1, false)},
		{"4x ATA", diskSpeedConfig(4, false)},
		{"SSD-like (no seek)", diskSpeedConfig(8, true)},
	}
	pl := &Plan{}
	for _, pr := range profiles {
		cfg := pr.cfg
		pl.Cells = append(pl.Cells,
			cell(pr.name+"/never", func() float64 { return diskSpeedCell(cfg, n, sieve.Never) }),
			cell(pr.name+"/always", func() float64 { return diskSpeedCell(cfg, n, sieve.Always) }),
			cell(pr.name+"/auto", func() autoResult {
				bwv, wins := diskSpeedCellAuto(cfg, n)
				return autoResult{bwv, wins}
			}),
		)
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "extra-diskspeed",
			Title:  "ADS decision vs. storage profile, block-column sync write (MB/s)",
			Header: []string{"disk", "never", "always", "model(auto)", "auto_sieved_windows"},
		}
		for i, pr := range profiles {
			auto := results[3*i+2].(autoResult)
			t.Add(pr.name, results[3*i].(float64), results[3*i+1].(float64), auto.bw, auto.wins)
		}
		t.Note("auto should track the better forced mode on every profile; the SSD-like row flips the decision to individual access")
		return t
	}
	return pl
}

// diskSpeedConfig scales the disk bandwidth; fastSeek additionally collapses
// the seek and per-op overheads to SSD-like values.
func diskSpeedConfig(speed float64, fastSeek bool) pvfs.Config {
	cfg := pvfs.DefaultConfig()
	cfg.Disk.MaxReadBW *= speed
	cfg.Disk.MaxWriteBW *= speed
	if fastSeek {
		cfg.Disk.Seek = 20 * 1000  // 20µs
		cfg.Disk.PerOp = 20 * 1000 // 20µs
		cfg.Disk.HalfSize = 1024   // small-access penalty nearly gone
	}
	return cfg
}

func diskSpeedCell(cfg pvfs.Config, n int64, mode sieve.Mode) float64 {
	const ranks = 4
	f := newFixture(cfg, 4, ranks)
	defer f.close()
	total := n * n * 4
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "ds")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, buf.Segs, buf.Accs, pvfs.OpOptions{Sieve: mode}))
		fh.Sync(p)
	})
	return bw(total, elapsed)
}

func diskSpeedCellAuto(cfg pvfs.Config, n int64) (float64, int64) {
	const ranks = 4
	f := newFixture(cfg, 4, ranks)
	defer f.close()
	total := n * n * 4
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "ds")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, buf.Segs, buf.Accs, pvfs.OpOptions{}))
		fh.Sync(p)
	})
	var wins int64
	for _, s := range f.c.Servers {
		wins += s.SieveStats.SievedWins
	}
	return bw(total, elapsed), wins
}

// ExtraScaling measures aggregate list-I/O bandwidth as the server count
// grows — the striping-scalability property PVFS exists for (the paper's
// prior work [31] evaluates it on the same testbed).
func ExtraScaling(o RunOpts) *Table { return ExtraScalingPlan(o).Table(o.Parallel) }

// scalingResult carries one server count's four bandwidths.
type scalingResult struct {
	cw, cr, lw, lr float64
}

// ExtraScalingPlan is one cell per server count.
func ExtraScalingPlan(o RunOpts) *Plan {
	counts := []int{1, 2, 4, 8}
	if o.Short {
		counts = []int{1, 4}
	}
	pl := &Plan{}
	for _, ns := range counts {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("servers-%d", ns), func() scalingResult {
			cw, cr, lw, lr := scalingCell(ns)
			return scalingResult{cw, cr, lw, lr}
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "extra-scaling",
			Title:  "Aggregate bandwidth vs. I/O server count (4 clients, MB/s)",
			Header: []string{"servers", "contig_write", "contig_read", "list_write", "list_read"},
		}
		for i, ns := range counts {
			r := results[i].(scalingResult)
			t.Add(ns, r.cw, r.cr, r.lw, r.lr)
		}
		t.Note("striping should scale bandwidth until the clients' links saturate")
		return t
	}
	return pl
}

func scalingCell(nServers int) (cw, cr, lw, lr float64) {
	const ranks = 4
	const per = 8 << 20 // 8 MB per rank
	f := newFixture(pvfs.DefaultConfig(), nServers, ranks)
	defer f.close()

	// Contiguous writes and reads at disjoint offsets.
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale")
		addr := cl.Space().Malloc(per)
		rank.Barrier(p)
		sim.Must(fh.Write(p, addr, per, int64(rank.ID())*per, pvfs.OpOptions{}))
	})
	cw = bw(ranks*per, elapsed)
	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale")
		addr := cl.Space().Malloc(per)
		rank.Barrier(p)
		sim.Must(fh.Read(p, addr, per, int64(rank.ID())*per, pvfs.OpOptions{}))
	})
	cr = bw(ranks*per, elapsed)

	// Noncontiguous list I/O on the block-column pattern.
	n := int64(1024)
	total := n * n * 4
	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale-list")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, buf.Segs, buf.Accs, pvfs.OpOptions{}))
	})
	lw = bw(total, elapsed)
	elapsed = f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "scale-list")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()+9))
		rank.Barrier(p)
		sim.Must(fh.ReadList(p, buf.Segs, buf.Accs, pvfs.OpOptions{}))
	})
	lr = bw(total, elapsed)
	return
}

// ExtraAppAware compares the paper's Section 4.2.1 design alternatives —
// application-controlled registration (explicit) and declared-allocation
// registration — against the transparent Optimistic Group Registration the
// paper chose. The subarray write of Table 4, steady state.
func ExtraAppAware(o RunOpts) *Table { return ExtraAppAwarePlan(o).Table(o.Parallel) }

// appAwareResult carries one registration scheme's measurements.
type appAwareResult struct {
	bw   float64
	regs int64
}

// ExtraAppAwarePlan is one cell per registration scheme.
func ExtraAppAwarePlan(o RunOpts) *Plan {
	n := int64(2048)
	if o.Short {
		n = 1024
	}
	schemes := []struct {
		name    string
		reg     pvfs.RegPolicy
		changes string
	}{
		{"explicit (4.2.1-1)", pvfs.RegExplicit, "register calls"},
		{"declared (4.2.1-2)", pvfs.RegDeclared, "declare allocation"},
		{"OGR (chosen)", pvfs.RegOGR, "none"},
		{"OGR + cache", pvfs.RegCached, "none"},
	}
	pl := &Plan{}
	for _, sc := range schemes {
		reg := sc.reg
		pl.Cells = append(pl.Cells, cell(sc.name, func() appAwareResult {
			bwv, regs := appAwareCell(n, reg)
			return appAwareResult{bwv, regs}
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "extra-appaware",
			Title:  "Application-aware registration alternatives, subarray write (MB/s)",
			Header: []string{"scheme", "agg_MB_s", "regs", "app_changes"},
		}
		for i, sc := range schemes {
			r := results[i].(appAwareResult)
			t.Add(sc.name, r.bw, r.regs, sc.changes)
		}
		t.Note("OGR reaches the app-aware schemes' performance without any application change — the design argument of Section 4.2")
		return t
	}
	return pl
}

func appAwareCell(n int64, reg pvfs.RegPolicy) (float64, int64) {
	const ranks = 4
	elem := int64(4)
	perRank := (n / 2) * (n / 2) * elem
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()

	type rankState struct {
		segs  []ib.SGE
		alloc mem.Extent
		mr    *ib.MR
	}
	states := make([]rankState, ranks)
	for i := 0; i < ranks; i++ {
		cl := f.c.Clients[i]
		pat := workload.SubarrayWrite(n, 2, 2, i%2, i/2, elem)
		b := materialize(cl, pat, byte(i))
		states[i] = rankState{
			segs:  b.Segs,
			alloc: mem.Extent{Addr: b.Base, Len: pat.MemSpan()},
		}
	}
	// Setup phase (unmeasured): explicit registration or cache warm-up.
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		st := &states[rank.ID()]
		switch reg {
		case pvfs.RegExplicit:
			mr, err := cl.RegisterRegion(p, st.alloc)
			sim.Must(err)
			st.mr = mr
		case pvfs.RegCached:
			fh := cl.Open(p, "warm")
			opts := pvfs.OpOptions{Transfer: pvfs.ForceGather, Reg: reg, Sieve: sieve.Never}
			accs := []pvfs.OffLen{{Off: int64(rank.ID()) * perRank, Len: perRank}}
			sim.Must(fh.WriteList(p, st.segs, accs, opts))
		}
	})
	var regs0 int64
	for _, cl := range f.c.Clients {
		regs0 += cl.HCA().Counters.Registrations
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		st := &states[rank.ID()]
		fh := cl.Open(p, "aa")
		opts := pvfs.OpOptions{Transfer: pvfs.ForceGather, Reg: reg, Sieve: sieve.Never}
		if reg == pvfs.RegDeclared {
			opts.Allocation = st.alloc
		}
		accs := []pvfs.OffLen{{Off: int64(rank.ID()) * perRank, Len: perRank}}
		rank.Barrier(p)
		sim.Must(fh.WriteList(p, st.segs, accs, opts))
	})
	var regsN int64
	for _, cl := range f.c.Clients {
		regsN += cl.HCA().Counters.Registrations
	}
	return bw(int64(ranks)*perRank, elapsed), (regsN - regs0) / ranks
}

// ExtraQueryMethod compares the three OS hole-query mechanisms the paper
// discusses for OGR's fallback (Section 4.3): the custom system call
// (≈70 µs per 1000 holes), reading /proc/$pid/maps (≈1100 µs), and a
// mincore-style per-page probe. The OGR+Q scenario of Table 4.
func ExtraQueryMethod(o RunOpts) *Table { return ExtraQueryMethodPlan(o).Table(o.Parallel) }

// queryResult carries one hole-query mechanism's measurements.
type queryResult struct {
	us   float64
	regs int
}

// ExtraQueryMethodPlan is one cell per query mechanism.
func ExtraQueryMethodPlan(o RunOpts) *Plan {
	nseg := 1024
	if o.Short {
		nseg = 256
	}
	methods := []struct {
		name   string
		method mem.QueryMethod
	}{
		{"custom syscall", mem.QuerySyscall},
		{"/proc/pid/maps", mem.QueryProcMaps},
		{"mincore probe", mem.QueryMincore},
	}
	pl := &Plan{}
	for _, m := range methods {
		method := m.method
		pl.Cells = append(pl.Cells, cell(m.name, func() queryResult {
			us, regs := queryMethodCell(nseg, method)
			return queryResult{us, regs}
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "extra-querymethod",
			Title:  "OS hole-query mechanisms in OGR's fallback (registration time, µs)",
			Header: []string{"method", "reg_time_us", "regs"},
		}
		for i, m := range methods {
			r := results[i].(queryResult)
			t.Add(m.name, r.us, r.regs)
		}
		t.Note("paper: ~70µs per 1000 holes via the kernel walk vs ~1100µs via /proc")
		return t
	}
	return pl
}

func queryMethodCell(nseg int, method mem.QueryMethod) (float64, int) {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	h := ib.NewHCA(net.AddNode("n"), mem.NewAddrSpace("n"), ib.DefaultParams())
	// Buffers from 11 arrays with 10 unallocated holes, like OGR+Q.
	var exts []mem.Extent
	per := (nseg + 10) / 11
	for a := 0; a < 11 && len(exts) < nseg; a++ {
		if a > 0 {
			h.Space().Reserve(2)
		}
		count := min(per, nseg-len(exts))
		base := h.Space().Malloc(int64(count) * 4096)
		for i := 0; i < count; i++ {
			exts = append(exts, mem.Extent{Addr: base + mem.Addr(i*4096), Len: 4096})
		}
	}
	cfg := ogr.DefaultConfig()
	cfg.QueryMethod = method
	var elapsed sim.Duration
	var regs int
	eng.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		res, err := ogr.RegisterBuffers(p, ogr.Direct{HCA: h}, h.Space(), exts, cfg)
		sim.Must(err)
		regs = res.Registrations
		if !res.Queried {
			sim.Failf("bench: expected the query fallback to run")
		}
		sim.Must(ogr.Release(p, ogr.Direct{HCA: h}, res))
		elapsed = p.Now().Sub(t0)
	})
	runTolerant(eng)
	return float64(elapsed.Nanoseconds()) / 1000, regs
}
