package bench

import (
	"testing"

	"pvfsib/internal/ib"
)

// BenchmarkFig3Cell measures one full Figure 3 cell — engine, network,
// HCAs, and all six transfer schemes for a 512x512 array — end to end.
// This is the unit of work the parallel scheduler distributes, so its
// ns/op and allocs/op are the numbers the engine and pooling work targets.
func BenchmarkFig3Cell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig3Row(512, ib.DefaultParams())
	}
}
