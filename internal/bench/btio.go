package bench

import (
	"fmt"
	"sync"
	"time"

	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/stats"
	"pvfsib/internal/workload"
)

// btioMethods lists the Table 5 rows in paper order; "no I/O" runs the
// compute loop alone.
var btioMethods = []struct {
	label  string
	method mpiio.Method
	noIO   bool
}{
	{"no I/O", 0, true},
	{"Multiple I/O", mpiio.MultipleIO, false},
	{"Collective I/O", mpiio.Collective, false},
	{"List I/O", mpiio.ListIO, false},
	{"List I/O with ADS", mpiio.ListIOADS, false},
	{"Data Sieving", mpiio.DataSieving, false},
}

// btioResult captures one BTIO run.
type btioResult struct {
	label  string
	totalS float64
	ioS    float64
	snap   stats.Snapshot
}

// runBTIO executes the BTIO workload with one method: Steps compute phases
// with a solution dump every Steps/Dumps steps, then a read-back
// verification of the entire solution history, timing the I/O share.
func runBTIO(spec workload.BTIOSpec, m mpiio.Method, noIO bool) btioResult {
	f := newFixture(pvfs.DefaultConfig(), 4, spec.NProcs)
	defer f.close()
	stepsPerDump := spec.Steps / spec.Dumps
	var ioTime sim.Duration

	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "btio")
		// One reusable memory buffer per rank, sized for a dump.
		buf := materialize(cl, spec.Dump(rank.ID(), 0), byte(rank.ID()))
		compute := sim.Duration(spec.StepCompute * float64(time.Second))
		dump := 0
		for step := 1; step <= spec.Steps; step++ {
			p.Sleep(compute)
			if step%stepsPerDump == 0 && !noIO {
				pat := spec.Dump(rank.ID(), dump)
				t0 := p.Now()
				sim.Must(file.Write(p, m, buf.Segs, []pvfs.OffLen(pat.File)))
				if rank.ID() == 0 {
					ioTime += p.Now().Sub(t0)
				}
				dump++
			}
		}
		if noIO {
			return
		}
		// Verification read-back of the full solution history.
		for d := 0; d < spec.Dumps; d++ {
			pat := spec.Dump(rank.ID(), d)
			t0 := p.Now()
			sim.Must(file.Read(p, m, buf.Segs, []pvfs.OffLen(pat.File)))
			if rank.ID() == 0 {
				ioTime += p.Now().Sub(t0)
			}
		}
	})
	return btioResult{
		totalS: elapsed.Seconds(),
		ioS:    ioTime.Seconds(),
		snap:   f.c.Snapshot(),
	}
}

func btioSpec(short bool) workload.BTIOSpec {
	spec := workload.PaperBTIOSpec()
	if short {
		spec.Grid = 16
		spec.Dumps = 4
		spec.Steps = 40
		spec.StepCompute = 0.05
	}
	return spec
}

// btioMemo caches full runs: Table 5 and Table 6 report the same six runs,
// and the simulation is deterministic, so recomputing them would only
// double the cost. The mutex covers concurrent cells; a rare double
// computation of the same key is harmless because every run of a cell
// produces identical results.
var (
	btioMu   sync.Mutex
	btioMemo = map[string]btioResult{}
)

// btioCell runs (or reuses) the BTIO run for btioMethods[i].
func btioCell(short bool, i int) btioResult {
	key := fmt.Sprintf("%v/%d", short, i)
	btioMu.Lock()
	r, ok := btioMemo[key]
	btioMu.Unlock()
	if ok {
		return r
	}
	m := btioMethods[i]
	r = runBTIO(btioSpec(short), m.method, m.noIO)
	r.label = m.label
	btioMu.Lock()
	btioMemo[key] = r
	btioMu.Unlock()
	return r
}

// btioPlan builds the shared six-cell decomposition of Tables 5 and 6.
func btioPlan(short bool, merge func(results []btioResult) *Table) *Plan {
	pl := &Plan{}
	for i, m := range btioMethods {
		pl.Cells = append(pl.Cells, cell(m.label, func() btioResult { return btioCell(short, i) }))
	}
	pl.Merge = func(results []any) *Table {
		rs := make([]btioResult, len(results))
		for i := range results {
			rs[i] = results[i].(btioResult)
		}
		return merge(rs)
	}
	return pl
}

// Table5 reproduces the paper's Table 5: NAS BTIO class A total execution
// time and I/O overhead for every access method.
func Table5(o RunOpts) *Table { return Table5Plan(o).Table(o.Parallel) }

// Table5Plan decomposes Table 5 into one cell per access method.
func Table5Plan(o RunOpts) *Plan {
	return btioPlan(o.Short, func(results []btioResult) *Table {
		t := &Table{
			ID:     "table5",
			Title:  "BTIO class A (paper: noio 165.6s; Multiple 180.0/14.4; Collective 169.6/4.0; List 168.2/2.6; List+ADS 167.7/2.1; DS 177.3/11.7)",
			Header: []string{"case", "time_s", "io_overhead_s"},
		}
		base := results[0].totalS
		for _, r := range results {
			over := r.totalS - base
			if r.ioS > over {
				over = r.ioS
			}
			t.Add(r.label, r.totalS, over)
		}
		return t
	})
}

// Table6 reproduces the paper's Table 6: BTIO request, registration,
// cache-hit, and file-access characteristics per method, plus bytes moved
// between node classes.
func Table6(o RunOpts) *Table { return Table6Plan(o).Table(o.Parallel) }

// Table6Plan decomposes Table 6 into the same six cells as Table 5; the
// memo means a combined run computes each only once.
func Table6Plan(o RunOpts) *Plan {
	return btioPlan(o.Short, table6Merge)
}

func table6Merge(all []btioResult) *Table {
	t := &Table{
		ID:     "table6",
		Title:  "BTIO characteristics per method",
		Header: []string{"metric", "Mult.", "Coll.", "List", "ADS", "DS"},
	}
	results := all[1:] // skip no-I/O
	row := func(name string, get func(stats.Snapshot) int64) {
		cells := []any{name}
		for _, r := range results {
			cells = append(cells, get(r.snap))
		}
		t.Add(cells...)
	}
	row("req #", func(s stats.Snapshot) int64 { return s.ReadReqs + s.WriteReqs })
	row("reg #", func(s stats.Snapshot) int64 { return s.RegLookups })
	row("reg cache hit", func(s stats.Snapshot) int64 { return s.RegCacheHits })
	row("read #", func(s stats.Snapshot) int64 { return s.FSReadCalls })
	row("write #", func(s stats.Snapshot) int64 { return s.FSWriteCalls })
	rowF := func(name string, get func(stats.Snapshot) float64) {
		cells := []any{name}
		for _, r := range results {
			cells = append(cells, fmt.Sprintf("%.0f", get(r.snap)))
		}
		t.Add(cells...)
	}
	rowF("c/s comm (MB)", func(s stats.Snapshot) float64 { return float64(s.BytesClientServer) / MB })
	rowF("c/c comm (MB)", func(s stats.Snapshot) float64 { return float64(s.BytesClientClient) / MB })
	t.Note("paper: req# 163840/160/1360/1360/82040; read# 81920/1600/81920/5120/3140; write# 81920/1600/81920/2560/81920")
	t.Note("req# here counts physical per-server request messages; the paper counts logical client requests")
	return t
}
