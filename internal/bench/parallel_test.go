package bench

import (
	"strings"
	"testing"
)

// TestParallelIdentical pins the scheduler's core invariant: a table is a
// function of (experiment, Short, Seed) only — the worker count changes
// wall-clock time, never a byte of output. Cells run on private engines and
// merge in canonical order, so -parallel 1 and -parallel 8 must agree
// exactly, not approximately.
func TestParallelIdentical(t *testing.T) {
	for _, id := range []string{"fig4", "table4", "faults", "ablation-hybrid", "cache"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		serial := e.Run(RunOpts{Short: true, Seed: 42, Parallel: 1}).JSON()
		wide := e.Run(RunOpts{Short: true, Seed: 42, Parallel: 8}).JSON()
		if serial != wide {
			t.Errorf("%s: -parallel 1 and -parallel 8 output differ:\n%s", id, firstDiff(serial, wide))
		}
	}
}

// firstDiff returns the first differing line pair for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "serial: " + al[i] + "\nwide:   " + bl[i]
		}
	}
	return "outputs have different lengths"
}

// TestCellPanicPropagates checks that a cell panic surfaces on the caller's
// goroutine with the cell's key, on both the serial and pooled paths.
func TestCellPanicPropagates(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		pl := &Plan{
			Cells: []Cell{
				cell("ok", func() int { return 1 }),
				cell("boom", func() int { panic("cell exploded") }),
				cell("ok2", func() int { return 2 }),
			},
			Merge: func(results []any) *Table { return &Table{ID: "x"} },
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%d: expected panic", parallel)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, `cell "boom"`) {
					t.Errorf("parallel=%d: panic %v should name the cell", parallel, r)
				}
			}()
			pl.Table(parallel)
		}()
	}
}
