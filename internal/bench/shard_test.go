package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pvfsib/internal/fault"
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

// stormPlan is the harshest scripted scenario the fault plane offers:
// probabilistic work-request errors and registration failures, a link
// spike, a link partition that heals, and an I/O daemon crash with
// restart — all while four ranks run a verified strided list-I/O
// workload. A spike only adds sender-side delay, so it can never move a
// cross-shard event inside the lookahead window.
func stormPlan() *fault.Plan {
	return &fault.Plan{
		Seed:        7,
		WRErrorRate: 0.02,
		RegFailRate: 0.2,
		Spikes: []fault.Spike{
			{From: fault.Wildcard, To: 3, At: 100 * time.Microsecond, Dur: 300 * time.Microsecond, Extra: 15 * time.Microsecond},
		},
		Cuts: []fault.Cut{
			{A: 4, B: 1, At: 200 * time.Microsecond, Dur: 400 * time.Microsecond},
		},
		Crashes: []fault.Crash{
			{Server: 2, At: 300 * time.Microsecond, Down: 600 * time.Microsecond},
		},
	}
}

// stormArtifacts runs the fault-storm workload on a cluster partitioned
// into the given shard count, with span tracing and event recording on,
// and returns every observable artifact serialized to bytes: elapsed
// virtual time, the stats snapshot, the span table (Perfetto export), and
// the event trace.
func stormArtifacts(t *testing.T, shards int) []byte {
	t.Helper()
	const (
		nseg    = 64
		segSize = 4 << 10
		ranks   = 4
	)
	cfg := pvfs.DefaultConfig()
	cfg.Faults = stormPlan()
	cfg.Shards = shards
	f := newFixture(cfg, 4, ranks)
	defer f.close()
	rec := f.c.EnableTracing(4096)
	tr := f.c.EnableSpans()

	opts := pvfs.OpOptions{Sieve: sieve.Never}
	segsOf := make([][]ib.SGE, ranks)
	for i := 0; i < ranks; i++ {
		segsOf[i] = stridedSegs(f.c.Clients[i], nseg, segSize, byte(i))
	}
	buildAccs := func(rank int) []pvfs.OffLen {
		var accs []pvfs.OffLen
		for j := int64(0); j < nseg; j++ {
			accs = append(accs, pvfs.OffLen{Off: (j*ranks + int64(rank)) * segSize, Len: segSize})
		}
		return accs
	}
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		fh := cl.Open(p, "storm")
		accs := buildAccs(rank.ID())
		sim.Must(fh.WriteList(p, segsOf[rank.ID()], accs, opts))
		fh.Sync(p)
		rd := cl.Space().Malloc(nseg * segSize)
		rdSegs := make([]ib.SGE, nseg)
		for i := int64(0); i < nseg; i++ {
			rdSegs[i] = ib.SGE{Addr: rd + mem.Addr(i*segSize), Len: segSize}
		}
		sim.Must(fh.ReadList(p, rdSegs, accs, opts))
	})

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "elapsed=%d\n", int64(elapsed))
	fmt.Fprintf(&buf, "snapshot=%+v\n", f.c.Snapshot())
	fmt.Fprintf(&buf, "faults=%v\n", f.c.Faults.Totals())
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedStormByteIdentical is the tentpole invariant: partitioning
// the engine into 2, 4, or 8 shards — under one OS thread or several —
// must reproduce the single-shard run byte for byte, on the workload that
// exercises every subsystem at once (faults, recovery, tracing, spans,
// crash/restart). Times, counters, span IDs, and event order all count.
func TestShardedStormByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the storm workload eight times")
	}
	want := stormArtifacts(t, 1)
	if len(want) == 0 {
		t.Fatal("empty artifacts")
	}
	for _, shards := range []int{2, 4, 8} {
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			got := stormArtifacts(t, shards)
			runtime.GOMAXPROCS(prev)
			if !bytes.Equal(want, got) {
				i := 0
				for i < len(want) && i < len(got) && want[i] == got[i] {
					i++
				}
				lo, hi := i-80, i+80
				if lo < 0 {
					lo = 0
				}
				window := func(b []byte) []byte {
					h := hi
					if h > len(b) {
						h = len(b)
					}
					if lo >= h {
						return nil
					}
					return b[lo:h]
				}
				t.Fatalf("shards=%d GOMAXPROCS=%d diverges from single-shard run at byte %d:\n--- want ---\n%s\n--- got ---\n%s",
					shards, procs, i, window(want), window(got))
			}
		}
	}
}

// TestShardedFaultsCellMatchesSerial pins the committed experiment path:
// the faults cells (including the storm) through the real Plan/Table
// machinery must emit identical JSON with and without engine sharding.
func TestShardedFaultsCellMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the faults experiment twice")
	}
	exp, err := Lookup("faults")
	if err != nil {
		t.Fatal(err)
	}
	serial := exp.Run(RunOpts{Short: true, Seed: 1, Parallel: 2}).JSON()
	sharded := exp.Run(RunOpts{Short: true, Seed: 1, Parallel: 2, Shards: 4}).JSON()
	if serial != sharded {
		t.Fatalf("faults JSON differs between shards=1 and shards=4:\n--- serial ---\n%s\n--- sharded ---\n%s",
			serial, sharded)
	}
}
