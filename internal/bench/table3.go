package bench

import (
	"pvfsib/internal/disk"
	"pvfsib/internal/localfs"
	"pvfsib/internal/sim"
)

// Table3 reproduces the paper's Table 3: local ext3 file-system sequential
// read and write bandwidth with and without cache effects (the paper used
// the bonnie benchmark).
func Table3(o RunOpts) *Table { return Table3Plan(o).Table(o.Parallel) }

// table3Result carries the four bonnie measurements of one run.
type table3Result struct{ wCold, rCold, wWarm, rWarm float64 }

// Table3Plan is a single cell: the bonnie phases share one file system
// state, so they cannot split.
func Table3Plan(o RunOpts) *Plan {
	total := int64(64 * MB)
	if o.Short {
		total = 16 * MB
	}
	pl := &Plan{
		Cells: []Cell{cell("bonnie", func() table3Result { return table3Cell(total) })},
	}
	pl.Merge = func(results []any) *Table {
		r := results[0].(table3Result)
		t := &Table{
			ID:     "table3",
			Title:  "File system performance (paper: write 25/303 MB/s, read 20/1391 MB/s)",
			Header: []string{"case", "write_MB_s", "read_MB_s"},
		}
		t.Add("without cache", r.wCold, r.rCold)
		t.Add("with cache", r.wWarm, r.rWarm)
		return t
	}
	return pl
}

func table3Cell(total int64) table3Result {
	const chunk = 1 << 20

	eng := sim.NewEngine()
	d := disk.New(eng, "disk", disk.DefaultParams())
	fs := localfs.New(eng, d, localfs.DefaultParams())

	var wCold, rCold, wWarm, rWarm float64
	eng.Go("bonnie", func(p *sim.Proc) {
		f := fs.Open(p, "bonnie")
		buf := make([]byte, chunk)

		// Without cache: write the file and force it to the media.
		t0 := p.Now()
		for off := int64(0); off < total; off += chunk {
			f.WriteAt(p, off, buf)
		}
		f.Sync(p)
		wCold = bw(total, p.Now().Sub(t0))

		// Without cache: drop caches, then read sequentially.
		fs.DropCaches(p)
		t0 = p.Now()
		for off := int64(0); off < total; off += chunk {
			f.ReadAt(p, off, chunk)
		}
		rCold = bw(total, p.Now().Sub(t0))

		// With cache: rewrite while everything is resident (no sync) and
		// reread the cached file.
		t0 = p.Now()
		for off := int64(0); off < total; off += chunk {
			f.WriteAt(p, off, buf)
		}
		wWarm = bw(total, p.Now().Sub(t0))
		t0 = p.Now()
		for off := int64(0); off < total; off += chunk {
			f.ReadAt(p, off, chunk)
		}
		rWarm = bw(total, p.Now().Sub(t0))
	})
	sim.Must(eng.Run())
	return table3Result{wCold, rCold, wWarm, rWarm}
}
