package bench

import (
	"fmt"

	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/workload"
)

// Fig6 reproduces the paper's Figure 6: writes in the one-dimensional
// block-column file view (each of 4 processes accesses 1 unit out of every
// 4), for array sizes 512..8192, with the four access methods, with and
// without sync. ROMIO Data Sieving degenerates to Multiple I/O for writes.
func Fig6(o RunOpts) *Table { return Fig6Plan(o).Table(o.Parallel) }

// Fig6Plan decomposes Figure 6 into one cell per (size, sync, method).
func Fig6Plan(o RunOpts) *Plan {
	return blockColumnPlan(o, "fig6", "Block-column WRITE bandwidth (MB/s)", "sync",
		[]string{"nosync", "sync"},
		func(n int64, variant int, m mpiio.Method) float64 {
			return blockColumnWrite(n, m, variant == 1)
		},
		"paper shape: list I/O beats ROMIO DS by 3.5-12x; ADS helps small arrays and merges with plain list I/O at 2048+")
}

// Fig7 reproduces Figure 7: block-column reads, cached and uncached.
func Fig7(o RunOpts) *Table { return Fig7Plan(o).Table(o.Parallel) }

// Fig7Plan decomposes Figure 7 into one cell per (size, cache, method).
func Fig7Plan(o RunOpts) *Plan {
	return blockColumnPlan(o, "fig7", "Block-column READ bandwidth (MB/s)", "cache",
		[]string{"cached", "uncached"},
		func(n int64, variant int, m mpiio.Method) float64 {
			return blockColumnRead(n, m, variant == 0)
		},
		"paper shape: cached, ADS wins small arrays; uncached, DS is competitive until transfer overheads catch up at large sizes")
}

// blockColumnPlan is the shared (size x variant x method) decomposition of
// Figures 6 and 7.
func blockColumnPlan(o RunOpts, id, title, varCol string, variants []string,
	run func(n int64, variant int, m mpiio.Method) float64, note string) *Plan {
	sizes := blockColumnSizes(o.Short)
	pl := &Plan{}
	for _, n := range sizes {
		for v := range variants {
			for _, m := range methodList {
				pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%d/%s/%d", n, variants[v], m),
					func() float64 { return run(n, v, m) }))
			}
		}
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     id,
			Title:  title,
			Header: []string{"array", varCol, "multiple", "datasieving", "listio", "listio+ads"},
		}
		i := 0
		for _, n := range sizes {
			for _, v := range variants {
				row := []any{fmt.Sprintf("%d", n), v}
				for range methodList {
					row = append(row, results[i].(float64))
					i++
				}
				t.Add(row...)
			}
		}
		t.Note("%s", note)
		return t
	}
	return pl
}

func blockColumnSizes(short bool) []int64 {
	if short {
		return []int64{512, 1024}
	}
	return []int64{512, 1024, 2048, 4096, 8192}
}

// blockColumnWrite measures aggregate write bandwidth for one cell.
func blockColumnWrite(n int64, m mpiio.Method, withSync bool) float64 {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	total := n * n * 4
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(file.Write(p, m, buf.Segs, buf.Accs))
		if withSync {
			file.Sync(p)
		}
	})
	return bw(total, elapsed)
}

// blockColumnRead measures aggregate read bandwidth for one cell. The file
// is produced with plain list I/O first; for the uncached case every
// server's page cache is dropped before the measured read.
func blockColumnRead(n int64, m mpiio.Method, cached bool) float64 {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	total := n * n * 4

	// Populate the file (unmeasured).
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		sim.Must(file.Write(p, mpiio.ListIO, buf.Segs, buf.Accs))
		if !cached {
			file.Sync(p)
		}
	})
	if !cached {
		f.c.Eng.Go("drop", func(p *sim.Proc) { dropAllCaches(p, f.c) })
		sim.Must(f.c.Run())
	}

	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()+50))
		rank.Barrier(p)
		sim.Must(file.Read(p, m, buf.Segs, buf.Accs))
	})
	return bw(total, elapsed)
}
