package bench

import (
	"fmt"

	"pvfsib/internal/mpi"
	"pvfsib/internal/mpiio"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/workload"
)

// Fig6 reproduces the paper's Figure 6: writes in the one-dimensional
// block-column file view (each of 4 processes accesses 1 unit out of every
// 4), for array sizes 512..8192, with the four access methods, with and
// without sync. ROMIO Data Sieving degenerates to Multiple I/O for writes.
func Fig6(o RunOpts) *Table {
	short := o.Short
	t := &Table{
		ID:     "fig6",
		Title:  "Block-column WRITE bandwidth (MB/s)",
		Header: []string{"array", "sync", "multiple", "datasieving", "listio", "listio+ads"},
	}
	for _, n := range blockColumnSizes(short) {
		for _, withSync := range []bool{false, true} {
			row := []any{fmt.Sprintf("%d", n), label(withSync, "sync", "nosync")}
			for _, m := range methodList {
				row = append(row, blockColumnWrite(n, m, withSync))
			}
			t.Add(row...)
		}
	}
	t.Note("paper shape: list I/O beats ROMIO DS by 3.5-12x; ADS helps small arrays and merges with plain list I/O at 2048+")
	return t
}

// Fig7 reproduces Figure 7: block-column reads, cached and uncached.
func Fig7(o RunOpts) *Table {
	short := o.Short
	t := &Table{
		ID:     "fig7",
		Title:  "Block-column READ bandwidth (MB/s)",
		Header: []string{"array", "cache", "multiple", "datasieving", "listio", "listio+ads"},
	}
	for _, n := range blockColumnSizes(short) {
		for _, cached := range []bool{true, false} {
			row := []any{fmt.Sprintf("%d", n), label(cached, "cached", "uncached")}
			for _, m := range methodList {
				row = append(row, blockColumnRead(n, m, cached))
			}
			t.Add(row...)
		}
	}
	t.Note("paper shape: cached, ADS wins small arrays; uncached, DS is competitive until transfer overheads catch up at large sizes")
	return t
}

func blockColumnSizes(short bool) []int64 {
	if short {
		return []int64{512, 1024}
	}
	return []int64{512, 1024, 2048, 4096, 8192}
}

func label(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

// blockColumnWrite measures aggregate write bandwidth for one cell.
func blockColumnWrite(n int64, m mpiio.Method, withSync bool) float64 {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	total := n * n * 4
	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		rank.Barrier(p)
		sim.Must(file.Write(p, m, buf.Segs, buf.Accs))
		if withSync {
			file.Sync(p)
		}
	})
	return bw(total, elapsed)
}

// blockColumnRead measures aggregate read bandwidth for one cell. The file
// is produced with plain list I/O first; for the uncached case every
// server's page cache is dropped before the measured read.
func blockColumnRead(n int64, m mpiio.Method, cached bool) float64 {
	const ranks = 4
	f := newFixture(pvfs.DefaultConfig(), 4, ranks)
	defer f.close()
	total := n * n * 4

	// Populate the file (unmeasured).
	f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()))
		sim.Must(file.Write(p, mpiio.ListIO, buf.Segs, buf.Accs))
		if !cached {
			file.Sync(p)
		}
	})
	if !cached {
		f.c.Eng.Go("drop", func(p *sim.Proc) { dropAllCaches(p, f.c) })
		sim.Must(f.c.Run())
	}

	elapsed := f.runRanks(func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		file := mpiio.Open(p, cl, rank, "bc")
		buf := materialize(cl, workload.BlockColumn(n, ranks, rank.ID(), 4), byte(rank.ID()+50))
		rank.Barrier(p)
		sim.Must(file.Read(p, m, buf.Segs, buf.Accs))
	})
	return bw(total, elapsed)
}
