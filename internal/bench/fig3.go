package bench

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/ogr"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// Fig3 reproduces the paper's Figure 3: bandwidth of the noncontiguous
// transfer schemes when sending one process's subarray of an N x N integer
// array (block-distributed over 4 processes, so the subarray is N/2 x N/2
// with row stride 4N bytes) from a compute node to an I/O node.
//
// Schemes:
//
//	contiguous,no reg — one contiguous pre-registered buffer (upper bound)
//	multiple,no reg   — one RDMA write per row, registrations all cached
//	pack,no reg       — copy rows into a pre-registered staging buffer
//	pack,reg          — ditto, but register/deregister the staging buffer
//	gather,mult reg   — register every row separately, one gather write
//	gather,one reg    — Optimistic Group Registration, one gather write
func Fig3(o RunOpts) *Table { return Fig3Plan(o).Table(o.Parallel) }

// Fig3Plan decomposes Figure 3 into one cell per array size.
func Fig3Plan(o RunOpts) *Plan {
	sizes := []int64{256, 512, 1024, 2048, 4096}
	if o.Short {
		sizes = []int64{256, 1024}
	}
	pl := &Plan{}
	for _, n := range sizes {
		pl.Cells = append(pl.Cells, cell(fmt.Sprintf("%dx%d", n, n), func() map[string]float64 {
			return fig3Row(n, ib.DefaultParams())
		}))
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:    "fig3",
			Title: "Noncontiguous transfer schemes, subarray write bandwidth (MB/s)",
			Header: []string{"array", "contig_noreg", "multiple_noreg",
				"pack_noreg", "pack_reg", "gather_multreg", "gather_onereg"},
		}
		for i, n := range sizes {
			r := results[i].(map[string]float64)
			t.Add(fmt.Sprintf("%dx%d", n, n),
				r["contig"], r["multiple"], r["packnoreg"], r["packreg"], r["gathermult"], r["gatherone"])
		}
		t.Note("paper shape: pack wins small arrays; gather,one reg approaches contiguous for large; gather,mult reg pays per-row registration")
		return t
	}
	return pl
}

// fig3Row measures every scheme for one array size and returns bandwidths.
func fig3Row(n int64, params ib.Params) map[string]float64 {
	return fig3RowOn(n, params, simnet.DefaultParams())
}

// fig3RowOn is fig3Row on an arbitrary fabric (the network-generation
// ablation swaps in a conventional network).
func fig3RowOn(n int64, params ib.Params, netParams simnet.Params) map[string]float64 {
	const elem = 4
	rows := n / 2
	rowLen := (n / 2) * elem
	stride := n * elem
	total := rows * rowLen

	eng := sim.NewEngine()
	net := simnet.New(eng, netParams)
	cli := ib.NewHCA(net.AddNode("cn"), mem.NewAddrSpace("cn"), params)
	srv := ib.NewHCA(net.AddNode("io"), mem.NewAddrSpace("io"), params)
	qp, _ := ib.Connect(cli, srv)

	// Server staging region, statically registered.
	dstAddr := srv.Space().Malloc(total)
	dstMR, err := srv.RegisterStatic(mem.Extent{Addr: dstAddr, Len: total})
	sim.Must(err)

	// The client's full array; the subarray rows live inside it.
	array := cli.Space().Malloc(n * n * elem)
	var rowSegs []ib.SGE
	var rowExts []mem.Extent
	for i := int64(0); i < rows; i++ {
		seg := ib.SGE{Addr: array + mem.Addr(i*stride), Len: rowLen}
		rowSegs = append(rowSegs, seg)
		rowExts = append(rowExts, seg.Extent())
	}
	// A separate contiguous source for the upper bound, and a staging
	// buffer for the pack schemes.
	contig := cli.Space().Malloc(total)
	staging := cli.Space().Malloc(total)

	out := make(map[string]float64)
	eng.Go("app", func(p *sim.Proc) {
		time := func(fn func()) sim.Duration {
			t0 := p.Now()
			fn()
			return p.Now().Sub(t0)
		}
		// contiguous, no reg.
		_, err := cli.RegisterStatic(mem.Extent{Addr: contig, Len: total})
		sim.Must(err)
		out["contig"] = bw(total, time(func() {
			sim.Must(qp.RDMAWrite(p, []ib.SGE{{Addr: contig, Len: total}}, dstAddr, dstMR.Key))
		}))

		// multiple, no reg: whole array statically registered (perfect
		// registration cache), one write per row.
		_, err = cli.RegisterStatic(mem.Extent{Addr: array, Len: n * n * elem})
		sim.Must(err)
		out["multiple"] = bw(total, time(func() {
			off := int64(0)
			for _, seg := range rowSegs {
				sim.Must(qp.RDMAWrite(p, []ib.SGE{seg}, dstAddr+mem.Addr(off), dstMR.Key))
				off += seg.Len
			}
		}))

		// pack, no reg: staging buffer statically registered.
		_, err = cli.RegisterStatic(mem.Extent{Addr: staging, Len: total})
		sim.Must(err)
		pack := func() {
			off := int64(0)
			for _, seg := range rowSegs {
				b, err := cli.Space().Read(seg.Addr, seg.Len)
				sim.Must(err)
				sim.Must(cli.Space().Write(staging+mem.Addr(off), b))
				off += seg.Len
			}
			p.Sleep(params.MemcpyTime(total))
		}
		out["packnoreg"] = bw(total, time(func() {
			pack()
			sim.Must(qp.RDMAWrite(p, []ib.SGE{{Addr: staging, Len: total}}, dstAddr, dstMR.Key))
		}))

		// pack, reg: register and deregister a fresh staging buffer.
		fresh := cli.Space().Malloc(total)
		out["packreg"] = bw(total, time(func() {
			mr, err := cli.Register(p, mem.Extent{Addr: fresh, Len: total})
			sim.Must(err)
			off := int64(0)
			for _, seg := range rowSegs {
				b, rerr := cli.Space().Read(seg.Addr, seg.Len)
				sim.Must(rerr)
				sim.Must(cli.Space().Write(fresh+mem.Addr(off), b))
				off += seg.Len
			}
			p.Sleep(params.MemcpyTime(total))
			sim.Must(qp.RDMAWrite(p, []ib.SGE{{Addr: fresh, Len: total}}, dstAddr, dstMR.Key))
			sim.Must(cli.Deregister(p, mr))
		}))

		// For the registration-sensitive gather schemes the static
		// whole-array MR must not linger (it would satisfy coverage
		// checks but also hide nothing — ib validates against any MR).
		// Costs are what matter: the schemes explicitly register.
		// gather, multiple reg.
		out["gathermult"] = bw(total, time(func() {
			var mrs []*ib.MR
			for _, e := range rowExts {
				mr, err := cli.Register(p, e)
				sim.Must(err)
				mrs = append(mrs, mr)
			}
			sim.Must(qp.RDMAWrite(p, rowSegs, dstAddr, dstMR.Key))
			for _, mr := range mrs {
				sim.Must(cli.Deregister(p, mr))
			}
		}))

		// gather, one reg (OGR).
		out["gatherone"] = bw(total, time(func() {
			cfg := ogr.DefaultConfig()
			cfg.Params = params
			res, err := ogr.RegisterBuffers(p, ogr.Direct{HCA: cli}, cli.Space(), rowExts, cfg)
			sim.Must(err)
			sim.Must(qp.RDMAWrite(p, rowSegs, dstAddr, dstMR.Key))
			sim.Must(ogr.Release(p, ogr.Direct{HCA: cli}, res))
		}))
	})
	runTolerant(eng)
	return out
}
