package bench

import (
	"testing"
	"time"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/pcache"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/trace"
)

// These tests are the runtime teeth behind the hotpath analyzer: every
// //pvfslint:hotpath root whose budget says "steady state allocates
// nothing" is exercised here through testing.AllocsPerRun after a warm-up
// that fills the free lists and queue backing arrays. A budget entry can
// argue an allocation away as "free-list miss" or "error path only"; this
// file checks the argument against the allocator.

// stepHorizon bounds one measured step's virtual time; keepAlive is the
// sleeper period that keeps a future event queued so RunUntil stops at the
// horizon instead of minting a DeadlockError for the forever-parked
// service processes.
const (
	stepHorizon = 50 * time.Millisecond
	keepAlive   = 10 * time.Hour
	warmups     = 3
	runs        = 20
)

// sleeper parks with a far-future wake event so the engine never drains.
func sleeper(eng *sim.Engine) {
	eng.Go("keepalive", func(p *sim.Proc) {
		for {
			p.Sleep(keepAlive)
		}
	})
}

// measure warms step up, then asserts it allocates nothing.
func measure(t *testing.T, name string, step func()) {
	t.Helper()
	for i := 0; i < warmups; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(runs, step); avg != 0 {
		t.Errorf("%s: %.1f allocs per steady-state step, want 0", name, avg)
	}
}

// TestEngineTurnoverAllocFree covers the (sim.Engine).RunUntil root: a
// chain of timed callbacks through the event heap and the ready queue.
func TestEngineTurnoverAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	var stepErr error
	remaining := 0
	var tick func()
	tick = func() {
		remaining--
		if remaining > 0 {
			eng.After(time.Microsecond, tick)
		}
	}
	measure(t, "engine turnover", func() {
		remaining = 64
		eng.After(time.Microsecond, tick)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
}

// TestMailboxPingPongAllocFree covers the engine's park/wake machinery
// under RunUntil: two processes trading one preboxed token.
func TestMailboxPingPongAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	sleeper(eng)
	ctl := eng.NewMailbox("ctl")
	req := eng.NewMailbox("req")
	rsp := eng.NewMailbox("rsp")
	done := eng.NewMailbox("done")
	var token any = 1
	eng.Go("server", func(p *sim.Proc) {
		for {
			rsp.Send(req.Recv(p))
		}
	})
	eng.Go("client", func(p *sim.Proc) {
		for {
			v := ctl.Recv(p)
			for i := 0; i < 64; i++ {
				req.Send(token)
				rsp.Recv(p)
			}
			done.Send(v)
		}
	})
	var stepErr error
	missed := false
	measure(t, "mailbox ping-pong", func() {
		ctl.Send(token)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
		if _, ok := done.TryRecv(); !ok {
			missed = true
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if missed {
		t.Fatal("a step ended before the ping-pong batch completed")
	}
}

// TestSimnetSendAllocFree covers the (simnet.Node).Send, deliverStage, and
// (simnet.Node).rxEngine roots: pooled messages from one node's send
// through the receiver's staging engine and back to the free list.
func TestSimnetSendAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	sleeper(eng)
	na := net.AddNode("a")
	nb := net.AddNode("b")
	ctl := eng.NewMailbox("ctl")
	done := eng.NewMailbox("done")
	var token any = 1
	eng.Go("rx", func(p *sim.Proc) {
		for {
			m := nb.Inbox.Recv(p).(*simnet.Message)
			net.Recycle(m)
		}
	})
	eng.Go("tx", func(p *sim.Proc) {
		for {
			v := ctl.Recv(p)
			for i := 0; i < 16; i++ {
				if err := na.Send(p, nb.ID, 4096, token); err != nil {
					sim.Failf("bench: send: %v", err)
				}
			}
			done.Send(v)
		}
	})
	var stepErr error
	missed := false
	measure(t, "simnet send", func() {
		ctl.Send(token)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
		if _, ok := done.TryRecv(); !ok {
			missed = true
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if missed {
		t.Fatal("a step ended before the send batch completed")
	}
}

// rdmaPair builds two HCA-equipped nodes with statically registered
// buffers, ready for steady-state verbs traffic.
func rdmaPair(t *testing.T) (eng *sim.Engine, qa, qb *ib.QP, sges []ib.SGE, raddr mem.Addr, rkey ib.Key) {
	t.Helper()
	eng = sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	a := ib.NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), ib.DefaultParams())
	b := ib.NewHCA(net.AddNode("b"), mem.NewAddrSpace("b"), ib.DefaultParams())
	qa, qb = ib.Connect(a, b)
	const bufLen = 64 * 1024
	la := a.Space().Malloc(bufLen)
	lb := b.Space().Malloc(bufLen)
	if _, err := a.RegisterStatic(mem.Extent{Addr: la, Len: bufLen}); err != nil {
		t.Fatal(err)
	}
	mrB, err := b.RegisterStatic(mem.Extent{Addr: lb, Len: bufLen})
	if err != nil {
		t.Fatal(err)
	}
	sges = []ib.SGE{{Addr: la, Len: 2048}, {Addr: la + 8192, Len: 2048}}
	return eng, qa, qb, sges, lb, mrB.Key
}

// TestQPSendAllocFree covers the (ib.QP).Send and (ib.HCA).dispatch roots:
// channel-semantics messages ride pooled wire structs end to end.
func TestQPSendAllocFree(t *testing.T) {
	eng, qa, qb, _, _, _ := rdmaPair(t)
	sleeper(eng)
	ctl := eng.NewMailbox("ctl")
	done := eng.NewMailbox("done")
	var token any = 1
	eng.Go("rx", func(p *sim.Proc) {
		for {
			qb.Recv(p)
		}
	})
	eng.Go("tx", func(p *sim.Proc) {
		for {
			v := ctl.Recv(p)
			for i := 0; i < 16; i++ {
				if err := qa.Send(p, 4096, token); err != nil {
					sim.Failf("bench: qp send: %v", err)
				}
			}
			done.Send(v)
		}
	})
	var stepErr error
	missed := false
	measure(t, "qp send", func() {
		ctl.Send(token)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
		if _, ok := done.TryRecv(); !ok {
			missed = true
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if missed {
		t.Fatal("a step ended before the send batch completed")
	}
}

// TestRDMAAllocFree covers the (ib.QP).RDMAWrite, (ib.QP).RDMARead, and
// (ib.HCA).dispatch roots: one-sided transfers with pooled wire structs,
// pooled reply mailboxes, and pooled scratch buffers.
func TestRDMAAllocFree(t *testing.T) {
	eng, qa, _, sges, raddr, rkey := rdmaPair(t)
	sleeper(eng)
	ctl := eng.NewMailbox("ctl")
	done := eng.NewMailbox("done")
	var token any = 1
	eng.Go("initiator", func(p *sim.Proc) {
		for {
			v := ctl.Recv(p)
			for i := 0; i < 8; i++ {
				if err := qa.RDMAWrite(p, sges, raddr, rkey); err != nil {
					sim.Failf("bench: rdma write: %v", err)
				}
				if err := qa.RDMARead(p, sges, raddr, rkey); err != nil {
					sim.Failf("bench: rdma read: %v", err)
				}
			}
			done.Send(v)
		}
	})
	var stepErr error
	missed := false
	measure(t, "rdma write+read", func() {
		ctl.Send(token)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
		if _, ok := done.TryRecv(); !ok {
			missed = true
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if missed {
		t.Fatal("a step ended before the RDMA batch completed")
	}
}

// TestDisabledTracerAllocFree covers the trace roots ((trace.Tracer).Start,
// (trace.Span).End/EndErr/SetBytes, (trace.Recorder).Record is exercised
// indirectly as a no-op): with no tracer attached the span API must cost
// nothing, because every simulator hot path calls it unconditionally.
func TestDisabledTracerAllocFree(t *testing.T) {
	var tr *trace.Tracer
	measure(t, "disabled tracer", func() {
		for i := 0; i < 64; i++ {
			sp := tr.Start(0, trace.Ctx(i), "node", "bench.span", trace.StageOther)
			sp.SetBytes(4096)
			sp.Annotate("i=%d", i)
			sp.End(sim.Time(i))
		}
	})
}

// TestCacheHitAllocFree covers the (pcache.File).tryFast root: a
// steady-state cache hit is a mutex handoff, page-table lookups, arena
// copies, and one memcpy-time sleep — no allocator traffic. The operand
// slices are built once and reused, as a real caller's inner loop would.
func TestCacheHitAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	c := pvfs.NewCluster(eng, pvfs.DefaultConfig(), 2, 1)
	sleeper(eng)
	ctl := eng.NewMailbox("cachectl")
	done := eng.NewMailbox("cachedone")
	var token any = 1
	const (
		pageSize = 8 << 10
		nPages   = 4
		opLen    = 2048
	)
	cl := c.Clients[0]
	rbuf := cl.Space().Malloc(opLen)
	segs := make([]ib.SGE, 1)
	accs := make([]pvfs.OffLen, 1)
	eng.Go("cacheapp", func(p *sim.Proc) {
		fh := cl.Open(p, "hot")
		base := cl.Space().Malloc(nPages * pageSize)
		sim.Must(fh.Write(p, base, nPages*pageSize, 0, pvfs.OpOptions{}))
		cf := pcache.New(fh, pcache.Config{PageSize: pageSize, Pages: 2 * nPages})
		segs[0] = ib.SGE{Addr: rbuf, Len: opLen}
		for i := int64(0); i < nPages; i++ {
			accs[0] = pvfs.OffLen{Off: i * pageSize, Len: opLen}
			sim.Must(cf.ReadList(p, segs, accs))
		}
		for {
			v := ctl.Recv(p)
			for i := 0; i < 64; i++ {
				accs[0] = pvfs.OffLen{Off: int64(i%nPages)*pageSize + 512, Len: opLen}
				sim.Must(cf.ReadList(p, segs, accs))
			}
			done.Send(v)
		}
	})
	var stepErr error
	missed := false
	measure(t, "cache hit", func() {
		ctl.Send(token)
		if err := eng.RunUntil(eng.Now().Add(stepHorizon)); err != nil {
			stepErr = err
		}
		if _, ok := done.TryRecv(); !ok {
			missed = true
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if missed {
		t.Fatal("a step ended before the hit batch completed")
	}
}
