package bench

import "testing"

// TestCacheExperimentAcceptance pins the tentpole claim: on the high-reuse
// strided workload, write-behind caching must at least double uncached
// throughput while cutting wire RPCs, and the cache must actually be
// hitting (not accidentally bypassing).
func TestCacheExperimentAcceptance(t *testing.T) {
	tb := Cache(RunOpts{Short: true, Seed: 1, Parallel: 4})
	row := tb.FindRow("r4-d2-p64")
	if row < 0 {
		t.Fatalf("high-reuse row missing from table:\n%s", tb)
	}
	un := tb.CellF(row, "uncached_mbs")
	wb := tb.CellF(row, "wb_mbs")
	if wb < 2*un {
		t.Errorf("write-behind %.1f MB/s, uncached %.1f MB/s: want >= 2x", wb, un)
	}
	if unRPC, wbRPC := tb.CellF(row, "uncached_rpc"), tb.CellF(row, "wb_rpc"); wbRPC >= unRPC {
		t.Errorf("write-behind used %v RPCs, uncached %v: want fewer", wbRPC, unRPC)
	}
	if hit := tb.CellF(row, "wb_hit_pct"); hit < 50 {
		t.Errorf("hit rate %.1f%%, want >= 50%%", hit)
	}
	if tb.CellF(row, "wb_coalesce") == 0 {
		t.Errorf("no coalesced flushes on the high-reuse row")
	}
}
