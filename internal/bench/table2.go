package bench

import (
	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// Table2 reproduces the paper's Table 2: raw network performance — 4-byte
// one-way latency and large-message bandwidth for VAPI RDMA write, VAPI
// RDMA read, and the MPI layer (the paper's MVAPICH).
func Table2(o RunOpts) *Table { return Table2Plan(o).Table(o.Parallel) }

// latBW is a cell result carrying one latency (µs) and one bandwidth (MB/s).
type latBW struct{ latUS, bw float64 }

// Table2Plan decomposes Table 2 into one cell per transport.
func Table2Plan(o RunOpts) *Plan {
	bigSize := int64(64 * MB)
	if o.Short {
		bigSize = 8 * MB
	}
	pl := &Plan{
		Cells: []Cell{
			cell("rdma-write", func() latBW { return table2Write(bigSize) }),
			cell("rdma-read", func() latBW { return table2Read(bigSize) }),
			cell("mpi", func() latBW { return table2MPI(bigSize) }),
		},
	}
	pl.Merge = func(results []any) *Table {
		t := &Table{
			ID:     "table2",
			Title:  "Network performance (paper: write 6.0µs/827MB/s, read 12.4µs/816MB/s, MPI 6.8µs/822MB/s)",
			Header: []string{"transport", "latency_us", "bandwidth_MB_s"},
		}
		labels := []string{"VAPI RDMA Write", "VAPI RDMA Read", "MVAPICH (MPI)"}
		for i, label := range labels {
			r := results[i].(latBW)
			t.Add(label, r.latUS, r.bw)
		}
		return t
	}
	return pl
}

// table2Write measures VAPI RDMA write: one-way latency via the delivery
// hook, bandwidth from initiator completion of one large write.
func table2Write(bigSize int64) latBW {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	a := ib.NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), ib.DefaultParams())
	b := ib.NewHCA(net.AddNode("b"), mem.NewAddrSpace("b"), ib.DefaultParams())
	qa, _ := ib.Connect(a, b)
	src := a.Space().Malloc(bigSize)
	dst := b.Space().Malloc(bigSize)
	var lat, elapsed sim.Duration
	eng.Go("app", func(p *sim.Proc) {
		mrB, err := b.Register(p, mem.Extent{Addr: dst, Len: bigSize})
		sim.Must(err)
		mrA, err := a.Register(p, mem.Extent{Addr: src, Len: bigSize})
		sim.Must(err)
		t0 := p.Now()
		b.OnRDMAWriteApplied = func(mem.Addr, int64) { lat = p.Engine().Now().Sub(t0) }
		sim.Must(qa.RDMAWrite(p, []ib.SGE{{Addr: src, Len: 4}}, dst, mrB.Key))
		p.Sleep(sim.Duration(100) * 1000) // drain
		b.OnRDMAWriteApplied = nil
		t0 = p.Now()
		sim.Must(qa.RDMAWrite(p, []ib.SGE{{Addr: src, Len: bigSize}}, dst, mrB.Key))
		elapsed = p.Now().Sub(t0)
		sim.Must(a.Deregister(p, mrA))
		sim.Must(b.Deregister(p, mrB))
	})
	runTolerant(eng)
	return latBW{float64(lat.Nanoseconds()) / 1000, bw(bigSize, elapsed)}
}

// table2Read measures VAPI RDMA read: latency and bandwidth from initiator
// completion.
func table2Read(bigSize int64) latBW {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	a := ib.NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), ib.DefaultParams())
	b := ib.NewHCA(net.AddNode("b"), mem.NewAddrSpace("b"), ib.DefaultParams())
	qa, _ := ib.Connect(a, b)
	dst := a.Space().Malloc(bigSize)
	src := b.Space().Malloc(bigSize)
	var lat, elapsed sim.Duration
	eng.Go("app", func(p *sim.Proc) {
		mrB, err := b.Register(p, mem.Extent{Addr: src, Len: bigSize})
		sim.Must(err)
		mrA, err := a.Register(p, mem.Extent{Addr: dst, Len: bigSize})
		sim.Must(err)
		t0 := p.Now()
		sim.Must(qa.RDMARead(p, []ib.SGE{{Addr: dst, Len: 4}}, src, mrB.Key))
		lat = p.Now().Sub(t0)
		t0 = p.Now()
		sim.Must(qa.RDMARead(p, []ib.SGE{{Addr: dst, Len: bigSize}}, src, mrB.Key))
		elapsed = p.Now().Sub(t0)
		sim.Must(a.Deregister(p, mrA))
		sim.Must(b.Deregister(p, mrB))
	})
	runTolerant(eng)
	return latBW{float64(lat.Nanoseconds()) / 1000, bw(bigSize, elapsed)}
}

// table2MPI measures the MPI layer: one-way latency and bandwidth at the
// receiver.
func table2MPI(bigSize int64) latBW {
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	a := ib.NewHCA(net.AddNode("a"), mem.NewAddrSpace("a"), ib.DefaultParams())
	b := ib.NewHCA(net.AddNode("b"), mem.NewAddrSpace("b"), ib.DefaultParams())
	w := mpi.NewWorld(eng, []*ib.HCA{a, b}, nil)
	var lat, elapsed sim.Duration
	eng.Go("send", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, []byte{1, 2, 3, 4})
		w.Rank(0).Recv(p, 1) // sync before bandwidth phase
		w.Rank(0).Send(p, 1, make([]byte, bigSize))
	})
	eng.Go("recv", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0)
		lat = sim.Duration(p.Now())
		t0 := p.Now()
		w.Rank(1).Send(p, 0, nil)
		t0 = p.Now()
		w.Rank(1).Recv(p, 0)
		elapsed = p.Now().Sub(t0)
	})
	runTolerant(eng)
	return latBW{float64(lat.Nanoseconds()) / 1000, bw(bigSize, elapsed)}
}

// runTolerant drives an engine, ignoring forever-parked infrastructure,
// then shuts the engine down so its simulated world can be collected.
func runTolerant(eng *sim.Engine) {
	if err := eng.Run(); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			sim.Must(err)
		}
	}
	eng.Shutdown()
}
