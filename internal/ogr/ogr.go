// Package ogr implements Optimistic Group Registration (Section 4.2.2 of
// the paper), the library-controlled scheme that makes RDMA Gather/Scatter
// affordable for list-I/O buffers.
//
// The scheme has three steps:
//
//  1. Sort the buffers by address and group them into candidate regions.
//     A gap ("hole") between consecutive buffers is swallowed into the
//     group when registering the extra hole pages is cheaper than paying
//     another registration operation: holePages·(a_reg+a_dereg) <
//     (b_reg+b_dereg), using the cost model T = a·p + b.
//  2. Optimistically register each candidate region in one operation.
//  3. If a registration fails (the region spans pages the application
//     never allocated), either fall back to registering each buffer
//     individually (few buffers), or query the operating system for the
//     true holes and register exactly the allocated runs (many buffers).
//
// The common case — all buffers carved from one malloc'd array — costs a
// single registration.
package ogr

import (
	"errors"
	"fmt"
	"sort"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
)

// Registrar abstracts how regions are pinned: directly against an HCA, or
// through a pin-down cache.
type Registrar interface {
	// Register pins the extent, charging registration cost to p.
	Register(p *sim.Proc, e mem.Extent) (*ib.MR, error)
	// Release undoes Register. A direct registrar deregisters; a caching
	// registrar only drops a reference.
	Release(p *sim.Proc, mr *ib.MR) error
}

// Direct registers straight against an HCA, deregistering on Release.
type Direct struct{ HCA *ib.HCA }

// Register implements Registrar.
func (d Direct) Register(p *sim.Proc, e mem.Extent) (*ib.MR, error) {
	return d.HCA.Register(p, e)
}

// Release implements Registrar.
func (d Direct) Release(p *sim.Proc, mr *ib.MR) error { return d.HCA.Deregister(p, mr) }

// Cached goes through a pin-down cache: repeated use of the same buffers
// costs nothing after the first registration.
type Cached struct{ Cache *ib.RegCache }

// Register implements Registrar.
func (c Cached) Register(p *sim.Proc, e mem.Extent) (*ib.MR, error) {
	return c.Cache.Get(p, e)
}

// Release implements Registrar.
func (c Cached) Release(p *sim.Proc, mr *ib.MR) error { return c.Cache.Put(p, mr) }

// Config tunes the scheme.
type Config struct {
	// Params supplies the registration cost model used by the grouping
	// decision.
	Params ib.Params
	// SmallGroupLimit is the buffer count at or below which a failed
	// group is registered buffer-by-buffer instead of querying the OS.
	SmallGroupLimit int
	// QueryMethod selects how the OS is asked for allocation holes.
	QueryMethod mem.QueryMethod
	// DisableGrouping registers every buffer individually (the "Indiv."
	// case of Table 4); for ablations.
	DisableGrouping bool
	// WholeSpan registers one region covering everything, with no cost
	// control (the "naive scheme" of Section 4.2.2); for ablations.
	WholeSpan bool
}

// DefaultConfig returns the configuration used by the PVFS client library.
func DefaultConfig() Config {
	return Config{
		Params:          ib.DefaultParams(),
		SmallGroupLimit: 8,
		QueryMethod:     mem.QuerySyscall,
	}
}

// Result describes one completed group registration.
type Result struct {
	MRs []*ib.MR
	// Registrations counts successful registration operations.
	Registrations int
	// FailedAttempts counts optimistic registrations the OS rejected.
	FailedAttempts int
	// Queried reports whether the OS hole query fallback ran.
	Queried bool
	// RegTime is the virtual time spent registering (including failures
	// and queries).
	RegTime sim.Duration
}

// ErrBufferUnallocated reports a list-I/O buffer that is itself not backed
// by allocated memory — an application error, not a hole between buffers.
var ErrBufferUnallocated = errors.New("ogr: list I/O buffer is not allocated")

// group is a candidate region plus the buffers it covers.
type group struct {
	span mem.Extent
	bufs []mem.Extent
}

// planGroups sorts the buffers and greedily merges neighbours when the cost
// model favours swallowing the hole between them.
func planGroups(bufs []mem.Extent, cfg Config) []group {
	sorted := make([]mem.Extent, len(bufs))
	copy(sorted, bufs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	if cfg.WholeSpan {
		span := mem.Extent{
			Addr: sorted[0].Addr,
			Len:  int64(sorted[len(sorted)-1].End() - sorted[0].Addr),
		}
		return []group{{span: span, bufs: sorted}}
	}

	// Cost of one extra operation vs. cost per extra page registered.
	perOp := cfg.Params.RegPerOp + cfg.Params.DeregPerOp
	perPage := cfg.Params.RegPerPage + cfg.Params.DeregPerPage
	var maxHolePages int64
	if perPage > 0 {
		maxHolePages = int64(perOp / perPage)
	}
	if cfg.DisableGrouping {
		maxHolePages = -1
	}

	var groups []group
	cur := group{span: sorted[0], bufs: sorted[:1]}
	for _, b := range sorted[1:] {
		holePages := int64(0)
		if b.Addr > cur.span.End() {
			hole := mem.Extent{Addr: cur.span.End(), Len: int64(b.Addr - cur.span.End())}
			holePages = hole.Pages()
		}
		if holePages <= maxHolePages {
			// Merge: extend the span to cover b.
			if b.End() > cur.span.End() {
				cur.span.Len = int64(b.End() - cur.span.Addr)
			}
			cur.bufs = append(cur.bufs, b)
			continue
		}
		groups = append(groups, cur)
		cur = group{span: b, bufs: []mem.Extent{b}}
	}
	groups = append(groups, cur)
	return groups
}

// RegisterBuffers pins all the buffers using Optimistic Group Registration
// and returns the regions holding them. Call Release when the transfer
// completes. space must be the address space the HCA is bound to.
func RegisterBuffers(p *sim.Proc, reg Registrar, space *mem.AddrSpace, bufs []mem.Extent, cfg Config) (*Result, error) {
	if len(bufs) == 0 {
		return &Result{}, nil
	}
	for _, b := range bufs {
		if b.Len <= 0 {
			return nil, fmt.Errorf("ogr: empty buffer %v", b)
		}
	}
	res := &Result{}
	t0 := p.Now()
	defer func() { res.RegTime = p.Now().Sub(t0) }()

	for _, g := range planGroups(bufs, cfg) {
		// Step 2: optimistic registration of the whole candidate span.
		mr, err := reg.Register(p, g.span)
		if err == nil {
			res.MRs = append(res.MRs, mr)
			res.Registrations++
			continue
		}
		if !errors.Is(err, ib.ErrNotAllocated) {
			return nil, errors.Join(err, releaseAll(p, reg, res))
		}
		res.FailedAttempts++

		// Step 3: fall back.
		if len(g.bufs) <= cfg.SmallGroupLimit {
			if err := registerEach(p, reg, g.bufs, res); err != nil {
				return nil, errors.Join(err, releaseAll(p, reg, res))
			}
			continue
		}
		res.Queried = true
		holes := space.QueryHoles(p, g.span, cfg.QueryMethod)
		runs := subtractHoles(g.span, holes)
		for _, run := range runs {
			if !coversAnyBuffer(run, g.bufs) {
				continue
			}
			mr, err := reg.Register(p, run)
			if err != nil {
				if errors.Is(err, ib.ErrNotAllocated) {
					err = ErrBufferUnallocated
				}
				return nil, errors.Join(err, releaseAll(p, reg, res))
			}
			res.MRs = append(res.MRs, mr)
			res.Registrations++
		}
		// Every buffer must now be covered; a buffer inside a hole is an
		// application error.
		for _, b := range g.bufs {
			if !covered(b, res.MRs) {
				return nil, errors.Join(ErrBufferUnallocated, releaseAll(p, reg, res))
			}
		}
	}
	return res, nil
}

func registerEach(p *sim.Proc, reg Registrar, bufs []mem.Extent, res *Result) error {
	for _, b := range bufs {
		mr, err := reg.Register(p, b)
		if err != nil {
			if errors.Is(err, ib.ErrNotAllocated) {
				return ErrBufferUnallocated
			}
			return err
		}
		res.MRs = append(res.MRs, mr)
		res.Registrations++
	}
	return nil
}

// Release unpins every region in the result.
func Release(p *sim.Proc, reg Registrar, res *Result) error {
	return releaseAll(p, reg, res)
}

// releaseAll releases every region, keeps going past failures, and returns
// the failures joined (nil when all releases succeed).
func releaseAll(p *sim.Proc, reg Registrar, res *Result) error {
	var errs []error
	for _, mr := range res.MRs {
		if err := reg.Release(p, mr); err != nil {
			errs = append(errs, err)
		}
	}
	res.MRs = nil
	return errors.Join(errs...)
}

// subtractHoles returns the allocated runs of span after removing holes
// (holes are in address order, as returned by QueryHoles).
func subtractHoles(span mem.Extent, holes []mem.Extent) []mem.Extent {
	var runs []mem.Extent
	cursor := span.Addr
	for _, h := range holes {
		if h.Addr > cursor {
			runs = append(runs, mem.Extent{Addr: cursor, Len: int64(h.Addr - cursor)})
		}
		if h.End() > cursor {
			cursor = h.End()
		}
	}
	if span.End() > cursor {
		runs = append(runs, mem.Extent{Addr: cursor, Len: int64(span.End() - cursor)})
	}
	return runs
}

func coversAnyBuffer(run mem.Extent, bufs []mem.Extent) bool {
	for _, b := range bufs {
		if b.Addr >= run.Addr && b.End() <= run.End() {
			return true
		}
	}
	return false
}

func covered(b mem.Extent, mrs []*ib.MR) bool {
	for _, mr := range mrs {
		if mr.Covers(b) {
			return true
		}
	}
	return false
}
