package ogr

import (
	"testing"

	"pvfsib/internal/mem"
)

// FuzzGroupRegions decodes an arbitrary byte string into a buffer list
// (alternating hole and length page counts, the shapes Table 4 exercises)
// and checks the grouping invariants: every buffer lands inside exactly one
// group span, spans are disjoint and ascending, and disabling grouping
// degenerates to one group per buffer.
func FuzzGroupRegions(f *testing.F) {
	f.Add([]byte{0, 4, 0, 4, 0, 4}, false)        // one dense run
	f.Add([]byte{0, 1, 200, 1, 200, 1}, false)    // far-apart buffers
	f.Add([]byte{0, 2, 1, 2, 30, 2, 1, 2}, false) // small holes worth swallowing
	f.Add([]byte{0, 3, 5, 3}, true)
	f.Fuzz(func(t *testing.T, data []byte, disableGrouping bool) {
		addr := mem.Addr(1 << 20)
		var bufs []mem.Extent
		for i := 0; i+1 < len(data) && len(bufs) < 128; i += 2 {
			holePages := int64(data[i] % 64)
			lenPages := int64(data[i+1]%16) + 1
			addr += mem.Addr(holePages * mem.PageSize)
			bufs = append(bufs, mem.Extent{Addr: addr, Len: lenPages * mem.PageSize})
			addr += mem.Addr(lenPages * mem.PageSize)
		}
		if len(bufs) == 0 {
			return
		}
		cfg := DefaultConfig()
		cfg.DisableGrouping = disableGrouping
		groups := planGroups(bufs, cfg)

		if disableGrouping && len(groups) != len(bufs) {
			t.Fatalf("grouping disabled but %d buffers became %d groups", len(bufs), len(groups))
		}
		covered := 0
		var prevEnd mem.Addr
		for gi, g := range groups {
			if g.span.Len <= 0 {
				t.Fatalf("group %d has nonpositive span %v", gi, g.span)
			}
			if gi > 0 && g.span.Addr < prevEnd {
				t.Fatalf("group %d span %v overlaps previous end %#x", gi, g.span, prevEnd)
			}
			prevEnd = g.span.End()
			if len(g.bufs) == 0 {
				t.Fatalf("group %d covers no buffers", gi)
			}
			for _, b := range g.bufs {
				if b.Addr < g.span.Addr || b.End() > g.span.End() {
					t.Fatalf("group %d span %v does not contain its buffer %v", gi, g.span, b)
				}
			}
			covered += len(g.bufs)
		}
		if covered != len(bufs) {
			t.Fatalf("%d buffers in, %d assigned to groups", len(bufs), covered)
		}
	})
}
