package ogr

import (
	"testing"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

func newHCA(t *testing.T) (*sim.Engine, *ib.HCA) {
	t.Helper()
	eng := sim.NewEngine()
	net := simnet.New(eng, simnet.DefaultParams())
	h := ib.NewHCA(net.AddNode("n"), mem.NewAddrSpace("n"), ib.DefaultParams())
	return eng, h
}

func run(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if err := eng.Run(); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			t.Fatal(err)
		}
	}
}

// rowBuffers carves nrows buffers of rowLen bytes with the given stride out
// of one allocation, the subarray-of-a-2D-array pattern.
func rowBuffers(space *mem.AddrSpace, nrows int, rowLen, stride int64) []mem.Extent {
	base := space.Malloc(int64(nrows) * stride)
	bufs := make([]mem.Extent, nrows)
	for i := range bufs {
		bufs[i] = mem.Extent{Addr: base + mem.Addr(int64(i)*stride), Len: rowLen}
	}
	return bufs
}

func TestSingleAllocationRegistersOnce(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 1024, 4096, 8192)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 1 {
			t.Errorf("Registrations = %d, want 1", res.Registrations)
		}
		if res.Queried || res.FailedAttempts != 0 {
			t.Errorf("unexpected fallback: %+v", res)
		}
		for _, b := range bufs {
			if !res.MRs[0].Covers(b) {
				t.Fatalf("buffer %v not covered", b)
			}
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d after release, want 0", h.NumMRs())
	}
}

func TestLargeHolesSplitGroups(t *testing.T) {
	eng, h := newHCA(t)
	// Two arrays separated by a large *allocated* gap: grouping should
	// still split because registering the gap pages costs more than a
	// second registration op.
	a1 := rowBuffers(h.Space(), 4, 4096, 4096)
	h.Space().Malloc(100 * mem.PageSize) // big allocated spacer
	a2 := rowBuffers(h.Space(), 4, 4096, 4096)
	bufs := append(append([]mem.Extent{}, a1...), a2...)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 2 {
			t.Errorf("Registrations = %d, want 2 (one per array)", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestSmallHolesAreSwallowed(t *testing.T) {
	eng, h := newHCA(t)
	// Default model: merging is worth up to (7.42+1.1)/(0.77+0.23) = 8
	// hole pages. Rows with a 2-page gap between them must merge.
	bufs := rowBuffers(h.Space(), 16, 4096, 3*mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 1 {
			t.Errorf("Registrations = %d, want 1", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestUnallocatedHoleTriggersQueryFallback(t *testing.T) {
	eng, h := newHCA(t)
	s := h.Space()
	// Many buffers from several arrays with unallocated holes between
	// them — the "OGR+Q" case of Table 4.
	var bufs []mem.Extent
	const arrays = 11 // 10 holes
	for i := 0; i < arrays; i++ {
		if i > 0 {
			s.Reserve(2) // unallocated hole, small enough to try merging
		}
		base := s.Malloc(32 * mem.PageSize)
		for j := 0; j < 93; j++ { // 11*93 = 1023 buffers > SmallGroupLimit
			bufs = append(bufs, mem.Extent{Addr: base + mem.Addr(j*1370), Len: 1370})
		}
	}
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Queried {
			t.Error("expected OS query fallback")
		}
		if res.FailedAttempts == 0 {
			t.Error("expected at least one failed optimistic attempt")
		}
		if res.Registrations != arrays {
			t.Errorf("Registrations = %d, want %d (one per allocated run)", res.Registrations, arrays)
		}
		for _, b := range bufs {
			ok := false
			for _, mr := range res.MRs {
				if mr.Covers(b) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("buffer %v not covered after fallback", b)
			}
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestSmallFailedGroupRegistersIndividually(t *testing.T) {
	eng, h := newHCA(t)
	s := h.Space()
	b1 := s.Malloc(mem.PageSize)
	s.Reserve(2)
	b2 := s.Malloc(mem.PageSize)
	bufs := []mem.Extent{
		{Addr: b1, Len: mem.PageSize},
		{Addr: b2, Len: mem.PageSize},
	}
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Queried {
			t.Error("small group should not query the OS")
		}
		if res.Registrations != 2 {
			t.Errorf("Registrations = %d, want 2", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestBufferInsideHoleIsAnError(t *testing.T) {
	eng, h := newHCA(t)
	s := h.Space()
	base := s.Malloc(mem.PageSize)
	s.Reserve(1)
	s.Malloc(mem.PageSize)
	bufs := []mem.Extent{
		{Addr: base, Len: mem.PageSize},
		{Addr: base + mem.PageSize + 100, Len: 100}, // inside the hole
	}
	eng.Go("t", func(p *sim.Proc) {
		_, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err == nil {
			t.Fatal("expected error for unallocated buffer")
		}
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d after failure, want 0 (cleanup)", h.NumMRs())
	}
}

func TestDisableGroupingMatchesIndividual(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 64, 4096, 8192)
	cfg := DefaultConfig()
	cfg.DisableGrouping = true
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 64 {
			t.Errorf("Registrations = %d, want 64", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestOGRIsCheaperThanIndividual(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 1024, 4096, 8192)
	var ogrTime, indivTime sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ogrTime = res.RegTime
		Release(p, Direct{h}, res)

		cfg := DefaultConfig()
		cfg.DisableGrouping = true
		res2, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		indivTime = res2.RegTime
		Release(p, Direct{h}, res2)
	})
	run(t, eng)
	if ogrTime*2 >= indivTime {
		t.Errorf("OGR (%v) should be far cheaper than individual (%v)", ogrTime, indivTime)
	}
}

func TestCachedRegistrarHitsOnRepeat(t *testing.T) {
	eng, h := newHCA(t)
	cache := ib.NewRegCache(h, 1<<30, 1024)
	bufs := rowBuffers(h.Space(), 128, 4096, 8192)
	var first, second sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Cached{cache}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		first = res.RegTime
		Release(p, Cached{cache}, res)

		res2, err := RegisterBuffers(p, Cached{cache}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		second = res2.RegTime
		Release(p, Cached{cache}, res2)
	})
	run(t, eng)
	if second != 0 {
		t.Errorf("second registration cost %v, want 0 (cache hit)", second)
	}
	if first == 0 {
		t.Error("first registration should cost time")
	}
}

func TestWholeSpanAblation(t *testing.T) {
	eng, h := newHCA(t)
	a1 := rowBuffers(h.Space(), 4, 4096, 4096)
	h.Space().Malloc(100 * mem.PageSize)
	a2 := rowBuffers(h.Space(), 4, 4096, 4096)
	bufs := append(append([]mem.Extent{}, a1...), a2...)
	cfg := DefaultConfig()
	cfg.WholeSpan = true
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 1 {
			t.Errorf("Registrations = %d, want 1 whole-span reg", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}

func TestEmptyBufferList(t *testing.T) {
	eng, h := newHCA(t)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), nil, DefaultConfig())
		if err != nil || len(res.MRs) != 0 {
			t.Errorf("res=%+v err=%v", res, err)
		}
	})
	run(t, eng)
}

func TestSubtractHoles(t *testing.T) {
	span := mem.Extent{Addr: 0x1000, Len: 0x5000}
	holes := []mem.Extent{
		{Addr: 0x2000, Len: 0x1000},
		{Addr: 0x4000, Len: 0x1000},
	}
	runs := subtractHoles(span, holes)
	want := []mem.Extent{
		{Addr: 0x1000, Len: 0x1000},
		{Addr: 0x3000, Len: 0x1000},
		{Addr: 0x5000, Len: 0x1000},
	}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
}

func TestUnsortedBuffersAreSorted(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 16, 4096, 8192)
	// Shuffle deterministically.
	for i := range bufs {
		j := (i * 7) % len(bufs)
		bufs[i], bufs[j] = bufs[j], bufs[i]
	}
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Registrations != 1 {
			t.Errorf("Registrations = %d, want 1", res.Registrations)
		}
		Release(p, Direct{h}, res)
	})
	run(t, eng)
}
