package ogr

import (
	"errors"
	"testing"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/sim"
)

// These tests pin down the registration-lifetime contract that the mrlife
// analyzer enforces statically: Release is idempotent on a Result, a failed
// RegisterBuffers leaves nothing pinned, and a raw double Deregister is an
// error rather than silent corruption.

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 16, 4096, 8192)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := Release(p, Direct{h}, res); err != nil {
			t.Fatalf("first Release: %v", err)
		}
		deregs := h.Counters.Deregistrations
		// The first Release nils res.MRs, so a second Release has nothing
		// to unpin: it must succeed and must not touch the HCA.
		if err := Release(p, Direct{h}, res); err != nil {
			t.Fatalf("second Release: %v", err)
		}
		if h.Counters.Deregistrations != deregs {
			t.Errorf("second Release performed %d extra deregistrations, want 0",
				h.Counters.Deregistrations-deregs)
		}
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d after double release, want 0", h.NumMRs())
	}
	if h.PinnedBytes() != 0 {
		t.Errorf("PinnedBytes = %d after double release, want 0", h.PinnedBytes())
	}
}

func TestFailedRegistrationReleasesPartialWork(t *testing.T) {
	eng, h := newHCA(t)
	s := h.Space()
	// First array registers fine; the second group holds a buffer inside
	// an unallocated hole, so RegisterBuffers fails after partial success
	// and must unwind the registrations it already made.
	a1 := rowBuffers(s, 4, 4096, 4096)
	s.Malloc(100 * mem.PageSize) // allocated spacer forces a second group
	base := s.Malloc(mem.PageSize)
	s.Reserve(4)
	bufs := append(append([]mem.Extent{}, a1...),
		mem.Extent{Addr: base, Len: mem.PageSize},
		mem.Extent{Addr: base + mem.PageSize + 64, Len: 64}, // inside the hole
	)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err == nil {
			t.Fatal("expected RegisterBuffers to fail on the hole buffer")
		}
		if !errors.Is(err, ErrBufferUnallocated) {
			t.Errorf("err = %v, want ErrBufferUnallocated", err)
		}
		if res != nil {
			t.Errorf("res = %+v on failure, want nil", res)
		}
		if h.Counters.Registrations == 0 {
			t.Error("expected partial registrations before the failure")
		}
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d after failed registration, want 0 (cleanup)", h.NumMRs())
	}
	if h.PinnedBytes() != 0 {
		t.Errorf("PinnedBytes = %d after failed registration, want 0", h.PinnedBytes())
	}
}

func TestDirectDoubleDeregisterIsInvalid(t *testing.T) {
	eng, h := newHCA(t)
	base := h.Space().Malloc(mem.PageSize)
	eng.Go("t", func(p *sim.Proc) {
		mr, err := h.Register(p, mem.Extent{Addr: base, Len: mem.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Deregister(p, mr); err != nil {
			t.Fatalf("first Deregister: %v", err)
		}
		if err := h.Deregister(p, mr); !errors.Is(err, ib.ErrInvalidMR) {
			t.Errorf("second Deregister err = %v, want ErrInvalidMR", err)
		}
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d, want 0", h.NumMRs())
	}
}

func TestReleaseReportsUnderlyingDeregisterFailure(t *testing.T) {
	eng, h := newHCA(t)
	bufs := rowBuffers(h.Space(), 4, 4096, 8192)
	eng.Go("t", func(p *sim.Proc) {
		res, err := RegisterBuffers(p, Direct{h}, h.Space(), bufs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Pull an MR out from under the Result: Release must surface the
		// invalid-MR error instead of swallowing it.
		if err := h.Deregister(p, res.MRs[0]); err != nil {
			t.Fatal(err)
		}
		if err := Release(p, Direct{h}, res); !errors.Is(err, ib.ErrInvalidMR) {
			t.Errorf("Release err = %v, want ErrInvalidMR", err)
		}
	})
	run(t, eng)
	if h.NumMRs() != 0 {
		t.Errorf("NumMRs = %d, want 0", h.NumMRs())
	}
}
