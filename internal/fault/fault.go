// Package fault is the deterministic fault plane for the simulated cluster.
//
// A Plan is pure data: probabilistic fault rates (NIC work-request
// completion errors, registration failures, disk errors and slowdowns) and
// scheduled fault windows (link latency spikes, link partitions, I/O-daemon
// crashes). An Injector compiles a Plan into the runtime object the
// substrate layers consult: simnet asks it about every message before
// transmission, ib about every posted work request and registration
// attempt, disk about every transfer. Each registered node draws from its
// own seeded generator (seeded by plan seed and node name), so a node's
// fault schedule is a pure function of (that node's workload, plan, seed)
// — independent of how other nodes' events interleave, which is what keeps
// the schedule byte-identical at any engine shard count. Unregistered
// callers share a root stream, which is fine only under a single-shard
// engine. Per-node state also means the injector needs no locks: every
// stream and counter set is touched only from its node's shard.
//
// The package deliberately imports only internal/sim: the substrate layers
// each declare the small interface they need (simnet.FaultPolicy,
// ib.FaultInjector, disk.FaultInjector) and *Injector satisfies all of them
// structurally. internal/pvfs owns the wiring (Cluster.AttachFaults) and
// the scheduled crash/restart orchestration.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pvfsib/internal/sim"
)

// Wildcard matches any node in a Spike or Cut endpoint.
const Wildcard = -1

// Spike is a window of added per-message sender-side delay on a link. The
// delay models RC retransmission stalls, so it is charged on the sender
// before the transmit engine is acquired and never reorders messages.
type Spike struct {
	// From and To are fabric node ids; Wildcard matches any node. A spike
	// applies to messages in either direction between the endpoints.
	From, To int
	// At and Dur bound the window in virtual time from injector attach.
	At, Dur sim.Duration
	// Extra is the added delay per affected message.
	Extra sim.Duration
}

// Cut is a bidirectional link partition: every message between the two
// endpoints during the window is dropped (the sender sees a retry-exhaustion
// completion error, as a reliable-connection QP would report).
type Cut struct {
	// A and B are fabric node ids; Wildcard matches any node.
	A, B int
	// At and Dur bound the partition window; the link heals at At+Dur.
	At, Dur sim.Duration
}

// Crash schedules one I/O-daemon crash and restart. While down, the daemon
// discards all traffic and its in-flight requests die; on restart it
// re-registers with the metadata manager and serves again. The daemon's
// local file system (and kernel page cache) survive — this models a daemon
// restart, not a node power loss.
type Crash struct {
	// Server is the I/O server index (not a fabric node id).
	Server int
	// At is when the daemon dies; Down is how long it stays dead.
	At, Down sim.Duration
}

// Plan is a complete, declarative fault scenario.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// (workload, plan, seed) produce identical fault schedules.
	Seed int64

	// WRErrorRate is the per-work-request probability of a completion
	// error (CQ status != success). Control QPs (metadata, MPI) are exempt.
	WRErrorRate float64
	// RegFailRate is the per-attempt probability that a memory
	// registration fails (pinning pressure, as NP-RDMA-style stacks see).
	RegFailRate float64
	// DiskErrorRate is the per-transfer probability of a transient media
	// error, retried internally by the device at DiskErrorPenalty each.
	DiskErrorRate float64
	// DiskErrorPenalty is the added device time per transient error
	// (default 2 ms).
	DiskErrorPenalty sim.Duration
	// DiskSlowRate is the per-transfer probability of a slowdown event
	// (recalibration, remapped sector) costing DiskSlowPenalty.
	DiskSlowRate float64
	// DiskSlowPenalty is the added device time per slowdown (default 1 ms).
	DiskSlowPenalty sim.Duration

	Spikes  []Spike
	Cuts    []Cut
	Crashes []Crash
}

// Empty reports whether the plan injects nothing.
func (pl Plan) Empty() bool {
	return pl.WRErrorRate == 0 && pl.RegFailRate == 0 &&
		pl.DiskErrorRate == 0 && pl.DiskSlowRate == 0 &&
		len(pl.Spikes) == 0 && len(pl.Cuts) == 0 && len(pl.Crashes) == 0
}

// Counters accumulates every injected fault, the ground truth a recovery
// test compares its observed retries against.
type Counters struct {
	WRErrors    int64 // work requests completed in error
	Drops       int64 // messages dropped by a partition
	Spiked      int64 // messages delayed by a spike window
	RegFailures int64 // injected registration failures
	DiskErrors  int64 // injected transient disk errors
	DiskSlow    int64 // injected disk slowdown events
}

// String summarizes the counters on one line.
func (c Counters) String() string {
	return fmt.Sprintf("wr-err=%d drops=%d spiked=%d reg-fail=%d disk-err=%d disk-slow=%d",
		c.WRErrors, c.Drops, c.Spiked, c.RegFailures, c.DiskErrors, c.DiskSlow)
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.WRErrors += o.WRErrors
	c.Drops += o.Drops
	c.Spiked += o.Spiked
	c.RegFailures += o.RegFailures
	c.DiskErrors += o.DiskErrors
	c.DiskSlow += o.DiskSlow
}

// stream is one node's private draw source and fault tally.
type stream struct {
	rng *rand.Rand
	c   Counters
}

// Injector is a compiled Plan: the object the substrate layers consult.
// Register every node (and RegisterLinks the fabric) before the run
// starts; after that the maps are read-only and each node's stream is
// touched only from that node's events, so the injector is safe under a
// sharded engine with no locking.
type Injector struct {
	plan Plan
	rng  *rand.Rand // root stream, for draws by unregistered nodes

	streams map[string]*stream // per registered node, immutable at runtime
	order   []*stream          // registration order, for Totals
	links   []Counters         // drop/spike tallies per sender fabric id

	// Counters tallies faults charged to the root stream (unregistered
	// nodes and links). Registered runs should read Totals instead.
	Counters Counters
}

// NewInjector compiles the plan, applying defaults for zero penalty fields.
func NewInjector(plan Plan) *Injector {
	if plan.DiskErrorPenalty == 0 {
		plan.DiskErrorPenalty = 2 * time.Millisecond
	}
	if plan.DiskSlowPenalty == 0 {
		plan.DiskSlowPenalty = time.Millisecond
	}
	return &Injector{
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		streams: make(map[string]*stream),
	}
}

// fnv64 is FNV-1a, used to fold a node name into its stream seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Register gives node its own draw stream and counter set, seeded from the
// plan seed and the node name. Call before the simulation runs (the stream
// map is read-only afterwards); registering the same name twice is a no-op
// so re-attaching a plan stays simple.
func (in *Injector) Register(node string) {
	if _, ok := in.streams[node]; ok {
		return
	}
	st := &stream{rng: rand.New(rand.NewSource(in.plan.Seed ^ int64(fnv64(node))))}
	in.streams[node] = st
	in.order = append(in.order, st)
}

// RegisterLinks sizes the per-sender link counters for fabric node ids
// [0, n). SendVerdict runs on the sender's shard, so tallying per sender
// keeps partition and spike counts race-free.
func (in *Injector) RegisterLinks(n int) {
	if n > len(in.links) {
		in.links = append(in.links, make([]Counters, n-len(in.links))...)
	}
}

// Totals sums the fault tallies across the root stream, every registered
// node, and every link — the ground truth a recovery test compares its
// observed retries against.
func (in *Injector) Totals() Counters {
	t := in.Counters
	for _, st := range in.order {
		t.add(st.c)
	}
	for i := range in.links {
		t.add(in.links[i])
	}
	return t
}

// draws returns the rng and counter set for one node's probabilistic draw.
func (in *Injector) draws(node string) (*rand.Rand, *Counters) {
	if st, ok := in.streams[node]; ok {
		return st.rng, &st.c
	}
	return in.rng, &in.Counters
}

// linkCounters returns the tally for messages sent by fabric node `from`.
func (in *Injector) linkCounters(from int) *Counters {
	if from >= 0 && from < len(in.links) {
		return &in.links[from]
	}
	return &in.Counters
}

// Plan returns the compiled plan.
func (in *Injector) Plan() Plan { return in.plan }

// matches reports whether the (a, b) endpoint pattern covers the (from, to)
// link in either direction.
func matches(a, b, from, to int) bool {
	dir := func(x, y int) bool {
		return (x == Wildcard || x == from) && (y == Wildcard || y == to)
	}
	return dir(a, b) || dir(b, a)
}

func inWindow(now sim.Time, at, dur sim.Duration) bool {
	return now >= sim.Time(at) && now < sim.Time(at+dur)
}

// SendVerdict implements simnet.FaultPolicy: consulted once per message
// before transmission. drop surfaces to the sender as a completion error;
// extra is sender-side stall time (ordering-preserving).
func (in *Injector) SendVerdict(now sim.Time, from, to int, size int) (drop bool, extra sim.Duration) {
	for _, c := range in.plan.Cuts {
		if inWindow(now, c.At, c.Dur) && matches(c.A, c.B, from, to) {
			in.linkCounters(from).Drops++
			return true, 0
		}
	}
	for _, s := range in.plan.Spikes {
		if inWindow(now, s.At, s.Dur) && matches(s.From, s.To, from, to) {
			in.linkCounters(from).Spiked++
			extra += s.Extra
		}
	}
	return false, extra
}

// WRError implements ib.FaultInjector: drawn once per posted work request
// on non-control QPs.
func (in *Injector) WRError(now sim.Time, node string) bool {
	if in.plan.WRErrorRate <= 0 {
		return false
	}
	rng, c := in.draws(node)
	if rng.Float64() < in.plan.WRErrorRate {
		c.WRErrors++
		return true
	}
	return false
}

// RegFail implements ib.FaultInjector: drawn once per dynamic registration
// attempt.
func (in *Injector) RegFail(now sim.Time, node string) bool {
	if in.plan.RegFailRate <= 0 {
		return false
	}
	rng, c := in.draws(node)
	if rng.Float64() < in.plan.RegFailRate {
		c.RegFailures++
		return true
	}
	return false
}

// DiskFault implements disk.FaultInjector: returns added device time for
// one transfer (slowdowns plus internally-retried transient errors) on the
// named device.
func (in *Injector) DiskFault(now sim.Time, node string, read bool, size int64) sim.Duration {
	var extra sim.Duration
	rng, c := in.draws(node)
	if in.plan.DiskErrorRate > 0 && rng.Float64() < in.plan.DiskErrorRate {
		c.DiskErrors++
		extra += in.plan.DiskErrorPenalty
	}
	if in.plan.DiskSlowRate > 0 && rng.Float64() < in.plan.DiskSlowRate {
		c.DiskSlow++
		extra += in.plan.DiskSlowPenalty
	}
	return extra
}

// Describe renders the plan for `pvfsctl fault list`.
func (pl Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d wr-rate=%g reg-rate=%g disk-err=%g disk-slow=%g\n",
		pl.Seed, pl.WRErrorRate, pl.RegFailRate, pl.DiskErrorRate, pl.DiskSlowRate)
	for _, s := range pl.Spikes {
		fmt.Fprintf(&b, "spike %d<->%d at=%v dur=%v extra=%v\n", s.From, s.To, s.At, s.Dur, s.Extra)
	}
	for _, c := range pl.Cuts {
		fmt.Fprintf(&b, "cut %d<->%d at=%v dur=%v\n", c.A, c.B, c.At, c.Dur)
	}
	for _, c := range pl.Crashes {
		fmt.Fprintf(&b, "crash io%d at=%v down=%v\n", c.Server, c.At, c.Down)
	}
	return b.String()
}
