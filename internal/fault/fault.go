// Package fault is the deterministic fault plane for the simulated cluster.
//
// A Plan is pure data: probabilistic fault rates (NIC work-request
// completion errors, registration failures, disk errors and slowdowns) and
// scheduled fault windows (link latency spikes, link partitions, I/O-daemon
// crashes). An Injector compiles a Plan into the runtime object the
// substrate layers consult: simnet asks it about every message before
// transmission, ib about every posted work request and registration
// attempt, disk about every transfer. All probabilistic draws come from one
// seeded generator, and because the simulation engine drives one process at
// a time, the draw order — and therefore the whole fault schedule — is a
// pure function of (workload, plan, seed). The same triple replays
// byte-identically.
//
// The package deliberately imports only internal/sim: the substrate layers
// each declare the small interface they need (simnet.FaultPolicy,
// ib.FaultInjector, disk.FaultInjector) and *Injector satisfies all of them
// structurally. internal/pvfs owns the wiring (Cluster.AttachFaults) and
// the scheduled crash/restart orchestration.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pvfsib/internal/sim"
)

// Wildcard matches any node in a Spike or Cut endpoint.
const Wildcard = -1

// Spike is a window of added per-message sender-side delay on a link. The
// delay models RC retransmission stalls, so it is charged on the sender
// before the transmit engine is acquired and never reorders messages.
type Spike struct {
	// From and To are fabric node ids; Wildcard matches any node. A spike
	// applies to messages in either direction between the endpoints.
	From, To int
	// At and Dur bound the window in virtual time from injector attach.
	At, Dur sim.Duration
	// Extra is the added delay per affected message.
	Extra sim.Duration
}

// Cut is a bidirectional link partition: every message between the two
// endpoints during the window is dropped (the sender sees a retry-exhaustion
// completion error, as a reliable-connection QP would report).
type Cut struct {
	// A and B are fabric node ids; Wildcard matches any node.
	A, B int
	// At and Dur bound the partition window; the link heals at At+Dur.
	At, Dur sim.Duration
}

// Crash schedules one I/O-daemon crash and restart. While down, the daemon
// discards all traffic and its in-flight requests die; on restart it
// re-registers with the metadata manager and serves again. The daemon's
// local file system (and kernel page cache) survive — this models a daemon
// restart, not a node power loss.
type Crash struct {
	// Server is the I/O server index (not a fabric node id).
	Server int
	// At is when the daemon dies; Down is how long it stays dead.
	At, Down sim.Duration
}

// Plan is a complete, declarative fault scenario.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// (workload, plan, seed) produce identical fault schedules.
	Seed int64

	// WRErrorRate is the per-work-request probability of a completion
	// error (CQ status != success). Control QPs (metadata, MPI) are exempt.
	WRErrorRate float64
	// RegFailRate is the per-attempt probability that a memory
	// registration fails (pinning pressure, as NP-RDMA-style stacks see).
	RegFailRate float64
	// DiskErrorRate is the per-transfer probability of a transient media
	// error, retried internally by the device at DiskErrorPenalty each.
	DiskErrorRate float64
	// DiskErrorPenalty is the added device time per transient error
	// (default 2 ms).
	DiskErrorPenalty sim.Duration
	// DiskSlowRate is the per-transfer probability of a slowdown event
	// (recalibration, remapped sector) costing DiskSlowPenalty.
	DiskSlowRate float64
	// DiskSlowPenalty is the added device time per slowdown (default 1 ms).
	DiskSlowPenalty sim.Duration

	Spikes  []Spike
	Cuts    []Cut
	Crashes []Crash
}

// Empty reports whether the plan injects nothing.
func (pl Plan) Empty() bool {
	return pl.WRErrorRate == 0 && pl.RegFailRate == 0 &&
		pl.DiskErrorRate == 0 && pl.DiskSlowRate == 0 &&
		len(pl.Spikes) == 0 && len(pl.Cuts) == 0 && len(pl.Crashes) == 0
}

// Counters accumulates every injected fault, the ground truth a recovery
// test compares its observed retries against.
type Counters struct {
	WRErrors    int64 // work requests completed in error
	Drops       int64 // messages dropped by a partition
	Spiked      int64 // messages delayed by a spike window
	RegFailures int64 // injected registration failures
	DiskErrors  int64 // injected transient disk errors
	DiskSlow    int64 // injected disk slowdown events
}

// String summarizes the counters on one line.
func (c Counters) String() string {
	return fmt.Sprintf("wr-err=%d drops=%d spiked=%d reg-fail=%d disk-err=%d disk-slow=%d",
		c.WRErrors, c.Drops, c.Spiked, c.RegFailures, c.DiskErrors, c.DiskSlow)
}

// Injector is a compiled Plan: the object the substrate layers consult.
// All methods are called from simulation processes (one at a time), so no
// locking is needed and the rng draw order is deterministic.
type Injector struct {
	plan Plan
	rng  *rand.Rand

	// Counters tallies every injected fault.
	Counters Counters
}

// NewInjector compiles the plan, applying defaults for zero penalty fields.
func NewInjector(plan Plan) *Injector {
	if plan.DiskErrorPenalty == 0 {
		plan.DiskErrorPenalty = 2 * time.Millisecond
	}
	if plan.DiskSlowPenalty == 0 {
		plan.DiskSlowPenalty = time.Millisecond
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Plan returns the compiled plan.
func (in *Injector) Plan() Plan { return in.plan }

// matches reports whether the (a, b) endpoint pattern covers the (from, to)
// link in either direction.
func matches(a, b, from, to int) bool {
	dir := func(x, y int) bool {
		return (x == Wildcard || x == from) && (y == Wildcard || y == to)
	}
	return dir(a, b) || dir(b, a)
}

func inWindow(now sim.Time, at, dur sim.Duration) bool {
	return now >= sim.Time(at) && now < sim.Time(at+dur)
}

// SendVerdict implements simnet.FaultPolicy: consulted once per message
// before transmission. drop surfaces to the sender as a completion error;
// extra is sender-side stall time (ordering-preserving).
func (in *Injector) SendVerdict(now sim.Time, from, to int, size int) (drop bool, extra sim.Duration) {
	for _, c := range in.plan.Cuts {
		if inWindow(now, c.At, c.Dur) && matches(c.A, c.B, from, to) {
			in.Counters.Drops++
			return true, 0
		}
	}
	for _, s := range in.plan.Spikes {
		if inWindow(now, s.At, s.Dur) && matches(s.From, s.To, from, to) {
			in.Counters.Spiked++
			extra += s.Extra
		}
	}
	return false, extra
}

// WRError implements ib.FaultInjector: drawn once per posted work request
// on non-control QPs.
func (in *Injector) WRError(now sim.Time, node string) bool {
	if in.plan.WRErrorRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.plan.WRErrorRate {
		in.Counters.WRErrors++
		return true
	}
	return false
}

// RegFail implements ib.FaultInjector: drawn once per dynamic registration
// attempt.
func (in *Injector) RegFail(now sim.Time, node string) bool {
	if in.plan.RegFailRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.plan.RegFailRate {
		in.Counters.RegFailures++
		return true
	}
	return false
}

// DiskFault implements disk.FaultInjector: returns added device time for
// one transfer (slowdowns plus internally-retried transient errors).
func (in *Injector) DiskFault(now sim.Time, read bool, size int64) sim.Duration {
	var extra sim.Duration
	if in.plan.DiskErrorRate > 0 && in.rng.Float64() < in.plan.DiskErrorRate {
		in.Counters.DiskErrors++
		extra += in.plan.DiskErrorPenalty
	}
	if in.plan.DiskSlowRate > 0 && in.rng.Float64() < in.plan.DiskSlowRate {
		in.Counters.DiskSlow++
		extra += in.plan.DiskSlowPenalty
	}
	return extra
}

// Describe renders the plan for `pvfsctl fault list`.
func (pl Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d wr-rate=%g reg-rate=%g disk-err=%g disk-slow=%g\n",
		pl.Seed, pl.WRErrorRate, pl.RegFailRate, pl.DiskErrorRate, pl.DiskSlowRate)
	for _, s := range pl.Spikes {
		fmt.Fprintf(&b, "spike %d<->%d at=%v dur=%v extra=%v\n", s.From, s.To, s.At, s.Dur, s.Extra)
	}
	for _, c := range pl.Cuts {
		fmt.Fprintf(&b, "cut %d<->%d at=%v dur=%v\n", c.A, c.B, c.At, c.Dur)
	}
	for _, c := range pl.Crashes {
		fmt.Fprintf(&b, "crash io%d at=%v down=%v\n", c.Server, c.At, c.Down)
	}
	return b.String()
}
