package fault

import (
	"testing"
	"time"

	"pvfsib/internal/sim"
)

func TestSendVerdictCutWindow(t *testing.T) {
	in := NewInjector(Plan{Cuts: []Cut{{A: 1, B: 4, At: 10 * time.Microsecond, Dur: 5 * time.Microsecond}}})
	us := func(d int64) sim.Time { return sim.Time(d * 1000) }

	if drop, _ := in.SendVerdict(us(9), 1, 4, 100); drop {
		t.Fatal("dropped before window")
	}
	if drop, _ := in.SendVerdict(us(10), 1, 4, 100); !drop {
		t.Fatal("not dropped at window start")
	}
	if drop, _ := in.SendVerdict(us(12), 4, 1, 100); !drop {
		t.Fatal("cut must be bidirectional")
	}
	if drop, _ := in.SendVerdict(us(12), 1, 2, 100); drop {
		t.Fatal("unrelated link dropped")
	}
	if drop, _ := in.SendVerdict(us(15), 1, 4, 100); drop {
		t.Fatal("dropped after heal")
	}
	if in.Counters.Drops != 2 {
		t.Fatalf("Drops = %d, want 2", in.Counters.Drops)
	}
}

func TestSendVerdictWildcardAndSpike(t *testing.T) {
	in := NewInjector(Plan{
		Cuts:   []Cut{{A: Wildcard, B: 3, At: 0, Dur: time.Millisecond}},
		Spikes: []Spike{{From: 0, To: Wildcard, At: 0, Dur: time.Millisecond, Extra: 7 * time.Microsecond}},
	})
	if drop, _ := in.SendVerdict(0, 9, 3, 1); !drop {
		t.Fatal("wildcard cut missed inbound")
	}
	if drop, _ := in.SendVerdict(0, 3, 9, 1); !drop {
		t.Fatal("wildcard cut missed outbound")
	}
	drop, extra := in.SendVerdict(0, 5, 0, 1)
	if drop || extra != 7*time.Microsecond {
		t.Fatalf("spike verdict = (%v, %v), want (false, 7µs)", drop, extra)
	}
}

func TestProbabilisticDrawsAreSeeded(t *testing.T) {
	draw := func(seed int64) (a, b [64]bool) {
		in := NewInjector(Plan{Seed: seed, WRErrorRate: 0.3, RegFailRate: 0.3})
		for i := range a {
			a[i] = in.WRError(0, "n")
			b[i] = in.RegFail(0, "n")
		}
		return
	}
	a1, b1 := draw(42)
	a2, b2 := draw(42)
	if a1 != a2 || b1 != b2 {
		t.Fatal("same seed produced different fault schedules")
	}
	a3, _ := draw(43)
	if a1 == a3 {
		t.Fatal("different seeds produced identical WR-error schedules (suspicious)")
	}
}

func TestDiskFaultDefaultsAndCounters(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, DiskErrorRate: 1, DiskSlowRate: 1})
	extra := in.DiskFault(0, "d", true, 4096)
	if extra != 3*time.Millisecond {
		t.Fatalf("extra = %v, want 3ms (2ms error + 1ms slow defaults)", extra)
	}
	if in.Counters.DiskErrors != 1 || in.Counters.DiskSlow != 1 {
		t.Fatalf("counters = %+v", in.Counters)
	}
}

func TestEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	if (Plan{WRErrorRate: 0.1}).Empty() {
		t.Fatal("plan with a rate reported Empty")
	}
	if (Plan{Crashes: []Crash{{Server: 1}}}).Empty() {
		t.Fatal("plan with a crash reported Empty")
	}
}
