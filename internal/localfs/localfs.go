// Package localfs models the I/O server's local file system (the testbed's
// ext3) on top of a simulated disk: sparse block-addressed files, a unified
// LRU page cache with read-ahead and write-back, fsync, and byte-range
// locks.
//
// Timing follows Table 3 of the paper: cache-hit reads stream at 1391 MB/s
// and buffered writes at 303 MB/s, while cache misses and syncs pay the
// disk model's seek/overhead/bandwidth costs (≈20-25 MB/s sequential).
// Every read and write call also pays a fixed per-call overhead — the
// "many small system calls are extremely expensive" effect that motivates
// data sieving.
//
// File bytes are really stored, so higher layers can verify data integrity
// end-to-end.
package localfs

import (
	"container/list"
	"sort"
	"time"

	"pvfsib/internal/disk"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

// Params is the file-system timing model.
type Params struct {
	// BlockSize is the page-cache block size.
	BlockSize int64
	// CacheBytes bounds the page cache.
	CacheBytes int64
	// ReadAhead is the minimum media read issued on a cache miss.
	ReadAhead int64
	// CallOverhead is the per-read/write-call cost (syscall + VFS + ext3),
	// the model's O_r / O_w combined with the implicit lseek.
	CallOverhead sim.Duration
	// OpenOverhead is charged per Open.
	OpenOverhead sim.Duration
	// LockOverhead is charged per lock or unlock operation.
	LockOverhead sim.Duration
	// CachedReadBW is the copy-out bandwidth for cache hits (bytes/s).
	CachedReadBW float64
	// CachedWriteBW is the copy-in bandwidth for buffered writes.
	CachedWriteBW float64
	// FileRegion is the media span reserved per file, so different files
	// live in different disk regions and cross-file access seeks.
	FileRegion int64
}

// DefaultParams matches the paper's Table 3 measurements.
func DefaultParams() Params {
	return Params{
		BlockSize:     4096,
		CacheBytes:    512 * simnet.MB,
		ReadAhead:     256 << 10,
		CallOverhead:  15 * time.Microsecond,
		OpenOverhead:  30 * time.Microsecond,
		LockOverhead:  3 * time.Microsecond,
		CachedReadBW:  1391 * simnet.MB,
		CachedWriteBW: 303 * simnet.MB,
		FileRegion:    1 << 34, // 16 GiB apart on the media
	}
}

// Counters accumulates file-system call activity (the paper's "disk access
// characteristics" in Table 6 count these calls, not device operations).
type Counters struct {
	OpenCalls  int64
	ReadCalls  int64
	WriteCalls int64
	SyncCalls  int64
	LockOps    int64
	BytesRead  int64
	BytesWrote int64
}

// FS is one server's local file system.
type FS struct {
	eng    *sim.Engine
	dsk    *disk.Disk
	params Params

	files  map[string]*File
	nextID int64
	cache  *pageCache

	// Counters accumulates call counts.
	Counters Counters
}

// New creates a file system over the given disk.
func New(eng *sim.Engine, dsk *disk.Disk, params Params) *FS {
	fs := &FS{eng: eng, dsk: dsk, params: params, files: make(map[string]*File)}
	fs.cache = newPageCache(fs)
	return fs
}

// Disk returns the underlying device.
func (fs *FS) Disk() *disk.Disk { return fs.dsk }

// Params returns the timing model.
func (fs *FS) Params() Params { return fs.params }

// File is one sparse file.
type File struct {
	fs   *FS
	name string
	id   int64
	size int64
	data map[int64][]byte // block index -> BlockSize bytes; presence = ever written

	locks *lockTable
}

// Open returns the named file, creating it if needed.
func (fs *FS) Open(p *sim.Proc, name string) *File {
	fs.Counters.OpenCalls++
	p.Sleep(fs.params.OpenOverhead)
	if f, ok := fs.files[name]; ok {
		return f
	}
	f := &File{
		fs:    fs,
		name:  name,
		id:    fs.nextID,
		data:  make(map[int64][]byte),
		locks: newLockTable(fs.eng),
	}
	fs.nextID++
	fs.files[name] = f
	return f
}

// Remove deletes the named file like unlink(2): its bytes vanish and its
// cached blocks (dirty or not) are discarded. It reports whether the file
// existed.
func (fs *FS) Remove(p *sim.Proc, name string) bool {
	p.Sleep(fs.params.OpenOverhead)
	f, ok := fs.files[name]
	if !ok {
		return false
	}
	delete(fs.files, name)
	fs.cache.purgeFile(f)
	return true
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current file size.
func (f *File) Size() int64 { return f.size }

// mediaOffset maps a file offset to a media offset.
func (f *File) mediaOffset(off int64) int64 { return f.id*f.fs.params.FileRegion + off }

func (f *File) blockRange(off, size int64) (first, last int64) {
	bs := f.fs.params.BlockSize
	return off / bs, (off + size - 1) / bs
}

// ReadAt reads up to size bytes at offset off, returning fewer (or none)
// at end of file, like pread(2). Cache misses on written blocks go to the
// disk with read-ahead; holes read as zeros without media access.
func (f *File) ReadAt(p *sim.Proc, off, size int64) []byte {
	fs := f.fs
	fs.Counters.ReadCalls++
	p.Sleep(fs.params.CallOverhead)
	if off >= f.size {
		return nil
	}
	if off+size > f.size {
		size = f.size - off
	}
	if size <= 0 {
		return nil
	}
	bs := fs.params.BlockSize
	first, last := f.blockRange(off, size)

	// Find runs of blocks that must come from the media: written blocks
	// not present in the cache.
	for blk := first; blk <= last; {
		if fs.cache.present(f, blk) || !f.written(blk) {
			if fs.cache.present(f, blk) {
				fs.cache.touch(p, f, blk, false)
			}
			blk++
			continue
		}
		// Start of a miss run; extend through contiguous written,
		// uncached blocks, then apply read-ahead.
		start := blk
		for blk <= last && !fs.cache.present(f, blk) && f.written(blk) {
			blk++
		}
		end := blk // exclusive
		ahead := start + (fs.params.ReadAhead+bs-1)/bs
		maxBlk := (f.size + bs - 1) / bs
		for end < ahead && end < maxBlk && f.written(end) && !fs.cache.present(f, end) {
			end++
		}
		fs.dsk.Read(p, f.mediaOffset(start*bs), (end-start)*bs)
		for b := start; b < end; b++ {
			fs.cache.insert(p, f, b, false)
		}
	}

	// Copy out at cached-read bandwidth.
	p.Sleep(sim.Duration(float64(size) / fs.params.CachedReadBW * 1e9))
	fs.Counters.BytesRead += size

	out := make([]byte, size)
	f.copyOut(off, out)
	return out
}

// WriteAt writes data at offset off, extending the file as needed. Writes
// land in the page cache (write-back); call Sync to force them to media.
func (f *File) WriteAt(p *sim.Proc, off int64, data []byte) {
	fs := f.fs
	fs.Counters.WriteCalls++
	size := int64(len(data))
	p.Sleep(fs.params.CallOverhead)
	if size == 0 {
		return
	}
	p.Sleep(sim.Duration(float64(size) / fs.params.CachedWriteBW * 1e9))
	fs.Counters.BytesWrote += size
	bs := fs.params.BlockSize
	first, last := f.blockRange(off, size)

	// Partially-covered edge blocks that exist on media but are not
	// cached must be read first (block-granular read-modify-write).
	for _, blk := range []int64{first, last} {
		bStart, bEnd := blk*bs, (blk+1)*bs
		fullyCovered := off <= bStart && off+size >= bEnd
		if !fullyCovered && f.written(blk) && !fs.cache.present(f, blk) {
			fs.dsk.Read(p, f.mediaOffset(bStart), bs)
			fs.cache.insert(p, f, blk, false)
		}
	}

	f.copyIn(off, data)
	for blk := first; blk <= last; blk++ {
		if fs.cache.present(f, blk) {
			fs.cache.touch(p, f, blk, true)
		} else {
			fs.cache.insert(p, f, blk, true)
		}
	}
	if off+size > f.size {
		f.size = off + size
	}
}

// Sync flushes the file's dirty blocks to media in offset order, coalescing
// adjacent blocks into single device writes, like fsync(2).
func (f *File) Sync(p *sim.Proc) {
	f.fs.Counters.SyncCalls++
	f.fs.cache.flushFile(p, f)
}

// SyncAll flushes every file.
func (fs *FS) SyncAll(p *sim.Proc) {
	for _, f := range fs.sortedFiles() {
		f.Sync(p)
	}
}

// DropCaches flushes all dirty data and then empties the page cache, like
// writing to /proc/sys/vm/drop_caches. Benchmarks use it to measure
// uncached performance.
func (fs *FS) DropCaches(p *sim.Proc) {
	fs.SyncAll(p)
	fs.cache.clear()
}

func (fs *FS) sortedFiles() []*File {
	out := make([]*File, 0, len(fs.files))
	for _, f := range fs.files {
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CacheBytesUsed reports current page-cache occupancy.
func (fs *FS) CacheBytesUsed() int64 { return fs.cache.bytes }

// Lock acquires a byte-range lock on the file, blocking while any
// overlapping range is held. The paper's O_lock is charged.
func (f *File) Lock(p *sim.Proc, off, size int64) {
	f.fs.Counters.LockOps++
	p.Sleep(f.fs.params.LockOverhead)
	f.locks.lock(p, off, size)
}

// Unlock releases a byte-range lock (O_unlock charged).
func (f *File) Unlock(p *sim.Proc, off, size int64) {
	f.fs.Counters.LockOps++
	p.Sleep(f.fs.params.LockOverhead)
	f.locks.unlock(off, size)
}

// written reports whether the block has ever been written.
func (f *File) written(blk int64) bool {
	_, ok := f.data[blk]
	return ok
}

func (f *File) block(blk int64) []byte {
	b, ok := f.data[blk]
	if !ok {
		b = make([]byte, f.fs.params.BlockSize)
		f.data[blk] = b
	}
	return b
}

func (f *File) copyIn(off int64, data []byte) {
	bs := f.fs.params.BlockSize
	for len(data) > 0 {
		blk := off / bs
		bo := off % bs
		n := copy(f.block(blk)[bo:], data)
		data = data[n:]
		off += int64(n)
	}
}

func (f *File) copyOut(off int64, dst []byte) {
	bs := f.fs.params.BlockSize
	for len(dst) > 0 {
		blk := off / bs
		bo := off % bs
		var n int
		if b, ok := f.data[blk]; ok {
			n = copy(dst, b[bo:])
		} else {
			// Hole: zeros.
			n = int(bs - bo)
			if n > len(dst) {
				n = len(dst)
			}
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += int64(n)
	}
}

// pageCache is a global LRU over (file, block) with write-back.
type pageCache struct {
	fs      *FS
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recent
	bytes   int64
}

type cacheKey struct {
	file *File
	blk  int64
}

type cacheEntry struct {
	key   cacheKey
	dirty bool
}

func newPageCache(fs *FS) *pageCache {
	return &pageCache{fs: fs, entries: make(map[cacheKey]*list.Element), lru: list.New()}
}

func (c *pageCache) present(f *File, blk int64) bool {
	_, ok := c.entries[cacheKey{f, blk}]
	return ok
}

// touch promotes an existing entry, optionally marking it dirty.
func (c *pageCache) touch(p *sim.Proc, f *File, blk int64, dirty bool) {
	el, ok := c.entries[cacheKey{f, blk}]
	if !ok {
		sim.Failf("localfs: touch of uncached block %d of %s", blk, f.name)
	}
	c.lru.MoveToFront(el)
	if dirty {
		el.Value.(*cacheEntry).dirty = true
	}
}

// insert adds a block, evicting LRU entries as needed.
func (c *pageCache) insert(p *sim.Proc, f *File, blk int64, dirty bool) {
	key := cacheKey{f, blk}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		if dirty {
			el.Value.(*cacheEntry).dirty = true
		}
		return
	}
	bs := c.fs.params.BlockSize
	for c.bytes+bs > c.fs.params.CacheBytes && c.lru.Len() > 0 {
		c.evictOne(p)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, dirty: dirty})
	c.bytes += bs
}

func (c *pageCache) evictOne(p *sim.Proc) {
	el := c.lru.Back()
	ent := el.Value.(*cacheEntry)
	if ent.dirty {
		bs := c.fs.params.BlockSize
		c.fs.dsk.Write(p, ent.key.file.mediaOffset(ent.key.blk*bs), bs)
		ent.dirty = false
	}
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= c.fs.params.BlockSize
}

// flushFile writes the file's dirty blocks in offset order, coalescing
// adjacent blocks into single media writes.
func (c *pageCache) flushFile(p *sim.Proc, f *File) {
	var dirty []int64
	for key, el := range c.entries {
		if key.file == f && el.Value.(*cacheEntry).dirty {
			dirty = append(dirty, key.blk)
		}
	}
	if len(dirty) == 0 {
		return
	}
	sortInt64s(dirty)
	bs := c.fs.params.BlockSize
	runStart := dirty[0]
	prev := dirty[0]
	flush := func(start, end int64) { // blocks [start, end]
		c.fs.dsk.Write(p, f.mediaOffset(start*bs), (end-start+1)*bs)
	}
	for _, blk := range dirty[1:] {
		if blk != prev+1 {
			flush(runStart, prev)
			runStart = blk
		}
		prev = blk
	}
	flush(runStart, prev)
	for _, blk := range dirty {
		c.entries[cacheKey{f, blk}].Value.(*cacheEntry).dirty = false
	}
}

// purgeFile drops every cached block of f without writing dirty data back.
func (c *pageCache) purgeFile(f *File) {
	for key, el := range c.entries {
		if key.file != f {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, key)
		c.bytes -= c.fs.params.BlockSize
	}
}

func (c *pageCache) clear() {
	c.entries = make(map[cacheKey]*list.Element)
	c.lru.Init()
	c.bytes = 0
}

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// lockTable is a simple byte-range lock manager.
type lockTable struct {
	eng  *sim.Engine
	held []lockRange
	cond *sim.Cond
}

type lockRange struct{ off, size int64 }

func newLockTable(eng *sim.Engine) *lockTable {
	return &lockTable{eng: eng, cond: eng.NewCond()}
}

func (lt *lockTable) lock(p *sim.Proc, off, size int64) {
	for lt.conflicts(off, size) {
		lt.cond.Wait(p)
	}
	lt.held = append(lt.held, lockRange{off, size})
}

func (lt *lockTable) unlock(off, size int64) {
	for i, r := range lt.held {
		if r.off == off && r.size == size {
			lt.held = append(lt.held[:i], lt.held[i+1:]...)
			lt.cond.Broadcast()
			return
		}
	}
	sim.Failf("localfs: unlock of range not held")
}

func (lt *lockTable) conflicts(off, size int64) bool {
	for _, r := range lt.held {
		if off < r.off+r.size && r.off < off+size {
			return true
		}
	}
	return false
}
