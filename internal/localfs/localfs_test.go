package localfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"pvfsib/internal/disk"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

func newFS(t *testing.T) (*sim.Engine, *FS) {
	t.Helper()
	eng := sim.NewEngine()
	d := disk.New(eng, "d", disk.DefaultParams())
	return eng, New(eng, d, DefaultParams())
}

func runSim(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "data")
		want := make([]byte, 10000)
		for i := range want {
			want[i] = byte(i * 13)
		}
		f.WriteAt(p, 777, want)
		got := f.ReadAt(p, 777, 10000)
		if !bytes.Equal(got, want) {
			t.Error("round trip mismatch")
		}
		if f.Size() != 777+10000 {
			t.Errorf("Size = %d", f.Size())
		}
	})
}

func TestReadBeyondEOF(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, []byte("hello"))
		if got := f.ReadAt(p, 3, 100); string(got) != "lo" {
			t.Errorf("short read = %q, want \"lo\"", got)
		}
		if got := f.ReadAt(p, 10, 5); got != nil {
			t.Errorf("read past EOF = %q, want nil", got)
		}
	})
}

func TestHolesReadAsZeros(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "sparse")
		f.WriteAt(p, 100000, []byte("end"))
		reads0 := fs.Disk().Counters.ReadOps
		got := f.ReadAt(p, 0, 10)
		if !bytes.Equal(got, make([]byte, 10)) {
			t.Errorf("hole read = %v, want zeros", got)
		}
		if fs.Disk().Counters.ReadOps != reads0 {
			t.Error("reading a hole hit the disk")
		}
	})
}

func TestWriteIsBufferedUntilSync(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, 1<<20))
		if fs.Disk().Counters.WriteOps != 0 {
			t.Error("buffered write hit the disk before sync")
		}
		f.Sync(p)
		if fs.Disk().Counters.WriteOps == 0 {
			t.Error("sync did not write to disk")
		}
	})
}

func TestSyncCoalescesAdjacentBlocks(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		// 64 contiguous dirty blocks + 1 distant one.
		f.WriteAt(p, 0, make([]byte, 64*4096))
		f.WriteAt(p, 1<<20, make([]byte, 4096))
		f.Sync(p)
		if n := fs.Disk().Counters.WriteOps; n != 2 {
			t.Errorf("sync issued %d device writes, want 2 (coalesced)", n)
		}
		// Second sync: nothing dirty.
		ops := fs.Disk().Counters.WriteOps
		f.Sync(p)
		if fs.Disk().Counters.WriteOps != ops {
			t.Error("second sync wrote again")
		}
	})
}

func TestCachedRereadSkipsDisk(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, 1<<20))
		fs.DropCaches(p)
		f.ReadAt(p, 0, 1<<20) // cold
		ops := fs.Disk().Counters.ReadOps
		t0 := p.Now()
		f.ReadAt(p, 0, 1<<20) // warm
		warm := p.Now().Sub(t0)
		if fs.Disk().Counters.ReadOps != ops {
			t.Error("warm read hit the disk")
		}
		// Warm read bandwidth ≈ 1391 MB/s.
		bw := float64(1<<20) / warm.Seconds() / simnet.MB
		if bw < 1000 || bw > 1500 {
			t.Errorf("cached read bandwidth %.0f MB/s, want ≈1391", bw)
		}
	})
}

func TestUncachedReadIsDiskBound(t *testing.T) {
	eng, fs := newFS(t)
	const size = 16 * simnet.MB
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, size))
		fs.DropCaches(p)
		t0 := p.Now()
		f.ReadAt(p, 0, size)
		bw := float64(size) / p.Now().Sub(t0).Seconds() / simnet.MB
		if bw < 15 || bw > 25 {
			t.Errorf("uncached read bandwidth %.1f MB/s, want ≈20 (Table 3)", bw)
		}
	})
}

func TestBufferedWriteBandwidthMatchesTable3(t *testing.T) {
	eng, fs := newFS(t)
	const size = 32 * simnet.MB
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		t0 := p.Now()
		const chunk = 1 << 20
		buf := make([]byte, chunk)
		for off := int64(0); off < size; off += chunk {
			f.WriteAt(p, off, buf)
		}
		bw := float64(size) / p.Now().Sub(t0).Seconds() / simnet.MB
		if bw < 280 || bw > 310 {
			t.Errorf("buffered write bandwidth %.0f MB/s, want ≈303 (Table 3)", bw)
		}
	})
}

func TestReadAheadReducesDeviceOps(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, 1<<20))
		fs.DropCaches(p)
		// Sequential 4k reads over 1 MB: with 256k read-ahead this
		// should cost ~4 device reads, not 256.
		for off := int64(0); off < 1<<20; off += 4096 {
			f.ReadAt(p, off, 4096)
		}
		if n := fs.Disk().Counters.ReadOps; n > 8 {
			t.Errorf("device reads = %d, want ≤8 with read-ahead", n)
		}
	})
}

func TestPartialBlockWriteTriggersRMWRead(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, 8192))
		fs.DropCaches(p)
		reads0 := fs.Disk().Counters.ReadOps
		f.WriteAt(p, 100, []byte("x")) // partial block, on media, uncached
		if fs.Disk().Counters.ReadOps == reads0 {
			t.Error("partial uncached block write should read the block first")
		}
	})
}

func TestCacheEvictionWritesDirtyBlocks(t *testing.T) {
	eng := sim.NewEngine()
	d := disk.New(eng, "d", disk.DefaultParams())
	params := DefaultParams()
	params.CacheBytes = 64 * 4096 // tiny cache
	fs := New(eng, d, params)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, make([]byte, 256*4096)) // 4x the cache
		if d.Counters.WriteOps == 0 {
			t.Error("evictions of dirty blocks must reach the disk")
		}
		if fs.CacheBytesUsed() > params.CacheBytes {
			t.Errorf("cache used %d > capacity %d", fs.CacheBytesUsed(), params.CacheBytes)
		}
	})
}

func TestOpenReturnsSameFile(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f1 := fs.Open(p, "x")
		f1.WriteAt(p, 0, []byte("abc"))
		f2 := fs.Open(p, "x")
		if f1 != f2 {
			t.Error("Open twice returned different files")
		}
		if got := f2.ReadAt(p, 0, 3); string(got) != "abc" {
			t.Errorf("got %q", got)
		}
	})
}

func TestDistinctFilesLiveInDistinctRegions(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		a := fs.Open(p, "a")
		b := fs.Open(p, "b")
		a.WriteAt(p, 0, make([]byte, 4096))
		b.WriteAt(p, 0, make([]byte, 4096))
		fs.SyncAll(p)
		// Alternating uncached reads must seek between file regions.
		fs.DropCaches(p)
		seeks0 := fs.Disk().Counters.Seeks
		a.ReadAt(p, 0, 4096)
		b.ReadAt(p, 0, 4096)
		if fs.Disk().Counters.Seeks-seeks0 < 2 {
			t.Error("cross-file access should seek")
		}
	})
}

func TestByteRangeLockBlocksOverlap(t *testing.T) {
	eng, fs := newFS(t)
	var order []string
	eng.Go("a", func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.Lock(p, 0, 100)
		order = append(order, "a-locked")
		p.Sleep(100000)
		f.Unlock(p, 0, 100)
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Sleep(1000)
		f := fs.Open(p, "f")
		f.Lock(p, 50, 100) // overlaps
		order = append(order, "b-locked")
		f.Unlock(p, 50, 100)
	})
	eng.Go("c", func(p *sim.Proc) {
		p.Sleep(1000)
		f := fs.Open(p, "f")
		f.Lock(p, 500, 100) // disjoint: must not block
		order = append(order, "c-locked")
		f.Unlock(p, 500, 100)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a-locked" || order[1] != "c-locked" || order[2] != "b-locked" {
		t.Errorf("order = %v, want [a-locked c-locked b-locked]", order)
	}
}

func TestCountersTrackCalls(t *testing.T) {
	eng, fs := newFS(t)
	runSim(t, eng, func(p *sim.Proc) {
		f := fs.Open(p, "f")
		f.WriteAt(p, 0, []byte("abc"))
		f.ReadAt(p, 0, 3)
		f.ReadAt(p, 0, 3)
		f.Sync(p)
	})
	c := fs.Counters
	if c.OpenCalls != 1 || c.WriteCalls != 1 || c.ReadCalls != 2 || c.SyncCalls != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPropertySparseWriteReadEquivalence(t *testing.T) {
	// Model check: the file behaves like a flat byte array with zeros in
	// the holes, regardless of write order and caching.
	type op struct {
		Off  uint32
		Data []byte
	}
	eng, fs := newFS(t)
	f := func(ops []op, dropAfter uint8) bool {
		ok := true
		eng2 := sim.NewEngine()
		d := disk.New(eng2, "d", disk.DefaultParams())
		fs2 := New(eng2, d, DefaultParams())
		eng2.Go("t", func(p *sim.Proc) {
			file := fs2.Open(p, "f")
			model := make(map[int64]byte)
			var size int64
			for i, o := range ops {
				off := int64(o.Off % 200000)
				if len(o.Data) > 4096 {
					o.Data = o.Data[:4096]
				}
				file.WriteAt(p, off, o.Data)
				for j, b := range o.Data {
					model[off+int64(j)] = b
				}
				// A zero-length write does not extend the file (POSIX).
				if end := off + int64(len(o.Data)); len(o.Data) > 0 && end > size {
					size = end
				}
				if i == int(dropAfter)%8 {
					fs2.DropCaches(p)
				}
			}
			got := file.ReadAt(p, 0, size)
			if int64(len(got)) != size {
				ok = false
				return
			}
			for i := int64(0); i < size; i++ {
				if got[i] != model[i] {
					ok = false
					return
				}
			}
		})
		if err := eng2.Run(); err != nil {
			return false
		}
		return ok
	}
	_ = eng
	_ = fs
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
