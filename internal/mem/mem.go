// Package mem simulates a process virtual address space on a compute node.
//
// InfiniBand memory registration operates on virtual memory regions: a
// registration fails if the region touches pages that the application never
// allocated, and discovering where the "true" holes lie costs a query to the
// operating system (the paper measures ≈70 µs per 1000 holes with a custom
// system call versus ≈1100 µs reading /proc/$pid/maps). This package models
// exactly those mechanics: page-granular allocations with real byte storage,
// byte-granular reads and writes, hole enumeration, and the query costs.
//
// Real data flows through the address space — tests can verify end-to-end
// integrity of every transfer path — while all costs are virtual time.
package mem

import (
	"fmt"
	"time"

	"pvfsib/internal/sim"
)

// PageSize is the virtual-memory page size, matching the testbed's Linux.
const PageSize = 4096

// Addr is a virtual address.
type Addr uint64

// PageOf returns the index of the page containing a.
func (a Addr) PageOf() uint64 { return uint64(a) / PageSize }

// Extent is a contiguous byte range [Addr, Addr+Len) in an address space.
type Extent struct {
	Addr Addr
	Len  int64
}

// End returns the first address past the extent.
func (e Extent) End() Addr { return e.Addr + Addr(e.Len) }

func (e Extent) String() string { return fmt.Sprintf("[%#x,+%d)", uint64(e.Addr), e.Len) }

// Pages returns the number of pages the extent overlaps.
func (e Extent) Pages() int64 {
	if e.Len <= 0 {
		return 0
	}
	first := e.Addr.PageOf()
	last := (e.End() - 1).PageOf()
	return int64(last - first + 1)
}

// QueryMethod selects how hole queries are answered, with different costs.
type QueryMethod int

const (
	// QuerySyscall models the paper's custom kernel walk: ≈70 µs per 1000
	// holes examined.
	QuerySyscall QueryMethod = iota
	// QueryProcMaps models reading /proc/$pid/maps: ≈1100 µs per 1000 holes.
	QueryProcMaps
	// QueryMincore models a per-page residency probe.
	QueryMincore
)

// queryCost returns the virtual time to enumerate holes over a span.
func queryCost(m QueryMethod, holes int, pages int64) sim.Duration {
	switch m {
	case QuerySyscall:
		return 2*time.Microsecond + time.Duration(holes)*70*time.Nanosecond
	case QueryProcMaps:
		return 50*time.Microsecond + time.Duration(holes)*1100*time.Nanosecond
	case QueryMincore:
		return time.Duration(pages) * 200 * time.Nanosecond
	default:
		//pvfslint:ok nopanic QueryMethod is a closed enum; a new variant is a compile-time omission here
		panic("mem: unknown query method")
	}
}

// AddrSpace is one process's simulated virtual memory.
type AddrSpace struct {
	name  string
	pages map[uint64][]byte // page index -> PageSize bytes, presence = allocated
	brk   Addr              // bump pointer for Malloc

	// MallocCalls counts allocations, for tests.
	MallocCalls int
}

// NewAddrSpace creates an empty address space. The bump allocator starts at
// a nonzero base so that address 0 is never valid.
func NewAddrSpace(name string) *AddrSpace {
	return &AddrSpace{
		name:  name,
		pages: make(map[uint64][]byte),
		brk:   Addr(1 << 20),
	}
}

// Name returns the label given at creation.
func (s *AddrSpace) Name() string { return s.name }

// Malloc allocates size bytes (rounded up to whole pages) at the current
// break and returns the page-aligned base address. Consecutive Mallocs are
// adjacent; use Reserve to introduce unallocated holes between them.
func (s *AddrSpace) Malloc(size int64) Addr {
	if size <= 0 {
		//pvfslint:ok nopanic Malloc's contract mirrors C malloc: a nonpositive size is a caller bug, and an error return would infect every inline call site
		panic("mem: Malloc of nonpositive size")
	}
	base := s.brk
	npages := (size + PageSize - 1) / PageSize
	first := base.PageOf()
	for i := int64(0); i < npages; i++ {
		s.pages[first+uint64(i)] = make([]byte, PageSize)
	}
	s.brk = base + Addr(npages*PageSize)
	s.MallocCalls++
	return base
}

// Reserve advances the allocator by npages pages without allocating them,
// creating an unallocated hole after the most recent allocation.
func (s *AddrSpace) Reserve(npages int64) {
	if npages < 0 {
		//pvfslint:ok nopanic Reserve shares Malloc's inline-allocator contract: a negative count is a caller bug
		panic("mem: negative Reserve")
	}
	s.brk += Addr(npages * PageSize)
}

// Free releases every allocated page overlapping the extent. Freeing
// unallocated pages is a no-op, as with munmap.
func (s *AddrSpace) Free(e Extent) {
	if e.Len <= 0 {
		return
	}
	first := e.Addr.PageOf()
	last := (e.End() - 1).PageOf()
	for pg := first; pg <= last; pg++ {
		delete(s.pages, pg)
	}
}

// Allocated reports whether every page overlapping the extent is allocated.
func (s *AddrSpace) Allocated(e Extent) bool {
	if e.Len <= 0 {
		return true
	}
	first := e.Addr.PageOf()
	last := (e.End() - 1).PageOf()
	for pg := first; pg <= last; pg++ {
		if _, ok := s.pages[pg]; !ok {
			return false
		}
	}
	return true
}

// Holes returns the unallocated page-aligned gaps within the extent, in
// address order. An empty slice means the whole extent is allocated.
func (s *AddrSpace) Holes(e Extent) []Extent {
	var holes []Extent
	if e.Len <= 0 {
		return holes
	}
	first := e.Addr.PageOf()
	last := (e.End() - 1).PageOf()
	var open *Extent
	for pg := first; pg <= last; pg++ {
		if _, ok := s.pages[pg]; ok {
			open = nil
			continue
		}
		if open != nil {
			open.Len += PageSize
			continue
		}
		holes = append(holes, Extent{Addr: Addr(pg * PageSize), Len: PageSize})
		open = &holes[len(holes)-1]
	}
	return holes
}

// QueryHoles enumerates the holes within the extent, charging the calling
// process the cost of the chosen query method.
func (s *AddrSpace) QueryHoles(p *sim.Proc, e Extent, m QueryMethod) []Extent {
	holes := s.Holes(e)
	p.Sleep(queryCost(m, len(holes), e.Pages()))
	return holes
}

// errRange reports an access outside allocated memory.
type errRange struct {
	space string
	op    string
	e     Extent
}

func (er *errRange) Error() string {
	return fmt.Sprintf("mem: %s: %s %v touches unallocated memory", er.space, er.op, er.e)
}

// Write copies data into the address space at addr. It fails if any touched
// byte is unallocated (a simulated segmentation fault), in which case no
// bytes are written.
func (s *AddrSpace) Write(addr Addr, data []byte) error {
	e := Extent{Addr: addr, Len: int64(len(data))}
	if !s.Allocated(e) {
		return &errRange{space: s.name, op: "write", e: e}
	}
	for len(data) > 0 {
		pg := addr.PageOf()
		off := int(uint64(addr) % PageSize)
		n := copy(s.pages[pg][off:], data)
		data = data[n:]
		addr += Addr(n)
	}
	return nil
}

// Read copies length bytes starting at addr into a fresh slice. It fails if
// any touched byte is unallocated.
func (s *AddrSpace) Read(addr Addr, length int64) ([]byte, error) {
	e := Extent{Addr: addr, Len: length}
	if !s.Allocated(e) {
		return nil, &errRange{space: s.name, op: "read", e: e}
	}
	out := make([]byte, length)
	dst := out
	for len(dst) > 0 {
		pg := addr.PageOf()
		off := int(uint64(addr) % PageSize)
		n := copy(dst, s.pages[pg][off:])
		dst = dst[n:]
		addr += Addr(n)
	}
	return out, nil
}

// ReadInto is like Read but fills the provided slice, avoiding allocation.
func (s *AddrSpace) ReadInto(addr Addr, dst []byte) error {
	e := Extent{Addr: addr, Len: int64(len(dst))}
	if !s.Allocated(e) {
		return &errRange{space: s.name, op: "read", e: e}
	}
	for len(dst) > 0 {
		pg := addr.PageOf()
		off := int(uint64(addr) % PageSize)
		n := copy(dst, s.pages[pg][off:])
		dst = dst[n:]
		addr += Addr(n)
	}
	return nil
}

// Copy moves n bytes from src to dst inside the address space without
// allocating — the primitive behind cache-page fills and drains, where a
// heap buffer per copy would dominate the client's steady state. The two
// ranges must not overlap (cache frames and user buffers never do); both
// must be fully allocated, and nothing is written on failure.
func (s *AddrSpace) Copy(dst, src Addr, n int64) error {
	if n <= 0 {
		return nil
	}
	if !s.Allocated(Extent{Addr: src, Len: n}) {
		return &errRange{space: s.name, op: "read", e: Extent{Addr: src, Len: n}}
	}
	if !s.Allocated(Extent{Addr: dst, Len: n}) {
		return &errRange{space: s.name, op: "write", e: Extent{Addr: dst, Len: n}}
	}
	for n > 0 {
		so := int64(uint64(src) % PageSize)
		do := int64(uint64(dst) % PageSize)
		chunk := PageSize - so
		if r := PageSize - do; r < chunk {
			chunk = r
		}
		if chunk > n {
			chunk = n
		}
		copy(s.pages[dst.PageOf()][do:do+chunk], s.pages[src.PageOf()][so:so+chunk])
		src += Addr(chunk)
		dst += Addr(chunk)
		n -= chunk
	}
	return nil
}

// AllocatedPages reports the number of currently allocated pages.
func (s *AddrSpace) AllocatedPages() int { return len(s.pages) }

// ScratchPool recycles transient byte buffers by power-of-two size class:
// RDMA gather staging, read responses, and similar copies that live only for
// one hop. It is not safe for concurrent use; each simulation cell owns its
// own pool, serialized by the engine's one-process-at-a-time execution.
const (
	scratchMinBits   = 6  // 64 B smallest class
	scratchMaxBits   = 26 // 64 MiB largest pooled class
	scratchClasses   = scratchMaxBits - scratchMinBits + 1
	scratchClassKeep = 64 // buffers retained per class
)

type ScratchPool struct {
	classes [scratchClasses][][]byte

	// Gets and Hits count requests and free-list hits, for tests and the
	// allocation-trajectory numbers in BENCH_smoke.json.
	Gets, Hits int64
}

// scratchClass returns the index of the smallest class holding n bytes.
func scratchClass(n int) int {
	c := 0
	for sz := 1 << scratchMinBits; sz < n; sz <<= 1 {
		c++
	}
	return c
}

// Get returns a length-n buffer with undefined contents. Requests beyond the
// largest class fall back to a plain allocation that Put will decline.
func (p *ScratchPool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	p.Gets++
	if n > 1<<scratchMaxBits {
		return make([]byte, n)
	}
	c := scratchClass(n)
	if l := p.classes[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.classes[c] = l[:len(l)-1]
		p.Hits++
		return b[:n]
	}
	return make([]byte, n, 1<<(scratchMinBits+c))
}

// Put returns a buffer obtained from Get to its size class. Ownership must
// be unique: recycling a buffer still referenced elsewhere corrupts a later
// Get. Buffers that are not pool-shaped (wrong capacity) are left to the GC.
func (p *ScratchPool) Put(b []byte) {
	c := cap(b)
	if c < 1<<scratchMinBits || c > 1<<scratchMaxBits || c&(c-1) != 0 {
		return
	}
	cl := scratchClass(c)
	if len(p.classes[cl]) < scratchClassKeep {
		p.classes[cl] = append(p.classes[cl], b[:0])
	}
}
