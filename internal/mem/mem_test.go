package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"pvfsib/internal/sim"
)

func TestMallocAlignmentAndAdjacency(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(100)
	b := s.Malloc(PageSize + 1)
	if uint64(a)%PageSize != 0 || uint64(b)%PageSize != 0 {
		t.Error("Malloc results must be page-aligned")
	}
	if b != a+PageSize {
		t.Errorf("second Malloc at %#x, want adjacent %#x", uint64(b), uint64(a+PageSize))
	}
	c := s.Malloc(1)
	if c != b+2*PageSize {
		t.Errorf("third Malloc at %#x, want %#x (size rounded to 2 pages)", uint64(c), uint64(b+2*PageSize))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(3 * PageSize)
	data := make([]byte, 2*PageSize+123)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Unaligned start, spanning page boundaries.
	addr := a + 517
	if err := s.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(addr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(PageSize)
	want := []byte("hello noncontiguous world")
	if err := s.Write(a+11, want); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(want))
	if err := s.ReadInto(a+11, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Error("ReadInto mismatch")
	}
}

func TestAccessUnallocatedFails(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(PageSize)
	s.Reserve(1)
	b := s.Malloc(PageSize)
	// Spanning the hole between a and b must fail.
	if err := s.Write(a, make([]byte, 2*PageSize+1)); err == nil {
		t.Error("write across hole succeeded")
	}
	if _, err := s.Read(a+PageSize, 10); err == nil {
		t.Error("read in hole succeeded")
	}
	if err := s.Write(b, []byte("x")); err != nil {
		t.Errorf("write to second allocation failed: %v", err)
	}
}

func TestWriteSpansAdjacentAllocations(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(PageSize)
	s.Malloc(PageSize)             // adjacent
	data := make([]byte, PageSize) // spans the boundary between the two
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Write(a+PageSize-50, data); err != nil {
		t.Fatalf("write across adjacent allocations failed: %v", err)
	}
	got, err := s.Read(a+PageSize-50, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-allocation data mismatch")
	}
}

func TestAllocatedAndHoles(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(2 * PageSize)
	s.Reserve(3)
	b := s.Malloc(PageSize)
	span := Extent{Addr: a, Len: int64(b) - int64(a) + PageSize}
	if s.Allocated(span) {
		t.Error("span with hole reported allocated")
	}
	holes := s.Holes(span)
	if len(holes) != 1 {
		t.Fatalf("holes = %v, want 1 hole", holes)
	}
	if holes[0].Addr != a+2*PageSize || holes[0].Len != 3*PageSize {
		t.Errorf("hole = %v, want [a+2p, +3p)", holes[0])
	}
	if !s.Allocated(Extent{Addr: a, Len: 2 * PageSize}) {
		t.Error("fully allocated extent reported unallocated")
	}
	if len(s.Holes(Extent{Addr: a, Len: 2 * PageSize})) != 0 {
		t.Error("found holes in allocated extent")
	}
}

func TestHolesCoalesceAndMultiple(t *testing.T) {
	s := NewAddrSpace("t")
	start := s.Malloc(PageSize)
	var end Addr
	for i := 0; i < 4; i++ {
		s.Reserve(2)
		end = s.Malloc(PageSize)
	}
	span := Extent{Addr: start, Len: int64(end) - int64(start) + PageSize}
	holes := s.Holes(span)
	if len(holes) != 4 {
		t.Fatalf("got %d holes, want 4", len(holes))
	}
	for _, h := range holes {
		if h.Len != 2*PageSize {
			t.Errorf("hole %v, want len 2 pages", h)
		}
	}
}

func TestFree(t *testing.T) {
	s := NewAddrSpace("t")
	a := s.Malloc(4 * PageSize)
	s.Free(Extent{Addr: a + PageSize, Len: 2 * PageSize})
	if s.Allocated(Extent{Addr: a, Len: 4 * PageSize}) {
		t.Error("freed range still allocated")
	}
	if !s.Allocated(Extent{Addr: a, Len: PageSize}) {
		t.Error("first page should remain")
	}
	if !s.Allocated(Extent{Addr: a + 3*PageSize, Len: PageSize}) {
		t.Error("last page should remain")
	}
}

func TestQueryHolesChargesTime(t *testing.T) {
	eng := sim.NewEngine()
	s := NewAddrSpace("t")
	a := s.Malloc(PageSize)
	s.Reserve(1)
	b := s.Malloc(PageSize)
	span := Extent{Addr: a, Len: int64(b) - int64(a) + PageSize}

	var tSyscall, tProc sim.Time
	eng.Go("q", func(p *sim.Proc) {
		t0 := p.Now()
		holes := s.QueryHoles(p, span, QuerySyscall)
		tSyscall = p.Now() - t0
		if len(holes) != 1 {
			t.Errorf("syscall query found %d holes, want 1", len(holes))
		}
		t0 = p.Now()
		s.QueryHoles(p, span, QueryProcMaps)
		tProc = p.Now() - t0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tSyscall <= 0 || tProc <= 0 {
		t.Fatal("queries must cost time")
	}
	if tProc <= tSyscall {
		t.Errorf("/proc query (%v) should be slower than syscall (%v)", tProc, tSyscall)
	}
}

func TestQueryMincoreScalesWithPages(t *testing.T) {
	eng := sim.NewEngine()
	s := NewAddrSpace("t")
	a := s.Malloc(100 * PageSize)
	var small, large sim.Time
	eng.Go("q", func(p *sim.Proc) {
		t0 := p.Now()
		s.QueryHoles(p, Extent{Addr: a, Len: 2 * PageSize}, QueryMincore)
		small = p.Now() - t0
		t0 = p.Now()
		s.QueryHoles(p, Extent{Addr: a, Len: 100 * PageSize}, QueryMincore)
		large = p.Now() - t0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("mincore over 100 pages (%v) should cost more than 2 pages (%v)", large, small)
	}
}

func TestExtentHelpers(t *testing.T) {
	e := Extent{Addr: PageSize - 1, Len: 2}
	if e.Pages() != 2 {
		t.Errorf("Pages = %d, want 2 (straddles a boundary)", e.Pages())
	}
	if (Extent{Addr: 0, Len: PageSize}).Pages() != 1 {
		t.Error("exactly one page")
	}
	if (Extent{Len: 0}).Pages() != 0 {
		t.Error("empty extent has pages")
	}
	if e.End() != PageSize+1 {
		t.Errorf("End = %d", e.End())
	}
}

func TestPropertyWriteReadAnywhere(t *testing.T) {
	s := NewAddrSpace("prop")
	base := s.Malloc(64 * PageSize)
	f := func(off uint16, val byte, n uint8) bool {
		length := int64(n)%512 + 1
		addr := base + Addr(uint64(off)%(62*PageSize))
		data := bytes.Repeat([]byte{val}, int(length))
		if err := s.Write(addr, data); err != nil {
			return false
		}
		got, err := s.Read(addr, length)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHolesPartitionSpan(t *testing.T) {
	// For any allocation pattern, holes + allocated pages tile the span.
	f := func(pattern []bool) bool {
		if len(pattern) == 0 || len(pattern) > 64 {
			return true
		}
		s := NewAddrSpace("prop")
		start := s.Malloc(PageSize) // anchor
		for _, alloc := range pattern {
			if alloc {
				s.Malloc(PageSize)
			} else {
				s.Reserve(1)
			}
		}
		end := s.Malloc(PageSize) // anchor
		span := Extent{Addr: start, Len: int64(end) - int64(start) + PageSize}
		var holeBytes int64
		for _, h := range s.Holes(span) {
			holeBytes += h.Len
			if s.Allocated(Extent{Addr: h.Addr, Len: 1}) {
				return false // hole overlaps an allocation
			}
		}
		var wantHoles int64
		for _, alloc := range pattern {
			if !alloc {
				wantHoles += PageSize
			}
		}
		return holeBytes == wantHoles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
