package mpiio

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pcache"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
	"pvfsib/internal/trace"
)

// Method selects one of ROMIO's ways to service a noncontiguous access.
type Method int

const (
	// MultipleIO performs one contiguous PVFS operation per contiguous
	// piece.
	MultipleIO Method = iota
	// DataSieving is ROMIO's client-side sieving. Reads fetch the whole
	// extent in windows and extract the wanted pieces; writes fall back
	// to MultipleIO because PVFS provides no client file locking
	// (Section 5.2).
	DataSieving
	// ListIO uses pvfs_read_list/pvfs_write_list with server-side
	// sieving disabled.
	ListIO
	// ListIOADS is ListIO with Active Data Sieving on the servers.
	ListIOADS
	// Collective is two-phase collective I/O; every rank of the file's
	// world must call the operation.
	Collective
)

func (m Method) String() string {
	switch m {
	case MultipleIO:
		return "multiple"
	case DataSieving:
		return "datasieving"
	case ListIO:
		return "listio"
	case ListIOADS:
		return "listio+ads"
	case Collective:
		return "collective"
	}
	return "unknown"
}

// DefaultDSBufferSize matches ROMIO's ind_rd_buffer_size default window.
const DefaultDSBufferSize = 4 << 20

// File is an open MPI-IO file on one rank.
type File struct {
	client *pvfs.Client
	fh     *pvfs.FileHandle
	rank   *mpi.Rank // nil when opened without a world (independent only)

	view    View
	hasView bool
	ptr     int64 // individual file pointer, in view bytes

	dsBuf     mem.Addr
	dsBufSize int64

	// tpBuf is the two-phase collective assembly buffer, grown on demand.
	tpBuf     mem.Addr
	tpBufSize int64
	// cbWindow overrides the per-rank collective buffering window
	// (ROMIO's cb_buffer_size); zero means the default.
	cbWindow int64

	// cache, when non-nil, is the client-side page cache the independent
	// list methods route through (see EnableCache).
	cache *pcache.File
}

// SetCollectiveBuffer overrides the per-rank two-phase window size, like
// setting ROMIO's cb_buffer_size hint. Zero restores the default.
func (f *File) SetCollectiveBuffer(n int64) { f.cbWindow = n }

// Open opens (creating if necessary) the named PVFS file for the client.
// rank may be nil if collective operations will not be used.
func Open(p *sim.Proc, client *pvfs.Client, rank *mpi.Rank, name string) *File {
	f := &File{
		client:    client,
		fh:        client.Open(p, name),
		rank:      rank,
		dsBufSize: DefaultDSBufferSize,
	}
	f.dsBuf = client.Space().Malloc(f.dsBufSize)
	return f
}

// Handle returns the underlying PVFS file handle.
func (f *File) Handle() *pvfs.FileHandle { return f.fh }

// SetView installs an MPI-IO file view and resets the individual file
// pointer, as MPI_File_set_view does.
func (f *File) SetView(v View) {
	f.view = v
	f.hasView = true
	f.ptr = 0
}

// ViewRegions maps [viewOff, viewOff+n) of the current view to absolute
// file regions; without a view the mapping is the identity.
func (f *File) ViewRegions(viewOff, n int64) ([]pvfs.OffLen, error) {
	if !f.hasView {
		return []pvfs.OffLen{{Off: viewOff, Len: n}}, nil
	}
	return f.view.Map(viewOff, n)
}

// WriteView writes n bytes from the memory segments through the view at
// view offset viewOff using the given method.
func (f *File) WriteView(p *sim.Proc, method Method, memSegs []ib.SGE, viewOff, n int64) error {
	accs, err := f.ViewRegions(viewOff, n)
	if err != nil {
		return err
	}
	return f.Write(p, method, memSegs, accs)
}

// ReadView reads n bytes through the view into the memory segments.
func (f *File) ReadView(p *sim.Proc, method Method, memSegs []ib.SGE, viewOff, n int64) error {
	accs, err := f.ViewRegions(viewOff, n)
	if err != nil {
		return err
	}
	return f.Read(p, method, memSegs, accs)
}

// EnableCache attaches a client-side page cache (write-behind, strided
// read-ahead, lease coherence — see internal/pcache) and returns it. The
// independent per-rank methods (MultipleIO, ListIO, ListIOADS) route
// through the cache; DataSieving reads and Collective operations keep
// their own buffering strategies and go direct, after flushing the cache
// so they never observe stale write-behind state.
func (f *File) EnableCache(cfg pcache.Config) *pcache.File {
	if f.cache == nil {
		f.cache = pcache.New(f.fh, cfg)
	}
	return f.cache
}

// Cache returns the attached page cache, nil when caching is off.
func (f *File) Cache() *pcache.File { return f.cache }

// DisableCache flushes and detaches the page cache.
func (f *File) DisableCache(p *sim.Proc) error {
	if f.cache == nil {
		return nil
	}
	err := f.cache.Close(p)
	f.cache = nil
	return err
}

// drainCache flushes write-behind state ahead of a path that bypasses the
// cache; a clean (or absent) cache makes this a no-op.
func (f *File) drainCache(p *sim.Proc) error {
	if f.cache == nil {
		return nil
	}
	return f.cache.Flush(p)
}

// Sync flushes cached dirty pages (if caching is on) and then the file on
// all servers.
func (f *File) Sync(p *sim.Proc) {
	if f.cache != nil {
		sim.Must(f.cache.Sync(p))
		return
	}
	f.fh.Sync(p)
}

// startAccess mints the request-scoped root span for one MPI-IO access.
// The request ID is assigned here — the topmost layer that knows the
// access method — so every PVFS attempt, wire hop, sieve window, and
// disk transfer the access triggers shares one ID in the trace. Returns
// the span and the process's previous context for the caller to restore.
func (f *File) startAccess(p *sim.Proc, method Method, dir string, memSegs []ib.SGE) (trace.Span, uint64) {
	tr := f.client.Cluster().Spans
	prev := p.TraceCtx()
	if tr == nil {
		return trace.Span{}, prev
	}
	sp := tr.NewRequest(p.Now(), f.client.Node().Name, fmt.Sprintf("%s-%s", method, dir))
	sp.SetBytes(ib.TotalLen(memSegs))
	sp.Annotate("segs=%d", len(memSegs))
	p.SetTraceCtx(uint64(sp.Ctx()))
	return sp, prev
}

// Write performs a noncontiguous write with the given method. memSegs and
// fileAccs are flattened streams describing the same bytes in order.
func (f *File) Write(p *sim.Proc, method Method, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	sp, prev := f.startAccess(p, method, "write", memSegs)
	err := f.writeMethod(p, method, memSegs, fileAccs)
	p.SetTraceCtx(prev)
	sp.EndErr(p.Now(), err)
	return err
}

func (f *File) writeMethod(p *sim.Proc, method Method, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	switch method {
	case MultipleIO, DataSieving:
		// ROMIO data sieving cannot write-sieve over PVFS (no client
		// locking): identical to Multiple I/O, as the paper notes.
		return f.multiple(p, memSegs, fileAccs, true)
	case ListIO:
		if f.cache != nil {
			return f.cache.WriteList(p, memSegs, fileAccs)
		}
		return f.fh.WriteList(p, memSegs, fileAccs, pvfs.OpOptions{Sieve: sieve.Never})
	case ListIOADS:
		if f.cache != nil {
			return f.cache.WriteList(p, memSegs, fileAccs)
		}
		return f.fh.WriteList(p, memSegs, fileAccs, pvfs.OpOptions{Sieve: sieve.Auto})
	case Collective:
		if err := f.drainCache(p); err != nil {
			return err
		}
		return f.collectiveWrite(p, memSegs, fileAccs)
	}
	return fmt.Errorf("mpiio: unknown method %d", method)
}

// Read performs a noncontiguous read with the given method.
func (f *File) Read(p *sim.Proc, method Method, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	sp, prev := f.startAccess(p, method, "read", memSegs)
	err := f.readMethod(p, method, memSegs, fileAccs)
	p.SetTraceCtx(prev)
	sp.EndErr(p.Now(), err)
	return err
}

func (f *File) readMethod(p *sim.Proc, method Method, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	switch method {
	case MultipleIO:
		return f.multiple(p, memSegs, fileAccs, false)
	case DataSieving:
		if err := f.drainCache(p); err != nil {
			return err
		}
		return f.dsRead(p, memSegs, fileAccs)
	case ListIO:
		if f.cache != nil {
			return f.cache.ReadList(p, memSegs, fileAccs)
		}
		return f.fh.ReadList(p, memSegs, fileAccs, pvfs.OpOptions{Sieve: sieve.Never})
	case ListIOADS:
		if f.cache != nil {
			return f.cache.ReadList(p, memSegs, fileAccs)
		}
		return f.fh.ReadList(p, memSegs, fileAccs, pvfs.OpOptions{Sieve: sieve.Auto})
	case Collective:
		if err := f.drainCache(p); err != nil {
			return err
		}
		return f.collectiveRead(p, memSegs, fileAccs)
	}
	return fmt.Errorf("mpiio: unknown method %d", method)
}

// forEachPiece walks the two aligned streams and yields, for every file
// region, the memory fragments carrying its bytes.
func forEachPiece(memSegs []ib.SGE, fileAccs []pvfs.OffLen, fn func(acc pvfs.OffLen, segs []ib.SGE) error) error {
	if ib.TotalLen(memSegs) != pvfs.TotalOffLen(fileAccs) {
		return fmt.Errorf("mpiio: memory bytes (%d) != file bytes (%d)",
			ib.TotalLen(memSegs), pvfs.TotalOffLen(fileAccs))
	}
	si := 0
	var so int64
	for _, acc := range fileAccs {
		var frag []ib.SGE
		need := acc.Len
		for need > 0 {
			seg := memSegs[si]
			take := seg.Len - so
			if take > need {
				take = need
			}
			frag = append(frag, ib.SGE{Addr: seg.Addr + mem.Addr(so), Len: take})
			so += take
			if so == seg.Len {
				si, so = si+1, 0
			}
			need -= take
		}
		if err := fn(acc, frag); err != nil {
			return err
		}
	}
	return nil
}

// multiple issues one contiguous PVFS operation per file region — or, with
// a cache attached, one cache operation per region: exactly the Unix-style
// call stream a client buffer cache is built to absorb.
func (f *File) multiple(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen, write bool) error {
	return forEachPiece(memSegs, fileAccs, func(acc pvfs.OffLen, segs []ib.SGE) error {
		if f.cache != nil {
			if write {
				return f.cache.WriteList(p, segs, []pvfs.OffLen{acc})
			}
			return f.cache.ReadList(p, segs, []pvfs.OffLen{acc})
		}
		opts := pvfs.OpOptions{Sieve: sieve.Never}
		if write {
			return f.fh.WriteList(p, segs, []pvfs.OffLen{acc}, opts)
		}
		return f.fh.ReadList(p, segs, []pvfs.OffLen{acc}, opts)
	})
}

// dsRead is ROMIO client-side data sieving: read the full extent in windows
// through ordinary contiguous PVFS reads, then extract the wanted pieces.
func (f *File) dsRead(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	if len(fileAccs) == 0 {
		return nil
	}
	if ib.TotalLen(memSegs) != pvfs.TotalOffLen(fileAccs) {
		return fmt.Errorf("mpiio: memory bytes != file bytes")
	}
	lo, hi := extentOf(fileAccs)
	cfgIB := f.client.Cluster().Cfg.IB
	for winLo := lo; winLo < hi; winLo += f.dsBufSize {
		winHi := winLo + f.dsBufSize
		if winHi > hi {
			winHi = hi
		}
		if err := f.fh.Read(p, f.dsBuf, winHi-winLo, winLo, pvfs.OpOptions{Sieve: sieve.Never}); err != nil {
			return err
		}
		// Extract every piece that overlaps this window.
		err := forEachPiece(memSegs, fileAccs, func(acc pvfs.OffLen, segs []ib.SGE) error {
			aLo, aHi := acc.Off, acc.End()
			if aHi <= winLo || aLo >= winHi {
				return nil
			}
			cut := func(x int64) int64 { // clamp into window
				if x < winLo {
					return winLo
				}
				if x > winHi {
					return winHi
				}
				return x
			}
			pLo, pHi := cut(aLo), cut(aHi)
			data, err := f.client.Space().Read(f.dsBuf+mem.Addr(pLo-winLo), pHi-pLo)
			if err != nil {
				return err
			}
			p.Sleep(cfgIB.MemcpyTime(pHi - pLo))
			// Walk this access's memory fragments, skipping bytes
			// before pLo.
			skip := pLo - aLo
			for _, s := range segs {
				if len(data) == 0 {
					break
				}
				if skip >= s.Len {
					skip -= s.Len
					continue
				}
				n := s.Len - skip
				if n > int64(len(data)) {
					n = int64(len(data))
				}
				if err := f.client.Space().Write(s.Addr+mem.Addr(skip), data[:n]); err != nil {
					return err
				}
				data = data[n:]
				skip = 0
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func extentOf(accs []pvfs.OffLen) (lo, hi int64) {
	lo, hi = accs[0].Off, accs[0].End()
	for _, a := range accs[1:] {
		if a.Off < lo {
			lo = a.Off
		}
		if a.End() > hi {
			hi = a.End()
		}
	}
	return
}
