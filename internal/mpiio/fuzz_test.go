package mpiio

import (
	"testing"
)

// checkFlat fails unless f is in normalized form: ascending, positive-length
// regions with no two adjacent (adjacent regions must have been merged).
func checkFlat(t *testing.T, label string, f Flat) {
	t.Helper()
	for i, r := range f {
		if r.Len <= 0 {
			t.Fatalf("%s: region %d has nonpositive length: %v", label, i, r)
		}
		if i > 0 && r.Off <= f[i-1].End() {
			t.Fatalf("%s: regions %d,%d out of order or unmerged: %v, %v",
				label, i-1, i, f[i-1], r)
		}
	}
}

func clampPos(v, mod int64) int64 {
	v %= mod
	if v < 0 {
		v += mod
	}
	return v + 1
}

// FuzzFlattenDatatype drives the datatype constructors and View.Map over
// arbitrary shapes and checks the flattening invariants: byte counts are
// preserved, output is always normalized, and Normalize is idempotent.
// Seeds mirror the table-driven cases in mpiio_test.go.
func FuzzFlattenDatatype(f *testing.F) {
	f.Add(int64(4), int64(10), int64(20), int64(0), int64(16))  // strided vector
	f.Add(int64(4), int64(10), int64(10), int64(5), int64(20))  // contiguous merge
	f.Add(int64(1), int64(1), int64(1), int64(0), int64(1))     // degenerate
	f.Add(int64(8), int64(3), int64(100), int64(7), int64(200)) // sparse
	f.Fuzz(func(t *testing.T, count, blocklen, stride, mapOff, mapN int64) {
		count = clampPos(count, 64)
		blocklen = clampPos(blocklen, 1024)
		// Keep blocks non-overlapping so byte totals are exact.
		stride = blocklen + clampPos(stride, 512) - 1

		flat := Vector(count, blocklen, stride)
		checkFlat(t, "Vector", flat)
		total := flat.Total()
		if total != count*blocklen {
			t.Fatalf("Vector(%d,%d,%d).Total() = %d, want %d",
				count, blocklen, stride, total, count*blocklen)
		}
		again := flat.Normalize()
		if len(again) != len(flat) {
			t.Fatalf("Normalize not idempotent: %d regions became %d", len(flat), len(again))
		}

		// The same shape built through Indexed must flatten identically.
		offs := make([]int64, count)
		lens := make([]int64, count)
		for i := int64(0); i < count; i++ {
			offs[i] = i * stride
			lens[i] = blocklen
		}
		idx, err := Indexed(offs, lens)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != len(flat) || idx.Total() != total {
			t.Fatalf("Indexed disagrees with Vector: %v vs %v", idx, flat)
		}

		// Mapping any window through a view built on the pattern must yield
		// exactly the requested bytes, in normalized form.
		v := View{
			Disp:    clampPos(mapOff, 1<<20) - 1,
			Pattern: flat,
			Extent:  flat.Span() + stride,
		}
		off := clampPos(mapOff, 2*total) - 1
		n := clampPos(mapN, 3*total)
		regions, err := v.Map(off, n)
		if err != nil {
			t.Fatal(err)
		}
		checkFlat(t, "View.Map", regions)
		if regions.Total() != n {
			t.Fatalf("Map(%d, %d) selected %d bytes", off, n, regions.Total())
		}
		for _, r := range regions {
			if r.Off < v.Disp {
				t.Fatalf("Map produced region %v before the displacement %d", r, v.Disp)
			}
		}
	})
}
