package mpiio

import (
	"fmt"

	"pvfsib/internal/ib"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// Whence values for Seek, mirroring MPI_SEEK_SET/CUR/END.
const (
	SeekSet = iota
	SeekCur
	SeekEnd
)

// Seek positions the individual file pointer, in view coordinates (bytes of
// the view's selected data, like MPI_File_seek with an etype of MPI_BYTE).
// SeekEnd is relative to the file's logical size mapped into the view.
func (f *File) Seek(p *sim.Proc, offset int64, whence int) (int64, error) {
	switch whence {
	case SeekSet:
		f.ptr = offset
	case SeekCur:
		f.ptr += offset
	case SeekEnd:
		f.ptr = f.viewSize(p) + offset
	default:
		return 0, fmt.Errorf("mpiio: bad whence %d", whence)
	}
	if f.ptr < 0 {
		f.ptr = 0
	}
	return f.ptr, nil
}

// Tell returns the individual file pointer.
func (f *File) Tell() int64 { return f.ptr }

// viewSize maps the file's logical size into view coordinates: the number
// of view-selected bytes before EOF.
func (f *File) viewSize(p *sim.Proc) int64 {
	size := f.fh.Stat(p)
	if !f.hasView {
		return size
	}
	v := f.view
	if size <= v.Disp {
		return 0
	}
	span := size - v.Disp
	per := v.Pattern.Total()
	tiles := span / v.Extent
	n := tiles * per
	// Partial last tile: count selected bytes before the boundary.
	rem := span % v.Extent
	for _, r := range v.Pattern {
		if r.Off >= rem {
			break
		}
		take := r.Len
		if r.Off+take > rem {
			take = rem - r.Off
		}
		n += take
	}
	return n
}

// GetSize returns the file's logical size in bytes (MPI_File_get_size).
func (f *File) GetSize(p *sim.Proc) int64 { return f.fh.Stat(p) }

// ReadNext reads n view bytes at the individual file pointer and advances
// it (MPI_File_read with the individual pointer).
func (f *File) ReadNext(p *sim.Proc, method Method, memSegs []ib.SGE, n int64) error {
	if err := f.ReadView(p, method, memSegs, f.ptr, n); err != nil {
		return err
	}
	f.ptr += n
	return nil
}

// WriteNext writes n view bytes at the individual file pointer and advances
// it (MPI_File_write with the individual pointer).
func (f *File) WriteNext(p *sim.Proc, method Method, memSegs []ib.SGE, n int64) error {
	if err := f.WriteView(p, method, memSegs, f.ptr, n); err != nil {
		return err
	}
	f.ptr += n
	return nil
}

// Delete removes the named file cluster-wide (MPI_File_delete).
func Delete(p *sim.Proc, client *pvfs.Client, name string) {
	client.Remove(p, name)
}
