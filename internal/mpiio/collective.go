package mpiio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"pvfsib/internal/ib"
	"pvfsib/internal/mem"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sieve"
	"pvfsib/internal/sim"
)

// Two-phase collective I/O: the file's global extent is partitioned evenly
// among the ranks ("file domains"); in the exchange phase each rank ships
// its pieces to the domain owners over the compute-node network, and in the
// I/O phase every owner performs one large contiguous PVFS access for its
// domain. This turns many small noncontiguous server accesses into a few
// big ones at the cost of inter-client communication — the tradeoff Table 6
// quantifies (row "communication between the compute nodes").

// ErrNoWorld is returned for collective calls on a file opened without a
// rank.
var ErrNoWorld = errors.New("mpiio: collective operation on a file opened without an MPI rank")

// pieceRef is one file piece owned by a given domain, with the local memory
// fragments that carry its bytes.
type pieceRef struct {
	off, length int64
	frags       []ib.SGE
}

// domains splits [lo, hi) into n even shares.
func domains(lo, hi int64, n int) []pvfs.OffLen {
	out := make([]pvfs.OffLen, n)
	if hi <= lo {
		return out
	}
	share := (hi - lo + int64(n) - 1) / int64(n)
	for i := range out {
		dLo := lo + int64(i)*share
		dHi := dLo + share
		if dHi > hi {
			dHi = hi
		}
		if dHi > dLo {
			out[i] = pvfs.OffLen{Off: dLo, Len: dHi - dLo}
		}
	}
	return out
}

// splitByOwner cuts the aligned streams at domain boundaries.
func splitByOwner(memSegs []ib.SGE, fileAccs []pvfs.OffLen, doms []pvfs.OffLen) ([][]pieceRef, error) {
	owned := make([][]pieceRef, len(doms))
	ownerOf := func(off int64) int {
		for i, d := range doms {
			if d.Len > 0 && off >= d.Off && off < d.End() {
				return i
			}
		}
		return -1
	}
	err := forEachPiece(memSegs, fileAccs, func(acc pvfs.OffLen, segs []ib.SGE) error {
		// A piece may straddle domain boundaries; cut it.
		si, so := 0, int64(0)
		off := acc.Off
		remaining := acc.Len
		for remaining > 0 {
			owner := ownerOf(off)
			if owner < 0 {
				return fmt.Errorf("mpiio: offset %d outside global extent", off)
			}
			n := doms[owner].End() - off
			if n > remaining {
				n = remaining
			}
			var frags []ib.SGE
			need := n
			for need > 0 {
				seg := segs[si]
				take := seg.Len - so
				if take > need {
					take = need
				}
				frags = append(frags, ib.SGE{Addr: seg.Addr + mem.Addr(so), Len: take})
				so += take
				if so == seg.Len {
					si, so = si+1, 0
				}
				need -= take
			}
			owned[owner] = append(owned[owner], pieceRef{off: off, length: n, frags: frags})
			off += n
			remaining -= n
		}
		return nil
	})
	return owned, err
}

// exchangeExtents allgathers each rank's (lo,hi) and returns the global
// extent; ranks with no accesses contribute an empty sentinel.
func (f *File) exchangeExtents(p *sim.Proc, fileAccs []pvfs.OffLen) (int64, int64) {
	lo, hi := int64(math.MaxInt64), int64(-1)
	if len(fileAccs) > 0 {
		lo, hi = extentOf(fileAccs)
	}
	enc := make([]byte, 16)
	binary.LittleEndian.PutUint64(enc, uint64(lo))
	binary.LittleEndian.PutUint64(enc[8:], uint64(hi))
	all := f.rank.Allgather(p, enc)
	glo, ghi := int64(math.MaxInt64), int64(-1)
	for _, e := range all {
		l := int64(binary.LittleEndian.Uint64(e))
		h := int64(binary.LittleEndian.Uint64(e[8:]))
		if h < 0 {
			continue
		}
		if l < glo {
			glo = l
		}
		if h > ghi {
			ghi = h
		}
	}
	return glo, ghi
}

// ensureTPBuf sizes the two-phase assembly buffer to at least n bytes.
func (f *File) ensureTPBuf(n int64) mem.Addr {
	if f.tpBufSize < n {
		f.tpBuf = f.client.Space().Malloc(n)
		f.tpBufSize = n
	}
	return f.tpBuf
}

// clipToExtent cuts the aligned streams down to the pieces intersecting
// [lo, hi), preserving byte order.
func clipToExtent(memSegs []ib.SGE, fileAccs []pvfs.OffLen, lo, hi int64) ([]ib.SGE, []pvfs.OffLen, error) {
	var outSegs []ib.SGE
	var outAccs []pvfs.OffLen
	err := forEachPiece(memSegs, fileAccs, func(acc pvfs.OffLen, segs []ib.SGE) error {
		// Cut the piece against the window.
		cutLo, cutHi := acc.Off, acc.End()
		if cutLo < lo {
			cutLo = lo
		}
		if cutHi > hi {
			cutHi = hi
		}
		if cutHi <= cutLo {
			return nil
		}
		outAccs = append(outAccs, pvfs.OffLen{Off: cutLo, Len: cutHi - cutLo})
		skip := cutLo - acc.Off
		need := cutHi - cutLo
		for _, s := range segs {
			if need <= 0 {
				break
			}
			if skip >= s.Len {
				skip -= s.Len
				continue
			}
			take := s.Len - skip
			if take > need {
				take = need
			}
			outSegs = append(outSegs, ib.SGE{Addr: s.Addr + mem.Addr(skip), Len: take})
			need -= take
			skip = 0
		}
		return nil
	})
	return outSegs, outAccs, err
}

// collectiveWindow is each rank's share of one two-phase round (ROMIO's
// cb_buffer_size); a round covers Size() times this many bytes.
const collectiveWindow = 4 << 20

func (f *File) collectiveWrite(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	if f.rank == nil {
		return ErrNoWorld
	}
	glo, ghi := f.exchangeExtents(p, fileAccs)
	if ghi <= glo {
		f.rank.Barrier(p)
		return nil
	}
	// Process the global extent in rounds so each rank's assembly buffer
	// stays bounded, like ROMIO's collective buffering.
	window := f.cbWindow
	if window <= 0 {
		window = collectiveWindow
	}
	round := window * int64(f.rank.Size())
	for lo := glo; lo < ghi; lo += round {
		hi := lo + round
		if hi > ghi {
			hi = ghi
		}
		segs, accs, err := clipToExtent(memSegs, fileAccs, lo, hi)
		if err != nil {
			return err
		}
		if err := f.collectiveWriteRound(p, segs, accs, lo, hi); err != nil {
			return err
		}
	}
	f.rank.Barrier(p)
	return nil
}

func (f *File) collectiveWriteRound(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen, glo, ghi int64) error {
	doms := domains(glo, ghi, f.rank.Size())
	owned, err := splitByOwner(memSegs, fileAccs, doms)
	if err != nil {
		return err
	}
	cfgIB := f.client.Cluster().Cfg.IB

	// Exchange phase: encode (off, len, data) pieces per owner.
	parts := make([][]byte, f.rank.Size())
	var packed int64
	for owner, pieces := range owned {
		var buf []byte
		for _, pc := range pieces {
			var hdr [16]byte
			binary.LittleEndian.PutUint64(hdr[:], uint64(pc.off))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(pc.length))
			buf = append(buf, hdr[:]...)
			for _, s := range pc.frags {
				b, err := f.client.Space().Read(s.Addr, s.Len)
				if err != nil {
					return err
				}
				buf = append(buf, b...)
			}
			packed += pc.length
		}
		parts[owner] = buf
	}
	p.Sleep(cfgIB.MemcpyTime(packed))
	got := f.rank.Alltoallv(p, parts)

	// I/O phase: assemble my domain and write it contiguously.
	type span struct{ lo, hi int64 }
	var pieces []span
	var raw []struct {
		off  int64
		data []byte
	}
	for _, msg := range got {
		for len(msg) > 0 {
			off := int64(binary.LittleEndian.Uint64(msg))
			length := int64(binary.LittleEndian.Uint64(msg[8:]))
			data := msg[16 : 16+length]
			msg = msg[16+length:]
			pieces = append(pieces, span{off, off + length})
			raw = append(raw, struct {
				off  int64
				data []byte
			}{off, data})
		}
	}
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].lo < pieces[j].lo })
	wLo, wHi := pieces[0].lo, pieces[0].hi
	dense := true
	for _, s := range pieces[1:] {
		if s.lo > wHi {
			dense = false
		}
		if s.hi > wHi {
			wHi = s.hi
		}
	}
	buf := f.ensureTPBuf(wHi - wLo)
	if !dense {
		// Holes inside the write region: read-modify-write.
		if err := f.fh.Read(p, buf, wHi-wLo, wLo, pvfs.OpOptions{Sieve: sieve.Never}); err != nil {
			return err
		}
	}
	var assembled int64
	for _, pc := range raw {
		if err := f.client.Space().Write(buf+mem.Addr(pc.off-wLo), pc.data); err != nil {
			return err
		}
		assembled += int64(len(pc.data))
	}
	p.Sleep(cfgIB.MemcpyTime(assembled))
	return f.fh.Write(p, buf, wHi-wLo, wLo, pvfs.OpOptions{Sieve: sieve.Never})
}

func (f *File) collectiveRead(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen) error {
	if f.rank == nil {
		return ErrNoWorld
	}
	glo, ghi := f.exchangeExtents(p, fileAccs)
	if ghi <= glo {
		f.rank.Barrier(p)
		return nil
	}
	window := f.cbWindow
	if window <= 0 {
		window = collectiveWindow
	}
	round := window * int64(f.rank.Size())
	for lo := glo; lo < ghi; lo += round {
		hi := lo + round
		if hi > ghi {
			hi = ghi
		}
		segs, accs, err := clipToExtent(memSegs, fileAccs, lo, hi)
		if err != nil {
			return err
		}
		if err := f.collectiveReadRound(p, segs, accs, lo, hi); err != nil {
			return err
		}
	}
	f.rank.Barrier(p)
	return nil
}

func (f *File) collectiveReadRound(p *sim.Proc, memSegs []ib.SGE, fileAccs []pvfs.OffLen, glo, ghi int64) error {
	doms := domains(glo, ghi, f.rank.Size())
	owned, err := splitByOwner(memSegs, fileAccs, doms)
	if err != nil {
		return err
	}
	cfgIB := f.client.Cluster().Cfg.IB

	// Phase 1: ship request descriptors to the owners.
	reqs := make([][]byte, f.rank.Size())
	for owner, pieces := range owned {
		buf := make([]byte, 0, 16*len(pieces))
		for _, pc := range pieces {
			var hdr [16]byte
			binary.LittleEndian.PutUint64(hdr[:], uint64(pc.off))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(pc.length))
			buf = append(buf, hdr[:]...)
		}
		reqs[owner] = buf
	}
	gotReqs := f.rank.Alltoallv(p, reqs)

	// I/O phase: read the requested span of my domain once, then carve
	// out each requester's pieces.
	type reqPiece struct{ off, length int64 }
	perSrc := make([][]reqPiece, len(gotReqs))
	rLo, rHi := int64(math.MaxInt64), int64(-1)
	for src, msg := range gotReqs {
		for len(msg) > 0 {
			off := int64(binary.LittleEndian.Uint64(msg))
			length := int64(binary.LittleEndian.Uint64(msg[8:]))
			msg = msg[16:]
			perSrc[src] = append(perSrc[src], reqPiece{off, length})
			if off < rLo {
				rLo = off
			}
			if off+length > rHi {
				rHi = off + length
			}
		}
	}
	replies := make([][]byte, f.rank.Size())
	if rHi > rLo {
		buf := f.ensureTPBuf(rHi - rLo)
		if err := f.fh.Read(p, buf, rHi-rLo, rLo, pvfs.OpOptions{Sieve: sieve.Never}); err != nil {
			return err
		}
		var carved int64
		for src, pieces := range perSrc {
			var out []byte
			for _, pc := range pieces {
				b, err := f.client.Space().Read(buf+mem.Addr(pc.off-rLo), pc.length)
				if err != nil {
					return err
				}
				out = append(out, b...)
				carved += pc.length
			}
			replies[src] = out
		}
		p.Sleep(cfgIB.MemcpyTime(carved))
	}
	gotData := f.rank.Alltoallv(p, replies)

	// Scatter the replies into my memory fragments, in piece order.
	var scattered int64
	for owner, pieces := range owned {
		data := gotData[owner]
		for _, pc := range pieces {
			for _, s := range pc.frags {
				if err := f.client.Space().Write(s.Addr, data[:s.Len]); err != nil {
					return err
				}
				data = data[s.Len:]
				scattered += s.Len
			}
		}
	}
	p.Sleep(cfgIB.MemcpyTime(scattered))
	return nil
}
