package mpiio

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"pvfsib/internal/ib"
	"pvfsib/internal/mpi"
	"pvfsib/internal/pvfs"
	"pvfsib/internal/sim"
)

// fixture builds a cluster plus an MPI world with rank i on client i.
func fixture(t *testing.T, nServers, nRanks int) (*pvfs.Cluster, *mpi.World) {
	t.Helper()
	c := pvfs.NewCluster(sim.NewEngine(), pvfs.DefaultConfig(), nServers, nRanks)
	var hcas []*ib.HCA
	for _, cl := range c.Clients {
		hcas = append(hcas, cl.HCA())
	}
	w := mpi.NewWorld(c.Eng, hcas, func(rank int, n int64) { c.Clients[rank].Acct().BytesClientClient += n })
	return c, w
}

// spawnRanks runs fn on every rank and drives the cluster.
func spawnRanks(t *testing.T, c *pvfs.Cluster, w *mpi.World, fn func(p *sim.Proc, rank *mpi.Rank, client *pvfs.Client)) {
	t.Helper()
	for i := 0; i < w.Size(); i++ {
		r, cl := w.Rank(i), c.Clients[i]
		c.Eng.Go(fmt.Sprintf("rank%d", i), func(p *sim.Proc) { fn(p, r, cl) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorFlatten(t *testing.T) {
	f := Vector(3, 10, 100)
	want := Flat{{Off: 0, Len: 10}, {Off: 100, Len: 10}, {Off: 200, Len: 10}}
	if len(f) != len(want) {
		t.Fatalf("got %v", f)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("f[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	if f.Total() != 30 || f.Span() != 210 {
		t.Errorf("Total=%d Span=%d", f.Total(), f.Span())
	}
}

func TestVectorMergesWhenStrideEqualsBlock(t *testing.T) {
	f := Vector(4, 10, 10)
	if len(f) != 1 || f[0].Len != 40 {
		t.Errorf("contiguous vector should merge: %v", f)
	}
}

func TestIndexedNormalizes(t *testing.T) {
	f, err := Indexed([]int64{100, 0, 50}, []int64{10, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	// 0..50, 50..100 and 100..110 are all adjacent: one region.
	if len(f) != 1 || f[0] != (pvfs.OffLen{Off: 0, Len: 110}) {
		t.Errorf("got %v", f)
	}
	g, err := Indexed([]int64{0, 60}, []int64{50, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Errorf("disjoint blocks merged: %v", g)
	}
	if _, err := Indexed([]int64{0, 60}, []int64{50}); err == nil {
		t.Error("mismatched slice lengths should error")
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x4 ints, take the 2x2 block at (1,1).
	f, err := Subarray2D(4, 4, 2, 2, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Flat{{Off: (1*4 + 1) * 4, Len: 8}, {Off: (2*4 + 1) * 4, Len: 8}}
	if len(f) != 2 || f[0] != want[0] || f[1] != want[1] {
		t.Errorf("got %v, want %v", f, want)
	}
	if _, err := Subarray2D(4, 4, 2, 2, 3, 1, 4); err == nil {
		t.Error("out-of-bounds subarray should error")
	}
}

func TestSubarray2DFullWidthMerges(t *testing.T) {
	f, err := Subarray2D(8, 8, 2, 8, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || f[0] != (pvfs.OffLen{Off: 16, Len: 16}) {
		t.Errorf("full-width rows should merge: %v", f)
	}
}

func TestSubarray3D(t *testing.T) {
	f, err := Subarray3D([3]int64{4, 4, 4}, [3]int64{2, 2, 4}, [3]int64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Subarray3D([3]int64{4, 4, 4}, [3]int64{2, 2, 4}, [3]int64{0, 3, 0}, 1); err == nil {
		t.Error("out-of-bounds 3-D subarray should error")
	}
	// Full fastest dimension: rows merge along j for fixed i? Row (i,j)
	// occupies offsets ((i*4+j)*4, +4); with j=0,1 adjacent they merge.
	if f.Total() != 16 {
		t.Errorf("Total = %d, want 16", f.Total())
	}
	if len(f) != 2 { // two i-planes of 8 contiguous bytes each
		t.Errorf("got %d regions: %v", len(f), f)
	}
}

func TestRepeatAndShift(t *testing.T) {
	f := Contig(10).Repeat(3, 100)
	want := Flat{{Off: 0, Len: 10}, {Off: 100, Len: 10}, {Off: 200, Len: 10}}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("got %v", f)
		}
	}
	g := f.Shift(5)
	if g[0].Off != 5 || g[2].Off != 205 {
		t.Errorf("Shift: %v", g)
	}
}

func TestViewMap(t *testing.T) {
	// View: every other 10-byte block, displacement 1000.
	v := View{Disp: 1000, Pattern: Flat{{Off: 0, Len: 10}}, Extent: 20}
	got, err := v.Map(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	// View bytes 5..25 = last 5 of tile 0, all of tile 1, first 5 of tile 2.
	want := Flat{{Off: 1005, Len: 5}, {Off: 1020, Len: 10}, {Off: 1040, Len: 5}}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestViewMapZero(t *testing.T) {
	v := View{Pattern: Contig(8), Extent: 8}
	if f, err := v.Map(0, 0); f != nil || err != nil {
		t.Errorf("zero-length map should be nil, nil; got %v, %v", f, err)
	}
	empty := View{Extent: 8}
	if _, err := empty.Map(0, 8); err == nil {
		t.Error("mapping through an empty pattern should error")
	}
}

func TestForEachPieceAlignment(t *testing.T) {
	segs := []ib.SGE{{Addr: 0x1000, Len: 30}, {Addr: 0x2000, Len: 70}}
	accs := []pvfs.OffLen{{Off: 0, Len: 50}, {Off: 100, Len: 50}}
	var pieces [][]ib.SGE
	err := forEachPiece(segs, accs, func(acc pvfs.OffLen, frag []ib.SGE) error {
		pieces = append(pieces, frag)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	// First file region: 30 bytes of seg0 + 20 of seg1.
	if len(pieces[0]) != 2 || pieces[0][0].Len != 30 || pieces[0][1].Len != 20 {
		t.Errorf("piece 0 = %v", pieces[0])
	}
	if len(pieces[1]) != 1 || pieces[1][0].Addr != 0x2000+20 || pieces[1][0].Len != 50 {
		t.Errorf("piece 1 = %v", pieces[1])
	}
}

// blockColumn builds rank r's accesses for an n x n byte matrix distributed
// in block columns over size ranks, plus a matching contiguous memory
// buffer filled with a rank-specific pattern.
func blockColumn(cl *pvfs.Client, r, size int, n int64) ([]ib.SGE, []pvfs.OffLen, []byte) {
	colw := n / int64(size)
	accs := make([]pvfs.OffLen, 0, n)
	for row := int64(0); row < n; row++ {
		accs = append(accs, pvfs.OffLen{Off: row*n + int64(r)*colw, Len: colw})
	}
	total := n * colw
	addr := cl.Space().Malloc(total)
	data := make([]byte, total)
	for i := range data {
		data[i] = byte(int(r)*37 + i)
	}
	if err := cl.Space().Write(addr, data); err != nil {
		panic(err)
	}
	return []ib.SGE{{Addr: addr, Len: total}}, accs, data
}

func testMethodRoundTrip(t *testing.T, write, read Method) {
	c, w := fixture(t, 4, 4)
	const n = 512 // 512x512 bytes, 4 block columns of 128
	models := make([][]byte, 4)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "mat")
		segs, accs, data := blockColumn(cl, rank.ID(), 4, n)
		models[rank.ID()] = data
		if err := f.Write(p, write, segs, accs); err != nil {
			t.Errorf("rank %d write: %v", rank.ID(), err)
			return
		}
		rank.Barrier(p)
		// Read back my own column with the read method into fresh memory.
		total := int64(len(data))
		dst := cl.Space().Malloc(total)
		if err := f.Read(p, read, []ib.SGE{{Addr: dst, Len: total}}, accs); err != nil {
			t.Errorf("rank %d read: %v", rank.ID(), err)
			return
		}
		got, _ := cl.Space().Read(dst, total)
		if !bytes.Equal(got, data) {
			t.Errorf("rank %d: %s-write/%s-read mismatch", rank.ID(), write, read)
		}
	})
}

func TestMethodMatrixRoundTrips(t *testing.T) {
	methods := []Method{MultipleIO, DataSieving, ListIO, ListIOADS, Collective}
	for _, wm := range methods {
		for _, rm := range methods {
			wm, rm := wm, rm
			t.Run(fmt.Sprintf("%s_%s", wm, rm), func(t *testing.T) {
				testMethodRoundTrip(t, wm, rm)
			})
		}
	}
}

func TestMultipleIOIssuesOneRequestPerPiece(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		addr := cl.Space().Malloc(1 << 20)
		segs := []ib.SGE{{Addr: addr, Len: 10 * 100}}
		var accs []pvfs.OffLen
		for i := 0; i < 10; i++ {
			accs = append(accs, pvfs.OffLen{Off: int64(i) * 5000, Len: 100})
		}
		if err := f.Write(p, MultipleIO, segs, accs); err != nil {
			t.Fatal(err)
		}
		if c.Acct().WriteReqs != 10 {
			t.Errorf("WriteReqs = %d, want 10", c.Acct().WriteReqs)
		}
	})
}

func TestListIOBatchesRequests(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		addr := cl.Space().Malloc(1 << 20)
		segs := []ib.SGE{{Addr: addr, Len: 100 * 100}}
		var accs []pvfs.OffLen
		for i := 0; i < 100; i++ {
			accs = append(accs, pvfs.OffLen{Off: int64(i) * 3000, Len: 100})
		}
		if err := f.Write(p, ListIO, segs, accs); err != nil {
			t.Fatal(err)
		}
		// 100 pieces over 2 servers fit in one request per server.
		if c.Acct().WriteReqs > 2 {
			t.Errorf("WriteReqs = %d, want <=2", c.Acct().WriteReqs)
		}
	})
}

func TestDataSievingWriteFallsBackToMultiple(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		addr := cl.Space().Malloc(1 << 20)
		segs := []ib.SGE{{Addr: addr, Len: 500}}
		accs := []pvfs.OffLen{{Off: 0, Len: 100}, {Off: 1000, Len: 100}, {Off: 2000, Len: 100}, {Off: 3000, Len: 100}, {Off: 4000, Len: 100}}
		if err := f.Write(p, DataSieving, segs, accs); err != nil {
			t.Fatal(err)
		}
		if c.Acct().WriteReqs != 5 {
			t.Errorf("DS write sent %d requests, want 5 (multiple-I/O fallback)", c.Acct().WriteReqs)
		}
	})
}

func TestDataSievingReadFetchesWholeExtent(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		// Prepare 64k of data.
		src := cl.Space().Malloc(64 << 10)
		cl.Space().Write(src, bytes.Repeat([]byte{7}, 64<<10))
		if err := f.fh.Write(p, src, 64<<10, 0, pvfs.OpOptions{}); err != nil {
			t.Fatal(err)
		}
		before := c.Acct().BytesClientServer
		// Want 4 x 100 bytes spread over 64k.
		dst := cl.Space().Malloc(400)
		segs := []ib.SGE{{Addr: dst, Len: 400}}
		accs := []pvfs.OffLen{{Off: 0, Len: 100}, {Off: 20000, Len: 100}, {Off: 40000, Len: 100}, {Off: 60000, Len: 100}}
		if err := f.Read(p, DataSieving, segs, accs); err != nil {
			t.Fatal(err)
		}
		moved := c.Acct().BytesClientServer - before
		if moved < 60000 {
			t.Errorf("DS read moved %d bytes, want the whole ~60k extent", moved)
		}
		got, _ := cl.Space().Read(dst, 400)
		if !bytes.Equal(got, bytes.Repeat([]byte{7}, 400)) {
			t.Error("DS read data mismatch")
		}
	})
}

func TestCollectiveUsesClientClientCommAndFewRequests(t *testing.T) {
	c, w := fixture(t, 4, 4)
	const n = 1024
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "mat")
		segs, accs, _ := blockColumn(cl, rank.ID(), 4, n)
		if err := f.Write(p, Collective, segs, accs); err != nil {
			t.Error(err)
		}
	})
	if c.Acct().BytesClientClient == 0 {
		t.Error("collective write moved no client-client bytes")
	}
	// Each rank writes one contiguous 256k domain, which stripes over the
	// 4 servers: at most 4 request messages per rank — far fewer than the
	// 1024 pieces each rank holds.
	if c.Acct().WriteReqs > 16 {
		t.Errorf("collective write sent %d requests, want <=16", c.Acct().WriteReqs)
	}
}

func TestCollectiveWriteWithHolesRMW(t *testing.T) {
	c, w := fixture(t, 2, 2)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		// Pre-fill 0..4000 with 0xEE.
		if rank.ID() == 0 {
			src := cl.Space().Malloc(4000)
			cl.Space().Write(src, bytes.Repeat([]byte{0xEE}, 4000))
			if err := f.fh.Write(p, src, 4000, 0, pvfs.OpOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		rank.Barrier(p)
		// Sparse collective write: rank r writes 100 bytes at r*2000+500,
		// leaving holes that must survive.
		addr := cl.Space().Malloc(100)
		cl.Space().Write(addr, bytes.Repeat([]byte{byte(rank.ID() + 1)}, 100))
		segs := []ib.SGE{{Addr: addr, Len: 100}}
		accs := []pvfs.OffLen{{Off: int64(rank.ID())*2000 + 500, Len: 100}}
		if err := f.Write(p, Collective, segs, accs); err != nil {
			t.Fatal(err)
		}
		rank.Barrier(p)
		if rank.ID() == 0 {
			dst := cl.Space().Malloc(4000)
			if err := f.fh.Read(p, dst, 4000, 0, pvfs.OpOptions{}); err != nil {
				t.Fatal(err)
			}
			got, _ := cl.Space().Read(dst, 4000)
			for i := 0; i < 4000; i++ {
				want := byte(0xEE)
				if i >= 500 && i < 600 {
					want = 1
				}
				if i >= 2500 && i < 2600 {
					want = 2
				}
				if got[i] != want {
					t.Fatalf("byte %d = %x, want %x (hole clobbered?)", i, got[i], want)
				}
			}
		}
	})
}

func TestViewDrivenIO(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "f")
		// View selecting the first 8 bytes of every 32.
		f.SetView(View{Disp: 0, Pattern: Contig(8), Extent: 32})
		src := cl.Space().Malloc(64)
		want := bytes.Repeat([]byte{0xAB}, 64)
		cl.Space().Write(src, want)
		if err := f.WriteView(p, ListIO, []ib.SGE{{Addr: src, Len: 64}}, 0, 64); err != nil {
			t.Fatal(err)
		}
		dst := cl.Space().Malloc(64)
		if err := f.ReadView(p, ListIOADS, []ib.SGE{{Addr: dst, Len: 64}}, 0, 64); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, 64)
		if !bytes.Equal(got, want) {
			t.Error("view round trip mismatch")
		}
		// The file itself must have holes: byte 8 of the file is unwritten.
		probe := cl.Space().Malloc(32)
		if err := f.fh.Read(p, probe, 32, 0, pvfs.OpOptions{}); err != nil {
			t.Fatal(err)
		}
		raw, _ := cl.Space().Read(probe, 32)
		if !bytes.Equal(raw[:8], want[:8]) || raw[8] != 0 {
			t.Errorf("file layout wrong: % x", raw[:16])
		}
	})
}

func TestCollectiveOnWorldlessFileFails(t *testing.T) {
	c, w := fixture(t, 1, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, nil, "f")
		addr := cl.Space().Malloc(100)
		err := f.Write(p, Collective, []ib.SGE{{Addr: addr, Len: 100}}, []pvfs.OffLen{{Off: 0, Len: 100}})
		if err != ErrNoWorld {
			t.Errorf("err = %v, want ErrNoWorld", err)
		}
	})
}

func TestFilePointerReadWrite(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "ptr")
		// Write three records through the pointer, then seek around.
		rec := func(b byte) []ib.SGE {
			addr := cl.Space().Malloc(100)
			cl.Space().Write(addr, bytes.Repeat([]byte{b}, 100))
			return []ib.SGE{{Addr: addr, Len: 100}}
		}
		for i := byte(1); i <= 3; i++ {
			if err := f.WriteNext(p, ListIO, rec(i), 100); err != nil {
				t.Fatal(err)
			}
		}
		if f.Tell() != 300 {
			t.Errorf("Tell = %d, want 300", f.Tell())
		}
		if got := f.GetSize(p); got != 300 {
			t.Errorf("GetSize = %d, want 300", got)
		}
		// Seek back to record 1 and read it.
		if _, err := f.Seek(p, 100, SeekSet); err != nil {
			t.Fatal(err)
		}
		dst := cl.Space().Malloc(100)
		if err := f.ReadNext(p, ListIOADS, []ib.SGE{{Addr: dst, Len: 100}}, 100); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, 100)
		if !bytes.Equal(got, bytes.Repeat([]byte{2}, 100)) {
			t.Errorf("record 1 read wrong: %v...", got[:4])
		}
		if f.Tell() != 200 {
			t.Errorf("Tell after read = %d, want 200", f.Tell())
		}
		// SeekEnd.
		if pos, _ := f.Seek(p, -50, SeekEnd); pos != 250 {
			t.Errorf("SeekEnd(-50) = %d, want 250", pos)
		}
		// SeekCur.
		if pos, _ := f.Seek(p, 10, SeekCur); pos != 260 {
			t.Errorf("SeekCur(+10) = %d, want 260", pos)
		}
		// Negative clamps to zero.
		if pos, _ := f.Seek(p, -999, SeekSet); pos != 0 {
			t.Errorf("negative seek = %d, want 0", pos)
		}
		if _, err := f.Seek(p, 0, 99); err == nil {
			t.Error("bad whence should error")
		}
	})
}

func TestFilePointerWithView(t *testing.T) {
	c, w := fixture(t, 2, 1)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "pview")
		// View: first 8 bytes of every 32, displaced by 64.
		f.SetView(View{Disp: 64, Pattern: Contig(8), Extent: 32})
		src := cl.Space().Malloc(24)
		cl.Space().Write(src, bytes.Repeat([]byte{0x5A}, 24))
		if err := f.WriteNext(p, ListIO, []ib.SGE{{Addr: src, Len: 24}}, 24); err != nil {
			t.Fatal(err)
		}
		// 24 view bytes = 3 tiles; the file extends to 64 + 2*32 + 8 = 136.
		if got := f.GetSize(p); got != 136 {
			t.Errorf("GetSize = %d, want 136", got)
		}
		// viewSize: bytes selected before EOF = 24.
		if got := f.viewSize(p); got != 24 {
			t.Errorf("viewSize = %d, want 24", got)
		}
		// SetView resets the pointer.
		f.SetView(View{Disp: 0, Pattern: Contig(8), Extent: 32})
		if f.Tell() != 0 {
			t.Error("SetView must reset the pointer")
		}
	})
}

func TestDelete(t *testing.T) {
	c, w := fixture(t, 2, 2)
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		if rank.ID() == 0 {
			f := Open(p, cl, rank, "gone")
			addr := cl.Space().Malloc(1000)
			cl.Space().Write(addr, bytes.Repeat([]byte{1}, 1000))
			f.Write(p, ListIO, []ib.SGE{{Addr: addr, Len: 1000}}, []pvfs.OffLen{{Off: 0, Len: 1000}})
			Delete(p, cl, "gone")
		}
		rank.Barrier(p)
		if rank.ID() == 1 {
			f := Open(p, cl, rank, "gone")
			if got := f.GetSize(p); got != 0 {
				t.Errorf("deleted file has size %d", got)
			}
		}
	})
}

// TestPropertyMethodsEquivalent drives every access method with the same
// randomly generated noncontiguous pattern and checks they all leave the
// file in the same state and read back the same bytes.
func TestPropertyMethodsEquivalent(t *testing.T) {
	type piece struct {
		Off uint16
		Len uint8
	}
	methods := []Method{MultipleIO, DataSieving, ListIO, ListIOADS, Collective}
	f := func(pieces []piece, seed byte) bool {
		if len(pieces) == 0 || len(pieces) > 16 {
			return true
		}
		// Build a deduplicated, disjoint pattern: sort by offset and clip.
		var accs []pvfs.OffLen
		cursor := int64(-1)
		offs := make([]int64, len(pieces))
		for i, pc := range pieces {
			offs[i] = int64(pc.Off) % 50000
		}
		sortInt64sForTest(offs)
		for i, off := range offs {
			if off <= cursor {
				off = cursor + 1
			}
			length := int64(pieces[i].Len)%700 + 1
			accs = append(accs, pvfs.OffLen{Off: off, Len: length})
			cursor = off + length
		}
		total := pvfs.TotalOffLen(accs)

		images := make([][]byte, len(methods))
		for mi, m := range methods {
			c, w := fixture(t, 3, 2)
			var img []byte
			ok := true
			spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
				file := Open(p, cl, rank, "prop")
				if rank.ID() == 0 {
					src := cl.Space().Malloc(total)
					data := make([]byte, total)
					for j := range data {
						data[j] = byte(int(seed) + j*3)
					}
					cl.Space().Write(src, data)
					if err := file.Write(p, m, []ib.SGE{{Addr: src, Len: total}}, accs); err != nil {
						ok = false
					}
				} else if m == Collective {
					// Collective calls need all ranks.
					if err := file.Write(p, m, nil, nil); err != nil {
						ok = false
					}
				}
				rank.Barrier(p)
				if rank.ID() == 1 {
					// Read the whole extent contiguously for the image.
					_, hi := extentOf(accs)
					dst := cl.Space().Malloc(hi)
					if err := file.fh.Read(p, dst, hi, 0, pvfs.OpOptions{}); err != nil {
						ok = false
						return
					}
					img, _ = cl.Space().Read(dst, hi)
				}
			})
			if !ok {
				return false
			}
			images[mi] = img
		}
		for mi := 1; mi < len(images); mi++ {
			if !bytes.Equal(images[0], images[mi]) {
				t.Logf("method %s image differs from %s", methods[mi], methods[0])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func sortInt64sForTest(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func TestCollectiveWindowedRounds(t *testing.T) {
	c, w := fixture(t, 4, 4)
	const n = 1024 // 1 MB extent
	spawnRanks(t, c, w, func(p *sim.Proc, rank *mpi.Rank, cl *pvfs.Client) {
		f := Open(p, cl, rank, "win")
		// Force a tiny per-rank window: 1 MB extent / (16 kB x 4 ranks)
		// = 16 rounds of exchange+write.
		f.SetCollectiveBuffer(16 << 10)
		segs, accs, data := blockColumn(cl, rank.ID(), 4, n)
		if err := f.Write(p, Collective, segs, accs); err != nil {
			t.Fatal(err)
		}
		rank.Barrier(p)
		// Read back collectively with a different window size.
		f.SetCollectiveBuffer(32 << 10)
		total := int64(len(data))
		dst := cl.Space().Malloc(total)
		if err := f.Read(p, Collective, []ib.SGE{{Addr: dst, Len: total}}, accs); err != nil {
			t.Fatal(err)
		}
		got, _ := cl.Space().Read(dst, total)
		if !bytes.Equal(got, data) {
			t.Errorf("rank %d: windowed collective round trip mismatch", rank.ID())
		}
	})
	// 16 rounds x 4 ranks x (up to 4 servers): far more write requests
	// than the single-round case, but each bounded by the window.
	if c.Acct().WriteReqs < 32 {
		t.Errorf("expected many windowed write requests, got %d", c.Acct().WriteReqs)
	}
}

func TestClipToExtent(t *testing.T) {
	segs := []ib.SGE{{Addr: 0x1000, Len: 100}}
	accs := []pvfs.OffLen{{Off: 0, Len: 30}, {Off: 50, Len: 70}}
	outSegs, outAccs, err := clipToExtent(segs, accs, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Clipped: [20,30) from the first acc, [50,60) from the second.
	if len(outAccs) != 2 || outAccs[0] != (pvfs.OffLen{Off: 20, Len: 10}) || outAccs[1] != (pvfs.OffLen{Off: 50, Len: 10}) {
		t.Errorf("accs = %v", outAccs)
	}
	// Memory: bytes 20..30 and 30..40 of the segment.
	if ib.TotalLen(outSegs) != 20 {
		t.Errorf("segs = %v", outSegs)
	}
	if outSegs[0].Addr != 0x1000+20 {
		t.Errorf("first clipped seg at %#x", uint64(outSegs[0].Addr))
	}
}
