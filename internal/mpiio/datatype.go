// Package mpiio is a ROMIO-style MPI-IO layer over the PVFS client library.
// It provides MPI datatype flattening and file views, and the paper's four
// noncontiguous access methods (Section 2.3):
//
//   - Multiple I/O: one contiguous PVFS call per contiguous piece,
//   - Data Sieving: client-side sieving (reads only over PVFS — writes fall
//     back to Multiple I/O because PVFS has no client file locking),
//   - Collective I/O: two-phase I/O with inter-client redistribution,
//   - List I/O: pvfs_read_list/pvfs_write_list, optionally with Active Data
//     Sieving on the servers (the paper's contribution).
//
// Applications select a method per operation, mirroring ROMIO's hint
// mechanism.
package mpiio

import (
	"fmt"
	"sort"

	"pvfsib/internal/pvfs"
)

// Flat is a flattened datatype: contiguous regions at byte offsets relative
// to the datatype's start, in ascending order.
type Flat []pvfs.OffLen

// Total returns the number of bytes the datatype selects.
func (f Flat) Total() int64 { return pvfs.TotalOffLen(f) }

// Span returns the datatype's extent from offset 0 through its last byte.
func (f Flat) Span() int64 {
	if len(f) == 0 {
		return 0
	}
	return f[len(f)-1].End()
}

// Shift returns the datatype displaced by disp bytes.
func (f Flat) Shift(disp int64) Flat {
	out := make(Flat, len(f))
	for i, r := range f {
		out[i] = pvfs.OffLen{Off: r.Off + disp, Len: r.Len}
	}
	return out
}

// Repeat tiles the datatype count times with the given extent (like an MPI
// resized type used in a file view).
func (f Flat) Repeat(count, extent int64) Flat {
	out := make(Flat, 0, int64(len(f))*count)
	for i := int64(0); i < count; i++ {
		out = append(out, f.Shift(i*extent)...)
	}
	return out.Normalize()
}

// Normalize sorts the regions and merges adjacent ones.
func (f Flat) Normalize() Flat {
	if len(f) == 0 {
		return f
	}
	out := make(Flat, len(f))
	copy(out, f)
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if r.Off == last.End() {
			last.Len += r.Len
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// Contig describes n contiguous bytes.
func Contig(n int64) Flat {
	if n <= 0 {
		return nil
	}
	return Flat{{Off: 0, Len: n}}
}

// Vector describes count blocks of blocklen bytes separated by stride bytes
// (MPI_Type_vector with byte units).
func Vector(count, blocklen, stride int64) Flat {
	f := make(Flat, 0, count)
	for i := int64(0); i < count; i++ {
		f = append(f, pvfs.OffLen{Off: i * stride, Len: blocklen})
	}
	return f.Normalize()
}

// Indexed describes blocks at explicit offsets (MPI_Type_create_hindexed).
func Indexed(offs, lens []int64) (Flat, error) {
	if len(offs) != len(lens) {
		return nil, fmt.Errorf("mpiio: Indexed needs equal-length slices (got %d offsets, %d lengths)", len(offs), len(lens))
	}
	f := make(Flat, 0, len(offs))
	for i := range offs {
		f = append(f, pvfs.OffLen{Off: offs[i], Len: lens[i]})
	}
	return f.Normalize(), nil
}

// Subarray2D describes a subRows x subCols block starting at (startRow,
// startCol) of a rows x cols row-major array with elem-byte elements
// (MPI_Type_create_subarray in 2-D).
func Subarray2D(rows, cols, subRows, subCols, startRow, startCol, elem int64) (Flat, error) {
	if startRow+subRows > rows || startCol+subCols > cols {
		return nil, fmt.Errorf("mpiio: subarray %dx%d@(%d,%d) outside %dx%d",
			subRows, subCols, startRow, startCol, rows, cols)
	}
	f := make(Flat, 0, subRows)
	for r := int64(0); r < subRows; r++ {
		f = append(f, pvfs.OffLen{
			Off: ((startRow+r)*cols + startCol) * elem,
			Len: subCols * elem,
		})
	}
	return f.Normalize(), nil
}

// Subarray3D is the 3-D analogue with the last dimension fastest-varying.
func Subarray3D(dims, subs, starts [3]int64, elem int64) (Flat, error) {
	for i := 0; i < 3; i++ {
		if starts[i]+subs[i] > dims[i] {
			return nil, fmt.Errorf("mpiio: subarray dim %d: start %d + size %d outside array of %d",
				i, starts[i], subs[i], dims[i])
		}
	}
	f := make(Flat, 0, subs[0]*subs[1])
	for i := int64(0); i < subs[0]; i++ {
		for j := int64(0); j < subs[1]; j++ {
			off := (((starts[0]+i)*dims[1]+(starts[1]+j))*dims[2] + starts[2]) * elem
			f = append(f, pvfs.OffLen{Off: off, Len: subs[2] * elem})
		}
	}
	return f.Normalize(), nil
}

// View is an MPI-IO file view: a displacement plus a filetype pattern that
// tiles the file from the displacement onward.
type View struct {
	// Disp is the view's displacement in the file.
	Disp int64
	// Pattern selects bytes within one filetype instance.
	Pattern Flat
	// Extent is the filetype's extent (the tiling period).
	Extent int64
}

// Map translates a contiguous byte range of the view (viewOff, n in "view
// space", counting only selected bytes) into absolute file regions. A view
// whose pattern selects no bytes cannot map anything.
func (v View) Map(viewOff, n int64) (Flat, error) {
	if n <= 0 {
		return nil, nil
	}
	per := v.Pattern.Total()
	if per <= 0 {
		return nil, fmt.Errorf("mpiio: mapping %d bytes through a view with an empty pattern", n)
	}
	var out Flat
	tile := viewOff / per
	within := viewOff % per
	for n > 0 {
		base := v.Disp + tile*v.Extent
		skip := within
		for _, r := range v.Pattern {
			if n <= 0 {
				break
			}
			if skip >= r.Len {
				skip -= r.Len
				continue
			}
			take := r.Len - skip
			if take > n {
				take = n
			}
			out = append(out, pvfs.OffLen{Off: base + r.Off + skip, Len: take})
			n -= take
			skip = 0
		}
		tile++
		within = 0
	}
	return out.Normalize(), nil
}
