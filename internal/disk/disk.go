// Package disk models a single locally-attached disk (the testbed's Seagate
// ST340016A ATA drive) in virtual time: a seek penalty whenever the head
// moves, a fixed per-command overhead, and a size-dependent transfer
// bandwidth that approaches the sequential maximum for large requests,
//
//	BW(s) = BWmax · s / (s + halfSize),
//
// so small requests are dominated by overhead — the effect Active Data
// Sieving exists to avoid. The device serializes requests FIFO. The disk
// stores no bytes; the file system above it owns the data.
package disk

import (
	"time"

	"pvfsib/internal/metrics"
	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
	"pvfsib/internal/trace"
)

// Params is the device timing model.
type Params struct {
	// Seek is the average penalty when the head must move.
	Seek sim.Duration
	// PerOp is the fixed command-processing overhead of each request.
	PerOp sim.Duration
	// MaxReadBW and MaxWriteBW are the asymptotic media bandwidths in
	// bytes per second.
	MaxReadBW  float64
	MaxWriteBW float64
	// HalfSize is the request size at which half the asymptotic
	// bandwidth is reached.
	HalfSize int64
}

// DefaultParams approximates the paper's testbed disk, calibrated so that
// bonnie-style sequential transfers land near Table 3's 25 MB/s write and
// 20 MB/s read. The seek penalty models the *short* seeks of strided access
// within a file region (track-adjacent moves, well under the drive's
// average seek); with a larger value the ADS cost model never prefers
// individual accesses and the paper's Figure 6/7 crossover at array size
// ≈2048 disappears.
func DefaultParams() Params {
	return Params{
		Seek:       500 * time.Microsecond,
		PerOp:      200 * time.Microsecond,
		MaxReadBW:  21 * simnet.MB,
		MaxWriteBW: 26.5 * simnet.MB,
		HalfSize:   4 << 10,
	}
}

// ReadBW returns the effective read bandwidth for a request of size bytes.
func (p Params) ReadBW(size int64) float64 { return p.bw(p.MaxReadBW, size) }

// WriteBW returns the effective write bandwidth for a request of size bytes.
func (p Params) WriteBW(size int64) float64 { return p.bw(p.MaxWriteBW, size) }

func (p Params) bw(max float64, size int64) float64 {
	if size <= 0 {
		return max
	}
	return max * float64(size) / float64(size+p.HalfSize)
}

// ReadTime returns the full device time for one read request.
func (p Params) ReadTime(seek bool, size int64) sim.Duration {
	d := p.PerOp + transfer(float64(size), p.ReadBW(size))
	if seek {
		d += p.Seek
	}
	return d
}

// WriteTime returns the full device time for one write request.
func (p Params) WriteTime(seek bool, size int64) sim.Duration {
	d := p.PerOp + transfer(float64(size), p.WriteBW(size))
	if seek {
		d += p.Seek
	}
	return d
}

func transfer(size, bw float64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.Duration(size / bw * 1e9)
}

// Counters accumulates device activity.
type Counters struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64
	BusyTime     sim.Duration
}

// FaultInjector is the device's hook into the fault plane
// (internal/fault implements it). It returns extra device time for one
// transfer: slowdown events plus internally-retried transient errors. The
// device retries transient errors itself — as real drives do — so the
// operation's outcome is unchanged and no caller signature grows an error.
type FaultInjector interface {
	DiskFault(now sim.Time, node string, read bool, size int64) sim.Duration
}

// Disk is one simulated device.
type Disk struct {
	params Params
	name   string
	res    *sim.Resource
	head   int64 // byte position after the last transfer
	faults FaultInjector
	tracer *trace.Tracer

	mxBusy  metrics.Busy  // device occupancy (utilization per interval)
	mxQueue metrics.Gauge // requests queued on (or holding) the device

	// Counters accumulates this device's activity.
	Counters Counters
}

// SetFaults attaches (or, with nil, detaches) the fault injector.
func (d *Disk) SetFaults(f FaultInjector) { d.faults = f }

// SetMetrics attaches (or, with nil, detaches) the metrics registry. The
// disk samples under its own device name, which must already be
// registered; the device belongs to one server's group, so its series
// stay shard-local. Call while the engine is idle.
func (d *Disk) SetMetrics(mx *metrics.Registry) {
	if mx == nil {
		d.mxBusy = metrics.Busy{}
		d.mxQueue = metrics.Gauge{}
		return
	}
	d.mxBusy = mx.Busy(d.name, "disk.busy")
	d.mxQueue = mx.Gauge(d.name, "disk.queue")
}

// SetTracer attaches (or, with nil, detaches) the span tracer. Without
// one, transfers record nothing and allocate nothing.
func (d *Disk) SetTracer(tr *trace.Tracer) { d.tracer = tr }

// New creates a disk on the engine.
func New(eng *sim.Engine, name string, params Params) *Disk {
	return &Disk{params: params, name: name, res: eng.NewResource(name, 1), head: -1}
}

// Name returns the device name given at New.
func (d *Disk) Name() string { return d.name }

// Params returns the timing model.
func (d *Disk) Params() Params { return d.params }

// Read charges the device time for reading size bytes at offset off.
func (d *Disk) Read(p *sim.Proc, off, size int64) {
	d.xfer(p, off, size, true)
}

// Write charges the device time for writing size bytes at offset off.
func (d *Disk) Write(p *sim.Proc, off, size int64) {
	d.xfer(p, off, size, false)
}

func (d *Disk) xfer(p *sim.Proc, off, size int64, read bool) {
	if size <= 0 {
		return
	}
	qsp := d.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), d.name, "disk.queue", trace.StageQueue)
	d.mxQueue.Add(p.Now(), 1)
	d.res.Acquire(p)
	qsp.End(p.Now())
	kind := "disk.write"
	if read {
		kind = "disk.read"
	}
	sp := d.tracer.Start(p.Now(), trace.Ctx(p.TraceCtx()), d.name, kind, trace.StageDisk)
	sp.SetBytes(size)
	seek := d.head != off
	var dur sim.Duration
	if read {
		dur = d.params.ReadTime(seek, size)
		d.Counters.ReadOps++
		d.Counters.BytesRead += size
	} else {
		dur = d.params.WriteTime(seek, size)
		d.Counters.WriteOps++
		d.Counters.BytesWritten += size
	}
	if seek {
		d.Counters.Seeks++
		sp.Annotate("seek=1")
	}
	if d.faults != nil {
		dur += d.faults.DiskFault(p.Now(), d.name, read, size)
	}
	d.Counters.BusyTime += dur
	t0 := p.Now()
	p.Sleep(dur)
	d.head = off + size
	d.res.Release()
	d.mxQueue.Add(p.Now(), -1)
	d.mxBusy.AddSpan(t0, p.Now())
	sp.End(p.Now())
}
