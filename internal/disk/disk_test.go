package disk

import (
	"testing"
	"time"

	"pvfsib/internal/sim"
	"pvfsib/internal/simnet"
)

func TestBandwidthCurve(t *testing.T) {
	p := DefaultParams()
	if p.ReadBW(1<<30) < 0.95*p.MaxReadBW {
		t.Error("huge reads should approach max bandwidth")
	}
	if p.ReadBW(p.HalfSize) != p.MaxReadBW/2 {
		t.Error("half-size request should see half bandwidth")
	}
	if p.WriteBW(512) >= p.WriteBW(1<<20) {
		t.Error("small writes must be slower than large ones")
	}
}

func TestSequentialAccessSkipsSeek(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	eng.Go("t", func(p *sim.Proc) {
		d.Read(p, 0, 4096)
		d.Read(p, 4096, 4096) // sequential: no seek
		d.Read(p, 1<<20, 4096)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Counters.Seeks != 2 { // first op (head at -1) and the jump
		t.Errorf("Seeks = %d, want 2", d.Counters.Seeks)
	}
	if d.Counters.ReadOps != 3 {
		t.Errorf("ReadOps = %d", d.Counters.ReadOps)
	}
}

func TestManySmallVsOneLarge(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	var tSmall, tLarge sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 64; i++ {
			d.Read(p, int64(i)*32768, 4096) // strided small reads
		}
		tSmall = p.Now().Sub(t0)
		t0 = p.Now()
		d.Read(p, 1<<30, 64*4096)
		tLarge = p.Now().Sub(t0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tSmall < 5*tLarge {
		t.Errorf("64 strided reads (%v) should dwarf one large read (%v)", tSmall, tLarge)
	}
}

func TestDiskSerializesConcurrentRequests(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	var last sim.Time
	for i := 0; i < 3; i++ {
		off := int64(i) * (7 << 20) // far apart: every request seeks
		eng.Go("u", func(p *sim.Proc) {
			d.Read(p, off, 1<<20)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	per := DefaultParams().ReadTime(true, 1<<20)
	if last < sim.Time(3*per)-sim.Time(time.Microsecond) {
		t.Errorf("3 concurrent reads finished at %v, want ≥ %v (serialized)", last, 3*per)
	}
}

func TestZeroSizeIsFree(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	eng.Go("t", func(p *sim.Proc) {
		d.Read(p, 0, 0)
		d.Write(p, 0, -1)
		if p.Now() != 0 {
			t.Error("zero-size transfer consumed time")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Counters.ReadOps != 0 || d.Counters.WriteOps != 0 {
		t.Error("zero-size transfers counted")
	}
}

func TestSequentialReadApproachesTable3(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	const total = 64 * simnet.MB
	const chunk = 256 << 10
	var elapsed sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		for off := int64(0); off < total; off += chunk {
			d.Read(p, off, chunk)
		}
		elapsed = p.Now().Sub(t0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(total) / elapsed.Seconds() / simnet.MB
	if bw < 17 || bw > 23 {
		t.Errorf("sequential read bandwidth %.1f MB/s, want ≈20 (Table 3)", bw)
	}
}

func TestSequentialWriteApproachesTable3(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d", DefaultParams())
	const total = 64 * simnet.MB
	const chunk = 256 << 10
	var elapsed sim.Duration
	eng.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		for off := int64(0); off < total; off += chunk {
			d.Write(p, off, chunk)
		}
		elapsed = p.Now().Sub(t0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(total) / elapsed.Seconds() / simnet.MB
	if bw < 22 || bw > 28 {
		t.Errorf("sequential write bandwidth %.1f MB/s, want ≈25 (Table 3)", bw)
	}
}
