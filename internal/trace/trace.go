// Package trace records structured events from a simulated run: request
// lifecycles, data sieving decisions, registration activity. A Recorder is
// a bounded ring buffer, cheap enough to leave attached during benchmarks;
// a nil *Recorder is valid and records nothing, so call sites need no
// conditionals.
//
// Events carry virtual timestamps, making traces a debugging view of the
// deterministic timeline: two runs of the same workload produce identical
// traces.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"pvfsib/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	// T is the virtual time of the event in nanoseconds.
	T int64 `json:"t_ns"`
	// Node is the node or component that produced the event.
	Node string `json:"node"`
	// Kind classifies the event (e.g. "write-req", "sieve-decision").
	Kind string `json:"kind"`
	// Detail is a human-readable description.
	Detail string `json:"detail,omitempty"`
	// Bytes is the payload size the event concerns, if any.
	Bytes int64 `json:"bytes,omitempty"`
}

// Recorder is a bounded ring buffer of events.
type Recorder struct {
	ring    []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRecorder creates a recorder that keeps the most recent capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Record appends an event; the oldest event is dropped once the buffer is
// full. A nil recorder ignores the call.
//
//pvfslint:hotpath
func (r *Recorder) Record(t sim.Time, node, kind, detail string, bytes int64) {
	if r == nil {
		return
	}
	ev := Event{T: int64(t), Node: node, Kind: kind, Detail: detail, Bytes: bytes}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % cap(r.ring)
	r.wrapped = true
	r.dropped++
}

// Recordf is Record with a formatted detail string.
func (r *Recorder) Recordf(t sim.Time, node, kind string, bytes int64, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(t, node, kind, fmt.Sprintf(format, args...), bytes)
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		out := make([]Event, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Event, 0, cap(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dropped reports how many events fell off the ring.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// WriteJSON emits the retained events as JSON Lines.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits the retained events as aligned human-readable lines.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.Events() {
		var err error
		if ev.Bytes > 0 {
			_, err = fmt.Fprintf(w, "%12.3fus %-8s %-16s %8dB %s\n",
				float64(ev.T)/1000, ev.Node, ev.Kind, ev.Bytes, ev.Detail)
		} else {
			_, err = fmt.Fprintf(w, "%12.3fus %-8s %-16s %9s %s\n",
				float64(ev.T)/1000, ev.Node, ev.Kind, "", ev.Detail)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
