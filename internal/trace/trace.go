// Package trace records structured events from a simulated run: request
// lifecycles, data sieving decisions, registration activity. A Recorder is
// a bounded ring buffer, cheap enough to leave attached during benchmarks;
// a nil *Recorder is valid and records nothing, so call sites need no
// conditionals.
//
// Events carry virtual timestamps, making traces a debugging view of the
// deterministic timeline: two runs of the same workload produce identical
// traces.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pvfsib/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	// T is the virtual time of the event in nanoseconds.
	T int64 `json:"t_ns"`
	// Node is the node or component that produced the event.
	Node string `json:"node"`
	// Kind classifies the event (e.g. "write-req", "sieve-decision").
	Kind string `json:"kind"`
	// Detail is a human-readable description.
	Detail string `json:"detail,omitempty"`
	// Bytes is the payload size the event concerns, if any.
	Bytes int64 `json:"bytes,omitempty"`
}

// eventRing is one bounded ring of events. In a registered recorder each
// node gets its own ring, appended to only from that node's events, so a
// sharded engine needs no locks.
type eventRing struct {
	ring    []Event
	next    int
	wrapped bool
	dropped int64
}

func (g *eventRing) put(ev Event) {
	if len(g.ring) < cap(g.ring) {
		g.ring = append(g.ring, ev)
		return
	}
	g.ring[g.next] = ev
	g.next = (g.next + 1) % cap(g.ring)
	g.wrapped = true
	g.dropped++
}

// events returns the ring's retained events in recording order.
func (g *eventRing) events() []Event {
	if !g.wrapped {
		return g.ring
	}
	out := make([]Event, 0, cap(g.ring))
	out = append(out, g.ring[g.next:]...)
	out = append(out, g.ring[:g.next]...)
	return out
}

// Recorder is a bounded ring buffer of events. A plain recorder
// (NewRecorder) keeps one ring — correct under a single-shard engine.
// RegisterNodes switches it to one ring per node, each touched only by
// that node's shard, with Events merged in canonical (time, node) order —
// byte-identical at any engine shard count.
type Recorder struct {
	ring    []Event
	next    int
	wrapped bool
	dropped int64

	capacity int
	rings    map[string]*eventRing // non-nil in registered mode
	order    []string              // registration order, for the merge
}

// NewRecorder creates a recorder that keeps the most recent capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{ring: make([]Event, 0, capacity), capacity: capacity}
}

// RegisterNodes switches the recorder to per-node rings (each keeping the
// most recent capacity events for its node) and registers the given
// names. Call before any event is recorded — on a sharded engine every
// event must name a registered node, produced only by that node's own
// events. Registering a name twice is a no-op.
func (r *Recorder) RegisterNodes(names ...string) {
	if len(r.ring) > 0 {
		sim.Failf("trace: RegisterNodes after %d events were recorded in plain mode", len(r.ring))
	}
	if r.rings == nil {
		r.rings = make(map[string]*eventRing)
	}
	for _, name := range names {
		if _, ok := r.rings[name]; ok {
			continue
		}
		r.rings[name] = &eventRing{ring: make([]Event, 0, r.capacity)}
		r.order = append(r.order, name)
	}
}

// Record appends an event; the oldest event is dropped once the buffer is
// full. A nil recorder ignores the call.
//
//pvfslint:hotpath
func (r *Recorder) Record(t sim.Time, node, kind, detail string, bytes int64) {
	if r == nil {
		return
	}
	ev := Event{T: int64(t), Node: node, Kind: kind, Detail: detail, Bytes: bytes}
	if r.rings != nil {
		g := r.rings[node]
		if g == nil {
			sim.Failf("trace: event from unregistered node %q (sharded recorder: register every node name up front)", node)
		}
		g.put(ev)
		return
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % cap(r.ring)
	r.wrapped = true
	r.dropped++
}

// Recordf is Record with a formatted detail string.
func (r *Recorder) Recordf(t sim.Time, node, kind string, bytes int64, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(t, node, kind, fmt.Sprintf(format, args...), bytes)
}

// Events returns the retained events in chronological order. A registered
// recorder merges its per-node rings canonically — time order, ties
// broken by node registration order then recording order — which depends
// only on the workload, never on shard interleaving.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.rings != nil {
		out := make([]Event, 0, r.Len())
		for _, name := range r.order {
			out = append(out, r.rings[name].events()...)
		}
		// Each ring is time-ordered (a node's clock never runs
		// backwards), concatenated in registration order, so a stable
		// sort on time alone yields (time, node, sequence).
		sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
		return out
	}
	if !r.wrapped {
		out := make([]Event, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Event, 0, cap(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dropped reports how many events fell off the ring (summed across rings
// for a registered recorder).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	n := r.dropped
	for _, name := range r.order {
		n += r.rings[name].dropped
	}
	return n
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := len(r.ring)
	for _, name := range r.order {
		n += len(r.rings[name].ring)
	}
	return n
}

// WriteJSON emits the retained events as JSON Lines.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits the retained events as aligned human-readable lines.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.Events() {
		var err error
		if ev.Bytes > 0 {
			_, err = fmt.Fprintf(w, "%12.3fus %-8s %-16s %8dB %s\n",
				float64(ev.T)/1000, ev.Node, ev.Kind, ev.Bytes, ev.Detail)
		} else {
			_, err = fmt.Fprintf(w, "%12.3fus %-8s %-16s %9s %s\n",
				float64(ev.T)/1000, ev.Node, ev.Kind, "", ev.Detail)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
