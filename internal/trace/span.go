package trace

import (
	"fmt"
	"sort"

	"pvfsib/internal/sim"
)

// The span plane records hierarchical, request-scoped intervals on the
// virtual clock. A Tracer owns an append-only span table; a Span is a
// small by-value handle into it. Every method is safe on the zero Span
// and on a nil *Tracer, so the hot path carries no conditionals and no
// allocations when tracing is off — the same contract the flat Recorder
// has kept since the beginning.
//
// Spans form trees rooted at a request: the MPI-IO layer (or the PVFS
// client, when used directly) mints a ReqID, and every child span —
// client RPC attempts, wire serialization, registration, server
// dispatch, sieve windows, disk transfers — carries that ReqID plus its
// parent SpanID. Context crosses process boundaries as a packed Ctx
// stored on sim.Proc, and crosses the simulated wire as an explicit
// field on request messages.

// ReqID identifies one application-level request (one MPI-IO access or
// one direct PVFS list operation). IDs are minted sequentially by the
// Tracer, so identical workloads mint identical IDs.
type ReqID uint32

// SpanID identifies a span within its Tracer: index into the span table
// plus one, so the zero SpanID means "no span".
type SpanID uint32

// Ctx packs a (ReqID, SpanID) pair into one word so it can ride on
// sim.Proc and on wire messages without those packages importing trace.
// The zero Ctx means "untraced".
type Ctx uint64

// PackCtx builds a Ctx from its parts.
func PackCtx(req ReqID, span SpanID) Ctx { return Ctx(req)<<32 | Ctx(span) }

// Req extracts the request ID.
func (c Ctx) Req() ReqID { return ReqID(c >> 32) }

// Span extracts the span ID.
func (c Ctx) Span() SpanID { return SpanID(c) }

// Stage classifies where a span's time is accounted in the cost-model
// decomposition: the T_reg / T_transfer / T_read split of the paper's
// §4–5, refined with the queueing and sieve terms the simulator can
// observe directly.
type Stage uint8

const (
	// StageOther is control-flow time not attributed to a specific
	// resource: RPC round-trip framing, dispatch, bookkeeping.
	StageOther Stage = iota
	// StageReg is memory registration and deregistration (T_reg).
	StageReg
	// StagePack is pack/unpack staging copies on client or server.
	StagePack
	// StageWire is fabric time: tx/rx serialization, flight, and the
	// RDMA gather/scatter engines.
	StageWire
	// StageQueue is time spent waiting for a contended resource (the
	// server's I/O mutex, a busy disk arm).
	StageQueue
	// StageSieve is data-sieving window planning and RMW overhead.
	StageSieve
	// StageDisk is device transfer time (T_read / T_write).
	StageDisk

	// NumStages sizes stage-indexed arrays.
	NumStages
)

var stageNames = [NumStages]string{"other", "reg", "pack", "wire", "queue", "sieve", "disk"}

// String returns the stage's short name.
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return fmt.Sprintf("stage(%d)", int(st))
}

// SpanRec is one recorded span. Exported so exporters and tests can walk
// the table; mutate only through Span methods.
type SpanRec struct {
	ID     SpanID
	Parent SpanID
	Req    ReqID
	Node   string
	Kind   string
	Stage  Stage
	Start  sim.Time
	End    sim.Time // valid only when Ended
	Ended  bool
	Bytes  int64
	Attrs  string // "k=v k=v" annotations, appended in call order
	Err    string // non-empty when the span ended in error
}

// Dur returns the span's duration in nanoseconds (zero while open).
func (s *SpanRec) Dur() int64 {
	if !s.Ended {
		return 0
	}
	return int64(s.End - s.Start)
}

// SpanID packing in registered mode: the top bits carry the node's
// registration index, the low localBits the per-node sequence. Per-node
// sequences are pure functions of that node's own workload, so packed IDs
// are identical at any engine shard count.
const (
	localBits = 20
	localMask = (1 << localBits) - 1
	maxNodes  = 1 << (32 - localBits)
)

// nodeTable is one registered node's private span storage: appended to and
// mutated only from that node's events, so a sharded engine needs no locks.
type nodeTable struct {
	idx     int
	spans   []SpanRec
	nextReq uint32
}

// Tracer owns the span table for one cluster. A plain tracer (NewTracer)
// keeps one table and sequential IDs — correct under a single-shard
// engine, where the simulation runs one process at a time. RegisterNodes
// switches it to per-node tables with packed IDs, making every operation
// shard-local: each node's spans live in that node's table, touched only
// by its shard, and every derived artifact (Spans order, IDs, profiles)
// is a deterministic function of the workload alone — byte-identical at
// any shard count. A nil *Tracer is valid and records nothing.
type Tracer struct {
	spans   []SpanRec
	nextReq uint32

	tables map[string]*nodeTable // non-nil in registered mode
	order  []*nodeTable          // registration order; index = idx
}

// NewTracer returns an empty tracer in plain (single-table) mode.
func NewTracer() *Tracer { return &Tracer{} }

// RegisterNodes switches the tracer to per-node tables and registers the
// given node (and device) names. Call before any span is recorded — on a
// sharded engine every span must come from a registered name, and each
// name's spans must be produced only by that node's own events.
// Registering a name twice is a no-op.
func (t *Tracer) RegisterNodes(names ...string) {
	if len(t.spans) > 0 {
		sim.Failf("trace: RegisterNodes after %d spans were recorded in plain mode", len(t.spans))
	}
	if t.tables == nil {
		t.tables = make(map[string]*nodeTable)
	}
	for _, name := range names {
		if _, ok := t.tables[name]; ok {
			continue
		}
		if len(t.order) >= maxNodes {
			sim.Failf("trace: more than %d registered nodes", maxNodes)
		}
		tab := &nodeTable{idx: len(t.order)}
		t.tables[name] = tab
		t.order = append(t.order, tab)
	}
}

// rec resolves a span handle to its record.
func (t *Tracer) rec(id SpanID) *SpanRec {
	if t.tables == nil {
		return &t.spans[id-1]
	}
	tab := t.order[id>>localBits]
	return &tab.spans[(id&localMask)-1]
}

// Span is a by-value handle to one recorded span. The zero Span (and any
// Span from a nil Tracer) is valid: every method no-ops and Ctx returns
// zero.
type Span struct {
	t   *Tracer
	id  SpanID
	req ReqID
}

// NewRequest mints a fresh ReqID and opens its root span. Kind names the
// access method or operation ("listio-write", "datasieving-read"). In
// registered mode the ReqID packs the minting node's index with its own
// sequence, so request IDs too are independent of shard interleaving.
func (t *Tracer) NewRequest(now sim.Time, node, kind string) Span {
	if t == nil {
		return Span{}
	}
	var req ReqID
	if t.tables != nil {
		tab := t.lookup(node)
		tab.nextReq++
		if tab.nextReq > localMask {
			sim.Failf("trace: node %q minted more than %d requests", node, localMask)
		}
		req = ReqID(uint32(tab.idx)<<localBits | tab.nextReq)
	} else {
		t.nextReq++
		req = ReqID(t.nextReq)
	}
	return t.open(now, 0, req, node, kind, StageOther)
}

// lookup finds a registered node's table.
func (t *Tracer) lookup(node string) *nodeTable {
	tab := t.tables[node]
	if tab == nil {
		sim.Failf("trace: span from unregistered node %q (sharded tracer: register every node and device name up front)", node)
	}
	return tab
}

// Start opens a child span under ctx. When ctx is zero the span becomes
// a detached root with no request ID — recorded, but excluded from
// request accounting.
//
// Every traced operation calls Start, tracer attached or not; the nil-
// tracer fast path must stay effect-free.
//
//pvfslint:hotpath
func (t *Tracer) Start(now sim.Time, ctx Ctx, node, kind string, stage Stage) Span {
	if t == nil {
		return Span{}
	}
	return t.open(now, ctx.Span(), ctx.Req(), node, kind, stage)
}

func (t *Tracer) open(now sim.Time, parent SpanID, req ReqID, node, kind string, stage Stage) Span {
	var id SpanID
	if t.tables != nil {
		tab := t.lookup(node)
		local := len(tab.spans) + 1
		if local > localMask {
			sim.Failf("trace: node %q recorded more than %d spans", node, localMask)
		}
		id = SpanID(uint32(tab.idx)<<localBits | uint32(local))
		tab.spans = append(tab.spans, SpanRec{
			ID: id, Parent: parent, Req: req,
			Node: node, Kind: kind, Stage: stage, Start: now,
		})
	} else {
		id = SpanID(len(t.spans) + 1)
		t.spans = append(t.spans, SpanRec{
			ID: id, Parent: parent, Req: req,
			Node: node, Kind: kind, Stage: stage, Start: now,
		})
	}
	return Span{t: t, id: id, req: req}
}

// End closes the span at the given virtual time. Ending a span twice is
// a bug (the tracecheck analyzer flags it statically); at runtime the
// second End wins so a trace is still produced for inspection.
//
//pvfslint:hotpath
func (s Span) End(now sim.Time) {
	if s.t == nil {
		return
	}
	r := s.t.rec(s.id)
	r.End = now
	r.Ended = true
}

// EndErr closes the span and records the error that terminated it; a nil
// error is equivalent to End.
//
//pvfslint:hotpath
func (s Span) EndErr(now sim.Time, err error) {
	if s.t == nil {
		return
	}
	r := s.t.rec(s.id)
	r.End = now
	r.Ended = true
	if err != nil {
		r.Err = err.Error()
	}
}

// SetBytes records the payload size the span moved.
//
//pvfslint:hotpath
func (s Span) SetBytes(n int64) {
	if s.t == nil {
		return
	}
	s.t.rec(s.id).Bytes = n
}

// Annotate appends a formatted "key=value" attribute to the span.
func (s Span) Annotate(format string, args ...any) {
	if s.t == nil {
		return
	}
	r := s.t.rec(s.id)
	if r.Attrs != "" {
		r.Attrs += " "
	}
	r.Attrs += fmt.Sprintf(format, args...)
}

// Recording reports whether the span records anything. Hot paths guard
// Annotate calls that box arguments behind it, so a disabled tracer
// allocates nothing.
func (s Span) Recording() bool { return s.t != nil }

// Ctx returns the packed context naming this span as parent, for handing
// to children across process or wire boundaries.
func (s Span) Ctx() Ctx {
	if s.t == nil {
		return 0
	}
	return PackCtx(s.req, s.id)
}

// Req returns the span's request ID (zero for detached spans).
func (s Span) Req() ReqID { return s.req }

// Spans returns the recorded span table. In plain mode this is the
// tracer's own storage in creation order — callers must not mutate it. In
// registered mode it is a fresh merged copy in canonical order — sorted
// by start time, ties broken by node registration index then per-node
// sequence — which depends only on the workload, never on how a sharded
// engine interleaved the nodes.
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	if t.tables == nil {
		return t.spans
	}
	out := make([]SpanRec, 0, t.Len())
	for _, tab := range t.order {
		out = append(out, tab.spans...)
	}
	// Each table is start-ordered already (a node's clock never runs
	// backwards), and they are concatenated in registration order, so a
	// stable sort on start time alone yields (start, node idx, sequence).
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.tables == nil {
		return len(t.spans)
	}
	n := 0
	for _, tab := range t.order {
		n += len(tab.spans)
	}
	return n
}

// Requests reports how many request IDs have been minted.
func (t *Tracer) Requests() int {
	if t == nil {
		return 0
	}
	if t.tables == nil {
		return int(t.nextReq)
	}
	n := 0
	for _, tab := range t.order {
		n += int(tab.nextReq)
	}
	return n
}
