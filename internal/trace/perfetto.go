package trace

import (
	"fmt"
	"io"
	"strings"
)

// WritePerfetto emits the span table as Chrome trace-event JSON, the
// format ui.perfetto.dev and chrome://tracing load directly. Every span
// becomes one complete ("X") event; processes are simulated nodes and
// threads are request IDs, so one horizontal track shows one request's
// journey across the cluster.
//
// The writer is hand-rolled on purpose: event order is span-table order,
// process IDs are first-appearance order, and timestamps are fixed-point
// microseconds — no map iteration, no float formatting ambiguity — so
// the same (workload, seed) produces byte-identical files.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	spans := t.Spans()
	pids := map[string]int{}
	var order []string
	for i := range spans {
		n := spans[i].Node
		if _, ok := pids[n]; !ok {
			pids[n] = len(order) + 1
			order = append(order, n)
		}
	}
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err := fmt.Fprintf(w, sep+format, args...)
		return err
	}
	for _, n := range order {
		if err := emit("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
			pids[n], jsonString(n)); err != nil {
			return err
		}
	}
	for i := range spans {
		s := &spans[i]
		dur := s.Dur()
		if err := emit("{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"span\":%d,\"parent\":%d",
			jsonString(s.Kind), jsonString(s.Stage.String()),
			microString(int64(s.Start)), microString(dur),
			pids[s.Node], s.Req, s.ID, s.Parent); err != nil {
			return err
		}
		if s.Bytes > 0 {
			if _, err := fmt.Fprintf(w, ",\"bytes\":%d", s.Bytes); err != nil {
				return err
			}
		}
		if s.Attrs != "" {
			if _, err := fmt.Fprintf(w, ",\"attrs\":%s", jsonString(s.Attrs)); err != nil {
				return err
			}
		}
		if s.Err != "" {
			if _, err := fmt.Fprintf(w, ",\"err\":%s", jsonString(s.Err)); err != nil {
				return err
			}
		}
		if !s.Ended {
			if _, err := io.WriteString(w, ",\"open\":1"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// microString renders nanoseconds as fixed-point microseconds with three
// decimals — exact, locale-free, and stable across runs.
func microString(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// jsonString quotes s as a JSON string, escaping the characters our
// span vocabulary can produce.
func jsonString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
