package trace

// HistBuckets is the number of fixed power-of-two buckets in a
// Histogram. Bucket i counts durations in [2^i, 2^(i+1)) nanoseconds;
// bucket 0 additionally absorbs zero. 48 buckets cover up to ~3.2
// virtual days, far beyond any simulated run.
const HistBuckets = 48

// Histogram is a fixed-bucket latency histogram. The bucket layout is a
// compile-time constant, so merging and quantile extraction are exact
// set operations with no configuration to disagree on — two histograms
// from different runs always merge bucket-for-bucket. The zero value is
// ready to use.
type Histogram struct {
	Count   int64
	Sum     int64 // nanoseconds
	Min     int64 // valid only when Count > 0
	Max     int64
	Buckets [HistBuckets]int64
}

// bucketOf returns the bucket index for a duration in nanoseconds.
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := 0
	for v := ns; v > 1; v >>= 1 {
		b++
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds; negative values count as
// zero.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if h.Count == 0 || ns < h.Min {
		h.Min = ns
	}
	if ns > h.Max {
		h.Max = ns
	}
	h.Count++
	h.Sum += ns
	h.Buckets[bucketOf(ns)]++
}

// Merge folds o into h bucket-for-bucket.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed duration in nanoseconds, zero when
// empty.
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) in
// nanoseconds: the exclusive upper edge of the bucket holding the
// q*Count-th observation, clamped to the observed Max. The bound is
// deterministic and at most 2x the true value — adequate for the
// order-of-magnitude breakdowns the traces feed.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			upper := int64(1) << uint(i+1)
			if upper > h.Max {
				upper = h.Max
			}
			if upper < h.Min {
				upper = h.Min
			}
			return upper
		}
	}
	return h.Max
}
