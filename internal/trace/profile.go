package trace

import (
	"fmt"
	"io"
	"sort"
)

// StageStat accumulates self-time for one stage: the nanoseconds spans
// of that stage spent excluding their children, so the stage totals of a
// request partition its wall time instead of double-counting nesting.
type StageStat struct {
	Ns    int64
	Count int64
}

// NodeGauge is a per-node maximum-concurrency reading.
type NodeGauge struct {
	Node string
	Max  int
}

// Profile is the aggregate view of a span table: the cost-model
// decomposition the paper tabulates (registration vs. transfer vs. disk
// time), computed per stage, plus end-to-end request latency and
// per-server concurrency. Everything derives from virtual timestamps,
// so identical runs produce identical profiles.
type Profile struct {
	Requests int64
	Spans    int64
	// Latency aggregates root-span (whole-request) durations.
	Latency Histogram
	// Stage holds per-stage self-time totals, indexed by Stage.
	Stage [NumStages]StageStat
	// StageHist holds per-stage self-time distributions.
	StageHist [NumStages]Histogram
	// Inflight reports, per server node, the maximum number of requests
	// in dispatch simultaneously, sorted by node name.
	Inflight []NodeGauge
}

// dispatchKind is the span kind the server opens per accepted request;
// the in-flight gauge counts overlapping spans of this kind.
const dispatchKind = "srv.dispatch"

// Profile aggregates the tracer's span table. Open (never-ended) spans
// contribute nothing — the tracecheck analyzer exists to keep those from
// occurring in the first place.
func (t *Tracer) Profile() *Profile {
	p := &Profile{}
	if t == nil {
		return p
	}
	spans := t.Spans()
	p.Spans = int64(len(spans))
	p.Requests = int64(t.Requests())

	// Self time: each span's duration minus the summed durations of its
	// direct children, clamped at zero (children of a fan-out span may
	// overlap each other and exceed the parent). Parents are resolved by
	// ID, not index: a registered tracer packs the node index into the ID.
	byID := make(map[SpanID]int, len(spans))
	for i := range spans {
		byID[spans[i].ID] = i
	}
	childNs := make([]int64, len(spans))
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 && s.Ended {
			if pi, ok := byID[s.Parent]; ok {
				childNs[pi] += s.Dur()
			}
		}
	}
	for i := range spans {
		s := &spans[i]
		if !s.Ended {
			continue
		}
		self := s.Dur() - childNs[i]
		if self < 0 {
			self = 0
		}
		p.Stage[s.Stage].Ns += self
		p.Stage[s.Stage].Count++
		p.StageHist[s.Stage].Observe(self)
		if s.Parent == 0 && s.Req != 0 {
			p.Latency.Observe(s.Dur())
		}
	}

	// Max in-flight dispatches per server node: sweep start/end edges in
	// time order, breaking ties by span ID so the sweep is deterministic.
	type edge struct {
		at    int64
		delta int
		id    SpanID
	}
	byNode := map[string][]edge{}
	for i := range spans {
		s := &spans[i]
		if s.Kind != dispatchKind || !s.Ended {
			continue
		}
		byNode[s.Node] = append(byNode[s.Node],
			edge{int64(s.Start), +1, s.ID}, edge{int64(s.End), -1, s.ID})
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		es := byNode[n]
		sort.Slice(es, func(a, b int) bool {
			if es[a].at != es[b].at {
				return es[a].at < es[b].at
			}
			if es[a].delta != es[b].delta {
				return es[a].delta < es[b].delta // close before open at the same tick
			}
			return es[a].id < es[b].id
		})
		cur, max := 0, 0
		for _, e := range es {
			cur += e.delta
			if cur > max {
				max = cur
			}
		}
		p.Inflight = append(p.Inflight, NodeGauge{Node: n, Max: max})
	}
	return p
}

// MaxInflight returns the largest per-node in-flight gauge, zero when no
// dispatch spans were recorded.
func (p *Profile) MaxInflight() int {
	max := 0
	for _, g := range p.Inflight {
		if g.Max > max {
			max = g.Max
		}
	}
	return max
}

// TotalNs returns the summed self-time across all stages.
func (p *Profile) TotalNs() int64 {
	var total int64
	for _, st := range p.Stage {
		total += st.Ns
	}
	return total
}

// WriteBreakdown renders the critical-path breakdown table: one row per
// stage with total self-time, share, and span count, followed by the
// request-latency summary and the per-server concurrency gauges.
func (p *Profile) WriteBreakdown(w io.Writer) error {
	total := p.TotalNs()
	if _, err := fmt.Fprintf(w, "%-8s %12s %7s %10s\n", "stage", "total_ms", "share", "spans"); err != nil {
		return err
	}
	for st := Stage(0); st < NumStages; st++ {
		s := p.Stage[st]
		if s.Count == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = float64(s.Ns) / float64(total) * 100
		}
		if _, err := fmt.Fprintf(w, "%-8s %12.3f %6.1f%% %10d\n",
			st.String(), float64(s.Ns)/1e6, share, s.Count); err != nil {
			return err
		}
	}
	if p.Latency.Count > 0 {
		if _, err := fmt.Fprintf(w, "requests %d  mean=%.3fms p50<=%.3fms p99<=%.3fms max=%.3fms\n",
			p.Latency.Count,
			float64(p.Latency.Mean())/1e6,
			float64(p.Latency.Quantile(0.50))/1e6,
			float64(p.Latency.Quantile(0.99))/1e6,
			float64(p.Latency.Max)/1e6); err != nil {
			return err
		}
	}
	for _, g := range p.Inflight {
		if _, err := fmt.Fprintf(w, "inflight %-8s max=%d\n", g.Node, g.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the profile as a single deterministic JSON object:
// stage order is the Stage enum, node gauges are name-sorted, and all
// numbers are integers, so byte-identical runs serialize identically.
func (p *Profile) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\"requests\":%d,\"spans\":%d,\"stages\":{", p.Requests, p.Spans); err != nil {
		return err
	}
	first := true
	for st := Stage(0); st < NumStages; st++ {
		s := p.Stage[st]
		if s.Count == 0 {
			continue
		}
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		if _, err := fmt.Fprintf(w, "\"%s\":{\"ns\":%d,\"count\":%d}", st.String(), s.Ns, s.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "},\"latency\":{\"count\":%d,\"sum_ns\":%d,\"mean_ns\":%d,\"p50_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d},\"inflight\":{",
		p.Latency.Count, p.Latency.Sum, p.Latency.Mean(),
		p.Latency.Quantile(0.50), p.Latency.Quantile(0.99), p.Latency.Max); err != nil {
		return err
	}
	for i, g := range p.Inflight {
		sep := ""
		if i > 0 {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, "%s\"%s\":%d", sep, g.Node, g.Max); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}}\n")
	return err
}
