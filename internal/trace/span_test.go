package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// TestNilTracerZeroAlloc pins the tracing-off contract: every span
// operation on a nil tracer is allocation-free, so instrumented hot
// paths cost nothing when tracing is disabled.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.NewRequest(0, "cn0", "listio-write")
		sp := tr.Start(1, root.Ctx(), "cn0", "pvfs.attempt", StageOther)
		sp.SetBytes(4096)
		sp.Annotate("segs=4")
		if sp.Recording() {
			t.Fatal("nil tracer reports Recording")
		}
		sp.EndErr(2, nil)
		root.End(3)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span path allocates: %.1f allocs/op, want 0", allocs)
	}
}

// TestSpanTree checks parenting, request propagation, and error capture
// through a small hand-built tree.
func TestSpanTree(t *testing.T) {
	tr := NewTracer()
	root := tr.NewRequest(100, "cn0", "listio-write")
	child := tr.Start(110, root.Ctx(), "io1", "srv.dispatch", StageOther)
	leaf := tr.Start(120, child.Ctx(), "io1", "disk.write", StageDisk)
	leaf.EndErr(150, errors.New("media fault"))
	child.End(160)
	root.End(200)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID || spans[2].Parent != spans[1].ID {
		t.Errorf("parent chain wrong: %v %v %v", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	for i, s := range spans {
		if s.Req != root.Req() {
			t.Errorf("span %d: req %d, want %d", i, s.Req, root.Req())
		}
		if !s.Ended {
			t.Errorf("span %d not ended", i)
		}
	}
	if spans[2].Err != "media fault" {
		t.Errorf("leaf error = %q, want media fault", spans[2].Err)
	}
	if d := spans[0].Dur(); d != 100 {
		t.Errorf("root duration = %d, want 100", d)
	}
	if got := tr.Requests(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
}

// TestDetachedStart: a Start with zero context records a root with no
// request ID, excluded from request accounting.
func TestDetachedStart(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start(5, 0, "io0", "disk.read", StageDisk)
	sp.End(9)
	if got := tr.Requests(); got != 0 {
		t.Errorf("detached span minted a request: %d", got)
	}
	if r := tr.Spans()[0]; r.Req != 0 || r.Parent != 0 {
		t.Errorf("detached span has req=%d parent=%d, want 0,0", r.Req, r.Parent)
	}
	p := tr.Profile()
	if p.Latency.Count != 0 {
		t.Errorf("detached root counted in request latency: %d", p.Latency.Count)
	}
}

// TestHistogramObserve checks counting, bounds, and the quantile upper
// bound (at most 2x true, clamped to the observed extremes).
func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 400, 800, 1600} {
		h.Observe(v)
	}
	if h.Count != 5 || h.Sum != 3100 || h.Min != 100 || h.Max != 1600 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count, h.Sum, h.Min, h.Max)
	}
	if got := h.Mean(); got != 620 {
		t.Errorf("mean = %d, want 620", got)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < h.Min || got > h.Max {
			t.Errorf("quantile(%g) = %d, outside [%d,%d]", q, got, h.Min, h.Max)
		}
	}
	// The p0 bound must stay within 2x of the true minimum observation.
	if got := h.Quantile(0); got > 200 {
		t.Errorf("quantile(0) = %d, want <= 200 (2x of min)", got)
	}
	// Negative observations clamp to zero rather than corrupting Sum.
	var neg Histogram
	neg.Observe(-5)
	if neg.Sum != 0 || neg.Min != 0 || neg.Count != 1 {
		t.Errorf("negative observe: %+v", neg)
	}
}

// TestHistogramMerge: merging two histograms equals observing every value
// into one — buckets, bounds, and quantiles agree exactly.
func TestHistogramMerge(t *testing.T) {
	vals1 := []int64{10, 50, 900}
	vals2 := []int64{3, 7000, 128, 128}
	var a, b, all Histogram
	for _, v := range vals1 {
		a.Observe(v)
		all.Observe(v)
	}
	for _, v := range vals2 {
		b.Observe(v)
		all.Observe(v)
	}
	a.Merge(&b)
	if a != all {
		t.Errorf("merged histogram differs from direct observation:\n%+v\n%+v", a, all)
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	a.Merge(&empty)
	a.Merge(nil)
	if a != all {
		t.Errorf("empty merge changed the histogram")
	}
}

// TestProfileSelfTime checks the per-stage self-time decomposition: a
// child's time is subtracted from its parent's stage, not double-counted.
func TestProfileSelfTime(t *testing.T) {
	tr := NewTracer()
	root := tr.NewRequest(0, "cn0", "listio-write") // other
	reg := tr.Start(10, root.Ctx(), "cn0", "ib.reg", StageReg)
	pack := tr.Start(15, reg.Ctx(), "cn0", "pvfs.pack", StagePack)
	pack.End(20)
	reg.End(30)
	root.End(100)

	p := tr.Profile()
	if got := p.Stage[StagePack].Ns; got != 5 {
		t.Errorf("pack self time = %d, want 5", got)
	}
	if got := p.Stage[StageReg].Ns; got != 15 {
		t.Errorf("reg self time = %d, want 15 (20 total - 5 child)", got)
	}
	if got := p.Stage[StageOther].Ns; got != 80 {
		t.Errorf("other self time = %d, want 80 (100 total - 20 child)", got)
	}
	if p.Latency.Count != 1 || p.Latency.Max != 100 {
		t.Errorf("request latency: %+v", p.Latency)
	}
	if got := p.TotalNs(); got != 100 {
		t.Errorf("total = %d, want 100", got)
	}
}

// TestPerfettoSchema parses the export back and checks the Chrome
// trace-event contract: a displayTimeUnit, process-name metadata, and
// complete ("X") events with pid/tid/ts/dur on every span.
func TestPerfettoSchema(t *testing.T) {
	tr := NewTracer()
	root := tr.NewRequest(1000, "cn0", "listio-write")
	sp := tr.Start(1100, root.Ctx(), "io1", "srv.dispatch", StageOther)
	sp.SetBytes(64)
	sp.Annotate("segs=2")
	sp.End(1500)
	root.End(2000)

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
		case "X":
			complete++
			for _, k := range []string{"name", "pid", "tid", "ts", "dur"} {
				if _, ok := ev[k]; !ok {
					t.Errorf("complete event missing %q: %v", k, ev)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if complete != 2 {
		t.Errorf("got %d complete events, want 2", complete)
	}
	if meta == 0 {
		t.Error("no process-name metadata events")
	}
}
