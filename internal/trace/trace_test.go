package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pvfsib/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, "n", "k", "d", 1)
	r.Recordf(0, "n", "k", 1, "x=%d", 1)
	if r.Events() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder must be inert")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), "n", "k", "", int64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.T != int64(6+i) {
			t.Errorf("event %d: T = %d, want %d (chronological, newest kept)", i, ev.T, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	r := NewRecorder(8)
	r.Record(1, "a", "x", "one", 0)
	r.Record(2, "b", "y", "two", 10)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Detail != "one" || evs[1].Bytes != 10 {
		t.Errorf("events = %+v", evs)
	}
}

func TestWriteJSONAndText(t *testing.T) {
	r := NewRecorder(8)
	r.Recordf(sim.Time(1500), "cn0", "write-req", 4096, "io%d pairs=%d", 2, 7)
	var jb bytes.Buffer
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(jb.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "write-req" || ev.Bytes != 4096 || ev.Detail != "io2 pairs=7" {
		t.Errorf("decoded %+v", ev)
	}
	var tb bytes.Buffer
	if err := r.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cn0", "write-req", "4096B", "io2 pairs=7"} {
		if !strings.Contains(tb.String(), want) {
			t.Errorf("text %q missing %q", tb.String(), want)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 2000; i++ {
		r.Record(sim.Time(i), "n", "k", "", 0)
	}
	if r.Len() != 1024 {
		t.Errorf("default capacity = %d, want 1024", r.Len())
	}
}
