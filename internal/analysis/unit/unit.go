// Package unit implements the "go vet -vettool" compilation-unit protocol
// for the pvfslint suite, using only the standard library.
//
// go vet invokes the tool in three ways:
//
//	pvfslint -V=full        # describe the executable, for build caching
//	pvfslint -flags         # describe supported flags in JSON
//	pvfslint <dir>/vet.cfg  # analyze one compilation unit
//
// The .cfg file is a JSON description of a single package: its Go files, the
// resolved import map, and the export-data file for every dependency (go vet
// has already built them). Type information for imports is loaded through
// go/importer's gc importer with a lookup function over that map — the same
// mechanism x/tools' unitchecker uses, minus the facts machinery, which the
// pvfslint analyzers do not need.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"pvfsib/internal/analysis"
)

// Config mirrors the JSON compilation-unit description written by cmd/go for
// vet tools. Fields the pvfslint suite does not use (facts, gccgo support)
// are retained so the full file decodes, but ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool command protocol for the given arguments
// (os.Args[1:]) and returns the process exit code.
func Main(args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			return printVersion(stdout, stderr)
		case a == "-flags" || a == "--flags":
			// No analyzer flags; report the two protocol flags so that
			// cmd/go accepts the tool.
			fmt.Fprintln(stdout, `[{"Name":"V","Bool":true,"Usage":"print version and exit"},{"Name":"flags","Bool":true,"Usage":"print analyzer flags in JSON"}]`)
			return 0
		}
	}
	var cfgFile string
	for _, a := range args {
		if len(a) > 4 && a[len(a)-4:] == ".cfg" {
			cfgFile = a
		}
	}
	if cfgFile == "" {
		fmt.Fprintf(stderr, "pvfslint: no .cfg argument; this mode is meant to be driven by go vet -vettool\n")
		return 1
	}
	return RunConfig(cfgFile, analyzers, stderr)
}

// printVersion implements -V=full: a stable line containing the executable
// hash, which cmd/go folds into its build cache key.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "pvfslint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "pvfslint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "pvfslint: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%02x\n", exe, h.Sum(nil))
	return 0
}

// RunConfig analyzes the compilation unit described by cfgFile and returns
// the exit code: 0 clean, 1 findings or errors.
func RunConfig(cfgFile string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "pvfslint: %v\n", err)
		return 1
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "pvfslint: cannot decode %s: %v\n", cfgFile, err)
		return 1
	}

	// Always produce the vetx (facts) output when asked: cmd/go uses the
	// file's presence for caching. The suite exports no facts, so it is a
	// fixed placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pvfslint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "pvfslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: the suite has no cross-package facts to
		// compute, and diagnostics would be discarded, so skip the unit.
		return 0
	}

	fset := token.NewFileSet()
	diags, err := check(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "pvfslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 1
}

// check parses, type-checks, and analyzes one unit.
func check(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("cannot resolve import %q", importPath)
			}
			return gcImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analysis.RunAll(analyzers, fset, files, pkg, info)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
