// Package sarif renders pvfslint findings as SARIF 2.1.0, the static
// analysis interchange format GitHub code scanning and most lint viewers
// ingest. Only the required core of the schema is emitted: one run, the
// tool driver with one reportingDescriptor per analyzer, and one result
// per finding with a physical location.
package sarif

import (
	"encoding/json"
	"io"
	"strings"

	"pvfsib/internal/analysis"
	"pvfsib/internal/analysis/load"
)

// SchemaURI and Version identify SARIF 2.1.0.
const (
	SchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	Version   = "2.1.0"
)

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver names the tool and enumerates its rules (one per analyzer).
type Driver struct {
	Name  string `json:"name"`
	Rules []Rule `json:"rules"`
}

// Rule is one reportingDescriptor.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	RuleIndex int        `json:"ruleIndex"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps the physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file URI plus a region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation holds the (repo-relative when possible) file path.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is the 1-based start position.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Build assembles the SARIF log for one pvfslint run. baseDir, when
// non-empty, is stripped from finding paths so artifact URIs are
// repo-relative — the form code-scanning uploads expect.
func Build(analyzers []*analysis.Analyzer, findings []load.Finding, baseDir string) *Log {
	driver := Driver{Name: "pvfslint", Rules: make([]Rule, 0, len(analyzers))}
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		index[a.Name] = i
		driver.Rules = append(driver.Rules, Rule{
			ID:               a.Name,
			ShortDescription: Message{Text: a.Doc},
		})
	}
	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		uri := f.Position.Filename
		if baseDir != "" {
			uri = strings.TrimPrefix(uri, strings.TrimSuffix(baseDir, "/")+"/")
		}
		results = append(results, Result{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "warning",
			Message:   Message{Text: f.Message},
			Locations: []Location{{PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: uri},
				Region:           Region{StartLine: f.Position.Line, StartColumn: f.Position.Column},
			}}},
		})
	}
	return &Log{
		Schema:  SchemaURI,
		Version: Version,
		Runs:    []Run{{Tool: Tool{Driver: driver}, Results: results}},
	}
}

// Write emits the log as indented JSON.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
