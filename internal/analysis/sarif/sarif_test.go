package sarif_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"pvfsib/internal/analysis/load"
	"pvfsib/internal/analysis/sarif"
	"pvfsib/internal/analysis/suite"
)

// TestShape round-trips a log through JSON and checks every field SARIF
// 2.1.0 requires of a minimal document.
func TestShape(t *testing.T) {
	analyzers := suite.All()
	findings := []load.Finding{
		{
			Position: token.Position{Filename: "/repo/internal/ib/cache.go", Line: 53, Column: 2},
			Message:  "map iteration in a function that reaches deterministic output",
			Analyzer: "detcheck",
		},
		{
			Position: token.Position{Filename: "/repo/internal/pvfs/client.go", Line: 10, Column: 1},
			Message:  "panic in library package",
			Analyzer: "nopanic",
		},
	}
	var buf bytes.Buffer
	if err := sarif.Build(analyzers, findings, "/repo").Write(&buf); err != nil {
		t.Fatal(err)
	}

	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := doc["$schema"]; got != sarif.SchemaURI {
		t.Errorf("$schema = %v", got)
	}
	if got := doc["version"]; got != "2.1.0" {
		t.Errorf("version = %v", got)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want one run", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "pvfslint" {
		t.Errorf("driver.name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(analyzers) {
		t.Fatalf("rules = %d, want one per analyzer (%d)", len(rules), len(analyzers))
	}
	ruleIDs := make(map[string]int)
	for i, r := range rules {
		rm := r.(map[string]any)
		id := rm["id"].(string)
		ruleIDs[id] = i
		if rm["shortDescription"].(map[string]any)["text"] == "" {
			t.Errorf("rule %s has no description", id)
		}
	}
	if _, ok := ruleIDs["detcheck"]; !ok {
		t.Error("no detcheck rule")
	}

	results := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(results), len(findings))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "detcheck" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	if int(first["ruleIndex"].(float64)) != ruleIDs["detcheck"] {
		t.Errorf("ruleIndex = %v, want %d", first["ruleIndex"], ruleIDs["detcheck"])
	}
	if first["level"] != "warning" {
		t.Errorf("level = %v", first["level"])
	}
	if first["message"].(map[string]any)["text"] == "" {
		t.Error("empty message text")
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/ib/cache.go" {
		t.Errorf("uri = %v, want repo-relative internal/ib/cache.go", uri)
	}
	region := loc["region"].(map[string]any)
	if int(region["startLine"].(float64)) != 53 || int(region["startColumn"].(float64)) != 2 {
		t.Errorf("region = %v", region)
	}
}
