// Package a exercises the sgelimit analyzer.
package a

import "pvfsib/internal/ib"

// chunkByMagicNumber hand-rolls work-request chunking with a baked-in cap.
func chunkByMagicNumber(sges []ib.SGE) [][]ib.SGE {
	var out [][]ib.SGE
	for len(sges) > 32 { // want `SGE list length compared against magic number 32`
		out = append(out, sges[:32]) // want `SGE list sliced at magic number 32`
		sges = sges[32:]
	}
	return append(out, sges)
}

// overCapParams configures the simulator beyond what hardware accepts.
func overCapParams() ib.Params {
	p := ib.Params{MaxSGE: 128} // want `MaxSGE 128 exceeds the InfiniBand hardware cap of 64`
	p.MaxSGE = 256              // want `MaxSGE 256 exceeds the InfiniBand hardware cap of 64`
	return p
}

// oversizeLiteral builds a single list no real HCA accepts in one work request.
func oversizeLiteral() []ib.SGE {
	return []ib.SGE{{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}} // want `SGE composite literal with 65 entries exceeds the 64-entry work-request cap`
}

// chunkByParams is the clean shape: the cap comes from configuration.
func chunkByParams(sges []ib.SGE, maxSGE int) [][]ib.SGE {
	var out [][]ib.SGE
	for len(sges) > maxSGE {
		out = append(out, sges[:maxSGE])
		sges = sges[maxSGE:]
	}
	return append(out, sges)
}

// namedConstOK: the named hardware-cap constant is self-documenting.
func namedConstOK(sges []ib.SGE) bool {
	return len(sges) > ib.HardMaxSGE
}

// inCapParams stays within the hardware limit.
func inCapParams() ib.Params {
	return ib.Params{MaxSGE: 64}
}

// emptyCheckOK: comparing against 0 or 1 is not chunking.
func emptyCheckOK(sges []ib.SGE) bool {
	return len(sges) > 0
}
