// Package ib is a test stub: just enough of the InfiniBand model's surface
// for the sgelimit analyzer's type checks to engage.
package ib

const HardMaxSGE = 64

type SGE struct {
	Addr uint64
	Len  int
}

type Params struct {
	MaxSGE int
}
