// Package sgelimit defines an analyzer that enforces the InfiniBand
// scatter/gather limit (Section 4.1 of the paper: a work request carries at
// most 64 SGEs).
//
// The QP transfer methods chunk arbitrarily long lists through the
// gather/scatter splitter, so application code never hand-chunks. The
// analyzer flags the ways the cap can be baked in wrongly:
//
//   - comparing len of an []ib.SGE value against an integer literal
//     (hand-rolled chunking with a magic number; use Params.MaxSGE),
//   - slicing an []ib.SGE value with a literal bound (same),
//   - an []ib.SGE composite literal with more than 64 elements destined for
//     a single work request,
//   - configuring Params.MaxSGE above the hardware cap of 64, which would
//     let the simulator model work requests no real HCA accepts.
package sgelimit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"pvfsib/internal/analysis"
)

// hardMaxSGE is the InfiniBand per-work-request scatter/gather cap
// (Section 4.1); ib.HardMaxSGE mirrors it in the model.
const hardMaxSGE = 64

// Analyzer flags SGE-list constructions that can exceed the work-request cap.
var Analyzer = &analysis.Analyzer{
	Name: "sgelimit",
	Doc:  "enforce the 64-entry InfiniBand SGE limit: no magic-number chunking, no over-cap lists or Params",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Tests assert exact SGE list shapes all the time; only the
		// over-cap checks (impossible hardware) apply there.
		inTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !inTest {
					checkLenCompare(pass, n)
				}
			case *ast.SliceExpr:
				if !inTest {
					checkLiteralSlice(pass, n)
				}
			case *ast.CompositeLit:
				checkOversizeLiteral(pass, n)
				checkParamsLiteral(pass, n)
			case *ast.AssignStmt:
				checkParamsAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// isSGESlice reports whether e has type []ib.SGE.
func isSGESlice(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return analysis.NamedFrom(sl.Elem(), "internal/ib", "SGE")
}

// intLit returns the value of e if it is an integer constant literal.
func intLit(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	if _, isLit := e.(*ast.BasicLit); !isLit {
		// Named constants (e.g. ib.HardMaxSGE) are self-documenting;
		// only raw literals are magic numbers.
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return v, ok
}

// checkLenCompare flags `len(sges) OP <literal>`.
func checkLenCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		call, ok := pair[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" {
			continue
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			continue
		}
		if !isSGESlice(pass, call.Args[0]) {
			continue
		}
		if v, ok := intLit(pass, pair[1]); ok && v > 1 {
			pass.Reportf(b.Pos(), "SGE list length compared against magic number %d; the work-request cap is Params.MaxSGE (hardware limit %d)", v, hardMaxSGE)
		}
	}
}

// checkLiteralSlice flags `sges[...:<literal>]`.
func checkLiteralSlice(pass *analysis.Pass, s *ast.SliceExpr) {
	if !isSGESlice(pass, s.X) {
		return
	}
	if s.High == nil {
		return
	}
	if v, ok := intLit(pass, s.High); ok && v > 1 {
		pass.Reportf(s.Pos(), "SGE list sliced at magic number %d; chunk through the QP splitter or use Params.MaxSGE", v)
	}
}

// checkOversizeLiteral flags []ib.SGE{...} with more than hardMaxSGE entries.
func checkOversizeLiteral(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return
	}
	if !analysis.NamedFrom(elem, "internal/ib", "SGE") {
		return
	}
	if len(cl.Elts) > hardMaxSGE {
		pass.Reportf(cl.Pos(), "SGE composite literal with %d entries exceeds the %d-entry work-request cap; pass it through the QP splitter instead", len(cl.Elts), hardMaxSGE)
	}
}

// checkParamsLiteral flags ib.Params{..., MaxSGE: <literal > 64>, ...}.
func checkParamsLiteral(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || !analysis.NamedFrom(tv.Type, "internal/ib", "Params") {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "MaxSGE" {
			continue
		}
		reportOverCap(pass, kv.Value)
	}
}

// checkParamsAssign flags `params.MaxSGE = <literal > 64>`.
func checkParamsAssign(pass *analysis.Pass, a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "MaxSGE" || i >= len(a.Rhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !analysis.NamedFrom(tv.Type, "internal/ib", "Params") {
			continue
		}
		reportOverCap(pass, a.Rhs[i])
	}
}

func reportOverCap(pass *analysis.Pass, v ast.Expr) {
	tv, ok := pass.TypesInfo.Types[v]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if n, ok := constant.Int64Val(tv.Value); ok && n > hardMaxSGE {
		pass.Reportf(v.Pos(), "MaxSGE %d exceeds the InfiniBand hardware cap of %d SGEs per work request (Section 4.1)", n, hardMaxSGE)
	}
}
