package sgelimit_test

import (
	"testing"

	"pvfsib/internal/analysis/analysistest"
	"pvfsib/internal/analysis/sgelimit"
)

func TestSGELimit(t *testing.T) {
	analysistest.Run(t, "testdata", sgelimit.Analyzer, "a")
}
