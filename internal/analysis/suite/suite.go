// Package suite enumerates the pvfslint analyzers. The cmd/pvfslint driver
// and the repository self-check test share this list.
package suite

import (
	"pvfsib/internal/analysis"
	"pvfsib/internal/analysis/detcheck"
	"pvfsib/internal/analysis/errflow"
	"pvfsib/internal/analysis/hotpath"
	"pvfsib/internal/analysis/lockorder"
	"pvfsib/internal/analysis/mrlife"
	"pvfsib/internal/analysis/nopanic"
	"pvfsib/internal/analysis/okreason"
	"pvfsib/internal/analysis/regcheck"
	"pvfsib/internal/analysis/sgelimit"
	"pvfsib/internal/analysis/simblock"
	"pvfsib/internal/analysis/tracecheck"
)

// All returns every analyzer in the suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		sgelimit.Analyzer,
		regcheck.Analyzer,
		simblock.Analyzer,
		nopanic.Analyzer,
		mrlife.Analyzer,
		errflow.Analyzer,
		lockorder.Analyzer,
		okreason.Analyzer,
		hotpath.Analyzer,
		tracecheck.Analyzer,
		detcheck.Analyzer,
	}
}
