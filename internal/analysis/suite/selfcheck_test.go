package suite

import (
	"os"
	"path/filepath"
	"testing"

	"pvfsib/internal/analysis/load"
)

// TestRepositoryIsClean runs the whole pvfslint suite over this repository
// and fails on any finding. This is the tier-1 guard behind the invariants
// the analyzers enforce: a regression that reintroduces a hot-path panic, a
// magic-number SGE cap, an unregistered RDMA buffer, or a blocking call
// under a held resource fails `go test ./...`, not just the lint step.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := load.Packages(root, []string{"./..."}, All())
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
