// Package detcheck defines a taint-style interprocedural analyzer for
// determinism: nondeterminism sources must not reach determinism-critical
// outputs. The repo's core invariant — byte-identical results across runs,
// GOMAXPROCS settings, and fault replays — survives only if no randomized
// order or wall-clock value flows into engine scheduling, simnet message
// ordering, stats, trace output, or bench tables.
//
// Sources: range over a map (iteration order is randomized per run; a
// pointer-keyed map is worse — order follows allocation addresses), wall
// clock (time.Now and friends), the process-global math/rand functions,
// and selects racing two or more communications (goroutine scheduling
// picks the winner).
//
// Sinks, matched by callee package: internal/sim, internal/simnet,
// internal/stats, internal/trace, internal/disk, internal/bench, plus
// fmt.Print*/Fprint*, (*json.Encoder).Encode, and os file methods. A
// function "reaches a sink" when its body calls one directly or
// transitively — computed bottom-up over callgraph SCCs, across packages
// when the driver shares one analysis.Repo (the standalone loader; go vet
// mode degrades to per-package summaries). Interface dispatch resolves via
// the call graph's name-set CHA; a dynamic call with no known targets is
// conservatively treated as sink-reaching.
//
// Sanitizers make a source clean:
//
//   - an order-insensitive map-range body: delete(m, k), counters
//     (n++, n += v), keyed inserts (m2[k] = v), and exists-checks that
//     return constants;
//   - collect-then-sort: keys/values appended to a slice that a stable or
//     total sort normalizes later in the same block (sort.Strings/Ints/
//     Float64s/Stable/SliceStable, slices.Sort*, or a helper named
//     sort*). sort.Slice and sort.Sort are NOT sanitizers: they are
//     unstable, so ties keep random map order — the finding says so;
//   - a *rand.Rand instance (assumed seeded from RunOpts.Seed) instead of
//     the global math/rand functions;
//   - a reasoned suppression: "//pvfslint:ok detcheck <why>" on the source
//     line kills the taint (the reason is audited by okreason).
//
// A function whose unsanitized source value is returned is marked
// "returns nondeterministically ordered data"; sink-reaching callers are
// flagged at the call site unless they sort the result before use.
//
// The analyzer skips _test.go files and the analysis tooling itself
// (internal/analysis/..., cmd/pvfslint), whose map iteration feeds only
// its own diagnostics.
package detcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pvfsib/internal/analysis"
	"pvfsib/internal/analysis/callgraph"
	"pvfsib/internal/analysis/dataflow"
)

// Analyzer flags nondeterminism sources that reach deterministic outputs.
var Analyzer = &analysis.Analyzer{
	Name: "detcheck",
	Doc:  "nondeterminism sources (map iteration, wall clock, global rand, racing selects) must not reach deterministic outputs (sim, simnet, stats, trace, bench)",
	Run:  run,
}

// summary is one function's interprocedural fact, keyed by callgraph ID.
type summary struct {
	// ReachesSink: calling this function can affect determinism-critical
	// output. SinkWhy is the call chain for messages.
	ReachesSink bool
	SinkWhy     string
	// ReturnsNondet: the function returns data derived from an unsanitized
	// source (map-range collect or wall-clock/rand value). NondetWhy names
	// the source.
	ReturnsNondet bool
	NondetWhy     string
}

// sumsKey is the Repo key of the cross-package summary store (the program
// itself is the run-wide shared one, see callgraph.Of).
const sumsKey = "detcheck.sums"

func run(pass *analysis.Pass) error {
	if skipPkg(pass.Pkg) {
		return nil
	}
	repo := pass.Repo
	if repo == nil {
		repo = analysis.NewRepo()
	}
	sums, _ := repo.Get(sumsKey).(map[string]summary)
	if sums == nil {
		sums = make(map[string]summary)
		repo.Set(sumsKey, sums)
	}

	prog, g := callgraph.Of(pass)
	d := &detcheck{pass: pass, prog: prog, facts: make(map[*callgraph.Node]*nodeFacts)}
	callgraph.Fixpoint(g.SCCs, sums,
		func(a, b summary) bool {
			return a.ReachesSink == b.ReachesSink && a.ReturnsNondet == b.ReturnsNondet
		},
		d.summarize)
	for _, n := range g.Nodes {
		d.report(n, sums)
	}
	return nil
}

// skipPkg exempts the analysis tooling: its map iteration feeds its own
// diagnostics, which the drivers sort before printing.
func skipPkg(pkg *types.Package) bool {
	p := pkg.Path()
	return strings.Contains(p, "internal/analysis") || strings.Contains(p, "cmd/pvfslint")
}

type detcheck struct {
	pass  *analysis.Pass
	prog  *callgraph.Program
	facts map[*callgraph.Node]*nodeFacts
}

// source is one unsanitized, unsuppressed nondeterminism source.
type source struct {
	pos    token.Pos
	what   string // "map iteration", "wall-clock time.Now", ...
	advice string // fix guidance appended to the message
	// collect is the slice variable a map range appends into, when the
	// range is a collect loop — used to decide whether the function
	// returns the nondeterministic data.
	collect types.Object
	// call is the source call expression (wall clock / rand), used the
	// same way.
	call *ast.CallExpr
}

// nodeFacts caches one function's local analysis across fixpoint sweeps.
type nodeFacts struct {
	srcs []source
	// returned idents and call expressions inside return statements.
	returnIdents map[types.Object]bool
	returnCalls  map[*ast.CallExpr]bool
}

// summarize computes one function's summary given its callees' (callgraph
// Fixpoint re-runs it within an SCC until nothing changes).
func (d *detcheck) summarize(n *callgraph.Node, sums map[string]summary) summary {
	var s summary
	for _, c := range n.Calls {
		if !s.ReachesSink {
			if why, ok := sinkCall(c); ok {
				s.ReachesSink, s.SinkWhy = true, why
			}
		}
		targets := d.prog.TargetsOf(c)
		if c.Dynamic && len(targets) == 0 && !s.ReachesSink {
			s.ReachesSink = true
			s.SinkWhy = "makes a dynamic call with unknown targets"
		}
		for _, id := range targets {
			t := sums[id]
			if t.ReachesSink && !s.ReachesSink {
				s.ReachesSink = true
				s.SinkWhy = chain(shortID(id), t.SinkWhy)
			}
		}
	}
	f := d.nodeFacts(n)
	// Returned taint: a source value that leaves through the results, or a
	// callee's nondeterministic result returned directly.
	for _, src := range f.srcs {
		if (src.collect != nil && f.returnIdents[src.collect]) ||
			(src.call != nil && f.returnCalls[src.call]) {
			s.ReturnsNondet = true
			s.NondetWhy = src.what + " at " + d.shortPos(src.pos)
			break
		}
	}
	if !s.ReturnsNondet {
		for _, c := range n.Calls {
			call, ok := c.Site.(*ast.CallExpr)
			if !ok || !f.returnCalls[call] {
				continue
			}
			for _, id := range d.prog.TargetsOf(c) {
				if t := sums[id]; t.ReturnsNondet {
					s.ReturnsNondet = true
					s.NondetWhy = chain(shortID(id), t.NondetWhy)
					break
				}
			}
			if s.ReturnsNondet {
				break
			}
		}
	}
	return s
}

// report emits findings for one function once summaries are final. Sources
// are only reported in sink-reaching functions: a nondeterministic order
// that provably cannot affect output needs no justification.
func (d *detcheck) report(n *callgraph.Node, sums map[string]summary) {
	s := sums[n.ID]
	if !s.ReachesSink {
		return
	}
	for _, src := range d.nodeFacts(n).srcs {
		d.pass.Reportf(src.pos, "%s in a function that reaches deterministic output (%s)%s", src.what, s.SinkWhy, src.advice)
	}
	// Calls returning nondeterministically ordered data, unless the result
	// is sorted later in the same block.
	walkBlocks(n.Decl.Body, func(stmts []ast.Stmt) {
		for i, st := range stmts {
			ast.Inspect(st, func(m ast.Node) bool {
				if _, ok := m.(*ast.BlockStmt); ok {
					return false // inner lists get their own walkBlocks visit
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := dataflow.Callee(d.pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				id := callgraph.IDOf(fn)
				t := sums[id]
				if !t.ReturnsNondet {
					return true
				}
				if as, ok := st.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) == 1 &&
					ast.Unparen(as.Rhs[0]) == call {
					if obj := identObj(d.pass.TypesInfo, as.Lhs[0]); obj != nil {
						if stable, _ := sortScan(d.pass.TypesInfo, stmts[i+1:], obj); stable {
							return true
						}
					}
				}
				d.pass.Reportf(call.Pos(), "call to %s returns nondeterministically ordered data (%s): sort or normalize the result before it reaches deterministic output", shortID(id), t.NondetWhy)
				return true
			})
		}
	})
}

// nodeFacts computes (once) the function's sources and return sets.
func (d *detcheck) nodeFacts(n *callgraph.Node) *nodeFacts {
	if f, ok := d.facts[n]; ok {
		return f
	}
	f := &nodeFacts{
		returnIdents: make(map[types.Object]bool),
		returnCalls:  make(map[*ast.CallExpr]bool),
	}
	body := n.Decl.Body
	info := d.pass.TypesInfo

	// Call and select sources, plus return sets: one plain walk.
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				ast.Inspect(r, func(x ast.Node) bool {
					switch x := x.(type) {
					case *ast.Ident:
						if obj := info.Uses[x]; obj != nil {
							f.returnIdents[obj] = true
						}
					case *ast.CallExpr:
						f.returnCalls[x] = true
					}
					return true
				})
			}
		case *ast.SelectStmt:
			ready := 0
			for _, cl := range m.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready >= 2 {
				f.srcs = append(f.srcs, source{
					pos:    m.Pos(),
					what:   fmt.Sprintf("select racing %d communications", ready),
					advice: ": the winner depends on goroutine scheduling",
				})
			}
		case *ast.CallExpr:
			if src, ok := callSource(info, m); ok {
				f.srcs = append(f.srcs, src)
			}
		}
		return true
	})

	// Map-range sources need block context for the collect-then-sort
	// sanitizer: the rest of the enclosing statement list.
	walkBlocks(body, func(stmts []ast.Stmt) {
		for i, st := range stmts {
			rs, ok := st.(*ast.RangeStmt)
			if !ok {
				continue
			}
			if src, ok := d.mapRangeSource(rs, stmts[i+1:]); ok {
				f.srcs = append(f.srcs, src)
			}
		}
	})

	// Suppressed sources are audited exceptions: they neither report nor
	// taint (a directive on the source kills the whole chain).
	kept := f.srcs[:0]
	for _, src := range f.srcs {
		if !d.pass.Suppressed(src.pos) {
			kept = append(kept, src)
		}
	}
	f.srcs = kept
	d.facts[n] = f
	return f
}

// mapRangeSource classifies one range statement: not a map, sanitized, or
// a source (with the pointer-key and unstable-sort message variants).
func (d *detcheck) mapRangeSource(rs *ast.RangeStmt, rest []ast.Stmt) (source, bool) {
	tv, ok := d.pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return source{}, false
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return source{}, false
	}
	info := d.pass.TypesInfo
	if orderInsensitiveStmts(info, rs.Body.List, rangeVars(info, rs)) {
		return source{}, false
	}
	collected := collectTargets(info, rs.Body)
	if len(collected) > 0 {
		stable, unstable := sortScan(info, rest, collected...)
		if stable {
			return source{}, false
		}
		if unstable != nil {
			return source{
				pos:     unstable.Pos(),
				what:    "map-collected data sorted with " + sortName(info, unstable),
				advice:  ": the sort is unstable, so ties keep random map order — use sort.SliceStable or sort plain keys",
				collect: collected[0],
			}, true
		}
	}
	src := source{
		pos:    rs.Pos(),
		what:   "map iteration",
		advice: ": iteration order is randomized — sort the keys first (sort.Strings/sort.SliceStable) or make the loop body order-insensitive",
	}
	if _, ptr := m.Key().Underlying().(*types.Pointer); ptr {
		src.what = "iteration over a pointer-keyed map"
		src.advice = ": order follows allocation addresses and cannot be sorted into shape — key the map by a stable ID"
	}
	if len(collected) > 0 {
		src.collect = collected[0]
	}
	return src, true
}

// callSource classifies wall-clock and global-rand calls.
func callSource(info *types.Info, call *ast.CallExpr) (source, bool) {
	fn := dataflow.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return source{}, false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until", "Sleep", "After", "Tick", "NewTicker", "NewTimer":
			return source{
				pos:    call.Pos(),
				what:   "wall-clock time." + fn.Name(),
				advice: ": virtual time (sim.Proc.Now) is the deterministic clock; audit intentional real-time uses with //pvfslint:ok detcheck <why>",
				call:   call,
			}, true
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the process-global, racy
		// source; methods on a *rand.Rand instance are assumed seeded from
		// RunOpts.Seed. Constructors are deterministic.
		if fn.Type().(*types.Signature).Recv() != nil || fn.Name() == "New" || strings.HasPrefix(fn.Name(), "NewSource") {
			return source{}, false
		}
		return source{
			pos:    call.Pos(),
			what:   "global math/rand." + fn.Name(),
			advice: ": process-global and unseeded — use a *rand.Rand seeded from RunOpts.Seed",
			call:   call,
		}, true
	}
	return source{}, false
}

// sinkCall reports whether a call edge lands in a determinism-critical
// package or output routine, with a short description.
var sinkPkgs = []string{
	"internal/sim", "internal/simnet", "internal/stats",
	"internal/trace", "internal/disk", "internal/bench",
}

func sinkCall(c callgraph.Call) (string, bool) {
	fn := c.Static
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	for _, suf := range sinkPkgs {
		if analysis.PathHasSuffix(path, suf) {
			return "calls " + shortID(callgraph.IDOf(fn)), true
		}
	}
	switch {
	case path == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
		return "calls fmt." + fn.Name(), true
	case path == "encoding/json" && fn.Name() == "Encode":
		return "encodes JSON output", true
	case path == "os" && fn.Type().(*types.Signature).Recv() != nil:
		return "writes through os." + fn.Name(), true
	}
	return "", false
}

// ---- sanitizer recognizers ----

// rangeVars collects the objects bound by the range clause.
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if obj := identObj(info, e); obj != nil {
			out[obj] = true
		}
	}
	return out
}

// orderInsensitiveStmts reports whether every statement commutes across
// iterations: deletes, counters, keyed inserts, continues, and
// exists-checks returning constants.
func orderInsensitiveStmts(info *types.Info, stmts []ast.Stmt, rvars map[types.Object]bool) bool {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "delete") {
				return false
			}
		case *ast.IncDecStmt:
			// n++ / n-- commute.
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				// Compound updates with commutative, associative operators.
			case token.ASSIGN:
				// Keyed insert m2[k] = v: distinct keys per iteration, so
				// order cannot matter. Anything else may overwrite.
				for _, lhs := range st.Lhs {
					ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok || !mentionsVar(info, ix.Index, rvars) {
						return false
					}
				}
			default:
				return false
			}
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil {
				return false
			}
			if !isConstReturn(st.Body) && !orderInsensitiveStmts(info, st.Body.List, rvars) {
				return false
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return false
			}
		case *ast.ReturnStmt:
			if !constResults(st) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isConstReturn recognizes the exists-check body: a single return of
// constants ("if mr.Covers(e) { return true }").
func isConstReturn(b *ast.BlockStmt) bool {
	if len(b.List) != 1 {
		return false
	}
	ret, ok := b.List[0].(*ast.ReturnStmt)
	return ok && constResults(ret)
}

func constResults(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		switch r := ast.Unparen(r).(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if r.Name != "true" && r.Name != "false" && r.Name != "nil" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectTargets returns the slice variables the body appends into
// (x = append(x, ...)): candidates for the collect-then-sort sanitizer.
func collectTargets(info *types.Info, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") {
			return true
		}
		if obj := identObj(info, as.Lhs[0]); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// sortScan looks through the statements after a collect loop (or an
// assignment) for a sort of one of the collected objects. It returns
// whether a sanitizing (stable or key) sort was found, and the first
// unstable sort call (sort.Slice / sort.Sort) on the data otherwise.
func sortScan(info *types.Info, rest []ast.Stmt, objs ...types.Object) (bool, *ast.CallExpr) {
	want := make(map[types.Object]bool, len(objs))
	for _, o := range objs {
		want[o] = true
	}
	var unstable *ast.CallExpr
	stable := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind := sortKind(info, call)
			if kind == sortNone {
				return true
			}
			if obj := sortArgObj(info, call.Args[0]); obj == nil || !want[obj] {
				return true
			}
			switch kind {
			case sortStable:
				stable = true
			case sortUnstable:
				if unstable == nil {
					unstable = call
				}
			}
			return true
		})
		if stable {
			return true, nil
		}
	}
	return false, unstable
}

type sortClass int

const (
	sortNone sortClass = iota
	sortStable
	sortUnstable
)

// sortKind classifies a call as a sanitizing sort, an unstable sort, or
// neither. Key sorts (sort.Strings/Ints/Float64s, slices.Sort*) and the
// stable variants sanitize; sort.Slice and sort.Sort are unstable. An
// in-program helper named sort*/Sort* (the sortInt64s idiom) is trusted.
func sortKind(info *types.Info, call *ast.CallExpr) sortClass {
	fn := dataflow.Callee(info, call)
	if fn == nil {
		return sortNone
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort":
			switch name {
			case "Strings", "Ints", "Float64s", "Stable", "SliceStable":
				return sortStable
			case "Slice", "Sort":
				return sortUnstable
			}
			return sortNone
		case "slices":
			if strings.HasPrefix(name, "Sort") {
				return sortStable
			}
			return sortNone
		}
	}
	if strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort") {
		return sortStable
	}
	return sortNone
}

// sortArgObj resolves the sorted value: a plain identifier, possibly
// wrapped in one conversion (sort.Sort(byName(ks))).
func sortArgObj(info *types.Info, arg ast.Expr) types.Object {
	arg = ast.Unparen(arg)
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) == 1 {
		arg = ast.Unparen(call.Args[0])
	}
	return identObj(info, arg)
}

func sortName(info *types.Info, call *ast.CallExpr) string {
	fn := dataflow.Callee(info, call)
	if fn == nil {
		return "an unstable sort"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
		return "sort." + fn.Name()
	}
	return fn.Name()
}

// ---- small helpers ----

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// mentionsVar reports whether e reads one of the given objects.
func mentionsVar(info *types.Info, e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkBlocks visits every statement list in body exactly once: nested
// blocks, case bodies, comm bodies, and function-literal bodies.
func walkBlocks(body *ast.BlockStmt, visit func(stmts []ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

// shortID trims the module prefix off a callgraph ID for messages:
// "(pvfsib/internal/sim.Engine).Go" becomes "(sim.Engine).Go".
func shortID(id string) string {
	trim := func(p string) string {
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	if strings.HasPrefix(id, "(") {
		if j := strings.Index(id, ")"); j > 0 {
			return "(" + trim(id[1:j]) + id[j:]
		}
	}
	return trim(id)
}

// chain prefixes one hop onto a callee's why-string, keeping it short.
func chain(name, why string) string {
	s := "calls " + name
	if tail := strings.TrimPrefix(why, "calls "); tail != "" && tail != why {
		s += " → " + tail
	} else if why != "" {
		s += " → " + why
	}
	if len(s) > 120 {
		s = strings.ToValidUTF8(s[:117], "") + "..."
	}
	return s
}

func (d *detcheck) shortPos(p token.Pos) string {
	pos := d.pass.Fset.Position(p)
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
