package detcheck_test

import (
	"testing"

	"pvfsib/internal/analysis/analysistest"
	"pvfsib/internal/analysis/detcheck"
)

func TestDetcheck(t *testing.T) {
	analysistest.Run(t, "testdata", detcheck.Analyzer, "a")
}
