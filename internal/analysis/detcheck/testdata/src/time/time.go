// Package time is a corpus stub mirroring the wall-clock surface detcheck
// matches by import path.
package time

type Time struct{}

func (Time) UnixNano() int64 { return 0 }

type Duration int64

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Until(t Time) Duration  { return 0 }
func Sleep(d Duration)       {}
