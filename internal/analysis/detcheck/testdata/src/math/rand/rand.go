// Package rand is a corpus stub mirroring the math/rand surface detcheck
// matches by import path: global functions are sources, instance methods
// and constructors are not.
package rand

type Source interface{ Int63() int64 }

func NewSource(seed int64) Source { return nil }

type Rand struct{}

func New(src Source) *Rand     { return &Rand{} }
func (r *Rand) Intn(n int) int { return 0 }

func Intn(n int) int { return 0 }
func Int63() int64   { return 0 }
