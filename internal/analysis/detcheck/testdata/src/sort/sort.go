// Package sort is a corpus stub mirroring the sanitizer surface detcheck
// matches by import path: key and stable sorts sanitize, Slice/Sort do not.
package sort

type Interface interface {
	Len() int
	Less(i, j int) bool
	Swap(i, j int)
}

func Strings(x []string)                            {}
func Ints(x []int)                                  {}
func Sort(data Interface)                           {}
func Stable(data Interface)                         {}
func Slice(x any, less func(i, j int) bool)         {}
func SliceStable(x any, less func(i, j int) bool)   {}
