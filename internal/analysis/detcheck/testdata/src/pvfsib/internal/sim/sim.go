// Package sim is a test stub: just enough of the simulator's surface for
// the analyzers' type checks to engage. No stdlib imports (the analysistest
// loader resolves imports only within the corpus).
package sim

type Engine struct{}

func NewEngine() *Engine                                 { return &Engine{} }
func (e *Engine) Run() error                             { return nil }
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc { return nil }

type Proc struct{}

func (p *Proc) Now() int64 { return 0 }
