// Package a exercises detcheck: nondeterminism sources flowing into
// deterministic outputs, the sanitizer idioms that clean them, returned
// taint, interprocedural (SCC and interface-dispatch) sink reachability,
// and suppression.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pvfsib/internal/sim"
)

// ---- map iteration ----

func MapRangeToSink(eng *sim.Engine, m map[string]int) {
	for k := range m { // want `map iteration in a function that reaches deterministic output`
		eng.Go(k, func(p *sim.Proc) {})
	}
}

// Collect then stable sort sanitizes.
func SortedKeysClean(eng *sim.Engine, m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		eng.Go(k, func(p *sim.Proc) {})
	}
}

// sort.Slice is unstable: ties keep random map order.
func UnstableSortPrint(m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return len(ks[i]) < len(ks[j]) }) // want `map-collected data sorted with sort\.Slice`
	fmt.Println(ks)
}

// Order-insensitive bodies are clean: counters, deletes, exists-checks.

func CountClean(eng *sim.Engine, m map[string]int) {
	n := 0
	for range m {
		n++
	}
	eng.Go("count", nil)
	_ = n
}

func DeleteClean(eng *sim.Engine, m map[string]int) {
	for k := range m {
		delete(m, k)
	}
	eng.Go("clear", nil)
}

func ExistsSink(eng *sim.Engine, m map[string]bool) bool {
	for _, v := range m {
		if v {
			return true
		}
	}
	eng.Go("exists", nil)
	return false
}

func PtrKeyed(eng *sim.Engine, m map[*Conn]int) {
	for c := range m { // want `iteration over a pointer-keyed map`
		eng.Go(c.name, nil)
	}
}

type Conn struct{ name string }

// A dynamic call with unknown targets is conservatively sink-reaching.
func CallbackUnknown(m map[string]int, f func(string)) {
	for k := range m { // want `map iteration`
		f(k)
	}
}

// A reasoned suppression on the source kills the chain.
func AuditedRange(eng *sim.Engine, m map[string]int) {
	//pvfslint:ok detcheck shutdown path, order observed only in aggregate
	for k := range m {
		eng.Go(k, nil)
	}
}

// ---- wall clock and rand ----

func WallClock(eng *sim.Engine) {
	t := time.Now() // want `wall-clock time\.Now`
	_ = t
	eng.Go("tick", nil)
}

func AuditedWallClock(eng *sim.Engine) {
	t := time.Now() //pvfslint:ok detcheck host metadata only, never compared across runs
	_ = t
	eng.Go("meta", nil)
}

func GlobalRand(eng *sim.Engine) {
	n := rand.Intn(8) // want `global math/rand\.Intn`
	_ = n
	eng.Go("jitter", nil)
}

func SeededRandClean(eng *sim.Engine, seed int64) {
	r := rand.New(rand.NewSource(seed))
	n := r.Intn(8)
	_ = n
	eng.Go("jitter", nil)
}

// ---- racing select ----

func RacySelect(eng *sim.Engine, a, b chan int) {
	select { // want `select racing 2 communications`
	case <-a:
	case <-b:
	}
	eng.Go("race", nil)
}

// ---- interprocedural: transitive sinks, SCCs, dispatch ----

func spawn(eng *sim.Engine, name string) {
	eng.Go(name, nil)
}

func TransitiveMapRange(eng *sim.Engine, m map[string]int) {
	for k := range m { // want `map iteration in a function that reaches deterministic output \(calls a\.spawn`
		spawn(eng, k)
	}
}

// Mutual recursion: sink reachability converges through the SCC.

func pingPong(eng *sim.Engine, n int) {
	if n == 0 {
		return
	}
	pong(eng, n)
}

func pong(eng *sim.Engine, n int) {
	eng.Go("p", nil)
	pingPong(eng, n-1)
}

func RecursiveMapRange(eng *sim.Engine, m map[string]int) {
	for k := range m { // want `map iteration`
		pingPong(eng, len(k))
	}
}

// Interface dispatch: one implementation reaches a sink, so call sites
// through the interface do too.

type policy interface{ deliver(n int) bool }

type dropper struct{}

func (dropper) deliver(n int) bool { return false }

type logger struct{ eng *sim.Engine }

func (l logger) deliver(n int) bool { l.eng.Go("d", nil); return true }

func Dispatch(p policy, m map[int]int) {
	for k := range m { // want `map iteration`
		p.deliver(k)
	}
}

var _ = []policy{dropper{}, logger{}}

// ---- returned taint ----

func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func UseKeys(eng *sim.Engine, m map[string]int) {
	for _, k := range keys(m) { // want `call to a\.keys returns nondeterministically ordered data`
		eng.Go(k, nil)
	}
}

func UseKeysSorted(eng *sim.Engine, m map[string]int) {
	ks := keys(m)
	sort.Strings(ks)
	for _, k := range ks {
		eng.Go(k, nil)
	}
}
