// Package fmt is a corpus stub: Print* are detcheck sinks, Sprintf is not.
package fmt

func Println(a ...any) (int, error)               { return 0, nil }
func Printf(format string, a ...any) (int, error) { return 0, nil }
func Sprintf(format string, a ...any) string      { return "" }
