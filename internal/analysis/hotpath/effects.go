package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"pvfsib/internal/analysis/callgraph"
)

// localEffect is one effect site in a function's own body.
type localEffect struct {
	kind Kind
	what string
	pos  token.Pos
}

// localEffects walks one function body and records its own effect sites —
// the base facts the fixpoint propagates. Function-literal bodies are
// descended into: the callgraph attributes a literal's calls to the
// enclosing declaration, and the effects follow the same attribution.
// Results are cached: within an SCC the fixpoint re-runs summarize, and the
// body does not change between sweeps.
func (h *hot) localEffects(n *callgraph.Node) []localEffect {
	if le, ok := h.facts[n]; ok {
		return le
	}
	var out []localEffect
	add := func(kind Kind, what string, pos token.Pos) {
		out = append(out, localEffect{kind: kind, what: what, pos: pos})
	}
	info := n.Info
	if n.Decl != nil && n.Decl.Body != nil {
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.GoStmt:
				add(KindAlloc, "go statement (new goroutine)", nd.Pos())
			case *ast.SendStmt:
				add(KindBlock, "chan send", nd.Pos())
			case *ast.UnaryExpr:
				switch nd.Op {
				case token.ARROW:
					add(KindBlock, "chan receive", nd.Pos())
				case token.AND:
					if _, ok := nd.X.(*ast.CompositeLit); ok {
						add(KindAlloc, "composite literal (&T{})", nd.Pos())
					}
				}
			case *ast.SelectStmt:
				add(KindBlock, "select", nd.Pos())
			case *ast.RangeStmt:
				if tv, ok := info.Types[nd.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						add(KindBlock, "range over channel", nd.Pos())
					}
				}
			case *ast.FuncLit:
				add(KindAlloc, "closure", nd.Pos())
			case *ast.CompositeLit:
				if tv, ok := info.Types[nd]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice:
						add(KindAlloc, "slice literal", nd.Pos())
					case *types.Map:
						add(KindAlloc, "map literal", nd.Pos())
					}
				}
			case *ast.BinaryExpr:
				if nd.Op == token.ADD && isStringExpr(info, nd.X) && !isConstExpr(info, nd) {
					add(KindAlloc, "string concatenation", nd.Pos())
				}
			case *ast.AssignStmt:
				if nd.Tok == token.ADD_ASSIGN && len(nd.Lhs) == 1 && isStringExpr(info, nd.Lhs[0]) {
					add(KindAlloc, "string concatenation", nd.Pos())
				}
				for _, lhs := range nd.Lhs {
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						if tv, ok := info.Types[ix.X]; ok {
							if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
								add(KindAlloc, "map insert", nd.Pos())
							}
						}
					}
				}
			case *ast.CallExpr:
				h.callEffects(info, nd, add)
			}
			return true
		})
	}
	h.facts[n] = out
	return out
}

// callEffects records the effects a call expression itself implies:
// allocating builtins, copying conversions, variadic slices, and arguments
// boxed into interface parameters.
func (h *hot) callEffects(info *types.Info, call *ast.CallExpr, add func(Kind, string, token.Pos)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(KindAlloc, "make", call.Pos())
			case "new":
				add(KindAlloc, "new", call.Pos())
			case "append":
				add(KindAlloc, "append (may grow)", call.Pos())
			case "print", "println":
				add(KindSyscall, "builtin "+b.Name(), call.Pos())
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// A conversion: only the representation-changing ones copy.
		if convAllocates(tv.Type, info.Types[call.Args[0]].Type) {
			add(KindAlloc, "string conversion", call.Pos())
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		add(KindAlloc, "variadic argument slice", call.Pos())
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			add(KindAlloc, "interface conversion (boxing)", arg.Pos())
		}
	}
}

// boxes reports whether passing arg to a parameter of type pt converts a
// concrete value into an interface in a way that may heap-allocate: the
// parameter is an interface, the argument is a concrete non-constant value,
// and its representation is not already a single pointer word.
func boxes(info *types.Info, pt types.Type, arg ast.Expr) bool {
	if _, isIface := pt.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Value != nil {
		return false
	}
	at := tv.Type
	if at == nil || at == types.Typ[types.UntypedNil] {
		return false
	}
	if _, isIface := at.Underlying().(*types.Interface); isIface {
		return false // interface-to-interface carries the existing box
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// convAllocates reports whether converting from to dst copies the value's
// backing store (string <-> []byte/[]rune).
func convAllocates(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// intrinsicEffect assigns effects to calls that leave the analyzed program
// (stdlib and export-data-only packages). Everything not in this table is
// treated as effect-free — the deliberate closed-world assumption: the
// simulator is stdlib-only, and the table covers the stdlib's blocking,
// wall-clock, and allocating entry points that hot-path code could
// plausibly reach. A new stdlib dependency on the hot path extends the
// table, not the budget.
func intrinsicEffect(fn *types.Func) (Kind, string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, "", false
	}
	name := fn.Name()
	qual := pkg.Name() + "." + name
	switch pkg.Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return KindSyscall, qual, true
		case "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return KindBlock, qual, true
		}
	case "os", "syscall":
		return KindSyscall, qual, true
	case "runtime":
		switch name {
		case "GC", "Gosched", "ReadMemStats":
			return KindSyscall, qual, true
		}
	case "fmt":
		switch name {
		case "Sprint", "Sprintf", "Sprintln", "Errorf", "Appendf", "Append", "Appendln":
			return KindAlloc, qual, true
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
			"Scan", "Scanf", "Scanln", "Fscan", "Fscanf", "Fscanln":
			return KindSyscall, qual, true
		}
	case "errors":
		switch name {
		case "New", "Join":
			return KindAlloc, qual, true
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote", "QuoteRune",
			"AppendInt", "AppendUint", "AppendFloat", "AppendQuote":
			return KindAlloc, qual, true
		}
	case "strings":
		switch name {
		case "Repeat", "Join", "Replace", "ReplaceAll", "ToUpper", "ToLower",
			"Split", "SplitN", "Fields", "Map", "Clone", "Title",
			// strings.Builder methods grow a heap buffer.
			"String", "WriteString", "WriteByte", "WriteRune", "Write", "Grow":
			return KindAlloc, qual, true
		}
	case "bytes":
		switch name {
		case "Repeat", "Join", "ToUpper", "ToLower", "Clone", "Split", "SplitN", "Fields",
			"String", "WriteString", "WriteByte", "WriteRune", "Write", "Grow":
			return KindAlloc, qual, true
		}
	case "sync":
		switch name {
		case "Lock", "RLock", "Wait", "Do":
			return KindBlock, qual, true
		}
	case "sort":
		switch name {
		case "Sort", "Stable", "Strings", "Ints", "Float64s":
			// sort boxes through sort.Interface / allocates scratch.
			return KindAlloc, qual, true
		}
	case "container/heap":
		if name == "Push" {
			return KindAlloc, "heap.Push (boxes the pushed value)", true
		}
	}
	return 0, "", false
}

// heapTargets devirtualizes container/heap helpers: heap.Push(h, x) calls
// h's Push/Len/Less/Swap, so the implementor's methods — if they are in the
// analyzed program — propagate their summaries through the stdlib call.
func (h *hot) heapTargets(n *callgraph.Node, c callgraph.Call) []string {
	if c.Static == nil || c.Static.Pkg() == nil || c.Static.Pkg().Path() != "container/heap" {
		return nil
	}
	switch c.Static.Name() {
	case "Init", "Push", "Pop", "Fix", "Remove":
	default:
		return nil
	}
	call, ok := c.Site.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	tv, ok := n.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return nil
	}
	var ids []string
	mset := types.NewMethodSet(tv.Type)
	for _, m := range []string{"Len", "Less", "Swap", "Push", "Pop"} {
		for i := 0; i < mset.Len(); i++ {
			if fn, ok := mset.At(i).Obj().(*types.Func); ok && fn.Name() == m {
				id := callgraph.IDOf(fn)
				if h.prog.Node(id) != nil {
					ids = append(ids, id)
				}
			}
		}
	}
	return ids
}

// devirt resolves an interface call site to a single concrete method when
// the receiver is a local variable with exactly one assignment of concrete
// type and its address is never taken — the per-callsite devirtualization
// rule. It is deliberately narrow: anything less locally evident stays a
// dynamic site, which keeps the result identical in standalone and vet
// modes.
func (h *hot) devirt(n *callgraph.Node, c callgraph.Call) (string, bool) {
	call, ok := c.Site.(*ast.CallExpr)
	if !ok || n.Decl == nil || n.Decl.Body == nil {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, ok := n.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return "", false
	}
	// Local to this function body (parameters are excluded: they sit before
	// the body and their value is the caller's choice).
	if obj.Pos() < n.Decl.Body.Pos() || obj.Pos() >= n.Decl.Body.End() {
		return "", false
	}
	var assigns int
	var concrete types.Type
	bad := false
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.AssignStmt:
			for i, lhs := range nd.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if n.Info.Defs[lid] != obj && n.Info.Uses[lid] != obj {
					continue
				}
				assigns++
				if len(nd.Rhs) == len(nd.Lhs) {
					if tv, ok := n.Info.Types[nd.Rhs[i]]; ok {
						concrete = tv.Type
						continue
					}
				}
				bad = true // multi-value or untypeable RHS
			}
		case *ast.ValueSpec:
			for i, name := range nd.Names {
				if n.Info.Defs[name] != obj {
					continue
				}
				if i < len(nd.Values) {
					assigns++
					if tv, ok := n.Info.Types[nd.Values[i]]; ok {
						concrete = tv.Type
					} else {
						bad = true
					}
				}
			}
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if xid, ok := ast.Unparen(nd.X).(*ast.Ident); ok && n.Info.Uses[xid] == obj {
					bad = true // address taken: assignable through the pointer
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{nd.Key, nd.Value} {
				if rid, ok := e.(*ast.Ident); ok && (n.Info.Defs[rid] == obj || n.Info.Uses[rid] == obj) {
					bad = true
				}
			}
		}
		return true
	})
	if bad || assigns != 1 || concrete == nil {
		return "", false
	}
	if _, isIface := concrete.Underlying().(*types.Interface); isIface {
		return "", false
	}
	if concrete == types.Typ[types.UntypedNil] {
		return "", false
	}
	mobj, _, _ := types.LookupFieldOrMethod(concrete, true, n.Pkg, c.Method)
	fn, ok := mobj.(*types.Func)
	if !ok {
		return "", false
	}
	return callgraph.IDOf(fn), true
}
