// Package hotpath defines a summary-based interprocedural analyzer for the
// simulator's performance-critical call cones. The paper's contribution is a
// lean noncontiguous-I/O fast path — zero-copy RDMA gather/scatter instead
// of pack/unpack — and the repo's engine work made the event loop
// allocation-free; this analyzer makes both properties static: they are
// proved over the whole call graph on every lint run instead of sampled by
// whichever configurations the benchmarks happen to cover.
//
// A function opts in as a hot-path root with a directive in its doc comment:
//
//	//pvfslint:hotpath            (budget every effect class)
//	//pvfslint:hotpath alloc,syscall  (blocking is this root's job — parking
//	                                   in virtual time — so only allocation
//	                                   and wall-clock effects are budgeted)
//
// For every function the analyzer computes, bottom-up over callgraph SCCs
// via the generic Fixpoint driver, a may-effect summary:
//
//   - alloc: make/new/append, composite literals of slice/map type, &T{},
//     closures and go statements, map inserts, string concatenation,
//     conversions that copy, arguments boxed into interface parameters,
//     variadic argument slices, bound method values, and allocating stdlib
//     intrinsics (fmt.Sprintf, errors.New, container/heap.Push, ...);
//   - block: channel operations (send, receive, select, range), blocking
//     stdlib intrinsics (sync Lock/Wait, time.Sleep) — the sim package's
//     own wait primitives need no special cases, their channel handshakes
//     propagate up through their bodies;
//   - syscall: wall-clock reads (time.Now and friends) and os/syscall
//     calls — the effects the engine-sharding roadmap item must prove
//     absent under the partitioned event loop;
//   - dynamic: a call site whose callees the analysis cannot enumerate
//     (func-typed values, interface dispatch that neither per-callsite
//     devirtualization nor CHA pins down locally). Dynamic sites are
//     budgeted regardless of the root's class list: they could hide any
//     effect.
//
// Interface dispatch is devirtualized per call site when the receiver is a
// local variable with exactly one assignment of concrete type; otherwise
// the dispatch is budgeted as dynamic and, additionally, every CHA
// implementor's summary propagates (standalone mode sees cross-package
// implementors; the go vet driver analyzes one compilation unit per process
// and degrades to the same-package subset, which is why the dynamic entry —
// computable identically in both modes — is the budget key, not the CHA
// resolution).
//
// Findings are diffed against a checked-in baseline, lint/hotpath.budget.json,
// keyed by (root, effect, containing function, what). The baseline is a
// ratchet, not a snapshot: any effect not in the budget fails the suite with
// a root→callee chain; a budget entry the analysis no longer produces is a
// hard error (stale audit, detected in the Finish hook of whole-module
// runs); a matched entry with an empty reason is an error too — the same
// hygiene okreason enforces for //pvfslint:ok. "pvfslint -write-budget"
// regenerates the file, preserving existing reasons.
//
// hotpath also subsumes the retired engescape analyzer: no *sim.Proc or
// *sim.Engine may be captured by a real goroutine or stored in a
// package-level variable (see escape.go). Those checks are unconditional —
// repo-wide, not root-scoped — and keep engescape's suppression contract
// under "//pvfslint:ok hotpath <reason>".
//
// Test files and the analysis tooling itself (internal/analysis/...,
// cmd/pvfslint) are skipped.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pvfsib/internal/analysis"
	"pvfsib/internal/analysis/callgraph"
)

// Analyzer enforces the allocation/blocking/wall-clock budget of declared
// hot-path roots.
var Analyzer = &analysis.Analyzer{
	Name:   "hotpath",
	Doc:    "effects reachable from //pvfslint:hotpath roots (allocation, blocking, syscall/wall-clock, dynamic dispatch) must be audited in lint/hotpath.budget.json; sim engine handles must not escape to goroutines or globals",
	Run:    run,
	Finish: finish,
}

// Kind classifies one effect.
type Kind uint8

const (
	KindAlloc Kind = iota
	KindBlock
	KindSyscall
	KindDynamic
)

func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindBlock:
		return "block"
	case KindSyscall:
		return "syscall"
	case KindDynamic:
		return "dynamic"
	}
	return "?"
}

// noun renders the kind for diagnostics.
func (k Kind) noun() string {
	switch k {
	case KindAlloc:
		return "allocation"
	case KindBlock:
		return "blocking effect"
	case KindSyscall:
		return "syscall/wall-clock effect"
	case KindDynamic:
		return "dynamic call"
	}
	return "effect"
}

// class bits for the directive's optional filter list.
const (
	classAlloc uint8 = 1 << iota
	classBlock
	classSyscall
	classAll = classAlloc | classBlock | classSyscall
)

// effKey identifies one budgetable effect: its kind, the function whose body
// contains the effect site, and a short description. The witness chain is
// deliberately not part of the key — a refactor that reroutes the path to an
// already-audited effect does not invalidate the audit.
type effKey struct {
	kind Kind
	fn   string // callgraph ID of the containing function
	what string
}

// witness carries one deterministic evidence trail for an effect key.
type witness struct {
	// pos is the effect site itself (possibly in another package).
	pos token.Pos
	// site is the first-hop call site inside the summarized function — the
	// position diagnostics anchor to, always in the reporting package.
	site token.Pos
	// chain lists callee IDs from the summarized function down to (and
	// including) the containing function; empty for own-body effects.
	chain []string
}

// effSummary is one function's may-effect set. It only grows across fixpoint
// sweeps (own effects are fixed, callee summaries are monotone), so summary
// equality is a length compare.
type effSummary map[effKey]witness

// rootInfo records one declared hot-path root.
type rootInfo struct {
	classes uint8
	declPos token.Pos
}

// stateKey is the Repo key of the run-wide hotpath state.
const stateKey = "hotpath.state"

// state is the cross-package accumulator for one driver run.
type state struct {
	sums       map[string]effSummary
	budget     *Budget
	budgetPath string
	matched    []bool // per budget entry
	produced   []Entry
	seen       map[string]bool // produced entry keys
	fresh      []Entry         // produced but not budgeted
	stale      []Entry         // budgeted but not produced (filled by finish)
	roots      map[string]rootInfo
	pkgs       map[string]bool // packages whose summaries this run computed
}

func getState(repo *analysis.Repo) *state {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil {
		st = &state{
			sums:  make(map[string]effSummary),
			seen:  make(map[string]bool),
			roots: make(map[string]rootInfo),
			pkgs:  make(map[string]bool),
		}
		repo.Set(stateKey, st)
	}
	return st
}

func run(pass *analysis.Pass) error {
	// The escape checks are unconditional and repo-wide: a leaked engine
	// handle breaks cell independence whether or not a root reaches it.
	checkEscapes(pass)

	if skipPkg(pass.Pkg) {
		return nil
	}
	repo := pass.Repo
	if repo == nil {
		repo = analysis.NewRepo()
	}
	st := getState(repo)
	st.pkgs[pass.Pkg.Path()] = true

	prog, g := callgraph.Of(pass)
	h := &hot{pass: pass, prog: prog, st: st, facts: make(map[*callgraph.Node][]localEffect)}

	// Collect this package's root directives before summarizing, so a root
	// that is also reachable from another root is still summarized normally.
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		rest, ok := rootDirective(n.Decl)
		if !ok {
			continue
		}
		classes, err := parseClasses(rest)
		if err != nil {
			pass.Reportf(n.Decl.Pos(), "bad //pvfslint:hotpath directive on %s: %v", shortID(n.ID), err)
			continue
		}
		st.roots[n.ID] = rootInfo{classes: classes, declPos: n.Decl.Name.Pos()}
		roots = append(roots, n)
	}

	callgraph.Fixpoint(g.SCCs, st.sums,
		func(a, b effSummary) bool { return len(a) == len(b) },
		h.summarize)

	// Load the baseline even when this package declares no roots: a budget
	// entry whose root directive was deleted outright must still turn stale
	// in Finish, which requires the budget to have been resolved.
	if err := h.loadBudget(); err != nil {
		return err
	}
	if len(roots) == 0 {
		return nil
	}
	idx := st.budget.index()
	for _, n := range roots {
		ri := st.roots[n.ID]
		s := st.sums[n.ID]
		keys := make([]effKey, 0, len(s))
		for k := range s {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			if a.fn != b.fn {
				return a.fn < b.fn
			}
			return a.what < b.what
		})
		for _, k := range keys {
			if k.kind != KindDynamic && ri.classes&classBit(k.kind) == 0 {
				continue
			}
			w := s[k]
			e := Entry{Root: n.ID, Effect: k.kind.String(), Func: k.fn, What: k.what, Chain: w.chain}
			if st.seen[e.key()] {
				continue
			}
			st.seen[e.key()] = true
			st.produced = append(st.produced, e)
			if i, ok := idx[e.key()]; ok {
				st.matched[i] = true
				continue
			}
			st.fresh = append(st.fresh, e)
			via := ""
			if len(w.chain) > 0 {
				parts := make([]string, len(w.chain))
				for i, id := range w.chain {
					parts[i] = shortID(id)
				}
				via = " (via " + strings.Join(parts, " → ") + ")"
			}
			pass.Reportf(w.site, "hot path %s: %s %q in %s%s — not in the hotpath budget: eliminate it, or audit it with a reasoned entry via pvfslint -write-budget",
				shortID(n.ID), k.kind.noun(), k.what, shortID(k.fn), via)
		}
	}
	return nil
}

// loadBudget resolves and loads the baseline once per run. An unreadable or
// malformed budget is a load error (driver exit 2), not a finding.
func (h *hot) loadBudget() error {
	st := h.st
	if st.budget != nil {
		return nil
	}
	path := BudgetOverride
	if path == "" {
		path = discoverBudget(h.pass)
	}
	b, err := LoadBudget(path)
	if err != nil {
		return fmt.Errorf("hotpath: reading budget %s: %w", path, err)
	}
	st.budget = b
	st.budgetPath = path
	st.matched = make([]bool, len(b.Entries))
	return nil
}

// finish runs once per whole-module driver run: stale-audit detection and
// the empty-reason check. Both need the complete produced set, so they
// cannot run per package; the go vet driver (one unit per process) never
// gets here, which is fine — vet-mode entries are a subset of standalone
// entries, and the repository self-check runs the standalone loader.
func finish(repo *analysis.Repo, report func(analysis.Diagnostic)) error {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil || st.budget == nil {
		return nil
	}
	for i, be := range st.budget.Entries {
		// Only judge entries whose root package was analyzed this run: a
		// partial run (pvfslint ./internal/mem) proves nothing about roots
		// it never summarized.
		if !st.pkgs[rootPkg(be.Root)] {
			continue
		}
		pos := token.NoPos
		if ri, ok := st.roots[be.Root]; ok {
			pos = ri.declPos
		}
		switch {
		case !st.matched[i]:
			st.stale = append(st.stale, be)
			report(analysis.Diagnostic{
				Pos:      pos,
				Analyzer: "hotpath",
				Message: fmt.Sprintf("hotpath budget entry is stale: root %s no longer yields %s %q in %s — remove the entry or regenerate with pvfslint -write-budget",
					shortID(be.Root), kindOf(be.Effect).noun(), be.What, shortID(be.Func)),
			})
		case strings.TrimSpace(be.Reason) == "":
			report(analysis.Diagnostic{
				Pos:      pos,
				Analyzer: "hotpath",
				Message: fmt.Sprintf("hotpath budget entry for root %s (%s %q in %s) carries no reason: an audited entry must say why the effect is acceptable",
					shortID(be.Root), kindOf(be.Effect).noun(), be.What, shortID(be.Func)),
			})
		}
	}
	return nil
}

// skipPkg exempts the analysis tooling: the linter's own allocations feed
// its own diagnostics, not the simulator's hot path.
func skipPkg(pkg *types.Package) bool {
	p := pkg.Path()
	return strings.Contains(p, "internal/analysis") || strings.Contains(p, "cmd/pvfslint")
}

// rootDirective extracts the argument text of a //pvfslint:hotpath directive
// from a declaration's doc comment.
func rootDirective(fd *ast.FuncDecl) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, "pvfslint:hotpath"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// parseClasses parses the directive's optional class list.
func parseClasses(rest string) (uint8, error) {
	if rest == "" {
		return classAll, nil
	}
	var mask uint8
	for _, f := range strings.Split(rest, ",") {
		switch strings.TrimSpace(f) {
		case "alloc":
			mask |= classAlloc
		case "block":
			mask |= classBlock
		case "syscall":
			mask |= classSyscall
		default:
			return 0, fmt.Errorf("unknown effect class %q (want alloc, block, syscall)", strings.TrimSpace(f))
		}
	}
	return mask, nil
}

func classBit(k Kind) uint8 {
	switch k {
	case KindAlloc:
		return classAlloc
	case KindBlock:
		return classBlock
	case KindSyscall:
		return classSyscall
	}
	return 0
}

func kindOf(s string) Kind {
	switch s {
	case "alloc":
		return KindAlloc
	case "block":
		return KindBlock
	case "syscall":
		return KindSyscall
	}
	return KindDynamic
}

// hot is the per-pass analysis context.
type hot struct {
	pass  *analysis.Pass
	prog  *callgraph.Program
	st    *state
	facts map[*callgraph.Node][]localEffect
}

// summarize computes one function's effect summary from its body and its
// callees' summaries (re-run within an SCC until converged).
func (h *hot) summarize(n *callgraph.Node, sums map[string]effSummary) effSummary {
	out := make(effSummary)
	add := func(k effKey, w witness) {
		if _, ok := out[k]; !ok {
			out[k] = w
		}
	}
	// Own-body effects first: a function's own witness always beats a chain
	// through an SCC sibling, which keeps chains minimal and convergent.
	for _, le := range h.localEffects(n) {
		add(effKey{kind: le.kind, fn: n.ID, what: le.what}, witness{pos: le.pos, site: le.pos})
	}
	propagate := func(id string, sitePos token.Pos) {
		if h.prog.Node(id) == nil {
			return
		}
		for k, w := range sums[id] {
			add(k, witness{pos: w.pos, site: sitePos, chain: prepend(id, w.chain)})
		}
	}
	for _, c := range n.Calls {
		sitePos := c.Site.Pos()
		if c.Static != nil {
			if _, isCall := c.Site.(*ast.CallExpr); !isCall {
				if c.Static.Type().(*types.Signature).Recv() != nil {
					// x.M taken as a value binds the receiver: a closure.
					add(effKey{kind: KindAlloc, fn: n.ID, what: "method value (bound closure)"},
						witness{pos: sitePos, site: sitePos})
				}
			}
			// Intrinsics are keyed by package path, which only matches
			// stdlib packages — callees the program never contains in real
			// runs (the corpus stubs shadow those paths deliberately, to
			// pin the table down in tests).
			if kind, what, ok := intrinsicEffect(c.Static); ok {
				add(effKey{kind: kind, fn: n.ID, what: what}, witness{pos: sitePos, site: sitePos})
			}
			for _, id := range h.heapTargets(n, c) {
				propagate(id, sitePos)
			}
		}
		targets, dyn := h.resolve(n, c)
		if dyn != "" {
			add(effKey{kind: KindDynamic, fn: n.ID, what: dyn}, witness{pos: sitePos, site: sitePos})
		}
		for _, id := range targets {
			propagate(id, sitePos)
		}
	}
	return out
}

// resolve maps one call edge to propagation targets and, when the callees
// cannot be enumerated mode-independently, the dynamic-effect description.
func (h *hot) resolve(n *callgraph.Node, c callgraph.Call) ([]string, string) {
	if c.Static != nil {
		return []string{callgraph.IDOf(c.Static)}, ""
	}
	if c.Iface != nil {
		if id, ok := h.devirt(n, c); ok {
			return []string{id}, ""
		}
		return h.prog.TargetsOf(c), "interface call " + c.Method
	}
	return nil, "func-value call"
}

func prepend(id string, chain []string) []string {
	out := make([]string, 0, len(chain)+1)
	out = append(out, id)
	return append(out, chain...)
}

// rootPkg extracts the package path from a callgraph ID ("pkg.F" or
// "(pkg.T).M").
func rootPkg(id string) string {
	if rest, ok := strings.CutPrefix(id, "("); ok {
		if j := strings.Index(rest, ")"); j > 0 {
			if i := strings.LastIndex(rest[:j], "."); i >= 0 {
				return rest[:i]
			}
		}
		return ""
	}
	if i := strings.LastIndex(id, "."); i >= 0 {
		return id[:i]
	}
	return ""
}

// shortID trims the module prefix off a callgraph ID for messages.
func shortID(id string) string {
	trim := func(p string) string {
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	if strings.HasPrefix(id, "(") {
		if j := strings.Index(id, ")"); j > 0 {
			return "(" + trim(id[1:j]) + id[j:]
		}
	}
	return trim(id)
}
