// Package sim is a test stub: just enough of the simulator's surface for
// the analyzers' type checks to engage. No stdlib imports (the analysistest
// loader resolves imports only within the corpus). Unlike the other
// analyzers' stubs, the bodies here are real enough to carry effects: the
// hotpath analyzer must see Park's channel receive propagate up through
// Recv into the corpus roots, exactly as the real engine's wait primitives
// do.
package sim

type Engine struct {
	procs []*Proc
}

func NewEngine() *Engine { return &Engine{} }

func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{wake: make(chan int)}
	e.procs = append(e.procs, p)
	return p
}

func (e *Engine) Run() error { return nil }

type Proc struct {
	wake chan int
}

func (p *Proc) Now() int64 { return 0 }

// Park blocks the process until the engine wakes it — the one channel
// receive every simulated wait funnels through.
func (p *Proc) Park() { <-p.wake }

type Mailbox struct {
	q []any
}

// Recv parks until a message arrives.
func (m *Mailbox) Recv(p *Proc) any {
	p.Park()
	return nil
}
