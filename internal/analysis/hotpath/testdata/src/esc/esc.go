// Package esc exercises the escape checks hotpath inherited from the
// retired engescape analyzer: no *sim.Proc or *sim.Engine captured by a
// real goroutine or stored in a package-level variable.
package esc

import "pvfsib/internal/sim"

// leakedEngine outlives any cell: the next cell to touch it shares the
// previous cell's world.
var leakedEngine *sim.Engine // want `package-level variable leakedEngine holds a \*sim\.Engine`

// procTable is a container escape: the Procs inside outlive their cells.
var procTable map[string]*sim.Proc // want `package-level variable procTable holds a \*sim\.Proc`

// sink is an untyped escape hatch; the store is what gets flagged.
var sink any

// captureProc hands a live Proc to a real goroutine: the engine is
// single-threaded, so the goroutine races the event loop.
func captureProc(p *sim.Proc, done chan struct{}) {
	go func() {
		p.Now() // want `\*sim\.Proc escapes into a real goroutine`
		close(done)
	}()
}

// passEngine passes the engine as a goroutine argument.
func passEngine(e *sim.Engine) {
	go runIt(e) // want `\*sim\.Engine escapes into a real goroutine`
}

func runIt(e *sim.Engine) { _ = e.Run() }

// storeProc funnels a Proc through the any-typed package variable.
func storeProc(p *sim.Proc) {
	sink = p // want `storing a \*sim\.Proc in package-level variable sink`
}

// ownedEngine is the worker-pool shape the bench scheduler uses: the
// goroutine creates, runs, and abandons its own engine. Nothing escapes.
func ownedEngine(done chan struct{}) {
	go func() {
		e := sim.NewEngine()
		e.Go("p", func(p *sim.Proc) { p.Now() })
		_ = e.Run()
		close(done)
	}()
}

// localUse keeps the Proc on the engine's own goroutine.
func localUse(e *sim.Engine) {
	e.Go("p", func(p *sim.Proc) { p.Now() })
}

// declaredEscape documents a deliberate exception under the analyzer's new
// name.
func declaredEscape(p *sim.Proc, done chan struct{}) {
	go func() {
		//pvfslint:ok hotpath test-only inspection after the engine stopped
		p.Now()
		close(done)
	}()
}
