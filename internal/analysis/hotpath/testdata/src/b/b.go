// Package b exercises the budget ratchet against testdata/b.budget.json:
// a matched reasoned entry is silent, a stale entry and an unreasoned entry
// are errors at the root's declaration.
package b

// audited's make is in the budget with a reason: silent.
//
//pvfslint:hotpath
func audited(n int) []byte {
	return make([]byte, n)
}

// outgrown's body lost the allocation its budget entry still audits.
//
//pvfslint:hotpath
func outgrown() int { // want `hotpath budget entry is stale: root b\.outgrown no longer yields allocation "make" in b\.outgrown`
	return 0
}

// unreasoned's make is budgeted, but the entry carries no reason.
//
//pvfslint:hotpath
func unreasoned(n int) []byte { // want `hotpath budget entry for root b\.unreasoned \(allocation "make" in b\.unreasoned\) carries no reason`
	return make([]byte, n)
}
