// Package fmt is a corpus stub; bodies are empty so that classification
// comes from the hotpath intrinsic table alone.
package fmt

func Sprintf(format string, args ...any) string { return "" }
func Errorf(format string, args ...any) error   { return nil }
