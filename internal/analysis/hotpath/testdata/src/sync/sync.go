// Package sync is a corpus stub. The bodies are empty on purpose: the
// hotpath analyzer must classify sync.Lock by its intrinsic table, not by
// what a stub body happens to contain.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
