// Package a exercises the hotpath analyzer's effect detection: allocation
// kinds, blocking primitives, interface devirtualization, SCC recursion,
// intrinsics, and the directive's class filter. The test pins the budget to
// a nonexistent file, so every effect is fresh and reports.
package a

import (
	"fmt"
	"pvfsib/internal/sim"
	"sync"
	"time"
)

// kinds covers the own-body effect detectors.
//
//pvfslint:hotpath
func kinds(n int, m map[string]int, s []int, ch chan int) {
	b := make([]byte, n) // want `hot path a\.kinds: allocation "make" in a\.kinds — not in the hotpath budget`
	_ = b
	q := new(int) // want `allocation "new" in a\.kinds`
	_ = q
	s = append(s, 1) // want `allocation "append \(may grow\)" in a\.kinds`
	_ = s
	m["k"] = 1 // want `allocation "map insert" in a\.kinds`
	ch <- 1    // want `blocking effect "chan send" in a\.kinds`
	<-ch       // want `blocking effect "chan receive" in a\.kinds`
}

// strider covers closures, go statements, string concatenation, and the
// func-value dynamic effect.
//
//pvfslint:hotpath
func strider(a, b string) string {
	f := func() {} // want `allocation "closure" in a\.strider`
	f()            // want `dynamic call "func-value call" in a\.strider`
	go f()         // want `allocation "go statement \(new goroutine\)" in a\.strider`
	return a + b   // want `allocation "string concatenation" in a\.strider`
}

// pump blocks through the sim stub: Recv parks, Park receives — the effect
// reports with the interprocedural chain.
//
//pvfslint:hotpath
func pump(p *sim.Proc, mb *sim.Mailbox) {
	mb.Recv(p) // want `blocking effect "chan receive" in \(sim\.Proc\)\.Park \(via \(sim\.Mailbox\)\.Recv → \(sim\.Proc\)\.Park\)`
}

type iface interface{ M() int }

type impl1 struct{ n int }

func (i impl1) M() int { b := make([]byte, 1); return len(b) }

type impl2 struct{ n int }

func (i impl2) M() int { return i.n }

// devirted resolves x.M() per callsite: x has exactly one assignment of
// concrete type impl2, whose M is effect-free — no dynamic entry, nothing
// to budget.
//
//pvfslint:hotpath
func devirted() int {
	var x iface = impl2{}
	return x.M()
}

// dynamic cannot devirtualize a parameter: the site is budgeted as a
// dynamic call, and the CHA implementors' effects propagate on top.
//
//pvfslint:hotpath
func dynamic(x iface) int {
	return x.M() // want `dynamic call "interface call M" in a\.dynamic` `allocation "make" in \(a\.impl1\)\.M \(via \(a\.impl1\)\.M\)`
}

// looper reaches an allocation through a two-function recursion cycle: the
// SCC fixpoint must converge and the chain stay minimal.
//
//pvfslint:hotpath
func looper(n int) {
	mutualA(n) // want `allocation "make" in a\.mutualB \(via a\.mutualA → a\.mutualB\)`
}

func mutualA(n int) {
	if n > 0 {
		mutualB(n - 1)
	}
}

func mutualB(n int) {
	b := make([]byte, n)
	_ = b
	mutualA(n - 1)
}

// allocOnly budgets only its allocations: parking is this root's job, so
// the chan send stays silent.
//
//pvfslint:hotpath alloc
func allocOnly(ch chan int, n int) {
	ch <- n
	b := make([]byte, n) // want `allocation "make" in a\.allocOnly`
	_ = b
}

// clocky hits the stdlib intrinsic table: the stub bodies are empty, the
// classification comes from the table.
//
//pvfslint:hotpath
func clocky(mu *sync.Mutex) time.Time {
	mu.Lock() // want `blocking effect "sync\.Lock" in a\.clocky`
	defer mu.Unlock()
	return time.Now() // want `syscall/wall-clock effect "time\.Now" in a\.clocky`
}

// formatty stacks three allocations on one call: the Sprintf intrinsic, the
// variadic slice, and boxing the int argument into ...any.
//
//pvfslint:hotpath
func formatty(n int) string {
	return fmt.Sprintf("n=%d", n) // want `allocation "fmt\.Sprintf" in a\.formatty` `allocation "variadic argument slice" in a\.formatty` `allocation "interface conversion \(boxing\)" in a\.formatty`
}

// bindIt returns a bound method value — a closure allocation.
//
//pvfslint:hotpath
func bindIt(p *sim.Proc) func() int64 {
	return p.Now // want `allocation "method value \(bound closure\)" in a\.bindIt`
}

// badClasses has a malformed class list.
//
//pvfslint:hotpath alloc,zap
func badClasses() {} // want `bad //pvfslint:hotpath directive on a\.badClasses: unknown effect class "zap"`
