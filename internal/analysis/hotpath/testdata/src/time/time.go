// Package time is a corpus stub; bodies are empty so that classification
// comes from the hotpath intrinsic table alone.
package time

type Duration int64

type Time struct{ ns int64 }

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Sleep(d Duration)       {}
