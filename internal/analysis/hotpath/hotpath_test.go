package hotpath_test

import (
	"testing"

	"pvfsib/internal/analysis/analysistest"
	"pvfsib/internal/analysis/hotpath"
)

// pinBudget points the analyzer at a corpus-local baseline for one test.
// A path that does not exist is the empty budget (every effect fresh).
func pinBudget(t *testing.T, path string) {
	t.Helper()
	old := hotpath.BudgetOverride
	hotpath.BudgetOverride = path
	t.Cleanup(func() { hotpath.BudgetOverride = old })
}

// TestEffects checks effect detection against an empty budget: allocation
// kinds, blocking primitives, devirtualization, SCC recursion, intrinsics,
// the class filter, and the directive parser.
func TestEffects(t *testing.T) {
	pinBudget(t, "testdata/nonexistent.budget.json")
	analysistest.Run(t, "testdata", hotpath.Analyzer, "a")
}

// TestBudgetRatchet checks the baseline diff: matched reasoned entries are
// silent, stale and unreasoned entries are errors.
func TestBudgetRatchet(t *testing.T) {
	pinBudget(t, "testdata/b.budget.json")
	analysistest.Run(t, "testdata", hotpath.Analyzer, "b")
}

// TestEscapes checks the checks inherited from engescape, including the
// suppression directive under the hotpath name.
func TestEscapes(t *testing.T) {
	pinBudget(t, "testdata/nonexistent.budget.json")
	analysistest.Run(t, "testdata", hotpath.Analyzer, "esc")
}
