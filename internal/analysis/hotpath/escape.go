package hotpath

import (
	"go/ast"
	"go/types"

	"pvfsib/internal/analysis"
)

// This file is the former engescape analyzer, folded into hotpath: the
// escape checks are the degenerate zero-budget case of the same property —
// engine handles must not cross the boundary of the single-threaded world —
// so they live with the analyzer that owns that world. The checks, message
// texts, and suppression behavior are unchanged except for the directive
// name ("//pvfslint:ok hotpath <reason>").
//
// The simulation engine drives exactly one process at a time, which is why
// simulation code needs no locking and stays deterministic. That property
// holds only while every touch of an engine (or of a Proc, which embeds the
// engine's wake slot) happens on the goroutine the engine is currently
// driving. Two escape routes break it:
//
//   - a real goroutine (`go` statement) that captures or receives a Proc or
//     Engine races the engine's own event loop;
//   - a package-level variable holding a Proc or Engine outlives the cell
//     that created it, silently sharing one cell's world with the next.
//
// The engine package itself is exempt: spawning the per-process goroutine
// is the engine's job.

func checkEscapes(pass *analysis.Pass) {
	if analysis.IsPkg(pass.Pkg, "internal/sim") {
		return // the engine spawns process goroutines by design
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				checkPackageVars(pass, gd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n)
			case *ast.AssignStmt:
				checkEscapeAssign(pass, n)
			}
			return true
		})
	}
}

// simTypeName returns "Proc" or "Engine" if t is (a pointer to) one of the
// engine types, and "" otherwise.
func simTypeName(t types.Type) string {
	switch {
	case analysis.NamedFrom(t, "internal/sim", "Proc"):
		return "Proc"
	case analysis.NamedFrom(t, "internal/sim", "Engine"):
		return "Engine"
	}
	return ""
}

// containedSimType unwraps containers (pointer, slice, array, map, chan)
// and reports the engine type found inside, if any.
func containedSimType(t types.Type) string {
	for {
		if name := simTypeName(t); name != "" {
			return name
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		default:
			return ""
		}
	}
}

// checkPackageVars flags package-level variable declarations whose type
// holds an engine type.
func checkPackageVars(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if simName := containedSimType(obj.Type()); simName != "" {
				pass.Reportf(name.Pos(), "package-level variable %s holds a *sim.%s: it outlives the cell that created it, so cells stop being independent", name.Name, simName)
			}
		}
	}
}

// checkEscapeAssign flags stores of engine values into package-level
// variables (covers `var global any` escape hatches the declaration check
// misses).
func checkEscapeAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.TypesInfo.Uses[ident].(*types.Var)
		if !ok || obj.Parent() != pass.Pkg.Scope() {
			continue
		}
		if i >= len(as.Rhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok {
			continue
		}
		if simName := simTypeName(tv.Type); simName != "" {
			pass.Reportf(as.Pos(), "storing a *sim.%s in package-level variable %s: it outlives the cell that created it", simName, ident.Name)
		}
	}
}

// checkGoStmt flags engine-typed values entering a `go` statement from
// outside — passed as arguments or captured by the function literal. A
// Proc or Engine declared inside the goroutine is owned by it (a worker
// may run a whole private simulation) and is not an escape.
func checkGoStmt(pass *analysis.Pass, gs *ast.GoStmt) {
	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= gs.Pos() && obj.Pos() < gs.End()
	}
	ast.Inspect(gs.Call, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsValue() {
				if simName := simTypeName(tv.Type); simName != "" {
					if root, ok := n.X.(*ast.Ident); ok && declaredInside(pass.TypesInfo.Uses[root]) {
						return false
					}
					pass.Reportf(n.Pos(), "*sim.%s escapes into a real goroutine: the engine is single-threaded, a second OS thread races the simulation", simName)
					return false
				}
			}
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok {
				return true
			}
			if simName := simTypeName(obj.Type()); simName != "" && !declaredInside(obj) {
				pass.Reportf(n.Pos(), "*sim.%s escapes into a real goroutine: the engine is single-threaded, a second OS thread races the simulation", simName)
			}
		}
		return true
	})
}
