package hotpath

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"pvfsib/internal/analysis"
)

// BudgetFile is the baseline's path relative to the module root.
const BudgetFile = "lint/hotpath.budget.json"

// Entry is one audited effect. Root, Effect, Func, and What form the key;
// Chain is informational (a refactor that reroutes the path to an audited
// effect does not invalidate the audit); Reason is the human argument for
// why the effect is acceptable on the hot path, and must be non-empty.
type Entry struct {
	Root   string   `json:"root"`
	Effect string   `json:"effect"`
	Func   string   `json:"func"`
	What   string   `json:"what"`
	Chain  []string `json:"chain,omitempty"`
	Reason string   `json:"reason"`
}

func (e Entry) key() string { return e.Root + "|" + e.Effect + "|" + e.Func + "|" + e.What }

// Budget is the checked-in baseline: the full audited effect set of every
// hot-path root.
type Budget struct {
	Entries []Entry `json:"entries"`
}

func (b *Budget) index() map[string]int {
	idx := make(map[string]int, len(b.Entries))
	for i, e := range b.Entries {
		idx[e.key()] = i
	}
	return idx
}

// BudgetOverride, when non-empty, bypasses budget discovery — the corpus
// tests' hook (each corpus pins its own baseline, or a nonexistent path for
// an empty one).
var BudgetOverride string

// LoadBudget reads a budget file. A missing file is an empty budget — the
// bootstrap state, where every effect is fresh; a malformed file is an
// error, which the driver turns into exit 2 rather than a finding.
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Budget{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := new(Budget)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, err
	}
	return b, nil
}

// discoverBudget locates the baseline for the package being analyzed by
// walking from its first file's directory up to the module root (go.mod).
// Falling off the top without finding one yields a path that does not
// exist, i.e. the empty budget.
func discoverBudget(pass *analysis.Pass) string {
	dir := "."
	if len(pass.Files) > 0 {
		dir = filepath.Dir(pass.Fset.Position(pass.Files[0].Package).Filename)
	}
	return DefaultPath(dir)
}

// DefaultPath resolves the budget path for a directory inside the module:
// <module root>/lint/hotpath.budget.json.
func DefaultPath(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Join(dir, filepath.FromSlash(BudgetFile))
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, filepath.FromSlash(BudgetFile))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.Join(dir, filepath.FromSlash(BudgetFile))
		}
		d = parent
	}
}

// Produced returns the effect entries the last run computed, sorted — the
// input to -write-budget.
func Produced(repo *analysis.Repo) []Entry {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil {
		return nil
	}
	out := append([]Entry(nil), st.produced...)
	sortEntries(out)
	return out
}

// Drift returns the run's budget drift: effects produced but not budgeted
// (fresh) and budgeted entries no longer produced (stale). CI archives this
// next to the SARIF report when the ratchet fails.
func Drift(repo *analysis.Repo) (fresh, stale []Entry) {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil {
		return nil, nil
	}
	fresh = append([]Entry(nil), st.fresh...)
	stale = append([]Entry(nil), st.stale...)
	sortEntries(fresh)
	sortEntries(stale)
	return fresh, stale
}

// WriteBudget writes the produced entries as the new baseline at path,
// carrying over the Reason of every entry whose key already exists in prev.
// New entries get an empty reason, which the next lint run flags until a
// human fills it in — regeneration never self-audits.
func WriteBudget(path string, produced []Entry, prev *Budget) error {
	var prevIdx map[string]int
	if prev != nil {
		prevIdx = prev.index()
	}
	entries := append([]Entry(nil), produced...)
	for i := range entries {
		if j, ok := prevIdx[entries[i].key()]; ok {
			entries[i].Reason = prev.Entries[j].Reason
		}
	}
	sortEntries(entries)
	data, err := json.MarshalIndent(&Budget{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BudgetPath reports the baseline path the last run resolved (empty if the
// hotpath analyzer never loaded one).
func BudgetPath(repo *analysis.Repo) string {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil {
		return ""
	}
	return st.budgetPath
}

// LoadedBudget reports the baseline the last run diffed against.
func LoadedBudget(repo *analysis.Repo) *Budget {
	st, _ := repo.Get(stateKey).(*state)
	if st == nil {
		return nil
	}
	return st.budget
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Root != b.Root {
			return a.Root < b.Root
		}
		if a.Effect != b.Effect {
			return a.Effect < b.Effect
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.What < b.What
	})
}

// String renders an entry for drift summaries.
func (e Entry) String() string {
	return fmt.Sprintf("%s: %s %q in %s", e.Root, e.Effect, e.What, e.Func)
}
