// Package simblock defines an analyzer that flags calls to blocking
// simulator primitives made while a sim.Resource is held.
//
// The simulation engine drives one process at a time; a process that parks
// (Mailbox.Recv, Cond.Wait, WaitGroup.Wait, Resource.Acquire) while holding
// a Resource keeps every other process that needs that resource parked too.
// If the wake-up it is waiting for must itself go through the held resource
// — the classic shape with a server's ioMu — the simulation deadlocks, and
// only at run time, possibly only for some workloads. Sleeping while holding
// is fine (that is exactly Resource.Use): sleep wake-ups come from the event
// heap, not from other processes.
//
// The check is lexical and intraprocedural: it tracks Acquire/Release pairs
// on the same receiver expression within one function body (treating each
// function literal as its own process), so a hold that spans a call boundary
// is not seen. Re-acquiring a held resource is reported separately — with a
// capacity-1 resource that is certain self-deadlock.
//
// A genuine nested-hold site must declare its lock order with a
// "//pvfslint:ok simblock <order>" directive.
package simblock

import (
	"go/ast"

	"pvfsib/internal/analysis"
)

// Analyzer flags blocking sim calls made while a sim.Resource is held.
var Analyzer = &analysis.Analyzer{
	Name: "simblock",
	Doc:  "no blocking sim primitive (Acquire/Recv/Wait) while a sim.Resource is held — the ioMu deadlock class",
	Run:  run,
}

// blocking lists the sim primitives that park the calling process until
// another process acts.
var blocking = [...]struct{ typ, method string }{
	{"Resource", "Acquire"},
	{"Resource", "Use"},
	{"Mailbox", "Recv"},
	{"Cond", "Wait"},
	{"WaitGroup", "Wait"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body in source order, maintaining the set of
// lexically held resources. Nested function literals are separate processes
// and are checked independently.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]bool) // receiver expression -> held
	var heldOrder []string

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred Release runs at function exit, not here: the
			// resource stays held for the rest of the body, which is the
			// state the walk keeps by not descending.
			return false
		case *ast.CallExpr:
			// Release first: `r.Release()` drops the hold for following
			// statements.
			if recv, ok := analysis.ReceiverMethod(pass.TypesInfo, n, "internal/sim", "Resource", "Release"); ok {
				delete(held, analysis.ExprString(pass.Fset, recv))
				return true
			}
			for _, b := range blocking {
				recv, ok := analysis.ReceiverMethod(pass.TypesInfo, n, "internal/sim", b.typ, b.method)
				if !ok {
					continue
				}
				recvStr := analysis.ExprString(pass.Fset, recv)
				if b.typ == "Resource" && held[recvStr] {
					pass.Reportf(n.Pos(), "%s of %s while already holding it: guaranteed deadlock for a capacity-1 resource", b.method, recvStr)
				} else if len(held) > 0 {
					pass.Reportf(n.Pos(), "blocking %s.%s while holding sim.Resource %s; if the wake-up needs the held resource the simulation deadlocks — release first, or declare the lock order with //pvfslint:ok simblock", b.typ, b.method, holdList(held, heldOrder))
				}
				if b.typ == "Resource" && b.method == "Acquire" {
					if !held[recvStr] {
						held[recvStr] = true
						heldOrder = append(heldOrder, recvStr)
					}
				}
				return true
			}
		}
		return true
	})
}

// holdList renders the held set in acquisition order.
func holdList(held map[string]bool, order []string) string {
	out := ""
	for _, r := range order {
		if !held[r] {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += r
	}
	return out
}
