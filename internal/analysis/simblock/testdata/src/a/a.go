// Package a exercises the simblock analyzer.
package a

import "pvfsib/internal/sim"

// blockWhileHolding parks on a mailbox while ioMu is held: the wake-up
// (a Send from another process) may itself need ioMu.
func blockWhileHolding(p *sim.Proc, ioMu *sim.Resource, mb *sim.Mailbox) {
	ioMu.Acquire(p)
	mb.Recv(p) // want `blocking Mailbox\.Recv while holding sim\.Resource ioMu`
	ioMu.Release()
}

// reacquire self-deadlocks on a capacity-1 resource.
func reacquire(p *sim.Proc, mu *sim.Resource) {
	mu.Acquire(p)
	mu.Acquire(p) // want `Acquire of mu while already holding it`
	mu.Release()
}

// deferredRelease keeps the resource held for the whole body, so the Wait
// still parks other users of mu.
func deferredRelease(p *sim.Proc, mu *sim.Resource, wg *sim.WaitGroup) {
	mu.Acquire(p)
	defer mu.Release()
	wg.Wait(p) // want `blocking WaitGroup\.Wait while holding sim\.Resource mu`
}

// useWhileHolding blocks on a second resource while the first is held.
func useWhileHolding(p *sim.Proc, mu, cpu *sim.Resource) {
	mu.Acquire(p)
	cpu.Use(p, 10) // want `blocking Resource\.Use while holding sim\.Resource mu`
	mu.Release()
}

// releaseFirst is the clean shape: drop the lock before parking.
func releaseFirst(p *sim.Proc, ioMu *sim.Resource, mb *sim.Mailbox) {
	ioMu.Acquire(p)
	ioMu.Release()
	mb.Recv(p)
}

// useAlone blocks with nothing held — fine.
func useAlone(p *sim.Proc, cpu *sim.Resource) {
	cpu.Use(p, 10)
}

// spawned function literals are separate processes: the inner Recv does not
// run under the outer Acquire.
func spawn(p *sim.Proc, mu *sim.Resource, mb *sim.Mailbox, start func(func(p *sim.Proc))) {
	mu.Acquire(p)
	start(func(p2 *sim.Proc) {
		mb.Recv(p2)
	})
	mu.Release()
}

// declared documents its lock order, so the nested wait is accepted.
func declared(p *sim.Proc, mu *sim.Resource, cond *sim.Cond) {
	mu.Acquire(p)
	//pvfslint:ok simblock lock order mu < cond; signaller never takes mu
	cond.Wait(p)
	mu.Release()
}
