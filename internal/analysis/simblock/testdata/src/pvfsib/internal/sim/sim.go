// Package sim is a test stub: just enough of the simulator's surface for
// the analyzers' type checks to engage. No stdlib imports (the analysistest
// loader resolves imports only within the corpus).
package sim

type Proc struct{}

type Duration int64

type Resource struct{}

func (r *Resource) Acquire(p *Proc)      {}
func (r *Resource) Release()             {}
func (r *Resource) Use(p *Proc, d Duration) {}

type Mailbox struct{}

func (m *Mailbox) Recv(p *Proc) any { return nil }
func (m *Mailbox) Send(v any)       {}

type Cond struct{}

func (c *Cond) Wait(p *Proc) {}

type WaitGroup struct{}

func (w *WaitGroup) Wait(p *Proc) {}
func (w *WaitGroup) Done()        {}
