package simblock_test

import (
	"testing"

	"pvfsib/internal/analysis/analysistest"
	"pvfsib/internal/analysis/simblock"
)

func TestSimblock(t *testing.T) {
	analysistest.Run(t, "testdata", simblock.Analyzer, "a")
}
