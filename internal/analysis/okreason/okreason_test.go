package okreason_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"pvfsib/internal/analysis"
	"pvfsib/internal/analysis/okreason"
)

// okreason cannot use the analysistest corpus driver: its diagnostics land
// on directive comment lines, and Go lexes one comment per line, so a
// `// want` expectation can never share the line it needs to match. This
// test drives the analyzer directly instead.

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	pkg, err := (&types.Config{}).Check("a", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAll([]*analysis.Analyzer{okreason.Analyzer}, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestWellFormedDirectiveIsSilent(t *testing.T) {
	diags := runOn(t, `package a
func f() {
	//pvfslint:ok simblock release is re-acquired immediately below
	_ = 0
}`)
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

func TestMissingReasonIsFlagged(t *testing.T) {
	diags := runOn(t, `package a
func f() {
	//pvfslint:ok regcheck
	_ = 0
}`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "pvfslint:ok regcheck gives no reason") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

func TestMissingAnalyzerIsFlagged(t *testing.T) {
	diags := runOn(t, `package a
func f() {
	//pvfslint:ok
	_ = 0
}`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "names no analyzer") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

func TestEndOfLineDirectiveChecked(t *testing.T) {
	diags := runOn(t, `package a
func f() {
	_ = 0 //pvfslint:ok nopanic
}`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

// TestReasonlessDirectiveCannotSelfSuppress pins the escape hatch shut: a
// reasonless "//pvfslint:ok okreason" must not silence the very diagnostic
// that demands the reason.
func TestReasonlessDirectiveCannotSelfSuppress(t *testing.T) {
	diags := runOn(t, `package a
func f() {
	//pvfslint:ok okreason
	_ = 0
}`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the directive must not suppress okreason itself): %v", len(diags), diags)
	}
}
