// Package okreason enforces the suppression contract: a pvfslint:ok
// directive is an audited, documented exception, so it must name the
// analyzer it silences AND say why the site is safe:
//
//	//pvfslint:ok <analyzer> <reason...>
//
// A directive with no reason still suppresses (the framework only matches
// the analyzer name), which is exactly why this analyzer makes the missing
// reason a hard diagnostic instead of a convention: an unexplained
// suppression is indistinguishable from an opt-out.
package okreason

import (
	"fmt"
	"go/token"
	"strings"

	"pvfsib/internal/analysis"
)

// Analyzer flags pvfslint:ok directives that omit the analyzer name or the
// reason.
var Analyzer = &analysis.Analyzer{
	Name: "okreason",
	Doc:  "every //pvfslint:ok directive must name an analyzer and give a reason",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Report directly, bypassing the suppression filter: a reasonless
	// "//pvfslint:ok okreason" must not silence the very diagnostic that
	// demands the reason. This is the one hard, unsuppressable check.
	report := func(pos token.Pos, format string, args ...any) {
		pass.Report(analysis.Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: pass.Analyzer.Name,
		})
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "pvfslint:ok") {
					continue
				}
				fields := strings.Fields(text)
				switch {
				case len(fields) < 2:
					report(c.Pos(), "pvfslint:ok directive names no analyzer: write //pvfslint:ok <analyzer> <reason>")
				case len(fields) < 3:
					report(c.Pos(), "pvfslint:ok %s gives no reason: a suppression is an audited exception, say why the site is safe", fields[1])
				}
			}
		}
	}
	return nil
}
