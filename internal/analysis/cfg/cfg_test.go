package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a file containing one function and returns its CFG.
func build(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return Build(fn.Body, nil)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, `package p
func f() { x := 1; x++; _ = x }`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfJoin(t *testing.T) {
	g := build(t, `package p
func f(c bool) int { x := 0; if c { x = 1 } else { x = 2 }; return x }`)
	// The branch condition block must have a true and a false labeled edge.
	var condEdges int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				condEdges++
			}
		}
	}
	if condEdges != 2 {
		t.Fatalf("want 2 labeled edges for one condition, got %d:\n%s", condEdges, g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestShortCircuitSplits(t *testing.T) {
	g := build(t, `package p
func f(a, b bool) { if a && b { println() } }`)
	// a && b: each operand gets its own pair of labeled edges.
	var condEdges int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				condEdges++
			}
		}
	}
	if condEdges != 4 {
		t.Fatalf("want 4 labeled edges for a && b, got %d:\n%s", condEdges, g)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := build(t, `package p
func f() { for i := 0; i < 3; i++ { println(i) } }`)
	// Some reachable block must have an edge to an earlier block (the back
	// edge through the post statement to the loop head).
	back := false
	for b := range reachable(g) {
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no back edge in loop CFG:\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := build(t, `package p
func f() {
	for {
		if true { break }
		if false { continue }
		println()
	}
	println("after")
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("break does not reach exit:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `package p
func f() {
outer:
	for {
		for {
			break outer
		}
	}
	println("after")
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("labeled break does not reach exit:\n%s", g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := build(t, `package p
func f() {
	i := 0
top:
	i++
	if i < 3 {
		goto top
	}
	goto done
done:
	println(i)
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("goto CFG does not reach exit:\n%s", g)
	}
}

func TestReturnRoutesThroughDeferChain(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	defer println("a")
	defer println("b")
	if c {
		return
	}
	println("body")
}`)
	var chain []*Block
	for _, b := range g.Blocks {
		if b.DeferChain {
			chain = append(chain, b)
		}
	}
	if len(chain) != 2 {
		t.Fatalf("want 2 defer-chain blocks, got %d:\n%s", len(chain), g)
	}
	// Every path to Exit passes through the chain: Exit's only preds are
	// chain blocks.
	for _, p := range g.Exit.Preds {
		if !p.DeferChain {
			t.Fatalf("exit pred b%d bypasses the defer chain:\n%s", p.Index, g)
		}
	}
	// LIFO: the block holding println("b") must precede println("a").
	for b := range reachable(g) {
		for _, e := range b.Succs {
			if e.To.DeferChain && !b.DeferChain && b != g.Entry {
				// First chain block entered from the body is the last defer.
				call := e.To.Nodes[0].(*ast.CallExpr)
				lit := call.Args[0].(*ast.BasicLit)
				if lit.Value != `"b"` {
					t.Fatalf("defer chain is not LIFO: first chain call arg %s", lit.Value)
				}
			}
		}
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `package p
func f() {
	panic("boom")
}`)
	// The block containing the panic call must not flow to exit.
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if len(b.Succs) != 0 {
					t.Fatalf("panic block has successors:\n%s", g)
				}
			}
		}
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
		fallthrough
	case 2:
		println(2)
	default:
		println(3)
	}
	println("after")
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("switch does not reach exit:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `package p
func f(a, b chan int) {
	select {
	case v := <-a:
		println(v)
	case b <- 1:
	}
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("select does not reach exit:\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, `package p
func f(xs []int) {
	for _, x := range xs {
		println(x)
	}
}`)
	if !reachable(g)[g.Exit] {
		t.Fatalf("range does not reach exit:\n%s", g)
	}
	back := false
	for b := range reachable(g) {
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To != g.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no back edge in range CFG:\n%s", g)
	}
}

func TestFuncLitNotDescended(t *testing.T) {
	g := build(t, `package p
func f() {
	g := func() { return }
	g()
}`)
	// The literal's return must not create an edge to this function's exit
	// chain from inside the literal: the assignment is one node.
	if !reachable(g)[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				t.Fatalf("function literal body leaked into enclosing CFG:\n%s", g)
			}
		}
	}
}
